package group

import (
	"bytes"
	"crypto/rand"
	"testing"
)

func suites() []Suite { return []Suite{P256(), MODP2048()} }

func TestSharedSecretSymmetry(t *testing.T) {
	for _, s := range suites() {
		t.Run(s.Name(), func(t *testing.T) {
			a, err := s.GenerateKey(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.GenerateKey(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			ab, err := a.SharedSecret(b.PublicKey())
			if err != nil {
				t.Fatal(err)
			}
			ba, err := b.SharedSecret(a.PublicKey())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ab, ba) {
				t.Fatal("shared secrets differ")
			}
			if len(ab) != 32 {
				t.Fatalf("secret length %d, want 32", len(ab))
			}
		})
	}
}

func TestDistinctPairsDistinctSecrets(t *testing.T) {
	for _, s := range suites() {
		t.Run(s.Name(), func(t *testing.T) {
			a, _ := s.GenerateKey(rand.Reader)
			b, _ := s.GenerateKey(rand.Reader)
			c, _ := s.GenerateKey(rand.Reader)
			ab, _ := a.SharedSecret(b.PublicKey())
			ac, _ := a.SharedSecret(c.PublicKey())
			if bytes.Equal(ab, ac) {
				t.Fatal("secrets for distinct peers collide")
			}
		})
	}
}

func TestPublicKeySize(t *testing.T) {
	for _, s := range suites() {
		t.Run(s.Name(), func(t *testing.T) {
			k, _ := s.GenerateKey(rand.Reader)
			if got := len(k.PublicKey()); got != s.PublicKeySize() {
				t.Fatalf("public key size %d, want %d", got, s.PublicKeySize())
			}
		})
	}
}

func TestRejectsBadPublicKey(t *testing.T) {
	for _, s := range suites() {
		t.Run(s.Name(), func(t *testing.T) {
			k, _ := s.GenerateKey(rand.Reader)
			if _, err := k.SharedSecret([]byte{1, 2, 3}); err == nil {
				t.Fatal("short key accepted")
			}
		})
	}
	// MODP: identity element must be rejected.
	k, _ := MODP2048().GenerateKey(rand.Reader)
	one := make([]byte, MODP2048().PublicKeySize())
	one[len(one)-1] = 1
	if _, err := k.SharedSecret(one); err == nil {
		t.Fatal("identity element accepted")
	}
}

func TestBySuiteName(t *testing.T) {
	for _, name := range []string{"P256", "MODP2048"} {
		s, err := BySuiteName(name)
		if err != nil || s.Name() != name {
			t.Fatalf("BySuiteName(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := BySuiteName("X25519"); err == nil {
		t.Fatal("unknown suite accepted")
	}
}

func BenchmarkSharedSecretP256(b *testing.B) {
	s := P256()
	a, _ := s.GenerateKey(rand.Reader)
	peer, _ := s.GenerateKey(rand.Reader)
	pub := peer.PublicKey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.SharedSecret(pub); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSharedSecretMODP2048(b *testing.B) {
	s := MODP2048()
	a, _ := s.GenerateKey(rand.Reader)
	peer, _ := s.GenerateKey(rand.Reader)
	pub := peer.PublicKey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.SharedSecret(pub); err != nil {
			b.Fatal(err)
		}
	}
}
