// Package eval implements the paper's validation methodology (Section
// 7.3): the Figure 4 evaluation tree that cross-checks eyeWnder's
// classification against the crawler (CR), the content-based heuristic
// (CB), and user labels (F8), plus the unknown-resolution analyses of
// Section 7.3.3 (retargeting repeatability and indirect-OBA correlation)
// and the precision summary of Section 7.3.4.
//
// The tree logic, verbatim from the paper:
//
//	classified targeted:
//	    seen by crawler            → FP(CR)   (crawler has no profile)
//	    else, semantic overlap     → TP(CB)   (CB agrees by construction)
//	    else, labeled by F8        → TP(F8) / FP(F8)
//	    else                       → UNKNOWN(targeted)
//	classified non-targeted:
//	    seen by crawler            → TN(CR)
//	    else, semantic overlap     → FN(CB)   (CB says targeted)
//	    else, labeled by F8        → FN(F8) / TN(F8)
//	    else                       → UNKNOWN(non-targeted)
package eval

import (
	"math"

	"eyewnder/internal/detector"
	"eyewnder/internal/stats"
	"eyewnder/internal/taxonomy"
)

// Observation is one classified (user, ad) pair with the evidence the
// tree needs.
type Observation struct {
	User  int
	AdKey string
	// Class is eyeWnder's verdict. Unknown observations are excluded from
	// the tree (the minimum-data rule refused to guess).
	Class detector.Class
	// SeenByCrawler is CR membership.
	SeenByCrawler bool
	// SemanticOverlap is the profile/ad-category overlap test.
	SemanticOverlap bool
	// F8Labeled marks ads the labellers tagged; F8Targeted is their tag.
	F8Labeled  bool
	F8Targeted bool
}

// Branch holds one side of the tree.
type Branch struct {
	// N is the branch population.
	N int
	// CR is FP(CR) on the targeted side, TN(CR) on the non-targeted side.
	CR int
	// CB is TP(CB) on the targeted side, FN(CB) on the non-targeted side.
	CB int
	// F8Agree counts F8 labels agreeing with eyeWnder (TP(F8) / TN(F8));
	// F8Disagree counts the opposite (FP(F8) / FN(F8)).
	F8Agree, F8Disagree int
	// Unknown is the residue no oracle covered.
	Unknown int
}

// Tree is the full Figure 4 accounting.
type Tree struct {
	Total int
	// Skipped counts observations eyeWnder refused to classify.
	Skipped     int
	Targeted    Branch
	NonTargeted Branch
}

// BuildTree runs every observation down the evaluation flow-chart.
func BuildTree(obs []Observation) *Tree {
	t := &Tree{}
	for _, o := range obs {
		t.Total++
		switch o.Class {
		case detector.Unknown:
			t.Skipped++
		case detector.Targeted:
			b := &t.Targeted
			b.N++
			switch {
			case o.SeenByCrawler:
				b.CR++ // FP(CR)
			case o.SemanticOverlap:
				b.CB++ // TP(CB): CB agrees by construction
			case o.F8Labeled && o.F8Targeted:
				b.F8Agree++ // TP(F8)
			case o.F8Labeled:
				b.F8Disagree++ // FP(F8)
			default:
				b.Unknown++
			}
		case detector.NonTargeted:
			b := &t.NonTargeted
			b.N++
			switch {
			case o.SeenByCrawler:
				b.CR++ // TN(CR)
			case o.SemanticOverlap:
				b.CB++ // FN(CB): CB classifies targeted
			case o.F8Labeled && !o.F8Targeted:
				b.F8Agree++ // TN(F8)
			case o.F8Labeled:
				b.F8Disagree++ // FN(F8)
			default:
				b.Unknown++
			}
		}
	}
	return t
}

// Rates reports the Figure 4 percentages, each relative to its parent
// node population (as in the figure).
type Rates struct {
	// Targeted-branch rates.
	FPCRPct, TPCBPct, TPF8Pct, FPF8Pct, UnknownTargetedPct float64
	// Non-targeted-branch rates.
	TNCRPct, FNCBPct, FNF8Pct, TNF8Pct, UnknownNonTargetedPct float64
}

func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// Rates computes the figure's percentages.
func (t *Tree) Rates() Rates {
	var r Rates
	tb, nb := t.Targeted, t.NonTargeted
	r.FPCRPct = pct(tb.CR, tb.N)
	afterCR := tb.N - tb.CR
	r.TPCBPct = pct(tb.CB, afterCR)
	noOverlap := afterCR - tb.CB
	labeled := tb.F8Agree + tb.F8Disagree
	r.TPF8Pct = pct(tb.F8Agree, labeled)
	r.FPF8Pct = pct(tb.F8Disagree, labeled)
	r.UnknownTargetedPct = pct(tb.Unknown, noOverlap)

	r.TNCRPct = pct(nb.CR, nb.N)
	nAfterCR := nb.N - nb.CR
	r.FNCBPct = pct(nb.CB, nAfterCR)
	nNoOverlap := nAfterCR - nb.CB
	nLabeled := nb.F8Agree + nb.F8Disagree
	r.TNF8Pct = pct(nb.F8Agree, nLabeled)
	r.FNF8Pct = pct(nb.F8Disagree, nLabeled)
	r.UnknownNonTargetedPct = pct(nb.Unknown, nNoOverlap)
	return r
}

// Resolver supplies the Section 7.3.3 analyses that reclassify UNKNOWN
// ads. A live deployment backs these with manual experiments; the
// simulation harness backs them with ground-truth-driven analogues of the
// same procedures.
type Resolver interface {
	// IsRetargeted runs the repeatability test: visit the ad's landing
	// page, then re-visit domains where the ad appeared, and check that
	// the ad chases the fresh profile.
	IsRetargeted(adKey string) bool
	// IsIndirectOBA runs the correlation analysis between the ad's
	// audience and topic profiles (see TopicEnrichment).
	IsIndirectOBA(adKey string, user int) bool
	// InspectNonTargeted manually reviews a non-targeted UNKNOWN ad
	// against the receiving user's profile; true confirms non-targeted.
	InspectNonTargeted(adKey string, user int) bool
}

// Resolution is the outcome of the unknown-resolution pass.
type Resolution struct {
	// Targeted-UNKNOWN ads resolved as likely TP (retargeting or indirect
	// OBA) vs likely FP.
	LikelyTP, LikelyFP int
	// Non-targeted-UNKNOWN sample results.
	SampledNonTargeted, LikelyTN, LikelyFN int
}

// ResolveUnknowns applies the Section 7.3.3 procedure: every targeted
// UNKNOWN goes through the retargeting and indirect-OBA tests; a sample
// of up to sampleSize non-targeted UNKNOWNs is "manually" inspected.
func ResolveUnknowns(obs []Observation, r Resolver, sampleSize int) Resolution {
	var res Resolution
	for _, o := range obs {
		if o.Class != detector.Targeted || o.SeenByCrawler || o.SemanticOverlap || o.F8Labeled {
			continue
		}
		if r.IsRetargeted(o.AdKey) || r.IsIndirectOBA(o.AdKey, o.User) {
			res.LikelyTP++
		} else {
			res.LikelyFP++
		}
	}
	for _, o := range obs {
		if res.SampledNonTargeted >= sampleSize {
			break
		}
		if o.Class != detector.NonTargeted || o.SeenByCrawler || o.SemanticOverlap || o.F8Labeled {
			continue
		}
		res.SampledNonTargeted++
		if r.InspectNonTargeted(o.AdKey, o.User) {
			res.LikelyTN++
		} else {
			res.LikelyFN++
		}
	}
	return res
}

// Summary is the Section 7.3.4 precision report.
type Summary struct {
	// LikelyTPRate is the fraction of targeted-classified ads that are
	// likely true positives (paper: 78%).
	LikelyTPRate float64
	// LikelyTNRate is the fraction of non-targeted-classified ads that
	// are likely true negatives (paper: 87%), extrapolating the manual
	// sample over the non-targeted UNKNOWN mass.
	LikelyTNRate float64
	// HighConfidenceTNRate is the TN(CR) share: non-targeted ads the
	// crawler corroborated (paper: 27%).
	HighConfidenceTNRate float64
}

// Summarize combines the tree and the resolution into overall precision.
func Summarize(t *Tree, res Resolution) Summary {
	var s Summary
	if t.Targeted.N > 0 {
		tp := t.Targeted.CB + t.Targeted.F8Agree + res.LikelyTP
		s.LikelyTPRate = float64(tp) / float64(t.Targeted.N)
	}
	if t.NonTargeted.N > 0 {
		tn := float64(t.NonTargeted.CR + t.NonTargeted.F8Agree)
		if res.SampledNonTargeted > 0 {
			frac := float64(res.LikelyTN) / float64(res.SampledNonTargeted)
			tn += frac * float64(t.NonTargeted.Unknown)
		}
		s.LikelyTNRate = tn / float64(t.NonTargeted.N)
		s.HighConfidenceTNRate = float64(t.NonTargeted.CR) / float64(t.NonTargeted.N)
	}
	return s
}

// TopicEnrichment implements the indirect-OBA correlation analysis: for
// the users who received an ad, test whether any interest topic is
// significantly over-represented versus the population base rate
// (one-sided z-test at significance level alpha), while sharing NO
// semantic overlap with the ad category. Such an enrichment is the
// signature of indirect targeting (Section 7.3.3's examples: techies
// receiving dating ads, programmers receiving KFC ads, ...).
func TopicEnrichment(receivers []int, interests map[int][]taxonomy.Topic,
	population int, adCategory taxonomy.Topic, alpha float64) bool {
	n := len(receivers)
	if n < 3 || population == 0 {
		return false
	}
	// Base rates per topic.
	base := make(map[taxonomy.Topic]float64)
	for _, ts := range interests {
		seen := map[taxonomy.Topic]bool{}
		for _, t := range ts {
			if !seen[t] {
				base[t]++
				seen[t] = true
			}
		}
	}
	for t := range base {
		base[t] /= float64(population)
	}
	// Receiver rates.
	recv := make(map[taxonomy.Topic]int)
	for _, u := range receivers {
		seen := map[taxonomy.Topic]bool{}
		for _, t := range interests[u] {
			if !seen[t] {
				recv[t]++
				seen[t] = true
			}
		}
	}
	zCrit := stats.NormQuantile(1 - alpha)
	for topic, k := range recv {
		p := base[topic]
		if p <= 0 || p >= 1 {
			continue
		}
		if taxonomy.Overlap(topic, adCategory) {
			continue // overlapping topics are direct targeting territory
		}
		phat := float64(k) / float64(n)
		z := (phat - p) / math.Sqrt(p*(1-p)/float64(n))
		if z > zCrit {
			return true
		}
	}
	return false
}
