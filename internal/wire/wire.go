// Package wire is eyeWnder's message layer: length-prefixed JSON frames
// over TCP. It carries the three conversations of Figure 1 — extension ↔
// back-end (blinded reports, thresholds, ad audits), extension ↔
// oprf-server (blinded PRF evaluations), and back-end ↔ crawler (visit
// instructions and collected ads).
//
// Frame format: 4-byte big-endian payload length, then a JSON envelope
// {"type": ..., "payload": ...}. Payload size is capped to keep a
// misbehaving peer from ballooning memory; a ~200 KB blinded CMS (the
// paper's Section 7.1 number) fits comfortably.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds a single frame's payload (16 MiB).
const MaxFrame = 16 << 20

// Errors returned by the package.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrClosed        = errors.New("wire: connection closed")
)

// Msg is one framed message.
type Msg struct {
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Decode unmarshals the payload into v.
func (m *Msg) Decode(v interface{}) error {
	if len(m.Payload) == 0 {
		return errors.New("wire: empty payload")
	}
	return json.Unmarshal(m.Payload, v)
}

// WriteMsg frames and writes one message.
func WriteMsg(w io.Writer, typ string, payload interface{}) error {
	env := Msg{Type: typ}
	if payload != nil {
		raw, err := json.Marshal(payload)
		if err != nil {
			return fmt.Errorf("wire: marshal %s: %w", typ, err)
		}
		env.Payload = raw
	}
	frame, err := json.Marshal(env)
	if err != nil {
		return err
	}
	if len(frame) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// ReadMsg reads one framed message.
func ReadMsg(r io.Reader) (*Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	var m Msg
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("wire: bad frame: %w", err)
	}
	return &m, nil
}

// Handler answers one request message with a response message.
type Handler func(*Msg) (respType string, resp interface{}, err error)

// ErrorPayload is the body of "error" responses.
type ErrorPayload struct {
	Error string `json:"error"`
}

// Server accepts connections and serves request/response exchanges with a
// Handler. One goroutine per connection; requests on a connection are
// processed in order.
type Server struct {
	lis     net.Listener
	handler Handler

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

// Serve starts a server on addr ("127.0.0.1:0" picks a free port).
func Serve(addr string, handler Handler) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		lis:     lis,
		handler: handler,
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Transient accept error: back off briefly.
				time.Sleep(10 * time.Millisecond)
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		req, err := ReadMsg(conn)
		if err != nil {
			return // EOF or broken peer: drop the connection
		}
		respType, resp, err := s.handler(req)
		if err != nil {
			respType, resp = "error", ErrorPayload{Error: err.Error()}
		}
		if err := WriteMsg(conn, respType, resp); err != nil {
			return
		}
	}
}

// Close stops accepting and tears down open connections.
func (s *Server) Close() error {
	close(s.done)
	err := s.lis.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is a synchronous request/response connection to a Server.
// It is safe for concurrent use; requests are serialized.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Do sends a request and decodes the response into respOut (which may be
// nil to discard). A server-side "error" response surfaces as an error.
func (c *Client) Do(reqType string, payload interface{}, respOut interface{}) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return ErrClosed
	}
	if err := WriteMsg(c.conn, reqType, payload); err != nil {
		return err
	}
	resp, err := ReadMsg(c.conn)
	if err != nil {
		return err
	}
	if resp.Type == "error" {
		var ep ErrorPayload
		if err := resp.Decode(&ep); err != nil {
			return errors.New("wire: remote error")
		}
		return fmt.Errorf("wire: remote error: %s", ep.Error)
	}
	if respOut == nil {
		return nil
	}
	return resp.Decode(respOut)
}

// Close shuts the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
