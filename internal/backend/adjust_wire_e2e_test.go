package backend

import (
	"reflect"
	"testing"

	"eyewnder/internal/wire"
)

// TestAdjustmentRoundOverWireOps drives a complete k-of-n adjustment
// round purely through the JSON control ops a remote operator would
// use — submit_report, round_status, submit_adjustment, close_round
// (with the adjustment-wait shutter), round_counts — and checks the
// finalized per-ad counts byte-match an all-n control round in which
// the silent user reports an empty sketch: the adjustment path must
// reconstruct exactly the aggregate the full roster would have
// produced.
func TestAdjustmentRoundOverWireOps(t *testing.T) {
	b, clients := newBackend(t)
	srv, err := b.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctl, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	cms, _ := testParams().NewSketch()
	submit := func(user int, round uint64) {
		t.Helper()
		if user < 3 { // user 3's control-round report is an empty sketch
			if _, err := clients[user].ObserveAd("https://ads.example/wire-adjust"); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := clients[user].Report(round)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := rep.Sketch.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.Do(wire.TypeSubmitReport, wire.SubmitReportReq{
			User: user, Round: round, Sketch: raw,
			Keystream: byte(rep.Keystream), ConfigVersion: rep.ConfigVersion,
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	status := func(round uint64) wire.RoundStatusResp {
		t.Helper()
		var st wire.RoundStatusResp
		if err := ctl.Do(wire.TypeRoundStatus, wire.CloseRoundReq{Round: round}, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// k-of-n round: users 0..2 report, user 3 stays dark.
	const kRound uint64 = 21
	for u := 0; u < 3; u++ {
		submit(u, kRound)
	}
	st := status(kRound)
	if st.Reported != 3 || len(st.Missing) != 1 || st.Missing[0] != 3 || st.Closed {
		t.Fatalf("k-of-n status = %+v", st)
	}
	// A plain close is refused while the missing user's blinding terms
	// are uncancelled, and the refusal leaves the round open.
	if err := ctl.Do(wire.TypeCloseRound, wire.CloseRoundReq{Round: kRound}, nil); err == nil {
		t.Fatal("close with uncancelled blinding succeeded")
	}
	if st = status(kRound); st.Closed {
		t.Fatalf("failed close left the round closed: %+v", st)
	}

	// Each reporter computes its share against the polled missing set
	// and uploads it over the wire; the status op tracks the count.
	for u := 0; u < 3; u++ {
		adj, err := clients[u].Adjust(kRound, cms.Cells(), st.Missing)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.Do(wire.TypeSubmitAdjust, wire.SubmitAdjustReq{
			User: u, Round: kRound, Cells: adj,
		}, nil); err != nil {
			t.Fatal(err)
		}
		if got := status(kRound).Adjusted; got != u+1 {
			t.Fatalf("after %d shares status.Adjusted = %d", u+1, got)
		}
	}
	var kClose wire.CloseRoundResp
	if err := ctl.Do(wire.TypeCloseRound, wire.CloseRoundReq{Round: kRound, AdjustWaitMS: 5000}, &kClose); err != nil {
		t.Fatal(err)
	}
	if kClose.DistinctAds < 1 || kClose.UsersTh <= 0 {
		t.Fatalf("k-of-n close = %+v", kClose)
	}
	if st = status(kRound); !st.Closed {
		t.Fatalf("k-of-n round not closed: %+v", st)
	}

	// Control round: the full roster reports (user 3 with an empty
	// sketch — it observed nothing), so no shares are owed.
	const nRound uint64 = 22
	for u := 0; u < 4; u++ {
		submit(u, nRound)
	}
	if st = status(nRound); len(st.Missing) != 0 {
		t.Fatalf("control status = %+v", st)
	}
	var nClose wire.CloseRoundResp
	if err := ctl.Do(wire.TypeCloseRound, wire.CloseRoundReq{Round: nRound}, &nClose); err != nil {
		t.Fatal(err)
	}

	// The adjusted k-of-n aggregate and the all-n aggregate hold the
	// same data (user 3 contributed nothing either way), so the
	// finalized counts must be byte-identical.
	counts := func(round uint64) map[uint64]uint64 {
		t.Helper()
		var resp wire.RoundCountsResp
		if err := ctl.Do(wire.TypeRoundCounts, wire.RoundCountsReq{Round: round}, &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Counts
	}
	kCounts, nCounts := counts(kRound), counts(nRound)
	if len(kCounts) == 0 || !reflect.DeepEqual(kCounts, nCounts) {
		t.Fatalf("adjusted counts diverge from full-roster counts: %v != %v", kCounts, nCounts)
	}
	if kClose.DistinctAds != nClose.DistinctAds {
		t.Fatalf("distinct ads diverge: %d != %d", kClose.DistinctAds, nClose.DistinctAds)
	}
}
