package blind

import (
	"testing"
)

// TestCampaignBlindingCancels: within any campaign, the roster's
// blindings still sum to zero cell-wise — the derivation is symmetric,
// so the additive-shares-of-zero property survives it.
func TestCampaignBlindingCancels(t *testing.T) {
	r := makeRoster(t, 5)
	const cells = 64
	for _, campaign := range []uint32{0, 1, 7, 0xFFFFFFFF} {
		sum := make([]uint64, cells)
		for _, p := range r.Parties {
			b := p.ForCampaign(campaign).Blinding(42, cells)
			for m := range sum {
				sum[m] += b[m]
			}
		}
		for m, v := range sum {
			if v != 0 {
				t.Fatalf("campaign %d: cell %d sums to %d, want 0", campaign, m, v)
			}
		}
	}
}

// TestCampaignDomainSeparation: the same (pair, round) must expand to
// different pads under different campaigns, and campaign 0 must be
// byte-identical to the underlying party.
func TestCampaignDomainSeparation(t *testing.T) {
	r := makeRoster(t, 3)
	p := r.Parties[0]
	const cells = 32
	base := p.Blinding(7, cells)
	if got := p.ForCampaign(0).Blinding(7, cells); !equalU64(got, base) {
		t.Fatal("campaign 0 blinding differs from legacy blinding")
	}
	c1 := p.ForCampaign(1).Blinding(7, cells)
	c2 := p.ForCampaign(2).Blinding(7, cells)
	if equalU64(c1, base) || equalU64(c2, base) || equalU64(c1, c2) {
		t.Fatal("campaign pads are not independent")
	}
}

// TestCampaignAdjustmentCancels: the adjustment shares for a missing
// user cancel that user's absence inside the campaign, mirroring the
// legacy invariant.
func TestCampaignAdjustmentCancels(t *testing.T) {
	r := makeRoster(t, 4)
	const cells, round, campaign = 16, 9, 3
	missing := []int{2}
	sum := make([]uint64, cells)
	for i, p := range r.Parties {
		if i == 2 {
			continue
		}
		cp := p.ForCampaign(campaign)
		b := cp.Blinding(round, cells)
		adj, err := cp.Adjustment(round, cells, missing)
		if err != nil {
			t.Fatal(err)
		}
		for m := range sum {
			sum[m] += b[m] - adj[m]
		}
	}
	for m, v := range sum {
		if v != 0 {
			t.Fatalf("cell %d: residual %d after adjustment", m, v)
		}
	}
}

// TestForCampaignCaching: derived parties are memoized, and campaign 0
// with the native suite is the receiver itself.
func TestForCampaignCaching(t *testing.T) {
	r := makeRoster(t, 2)
	p := r.Parties[0]
	if p.ForCampaign(0) != p {
		t.Fatal("campaign 0 should return the receiver")
	}
	a, b := p.ForCampaign(5), p.ForCampaign(5)
	if a != b {
		t.Fatal("derived party not cached")
	}
	if a == p {
		t.Fatal("campaign 5 returned the base party")
	}
	if p.ForCampaignKeystream(5, KeystreamAESCTR) == a {
		t.Fatal("suite-distinct derivations must be distinct")
	}
	if got := p.ForCampaignKeystream(5, KeystreamAESCTR).Keystream(); got != KeystreamAESCTR {
		t.Fatalf("derived suite %v", got)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
