package adsim

import (
	"fmt"
	"math"
	"time"

	"eyewnder/internal/taxonomy"
)

// Gender is a user's reported gender (the Table 2 factor G).
type Gender uint8

// Gender levels. Undisclosed is the regression base level.
const (
	GenderUndisclosed Gender = iota
	GenderFemale
	GenderMale
)

// String implements fmt.Stringer.
func (g Gender) String() string {
	switch g {
	case GenderFemale:
		return "female"
	case GenderMale:
		return "male"
	default:
		return "undisclosed"
	}
}

// Income is a user's income bracket in k€/year (the Table 2 factor L).
type Income uint8

// Income brackets. Income0to30 is the regression base level.
const (
	Income0to30 Income = iota
	Income30to60
	Income60to90
	Income90plus
)

// String implements fmt.Stringer.
func (l Income) String() string {
	switch l {
	case Income30to60:
		return "30k-60k"
	case Income60to90:
		return "60k-90k"
	case Income90plus:
		return "90k-..."
	default:
		return "0-30k"
	}
}

// Age is a user's age bracket (the Table 2 factor A).
type Age uint8

// Age brackets. Age1to20 is the regression base level.
const (
	Age1to20 Age = iota
	Age20to30
	Age30to40
	Age40to50
	Age50to60
	Age60to70
)

// String implements fmt.Stringer.
func (a Age) String() string {
	switch a {
	case Age20to30:
		return "20-30"
	case Age30to40:
		return "30-40"
	case Age40to50:
		return "40-50"
	case Age50to60:
		return "50-60"
	case Age60to70:
		return "60-70"
	default:
		return "1-20"
	}
}

// Demographics bundles the socio-economic factors of Section 8.
type Demographics struct {
	Gender Gender
	Income Income
	Age    Age
	// Employed is collected but — as in the paper — turns out to carry no
	// signal and is dropped from the final model.
	Employed bool
}

// plantedLogOdds returns the planted contribution of the demographics to
// the log-odds that a delivered ad is targeted. The coefficients are the
// natural logs of the Table 2 odds ratios, so that the logistic
// regression of Section 8 recovers them (in sign and approximate
// magnitude).
func (d Demographics) plantedLogOdds() float64 {
	v := 0.0
	switch d.Gender {
	case GenderFemale:
		v += math.Log(0.255)
	case GenderMale:
		v += math.Log(0.174)
	}
	switch d.Income {
	case Income30to60:
		v += math.Log(1.446)
	case Income60to90:
		v += math.Log(1.521)
	case Income90plus:
		v += math.Log(0.525)
	}
	switch d.Age {
	case Age20to30:
		v += math.Log(1.031)
	case Age30to40:
		v += math.Log(1.428)
	case Age40to50:
		v += math.Log(1.964)
	case Age50to60:
		v += math.Log(0.745)
	case Age60to70:
		v += math.Log(2.654)
	}
	return v
}

// User is one simulated browser/extension user.
type User struct {
	ID        int
	Interests []taxonomy.Topic
	Demo      Demographics
	// targetedShare is the per-user probability that an ad slot goes to
	// the targeted exchange, after planting demographic bias.
	targetedShare float64
}

// Site is one ad-serving website.
type Site struct {
	ID     int
	Domain string
	Topic  taxonomy.Topic
	// Inventory holds the campaign IDs of the site's non-targeted ads
	// (static deals pinned here plus topic-matched contextual ads).
	Inventory []int
	// popWeight is the Zipf popularity mass (not normalized).
	popWeight float64
}

// Kind is the campaign type; it doubles as the simulation ground truth.
type Kind uint8

// Campaign kinds.
const (
	// KindStatic is a fixed private-deal ("brand awareness") campaign:
	// shown to every visitor of its carrier sites.
	KindStatic Kind = iota
	// KindContextual matches the site topic regardless of the user.
	KindContextual
	// KindTargeted is direct behavioural targeting: ad category overlaps
	// the targeted interest.
	KindTargeted
	// KindIndirect is indirect targeting: the targeted interest and the
	// ad category share no semantic overlap (Section 2.1).
	KindIndirect
	// KindRetargeted follows users who visited the campaign's product
	// site.
	KindRetargeted
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindContextual:
		return "contextual"
	case KindTargeted:
		return "targeted"
	case KindIndirect:
		return "indirect"
	case KindRetargeted:
		return "retargeted"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsTargeted reports the ground-truth label: targeted, indirect, and
// retargeted campaigns are all "targeted" in the paper's taxonomy.
func (k Kind) IsTargeted() bool {
	return k == KindTargeted || k == KindIndirect || k == KindRetargeted
}

// Campaign is one ad campaign.
type Campaign struct {
	ID   int
	Kind Kind
	// Category is the topic of the advertised offering (and of the
	// landing page).
	Category taxonomy.Topic
	// TargetTopics are the interests a targeted campaign bids on (empty
	// for static/contextual).
	TargetTopics []taxonomy.Topic
	// CarrierSites lists the sites a static campaign is pinned to.
	CarrierSites []int
	// ProductSite triggers a retargeted campaign (-1 otherwise).
	ProductSite int
	// FrequencyCap bounds weekly impressions per user (targeted kinds).
	FrequencyCap int
}

// AdURL returns the campaign's creative URL — the identifier the
// extension reports through the privacy protocol.
func (c *Campaign) AdURL() string {
	return fmt.Sprintf("https://ads.adx%d.example/creative/%d", c.ID%7, c.ID)
}

// LandingURL returns the landing page, whose path embeds the category so
// the content-based baseline can categorize it.
func (c *Campaign) LandingURL() string {
	return fmt.Sprintf("https://shop%d.example/%s/offer-%d", c.ID%11, c.Category, c.ID)
}

// Impression is one delivered ad.
type Impression struct {
	User     int
	Site     int
	Campaign int
	// Week is the 0-based reporting round; Day is 0..6 within the week.
	Week, Day int
	Time      time.Time
}

// SimStart is the simulation epoch: a Monday, so Day 5 and 6 are the
// weekend.
var SimStart = time.Date(2019, 3, 4, 0, 0, 0, 0, time.UTC)

// Visit is one page view (with or without ads delivered) — the raw
// browsing signal the content-based baseline builds profiles from.
type Visit struct {
	User, Site, Week, Day int
}

// Result bundles a finished simulation.
type Result struct {
	Config      Config
	Users       []*User
	Sites       []*Site
	Campaigns   []*Campaign
	Impressions []Impression
	// VisitLog records every page view in order.
	VisitLog []Visit
	// Visits counts total page views (with or without ads shown).
	Visits int
}
