//go:build !purego

#include "textflag.h"

// The u64 wraparound add/sub kernels behind vec.Add/vec.Sub (and the
// per-stripe bodies of vec.Striped). Both process 16 uint64s — four
// 256-bit YMM lanes — per main-loop iteration with unaligned loads
// (stripe bounds are arbitrary), then finish the tail scalarly. The
// wrapper guarantees len(dst) == len(src); the kernels read the length
// from the src slice header.

// func addAVX2(dst, src []uint64)
TEXT ·addAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), CX

loop16:
	CMPQ CX, $16
	JL   tail
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3
	VPADDQ  (DI), Y0, Y0
	VPADDQ  32(DI), Y1, Y1
	VPADDQ  64(DI), Y2, Y2
	VPADDQ  96(DI), Y3, Y3
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	SUBQ    $16, CX
	JMP     loop16

tail:
	TESTQ CX, CX
	JZ    done

tailloop:
	MOVQ (SI), AX
	ADDQ AX, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  tailloop

done:
	VZEROUPPER
	RET

// func subAVX2(dst, src []uint64)
TEXT ·subAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), CX

loop16:
	CMPQ CX, $16
	JL   tail
	VMOVDQU (DI), Y0
	VMOVDQU 32(DI), Y1
	VMOVDQU 64(DI), Y2
	VMOVDQU 96(DI), Y3
	VPSUBQ  (SI), Y0, Y0
	VPSUBQ  32(SI), Y1, Y1
	VPSUBQ  64(SI), Y2, Y2
	VPSUBQ  96(SI), Y3, Y3
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	SUBQ    $16, CX
	JMP     loop16

tail:
	TESTQ CX, CX
	JZ    done

tailloop:
	MOVQ (SI), AX
	SUBQ AX, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  tailloop

done:
	VZEROUPPER
	RET
