package backend

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"eyewnder/internal/blind"
	"eyewnder/internal/campaign"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
	"eyewnder/internal/store"
	"eyewnder/internal/wire"
)

// testCampaigns returns n campaign definitions with deliberately
// distinct geometries (ε cycles four widths, δ two depths) and ID
// spaces, so multi-campaign tests prove per-campaign layout handling
// rather than one shared shape.
func testCampaigns(n int) []campaign.Campaign {
	out := make([]campaign.Campaign, n)
	for i := range out {
		out[i] = campaign.Campaign{
			ID:      uint32(i + 1),
			Name:    fmt.Sprintf("camp-%d", i+1),
			Epsilon: 0.02 * float64(1+i%4),
			Delta:   0.02 / float64(1+i/4%2),
			IDSpace: uint64(1024 + 512*i),
		}
	}
	return out
}

// buildCampaignFrames blinds one frame per roster member for the given
// campaign and round under the campaign-derived pairwise keys, and
// returns the unblinded oracle aggregate alongside.
func buildCampaignFrames(t *testing.T, roster *blind.Roster, c campaign.Campaign, base privacy.Params, users int, round uint64) ([]*wire.ReportFrame, *sketch.CMS) {
	t.Helper()
	params := c.Params(base)
	oracle, err := params.NewSketch()
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]*wire.ReportFrame, users)
	for u := 0; u < users; u++ {
		cms, err := params.NewSketch()
		if err != nil {
			t.Fatal(err)
		}
		var key [8]byte
		for a := 0; a < 5; a++ {
			// Distinct per-campaign ad populations: a mismatch routed to
			// the wrong campaign changes that campaign's counts.
			binary.LittleEndian.PutUint64(key[:], uint64((int(c.ID)*977+u*31+a)%int(params.IDSpace)))
			cms.Update(key[:])
			oracle.Update(key[:])
		}
		cells := append([]uint64(nil), cms.FlatCells()...)
		party := roster.Parties[u].ForCampaignKeystream(c.ID, params.Keystream)
		if err := blind.ApplyBlinding(cells, party.Blinding(round, len(cells))); err != nil {
			t.Fatal(err)
		}
		frames[u] = &wire.ReportFrame{
			User: u, Campaign: c.ID, Round: round,
			D: cms.Depth(), W: cms.Width(), N: cms.N(), Seed: cms.Seed(),
			Keystream: byte(params.Keystream),
			Cells:     cells,
		}
	}
	return frames, oracle
}

// Eight concurrent campaigns with distinct geometries over one backend:
// every campaign's finalized counts must byte-match its unblinded
// oracle, campaign 0 must keep working untouched alongside them, and
// the keyed round surfaces must report (campaign, round) correctly.
func TestEightCampaignsDistinctGeometries(t *testing.T) {
	const users = 6
	params := storeTestParams()
	b := newStoreBackend(t, params, users, nil)

	camps := testCampaigns(8)
	for _, c := range camps {
		if err := b.AddCampaign(c); err != nil {
			t.Fatalf("AddCampaign(%d): %v", c.ID, err)
		}
	}
	if got := len(b.Campaigns()); got != len(camps) {
		t.Fatalf("Campaigns() = %d, want %d", got, len(camps))
	}

	roster, err := blind.NewRosterKeystream(params.Suite, users, rand.Reader, params.Keystream)
	if err != nil {
		t.Fatal(err)
	}

	// Campaign 0 runs alongside — the legacy path must be unaffected.
	legacy, legacyOracle := buildCampaignFrames(t, roster, campaign.Campaign{ID: 0, Epsilon: params.Epsilon, Delta: params.Delta, IDSpace: params.IDSpace}, params, users, 1)

	oracles := make(map[uint32]*sketch.CMS)
	oracles[0] = legacyOracle
	frames := legacy
	for _, c := range camps {
		fs, oracle := buildCampaignFrames(t, roster, c, params, users, 1)
		frames = append(frames, fs...)
		oracles[c.ID] = oracle
	}
	// Interleave nothing — submission order across campaigns must not
	// matter, the backend demultiplexes by the frame tag.
	for _, f := range frames {
		if err := b.ConsumeReport(f); err != nil {
			t.Fatalf("campaign %d user %d: %v", f.Campaign, f.User, err)
		}
	}

	for id, oracle := range oracles {
		if _, _, err := b.CloseCampaignRound(id, 1); err != nil {
			t.Fatalf("close campaign %d: %v", id, err)
		}
		got, err := b.CampaignUserCounts(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		cp := params
		for _, c := range camps {
			if c.ID == id {
				cp = c.Params(params)
			}
		}
		want := privacy.UserCounts(oracle, cp)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("campaign %d counts differ from unblinded oracle", id)
		}
	}

	// The keyed progress surface must list all nine (campaign, round)
	// rounds with their campaign tags.
	snaps := b.RoundsProgress()
	if len(snaps) != len(camps)+1 {
		t.Fatalf("RoundsProgress: %d rounds, want %d", len(snaps), len(camps)+1)
	}
	seen := make(map[uint32]bool)
	for _, rs := range snaps {
		if rs.Round != 1 || !rs.Closed {
			t.Fatalf("snapshot %+v: want round 1 closed", rs)
		}
		seen[rs.Campaign] = true
	}
	if len(seen) != len(camps)+1 {
		t.Fatalf("snapshots cover %d campaigns, want %d", len(seen), len(camps)+1)
	}

	// Unknown campaigns are errors, never implicit state.
	if _, err := b.CampaignRoundProgress(99, 1); !errors.Is(err, ErrUnknownRound) && !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("unknown campaign progress = %v", err)
	}
	if err := b.ConsumeReport(&wire.ReportFrame{User: 0, Campaign: 99, Round: 1, D: 1, W: 8, Cells: make([]uint64, 8)}); err == nil {
		t.Fatal("report for unprovisioned campaign accepted")
	}
}

// Campaign state must survive a process kill: definitions, per-campaign
// round progress, and counts all recover from the WAL, and the finished
// rounds byte-match an uninterrupted control run.
func TestMultiCampaignKillAndRecover(t *testing.T) {
	const users = 5
	params := storeTestParams()
	camps := testCampaigns(3)
	roster, err := blind.NewRosterKeystream(params.Suite, users, rand.Reader, params.Keystream)
	if err != nil {
		t.Fatal(err)
	}

	type roundData struct {
		frames []*wire.ReportFrame
		oracle *sketch.CMS
	}
	data := make(map[uint32]roundData)
	for _, c := range camps {
		fs, oracle := buildCampaignFrames(t, roster, c, params, users, 1)
		data[c.ID] = roundData{fs, oracle}
	}

	// Control: uninterrupted run.
	control := newStoreBackend(t, params, users, nil)
	for _, c := range camps {
		if err := control.AddCampaign(c); err != nil {
			t.Fatal(err)
		}
		for _, f := range data[c.ID].frames {
			if err := control.ConsumeReport(f); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := control.CloseCampaignRound(c.ID, 1); err != nil {
			t.Fatal(err)
		}
	}

	// Crashing run: provision, fold a partial prefix per campaign, then
	// abandon backend and store without closing either.
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b1 := newStoreBackend(t, params, users, st1)
	for _, c := range camps {
		if err := b1.AddCampaign(c); err != nil {
			t.Fatal(err)
		}
		for _, f := range data[c.ID].frames[:3] {
			if err := b1.ConsumeReport(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b1.SyncReports(); err != nil {
		t.Fatal(err)
	}
	// No Close() anywhere: the kill.

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	b2 := newStoreBackend(t, params, users, st2)

	// Definitions recovered byte-for-byte.
	rec := b2.Campaigns()
	if len(rec) != len(camps) {
		t.Fatalf("recovered %d campaigns, want %d", len(rec), len(camps))
	}
	for i, c := range camps {
		if !reflect.DeepEqual(rec[i], c) {
			t.Fatalf("campaign %d recovered as %+v, want %+v", c.ID, rec[i], c)
		}
	}

	// Per-campaign progress recovered, then finish and compare.
	for _, c := range camps {
		prog, err := b2.CampaignRoundProgress(c.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if prog.Reported != 3 || prog.Closed {
			t.Fatalf("campaign %d recovered progress %+v", c.ID, prog)
		}
		for _, f := range data[c.ID].frames[3:] {
			if err := b2.ConsumeReport(f); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := b2.CloseCampaignRound(c.ID, 1); err != nil {
			t.Fatal(err)
		}
		got, err := b2.CampaignUserCounts(c.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := control.CampaignUserCounts(c.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("campaign %d: recovered counts differ from control", c.ID)
		}
		oracleCounts := privacy.UserCounts(data[c.ID].oracle, c.Params(params))
		if !reflect.DeepEqual(got, oracleCounts) {
			t.Fatalf("campaign %d: recovered counts differ from unblinded oracle", c.ID)
		}
	}
}

// A replica fed the primary's WAL must mirror multi-campaign state
// byte-identically: campaign directory, per-campaign rounds, and
// per-campaign counts.
func TestReplicaMirrorsMultiCampaignWAL(t *testing.T) {
	const users = 4
	params := storeTestParams()
	camps := testCampaigns(2)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	primary := newStoreBackend(t, params, users, st)
	roster, err := blind.NewRosterKeystream(params.Suite, users, rand.Reader, params.Keystream)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range camps {
		if err := primary.AddCampaign(c); err != nil {
			t.Fatal(err)
		}
		frames, _ := buildCampaignFrames(t, roster, c, params, users, 1)
		for _, f := range frames {
			if err := primary.ConsumeReport(f); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := primary.CloseCampaignRound(c.ID, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	replica := newReplica(t, params, users)
	feedWALInChunks(t, replica, dir, 7)

	if !reflect.DeepEqual(replica.Campaigns(), primary.Campaigns()) {
		t.Fatal("replica campaign directory differs from primary")
	}
	for _, c := range camps {
		pc, err := primary.CampaignUserCounts(c.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := replica.CampaignUserCounts(c.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pc, rc) {
			t.Fatalf("campaign %d: replica counts differ from primary", c.ID)
		}
		pt, err := primary.CampaignThreshold(c.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := replica.CampaignThreshold(c.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if pt != rt {
			t.Fatalf("campaign %d: replica Users_th %v, primary %v", c.ID, rt, pt)
		}
	}
}
