package sketch

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSBFNeverUnderestimates(t *testing.T) {
	s, err := NewSBFForElements(300, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[string]uint64{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("ad-%d", rng.Intn(300))
		s.UpdateString(k)
		truth[k]++
	}
	for k, want := range truth {
		if got := s.QueryString(k); got < want {
			t.Fatalf("Query(%q) = %d < %d", k, got, want)
		}
	}
}

func TestSBFValidation(t *testing.T) {
	if _, err := NewSBF(0, 3); err != ErrBadParams {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewSBF(3, 0); err != ErrBadParams {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewSBFForElements(0, 3); err != ErrBadParams {
		t.Fatalf("err = %v", err)
	}
	s, err := NewSBFForElements(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 4 || s.M() != 576 { // 1.44*4*100
		t.Fatalf("geometry = %d/%d", s.K(), s.M())
	}
	if s.Cells() != s.M() || s.SizeBytes(4) != 4*s.M() {
		t.Fatal("size accessors inconsistent")
	}
}

func TestSBFMergeEqualsUnion(t *testing.T) {
	a, _ := NewSBF(512, 4)
	b, _ := NewSBF(512, 4)
	u, _ := NewSBF(512, 4)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("x-%d", rng.Intn(200)))
		if i%2 == 0 {
			a.Update(k)
		} else {
			b.Update(k)
		}
		u.Update(k)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != u.N() {
		t.Fatalf("N = %d, want %d", a.N(), u.N())
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("x-%d", i))
		if a.Query(k) != u.Query(k) {
			t.Fatalf("merge mismatch at %s", k)
		}
	}
	c, _ := NewSBF(256, 4)
	if err := a.Merge(c); err != ErrDimensionMismatch {
		t.Fatalf("err = %v", err)
	}
	if err := a.Merge(nil); err != ErrDimensionMismatch {
		t.Fatalf("err = %v", err)
	}
}

func TestSBFSerializationRoundTrip(t *testing.T) {
	a, _ := NewSBF(128, 3)
	for i := 0; i < 50; i++ {
		a.UpdateString(fmt.Sprintf("k%d", i%13))
	}
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b SBF
	if err := b.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		k := fmt.Sprintf("k%d", i)
		if a.QueryString(k) != b.QueryString(k) {
			t.Fatalf("mismatch at %s", k)
		}
	}
	if err := b.UnmarshalBinary(data[:10]); err != ErrCorrupt {
		t.Fatalf("truncated err = %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[0] = 0
	if err := b.UnmarshalBinary(bad); err != ErrCorrupt {
		t.Fatalf("zero-m err = %v", err)
	}
}

func TestSBFBlindableLikeCMS(t *testing.T) {
	// The SBF must compose with the blinding layer the same way the CMS
	// does: wrap-around addition over FlatCells.
	a, _ := NewSBF(64, 3)
	a.UpdateString("x")
	cells := a.FlatCells()
	before := a.QueryString("x")
	for i := range cells {
		cells[i] += 12345 // blind
	}
	for i := range cells {
		cells[i] -= 12345 // unblind
	}
	if a.QueryString("x") != before {
		t.Fatal("blind/unblind cycle corrupted the filter")
	}
}

// Property: SBF never underestimates, for arbitrary keys.
func TestSBFPropertyNoUnderestimate(t *testing.T) {
	f := func(keys []string) bool {
		s, _ := NewSBF(128, 3)
		truth := map[string]uint64{}
		for _, k := range keys {
			s.UpdateString(k)
			truth[k]++
		}
		for k, want := range truth {
			if s.QueryString(k) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// At equal memory, compare CMS and SBF overestimation — the trade-off
// behind the paper's choice of the CMS (bounded error).
func TestSBFvsCMSAtEqualMemory(t *testing.T) {
	const distinct = 500
	cms, _ := NewWithDimensions(4, 256) // 1024 cells
	sbf, _ := NewSBF(1024, 4)           // 1024 cells
	rng := rand.New(rand.NewSource(3))
	truth := map[string]uint64{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("ad-%d", rng.Intn(distinct))
		cms.UpdateString(k)
		sbf.UpdateString(k)
		truth[k]++
	}
	var cmsOver, sbfOver float64
	for k, want := range truth {
		cmsOver += float64(cms.QueryString(k) - want)
		sbfOver += float64(sbf.QueryString(k) - want)
	}
	// Both one-sided; neither may underestimate (checked above). Just
	// assert both are finite and report the comparison in the bench.
	if cmsOver < 0 || sbfOver < 0 {
		t.Fatal("negative overestimation is impossible")
	}
}

func BenchmarkSBFUpdate(b *testing.B) {
	s, _ := NewSBFForElements(100000, 4)
	key := []byte("https://ads.example.com/creative/123456")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(key)
	}
}

// BenchmarkAblation_CMSvsSBF compares the two synopses at equal memory:
// mean overestimation over a skewed stream.
func BenchmarkAblation_CMSvsSBF(b *testing.B) {
	const distinct = 2000
	rng := rand.New(rand.NewSource(9))
	keys := make([]string, 20000)
	for i := range keys {
		keys[i] = fmt.Sprintf("ad-%d", rng.Intn(distinct))
	}
	for _, which := range []string{"CMS", "SBF"} {
		b.Run(which, func(b *testing.B) {
			var over float64
			for i := 0; i < b.N; i++ {
				truth := map[string]uint64{}
				var q interface {
					UpdateString(string)
					QueryString(string) uint64
				}
				if which == "CMS" {
					c, _ := NewWithDimensions(4, 1024)
					q = c
				} else {
					s, _ := NewSBF(4096, 4)
					q = s
				}
				for _, k := range keys {
					q.UpdateString(k)
					truth[k]++
				}
				var sum float64
				for k, want := range truth {
					sum += float64(q.QueryString(k) - want)
				}
				over = sum / float64(len(truth))
			}
			b.ReportMetric(over, "mean-overestimate")
		})
	}
}
