module eyewnder

go 1.24
