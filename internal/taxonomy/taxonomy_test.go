package taxonomy

import "testing"

func TestNamesCoverAllTopics(t *testing.T) {
	if len(names) != Count {
		t.Fatalf("names has %d entries, taxonomy has %d topics", len(names), Count)
	}
	seen := map[string]bool{}
	for _, topic := range All() {
		s := topic.String()
		if s == "" {
			t.Fatalf("topic %d has empty name", topic)
		}
		if seen[s] {
			t.Fatalf("duplicate topic name %q", s)
		}
		seen[s] = true
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for _, topic := range All() {
		got, ok := ByName(topic.String())
		if !ok || got != topic {
			t.Fatalf("ByName(%q) = %v, %v", topic.String(), got, ok)
		}
	}
	if _, ok := ByName("no-such-topic"); ok {
		t.Fatal("ByName accepted garbage")
	}
}

func TestValid(t *testing.T) {
	if !Computers.Valid() || !Photography.Valid() {
		t.Fatal("valid topics reported invalid")
	}
	if Topic(-1).Valid() || Topic(Count).Valid() {
		t.Fatal("invalid topics reported valid")
	}
	if Topic(999).String() == "" {
		t.Fatal("out-of-range String should still describe")
	}
}

func TestOverlapReflexiveSymmetric(t *testing.T) {
	for _, a := range All() {
		if !Overlap(a, a) {
			t.Fatalf("Overlap(%v,%v) = false", a, a)
		}
		for _, b := range All() {
			if Overlap(a, b) != Overlap(b, a) {
				t.Fatalf("Overlap asymmetric for %v,%v", a, b)
			}
		}
	}
}

func TestPaperIndirectExamplesDoNotOverlap(t *testing.T) {
	// Section 7.3.3's indirect-OBA examples must register as
	// non-overlapping, otherwise the CB baseline would catch them and
	// they would not be "indirect".
	cases := [][2]Topic{
		{Computers, Dating},      // example (1): techies → dating site
		{Computers, FastFood},    // example (2): programmers → KFC
		{Beauty, Seafood},        // example (3): beauty/fitness → seafood
		{Government, RealEstate}, // example (4) — gov't sites → housing
	}
	for _, c := range cases {
		if Overlap(c[0], c[1]) {
			t.Errorf("Overlap(%v, %v) = true, paper treats as indirect", c[0], c[1])
		}
	}
}

func TestDirectExamplesOverlap(t *testing.T) {
	cases := [][2]Topic{
		{Computers, Electronics},
		{Fitness, Health},
		{Food, Seafood},
		{Sports, Fitness},
	}
	for _, c := range cases {
		if !Overlap(c[0], c[1]) {
			t.Errorf("Overlap(%v, %v) = false, want true", c[0], c[1])
		}
	}
}

func TestOverlapAny(t *testing.T) {
	if !OverlapAny([]Topic{Cars, Beauty}, Fashion) {
		t.Fatal("OverlapAny missed beauty~fashion")
	}
	if OverlapAny([]Topic{Computers}, Seafood) {
		t.Fatal("OverlapAny false positive")
	}
	if OverlapAny(nil, Seafood) {
		t.Fatal("OverlapAny on empty set")
	}
}

func TestNonOverlapping(t *testing.T) {
	for _, a := range All() {
		b := NonOverlapping(a)
		if Overlap(a, b) {
			t.Fatalf("NonOverlapping(%v) = %v overlaps", a, b)
		}
	}
}
