package vec

import (
	"math/rand"
	"strings"
	"testing"
)

// knownKernels are the names Active may report (before any reason note).
var knownKernels = []string{"avx2", "neon", "generic"}

func TestActiveNamesAKnownKernel(t *testing.T) {
	got := Active()
	for _, k := range knownKernels {
		if got == k || strings.HasPrefix(got, k+" (") {
			t.Logf("vec kernels: %s", got)
			return
		}
	}
	t.Fatalf("Active() = %q, not a known kernel name", got)
}

// wraparoundValues seed the random fills so every run exercises carries
// out of the low lanes and wraps past 2⁶⁴.
var wraparoundValues = []uint64{0, 1, ^uint64(0), ^uint64(0) - 1, 1 << 63, (1 << 63) + 1, 0x8080808080808080}

func randomFill(rng *rand.Rand, v []uint64) {
	for i := range v {
		if rng.Intn(4) == 0 {
			v[i] = wraparoundValues[rng.Intn(len(wraparoundValues))]
		} else {
			v[i] = rng.Uint64()
		}
	}
}

// TestKernelEquivalence asserts the selected kernels (assembly on a
// capable host) and the generic Go loops produce bit-identical results
// over random lengths, unaligned base offsets, misaligned tails, and
// wraparound values. With `-tags purego` or EYEWNDER_NOSIMD both sides
// are the generic kernel and the test degenerates to self-consistency —
// the CI matrix runs it under every dispatch path.
func TestKernelEquivalence(t *testing.T) {
	defer ForceGeneric(false)
	rng := rand.New(rand.NewSource(1))
	lengths := []int{0, 1, 2, 3, 7, 8, 15, 16, 17, 31, 33, 63, 64, 100, 255, 1024, 19033}
	for i := 0; i < 40; i++ {
		lengths = append(lengths, rng.Intn(600))
	}
	for _, n := range lengths {
		// Slice from a random offset of a larger backing array so the
		// kernels see bases at every 8-byte alignment class of a cache
		// line, as Striped's arbitrary stripe bounds produce.
		off := rng.Intn(9)
		dstBack := make([]uint64, n+off)
		srcBack := make([]uint64, n+off)
		randomFill(rng, dstBack)
		randomFill(rng, srcBack)
		dst, src := dstBack[off:off+n], srcBack[off:off+n]

		wantAdd := make([]uint64, n)
		wantSub := make([]uint64, n)
		gotAdd := make([]uint64, n)
		gotSub := make([]uint64, n)

		ForceGeneric(true)
		copy(wantAdd, dst)
		Add(wantAdd, src)
		copy(wantSub, dst)
		Sub(wantSub, src)
		ForceGeneric(false)
		copy(gotAdd, dst)
		Add(gotAdd, src)
		copy(gotSub, dst)
		Sub(gotSub, src)

		for i := range wantAdd {
			if gotAdd[i] != wantAdd[i] {
				t.Fatalf("n=%d off=%d: Add[%d] = %#x, generic %#x (kernel %s)", n, off, i, gotAdd[i], wantAdd[i], Active())
			}
			if gotSub[i] != wantSub[i] {
				t.Fatalf("n=%d off=%d: Sub[%d] = %#x, generic %#x (kernel %s)", n, off, i, gotSub[i], wantSub[i], Active())
			}
		}

		// Encode kernels: bulk memmove vs per-word loop.
		wantBuf := make([]byte, 8*n)
		gotBuf := make([]byte, 8*n)
		ForceGeneric(true)
		PutLE(wantBuf, src)
		ForceGeneric(false)
		PutLE(gotBuf, src)
		for i := range wantBuf {
			if gotBuf[i] != wantBuf[i] {
				t.Fatalf("n=%d: PutLE byte %d = %#x, generic %#x", n, i, gotBuf[i], wantBuf[i])
			}
		}
		decGot := make([]uint64, n)
		decWant := make([]uint64, n)
		ForceGeneric(true)
		GetLE(decWant, wantBuf)
		ForceGeneric(false)
		GetLE(decGot, wantBuf)
		for i := range decWant {
			if decGot[i] != decWant[i] {
				t.Fatalf("n=%d: GetLE[%d] = %#x, generic %#x", n, i, decGot[i], decWant[i])
			}
		}
	}
}

// TestKernelEquivalenceConcurrent reruns the selected kernel under
// concurrent slicing (the striped-merge shape) against a serial generic
// sum — the -race leg of CI turns this into a data-race check on the
// dispatch layer itself.
func TestKernelEquivalenceConcurrent(t *testing.T) {
	const n = 20000
	rng := rand.New(rand.NewSource(7))
	dst := make([]uint64, n)
	want := make([]uint64, n)
	srcs := make([][]uint64, 8)
	for a := range srcs {
		srcs[a] = make([]uint64, n)
		randomFill(rng, srcs[a])
		ForceGeneric(true)
		Add(want, srcs[a])
		ForceGeneric(false)
	}
	s := NewStriped(dst, 16)
	done := make(chan struct{})
	for a := range srcs {
		go func(src []uint64) {
			s.Add(src)
			done <- struct{}{}
		}(srcs[a])
	}
	for range srcs {
		<-done
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("striped dispatch sum[%d] = %#x, generic %#x", i, dst[i], want[i])
		}
	}
}

// The dispatch indirection must not cost an allocation: these are the
// invariants the sketch/blind 0-alloc hot paths sit on.
func TestDispatchZeroAllocs(t *testing.T) {
	dst := make([]uint64, 4096)
	src := make([]uint64, 4096)
	buf := make([]byte, 8*4096)
	if a := testing.AllocsPerRun(100, func() { Add(dst, src) }); a != 0 {
		t.Fatalf("Add allocates %v per op through dispatch, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { Sub(dst, src) }); a != 0 {
		t.Fatalf("Sub allocates %v per op through dispatch, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { PutLE(buf, src) }); a != 0 {
		t.Fatalf("PutLE allocates %v per op through dispatch, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { GetLE(src, buf) }); a != 0 {
		t.Fatalf("GetLE allocates %v per op through dispatch, want 0", a)
	}
	s := NewStriped(dst, 4)
	if a := testing.AllocsPerRun(100, func() { s.Add(src) }); a != 0 {
		t.Fatalf("Striped.Add allocates %v per op through dispatch, want 0", a)
	}
}

func TestForceGenericToggles(t *testing.T) {
	before := Active()
	ForceGeneric(true)
	if got := Active(); got != "generic (forced)" {
		t.Fatalf("Active under ForceGeneric(true) = %q", got)
	}
	ForceGeneric(false)
	if got := Active(); got != before {
		t.Fatalf("ForceGeneric(false) restored %q, want %q", got, before)
	}
}

// FuzzKernelEquivalence drives the selected add/sub kernels against the
// generic reference from fuzzed byte strings (length and contents), so
// the CI fuzz smoke can grow a corpus of adversarial tails.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{0xff})
	f.Add(make([]byte, 257), []byte{0x80, 0})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		n := len(a) / 8
		if n > 1<<16 {
			n = 1 << 16
		}
		dst := make([]uint64, n)
		src := make([]uint64, n)
		GetLE(dst, a[:8*n])
		for i := range src {
			if len(b) > 0 {
				src[i] = uint64(b[i%len(b)]) << (8 * uint(i%8))
			}
			src[i] += ^uint64(0) - uint64(i)
		}
		want := append([]uint64(nil), dst...)
		ForceGeneric(true)
		Add(want, src)
		Sub(want, src)
		Add(want, src)
		ForceGeneric(false)
		got := append([]uint64(nil), dst...)
		Add(got, src)
		Sub(got, src)
		Add(got, src)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kernel %s diverges from generic at %d: %#x vs %#x", Active(), i, got[i], want[i])
			}
		}
	})
}
