package blind

import (
	"crypto/rand"
	"testing"
	"testing/quick"

	"eyewnder/internal/group"
)

func makeRoster(t testing.TB, n int) *Roster {
	t.Helper()
	r, err := NewRoster(group.P256(), n, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBlindingsSumToZero(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10} {
		r := makeRoster(t, n)
		const cells = 37
		const round = 7
		sum := make([]uint64, cells)
		for _, p := range r.Parties {
			b := p.Blinding(round, cells)
			for m := range sum {
				sum[m] += b[m]
			}
		}
		for m, v := range sum {
			if v != 0 {
				t.Fatalf("n=%d: cell %d residue %d", n, m, v)
			}
		}
	}
}

func TestBlindingsDifferAcrossRounds(t *testing.T) {
	r := makeRoster(t, 3)
	p := r.Parties[0]
	b1 := p.Blinding(1, 16)
	b2 := p.Blinding(2, 16)
	same := 0
	for i := range b1 {
		if b1[i] == b2[i] {
			same++
		}
	}
	if same == len(b1) {
		t.Fatal("blindings identical across rounds")
	}
}

func TestBlindingDeterministicPerRound(t *testing.T) {
	r := makeRoster(t, 4)
	p := r.Parties[2]
	a := p.Blinding(9, 8)
	b := p.Blinding(9, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("blinding not deterministic for fixed round")
		}
	}
}

func TestBlindedAggregateRecoversSum(t *testing.T) {
	// Full protocol sanity: blind per-user cell vectors, aggregate, verify
	// the plain sum is recovered.
	r := makeRoster(t, 5)
	const cells = 10
	const round = 3
	plainSum := make([]uint64, cells)
	agg := make([]uint64, cells)
	for ui, p := range r.Parties {
		data := make([]uint64, cells)
		for m := range data {
			data[m] = uint64(ui*100 + m)
			plainSum[m] += data[m]
		}
		if err := ApplyBlinding(data, p.Blinding(round, cells)); err != nil {
			t.Fatal(err)
		}
		for m := range agg {
			agg[m] += data[m]
		}
	}
	for m := range agg {
		if agg[m] != plainSum[m] {
			t.Fatalf("cell %d: aggregate %d != plain %d", m, agg[m], plainSum[m])
		}
	}
}

func TestFaultToleranceRestoresCancellation(t *testing.T) {
	// Users 1 and 3 fail to report. The remaining users' adjustments must
	// cancel the residue exactly.
	r := makeRoster(t, 6)
	const cells = 12
	const round = 11
	missing := []int{1, 3}
	isMissing := map[int]bool{1: true, 3: true}

	plainSum := make([]uint64, cells)
	agg := make([]uint64, cells)
	var adjustments [][]uint64
	for ui, p := range r.Parties {
		if isMissing[ui] {
			continue
		}
		data := make([]uint64, cells)
		for m := range data {
			data[m] = uint64(ui + m)
			plainSum[m] += data[m]
		}
		if err := ApplyBlinding(data, p.Blinding(round, cells)); err != nil {
			t.Fatal(err)
		}
		for m := range agg {
			agg[m] += data[m]
		}
		adj, err := p.Adjustment(round, cells, missing)
		if err != nil {
			t.Fatal(err)
		}
		adjustments = append(adjustments, adj)
	}

	// Before adjustment the aggregate is (with overwhelming probability)
	// polluted by the missing users' pairwise terms.
	polluted := false
	for m := range agg {
		if agg[m] != plainSum[m] {
			polluted = true
		}
	}
	if !polluted {
		t.Fatal("aggregate unexpectedly clean before adjustment")
	}

	if err := SubtractAdjustments(agg, adjustments...); err != nil {
		t.Fatal(err)
	}
	for m := range agg {
		if agg[m] != plainSum[m] {
			t.Fatalf("cell %d after adjustment: %d != %d", m, agg[m], plainSum[m])
		}
	}
}

func TestFaultTolerancePropertyAnySubset(t *testing.T) {
	// Property: for a 5-user roster and ANY proper nonempty missing subset,
	// the two-round protocol recovers the exact plain sum.
	r := makeRoster(t, 5)
	const cells = 6
	f := func(mask uint8, round uint16) bool {
		mask &= 0x1F
		if mask == 0 || mask == 0x1F {
			return true // need at least one reporter and one absentee
		}
		var missing []int
		isMissing := map[int]bool{}
		for i := 0; i < 5; i++ {
			if mask&(1<<i) != 0 {
				missing = append(missing, i)
				isMissing[i] = true
			}
		}
		plainSum := make([]uint64, cells)
		agg := make([]uint64, cells)
		var adjustments [][]uint64
		for ui, p := range r.Parties {
			if isMissing[ui] {
				continue
			}
			data := make([]uint64, cells)
			for m := range data {
				data[m] = uint64(ui*7 + m)
				plainSum[m] += data[m]
			}
			if err := ApplyBlinding(data, p.Blinding(uint64(round), cells)); err != nil {
				return false
			}
			for m := range agg {
				agg[m] += data[m]
			}
			adj, err := p.Adjustment(uint64(round), cells, missing)
			if err != nil {
				return false
			}
			adjustments = append(adjustments, adj)
		}
		if err := SubtractAdjustments(agg, adjustments...); err != nil {
			return false
		}
		for m := range agg {
			if agg[m] != plainSum[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjustmentValidation(t *testing.T) {
	r := makeRoster(t, 3)
	p := r.Parties[1]
	if _, err := p.Adjustment(1, 4, []int{5}); err != ErrUnknownUser {
		t.Fatalf("out-of-range err = %v", err)
	}
	if _, err := p.Adjustment(1, 4, []int{1}); err == nil {
		t.Fatal("self-adjustment accepted")
	}
	// Duplicates are tolerated and counted once.
	a, err := p.Adjustment(1, 4, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Adjustment(1, 4, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("duplicate missing entries double-counted")
		}
	}
}

func TestNewPartyValidation(t *testing.T) {
	s := group.P256()
	k1, _ := s.GenerateKey(rand.Reader)
	k2, _ := s.GenerateKey(rand.Reader)
	roster := [][]byte{k1.PublicKey(), k2.PublicKey()}
	if _, err := NewParty(k1, roster[:1], 0); err != ErrRosterTooSmall {
		t.Fatalf("small roster err = %v", err)
	}
	if _, err := NewParty(k1, roster, 5); err != ErrUnknownUser {
		t.Fatalf("bad index err = %v", err)
	}
	if _, err := NewParty(k1, roster, 1); err != ErrNotInRoster {
		t.Fatalf("wrong slot err = %v", err)
	}
	p, err := NewParty(k1, roster, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Index() != 0 || p.RosterSize() != 2 {
		t.Fatalf("party metadata: %d/%d", p.Index(), p.RosterSize())
	}
}

func TestNewRosterValidation(t *testing.T) {
	if _, err := NewRoster(group.P256(), 1, rand.Reader); err != ErrRosterTooSmall {
		t.Fatalf("err = %v", err)
	}
}

func TestApplySubtractLengthChecks(t *testing.T) {
	if err := ApplyBlinding(make([]uint64, 3), make([]uint64, 4)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := SubtractAdjustments(make([]uint64, 3), make([]uint64, 4)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestTrafficBytes(t *testing.T) {
	// Section 7.1: the paper reports 0.38 MB for 10k users. With ~33-65B
	// EC keys we land in the same order of magnitude; with MODP2048 keys
	// (256 B) it is ~2.6 MB for 10k. Just verify linear scaling here.
	a := TrafficBytes(group.P256(), 10000)
	b := TrafficBytes(group.P256(), 50000)
	if b != 5*a {
		t.Fatalf("traffic not linear: %d vs %d", a, b)
	}
}

func TestMissingSet(t *testing.T) {
	got := MissingSet([]int{3, 1, 3, 2, 1})
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("MissingSet = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MissingSet = %v", got)
		}
	}
}

func BenchmarkBlindingVector5kCells(b *testing.B) {
	r := makeRoster(b, 10)
	p := r.Parties[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Blinding(uint64(i), 5000)
	}
}
