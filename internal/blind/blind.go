// Package blind implements the additive-random-shares-of-zero blinding of
// Kursawe, Danezis and Kohlweiss that eyeWnder uses to hide individual
// count-min-sketch reports from the back-end server (Section 6, "Blinding
// factors").
//
// Every user i holds a Diffie–Hellman key pair; the public keys are on a
// bulletin board. For reporting round s, user i blinds cell m with
//
//	b_i[m] = Σ_{j≠i} PRF(k_ij, s, m) · (−1)^{i<j}   (mod 2⁶⁴)
//
// where k_ij is the pairwise DH secret (k_ij = k_ji). Because each pair
// contributes the same pseudo-random value once positively and once
// negatively, Σ_i b_i[m] ≡ 0 for every cell, so the server recovers the
// exact aggregate while each individual report is uniformly random.
//
// The PRF is expanded in counter mode under one of two suites (see the
// Keystream type): HMAC-SHA256 (suite 0x00, four factors per invocation)
// or AES-256-CTR (suite 0x01, eight factors per AES-NI-pipelined 64-byte
// refill). The independent pairwise streams are fanned out across CPU
// cores. The suite is protocol state — reports carry the byte and the
// aggregator rejects mixed-suite rounds.
//
// Fault tolerance (Section 6, "Fault-tolerance"): if a subset of users
// fails to report, the residual noise in the aggregate is exactly the sum
// of the pairwise terms between reporters and non-reporters. In a second
// round the server publishes the missing-user list and each reporter
// returns its adjustment share Adjustment(missing); subtracting those
// shares restores perfect cancellation. This mirrors the 2-round recovery
// of Melis et al. [41] that the paper adopts.
//
// All cell arithmetic is uint64 with natural wrap-around, matching the
// sketch package.
package blind

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"eyewnder/internal/group"
	"eyewnder/internal/vec"
)

// Errors returned by the package.
var (
	ErrRosterTooSmall = errors.New("blind: roster needs at least 2 users")
	ErrNotInRoster    = errors.New("blind: own public key not in roster")
	ErrUnknownUser    = errors.New("blind: user index out of range")
	ErrUnknownSuite   = errors.New("blind: unknown keystream suite")
)

// Keystream is the suite byte selecting how pairwise keys expand into
// per-cell blinding factors. The suite is part of the protocol: every
// party in a round must run the same one or the pairwise terms would not
// cancel, so reports carry the byte on the wire and the aggregator
// rejects mismatches. The zero value is the original HMAC expansion, so
// old reports (which never carried a suite byte) still verify.
type Keystream byte

const (
	// KeystreamHMACSHA256 (suite byte 0x00) is counter-mode HMAC-SHA256:
	// four 64-bit factors per PRF invocation. The original expansion.
	KeystreamHMACSHA256 Keystream = 0x00
	// KeystreamAESCTR (suite byte 0x01) is AES-256-CTR over a
	// domain-separated key: eight factors per 64-byte refill, and the
	// bulk keystream generation rides AES-NI.
	KeystreamAESCTR Keystream = 0x01
)

// Valid reports whether the suite byte names a known expansion.
func (k Keystream) Valid() bool {
	return k == KeystreamHMACSHA256 || k == KeystreamAESCTR
}

// String names the suite as accepted by KeystreamByName.
func (k Keystream) String() string {
	switch k {
	case KeystreamHMACSHA256:
		return "hmac-sha256"
	case KeystreamAESCTR:
		return "aes-ctr"
	}
	return fmt.Sprintf("unknown(0x%02x)", byte(k))
}

// KeystreamByName resolves a flag-friendly suite name.
func KeystreamByName(name string) (Keystream, error) {
	switch name {
	case "hmac-sha256", "hmac":
		return KeystreamHMACSHA256, nil
	case "aes-ctr", "aesctr", "aes":
		return KeystreamAESCTR, nil
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownSuite, name)
}

// Party is one user's view of the blinding protocol: its own secret key
// plus the derived pairwise secrets with every other roster member.
type Party struct {
	index    int      // own position in the roster
	pairKeys [][]byte // pairKeys[j] = k_ij (nil for j == index)
	peers    []int    // every roster index except our own
	n        int
	ks       Keystream // factor expansion suite (must match roster-wide)

	// derivedCache memoizes per-campaign derived parties (campaign.go).
	derivedCache
}

// NewParty derives the pairwise secrets between the holder of priv (whose
// public key must appear at position `index` in roster) and every other
// roster member, using the default HMAC-SHA256 keystream. Roster order
// must be identical across all parties — it is the bulletin board.
func NewParty(priv group.PrivateKey, roster [][]byte, index int) (*Party, error) {
	return NewPartyKeystream(priv, roster, index, KeystreamHMACSHA256)
}

// NewPartyKeystream is NewParty with an explicit factor-expansion suite.
// Every party in a deployment must use the same suite: the pairwise terms
// only cancel when both sides of each pair expand the same stream.
func NewPartyKeystream(priv group.PrivateKey, roster [][]byte, index int, ks Keystream) (*Party, error) {
	if !ks.Valid() {
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownSuite, byte(ks))
	}
	n := len(roster)
	if n < 2 {
		return nil, ErrRosterTooSmall
	}
	if index < 0 || index >= n {
		return nil, ErrUnknownUser
	}
	own := priv.PublicKey()
	if !bytesEqual(own, roster[index]) {
		return nil, ErrNotInRoster
	}
	p := &Party{index: index, n: n, pairKeys: make([][]byte, n), peers: make([]int, 0, n-1), ks: ks}
	for j, pub := range roster {
		if j == index {
			continue
		}
		k, err := priv.SharedSecret(pub)
		if err != nil {
			return nil, fmt.Errorf("blind: deriving pair key with user %d: %w", j, err)
		}
		p.pairKeys[j] = k
		p.peers = append(p.peers, j)
	}
	return p, nil
}

// Index returns the party's roster position.
func (p *Party) Index() int { return p.index }

// Keystream returns the party's factor-expansion suite.
func (p *Party) Keystream() Keystream { return p.ks }

// RosterSize returns the number of users in the roster.
func (p *Party) RosterSize() int { return p.n }

// parallelWork is the peer-count × cell-count product above which
// accumulate fans out across workers. Below it the per-worker scratch
// vectors and reduction cost more than the HMAC work they spread out.
const parallelWork = 1 << 15

// accumulate folds the signed keystreams of the given peers into out:
// out[m] += Σ_j ±PRF(k_ij, round, m), with +1 when p.index > j and −1
// otherwise. Pairs are independent, so they are sharded across workers
// via vec.Parallel, each accumulating into a private vector that is then
// reduced into out.
func (p *Party) accumulate(out []uint64, round uint64, peers []int) {
	if len(peers)*len(out) < parallelWork {
		p.accumulateSerial(out, round, peers)
		return
	}
	var mu sync.Mutex
	vec.Parallel(len(peers), 1, func(lo, hi int) {
		if lo == 0 && hi == len(peers) {
			// Single worker (e.g. GOMAXPROCS=1): skip the scratch copy.
			p.accumulateSerial(out, round, peers)
			return
		}
		local := make([]uint64, len(out))
		p.accumulateSerial(local, round, peers[lo:hi])
		mu.Lock()
		vec.Add(out, local)
		mu.Unlock()
	})
}

// accumulateSerial is the single-goroutine kernel behind accumulate: one
// counter-mode keystream per peer, expanded by the party's suite. The
// switch hoists suite dispatch out of the per-cell loop so each suite's
// next() stays a direct (inlinable) call.
func (p *Party) accumulateSerial(out []uint64, round uint64, peers []int) {
	switch p.ks {
	case KeystreamAESCTR:
		var ks aesKeystream
		for _, j := range peers {
			ks.init(p.pairKeys[j], round, 0)
			ks.accumulate(out, p.index > j)
		}
	default:
		var ks keystream
		for _, j := range peers {
			ks.init(p.pairKeys[j], round, 0)
			ks.accumulate(out, p.index > j)
		}
	}
}

// Blinding returns the party's blinding vector for `cells` sketch cells in
// round `round`. Adding this vector (mod 2⁶⁴) to the party's sketch cells
// makes the report uniformly random to the server.
func (p *Party) Blinding(round uint64, cells int) []uint64 {
	out := make([]uint64, cells)
	p.accumulate(out, round, p.peers)
	return out
}

// Adjustment returns the party's second-round share for the given missing
// roster indices: the sum of its pairwise terms with every missing user.
// The server subtracts the adjustments of all reporters from the first-
// round aggregate to cancel the residue left by the absent reports.
func (p *Party) Adjustment(round uint64, cells int, missing []int) ([]uint64, error) {
	seen := make(map[int]bool, len(missing))
	peers := make([]int, 0, len(missing))
	for _, j := range missing {
		if j < 0 || j >= p.n {
			return nil, ErrUnknownUser
		}
		if j == p.index {
			return nil, fmt.Errorf("blind: user %d asked to adjust for itself", j)
		}
		if seen[j] {
			continue
		}
		seen[j] = true
		peers = append(peers, j)
	}
	out := make([]uint64, cells)
	p.accumulate(out, round, peers)
	return out, nil
}

// ApplyBlinding adds the blinding vector to cells in place.
func ApplyBlinding(cells []uint64, blinding []uint64) error {
	if len(cells) != len(blinding) {
		return errors.New("blind: length mismatch")
	}
	vec.Add(cells, blinding)
	return nil
}

// SubtractAdjustments removes the reporters' second-round shares from the
// aggregated cells in place.
func SubtractAdjustments(cells []uint64, adjustments ...[]uint64) error {
	for _, adj := range adjustments {
		if len(adj) != len(cells) {
			return errors.New("blind: length mismatch")
		}
		vec.Sub(cells, adj)
	}
	return nil
}

// Roster is a convenience builder for the bulletin board: it generates n
// key pairs under the given suite and returns the parties plus the shared
// public-key list. Production deployments exchange public keys out of
// band; simulations and tests use this.
type Roster struct {
	Suite   group.Suite
	Publics [][]byte
	Parties []*Party
}

// NewRoster generates a full roster of n users with the default
// HMAC-SHA256 keystream.
func NewRoster(suite group.Suite, n int, rng io.Reader) (*Roster, error) {
	return NewRosterKeystream(suite, n, rng, KeystreamHMACSHA256)
}

// NewRosterKeystream is NewRoster with an explicit factor-expansion
// suite, applied uniformly to every party (as a deployment must).
func NewRosterKeystream(suite group.Suite, n int, rng io.Reader, ks Keystream) (*Roster, error) {
	if n < 2 {
		return nil, ErrRosterTooSmall
	}
	privs := make([]group.PrivateKey, n)
	pubs := make([][]byte, n)
	for i := 0; i < n; i++ {
		k, err := suite.GenerateKey(rng)
		if err != nil {
			return nil, err
		}
		privs[i] = k
		pubs[i] = k.PublicKey()
	}
	parties := make([]*Party, n)
	for i := 0; i < n; i++ {
		p, err := NewPartyKeystream(privs[i], pubs, i, ks)
		if err != nil {
			return nil, err
		}
		parties[i] = p
	}
	return &Roster{Suite: suite, Publics: pubs, Parties: parties}, nil
}

// TrafficBytes estimates the bulletin-board exchange size for n users
// under the suite: every user downloads the other n−1 public keys and
// uploads its own. This is the quantity the paper reports as 0.38 MB /
// 1.9 MB for 10k / 50k users (Section 7.1).
func TrafficBytes(suite group.Suite, n int) int {
	return n * suite.PublicKeySize()
}

// MissingSet normalizes a missing-user list: sorted, deduplicated.
func MissingSet(missing []int) []int {
	cp := append([]int(nil), missing...)
	sort.Ints(cp)
	out := cp[:0]
	for i, v := range cp {
		if i == 0 || v != cp[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
