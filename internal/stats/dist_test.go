package stats

import (
	"math"
	"testing"
)

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{1, 0.8413447461},
		{-3, 0.0013498980},
	}
	for _, c := range cases {
		if got := NormCDF(c.x); math.Abs(got-c.want) > 1e-8 {
			t.Errorf("NormCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999} {
		x := NormQuantile(p)
		if got := NormCDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("NormCDF(NormQuantile(%v)) = %v", p, got)
		}
	}
}

func TestNormQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormQuantile(%v) did not panic", p)
				}
			}()
			NormQuantile(p)
		}()
	}
}

func TestWaldTest(t *testing.T) {
	// coef/se = 1.96 => p ~ 0.05.
	z, p := WaldTest(1.959963985, 1)
	if math.Abs(z-1.959963985) > 1e-12 {
		t.Fatalf("z = %v", z)
	}
	if math.Abs(p-0.05) > 1e-6 {
		t.Fatalf("p = %v, want 0.05", p)
	}
	z, p = WaldTest(0, 0)
	if z != 0 || p != 1 {
		t.Fatalf("WaldTest(0,0) = %v, %v", z, p)
	}
	z, p = WaldTest(2, 0)
	if !math.IsInf(z, 1) || p != 0 {
		t.Fatalf("WaldTest(2,0) = %v, %v", z, p)
	}
	z, _ = WaldTest(-2, 0)
	if !math.IsInf(z, -1) {
		t.Fatalf("WaldTest(-2,0) z = %v", z)
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{3.841458821, 1, 0.95},
		{5.991464547, 2, 0.95},
		{0, 3, 0},
		{-1, 3, 0},
		{7.814727903, 3, 0.95},
		{18.30703805, 10, 0.95},
	}
	for _, c := range cases {
		if got := ChiSquareCDF(c.x, c.k); math.Abs(got-c.want) > 1e-7 {
			t.Errorf("ChiSquareCDF(%v,%d) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
}

func TestChiSquareSF(t *testing.T) {
	if got := ChiSquareSF(3.841458821, 1); math.Abs(got-0.05) > 1e-7 {
		t.Fatalf("SF = %v, want 0.05", got)
	}
}

func TestChiSquareMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.1; x < 40; x += 0.5 {
		cur := ChiSquareCDF(x, 5)
		if cur < prev {
			t.Fatalf("CDF decreased at x=%v: %v < %v", x, cur, prev)
		}
		if cur < 0 || cur > 1 {
			t.Fatalf("CDF out of [0,1] at x=%v: %v", x, cur)
		}
		prev = cur
	}
}
