#!/usr/bin/env bash
# Multi-campaign e2e: the full campaign story against real binaries.
#
#  1. Pipeline oracle match — `eyewnder-sim -pipeline` renders adsim
#     pages, detects ads, maps them to campaigns, streams blinded
#     reports for 8 campaigns over one connection, and byte-matches
#     every (campaign, round) count against an unblinded oracle. Run
#     it twice with one seed: both runs must match their oracles on
#     every campaign-round AND produce the same fold digest.
#  2. Concurrent load — `eyewnder-sim -load -load-campaigns` multiplexes
#     campaign 0 plus N provisioned campaigns over one batched
#     connection with -scrape live. The per-campaign
#     eyewnder_campaign_reports_accepted_total series must be visible
#     mid-run and their deltas must sum to the summary's report count.
#  3. Durable directory + config bump + SIGKILL — `eyewnder-server
#     -campaigns` provisions a directory on a durable store, serves a
#     full client round, dies by SIGKILL, and restarts with a bumped
#     spec that changes retain/cadence ONLY (geometry is pinned by
#     live rounds). The recovered /statusz must show the closed round,
#     the intact directory, and the bumped knobs.
#
# Usage: multicampaign_e2e.sh <bin-dir> <artifact-dir>
#   bin-dir      : directory holding eyewnder-sim, eyewnder-server,
#                  eyewnder-client
#   artifact-dir : where summaries and scraped bodies land
set -euo pipefail

bin="$1"
arts="$2"
mkdir -p "$arts"

BE=127.0.0.1:7941
OPRF=127.0.0.1:7942
ADMIN=127.0.0.1:7943
SCRAPE=127.0.0.1:7944

dir="$(mktemp -d)"
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
}
trap cleanup EXIT

# poll_until <seconds> <cmd...>: retry a predicate at 4 Hz.
poll_until() {
    local secs="$1" i
    shift
    for i in $(seq 1 $((secs * 4))); do
        if "$@" >/dev/null 2>&1; then return 0; fi
        sleep 0.25
    done
    echo "timed out waiting for: $*" >&2
    return 1
}

# jq_check <file> <expr>: require a jq boolean to hold on a JSON file.
jq_check() {
    if [ "$(jq "$2" "$1")" != "true" ]; then
        echo "assertion failed on $1: $2" >&2
        jq . "$1" >&2 || cat "$1" >&2
        exit 1
    fi
}

echo "== 1. pipeline: 8 campaigns byte-matched against the oracle, twice =="
"$bin/eyewnder-sim" -pipeline -pipeline-users 12 -pipeline-weeks 2 \
    -pipeline-campaigns 8 -seed 5 >"$dir/pipe1.out" 2>"$arts/pipeline_run1.log"
tail -1 "$dir/pipe1.out" >"$arts/pipeline_run1.json"
jq_check "$arts/pipeline_run1.json" '.schema == "eyewnder-pipeline/v1"'
jq_check "$arts/pipeline_run1.json" '.campaigns == 8 and .rounds == 2'
# Every (campaign, round) pair matched its oracle exactly.
jq_check "$arts/pipeline_run1.json" '.matched_campaigns == .campaigns * .rounds'
jq_check "$arts/pipeline_run1.json" '.reports == .users * .rounds * .campaigns'
jq_check "$arts/pipeline_run1.json" '.ads_mapped > 0 and .pages > 0'

"$bin/eyewnder-sim" -pipeline -pipeline-users 12 -pipeline-weeks 2 \
    -pipeline-campaigns 8 -seed 5 >"$dir/pipe2.out" 2>/dev/null
tail -1 "$dir/pipe2.out" >"$arts/pipeline_run2.json"
d1="$(jq -r .digest "$arts/pipeline_run1.json")"
d2="$(jq -r .digest "$arts/pipeline_run2.json")"
if [ -z "$d1" ] || [ "$d1" != "$d2" ]; then
    echo "pipeline digest not deterministic: $d1 vs $d2" >&2
    exit 1
fi
echo "   digest $d1 reproduced"

echo "== 2. load: campaign 0 + 4 campaigns multiplexed, scraped live =="
"$bin/eyewnder-sim" -load 24 -load-rounds 2 -load-campaigns 4 -load-ads 20 \
    -scrape "$SCRAPE" >"$dir/load.out" 2>"$arts/load_run.log" &
load_pid=$!
pids+=($load_pid)
# The per-campaign series must be live on /metrics while ingest runs.
poll_until 60 sh -c "curl -sf http://$SCRAPE/metrics | grep -q 'eyewnder_campaign_reports_accepted_total{campaign=\"4\"}'"
curl -sf "http://$SCRAPE/metrics" >"$arts/load_metrics_midrun.txt"
grep -c '^eyewnder_campaign_reports_accepted_total{' "$arts/load_metrics_midrun.txt" \
    | grep -qx 5 # campaign 0 plus campaigns 1..4
wait "$load_pid"
tail -1 "$dir/load.out" >"$arts/load_summary.json"
jq_check "$arts/load_summary.json" '.campaigns == 4'
# 24 users x 2 rounds x (campaign 0 + 4 campaigns) frames accepted.
jq_check "$arts/load_summary.json" '.reports == .users * .rounds * 5'
jq_check "$arts/load_summary.json" '.metrics["eyewnder_reports_accepted_total"] == .reports'
jq_check "$arts/load_summary.json" '.metrics["eyewnder_rounds_closed_total"] == .rounds * 5'
# The scraped per-campaign accepted series sum exactly to the summary.
jq_check "$arts/load_summary.json" \
    '.reports as $r | [.metrics | to_entries[] | select(.key | startswith("eyewnder_campaign_reports_accepted_total{")) | .value] | length == 5 and add == $r'

echo "== 3. server: durable directory, SIGKILL, retain/cadence bump =="
spec1='id=1,name=autos,eps=0.02,delta=0.01,ids=4096,retain=2,cadence=300;id=2,name=travel,eps=0.01,delta=0.01,ids=8192,ks=aes-ctr'
"$bin/eyewnder-server" -backend "$BE" -oprf "$OPRF" -users 3 \
    -campaigns "$spec1" -data-dir "$dir/server" -admin "$ADMIN" \
    >"$dir/server1.log" 2>&1 &
pids+=($!)
server_pid=$!
poll_until 20 curl -sf "http://$ADMIN/healthz"

curl -sf "http://$ADMIN/statusz" >"$arts/statusz_before.json"
jq_check "$arts/statusz_before.json" '.campaigns | length == 2'
jq_check "$arts/statusz_before.json" '.campaigns[0] | .id == 1 and .name == "autos" and .retain_rounds == 2 and .cadence_sec == 300'
jq_check "$arts/statusz_before.json" '.campaigns[1] | .id == 2 and .id_space == 8192'

# A full roster round of legacy (campaign-0) traffic rides the same
# deployment the directory is provisioned on.
"$bin/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 0 -visits 10 >"$dir/c0.log" 2>&1 &
c0=$!
"$bin/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 1 -visits 10 >"$dir/c1.log" 2>&1 &
c1=$!
"$bin/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 2 -visits 10 -close >"$dir/c2.log" 2>&1
wait "$c0" "$c1"
grep -q "closed: Users_th" "$dir/c2.log"
curl -sf "http://$ADMIN/metrics" | grep -q '^eyewnder_campaign_reports_accepted_total{campaign="0"} 3$'

kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true

# Restart with a bumped spec: retain/cadence move, geometry does not
# (live rounds pin their geometry; only operational knobs may drift).
spec2='id=1,name=autos,eps=0.02,delta=0.01,ids=4096,retain=5,cadence=600;id=2,name=travel,eps=0.01,delta=0.01,ids=8192,ks=aes-ctr,retain=3'
"$bin/eyewnder-server" -backend "$BE" -oprf "$OPRF" -users 3 \
    -campaigns "$spec2" -data-dir "$dir/server" -admin "$ADMIN" \
    >"$dir/server2.log" 2>&1 &
pids+=($!)
poll_until 20 curl -sf "http://$ADMIN/healthz"

curl -sf "http://$ADMIN/statusz" >"$arts/statusz_after.json"
# The directory survived the crash and the bump took.
jq_check "$arts/statusz_after.json" '.campaigns | length == 2'
jq_check "$arts/statusz_after.json" '.campaigns[0] | .id == 1 and .name == "autos" and .retain_rounds == 5 and .cadence_sec == 600'
jq_check "$arts/statusz_after.json" '.campaigns[0] | .epsilon == 0.02 and .id_space == 4096'
jq_check "$arts/statusz_after.json" '.campaigns[1] | .retain_rounds == 3 and .id_space == 8192'
# The closed campaign-0 round was recovered with its full roster.
jq_check "$arts/statusz_after.json" '[.rounds[] | select(.campaign == 0 and .round == 1)] | length == 1 and .[0].closed and .[0].reported == 3'

# And the recovered deployment still serves: round 2 end to end.
"$bin/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 0 -visits 10 -round 2 >"$dir/r0.log" 2>&1 &
r0=$!
"$bin/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 1 -visits 10 -round 2 >"$dir/r1.log" 2>&1 &
r1=$!
"$bin/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 2 -visits 10 -round 2 -close >"$dir/r2.log" 2>&1
wait "$r0" "$r1"
grep -q "closed: Users_th" "$dir/r2.log"

echo "OK: campaigns multiplexed, scraped, crashed, bumped, recovered"
