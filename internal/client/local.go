package client

import (
	"eyewnder/internal/backend"
	"eyewnder/internal/privacy"
)

// LocalBackend adapts an in-process *backend.Backend to BackendAPI, so
// simulations and tests can run the full protocol without TCP.
type LocalBackend struct{ B *backend.Backend }

// NegotiateConfig implements ConfigNegotiator: in-process, the
// "handshake" is a direct read of the back-end's current config.
func (l *LocalBackend) NegotiateConfig() (privacy.RoundConfig, error) {
	return l.B.CurrentConfig(), nil
}

// Register implements BackendAPI.
func (l *LocalBackend) Register(user int, publicKey []byte) (int, error) {
	return l.B.Register(user, publicKey)
}

// Roster implements BackendAPI.
func (l *LocalBackend) Roster() ([][]byte, uint32, uint32, error) {
	keys, cv, rv := l.B.Roster()
	return keys, cv, rv, nil
}

// SubmitReport implements BackendAPI: in-process, the report is handed
// to the back-end as-is — no marshal/unmarshal round-trip at all.
func (l *LocalBackend) SubmitReport(rep *privacy.Report) error {
	return l.B.SubmitReport(rep)
}

// RoundStatus implements BackendAPI.
func (l *LocalBackend) RoundStatus(round uint64) (int, []int, bool, error) {
	return l.B.RoundStatus(round)
}

// SubmitAdjustment implements BackendAPI.
func (l *LocalBackend) SubmitAdjustment(user int, round uint64, cells []uint64) error {
	return l.B.SubmitAdjustment(user, round, cells)
}

// Threshold implements BackendAPI.
func (l *LocalBackend) Threshold(round uint64) (float64, error) {
	return l.B.Threshold(round)
}

// AuditAd implements BackendAPI.
func (l *LocalBackend) AuditAd(round uint64, adID uint64) (uint64, error) {
	return l.B.AuditAd(round, adID)
}
