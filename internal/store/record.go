package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"eyewnder/internal/vec"
)

// WAL record framing. Every record is
//
//	┌────────────┬────────┬──────────┬─────────────────┐
//	│ length     │ kind   │ body     │ crc32c          │
//	│ 4 B, LE    │ 1 B    │ length B │ 4 B, LE, over   │
//	│ = len(body)│        │          │ kind ‖ body     │
//	└────────────┴────────┴──────────┴─────────────────┘
//
// The CRC (Castagnoli) is what makes torn writes detectable: a crash
// mid-append leaves a record whose length field, body, or checksum is
// incomplete, and replay stops cleanly at the last record that checks
// out. The length field is validated against maxRecordBody before any
// allocation, so a corrupt length cannot provoke a huge read buffer.
//
// Record kinds and body layouts (all integers little-endian):
//
//	recRegister  user(8) publicKey(rest)
//	recOpen      round(8) roster(8) d(8) w(8) seed(8) keystream(1)
//	recReport    user(8) round(8) d(8) w(8) n(8) seed(8) keystream(1)
//	             reserved(7) cells(8·d·w)   — the wire frame payload
//	recAdjust    round(8) user(8) cells(8·c)
//	recClose     round(8)
//
// The report body deliberately mirrors the streamed wire frame's
// payload byte-for-byte (wire/stream.go): the back-end logs the report
// while its pooled cell slice is still borrowed from the connection,
// and reusing the frame layout keeps that append a straight copy with
// no re-marshalling.

// Record kinds.
const (
	recRegister = 0x01
	recOpen     = 0x02
	recReport   = 0x03
	recAdjust   = 0x04
	recClose    = 0x05
)

// reportPreamble is the fixed prefix of a report body: user(8) round(8)
// d(8) w(8) n(8) seed(8) keystream(1) reserved(7) — identical to the
// wire report frame's preamble.
const reportPreamble = 56

// openBody is the fixed size of a round-open body.
const openBody = 41

// maxRecordBody caps a record body (mirrors wire.MaxFrame): the largest
// legitimate record is a report, whose cell block the wire layer
// already caps at 16 MiB.
const maxRecordBody = 16 << 20

// Geometry bounds for decoded report headers, mirroring the wire
// layer's: d·w is additionally tied to the record length, so a hostile
// header cannot claim more cells than the record carries.
const (
	maxReportDepth = 1 << 20
	maxReportWidth = 1 << 32
)

// Errors of the record layer.
var (
	// ErrCorruptRecord marks a record whose length, kind, or checksum is
	// invalid — the point where a segment's replay stops.
	ErrCorruptRecord = errors.New("store: corrupt WAL record")
	// ErrBadRecord marks a structurally valid record whose body does not
	// parse (wrong size for its kind, impossible geometry).
	ErrBadRecord = errors.New("store: malformed WAL record body")
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord writes one framed record: the 5-byte length+kind header,
// the body pieces in order, and the trailing CRC over kind+body. Body
// pieces are written as given (no concatenation), so a report's cell
// block streams straight from the caller's (possibly pooled) memory.
func appendRecord(w io.Writer, kind byte, body ...[]byte) error {
	n := 0
	for _, b := range body {
		n += len(b)
	}
	if n > maxRecordBody {
		return fmt.Errorf("%w: %d-byte body", ErrBadRecord, n)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	crc := crc32.Update(0, castagnoli, hdr[4:5])
	for _, b := range body {
		if _, err := w.Write(b); err != nil {
			return err
		}
		crc = crc32.Update(crc, castagnoli, b)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	_, err := w.Write(tail[:])
	return err
}

// ReadWALRecord reads one framed record from r. buf is an optional
// reusable scratch buffer; the returned body aliases it (or a grown
// replacement, also returned) and is valid until the next call. A clean
// end of input returns io.EOF; a torn or corrupt record returns
// ErrCorruptRecord. Exported so the fuzz harness and offline WAL tools
// share the exact decoder recovery runs.
func ReadWALRecord(r io.Reader, buf []byte) (kind byte, body, newBuf []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, buf, io.EOF
		}
		return 0, nil, buf, fmt.Errorf("%w: %v", ErrCorruptRecord, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, buf, fmt.Errorf("%w: torn header: %v", ErrCorruptRecord, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	kind = hdr[4]
	if n > maxRecordBody {
		return 0, nil, buf, fmt.Errorf("%w: %d-byte body", ErrCorruptRecord, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	body = buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, buf, fmt.Errorf("%w: torn body: %v", ErrCorruptRecord, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, buf, fmt.Errorf("%w: torn checksum: %v", ErrCorruptRecord, err)
	}
	crc := crc32.Update(0, castagnoli, hdr[4:5])
	crc = crc32.Update(crc, castagnoli, body)
	if binary.LittleEndian.Uint32(tail[:]) != crc {
		return 0, nil, buf, fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
	}
	return kind, body, buf, nil
}

// EncodeReportRecord frames one report event — the wire frame's payload
// (56-byte preamble + little-endian cell block) as a WAL record — onto
// w. On little-endian hosts the cell block is written as the slice's
// raw byte view, so the append is one header write plus one bulk copy
// of memory the wire layer already holds. Exported so the pipeline
// bench measures exactly the encoder the hot path runs.
func EncodeReportRecord(w io.Writer, round uint64, user, d, wd int, n, seed uint64, keystream byte, cells []uint64) error {
	if d < 1 || wd < 1 || uint64(d) > maxReportDepth || uint64(wd) >= maxReportWidth ||
		uint64(d)*uint64(wd) != uint64(len(cells)) {
		return fmt.Errorf("%w: report geometry d=%d w=%d cells=%d", ErrBadRecord, d, wd, len(cells))
	}
	var pre [reportPreamble]byte
	binary.LittleEndian.PutUint64(pre[0:], uint64(user))
	binary.LittleEndian.PutUint64(pre[8:], round)
	binary.LittleEndian.PutUint64(pre[16:], uint64(d))
	binary.LittleEndian.PutUint64(pre[24:], uint64(wd))
	binary.LittleEndian.PutUint64(pre[32:], n)
	binary.LittleEndian.PutUint64(pre[40:], seed)
	pre[48] = keystream // pre[49:56] reserved, zero
	if view, ok := vec.AsBytes(cells); ok {
		return appendRecord(w, recReport, pre[:], view)
	}
	raw := make([]byte, 8*len(cells))
	vec.PutLE(raw, cells)
	return appendRecord(w, recReport, pre[:], raw)
}

// reportRecord is a decoded report body. Cells is the raw little-endian
// cell block, aliasing the record buffer.
type reportRecord struct {
	User      uint64
	Round     uint64
	D, W      uint64
	N         uint64
	Seed      uint64
	Keystream byte
	Cells     []byte
}

// decodeReportBody parses a recReport body. The geometry is validated
// against the body length before use, so a corrupt-but-checksummed
// record cannot claim cells it does not carry.
func decodeReportBody(body []byte) (reportRecord, error) {
	if len(body) < reportPreamble {
		return reportRecord{}, fmt.Errorf("%w: short report body", ErrBadRecord)
	}
	rec := reportRecord{
		User:      binary.LittleEndian.Uint64(body[0:]),
		Round:     binary.LittleEndian.Uint64(body[8:]),
		D:         binary.LittleEndian.Uint64(body[16:]),
		W:         binary.LittleEndian.Uint64(body[24:]),
		N:         binary.LittleEndian.Uint64(body[32:]),
		Seed:      binary.LittleEndian.Uint64(body[40:]),
		Keystream: body[48],
	}
	if rec.User > 1<<31 || rec.D < 1 || rec.W < 1 || rec.D > maxReportDepth || rec.W > maxReportWidth {
		return reportRecord{}, fmt.Errorf("%w: report header", ErrBadRecord)
	}
	cells := rec.D * rec.W // ≤ 2⁵² by the bounds above: no overflow
	if uint64(len(body)) != reportPreamble+8*cells {
		return reportRecord{}, fmt.Errorf("%w: report body %d bytes, want %d cells", ErrBadRecord, len(body), cells)
	}
	rec.Cells = body[reportPreamble:]
	return rec, nil
}

// encodeOpenRecord frames a round-open event onto w.
func encodeOpenRecord(w io.Writer, round uint64, roster, d, wd int, seed uint64, keystream byte) error {
	var body [openBody]byte
	binary.LittleEndian.PutUint64(body[0:], round)
	binary.LittleEndian.PutUint64(body[8:], uint64(roster))
	binary.LittleEndian.PutUint64(body[16:], uint64(d))
	binary.LittleEndian.PutUint64(body[24:], uint64(wd))
	binary.LittleEndian.PutUint64(body[32:], seed)
	body[40] = keystream
	return appendRecord(w, recOpen, body[:])
}

// openRecord is a decoded round-open body.
type openRecord struct {
	Round     uint64
	Roster    uint64
	D, W      uint64
	Seed      uint64
	Keystream byte
}

// decodeOpenBody parses a recOpen body.
func decodeOpenBody(body []byte) (openRecord, error) {
	if len(body) != openBody {
		return openRecord{}, fmt.Errorf("%w: open body %d bytes", ErrBadRecord, len(body))
	}
	rec := openRecord{
		Round:     binary.LittleEndian.Uint64(body[0:]),
		Roster:    binary.LittleEndian.Uint64(body[8:]),
		D:         binary.LittleEndian.Uint64(body[16:]),
		W:         binary.LittleEndian.Uint64(body[24:]),
		Seed:      binary.LittleEndian.Uint64(body[32:]),
		Keystream: body[40],
	}
	if rec.Roster > 1<<31 || rec.D < 1 || rec.W < 1 || rec.D > maxReportDepth || rec.W > maxReportWidth ||
		rec.D*rec.W > maxSnapshotCells {
		return openRecord{}, fmt.Errorf("%w: open header", ErrBadRecord)
	}
	return rec, nil
}

// encodeAdjustRecord frames an adjustment-share upload onto w.
func encodeAdjustRecord(w io.Writer, round uint64, user int, cells []uint64) error {
	var pre [16]byte
	binary.LittleEndian.PutUint64(pre[0:], round)
	binary.LittleEndian.PutUint64(pre[8:], uint64(user))
	if view, ok := vec.AsBytes(cells); ok {
		return appendRecord(w, recAdjust, pre[:], view)
	}
	raw := make([]byte, 8*len(cells))
	vec.PutLE(raw, cells)
	return appendRecord(w, recAdjust, pre[:], raw)
}

// adjustRecord is a decoded adjustment body. Cells aliases the record
// buffer.
type adjustRecord struct {
	Round uint64
	User  uint64
	Cells []byte
}

// decodeAdjustBody parses a recAdjust body.
func decodeAdjustBody(body []byte) (adjustRecord, error) {
	if len(body) < 16 || (len(body)-16)%8 != 0 {
		return adjustRecord{}, fmt.Errorf("%w: adjust body %d bytes", ErrBadRecord, len(body))
	}
	rec := adjustRecord{
		Round: binary.LittleEndian.Uint64(body[0:]),
		User:  binary.LittleEndian.Uint64(body[8:]),
		Cells: body[16:],
	}
	if rec.User > 1<<31 {
		return adjustRecord{}, fmt.Errorf("%w: adjust user", ErrBadRecord)
	}
	return rec, nil
}

// encodeCloseRecord frames a round-close event onto w.
func encodeCloseRecord(w io.Writer, round uint64) error {
	var body [8]byte
	binary.LittleEndian.PutUint64(body[:], round)
	return appendRecord(w, recClose, body[:])
}

// encodeRegisterRecord frames a bulletin-board registration onto w.
func encodeRegisterRecord(w io.Writer, user int, publicKey []byte) error {
	var pre [8]byte
	binary.LittleEndian.PutUint64(pre[:], uint64(user))
	return appendRecord(w, recRegister, pre[:], publicKey)
}

// registerRecord is a decoded registration body. Key aliases the record
// buffer.
type registerRecord struct {
	User uint64
	Key  []byte
}

// decodeRegisterBody parses a recRegister body.
func decodeRegisterBody(body []byte) (registerRecord, error) {
	if len(body) < 8 {
		return registerRecord{}, fmt.Errorf("%w: register body %d bytes", ErrBadRecord, len(body))
	}
	rec := registerRecord{User: binary.LittleEndian.Uint64(body[0:]), Key: body[8:]}
	if rec.User > 1<<31 {
		return registerRecord{}, fmt.Errorf("%w: register user", ErrBadRecord)
	}
	return rec, nil
}
