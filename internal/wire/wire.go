// Package wire is eyeWnder's message layer: length-prefixed JSON frames
// over TCP. It carries the three conversations of Figure 1 — extension ↔
// back-end (blinded reports, thresholds, ad audits), extension ↔
// oprf-server (blinded PRF evaluations), and back-end ↔ crawler (visit
// instructions and collected ads).
//
// Frame format: 4-byte big-endian payload length, then a JSON envelope
// {"type": ..., "payload": ...}. Payload size is capped to keep a
// misbehaving peer from ballooning memory; a ~200 KB blinded CMS (the
// paper's Section 7.1 number) fits comfortably.
//
// The highest-volume message, backend.submit_report, additionally has a
// binary streamed form (see stream.go): the header word's top bit marks a
// report frame whose cell block is read directly into pooled cell slices,
// bypassing the JSON envelope and its per-report copies entirely. A
// connection may further negotiate batched acknowledgements (see
// batch.go): the server then answers streamed reports with one binary
// ack per k frames while a per-connection fold goroutine pipelines frame
// decode against aggregate folds.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds a single frame's payload (16 MiB).
const MaxFrame = 16 << 20

// Errors returned by the package.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrClosed        = errors.New("wire: connection closed")
)

// Msg is one framed message.
type Msg struct {
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Decode unmarshals the payload into v.
func (m *Msg) Decode(v interface{}) error {
	if len(m.Payload) == 0 {
		return errors.New("wire: empty payload")
	}
	return json.Unmarshal(m.Payload, v)
}

// WriteMsg frames and writes one message.
func WriteMsg(w io.Writer, typ string, payload interface{}) error {
	env := Msg{Type: typ}
	if payload != nil {
		raw, err := json.Marshal(payload)
		if err != nil {
			return fmt.Errorf("wire: marshal %s: %w", typ, err)
		}
		env.Payload = raw
	}
	frame, err := json.Marshal(env)
	if err != nil {
		return err
	}
	if len(frame) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// ReadMsg reads one framed message.
func ReadMsg(r io.Reader) (*Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	var m Msg
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("wire: bad frame: %w", err)
	}
	return &m, nil
}

// Handler answers one request message with a response message.
type Handler func(*Msg) (respType string, resp interface{}, err error)

// ErrorPayload is the body of "error" responses.
type ErrorPayload struct {
	Error string `json:"error"`
}

// Server accepts connections and serves request/response exchanges with a
// Handler. One goroutine per connection; requests on a connection are
// processed in order. Servers constructed with ServeWithSink additionally
// accept streamed report frames, routed to the ReportSink instead of the
// Handler; a connection that negotiates batched acknowledgements
// (TypeAckBatch, see batch.go) further gains a fold goroutine that
// pipelines frame decode against sink folds.
type Server struct {
	lis     net.Listener
	handler Handler
	sink    ReportSink // nil: streamed report frames are rejected
	opts    StreamOpts
	m       *wireMetrics // pre-registered instrument handles, always non-nil

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
}

// Serve starts a server on addr ("127.0.0.1:0" picks a free port).
func Serve(addr string, handler Handler) (*Server, error) {
	return ServeWithSink(addr, handler, nil)
}

// ServeWithSink starts a server that also accepts streamed report frames,
// delivering them to sink, with default streaming options.
func ServeWithSink(addr string, handler Handler, sink ReportSink) (*Server, error) {
	return ServeWithSinkOpts(addr, handler, sink, StreamOpts{})
}

// ServeWithSinkOpts is ServeWithSink with explicit batched-ack and
// pipelining options.
func ServeWithSinkOpts(addr string, handler Handler, sink ReportSink, opts StreamOpts) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		lis:     lis,
		handler: handler,
		sink:    sink,
		opts:    opts,
		m:       newWireMetrics(opts.Metrics),
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Transient accept error: back off briefly.
				time.Sleep(10 * time.Millisecond)
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	// wmu serializes everything the server writes on this connection:
	// JSON responses from this goroutine and, in batched mode, binary
	// acks from the fold goroutine.
	var wmu sync.Mutex
	// st is non-nil once the connection has negotiated batched
	// acknowledgements: report frames then flow through its bounded
	// channel to the fold goroutine instead of being folded inline.
	var st *connStream
	defer func() {
		// Close the socket first so a fold goroutine blocked on an ack
		// write to a stalled peer errors out, then drain the pipeline
		// (every queued pooled buffer is folded and recycled).
		conn.Close()
		if st != nil {
			st.stop()
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	writeResp := func(respType string, resp interface{}) error {
		wmu.Lock()
		defer wmu.Unlock()
		return WriteMsg(conn, respType, resp)
	}
	// buf is the connection's JSON frame buffer, grown to the largest
	// frame seen and reused across requests. This removes the per-request
	// frame allocation; json.Unmarshal still copies the payload bytes into
	// Msg.Payload (RawMessage), so nothing handed to the handler aliases
	// buf.
	var buf []byte
	// shard is this connection's slot in the sharded decode counter —
	// taken once here so the per-frame bump below is one uncontended
	// atomic add.
	m := s.metrics()
	shard := m.framesDecoded.NextShard()
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // EOF or broken peer: drop the connection
		}
		word := binary.BigEndian.Uint32(hdr[:])

		if word&reportFlag != 0 {
			n := word &^ reportFlag
			if n == helloPayload {
				// Config handshake (handshake.go). A Hello's payload
				// length is distinguishable from every other top-bit
				// frame (reports are ≥ reportPreamble, flush markers 0),
				// and it may arrive at any point in the conversation —
				// a long-lived client re-checks the config between
				// rounds on the same connection.
				if err := s.answerHello(conn, &wmu); err != nil {
					return
				}
				continue
			}
			if n == campaignDirReqPayload {
				// Campaign directory request (campaign.go), routed by
				// payload length exactly like the Hello.
				if err := s.answerCampaignDir(conn, &wmu); err != nil {
					return
				}
				continue
			}
			if st != nil {
				// Batched mode: pipeline the frame to the fold goroutine
				// and immediately decode the next one. The channel bound
				// is the backpressure: a saturated sink blocks this send,
				// which stops the socket read, which closes the TCP
				// window.
				if n == 0 {
					st.ch <- streamItem{flush: true}
					continue
				}
				rb := reportBufPool.Get().(*reportBuf)
				frame, err := readReportFrame(conn, n, rb)
				if err != nil {
					reportBufPool.Put(rb)
					return
				}
				m.framesDecoded.Inc(shard)
				st.ch <- streamItem{rb: rb, f: frame}
				continue
			}
			if n == 0 {
				return // flush marker outside batched mode: malformed
			}
			// Legacy streamed report: decode into pooled cells, hand to
			// the sink, recycle, answer with a JSON ack. A framing error
			// is unrecoverable (the stream position is unknown), so it
			// drops the connection; a sink error is an ordinary request
			// failure. A durable sink syncs before the ack goes out: on
			// this one-ack-per-frame path every report pays its own
			// barrier (the batched path amortizes it).
			rb := reportBufPool.Get().(*reportBuf)
			frame, err := readReportFrame(conn, n, rb)
			if err != nil {
				reportBufPool.Put(rb)
				return
			}
			m.framesDecoded.Inc(shard)
			sinkErr := ErrNoSink
			if s.sink != nil {
				sinkErr = s.sink.ConsumeReport(frame)
			}
			reportBufPool.Put(rb)
			if sinkErr == nil {
				if dur, ok := s.sink.(ReportDurability); ok {
					sinkErr = dur.SyncReports()
				}
			}
			respType, resp := TypeSubmitReportOK, interface{}(struct{}{})
			if sinkErr != nil {
				respType, resp = "error", ErrorPayload{Error: sinkErr.Error()}
			}
			if err := writeResp(respType, resp); err != nil {
				return
			}
			continue
		}

		if word > MaxFrame {
			return
		}
		if int(word) > cap(buf) {
			buf = make([]byte, word)
		}
		buf = buf[:word]
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		var req Msg
		if err := json.Unmarshal(buf, &req); err != nil {
			return
		}
		if req.Type == TypeAckBatch {
			// Wire-level negotiation, answered here rather than by the
			// application handler: it flips this connection's streamed
			// reports to batched binary acks (idempotently).
			if s.sink == nil {
				if err := writeResp("error", ErrorPayload{Error: ErrNoSink.Error()}); err != nil {
					return
				}
				continue
			}
			if st == nil {
				st = s.startStream(conn, &wmu)
			}
			if err := writeResp(TypeAckBatchOK, AckBatchResp{K: st.k}); err != nil {
				return
			}
			continue
		}
		respType, resp, err := s.handler(&req)
		if err != nil {
			respType, resp = "error", ErrorPayload{Error: err.Error()}
		}
		if err := writeResp(respType, resp); err != nil {
			return
		}
	}
}

// Close stops accepting and tears down open connections (waiting for
// per-connection fold goroutines to drain). Safe to call more than once.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		close(s.done)
		err = s.lis.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return err
}

// Client is a synchronous request/response connection to a Server.
// It is safe for concurrent use; requests are serialized. Report
// submission can additionally run windowed over batched binary acks —
// see OpenReportStream in batch.go.
type Client struct {
	mu   sync.Mutex
	conn net.Conn

	// Batched-ack state (batch.go). ackBatch > 0 once the connection has
	// negotiated batched acknowledgements; report submissions are then
	// answered by binary ack frames, and the cumulative rsSent/rsAcked
	// sequence counters (frames + flush markers) track the in-flight
	// window. streaming marks an open ReportStream, which owns the
	// connection until Close.
	ackBatch  int
	streaming bool
	rsSent    uint64
	rsAcked   uint64
}

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Do sends a request and decodes the response into respOut (which may be
// nil to discard). A server-side "error" response surfaces as an error.
// While a ReportStream is open on the connection Do returns ErrStreaming:
// the response would interleave with binary ack frames.
func (c *Client) Do(reqType string, payload interface{}, respOut interface{}) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return ErrClosed
	}
	if c.streaming {
		return ErrStreaming
	}
	if err := WriteMsg(c.conn, reqType, payload); err != nil {
		return err
	}
	resp, err := ReadMsg(c.conn)
	if err != nil {
		return err
	}
	if err := respError(resp); err != nil {
		return err
	}
	if respOut == nil {
		return nil
	}
	return resp.Decode(respOut)
}

// respError surfaces a server-side "error" response as a Go error.
func respError(resp *Msg) error {
	if resp.Type != "error" {
		return nil
	}
	var ep ErrorPayload
	if err := resp.Decode(&ep); err != nil {
		return errors.New("wire: remote error")
	}
	return fmt.Errorf("wire: remote error: %s", ep.Error)
}

// Close shuts the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
