//go:build arm64 && !purego

package vec

import "eyewnder/internal/vec/cpu"

// addNEON adds src into dst element-wise modulo 2⁶⁴, 8 words (four
// 128-bit vector registers) per iteration with a scalar tail.
// Implemented in kernels_arm64.s; the wrapper layer guarantees
// len(dst) == len(src).
//
//go:noescape
func addNEON(dst, src []uint64)

// subNEON subtracts src from dst element-wise modulo 2⁶⁴.
//
//go:noescape
func subNEON(dst, src []uint64)

// pickKernels selects the NEON add/sub kernels. ASIMD is part of the
// base A64 ISA, so the capability check never fails on real hardware;
// it exists so EYEWNDER_NOSIMD-style tooling sees one shape everywhere.
func pickKernels() {
	if cpu.HasNEON {
		selAdd, selSub = addNEON, subNEON
		kernelName = "neon"
	} else {
		activeNote = "no neon"
	}
}
