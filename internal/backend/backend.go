// Package backend implements eyeWnder's back-end server (Figure 1): it
// hosts the bulletin board of blinding public keys, collects blinded CMS
// reports, runs the missing-client adjustment round, unblinds the weekly
// aggregate, computes the global Users_th threshold, and answers
// real-time ad audits. It also exposes the oprf-server as a separate
// network endpoint with its own key, preserving the paper's trust split:
// the back-end never holds the OPRF secret.
package backend

import (
	"errors"
	"fmt"
	"math/big"
	"sync"

	"eyewnder/internal/blind"
	"eyewnder/internal/detector"
	"eyewnder/internal/oprf"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
	"eyewnder/internal/vec"
	"eyewnder/internal/wire"
)

// Errors returned by the package.
var (
	ErrRoundClosed    = errors.New("backend: round already closed")
	ErrRoundNotClosed = errors.New("backend: round not closed yet")
	ErrUnknownRound   = errors.New("backend: unknown round")
	ErrBadUser        = errors.New("backend: user index out of range")
)

// Config fixes the back-end's parameters.
type Config struct {
	// Params is the shared protocol geometry.
	Params privacy.Params
	// Users is the roster size.
	Users int
	// UsersEstimator derives Users_th from the per-ad user counts.
	UsersEstimator detector.Estimator
	// MergeStripes sets the intra-round merge striping: 0 picks the
	// default (2×GOMAXPROCS), 1 degenerates to a single merge lock.
	MergeStripes int
	// AckBatch sets the streamed-report ack batch k for connections that
	// negotiate batched acknowledgements: one binary ack per k frames.
	// 0 picks the wire default (wire.DefaultAckBatch); 1 acknowledges
	// every frame.
	AckBatch int
}

// Backend is the server state. All methods are safe for concurrent use.
//
// Locking is three-level: Backend.mu guards only the roster and the round
// map; each round carries an RWMutex whose read side admits any number of
// concurrent reporters while the write side (close, adjustments, status)
// excludes them; and within a round the aggregator's merge is striped
// across row ranges (vec.Striped), so reporters into the *same* round
// fold disjoint stripes in parallel. Folding a report merges a full cell
// vector (tens of KB) — under the earlier single round lock one hot
// round's ingestion serialized even on many-core hosts.
type Backend struct {
	cfg   Config
	cells int // sketch cell count implied by Params, for share validation

	mu     sync.Mutex
	roster [][]byte // bulletin board; nil slot = unregistered
	rounds map[uint64]*round
}

type round struct {
	mu      sync.RWMutex
	agg     *privacy.Aggregator
	adjusts map[int][]uint64 // second-round shares by reporter
	closed  bool
	final   *sketch.CMS
	usersTh float64
	// counts is the per-ad-ID user-count map extracted at close.
	counts map[uint64]uint64
}

// New constructs a back-end.
func New(cfg Config) (*Backend, error) {
	if cfg.Users < 1 {
		return nil, errors.New("backend: Users must be >= 1")
	}
	d, w, err := sketch.Dimensions(cfg.Params.Epsilon, cfg.Params.Delta)
	if err != nil {
		return nil, err
	}
	return &Backend{
		cfg:    cfg,
		cells:  d * w,
		roster: make([][]byte, cfg.Users),
		rounds: make(map[uint64]*round),
	}, nil
}

// MergeStripes returns the per-round merge stripe count actually in
// effect for this back-end's sketch geometry (the configured value is a
// request; tiny sketches clamp it).
func (b *Backend) MergeStripes() int {
	return vec.EffectiveStripes(b.cells, b.cfg.MergeStripes)
}

// Register stores a user's blinding public key on the bulletin board.
func (b *Backend) Register(user int, publicKey []byte) (rosterSize int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if user < 0 || user >= b.cfg.Users {
		return 0, ErrBadUser
	}
	b.roster[user] = append([]byte(nil), publicKey...)
	return b.cfg.Users, nil
}

// Roster returns the bulletin board.
func (b *Backend) Roster() [][]byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([][]byte, len(b.roster))
	for i, k := range b.roster {
		if k != nil {
			out[i] = append([]byte(nil), k...)
		}
	}
	return out
}

// getRound returns (creating on first touch) the round's state. Only the
// map access happens under the global lock; callers lock the returned
// round for any state access.
func (b *Backend) getRound(id uint64) (*round, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.rounds[id]
	if !ok {
		agg, err := privacy.NewAggregatorStripes(b.cfg.Params, id, b.cfg.Users, b.cfg.MergeStripes)
		if err != nil {
			return nil, err
		}
		r = &round{agg: agg, adjusts: make(map[int][]uint64)}
		b.rounds[id] = r
	}
	return r, nil
}

// lookupRound returns an existing round without creating one.
func (b *Backend) lookupRound(id uint64) (*round, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.rounds[id]
	return r, ok
}

// SubmitReport folds one blinded report into the round aggregate.
// Reporters hold only the round's read lock: the aggregator's own
// bookkeeping lock and striped cell merge admit concurrent submissions
// into the same round, while the write lock (CloseRound) excludes them.
func (b *Backend) SubmitReport(rep *privacy.Report) error {
	r, err := b.getRound(rep.Round)
	if err != nil {
		return err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return ErrRoundClosed
	}
	return r.agg.Add(rep)
}

// ConsumeReport implements wire.ReportSink: a streamed report's pooled
// cell vector folds straight into the round aggregate, with no
// intermediate []byte or CMS ever materialized. The frame's keystream
// suite byte is enforced against the round's: a report blinded under a
// different suite would not cancel and would silently corrupt the
// aggregate.
func (b *Backend) ConsumeReport(f *wire.ReportFrame) error {
	r, err := b.getRound(f.Round)
	if err != nil {
		return err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return ErrRoundClosed
	}
	return r.agg.AddCells(f.User, f.D, f.W, f.N, f.Seed, blind.Keystream(f.Keystream), f.Cells)
}

// RoundStatus reports progress of a round.
func (b *Backend) RoundStatus(id uint64) (reported int, missing []int, closed bool, err error) {
	r, err := b.getRound(id)
	if err != nil {
		return 0, nil, false, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.agg.Reported(), r.agg.Missing(), r.closed, nil
}

// SubmitAdjustment records a reporter's second-round share. Shares with
// the wrong cell count are rejected here, at upload time: a stored
// bad-length share would otherwise make every CloseRound attempt fail.
func (b *Backend) SubmitAdjustment(user int, id uint64, cells []uint64) error {
	if user < 0 || user >= b.cfg.Users {
		return ErrBadUser
	}
	if len(cells) != b.cells {
		return fmt.Errorf("backend: adjustment share has %d cells, want %d", len(cells), b.cells)
	}
	r, err := b.getRound(id)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrRoundClosed
	}
	r.adjusts[user] = append([]uint64(nil), cells...)
	return nil
}

// CloseRound unblinds the aggregate (applying any adjustment shares),
// extracts the per-ad user counts, and computes Users_th.
func (b *Backend) CloseRound(id uint64) (usersTh float64, distinctAds int, err error) {
	r, err := b.getRound(id)
	if err != nil {
		return 0, 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.usersTh, len(r.counts), nil
	}
	// Adjustments are applied to a clone of the aggregate
	// (FinalizeWithAdjustments), never to the live one: if the close
	// fails (reports still missing, say), a retry must not subtract the
	// same shares twice.
	shares := make([][]uint64, 0, len(r.adjusts))
	for _, s := range r.adjusts {
		shares = append(shares, s)
	}
	final, err := r.agg.FinalizeWithAdjustments(shares...)
	if err != nil {
		return 0, 0, err
	}
	r.final = final
	r.counts = privacy.UserCounts(final, b.cfg.Params)
	sample := make([]float64, 0, len(r.counts))
	for _, c := range r.counts {
		sample = append(sample, float64(c))
	}
	r.usersTh = detector.UsersThreshold(sample, b.cfg.UsersEstimator)
	r.closed = true
	return r.usersTh, len(r.counts), nil
}

// Threshold returns a closed round's Users_th (Figure 1, arrow 5).
func (b *Backend) Threshold(id uint64) (float64, error) {
	r, ok := b.lookupRound(id)
	if !ok {
		return 0, ErrUnknownRound
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.closed {
		return 0, ErrRoundNotClosed
	}
	return r.usersTh, nil
}

// AuditAd answers a real-time audit: the estimated #Users for an ad ID in
// a closed round.
func (b *Backend) AuditAd(id uint64, adID uint64) (uint64, error) {
	r, ok := b.lookupRound(id)
	if !ok {
		return 0, ErrUnknownRound
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.closed {
		return 0, ErrRoundNotClosed
	}
	return privacy.QueryUsers(r.final, adID), nil
}

// UserCountsOfRound exposes a closed round's per-ad-ID counts (used by the
// evaluation harness and the Figure 2 experiment).
func (b *Backend) UserCountsOfRound(id uint64) (map[uint64]uint64, error) {
	r, ok := b.lookupRound(id)
	if !ok {
		return nil, ErrUnknownRound
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.closed {
		return nil, ErrRoundNotClosed
	}
	out := make(map[uint64]uint64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out, nil
}

// Handler adapts the back-end to the wire protocol.
func (b *Backend) Handler() wire.Handler {
	return func(m *wire.Msg) (string, interface{}, error) {
		switch m.Type {
		case wire.TypeRegister:
			var req wire.RegisterReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			n, err := b.Register(req.User, req.PublicKey)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeRegisterOK, wire.RegisterResp{RosterSize: n}, nil

		case wire.TypeRoster:
			return wire.TypeRosterOK, wire.RosterResp{PublicKeys: b.Roster()}, nil

		case wire.TypeSubmitReport:
			var req wire.SubmitReportReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			var cms sketch.CMS
			if err := cms.UnmarshalBinary(req.Sketch); err != nil {
				return "", nil, err
			}
			rep := &privacy.Report{
				User: req.User, Round: req.Round, Sketch: &cms,
				Keystream: blind.Keystream(req.Keystream),
			}
			if err := b.SubmitReport(rep); err != nil {
				return "", nil, err
			}
			return wire.TypeSubmitReportOK, struct{}{}, nil

		case wire.TypeRoundStatus:
			var req wire.CloseRoundReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			reported, missing, closed, err := b.RoundStatus(req.Round)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeRoundStatusOK, wire.RoundStatusResp{
				Round: req.Round, Reported: reported, Missing: missing, Closed: closed,
			}, nil

		case wire.TypeSubmitAdjust:
			var req wire.SubmitAdjustReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			if err := b.SubmitAdjustment(req.User, req.Round, req.Cells); err != nil {
				return "", nil, err
			}
			return wire.TypeSubmitAdjustOK, struct{}{}, nil

		case wire.TypeCloseRound:
			var req wire.CloseRoundReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			th, ads, err := b.CloseRound(req.Round)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeCloseRoundOK, wire.CloseRoundResp{
				Round: req.Round, UsersTh: th, DistinctAds: ads,
			}, nil

		case wire.TypeThreshold:
			var req wire.ThresholdReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			th, err := b.Threshold(req.Round)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeThresholdOK, wire.ThresholdResp{Round: req.Round, UsersTh: th}, nil

		case wire.TypeAuditAd:
			var req wire.AuditAdReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			users, err := b.AuditAd(req.Round, req.AdID)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeAuditAdOK, wire.AuditAdResp{Users: users}, nil
		}
		return "", nil, fmt.Errorf("backend: unknown message %q", m.Type)
	}
}

// Serve starts the back-end on a TCP address, accepting both JSON
// messages and streamed report frames (the back-end is its own
// wire.ReportSink). Connections that negotiate batched acknowledgements
// get one binary ack per Config.AckBatch frames and pipelined
// decode-while-fold ingestion.
func (b *Backend) Serve(addr string) (*wire.Server, error) {
	return wire.ServeWithSinkOpts(addr, b.Handler(), b, wire.StreamOpts{AckBatch: b.cfg.AckBatch})
}

// OPRFHandler adapts an oprf.Server to the wire protocol.
func OPRFHandler(srv *oprf.Server) wire.Handler {
	return func(m *wire.Msg) (string, interface{}, error) {
		switch m.Type {
		case wire.TypeOPRFPublicKey:
			pub := srv.PublicKey()
			return wire.TypeOPRFPublicKeyOK, wire.OPRFPublicKeyResp{N: pub.N.Bytes(), E: pub.E}, nil
		case wire.TypeOPRFEvaluate:
			var req wire.OPRFEvaluateReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			y, err := srv.Evaluate(new(big.Int).SetBytes(req.Blinded))
			if err != nil {
				return "", nil, err
			}
			return wire.TypeOPRFEvaluateOK, wire.OPRFEvaluateResp{Signed: y.Bytes()}, nil
		}
		return "", nil, fmt.Errorf("oprf-server: unknown message %q", m.Type)
	}
}

// ServeOPRF starts the oprf-server on a TCP address.
func ServeOPRF(addr string, srv *oprf.Server) (*wire.Server, error) {
	return wire.Serve(addr, OPRFHandler(srv))
}
