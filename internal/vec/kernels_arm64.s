//go:build !purego

#include "textflag.h"

// NEON u64 wraparound add/sub kernels: 8 uint64s — four 128-bit V
// registers — per main-loop iteration, scalar tail. Loads/stores are
// unaligned-safe (stripe bounds are arbitrary). The wrapper guarantees
// len(dst) == len(src); the kernels read the length from src.

// func addNEON(dst, src []uint64)
TEXT ·addNEON(SB), NOSPLIT, $0-48
	MOVD dst_base+0(FP), R0
	MOVD src_base+24(FP), R1
	MOVD src_len+32(FP), R2

loop8:
	CMP  $8, R2
	BLT  tail
	VLD1 (R0), [V0.D2, V1.D2, V2.D2, V3.D2]
	VLD1.P 64(R1), [V4.D2, V5.D2, V6.D2, V7.D2]
	VADD V4.D2, V0.D2, V0.D2
	VADD V5.D2, V1.D2, V1.D2
	VADD V6.D2, V2.D2, V2.D2
	VADD V7.D2, V3.D2, V3.D2
	VST1.P [V0.D2, V1.D2, V2.D2, V3.D2], 64(R0)
	SUB  $8, R2
	B    loop8

tail:
	CBZ  R2, done
	MOVD (R1), R3
	MOVD (R0), R4
	ADD  R3, R4, R4
	MOVD R4, (R0)
	ADD  $8, R0
	ADD  $8, R1
	SUB  $1, R2
	B    tail

done:
	RET

// func subNEON(dst, src []uint64)
TEXT ·subNEON(SB), NOSPLIT, $0-48
	MOVD dst_base+0(FP), R0
	MOVD src_base+24(FP), R1
	MOVD src_len+32(FP), R2

loop8:
	CMP  $8, R2
	BLT  tail
	VLD1 (R0), [V0.D2, V1.D2, V2.D2, V3.D2]
	VLD1.P 64(R1), [V4.D2, V5.D2, V6.D2, V7.D2]
	VSUB V4.D2, V0.D2, V0.D2
	VSUB V5.D2, V1.D2, V1.D2
	VSUB V6.D2, V2.D2, V2.D2
	VSUB V7.D2, V3.D2, V3.D2
	VST1.P [V0.D2, V1.D2, V2.D2, V3.D2], 64(R0)
	SUB  $8, R2
	B    loop8

tail:
	CBZ  R2, done
	MOVD (R1), R3
	MOVD (R0), R4
	SUB  R3, R4, R4
	MOVD R4, (R0)
	ADD  $8, R0
	ADD  $8, R1
	SUB  $1, R2
	B    tail

done:
	RET
