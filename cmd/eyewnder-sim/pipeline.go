package main

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"time"

	"eyewnder/internal/addetect"
	"eyewnder/internal/adsim"
	"eyewnder/internal/backend"
	"eyewnder/internal/blind"
	"eyewnder/internal/campaign"
	"eyewnder/internal/client"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
	"eyewnder/internal/taxonomy"
	"eyewnder/internal/vec"
	"eyewnder/internal/wire"
)

// The pipeline demo closes the paper's loop end to end in one process:
// simulated browsing (adsim) renders the HTML pages a user's browser
// would receive, the extension-side detector (addetect) scans them, the
// landing-page classifier routes every detected ad to the counting
// campaign claiming its category (campaign.Mapper over the taxonomy),
// each user folds its detections into per-campaign CMS sketches, blinds
// them under campaign-derived pairwise keys, and streams every
// campaign's population over ONE batched connection to a multi-campaign
// back-end — then byte-compares each campaign's finalized per-ad-ID
// counts against an unblinded oracle built from the same detections.
//
// A fault anywhere — detection, mapping, campaign key derivation, wire
// demultiplexing, per-campaign folding, finalization — breaks the byte
// comparison, so the demo doubles as the strongest end-to-end
// correctness check the repo has.
type pipelineConfig struct {
	users     int
	weeks     int // one reporting round per simulated week
	campaigns int
	window    int
	seed      int64
}

// pipelineSummary is the machine-readable final stdout line. CI runs
// the demo twice with the same seed and asserts the digests match, and
// jq-checks that every campaign byte-matched its oracle.
type pipelineSummary struct {
	Schema      string  `json:"schema"`
	Users       int     `json:"users"`
	Rounds      int     `json:"rounds"`
	Campaigns   int     `json:"campaigns"`
	Pages       int     `json:"pages"`
	AdsDetected int     `json:"ads_detected"`
	AdsMapped   int     `json:"ads_mapped"`
	AdsDropped  int     `json:"ads_dropped"`
	Reports     int     `json:"reports"`
	Matched     int     `json:"matched_campaigns"`
	VecKernel   string  `json:"vec_kernel"`
	MaxProcs    int     `json:"maxprocs"`
	Seconds     float64 `json:"seconds"`
	Digest      string  `json:"digest"`
}

// pipelineCampaign is one provisioned counting campaign plus the
// client-side state the demo keeps for it.
type pipelineCampaign struct {
	def    campaign.Campaign
	params privacy.Params
	topic  taxonomy.Topic
}

// runPipeline is the -pipeline entry point.
func runPipeline(cfg pipelineConfig) error {
	start := time.Now()

	// 1. Simulate browsing with full ground truth. The scale is small —
	// the demo's value is the path, not the load (that's -load's job).
	simCfg := adsim.DefaultConfig()
	simCfg.Seed = cfg.seed
	simCfg.Users = cfg.users
	simCfg.Sites = 8 * cfg.users
	simCfg.Campaigns = 6 * cfg.users
	simCfg.Weeks = cfg.weeks
	sim, err := adsim.New(simCfg)
	if err != nil {
		return err
	}
	res := sim.Run()

	// 2. Pick the counting campaigns: the N ad categories with the most
	// simulated impressions each get a campaign named after their
	// taxonomy topic — that name is what makes the mapper route
	// detections to it. Geometries deliberately differ across campaigns
	// (ε cycles four widths, δ two depths) so the run proves the server
	// folds per-campaign geometry, not one shared layout.
	byTopic := make(map[taxonomy.Topic]int)
	for _, imp := range res.Impressions {
		byTopic[sim.Campaign(imp.Campaign).Category]++
	}
	topics := make([]taxonomy.Topic, 0, len(byTopic))
	for t := range byTopic {
		topics = append(topics, t)
	}
	sort.Slice(topics, func(i, j int) bool {
		if byTopic[topics[i]] != byTopic[topics[j]] {
			return byTopic[topics[i]] > byTopic[topics[j]]
		}
		return topics[i] < topics[j]
	})
	if len(topics) < cfg.campaigns {
		return fmt.Errorf("simulation produced %d ad categories, need %d campaigns", len(topics), cfg.campaigns)
	}
	camps := make([]*pipelineCampaign, cfg.campaigns)
	for i := 0; i < cfg.campaigns; i++ {
		camps[i] = &pipelineCampaign{
			def: campaign.Campaign{
				ID:      uint32(i + 1),
				Name:    topics[i].String(),
				Epsilon: 0.01 * float64(1+i%4),
				Delta:   0.01 / float64(1+i/4%2),
				IDSpace: uint64(20000 + 4000*i),
			},
			topic: topics[i],
		}
	}

	// 3. The multi-campaign back-end, served over the real wire.
	params := privacy.Params{Epsilon: 0.01, Delta: 0.01, IDSpace: 100000, Suite: group.P256()}
	be, err := backend.New(backend.Config{
		Params:         params,
		Users:          cfg.users,
		UsersEstimator: detector.EstimatorMean,
	})
	if err != nil {
		return err
	}
	defer be.Close()
	for _, pc := range camps {
		if err := be.AddCampaign(pc.def); err != nil {
			return fmt.Errorf("provisioning campaign %q: %w", pc.def.Name, err)
		}
	}
	srv, err := be.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	cli, err := wire.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer cli.Close()
	cf, err := cli.Handshake()
	if err != nil {
		return fmt.Errorf("config handshake: %w", err)
	}
	rcfg, err := client.RoundConfigFromFrame(cf)
	if err != nil {
		return err
	}
	params = rcfg.Params

	// The mapper routes by the directory the server advertises, not the
	// local definitions — a provisioning mismatch shows up here.
	dir, err := cli.CampaignDirectory()
	if err != nil {
		return fmt.Errorf("campaign directory: %w", err)
	}
	if len(dir) != len(camps) {
		return fmt.Errorf("directory advertises %d campaigns, provisioned %d", len(dir), len(camps))
	}
	byID := make(map[uint32]*pipelineCampaign, len(camps))
	for _, pc := range camps {
		byID[pc.def.ID] = pc
	}
	for _, c := range dir {
		pc, ok := byID[c.ID]
		if !ok || pc.def.Name != c.Name {
			return fmt.Errorf("directory entry %d/%q does not match provisioning", c.ID, c.Name)
		}
		pc.params = c.Params(params)
	}
	mapper := campaign.NewMapper(dir)

	roster, err := blind.NewRosterKeystream(params.Suite, cfg.users, rand.Reader, params.Keystream)
	if err != nil {
		return err
	}
	det := addetect.New(nil)

	fmt.Printf("pipeline: %d users × %d weeks, %d counting campaigns over one batched stream (seed %d)\n",
		cfg.users, cfg.weeks, len(camps), cfg.seed)
	for _, pc := range camps {
		d, w, err := sketch.Dimensions(pc.params.Epsilon, pc.params.Delta)
		if err != nil {
			return err
		}
		fmt.Printf("  campaign %d %-18s ε=%.2f δ=%.4g idspace=%d (%d×%d sketch) — %d simulated impressions\n",
			pc.def.ID, pc.def.Name, pc.def.Epsilon, pc.def.Delta, pc.def.IDSpace, d, w, byTopic[pc.topic])
	}

	digest := sha256.New()
	sum := pipelineSummary{
		Schema: "eyewnder-pipeline/v1", Users: cfg.users, Rounds: cfg.weeks,
		Campaigns: len(camps), VecKernel: vec.Active(), MaxProcs: runtime.GOMAXPROCS(0),
	}

	// 4. One reporting round per simulated week: render every visit's
	// page, detect, map, fold, blind, stream, close, compare.
	for week := 0; week < cfg.weeks; week++ {
		round := uint64(week + 1)

		// Per-user per-campaign sketches plus the per-campaign unblinded
		// oracle. The oracle is a plain CMS fed the identical update
		// stream — CMS folding is linear, so it equals the sum of the
		// user sketches exactly, which is what the server must recover
		// once the pairwise pads cancel.
		userSketches := make([]map[uint32]*sketch.CMS, cfg.users)
		oracle := make(map[uint32]*sketch.CMS, len(camps))
		sketchFor := func(u int, id uint32) (*sketch.CMS, error) {
			if userSketches[u] == nil {
				userSketches[u] = make(map[uint32]*sketch.CMS)
			}
			if s, ok := userSketches[u][id]; ok {
				return s, nil
			}
			s, err := byID[id].params.NewSketch()
			if err != nil {
				return nil, err
			}
			userSketches[u][id] = s
			return s, nil
		}

		// A visit's impressions are appended consecutively by the
		// simulator and share (user, site, week, day, time) — walk the
		// stream grouping on those to recover page loads.
		seen := make(map[string]bool) // user|campaign|adID dedup: distinct-user counting
		imps := res.Impressions
		for i := 0; i < len(imps); {
			if imps[i].Week != week {
				i++
				continue
			}
			j := i + 1
			for j < len(imps) && imps[j].User == imps[i].User && imps[j].Site == imps[i].Site &&
				imps[j].Week == imps[i].Week && imps[j].Day == imps[i].Day && imps[j].Time.Equal(imps[i].Time) {
				j++
			}
			shown := make([]*adsim.Campaign, 0, j-i)
			for k := i; k < j; k++ {
				shown = append(shown, sim.Campaign(imps[k].Campaign))
			}
			u := imps[i].User
			page := adsim.RenderPage(sim.Sites()[imps[i].Site], shown, cfg.seed+int64(i)*7919)
			sum.Pages++
			for _, ad := range det.Scan(page) {
				sum.AdsDetected++
				cid, ok := mapper.Map(ad)
				if !ok {
					sum.AdsDropped++
					continue
				}
				sum.AdsMapped++
				pc := byID[cid]
				h := fnv.New64a()
				h.Write([]byte(ad.Key()))
				var key [8]byte
				binary.LittleEndian.PutUint64(key[:], h.Sum64()%pc.def.IDSpace)
				dk := fmt.Sprintf("%d|%d|%x", u, cid, key)
				if seen[dk] {
					continue
				}
				seen[dk] = true
				s, err := sketchFor(u, cid)
				if err != nil {
					return err
				}
				s.Update(key[:])
				o, ok := oracle[cid]
				if !ok {
					o, err = pc.params.NewSketch()
					if err != nil {
						return err
					}
					oracle[cid] = o
				}
				o.Update(key[:])
			}
			i = j
		}

		// Every roster member submits one frame per campaign — users
		// with no detections send an empty sketch, because the pairwise
		// pads only cancel when the whole population reports.
		rs, err := cli.OpenReportStream(cfg.window)
		if err != nil {
			return err
		}
		for _, pc := range camps {
			for u := 0; u < cfg.users; u++ {
				s, err := sketchFor(u, pc.def.ID)
				if err != nil {
					return err
				}
				cells := append([]uint64(nil), s.FlatCells()...)
				party := roster.Parties[u].ForCampaignKeystream(pc.def.ID, pc.params.Keystream)
				if err := blind.ApplyBlinding(cells, party.Blinding(round, len(cells))); err != nil {
					return err
				}
				if err := rs.Submit(&wire.ReportFrame{
					User: u, Campaign: pc.def.ID, Round: round,
					D: s.Depth(), W: s.Width(), N: s.N(), Seed: s.Seed(),
					Keystream:     byte(pc.params.Keystream),
					ConfigVersion: rcfg.Version,
					Cells:         cells,
				}); err != nil {
					return fmt.Errorf("round %d campaign %d user %d: %w", round, pc.def.ID, u, err)
				}
				sum.Reports++
			}
		}
		if err := rs.Close(); err != nil {
			return err
		}

		// Close each campaign's round and byte-compare its counts with
		// the oracle's.
		for _, pc := range camps {
			var closed wire.CloseRoundResp
			if err := cli.Do(wire.TypeCloseRound, wire.CloseRoundReq{Campaign: pc.def.ID, Round: round}, &closed); err != nil {
				return fmt.Errorf("close campaign %d round %d: %w", pc.def.ID, round, err)
			}
			var counts wire.RoundCountsResp
			if err := cli.Do(wire.TypeRoundCounts, wire.RoundCountsReq{Campaign: pc.def.ID, Round: round}, &counts); err != nil {
				return fmt.Errorf("counts campaign %d round %d: %w", pc.def.ID, round, err)
			}
			want := map[uint64]uint64{}
			if o, ok := oracle[pc.def.ID]; ok {
				want = privacy.UserCounts(o, pc.params)
			}
			if err := compareCounts(counts.Counts, want); err != nil {
				return fmt.Errorf("campaign %d (%s) round %d: %w", pc.def.ID, pc.def.Name, round, err)
			}
			sum.Matched++
			foldCountsDigest(digest, pc.def.ID, round, counts.Counts)
			fmt.Printf("  round %d campaign %d %-18s %d distinct ads, Users_th=%.2f — counts byte-match oracle ✓\n",
				round, pc.def.ID, pc.def.Name, closed.DistinctAds, closed.UsersTh)
		}
	}

	sum.Seconds = time.Since(start).Seconds()
	sum.Digest = hex.EncodeToString(digest.Sum(nil))
	out, err := json.Marshal(sum)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stdout, string(out))
	return nil
}

// compareCounts demands exact equality between the server's finalized
// per-ad-ID counts and the oracle's.
func compareCounts(got, want map[uint64]uint64) error {
	if len(got) != len(want) {
		return fmt.Errorf("server returned %d counted ad IDs, oracle has %d", len(got), len(want))
	}
	for id, w := range want {
		if g, ok := got[id]; !ok || g != w {
			return fmt.Errorf("ad ID %d: server count %d, oracle %d", id, got[id], w)
		}
	}
	return nil
}

// foldCountsDigest folds one campaign-round's counts into the run
// digest in sorted order, so the digest is a stable function of the
// finalized results only.
func foldCountsDigest(h hash.Hash, campaign uint32, round uint64, counts map[uint64]uint64) {
	ids := make([]uint64, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(campaign))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], round)
	h.Write(buf[:])
	for _, id := range ids {
		binary.LittleEndian.PutUint64(buf[:], id)
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], counts[id])
		h.Write(buf[:])
	}
}
