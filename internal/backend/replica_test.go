package backend

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"eyewnder/internal/detector"
	"eyewnder/internal/privacy"
	"eyewnder/internal/store"
)

// newReplica builds a hot-standby back-end with no local store.
func newReplica(t *testing.T, params privacy.Params, users int) *Backend {
	t.Helper()
	b, err := New(Config{
		Params: params, Users: users,
		UsersEstimator: detector.EstimatorMean,
		Replica:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// feedWALInChunks streams every WAL segment in dir through a
// SegmentParser in chunk-sized pieces (chunk boundaries land mid-record
// on purpose) and applies the events to b. It asserts each segment
// parses to its exact end — the primary's WAL carries no torn tail here.
func feedWALInChunks(t *testing.T, b *Backend, dir string, chunk int) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths) // %016d names: lexicographic = numeric
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		sp := store.NewSegmentParser()
		for off := 0; off < len(raw); off += chunk {
			end := off + chunk
			if end > len(raw) {
				end = len(raw)
			}
			sp.Feed(raw[off:end])
			for {
				ev, err := sp.Next()
				if err != nil {
					t.Fatalf("%s: parse at %d: %v", p, sp.Offset(), err)
				}
				if ev == nil {
					break
				}
				if err := b.ApplyEvent(ev); err != nil {
					t.Fatalf("%s: apply at %d: %v", p, sp.Offset(), err)
				}
			}
		}
		if sp.Offset() != int64(len(raw)) {
			t.Fatalf("%s: parsed %d of %d bytes", p, sp.Offset(), len(raw))
		}
	}
}

// A replica fed a primary's raw WAL bytes — through the same streaming
// parser the replication follower uses, with chunk boundaries landing
// mid-record — must mirror the primary exactly: roster, negotiated
// versions, round progress, thresholds, and per-ad counts, across a
// full round, an adjustment round with a missing user, and a
// registration version bump.
func TestReplicaMirrorsPrimaryWAL(t *testing.T) {
	const users = 6
	params := storeTestParams()
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	primary := newStoreBackend(t, params, users, st)

	if _, err := primary.Register(2, []byte("pk2")); err != nil {
		t.Fatal(err)
	}

	// Round 1: full roster, straight close.
	for _, r := range buildReports(t, params, users, 1) {
		if err := primary.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := primary.CloseRound(1); err != nil {
		t.Fatal(err)
	}

	// Round 2: last user missing, every reporter uploads a share, then
	// the round closes with adjustments applied. The share values are
	// arbitrary — what matters is that primary and replica fold the
	// same bytes into the same state.
	reports2 := buildReports(t, params, users, 2)
	for _, r := range reports2[:users-1] {
		if err := primary.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	cells := len(reports2[0].Sketch.FlatCells())
	for u := 0; u < users-1; u++ {
		share := make([]uint64, cells)
		for i := range share {
			share[i] = uint64(u*1000 + i)
		}
		if err := primary.SubmitAdjustment(u, 2, share); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := primary.CloseRound(2); err != nil {
		t.Fatal(err)
	}
	// Round 3 stays open mid-round: the state a follower must hold warm.
	for _, r := range buildReports(t, params, users, 3)[:3] {
		if err := primary.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.SyncReports(); err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{7, 1 << 16} {
		replica := newReplica(t, params, users)
		feedWALInChunks(t, replica, dir, chunk)

		pKeys, pcv, prv := primary.Roster()
		rKeys, rcv, rrv := replica.Roster()
		if !reflect.DeepEqual(pKeys, rKeys) || pcv != rcv || prv != rrv {
			t.Fatalf("chunk %d: roster/version mismatch: (%v,%d,%d) vs (%v,%d,%d)",
				chunk, pKeys, pcv, prv, rKeys, rcv, rrv)
		}
		for _, round := range []uint64{1, 2} {
			pth, err := primary.Threshold(round)
			if err != nil {
				t.Fatal(err)
			}
			rth, err := replica.Threshold(round)
			if err != nil {
				t.Fatalf("chunk %d: replica threshold(%d): %v", chunk, round, err)
			}
			if pth != rth {
				t.Fatalf("chunk %d round %d: threshold %v vs %v", chunk, round, pth, rth)
			}
			pc, _ := primary.UserCountsOfRound(round)
			rc, err := replica.UserCountsOfRound(round)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pc, rc) {
				t.Fatalf("chunk %d round %d: counts diverge", chunk, round)
			}
		}
		pp, err := primary.RoundProgressOf(3)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := replica.RoundProgressOf(3)
		if err != nil {
			t.Fatalf("chunk %d: replica progress(3): %v", chunk, err)
		}
		if pp.Reported != rp.Reported || !reflect.DeepEqual(pp.Missing, rp.Missing) {
			t.Fatalf("chunk %d round 3: progress %+v vs %+v", chunk, pp, rp)
		}
		replica.Close()
	}
}

// Re-feeding an overlapping prefix of the stream (what a follower does
// after fetching a snapshot whose segment it already partially applied,
// or after a restart re-reads its local tail) must be a no-op: every
// duplicate record is skipped by the acceptance rules.
func TestReplicaApplyIsIdempotent(t *testing.T) {
	const users = 4
	params := storeTestParams()
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	primary := newStoreBackend(t, params, users, st)
	for _, r := range buildReports(t, params, users, 1) {
		if err := primary.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := primary.CloseRound(1); err != nil {
		t.Fatal(err)
	}

	replica := newReplica(t, params, users)
	feedWALInChunks(t, replica, dir, 64)
	feedWALInChunks(t, replica, dir, 64) // the whole stream, again

	pth, _ := primary.Threshold(1)
	rth, err := replica.Threshold(1)
	if err != nil || pth != rth {
		t.Fatalf("threshold after double feed = %v, %v (want %v)", rth, err, pth)
	}
	pc, _ := primary.UserCountsOfRound(1)
	rc, _ := replica.UserCountsOfRound(1)
	if !reflect.DeepEqual(pc, rc) {
		t.Fatal("counts diverge after double feed")
	}
}

// Every mutating entry point of a replica must refuse with
// ErrReadOnlyReplica, and lookups must not create rounds.
func TestReplicaRejectsWrites(t *testing.T) {
	const users = 4
	params := storeTestParams()
	replica := newReplica(t, params, users)

	if _, err := replica.Register(0, []byte("pk")); !errors.Is(err, ErrReadOnlyReplica) {
		t.Errorf("Register err = %v", err)
	}
	reports := buildReports(t, params, users, 1)
	if err := replica.SubmitReport(reports[0]); !errors.Is(err, ErrReadOnlyReplica) {
		t.Errorf("SubmitReport err = %v", err)
	}
	if err := replica.ConsumeReport(frameOf(reports[0])); !errors.Is(err, ErrReadOnlyReplica) {
		t.Errorf("ConsumeReport err = %v", err)
	}
	cells := len(reports[0].Sketch.FlatCells())
	if err := replica.SubmitAdjustment(0, 1, make([]uint64, cells)); !errors.Is(err, ErrReadOnlyReplica) {
		t.Errorf("SubmitAdjustment err = %v", err)
	}
	if _, _, err := replica.CloseRound(1); !errors.Is(err, ErrReadOnlyReplica) {
		t.Errorf("CloseRound err = %v", err)
	}
	if _, _, err := replica.CloseRoundWait(1, 0); !errors.Is(err, ErrReadOnlyReplica) {
		t.Errorf("CloseRoundWait err = %v", err)
	}
	// A status poll of a round the primary never opened must answer
	// ErrUnknownRound, not silently create the round.
	if _, err := replica.RoundProgressOf(99); !errors.Is(err, ErrUnknownRound) {
		t.Errorf("RoundProgressOf(99) err = %v", err)
	}
}

// ApplyEvent is a replica-only entry point: a writable back-end's state
// comes from its own store and clients, never from a peer's stream.
func TestApplyEventRequiresReplica(t *testing.T) {
	b := newStoreBackend(t, storeTestParams(), 4, nil)
	if err := b.ApplyEvent(&store.CloseEvent{Round: 1}); err == nil {
		t.Fatal("ApplyEvent accepted on a non-replica back-end")
	}
}
