//go:build arm64 && !purego

package cpu

func init() {
	// ASIMD (NEON) is part of the base A64 ISA: every arm64 Go target
	// has it, so there is nothing to probe.
	HasNEON = true
}
