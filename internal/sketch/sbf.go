package sketch

import (
	"encoding/binary"
	"math"

	"eyewnder/internal/vec"
)

// SBF is a spectral Bloom filter (Cohen & Matias, SIGMOD'03) — the
// alternative multiset synopsis Section 6 of the paper considers before
// settling on the count-min sketch ("one could use synopsis data
// structures for multi-sets that admit aggregation. For example
// count-min-sketches or spectral bloom filters").
//
// The SBF is a single array of m counters with k hash functions; an
// element's estimate is the minimum over its k counters (the "minimal
// selection" estimator). Like the CMS it is a linear sketch — cell-wise
// addition equals multiset union — so it composes with the same blinding
// protocol. The paper prefers the CMS because its (ε, δ) guarantee lets
// it bound both the error probability and the error itself; the SBF's
// error depends on the load factor. Both live here so the ablation bench
// can compare them at equal memory.
//
// Counter indices use the same Kirsch–Mitzenmacher double hashing as the
// CMS: one 128-bit hash of the key yields (h1, h2) and hash function j
// probes counter (h1 + j·h2) mod m, so Update and Query hash once and
// allocate nothing. As with the CMS, the hash defines the cell layout
// and must match across participants for blinded aggregation.
type SBF struct {
	m, k  int
	cells []uint64
	n     uint64
}

// NewSBF returns a spectral Bloom filter with m counters and k hash
// functions. For an expected n distinct elements, the classic optimum is
// m ≈ 1.44·k·n.
func NewSBF(m, k int) (*SBF, error) {
	if m < 1 || k < 1 {
		return nil, ErrBadParams
	}
	return &SBF{m: m, k: k, cells: make([]uint64, m)}, nil
}

// NewSBFForElements sizes the filter for n expected distinct elements at
// a target false-positive-ish load: k hash functions and m = ⌈1.44·k·n⌉.
func NewSBFForElements(n, k int) (*SBF, error) {
	if n < 1 || k < 1 {
		return nil, ErrBadParams
	}
	return NewSBF(int(math.Ceil(1.44*float64(k)*float64(n))), k)
}

// M returns the number of counters; K the number of hash functions.
func (s *SBF) M() int { return s.m }

// K returns the number of hash functions.
func (s *SBF) K() int { return s.k }

// N returns the total update weight.
func (s *SBF) N() uint64 { return s.n }

// Cells returns the number of counters (for blinding-vector sizing).
func (s *SBF) Cells() int { return s.m }

// SizeBytes returns the serialized size at cellBytes per counter.
func (s *SBF) SizeBytes(cellBytes int) int { return s.m * cellBytes }

// sbfSeed decorrelates the SBF's hash128 stream from the CMS's (whose
// seed base is 0), so the two synopses place keys independently in the
// equal-memory ablation.
const sbfSeed = 0x5bf0361c4a1e9d87

// indexSeed hashes x exactly once and returns the j=0 counter index, the
// Kirsch–Mitzenmacher stride, and the counter count, mirroring
// CMS.indexSeed: hash function j reads counter (idx + j·step) mod m, the
// successor derived with a conditional subtract. The old implementation
// ran one FNV pass per hash function and allocated the hash state each
// time; this is one allocation-free pass total.
func (s *SBF) indexSeed(x []byte) (idx, step, m uint64) {
	h1, h2 := hash128(x, sbfSeed)
	m = uint64(s.m)
	idx = h1 % m
	step = h2 % m
	if step == 0 {
		step = 1 // keep the k probes from collapsing onto one counter
	}
	return idx, step, m
}

// Update encodes one occurrence of x.
func (s *SBF) Update(x []byte) { s.UpdateWeighted(x, 1) }

// UpdateString encodes one occurrence of the string.
func (s *SBF) UpdateString(x string) { s.UpdateWeighted([]byte(x), 1) }

// UpdateWeighted adds weight w to all k counters of x. The key is hashed
// once; the whole update is allocation-free.
func (s *SBF) UpdateWeighted(x []byte, w uint64) {
	idx, step, m := s.indexSeed(x)
	for j := 0; j < s.k; j++ {
		s.cells[idx] += w
		idx += step
		if idx >= m {
			idx -= m
		}
	}
	s.n += w
}

// Query returns the minimal-selection frequency estimate: min over the
// element's k counters. Like the CMS it never underestimates. The key is
// hashed once; the query is allocation-free.
func (s *SBF) Query(x []byte) uint64 {
	idx, step, m := s.indexSeed(x)
	min := uint64(math.MaxUint64)
	for j := 0; j < s.k; j++ {
		if v := s.cells[idx]; v < min {
			min = v
		}
		idx += step
		if idx >= m {
			idx -= m
		}
	}
	return min
}

// QueryString returns the estimate for a string element.
func (s *SBF) QueryString(x string) uint64 { return s.Query([]byte(x)) }

// Merge adds other into s cell-wise (linear aggregation).
func (s *SBF) Merge(other *SBF) error {
	if other == nil || s.m != other.m || s.k != other.k {
		return ErrDimensionMismatch
	}
	for i, v := range other.cells {
		s.cells[i] += v
	}
	s.n += other.n
	return nil
}

// FlatCells exposes the counters for in-place blinding.
func (s *SBF) FlatCells() []uint64 { return s.cells }

// MarshalBinary serializes the filter.
func (s *SBF) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 24+8*s.m)
	binary.LittleEndian.PutUint64(buf[0:], uint64(s.m))
	binary.LittleEndian.PutUint64(buf[8:], uint64(s.k))
	binary.LittleEndian.PutUint64(buf[16:], s.n)
	vec.PutLE(buf[24:], s.cells)
	return buf, nil
}

// UnmarshalBinary restores a filter serialized by MarshalBinary.
func (s *SBF) UnmarshalBinary(data []byte) error {
	if len(data) < 24 {
		return ErrCorrupt
	}
	m := int(binary.LittleEndian.Uint64(data[0:]))
	k := int(binary.LittleEndian.Uint64(data[8:]))
	if m < 1 || k < 1 || m > 1<<32 || k > 64 {
		return ErrCorrupt
	}
	if len(data) != 24+8*m {
		return ErrCorrupt
	}
	s.m, s.k = m, k
	s.n = binary.LittleEndian.Uint64(data[16:])
	s.cells = make([]uint64, m)
	vec.GetLE(s.cells, data[24:])
	return nil
}
