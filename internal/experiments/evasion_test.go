package experiments

import "testing"

func TestEvasionTradeoff(t *testing.T) {
	pts, err := EvasionStudy(fastSim(), []int{1, 6, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// The paper's argument: evasion requires giving up delivery. At cap 1
	// the advertiser hides (high evasion) but delivers ~1 impression per
	// reached user; at cap 12 delivery is real but evasion collapses.
	if pts[0].EvasionPct < 60 {
		t.Fatalf("cap-1 evasion = %.1f%%, expected high", pts[0].EvasionPct)
	}
	if pts[0].ImpressionsPerTargetedPair > 1.01 {
		t.Fatalf("cap-1 delivery = %.2f impressions/pair, expected ~1",
			pts[0].ImpressionsPerTargetedPair)
	}
	if pts[2].EvasionPct > 30 {
		t.Fatalf("cap-12 evasion = %.1f%%, expected low", pts[2].EvasionPct)
	}
	if pts[2].ImpressionsPerTargetedPair <= pts[0].ImpressionsPerTargetedPair {
		t.Fatal("delivery did not grow with the cap")
	}
}
