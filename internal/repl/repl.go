// Package repl implements segment-shipping replication: a primary
// back-end streams its durable store — sealed WAL segments, snapshots,
// and the live tail of the active segment — to a follower that mirrors
// the directory byte-for-byte and replays the records into a warm
// read-only replica. When the primary dies, the follower is promoted:
// it re-opens its mirror through the ordinary crash-recovery path and
// takes over the deployment mid-round.
//
// The design leans entirely on the store's file discipline
// (internal/store, ship.go): sealed files are immutable, the active
// segment grows append-only, and files vanish only after a newer
// snapshot covers them. Replication is therefore a pull loop the
// follower drives — manifest, fetch, apply — with no primary-side
// state about followers at all. The primary's only job is to answer
// byte-range reads (Source); any number of followers may attach, and a
// follower that falls behind the primary's pruning resyncs itself from
// a newer snapshot without the primary noticing.
//
// Correctness is anchored on acknowledged records: the wire layer
// fsyncs before acking, so every acked record is durable on the
// primary and fetchable here. A promoted follower recovers exactly the
// records a restarted primary would have — the kill-the-primary e2e
// (promote_e2e_test.go) holds the promoted follower's finalized counts
// byte-identical to an uninterrupted control run.
package repl

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net"
	"sync"

	"eyewnder/internal/store"
	"eyewnder/internal/wire"
)

// Source is the store-side surface a primary ships from. *store.Disk
// implements it; tests substitute fakes to script pruning races and
// torn tails.
type Source interface {
	// Manifest returns the current shipping manifest (see
	// store.Disk.Manifest for the seal/size semantics followers rely
	// on).
	Manifest() ([]store.FileInfo, error)
	// ReadFileAt reads a byte range of one store file; a pruned file
	// returns an error satisfying errors.Is(err, fs.ErrNotExist).
	ReadFileAt(kind store.FileKind, gen uint64, off int64, p []byte) (int, error)
}

// MaxChunk caps the data bytes the primary puts in one ReplChunk frame
// regardless of what the follower asks for. It bounds per-connection
// memory and keeps a slow follower from holding large buffers alive.
const MaxChunk = 1 << 20

// Primary serves the replication protocol over TCP: accept, exchange
// hellos, then answer manifest and fetch requests until the follower
// hangs up. It holds no per-follower state beyond the connection.
type Primary struct {
	lis net.Listener
	src Source

	wg     sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// ServePrimary listens on addr and serves the replication protocol
// from src until Close. Pass the primary back-end's *store.Disk as
// src.
func ServePrimary(addr string, src Source) (*Primary, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Primary{lis: lis, src: src, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the listener's address (useful with ":0").
func (p *Primary) Addr() string { return p.lis.Addr().String() }

// Close stops accepting, drops every follower connection, and waits
// for the connection handlers to exit.
func (p *Primary) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.lis.Close()
	p.wg.Wait()
	return err
}

func (p *Primary) acceptLoop() {
	defer p.wg.Done()
	for {
		nc, err := p.lis.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			nc.Close()
			return
		}
		p.conns[nc] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.serveConn(nc)
	}
}

// serveConn runs one follower's pull loop. Protocol violations drop
// the connection; servable refusals (a Manifest error, a failed read)
// answer ReplError and keep it.
func (p *Primary) serveConn(nc net.Conn) {
	defer func() {
		p.mu.Lock()
		delete(p.conns, nc)
		p.mu.Unlock()
		nc.Close()
		p.wg.Done()
	}()
	if err := wire.WriteReplHello(nc); err != nil {
		return
	}
	if _, err := wire.ReadReplHello(nc); err != nil {
		return
	}
	var buf []byte // request frame scratch
	var chunk []byte
	for {
		kind, body, newBuf, err := wire.ReadReplFrame(nc, buf)
		buf = newBuf
		if err != nil {
			return
		}
		switch kind {
		case wire.ReplManifestReq:
			files, err := p.src.Manifest()
			if err != nil {
				if !writeReplError(nc, err) {
					return
				}
				continue
			}
			enc := make([]wire.ReplFileInfo, len(files))
			for i, f := range files {
				enc[i] = wire.ReplFileInfo{FileKind: byte(f.Kind), Gen: f.Gen, Size: f.Size, Sealed: f.Sealed}
			}
			if err := wire.WriteReplFrame(nc, wire.ReplManifest, wire.EncodeReplManifest(enc)); err != nil {
				return
			}

		case wire.ReplFetch:
			req, err := wire.DecodeReplFetch(body)
			if err != nil {
				return // framing-level damage: connection untrusted
			}
			want := int(req.MaxLen)
			if want > MaxChunk {
				want = MaxChunk
			}
			if cap(chunk) < 1+want {
				chunk = make([]byte, 1+want)
			}
			n, rerr := p.src.ReadFileAt(store.FileKind(req.FileKind), req.Gen, req.Off, chunk[1:1+want])
			var flags byte
			switch {
			case errors.Is(rerr, fs.ErrNotExist):
				flags, n = wire.ReplChunkGone, 0
			case rerr == io.EOF:
				flags = wire.ReplChunkEOF
			case rerr != nil:
				// A real read error: refuse rather than ship a partial
				// range the follower would treat as contiguous bytes.
				if !writeReplError(nc, rerr) {
					return
				}
				continue
			}
			chunk[0] = flags
			if err := wire.WriteReplFrame(nc, wire.ReplChunk, chunk[:1+n]); err != nil {
				return
			}

		default:
			if !writeReplError(nc, fmt.Errorf("unknown request kind %#02x", kind)) {
				return
			}
		}
	}
}

// writeReplError sends a ReplError frame; false means the connection
// itself failed and the caller should drop it.
func writeReplError(nc net.Conn, err error) bool {
	return wire.WriteReplFrame(nc, wire.ReplError, []byte(err.Error())) == nil
}
