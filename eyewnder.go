// Package eyewnder is the public facade of the eyeWnder reproduction: a
// crowdsourced, privacy-preserving system that detects targeted online
// advertising with a count-based heuristic (Iordanou et al., "Beyond
// content analysis: Detecting targeted ads via distributed counting",
// CoNEXT 2019).
//
// A System wires together the four components of the paper's Figure 1 —
// browser-extension clients, the back-end aggregation server, the
// oprf-server, and (optionally) the evaluation crawler — either fully
// in-process or over TCP. The essential flow:
//
//	sys, _ := eyewnder.NewSystem(eyewnder.SystemConfig{Users: 3})
//	ext := sys.Extensions[0]
//	ext.VisitPage("www.news.example", html, time.Now()) // detect & record ads
//	ext.SubmitReport(round)                             // blinded CMS upload
//	sys.CloseRound(round)                               // unblind, publish Users_th
//	verdict, _ := ext.AuditAd(adKey, round, time.Now()) // real-time audit
//
// The privacy property: the back-end only ever receives blinded sketches
// (uniformly random on their own), and ad URLs are mapped to opaque IDs
// through an oblivious PRF whose key lives on a separate server. Nothing
// about an individual's browsing or ad diet leaves the device in the
// clear.
package eyewnder

import (
	"errors"
	"fmt"

	"eyewnder/internal/backend"
	"eyewnder/internal/client"
	"eyewnder/internal/detector"
	"eyewnder/internal/oprf"
	"eyewnder/internal/privacy"
	"eyewnder/internal/wire"
)

// Re-exported core types, so downstream code only imports this package.
type (
	// Verdict is a classification with its evidence.
	Verdict = detector.Verdict
	// Class is the ad classification (Targeted / NonTargeted / Unknown).
	Class = detector.Class
	// DetectorConfig tunes the count-based algorithm.
	DetectorConfig = detector.Config
	// Params is the privacy-protocol geometry.
	Params = privacy.Params
	// Extension is one user's eyeWnder instance.
	Extension = client.Extension
)

// Re-exported classification constants.
const (
	Unknown     = detector.Unknown
	NonTargeted = detector.NonTargeted
	Targeted    = detector.Targeted
)

// DefaultDetectorConfig returns the paper's algorithm settings (7-day
// window, ≥4 domains, mean thresholds).
func DefaultDetectorConfig() DetectorConfig { return detector.DefaultConfig() }

// DefaultParams returns the paper's protocol settings (ε = δ = 0.001,
// 100k ad-ID space).
func DefaultParams() Params { return privacy.DefaultParams() }

// SystemConfig configures NewSystem.
type SystemConfig struct {
	// Users is the panel size (number of extensions).
	Users int
	// Detector defaults to DefaultDetectorConfig.
	Detector *DetectorConfig
	// Params defaults to a moderate geometry (ε = δ = 0.01, 20k IDs) —
	// switch to DefaultParams for the paper's full-size sketch.
	Params *Params
	// RSABits sizes the oprf key (default 2048).
	RSABits int
	// UsersEstimator defaults to the mean (the paper's choice).
	UsersEstimator detector.Estimator
}

// System is a fully wired in-process deployment.
type System struct {
	Backend    *backend.Backend
	OPRF       *oprf.Server
	Extensions []*Extension
	params     Params
}

// NewSystem builds an in-process deployment: an oprf-server, a back-end,
// and one registered-and-joined extension per user.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Users < 2 {
		return nil, errors.New("eyewnder: need at least 2 users (blinding requires peers)")
	}
	det := DefaultDetectorConfig()
	if cfg.Detector != nil {
		det = *cfg.Detector
	}
	params := Params{Epsilon: 0.01, Delta: 0.01, IDSpace: 20000, Suite: DefaultParams().Suite}
	if cfg.Params != nil {
		params = *cfg.Params
	}
	bits := cfg.RSABits
	if bits == 0 {
		bits = 2048
	}
	osrv, err := oprf.NewServer(bits)
	if err != nil {
		return nil, fmt.Errorf("eyewnder: oprf server: %w", err)
	}
	be, err := backend.New(backend.Config{
		Params:         params,
		Users:          cfg.Users,
		UsersEstimator: cfg.UsersEstimator,
	})
	if err != nil {
		return nil, err
	}
	sys := &System{Backend: be, OPRF: osrv, params: params}
	api := &client.LocalBackend{B: be}
	for i := 0; i < cfg.Users; i++ {
		// No Params passed down: each extension negotiates the round
		// config from the back-end, exactly as a wire-connected client
		// would — the back-end is the single source of truth.
		ext, err := client.New(client.Options{
			User: i, Detector: det,
		}, api, osrv, osrv.PublicKey())
		if err != nil {
			return nil, err
		}
		if err := ext.Register(); err != nil {
			return nil, err
		}
		sys.Extensions = append(sys.Extensions, ext)
	}
	for _, ext := range sys.Extensions {
		if err := ext.Join(); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// SubmitAllReports uploads every extension's blinded sketch for a round.
func (s *System) SubmitAllReports(round uint64) error {
	for _, ext := range s.Extensions {
		if err := ext.SubmitReport(round); err != nil {
			return fmt.Errorf("eyewnder: user %d report: %w", ext.User(), err)
		}
	}
	return nil
}

// CloseRound finalizes a reporting round at the back-end: unblind the
// aggregate and publish Users_th.
func (s *System) CloseRound(round uint64) (usersTh float64, distinctAds int, err error) {
	return s.Backend.CloseRound(round)
}

// ServeTCP exposes the back-end and the oprf-server on TCP addresses
// (use "127.0.0.1:0" to pick free ports). Callers own closing the
// returned servers.
func (s *System) ServeTCP(backendAddr, oprfAddr string) (backendSrv, oprfSrv *wire.Server, err error) {
	backendSrv, err = s.Backend.Serve(backendAddr)
	if err != nil {
		return nil, nil, err
	}
	oprfSrv, err = backend.ServeOPRF(oprfAddr, s.OPRF)
	if err != nil {
		backendSrv.Close()
		return nil, nil, err
	}
	return backendSrv, oprfSrv, nil
}
