// Package stats provides the descriptive statistics, density estimation,
// and distribution functions used across eyeWnder: threshold estimation
// for the count-based detector (mean, median, combinations), the kernel
// density estimates plotted in Figure 2 of the paper, and the normal /
// chi-square tail probabilities needed by the logistic-regression analysis
// of Section 8.
//
// All functions operate on float64 slices and never mutate their input
// unless documented otherwise.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Kahan summation: weekly #Users distributions can mix very large
	// static-campaign counts with long tails of ones, and the threshold
	// is compared against small integers, so we keep the sum exact.
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs without mutating it.
// It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	tmp := make([]float64, n)
	copy(tmp, xs)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Variance returns the unbiased sample variance of xs (denominator n-1).
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or an error for an empty sample.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs, or an error for an empty sample.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default).
// It does not mutate xs.
func Quantile(xs []float64, q float64) (float64, error) {
	n := len(xs)
	if n == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	tmp := make([]float64, n)
	copy(tmp, xs)
	sort.Float64s(tmp)
	if n == 1 {
		return tmp[0], nil
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return tmp[n-1], nil
	}
	frac := h - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac, nil
}

// Summary bundles the moments that the detector's threshold estimators use.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs in a single pass over sorted data.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.Median = Median(xs)
	s.StdDev = StdDev(xs)
	s.Min, _ = Min(xs)
	s.Max, _ = Max(xs)
	return s
}
