package backend

import (
	"errors"
	"strconv"

	"eyewnder/internal/obs"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
)

// backendMetrics holds the back-end's pre-registered instrument
// handles. Every handle is resolved at construction, so the ingestion
// hot path (ConsumeReport's accept branch) is a single atomic add — no
// registry lookup, no allocation. Rejections classify their error to a
// pre-registered reason counter with errors.Is over the package's
// sentinel errors, which walks the wrap chain without allocating.
type backendMetrics struct {
	// reg is kept so per-campaign handles can be registered lazily at
	// provision time (campaign counters are resolved once per campaign,
	// cached in campaignState, never looked up on the hot path).
	reg *obs.Registry

	accepted *obs.Counter
	// acceptedC0 is campaign 0's pre-registered per-campaign handle:
	// legacy traffic bumps it without a map lookup.
	acceptedC0 *obs.Counter

	rejReplica   *obs.Counter
	rejUnknown   *obs.Counter
	rejClosed    *obs.Counter
	rejSealed    *obs.Counter
	rejStale     *obs.Counter
	rejSuite     *obs.Counter
	rejDuplicate *obs.Counter
	rejGeometry  *obs.Counter
	rejBadUser   *obs.Counter
	rejOther     *obs.Counter

	roundsOpened   *obs.Counter
	roundsSealed   *obs.Counter
	roundsAdjusted *obs.Counter
	roundsClosed   *obs.Counter

	adjShares *obs.Counter

	adjReplica     *obs.Counter
	adjBadUser     *obs.Counter
	adjGeometry    *obs.Counter
	adjUnknown     *obs.Counter
	adjClosed      *obs.Counter
	adjStale       *obs.Counter
	adjSuite       *obs.Counter
	adjNotReporter *obs.Counter
	adjConflict    *obs.Counter
	adjOther       *obs.Counter
}

// newBackendMetrics registers the back-end instruments in reg (or a
// private registry when reg is nil, so the handles are always real).
func newBackendMetrics(reg *obs.Registry) *backendMetrics {
	reg = obs.Ensure(reg)
	rej := func(reason string) *obs.Counter {
		return reg.Counter("eyewnder_reports_rejected_total",
			"Reports refused, by rejection reason.", "reason", reason)
	}
	adjFail := func(reason string) *obs.Counter {
		return reg.Counter("eyewnder_adjust_failures_total",
			"Adjustment-share uploads refused, by rejection reason.", "reason", reason)
	}
	m := &backendMetrics{
		reg: reg,
		accepted: reg.Counter("eyewnder_reports_accepted_total",
			"Blinded reports reserved, logged, and folded into a round aggregate."),

		rejReplica:   rej("replica"),
		rejUnknown:   rej("unknown_round"),
		rejClosed:    rej("round_closed"),
		rejSealed:    rej("round_sealed"),
		rejStale:     rej("stale_version"),
		rejSuite:     rej("suite_mismatch"),
		rejDuplicate: rej("duplicate"),
		rejGeometry:  rej("geometry"),
		rejBadUser:   rej("bad_user"),
		rejOther:     rej("other"),

		roundsOpened: reg.Counter("eyewnder_rounds_opened_total",
			"Rounds created on first touch (open record logged)."),
		roundsSealed: reg.Counter("eyewnder_rounds_sealed_total",
			"Rounds sealed by a deadline close (missing set frozen)."),
		roundsAdjusted: reg.Counter("eyewnder_rounds_adjusted_total",
			"Rounds that entered the adjustment round (first share stored)."),
		roundsClosed: reg.Counter("eyewnder_rounds_closed_total",
			"Rounds closed (final sketch unblinded, Users_th published)."),

		adjShares: reg.Counter("eyewnder_adjust_shares_total",
			"Second-round adjustment shares accepted and stored."),

		adjReplica:     adjFail("replica"),
		adjBadUser:     adjFail("bad_user"),
		adjGeometry:    adjFail("geometry"),
		adjUnknown:     adjFail("unknown_round"),
		adjClosed:      adjFail("round_closed"),
		adjStale:       adjFail("stale_version"),
		adjSuite:       adjFail("suite_mismatch"),
		adjNotReporter: adjFail("not_reporter"),
		adjConflict:    adjFail("conflict"),
		adjOther:       adjFail("other"),
	}
	m.acceptedC0 = m.campaignAccepted(0)
	return m
}

// campaignAccepted resolves the per-campaign accepted-report counter —
// one "campaign"-labeled series per provisioned campaign (and the
// implicit campaign 0). Re-resolving an existing label returns the same
// handle, so a campaign re-provision keeps its running count.
func (m *backendMetrics) campaignAccepted(id uint32) *obs.Counter {
	return m.reg.Counter("eyewnder_campaign_reports_accepted_total",
		"Blinded reports accepted, by campaign.",
		"campaign", strconv.FormatUint(uint64(id), 10))
}

// reportReason maps a report-path error to its rejection counter.
func (m *backendMetrics) reportReason(err error) *obs.Counter {
	switch {
	case errors.Is(err, ErrReadOnlyReplica):
		return m.rejReplica
	case errors.Is(err, ErrUnknownRound):
		return m.rejUnknown
	case errors.Is(err, ErrRoundClosed):
		return m.rejClosed
	case errors.Is(err, ErrRoundSealed):
		return m.rejSealed
	case errors.Is(err, privacy.ErrIncompatibleConfig):
		return m.rejStale
	case errors.Is(err, privacy.ErrKeystreamMismatch):
		return m.rejSuite
	case errors.Is(err, privacy.ErrDuplicate):
		return m.rejDuplicate
	case errors.Is(err, sketch.ErrDimensionMismatch):
		return m.rejGeometry
	case errors.Is(err, ErrBadUser):
		return m.rejBadUser
	default:
		return m.rejOther
	}
}

// adjustReason maps an adjustment-path error to its failure counter.
func (m *backendMetrics) adjustReason(err error) *obs.Counter {
	switch {
	case errors.Is(err, ErrReadOnlyReplica):
		return m.adjReplica
	case errors.Is(err, ErrBadUser):
		return m.adjBadUser
	case errors.Is(err, sketch.ErrDimensionMismatch):
		return m.adjGeometry
	case errors.Is(err, ErrUnknownRound):
		return m.adjUnknown
	case errors.Is(err, ErrRoundClosed):
		return m.adjClosed
	case errors.Is(err, privacy.ErrIncompatibleConfig):
		return m.adjStale
	case errors.Is(err, privacy.ErrKeystreamMismatch):
		return m.adjSuite
	case errors.Is(err, ErrAdjustNotReporter):
		return m.adjNotReporter
	case errors.Is(err, ErrAdjustConflict):
		return m.adjConflict
	default:
		return m.adjOther
	}
}
