package vec

import "encoding/binary"

// Bulk little-endian (de)serialization of uint64 vectors: the encode
// half of cms_marshal / the wire frame path and the decode half of
// cms_unmarshal / WAL replay. The exported functions dispatch to the
// kernel selected at init: on little-endian hosts outside the `purego`
// tag the in-memory slice layout IS the wire layout, so the bulk kernel
// is a single memmove (see bytes_le.go); the generic kernel below is
// the portable per-word loop.

// PutLE encodes src into dst as little-endian uint64s. dst must hold
// 8*len(src) bytes.
func PutLE(dst []byte, src []uint64) { putLEImpl(dst, src) }

// GetLE decodes 8*len(dst) little-endian bytes from src into dst.
func GetLE(dst []uint64, src []byte) { getLEImpl(dst, src) }

// putLEGeneric encodes word by word; the reference implementation the
// equivalence tests compare the bulk kernel against.
func putLEGeneric(dst []byte, src []uint64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[8*i:], v)
	}
}

// getLEGeneric decodes word by word.
func getLEGeneric(dst []uint64, src []byte) {
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(src[8*i:])
	}
}
