package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A baseline row with no counterpart in the fresh report must fail the
// gate: renaming a benchmark must not silently dodge its regression
// check.
func TestCheckRegressionsMissingBaselineRow(t *testing.T) {
	rep := &pipelineReport{
		Benchmarks: map[string]pipelineResult{
			"kept": {NsPerOp: 1, AllocsPerOp: 1, BytesPerOp: 1},
		},
		Baseline: map[string]pipelineResult{
			"kept":    {NsPerOp: 1, AllocsPerOp: 1, BytesPerOp: 1},
			"renamed": {NsPerOp: 1, AllocsPerOp: 1, BytesPerOp: 1},
		},
	}
	err := checkRegressions(rep, 30, 300)
	if err == nil {
		t.Fatal("missing baseline row passed the gate")
	}
	delete(rep.Baseline, "renamed")
	if err := checkRegressions(rep, 30, 300); err != nil {
		t.Fatalf("clean report failed the gate: %v", err)
	}
}

func TestCheckRegressionsThresholds(t *testing.T) {
	rep := &pipelineReport{
		Benchmarks: map[string]pipelineResult{
			"hot": {NsPerOp: 100, AllocsPerOp: 20, BytesPerOp: 1000},
		},
		Baseline: map[string]pipelineResult{
			"hot": {NsPerOp: 100, AllocsPerOp: 10, BytesPerOp: 1000},
		},
	}
	// Allocs doubled: beyond a 30% threshold.
	err := checkRegressions(rep, 30, 300)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("alloc regression passed the gate: %v", err)
	}
	// Within a 150% threshold it is tolerated.
	if err := checkRegressions(rep, 150, 300); err != nil {
		t.Fatalf("tolerated regression failed the gate: %v", err)
	}
	// New benchmarks (no baseline row) never fail the gate.
	rep.Benchmarks["fresh"] = pipelineResult{NsPerOp: 1, AllocsPerOp: 99, BytesPerOp: 99}
	if err := checkRegressions(rep, 150, 300); err != nil {
		t.Fatalf("new benchmark failed the gate: %v", err)
	}
}

// writeReport marshals a pipeline report to a temp file.
func writeReport(t *testing.T, dir, name string, rep *pipelineReport) string {
	t.Helper()
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// -promote must replace only the requested rows (or, unrestricted, the
// rows the baseline already tracks), adopt the source's host stamp, and
// leave the destination's historical baseline block untouched.
func TestPromoteReport(t *testing.T) {
	dir := t.TempDir()
	src := &pipelineReport{
		Go: "go9.9", MaxProcs: 32,
		Benchmarks: map[string]pipelineResult{
			"round_merge_locked":  {NsPerOp: 100, AllocsPerOp: 1, BytesPerOp: 1},
			"round_merge_striped": {NsPerOp: 10, AllocsPerOp: 1, BytesPerOp: 1},
			"only_on_ci":          {NsPerOp: 5, AllocsPerOp: 1, BytesPerOp: 1},
		},
	}
	dst := &pipelineReport{
		Go: "go1.0", MaxProcs: 1,
		Benchmarks: map[string]pipelineResult{
			"round_merge_locked":  {NsPerOp: 900, AllocsPerOp: 9, BytesPerOp: 9},
			"round_merge_striped": {NsPerOp: 900, AllocsPerOp: 9, BytesPerOp: 9},
			"untouched":           {NsPerOp: 7, AllocsPerOp: 7, BytesPerOp: 7},
		},
		Baseline: map[string]pipelineResult{
			"untouched": {NsPerOp: 3, AllocsPerOp: 3, BytesPerOp: 3},
		},
	}
	srcPath := writeReport(t, dir, "src.json", src)
	dstPath := writeReport(t, dir, "dst.json", dst)

	if err := promoteReport(srcPath, dstPath, []string{"round_merge_locked", "round_merge_striped"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(dstPath)
	if err != nil {
		t.Fatal(err)
	}
	var got pipelineReport
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Go != "go9.9" || got.MaxProcs != 32 {
		t.Fatalf("host stamp not adopted: %s/%d", got.Go, got.MaxProcs)
	}
	if got.Benchmarks["round_merge_locked"].NsPerOp != 100 || got.Benchmarks["round_merge_striped"].NsPerOp != 10 {
		t.Fatalf("rows not promoted: %+v", got.Benchmarks)
	}
	if got.Benchmarks["untouched"].NsPerOp != 7 {
		t.Fatal("unselected row was overwritten")
	}
	if _, ok := got.Benchmarks["only_on_ci"]; ok {
		t.Fatal("row outside the selection leaked in")
	}
	if got.Baseline["untouched"].NsPerOp != 3 {
		t.Fatal("historical baseline block was modified")
	}

	// Unrestricted promote refreshes tracked rows only — a source-only
	// row must not appear.
	if err := promoteReport(srcPath, dstPath, nil); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(dstPath)
	got = pipelineReport{}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Benchmarks["only_on_ci"]; ok {
		t.Fatal("unrestricted promote imported an untracked row")
	}

	// A requested row missing from the source is an explicit error.
	if err := promoteReport(srcPath, dstPath, []string{"no_such_row"}); err == nil {
		t.Fatal("missing promote row accepted")
	}
}

// The gate must refuse — not silently mis-compare — when a baseline row
// was recorded under a different GOMAXPROCS than the fresh run, and the
// refusal must say how to rerun comparably.
func TestCheckRegressionsRefusesMaxProcsMismatch(t *testing.T) {
	rep := &pipelineReport{
		MaxProcs: 1,
		Benchmarks: map[string]pipelineResult{
			"hot": {NsPerOp: 100, AllocsPerOp: 1, BytesPerOp: 1, MaxProcs: 1},
		},
		Baseline: map[string]pipelineResult{
			"hot": {NsPerOp: 100, AllocsPerOp: 1, BytesPerOp: 1, MaxProcs: 4},
		},
		BaselineMaxProcs: 4,
	}
	err := checkRegressions(rep, 30, 300)
	if err == nil {
		t.Fatal("GOMAXPROCS=4 baseline row vs GOMAXPROCS=1 run passed the gate")
	}
	// Matching parallelism compares normally again.
	rep.MaxProcs = 4
	rep.Benchmarks["hot"] = pipelineResult{NsPerOp: 100, AllocsPerOp: 1, BytesPerOp: 1, MaxProcs: 4}
	if err := checkRegressions(rep, 30, 300); err != nil {
		t.Fatalf("like-for-like report failed the gate: %v", err)
	}
}

// Baseline rows recorded before per-row stamps existed (MaxProcs == 0)
// fall back to the baseline report's header stamp; fresh rows fall back
// to the run's.
func TestCheckRegressionsMaxProcsHeaderFallback(t *testing.T) {
	rep := &pipelineReport{
		MaxProcs: 1,
		Benchmarks: map[string]pipelineResult{
			"hot": {NsPerOp: 100, AllocsPerOp: 1, BytesPerOp: 1},
		},
		Baseline: map[string]pipelineResult{
			"hot": {NsPerOp: 100, AllocsPerOp: 1, BytesPerOp: 1},
		},
		BaselineMaxProcs: 4,
	}
	if err := checkRegressions(rep, 30, 300); err == nil {
		t.Fatal("header stamps 4 vs 1 passed the gate")
	}
	rep.MaxProcs = 4
	if err := checkRegressions(rep, 30, 300); err != nil {
		t.Fatalf("matching header stamps failed the gate: %v", err)
	}
	// Reports with no stamps anywhere (both headers zero) predate the
	// guard entirely: compare as before.
	rep.MaxProcs, rep.BaselineMaxProcs = 0, 0
	if err := checkRegressions(rep, 30, 300); err != nil {
		t.Fatalf("stampless reports failed the gate: %v", err)
	}
}

// Promotion carries each row's own maxprocs stamp into the committed
// baseline, so a later -check holds promoted rows to like-for-like
// parallelism even when the rest of the file was recorded elsewhere.
func TestPromoteCarriesPerRowMaxProcs(t *testing.T) {
	dir := t.TempDir()
	src := &pipelineReport{
		Go: "go9.9", MaxProcs: 32, VecKernel: "avx2",
		Benchmarks: map[string]pipelineResult{
			"round_merge_striped": {NsPerOp: 10, AllocsPerOp: 1, BytesPerOp: 1, MaxProcs: 32},
		},
	}
	dst := &pipelineReport{
		Go: "go1.0", MaxProcs: 1,
		Benchmarks: map[string]pipelineResult{
			"round_merge_striped": {NsPerOp: 900, AllocsPerOp: 9, BytesPerOp: 9, MaxProcs: 1},
		},
	}
	srcPath := writeReport(t, dir, "src.json", src)
	dstPath := writeReport(t, dir, "dst.json", dst)
	if err := promoteReport(srcPath, dstPath, []string{"round_merge_striped"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(dstPath)
	if err != nil {
		t.Fatal(err)
	}
	var got pipelineReport
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if r := got.Benchmarks["round_merge_striped"]; r.MaxProcs != 32 {
		t.Fatalf("promoted row maxprocs = %d, want 32", r.MaxProcs)
	}
	if got.VecKernel != "avx2" || got.MaxProcs != 32 {
		t.Fatalf("host stamps not adopted: kernel %q maxprocs %d", got.VecKernel, got.MaxProcs)
	}
}
