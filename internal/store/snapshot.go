package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"eyewnder/internal/vec"
)

// Snapshot files: the full round+roster state at one instant, written
// atomically (temp file, fsync, rename, directory fsync) so a crash
// mid-snapshot leaves either the previous snapshot or the new one,
// never a half-written file that recovery would trust. Layout (all
// integers little-endian; bracketed fields are version ≥ 2 only,
// double-bracketed version ≥ 3 only):
//
//	magic "EYWSNAP1" (8)  version(4)
//	[configVersion(4) rosterVersion(4)]
//	[[campaignCount(8) { defLen(8) def }*]]   sorted by campaign ID
//	rosterCount(8) { user(8) keyLen(8) key }*
//	roundCount(8) {
//	    round(8) roster(8) d(8) w(8) seed(8) n(8)
//	    [roundConfigVersion(4) roundRosterVersion(4)]
//	    [[campaign(4)]]
//	    keystream(1) closed(1)
//	    reportedBitmap(⌈roster/8⌉)
//	    adjustCount(8) { user(8) cells(8·d·w) }*
//	    cells(8·d·w)
//	}*
//	crc32c(4) over everything before it
//
// Version 2 added the negotiated-config versions: the deployment-wide
// config/roster counters at the top, and per round the config the round
// was opened under. Version-1 snapshots (pre-handshake releases) load
// with all versions zero — the unversioned deployment style. Version 3
// added the multi-campaign service: the opaque campaign directory
// (canonical campaign encodings, stored exactly as their recCampaign
// WAL records) and each round's campaign ID. Version-1/2 snapshots load
// with an empty directory and every round on campaign 0.
//
// The trailing whole-file CRC is the validity marker: a snapshot that
// fails it (torn write, partial disk) is ignored and recovery falls
// back to the previous generation's snapshot plus its WAL segments.

const snapMagic = "EYWSNAP1"

// snapVersion is the written format; snapVersionV1 and snapVersionV2
// are still readable.
const (
	snapVersionV1 = 1
	snapVersionV2 = 2
	snapVersion   = 3
)

// maxSnapshotCells caps a single round's cell count on load (2²⁸ cells
// = 2 GiB), mirroring the sketch deserializer's bound so a corrupt
// header cannot provoke a huge allocation.
const maxSnapshotCells = 1 << 28

// snapshotData is a decoded snapshot.
type snapshotData struct {
	rounds        []*RoundState
	roster        map[int][]byte
	campaigns     map[uint32][]byte
	configVersion uint32
	rosterVersion uint32
}

// writeSnapshot writes the state to path atomically.
func writeSnapshot(path string, roster map[int][]byte, campaigns map[uint32][]byte, rounds []*RoundState, configVersion, rosterVersion uint32) error {
	buf := encodeSnapshot(roster, campaigns, rounds, configVersion, rosterVersion)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// encodeSnapshot serializes the state with the trailing CRC.
func encodeSnapshot(roster map[int][]byte, campaigns map[uint32][]byte, rounds []*RoundState, configVersion, rosterVersion uint32) []byte {
	size := len(snapMagic) + 4 + 8 + 8
	camps := sortedCampaignIDs(campaigns)
	for _, id := range camps {
		size += 8 + len(campaigns[id])
	}
	users := sortedUsers(roster)
	for _, u := range users {
		size += 16 + len(roster[u])
	}
	size += 8
	for _, rs := range rounds {
		size += 62 + (rs.RosterSize+7)/8 + 8
		for range rs.Adjusts {
			size += 8 + 8*len(rs.Cells)
		}
		size += 8 * len(rs.Cells)
	}
	size += 4 // CRC
	buf := make([]byte, 0, size)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint32(buf, configVersion)
	buf = binary.LittleEndian.AppendUint32(buf, rosterVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(camps)))
	for _, id := range camps {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(campaigns[id])))
		buf = append(buf, campaigns[id]...)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(users)))
	for _, u := range users {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(u))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(roster[u])))
		buf = append(buf, roster[u]...)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(rounds)))
	for _, rs := range rounds {
		buf = binary.LittleEndian.AppendUint64(buf, rs.Round)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rs.RosterSize))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rs.D))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rs.W))
		buf = binary.LittleEndian.AppendUint64(buf, rs.Seed)
		buf = binary.LittleEndian.AppendUint64(buf, rs.N)
		buf = binary.LittleEndian.AppendUint32(buf, rs.ConfigVersion)
		buf = binary.LittleEndian.AppendUint32(buf, rs.RosterVersion)
		buf = binary.LittleEndian.AppendUint32(buf, rs.Campaign)
		flags := []byte{rs.Keystream, 0}
		if rs.Closed {
			flags[1] = 1
		}
		buf = append(buf, flags...)
		bitmap := make([]byte, (rs.RosterSize+7)/8)
		for u, rep := range rs.Reported {
			if rep {
				bitmap[u/8] |= 1 << (u % 8)
			}
		}
		buf = append(buf, bitmap...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(rs.Adjusts)))
		for _, u := range sortedAdjustUsers(rs.Adjusts) {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(u))
			buf = appendCells(buf, rs.Adjusts[u])
		}
		buf = appendCells(buf, rs.Cells)
	}
	crc := crc32.Checksum(buf, castagnoli)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// appendCells appends a cell vector's raw little-endian bytes.
func appendCells(buf []byte, cells []uint64) []byte {
	if view, ok := vec.AsBytes(cells); ok {
		return append(buf, view...)
	}
	off := len(buf)
	buf = append(buf, make([]byte, 8*len(cells))...)
	vec.PutLE(buf[off:], cells)
	return buf
}

// loadSnapshot reads and validates a snapshot file. Any structural
// problem — bad magic, failed CRC, truncated section — returns an
// error; the caller falls back to an older generation.
func loadSnapshot(path string) (*snapshotData, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(snapMagic)+4+8+8+4 || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("store: %s: not a snapshot", path)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if binary.LittleEndian.Uint32(tail) != crc32.Checksum(body, castagnoli) {
		return nil, fmt.Errorf("store: %s: snapshot checksum mismatch", path)
	}
	r := snapReader{buf: body[len(snapMagic):]}
	v := r.uint32()
	if v != snapVersion && v != snapVersionV2 && v != snapVersionV1 {
		return nil, fmt.Errorf("store: %s: snapshot version %d", path, v)
	}
	snap := &snapshotData{roster: make(map[int][]byte), campaigns: make(map[uint32][]byte)}
	if v >= snapVersionV2 {
		snap.configVersion = r.uint32()
		snap.rosterVersion = r.uint32()
	}
	if v >= snapVersion {
		camps := r.uint64()
		var prev uint32
		for i := uint64(0); i < camps && r.err == nil; i++ {
			def := r.bytes(r.uint64())
			if r.err != nil {
				break
			}
			if len(def) < campaignBodyMin {
				return nil, fmt.Errorf("store: %s: snapshot campaign entry", path)
			}
			id := binary.LittleEndian.Uint32(def[0:])
			if id == 0 || id > maxRecordCampaign || (i > 0 && id <= prev) {
				return nil, fmt.Errorf("store: %s: snapshot campaign order", path)
			}
			prev = id
			snap.campaigns[id] = append([]byte(nil), def...)
		}
	}
	users := r.uint64()
	for i := uint64(0); i < users && r.err == nil; i++ {
		u := r.uint64()
		key := r.bytes(r.uint64())
		if u > 1<<31 {
			return nil, fmt.Errorf("store: %s: snapshot roster entry", path)
		}
		snap.roster[int(u)] = append([]byte(nil), key...)
	}
	rounds := r.uint64()
	for i := uint64(0); i < rounds && r.err == nil; i++ {
		rs := &RoundState{Adjusts: make(map[int][]uint64)}
		rs.Round = r.uint64()
		roster := r.uint64()
		d, w := r.uint64(), r.uint64()
		rs.Seed = r.uint64()
		rs.N = r.uint64()
		if v >= snapVersionV2 {
			rs.ConfigVersion = r.uint32()
			rs.RosterVersion = r.uint32()
		}
		if v >= snapVersion {
			rs.Campaign = r.uint32()
			if rs.Campaign > maxRecordCampaign {
				return nil, fmt.Errorf("store: %s: snapshot round campaign", path)
			}
		}
		flags := r.bytes(2)
		if r.err != nil {
			break
		}
		if roster > 1<<31 || d < 1 || w < 1 || d > maxReportDepth || w > maxReportWidth || d*w > maxSnapshotCells {
			return nil, fmt.Errorf("store: %s: snapshot round header", path)
		}
		rs.RosterSize, rs.D, rs.W = int(roster), int(d), int(w)
		rs.Keystream, rs.Closed = flags[0], flags[1] != 0
		bitmap := r.bytes(uint64((roster + 7) / 8))
		if r.err != nil {
			break
		}
		rs.Reported = make([]bool, roster)
		for u := range rs.Reported {
			rs.Reported[u] = bitmap[u/8]&(1<<(u%8)) != 0
		}
		adjusts := r.uint64()
		for j := uint64(0); j < adjusts && r.err == nil; j++ {
			u := r.uint64()
			cells := r.cells(d * w)
			if r.err == nil {
				if u >= roster {
					return nil, fmt.Errorf("store: %s: snapshot adjust entry", path)
				}
				rs.Adjusts[int(u)] = cells
			}
		}
		rs.Cells = r.cells(d * w)
		if r.err == nil {
			snap.rounds = append(snap.rounds, rs)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("store: %s: %v", path, r.err)
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("store: %s: %d trailing snapshot bytes", path, len(r.buf))
	}
	return snap, nil
}

// snapReader is a bounds-checked cursor over a snapshot body.
type snapReader struct {
	buf []byte
	err error
}

func (r *snapReader) bytes(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if uint64(len(r.buf)) < n {
		r.err = fmt.Errorf("truncated snapshot section (%d of %d bytes)", len(r.buf), n)
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *snapReader) uint32() uint32 {
	b := r.bytes(4)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) uint64() uint64 {
	b := r.bytes(8)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *snapReader) cells(n uint64) []uint64 {
	raw := r.bytes(8 * n)
	if r.err != nil {
		return nil
	}
	out := make([]uint64, n)
	vec.GetLE(out, raw)
	return out
}

// sortedUsers returns the roster's user indices in ascending order.
func sortedUsers(roster map[int][]byte) []int {
	out := make([]int, 0, len(roster))
	for u := range roster {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// sortedCampaignIDs returns a campaign directory's IDs in ascending
// order, the canonical section order.
func sortedCampaignIDs(campaigns map[uint32][]byte) []uint32 {
	out := make([]uint32, 0, len(campaigns))
	for id := range campaigns {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedAdjustUsers returns an adjustment map's user indices ascending.
func sortedAdjustUsers(adjusts map[int][]uint64) []int {
	out := make([]int, 0, len(adjusts))
	for u := range adjusts {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
