package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// Sealing an empty active segment must be legal: the sealed file holds
// only the 8-byte magic, the manifest reports it sealed at that size,
// and appends continue into the next generation. This is the quiet-
// primary path — a follower catches up by sealing, not by waiting for
// traffic.
func TestSealEmptyActiveSegment(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{})
	defer d.Close()

	sealed, err := d.Seal()
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if sealed != 1 {
		t.Fatalf("sealed gen = %d, want 1", sealed)
	}
	st, err := os.Stat(filepath.Join(dir, walName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(len(walMagic)) {
		t.Fatalf("empty sealed segment = %d bytes, want %d (magic only)", st.Size(), len(walMagic))
	}

	files, err := d.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	want := []FileInfo{
		{Kind: FileWAL, Gen: 1, Size: int64(len(walMagic)), Sealed: true},
		{Kind: FileWAL, Gen: 2, Size: int64(len(walMagic)), Sealed: false},
	}
	if !reflect.DeepEqual(files, want) {
		t.Fatalf("manifest after empty seal = %+v, want %+v", files, want)
	}

	// The store keeps working in the new generation, and a second seal
	// of another empty segment is just as fine.
	logRound(t, d, 1, 4, 0)
	if _, err := d.Seal(); err != nil {
		t.Fatal(err)
	}
	if sealed, err = d.Seal(); err != nil || sealed != 3 {
		t.Fatalf("third seal = gen %d, %v", sealed, err)
	}

	// Recovery replays through the magic-only segments without a hiccup.
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Rounds()) != 1 || !reflect.DeepEqual(rec.Rounds()[0].Cells, wantRoundCells(0)) {
		t.Fatal("empty sealed segments broke recovery")
	}
	if rec.TailGen() != 4 || rec.TailOff() != int64(len(walMagic)) {
		t.Fatalf("tail = gen %d off %d, want gen 4 off %d", rec.TailGen(), rec.TailOff(), len(walMagic))
	}
}

// RetainSegments must keep the newest N sealed segments (and their
// snapshots) across a snapshot's pruning pass, so a briefly-lagging
// follower can still fetch them instead of falling back to a full
// resync.
func TestRetainSegmentsSurvivePrune(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{RetainSegments: 2})
	defer d.Close()
	logRound(t, d, 1, 4, 0)
	for i := 0; i < 3; i++ { // seal gens 1..3; active is now 4
		if _, err := d.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Snapshot(func() ([]*RoundState, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	// Snapshot rotated 4 away and wrote snap-4; without retention every
	// segment below 4 would be pruned. With RetainSegments=2, gens 3 and
	// 4 must survive; 1 and 2 must not.
	for gen, want := range map[uint64]bool{1: false, 2: false, 3: true, 4: true} {
		_, err := os.Stat(filepath.Join(dir, walName(gen)))
		if got := err == nil; got != want {
			t.Errorf("wal gen %d present = %v, want %v", gen, got, want)
		}
	}
	files, err := d.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	var gens []uint64
	for _, fi := range files {
		if fi.Kind == FileWAL {
			gens = append(gens, fi.Gen)
		}
	}
	if !reflect.DeepEqual(gens, []uint64{3, 4, 5}) {
		t.Fatalf("manifest WAL gens after retained prune = %v", gens)
	}
}

// Shipping while a rotation lands: Manifest and ReadFileAt must stay
// consistent while Seal and Snapshot rotate segments under them. The
// invariants a follower's poll loop leans on — checked continuously
// here while rotations land:
//
//   - a file listed as sealed never changes size in a later manifest;
//   - every listed byte range is readable, or the file is gone entirely
//     (pruned — fs.ErrNotExist), never a short file;
//   - a WAL segment listed as sealed is never the one that grows.
func TestShippingDuringRotation(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{RetainSegments: 1})
	if err := d.AppendOpen(0, 1, 256, testD, testW, 0, 1, 0, 0); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the shipper: poll manifests, fetch listed ranges
		defer wg.Done()
		sealedSize := map[FileInfo]int64{} // keyed by kind+gen (Size zeroed)
		buf := make([]byte, 64<<10)
		for {
			select {
			case <-stop:
				errs <- nil
				return
			default:
			}
			files, err := d.Manifest()
			if err != nil {
				errs <- err
				return
			}
			for _, fi := range files {
				key := FileInfo{Kind: fi.Kind, Gen: fi.Gen, Sealed: true}
				if fi.Sealed {
					if prev, ok := sealedSize[key]; ok && prev != fi.Size {
						errs <- fmt.Errorf("sealed %s gen %d changed size %d -> %d", fi.Kind, fi.Gen, prev, fi.Size)
						return
					}
					sealedSize[key] = fi.Size
				}
				// Fetch the listed tail of the file, as a follower would.
				off := fi.Size - int64(len(buf))
				if off < 0 {
					off = 0
				}
				n, err := d.ReadFileAt(fi.Kind, fi.Gen, off, buf[:fi.Size-off])
				switch {
				case err == nil || err == io.EOF:
					if int64(n) < fi.Size-off && err == io.EOF && fi.Sealed {
						errs <- fmt.Errorf("sealed %s gen %d: manifest size %d but read %d from %d",
							fi.Kind, fi.Gen, fi.Size, n, off)
						return
					}
				case errors.Is(err, fs.ErrNotExist):
					// Pruned under us: legal, means "resync from snapshot".
				default:
					errs <- err
					return
				}
			}
		}
	}()

	// The primary: append, seal, snapshot — rotations landing constantly.
	for u := 0; u < 200; u++ {
		if err := d.AppendReport(0, 1, u, testD, testW, 1, 0, 1, 0, testCells(uint64(u))); err != nil {
			t.Fatal(err)
		}
		switch {
		case u%17 == 16:
			if _, err := d.Seal(); err != nil {
				t.Fatal(err)
			}
		case u%41 == 40:
			// Snapshot with the true folded state so far, as the back-end
			// would: users 0..u reported.
			users := make([]int, u+1)
			reported := make([]bool, 256)
			for i := range users {
				users[i] = i
				reported[i] = true
			}
			state := &RoundState{
				Round: 1, RosterSize: 256, D: testD, W: testW,
				N: uint64(u + 1), Keystream: 1,
				Cells:    wantRoundCells(users...),
				Reported: reported,
				Adjusts:  map[int][]uint64{},
			}
			if err := d.Snapshot(func() ([]*RoundState, error) {
				return []*RoundState{state}, nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Whatever interleaving happened, recovery still folds all 200.
	d2 := openTestStore(t, dir, Options{})
	defer d2.Close()
	rs := d2.Rounds()[0]
	if rs.N != 200 {
		t.Fatalf("recovered N = %d, want 200", rs.N)
	}
}

// A torn shipped tail at the parser level: a fetch that ends mid-record
// parses everything before the cut, reports "need more" (not an error),
// and converges once the remaining bytes arrive — the exact stop-
// cleanly-re-request-converge contract the follower builds on.
func TestSegmentParserTornTailConverges(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{})
	logRound(t, d, 1, 4, 0, 1, 2)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, walName(1)))
	if err != nil {
		t.Fatal(err)
	}

	// Find the record boundaries with a clean full-file parse.
	boundaries := []int64{int64(len(walMagic))}
	full := NewSegmentParser()
	full.Feed(raw)
	for {
		ev, err := full.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev == nil {
			break
		}
		boundaries = append(boundaries, full.Offset())
	}
	if full.Offset() != int64(len(raw)) {
		t.Fatalf("clean parse stopped at %d of %d", full.Offset(), len(raw))
	}
	events := len(boundaries) - 1 // open + 3 reports
	if events != 4 {
		t.Fatalf("segment holds %d events, want 4", events)
	}

	// Cut mid-record (three bytes into the last record) and feed in two
	// installments, draining between them.
	cut := int(boundaries[events-1]) + 3
	p := NewSegmentParser()
	p.Feed(raw[:cut])
	var got int
	for {
		ev, err := p.Next()
		if err != nil {
			t.Fatalf("parse before cut: %v", err)
		}
		if ev == nil {
			break
		}
		got++
	}
	if got != events-1 {
		t.Fatalf("parsed %d events before the cut, want %d", got, events-1)
	}
	if p.Offset() != boundaries[events-1] {
		t.Fatalf("torn-tail offset = %d, want boundary %d", p.Offset(), boundaries[events-1])
	}
	p.Feed(raw[cut:]) // the re-requested remainder arrives
	ev, err := p.Next()
	if err != nil || ev == nil {
		t.Fatalf("converge after refeed: %v %v", ev, err)
	}
	if p.Offset() != int64(len(raw)) {
		t.Fatalf("converged offset = %d, want %d", p.Offset(), len(raw))
	}

	// Damage, by contrast, is sticky: flip a byte inside the last record
	// and the parser stops at the same boundary with ErrCorruptRecord,
	// and stays stopped even if more bytes arrive.
	bad := append([]byte(nil), raw...)
	bad[cut] ^= 0xFF
	p2 := NewSegmentParser()
	p2.Feed(bad)
	for {
		ev, err := p2.Next()
		if ev != nil {
			continue
		}
		if !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("corrupt tail = %v, want ErrCorruptRecord", err)
		}
		break
	}
	if p2.Offset() != boundaries[events-1] {
		t.Fatalf("corrupt stop offset = %d, want %d", p2.Offset(), boundaries[events-1])
	}
	p2.Feed(raw[len(raw)-1:])
	if _, err := p2.Next(); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("sticky error lost: %v", err)
	}

	// SkipTo resumes a parser mid-segment: position it at the last
	// boundary and feed only the tail record's bytes.
	p3 := NewSegmentParser()
	p3.SkipTo(boundaries[events-1])
	p3.Feed(raw[boundaries[events-1]:])
	if ev, err := p3.Next(); err != nil || ev == nil {
		t.Fatalf("SkipTo resume: %v %v", ev, err)
	}
	if p3.Offset() != int64(len(raw)) {
		t.Fatalf("SkipTo final offset = %d, want %d", p3.Offset(), len(raw))
	}
}

// Recover must report tail offsets a follower can trust: on a clean
// directory TailOff is the tail file's size; on a directory whose tail
// segment ends mid-record (a torn shipped tail) TailOff stops at the
// last valid record — the truncate-and-re-request point — while the
// recovered state still holds everything before the tear.
func TestRecoverTailOffsets(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{})
	logRound(t, d, 1, 4, 0, 1)
	if _, err := d.Seal(); err != nil { // gen 1 sealed, gen 2 active
		t.Fatal(err)
	}
	logRound(t, d, 2, 4, 0)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	tail := filepath.Join(dir, walName(2))
	st, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TailGen() != 2 || rec.TailOff() != st.Size() {
		t.Fatalf("clean tail = gen %d off %d, want gen 2 off %d", rec.TailGen(), rec.TailOff(), st.Size())
	}
	var sealed []bool
	for _, fi := range rec.Files() {
		sealed = append(sealed, fi.Sealed)
	}
	if !reflect.DeepEqual(sealed, []bool{true, false}) {
		t.Fatalf("recovered seal flags = %v (files %+v)", sealed, rec.Files())
	}

	// Tear the tail: chop 5 bytes off the last record. Recovery stops at
	// the last valid boundary, keeps round 1 intact, and round 2 loses
	// only the torn report.
	raw, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tail, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	rec2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.TailGen() != 2 {
		t.Fatalf("torn tail gen = %d", rec2.TailGen())
	}
	if rec2.TailOff() >= int64(len(raw)-5) || rec2.TailOff() < int64(len(walMagic)) {
		t.Fatalf("torn TailOff = %d, want a record boundary inside [8, %d)", rec2.TailOff(), len(raw)-5)
	}
	rounds := rec2.Rounds()
	if len(rounds) != 2 || !reflect.DeepEqual(rounds[0].Cells, wantRoundCells(0, 1)) {
		t.Fatal("tear in gen 2 damaged gen 1 state")
	}
	if rounds[1].Reported[0] {
		t.Fatal("torn report was applied")
	}
	// The boundary is real: the bytes up to TailOff re-parse cleanly and
	// end exactly there.
	p := NewSegmentParser()
	p.Feed(raw[:rec2.TailOff()])
	for {
		ev, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev == nil {
			break
		}
	}
	if p.Offset() != rec2.TailOff() {
		t.Fatalf("TailOff %d is not a record boundary (parser stopped at %d)", rec2.TailOff(), p.Offset())
	}

	// A directory that never existed recovers as empty — the state a
	// brand-new follower starts from.
	empty, err := Recover(filepath.Join(dir, "does-not-exist"))
	if err != nil {
		t.Fatal(err)
	}
	if empty.TailGen() != 0 || empty.TailOff() != 0 || len(empty.Rounds()) != 0 || len(empty.Files()) != 0 {
		t.Fatal("missing directory did not recover as empty")
	}
}
