// Package obs is the repository's dependency-free metrics core: a
// registry of atomically-updated counters, gauges, and fixed-bucket
// latency histograms, plus a Prometheus-text-format encoder, a JSON
// snapshot encoder, and the admin HTTP endpoint (/metrics, /statusz,
// /healthz, /debug/pprof/*) eyewnder-server exposes behind -admin.
//
// The design constraint is the report hot path: every instrument
// handle is pre-registered once at construction time (get-or-register
// by name+labels, so a promoted follower reuses the instruments its
// warm-replica phase created), and the update operations — Counter.Inc,
// Gauge.Set, Histogram.Observe — are pure atomic arithmetic with no
// allocation, no map lookup, and no lock. The package uses no unsafe
// and no assembly, so it is identical under the purego CI leg.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// kind discriminates the instrument behind a registry entry.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered instrument: a metric name, an optional
// fixed label string (rendered once at registration, e.g.
// `reason="sealed"`), and exactly one live instrument.
type metric struct {
	name   string
	help   string
	labels string // rendered `k="v",…` body, "" when unlabeled
	kind   kind

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds the instruments of one process (or one harness run).
// Registration takes a lock and may allocate; it happens at startup.
// The returned handles are updated lock-free thereafter. Registration
// is idempotent: asking for the same (name, labels) again returns the
// existing instrument, which is what lets a follower's promotion path
// rebuild its backend and store over the same registry without
// double-registering anything.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric          // registration order
	byKey   map[string]*metric // name + "\xff" + labels
	folds   []fold             // sharded counters folded in at scrape
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// Ensure returns r, or a fresh private registry when r is nil. Every
// instrumented package funnels its optional Metrics option through
// Ensure so instrument handles are always real and the hot paths never
// branch on "is metrics enabled".
func Ensure(r *Registry) *Registry {
	if r == nil {
		return New()
	}
	return r
}

// renderLabels turns a flat key,value,key,value list into the
// canonical `k="v",k="v"` body used both as part of the registry key
// and verbatim in the Prometheus encoding. Values are escaped per the
// text-format rules (backslash, double quote, newline).
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	var b []byte
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, kv[i]...)
		b = append(b, '=', '"')
		b = appendEscapedLabelValue(b, kv[i+1])
		b = append(b, '"')
	}
	return string(b)
}

// appendEscapedLabelValue escapes v per the Prometheus text format:
// backslash, double-quote, and newline must be backslash-escaped
// inside a label value.
func appendEscapedLabelValue(b []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return b
}

// lookup returns the existing entry for (name, labels) or registers a
// new one built by mk. It panics if the name+labels is already bound
// to a different instrument kind — that is a wiring bug, not a
// runtime condition.
func (r *Registry) lookup(name, help string, k kind, labels []string, mk func(*metric)) *metric {
	lbl := renderLabels(labels)
	key := name + "\xff" + lbl
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != k {
			panic("obs: " + name + " re-registered with a different kind")
		}
		return m
	}
	m := &metric{name: name, help: help, labels: lbl, kind: k}
	mk(m)
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or finds) a monotonically increasing counter.
// Label the variants of one logical metric by passing the same name
// with different key/value pairs: Counter("x_total", h, "reason", "a").
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	m := r.lookup(name, help, kindCounter, labels, func(m *metric) {
		m.counter = &Counter{}
	})
	return m.counter
}

// Gauge registers (or finds) an integer gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	m := r.lookup(name, help, kindGauge, labels, func(m *metric) {
		m.gauge = &Gauge{}
	})
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at encode
// time — for values some other subsystem already maintains (store
// generation, replication status). Re-registering the same name+labels
// replaces the callback, so a promoted follower can repoint the gauge
// at its new backend.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	m := r.lookup(name, help, kindGaugeFunc, labels, func(m *metric) {})
	r.mu.Lock()
	m.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram registers (or finds) a fixed-bucket latency histogram.
// A nil buckets slice selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []time.Duration, labels ...string) *Histogram {
	m := r.lookup(name, help, kindHistogram, labels, func(m *metric) {
		m.hist = newHistogram(buckets)
	})
	return m.hist
}

// snapshotMetrics returns the registered entries in registration
// order, grouped so that all entries sharing a metric name are
// adjacent (first-seen name order). Encoders rely on the grouping to
// emit one HELP/TYPE header per name.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Fold sharded counters into their encoding slot. The slot is only
	// ever written here, so a plain store is safe.
	for _, f := range r.folds {
		f.into.v.Store(f.from.Value())
	}
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	// Stable sort by first occurrence of the name keeps label variants
	// of one metric together without disturbing overall order.
	firstIdx := make(map[string]int, len(out))
	for i, m := range out {
		if _, ok := firstIdx[m.name]; !ok {
			firstIdx[m.name] = i
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return firstIdx[out[i].name] < firstIdx[out[j].name]
	})
	return out
}

// Counter is a monotonically increasing uint64. The padding keeps two
// counters registered back-to-back off the same cache line, which
// matters for the pairs the ingest path bumps on every report.
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 value.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// SetBool sets the gauge to 1 or 0 — the conventional encoding for
// connected/caught-up style status gauges.
func (g *Gauge) SetBool(b bool) {
	if b {
		g.v.Store(1)
	} else {
		g.v.Store(0)
	}
}

// nShards is the shard count of a ShardedCounter: enough to spread a
// many-core ingest fan-in, small enough that summing at scrape time is
// trivial.
const nShards = 16

// shardPad pads each shard to its own cache line.
type shardPad struct {
	v atomic.Uint64
	_ [56]byte
}

// ShardedCounter is a counter split across padded shards for hot paths
// where many goroutines bump the same metric concurrently (one shard
// per connection stream, say). Callers obtain a shard index once, off
// the hot path, via NextShard, and pass it to Inc.
type ShardedCounter struct {
	shards [nShards]shardPad
	rr     atomic.Uint32
}

// NextShard hands out shard indices round-robin; call it once per
// long-lived worker (connection, stream), not per operation.
func (c *ShardedCounter) NextShard() int {
	return int(c.rr.Add(1)-1) % nShards
}

// Inc adds 1 to the given shard.
func (c *ShardedCounter) Inc(shard int) { c.shards[shard&(nShards-1)].v.Add(1) }

// Add adds n to the given shard.
func (c *ShardedCounter) Add(shard int, n uint64) { c.shards[shard&(nShards-1)].v.Add(n) }

// Value sums the shards. The sum is not a point-in-time snapshot under
// concurrent writers, which is fine for a monotone counter.
func (c *ShardedCounter) Value() uint64 {
	var t uint64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// ShardedCounter registers (or finds) a sharded counter. It encodes
// exactly like a plain counter (the shards are summed at scrape time).
func (r *Registry) ShardedCounter(name, help string, labels ...string) *ShardedCounter {
	m := r.lookup(name, help, kindCounter, labels, func(m *metric) {
		m.counter = &Counter{}
	})
	// The plain Counter slot stays authoritative for encoding; a
	// sharded counter folds into it lazily at scrape via the fold list.
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.folds {
		if f.into == m.counter {
			return f.from
		}
	}
	sc := &ShardedCounter{}
	r.folds = append(r.folds, fold{from: sc, into: m.counter})
	return sc
}

// fold links a sharded counter to the plain counter slot that encodes
// it; scrape-time folding keeps the encoder oblivious to sharding.
type fold struct {
	from *ShardedCounter
	into *Counter
}

// DefBuckets is the default latency bucket layout: 50µs to 2.5s,
// roughly logarithmic — wide enough for both an NVMe fsync and a slow
// network fetch.
var DefBuckets = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
}

// maxBuckets bounds a histogram's bucket count so the per-instrument
// arrays stay fixed-size-ish and encode output stays readable.
const maxBuckets = 32

// Histogram is a fixed-bucket latency histogram. Bounds are nanosecond
// durations internally and encode as seconds (Prometheus convention).
// Observe is a linear scan over ≤ maxBuckets bounds plus three atomic
// adds — no allocation, no lock.
type Histogram struct {
	bounds []int64 // sorted upper bounds, ns
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // total observed ns
}

func newHistogram(buckets []time.Duration) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	if len(buckets) == 0 || len(buckets) > maxBuckets {
		panic("obs: histogram bucket count out of range")
	}
	h := &Histogram{
		bounds: make([]int64, len(buckets)),
		counts: make([]atomic.Uint64, len(buckets)),
	}
	for i, b := range buckets {
		h.bounds[i] = int64(b)
		if i > 0 && h.bounds[i] <= h.bounds[i-1] {
			panic("obs: histogram buckets must be strictly increasing")
		}
	}
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	for i, b := range h.bounds {
		if ns <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }
