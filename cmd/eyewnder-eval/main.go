// Command eyewnder-eval runs the live-validation analogue (Section 7.3)
// and the socio-economic bias analysis (Section 8):
//
//	eyewnder-eval -fig4      # evaluation tree + unknown resolution + precision
//	eyewnder-eval -table2    # logistic regression odds ratios
//	eyewnder-eval -fig5      # predicted targeting probability per level
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"eyewnder/internal/experiments"
)

func main() {
	var (
		fig4   = flag.Bool("fig4", false, "run the Figure 4 evaluation tree")
		table2 = flag.Bool("table2", false, "run the Table 2 regression")
		fig5   = flag.Bool("fig5", false, "print the Figure 5 predicted probabilities")
	)
	flag.Parse()

	switch {
	case *fig4:
		res, err := experiments.Fig4(experiments.DefaultFig4Config())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Figure 4: evaluation tree over %d ads (%d targeted / %d static)\n",
			res.TotalAds, res.TargetedAds, res.StaticAds)
		tb, nb, r := res.Tree.Targeted, res.Tree.NonTargeted, res.Rates
		fmt.Printf("classified targeted:      %5d\n", tb.N)
		fmt.Printf("  FP(CR)                  %5d  (%.2f%%)\n", tb.CR, r.FPCRPct)
		fmt.Printf("  TP(CB)                  %5d  (%.2f%%)\n", tb.CB, r.TPCBPct)
		fmt.Printf("  TP(F8)                  %5d  (%.2f%% of labeled)\n", tb.F8Agree, r.TPF8Pct)
		fmt.Printf("  FP(F8)                  %5d  (%.2f%% of labeled)\n", tb.F8Disagree, r.FPF8Pct)
		fmt.Printf("  UNKNOWN                 %5d  (%.2f%%)\n", tb.Unknown, r.UnknownTargetedPct)
		fmt.Printf("classified non-targeted:  %5d\n", nb.N)
		fmt.Printf("  TN(CR)                  %5d  (%.2f%%)\n", nb.CR, r.TNCRPct)
		fmt.Printf("  FN(CB)                  %5d  (%.2f%%)\n", nb.CB, r.FNCBPct)
		fmt.Printf("  TN(F8)                  %5d  (%.2f%% of labeled)\n", nb.F8Agree, r.TNF8Pct)
		fmt.Printf("  FN(F8)                  %5d  (%.2f%% of labeled)\n", nb.F8Disagree, r.FNF8Pct)
		fmt.Printf("  UNKNOWN                 %5d  (%.2f%%)\n", nb.Unknown, r.UnknownNonTargetedPct)
		fmt.Printf("unknown resolution (§7.3.3): likely-TP=%d likely-FP=%d; sampled %d non-targeted → TN=%d FN=%d\n",
			res.Resolution.LikelyTP, res.Resolution.LikelyFP,
			res.Resolution.SampledNonTargeted, res.Resolution.LikelyTN, res.Resolution.LikelyFN)
		fmt.Printf("precision (§7.3.4): likely-TP rate %.0f%% (paper: 78%%), likely-TN rate %.0f%% (paper: 87%%), high-confidence TN %.0f%% (paper: 27%%)\n",
			100*res.Summary.LikelyTPRate, 100*res.Summary.LikelyTNRate, 100*res.Summary.HighConfidenceTNRate)

	case *table2 || *fig5:
		res, err := experiments.Table2(experiments.DefaultTable2Config())
		if err != nil {
			log.Fatal(err)
		}
		if *table2 {
			fmt.Printf("Table 2: logistic regression over %d delivered ads (D ~ G + A + L)\n", res.Observations)
			fmt.Printf("%-18s %8s %8s %8s %10s %18s\n", "Variable", "OR", "SE", "Z-val", "P>|z|", "95% CI")
			for _, row := range res.Rows {
				fmt.Printf("%-18s %8.3f %8.3f %8.3f %10.2g %9.3f-%.3f\n",
					row.Name, row.OR, row.SE, row.Z, row.P, row.CILo, row.CIHi)
			}
			fmt.Printf("employment LRT: stat=%.3f df=%d p=%.3f (dropped, as in the paper)\n",
				res.EmploymentLRTStat, res.EmploymentLRTDF, res.EmploymentLRTP)
		}
		if *fig5 {
			fmt.Println("Figure 5: predicted targeting probability per level")
			factors := make([]string, 0, len(res.Fig5))
			for f := range res.Fig5 {
				factors = append(factors, f)
			}
			sort.Strings(factors)
			for _, f := range factors {
				fmt.Printf("  %s:\n", f)
				levels := make([]string, 0, len(res.Fig5[f]))
				for lv := range res.Fig5[f] {
					levels = append(levels, lv)
				}
				sort.Strings(levels)
				for _, lv := range levels {
					fmt.Printf("    %-14s %.3f\n", lv, res.Fig5[f][lv])
				}
			}
		}

	default:
		flag.Usage()
	}
}
