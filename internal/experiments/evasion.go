package experiments

import (
	"eyewnder/internal/adsim"
	"eyewnder/internal/detector"
)

// EvasionPoint quantifies the paper's closing argument (§7.3.4, "Evading
// detection of targeted ads"): an advertiser can evade count-based
// detection only by reducing how aggressively ads follow their targets —
// which is giving up targeting itself. Each point pairs the detector's
// miss rate with the advertiser's achieved delivery at one frequency cap.
type EvasionPoint struct {
	FrequencyCap int
	// EvasionPct is the share of targeted (user, ad) pairs the detector
	// missed — the advertiser's success at hiding.
	EvasionPct float64
	// ImpressionsPerTargetedPair is the advertiser's achieved delivery:
	// average impressions per reached (user, campaign) pair. Evasion is
	// only achieved by driving this toward 1 — i.e., barely advertising.
	ImpressionsPerTargetedPair float64
}

// EvasionStudy sweeps the frequency cap and reports both sides of the
// trade-off.
func EvasionStudy(base adsim.Config, caps []int) ([]EvasionPoint, error) {
	out := make([]EvasionPoint, 0, len(caps))
	for _, cap := range caps {
		cfg := base
		cfg.FrequencyCap = cap
		cfg.Seed = base.Seed + int64(cap)
		sim, err := adsim.New(cfg)
		if err != nil {
			return nil, err
		}
		res := sim.Run()
		conf := EvaluateWeek(sim, res, 0, detector.EstimatorMean, detector.EstimatorMean, 4)

		// Delivery achieved: impressions per reached targeted pair.
		impressions := 0
		pairs := map[[2]int]bool{}
		for _, imp := range res.Impressions {
			if sim.Campaign(imp.Campaign).Kind.IsTargeted() && imp.Week == 0 {
				impressions++
				pairs[[2]int{imp.User, imp.Campaign}] = true
			}
		}
		pt := EvasionPoint{FrequencyCap: cap, EvasionPct: 100 * conf.FNRate()}
		if len(pairs) > 0 {
			pt.ImpressionsPerTargetedPair = float64(impressions) / float64(len(pairs))
		}
		out = append(out, pt)
	}
	return out, nil
}
