//go:build amd64 && !purego

package vec

import "eyewnder/internal/vec/cpu"

// addAVX2 adds src into dst element-wise modulo 2⁶⁴, 16 words (four
// 256-bit lanes) per iteration with a scalar tail. Implemented in
// kernels_amd64.s; the wrapper layer guarantees len(dst) == len(src).
//
//go:noescape
func addAVX2(dst, src []uint64)

// subAVX2 subtracts src from dst element-wise modulo 2⁶⁴.
//
//go:noescape
func subAVX2(dst, src []uint64)

// pickKernels selects the AVX2 add/sub kernels when the CPU and OS
// support them (VPADDQ/VPSUBQ need AVX2 and OS-enabled YMM state).
func pickKernels() {
	if cpu.HasAVX2 {
		selAdd, selSub = addAVX2, subAVX2
		kernelName = "avx2"
	} else {
		activeNote = "no avx2"
	}
}
