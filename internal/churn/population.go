package churn

import "encoding/binary"

// population is the lifecycle state machine both the trace generator
// and the replay driver walk: per user, the registration generation
// (0 = never registered; re-registrations bump it, changing the user's
// synthetic key and therefore its pairwise factor stream) and the
// permanent-dropout flag.
type population struct {
	gen     []uint32
	dropped []bool
}

func newPopulation(users int) *population {
	return &population{gen: make([]uint32, users), dropped: make([]bool, users)}
}

// apply advances the state past one round's events. Drops are applied
// last so a round's events read against round-start state; the order
// among the three is immaterial because the event lists are disjoint.
func (p *population) apply(ev RoundEvents) {
	for _, u := range ev.Joins {
		p.gen[u] = 1
	}
	for _, u := range ev.Reregs {
		p.gen[u]++
	}
	for _, u := range ev.Drops {
		p.dropped[u] = true
	}
}

// activeInto appends the active users — registered and not dropped —
// to buf[:0] in ascending order: the round's peer graph. Dark users
// ARE active (their neighbors blind toward them); droppers and the
// never-registered are not in the graph, so nobody owes terms for
// them — they are simply missing.
func (p *population) activeInto(buf []int) []int {
	buf = buf[:0]
	for u := range p.gen {
		if p.gen[u] > 0 && !p.dropped[u] {
			buf = append(buf, u)
		}
	}
	return buf
}

// keyBytes derives user u's generation-gen synthetic blinding public
// key: 33 bytes (compressed-P-256-point sized), deterministic in
// (seed, u, gen) and distinct across generations, which is all the
// bulletin board needs — the harness's blinding is synthetic (see
// pairBase), so the keys are roster payload, not key-agreement input.
// Deriving real pairwise secrets by ECDH would cost O(n²) point
// multiplications across the roster, which is exactly what caps the
// real client at small n and what this harness must avoid to reach
// 10⁵–10⁶ simulated users.
func keyBytes(seed uint64, u int, gen uint32) []byte {
	b := make([]byte, 33)
	b[0] = 0x02
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(b[1+8*i:], mix(tagKey, seed, uint64(u), uint64(gen), uint64(i)))
	}
	return b
}

// adIDs returns the deduplicated ad IDs user u observes in the given
// round: AdsPerUser draws from (tagAds, seed, u, round) reduced into
// the ID space. Deterministic, so the oracle sees exactly the set the
// driver reports.
func adIDs(cfg Config, u int, round uint64) []uint64 {
	ids := make([]uint64, 0, cfg.AdsPerUser)
	for k := 0; k < cfg.AdsPerUser; k++ {
		id := mix(tagAds, cfg.Seed, uint64(u), round, uint64(k)) % cfg.IDSpace
		dup := false
		for _, prev := range ids {
			if prev == id {
				dup = true
				break
			}
		}
		if !dup {
			ids = append(ids, id)
		}
	}
	return ids
}

// The harness's blinding: additive shares of zero over a sparse ring.
//
// The real protocol blinds over the complete roster graph — every pair
// of users shares a factor stream derived from their ECDH secret, and
// cancellation (Σ over reporters of their blinding terms = 0 when all
// pairs are present) is what hides individual sketches. The algebra,
// though, holds for ANY graph on the reporters: each edge {i, j}
// contributes +f to one endpoint's report and −f to the other's, so
// summing both endpoints cancels the edge, and a missing endpoint
// leaves exactly the terms the survivor's adjustment share re-supplies
// for subtraction. The harness therefore uses a ring over the round's
// active users: two edges per user, O(cells) blinding work per report
// instead of O(n·cells), which is what makes 10⁵–10⁶ users tractable —
// while the server-side arithmetic being exercised (fold, share
// subtraction, finalize) is identical to the complete-graph case.

// cellGamma spreads the per-cell factor stream within a pair's base
// (an odd multiplier, so cell indexes map injectively mod 2⁶⁴).
const cellGamma = 0x517cc1b727220a95

// pairBase is edge {lo, hi}'s factor-stream base for a round. It
// depends on both endpoints' registration generations, mirroring the
// real protocol: a re-registration changes the keys and therefore the
// pairwise stream — both live endpoints observe the same post-rereg
// generations, so cancellation is unaffected.
func pairBase(seed, round uint64, lo, hi int, genLo, genHi uint32) uint64 {
	return mix(tagPair, seed, round, uint64(lo), uint64(hi), uint64(genLo), uint64(genHi))
}

// applyPairTerms folds edge factors into cells: added for the lower
// endpoint of the pair, subtracted (mod 2⁶⁴) for the higher one, so
// the two endpoints' contributions cancel exactly.
func applyPairTerms(cells []uint64, base uint64, add bool) {
	if add {
		for c := range cells {
			cells[c] += fin(base ^ (cellGamma * uint64(c+1)))
		}
		return
	}
	for c := range cells {
		cells[c] -= fin(base ^ (cellGamma * uint64(c+1)))
	}
}

// ringNeighbors returns active[i]'s neighbors on the ring over the
// active list: the two adjacent members, one when the ring has only
// two members, none when it is a singleton (nothing to blind against —
// a lone reporter's sketch goes up bare, exactly like a roster of
// one).
func ringNeighbors(active []int, i int) (a, b int, n int) {
	switch len(active) {
	case 1:
		return 0, 0, 0
	case 2:
		return active[1-i], 0, 1
	}
	prev := active[(i-1+len(active))%len(active)]
	next := active[(i+1)%len(active)]
	return prev, next, 2
}

// blindCells adds user u's blinding — its signed edge terms toward
// each ring neighbor — into cells. gens is the population's current
// generation vector.
func blindCells(cells []uint64, seed, round uint64, u int, neighbors []int, gens []uint32) {
	for _, v := range neighbors {
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		applyPairTerms(cells, pairBase(seed, round, lo, hi, gens[lo], gens[hi]), u == lo)
	}
}

// adjustShare writes user u's second-round share into cells (zeroing
// them first): the same signed terms u's report carried toward each
// ring neighbor that is missing this round. The server subtracts the
// share, cancelling exactly the orphaned terms. Reporters whose
// neighbors all reported still owe a share when the round has missing
// users (the server requires one from every reporter before a deadline
// close finalizes) — theirs is the zero vector.
func adjustShare(cells []uint64, seed, round uint64, u int, neighbors []int, gens []uint32, missing []bool) {
	for c := range cells {
		cells[c] = 0
	}
	for _, v := range neighbors {
		if !missing[v] {
			continue
		}
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		applyPairTerms(cells, pairBase(seed, round, lo, hi, gens[lo], gens[hi]), u == lo)
	}
}
