package backend

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"eyewnder/internal/blind"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/privacy"
	"eyewnder/internal/store"
	"eyewnder/internal/wire"
)

// storeTestParams is a small geometry so store tests stay fast.
func storeTestParams() privacy.Params {
	return privacy.Params{Epsilon: 0.02, Delta: 0.02, IDSpace: 2048, Suite: group.P256()}
}

// buildReports blinds one report per roster member for the given round.
func buildReports(t *testing.T, params privacy.Params, users int, round uint64) []*privacy.Report {
	t.Helper()
	reports, _ := buildReportsWithRoster(t, params, users, round)
	return reports
}

// buildReportsWithRoster is buildReports keeping the roster, so a test
// can later derive the same parties' adjustment shares.
func buildReportsWithRoster(t *testing.T, params privacy.Params, users int, round uint64) ([]*privacy.Report, *blind.Roster) {
	t.Helper()
	roster, err := blind.NewRosterKeystream(params.Suite, users, rand.Reader, params.Keystream)
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]*privacy.Report, users)
	for u := 0; u < users; u++ {
		cms, err := params.NewSketch()
		if err != nil {
			t.Fatal(err)
		}
		var key [8]byte
		for a := 0; a < 6; a++ {
			binary.LittleEndian.PutUint64(key[:], uint64((u*3+a)%int(params.IDSpace)))
			cms.Update(key[:])
		}
		cells := cms.FlatCells()
		if err := blind.ApplyBlinding(cells, roster.Parties[u].Blinding(round, len(cells))); err != nil {
			t.Fatal(err)
		}
		reports[u] = &privacy.Report{User: u, Round: round, Sketch: cms, Keystream: params.Keystream}
	}
	return reports, roster
}

// frameOf converts a report to its streamed wire form.
func frameOf(r *privacy.Report) *wire.ReportFrame {
	return &wire.ReportFrame{
		User: r.User, Round: r.Round,
		D: r.Sketch.Depth(), W: r.Sketch.Width(),
		N: r.Sketch.N(), Seed: r.Sketch.Seed(),
		Keystream:     byte(r.Keystream),
		ConfigVersion: r.ConfigVersion,
		Cells:         r.Sketch.FlatCells(),
	}
}

func newStoreBackend(t *testing.T, params privacy.Params, users int, st store.Store) *Backend {
	t.Helper()
	b, err := New(Config{Params: params, Users: users, UsersEstimator: detector.EstimatorMean, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// A backend with a disk store must recover mid-round state across a
// simulated crash (the first backend is abandoned without any graceful
// flush beyond what its acks already synced), finish the round after
// restart, and produce counts identical to an uninterrupted run.
func TestBackendRecoversMidRound(t *testing.T) {
	const users = 8
	params := storeTestParams()
	reports := buildReports(t, params, users, 1)

	// Control: uninterrupted in-memory run over the same reports.
	control := newStoreBackend(t, params, users, nil)
	for _, r := range reports {
		if err := control.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	controlTh, controlAds, err := control.CloseRound(1)
	if err != nil {
		t.Fatal(err)
	}
	controlCounts, err := control.UserCountsOfRound(1)
	if err != nil {
		t.Fatal(err)
	}

	// Crashing run: fold half the roster, then abandon the backend and
	// its store without closing either (the process-kill analogue — only
	// what acks made durable survives, which is everything consumed,
	// because ConsumeReport's ack barrier is SyncReports).
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b1 := newStoreBackend(t, params, users, st1)
	if _, err := b1.Register(3, []byte("pk3")); err != nil {
		t.Fatal(err)
	}
	for _, r := range reports[:4] {
		if err := b1.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b1.SyncReports(); err != nil { // the ack barrier the wire layer would run
		t.Fatal(err)
	}
	// No st1.Close(), no b1.Close() flushing: the crash.

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	b2 := newStoreBackend(t, params, users, st2)

	// The reported-bitmap must have survived…
	reported, missing, closed, err := b2.RoundStatus(1)
	if err != nil {
		t.Fatal(err)
	}
	if reported != 4 || closed {
		t.Fatalf("recovered status: reported=%d closed=%v", reported, closed)
	}
	if !reflect.DeepEqual(missing, []int{4, 5, 6, 7}) {
		t.Fatalf("recovered missing = %v", missing)
	}
	// …the roster too…
	if keys, _, _ := b2.Roster(); string(keys[3]) != "pk3" {
		t.Fatalf("roster entry lost: %q", keys[3])
	}
	// …and the duplicate invariant must hold across the restart.
	if err := b2.ConsumeReport(frameOf(reports[0])); !errors.Is(err, privacy.ErrDuplicate) {
		t.Fatalf("duplicate across restart = %v, want ErrDuplicate", err)
	}

	// Finish the round on the recovered backend.
	for _, r := range reports[4:] {
		if err := b2.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	th, ads, err := b2.CloseRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if ads != controlAds {
		t.Fatalf("distinct ads: recovered %d, control %d", ads, controlAds)
	}
	counts, err := b2.UserCountsOfRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(counts, controlCounts) {
		t.Fatal("recovered counts differ from uninterrupted run")
	}
	if diff := th - controlTh; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Users_th: recovered %v, control %v", th, controlTh)
	}
}

// A closed round must recover as closed — with its threshold and counts
// re-derived — and a mismatched-suite report must still bounce off the
// recovered round.
func TestBackendRecoversClosedRoundAndSuite(t *testing.T) {
	const users = 4
	params := storeTestParams()
	params.Keystream = blind.KeystreamAESCTR
	reports := buildReports(t, params, users, 9)

	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b1 := newStoreBackend(t, params, users, st1)
	for _, r := range reports {
		if err := b1.SubmitReport(r); err != nil {
			t.Fatal(err)
		}
	}
	th1, ads1, err := b1.CloseRound(9)
	if err != nil {
		t.Fatal(err)
	}
	counts1, err := b1.UserCountsOfRound(9)
	if err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	b2 := newStoreBackend(t, params, users, st2)
	th2, ads2, err := b2.CloseRound(9) // already closed: returns the recovered results
	if err != nil {
		t.Fatal(err)
	}
	counts2, err := b2.UserCountsOfRound(9)
	if err != nil {
		t.Fatal(err)
	}
	if ads1 != ads2 || !reflect.DeepEqual(counts1, counts2) {
		t.Fatal("closed round did not recover byte-identical counts")
	}
	if diff := th1 - th2; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Users_th across recovery: %v vs %v", th1, th2)
	}

	// A report blinded under the wrong suite must still be rejected by
	// the *recovered* state of an open round.
	hmacParams := storeTestParams() // suite 0x00
	wrong := buildReports(t, hmacParams, users, 10)[0]
	if err := b2.SubmitReport(wrong); !errors.Is(err, privacy.ErrKeystreamMismatch) {
		t.Fatalf("wrong-suite report after recovery = %v", err)
	}
}

// A backend restarted against a data dir written under a different
// geometry or suite must refuse to start, not corrupt rounds.
func TestBackendRefusesMismatchedDataDir(t *testing.T) {
	params := storeTestParams()
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b1 := newStoreBackend(t, params, 4, st1)
	if err := b1.SubmitReport(buildReports(t, params, 4, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Different geometry.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	bad := params
	bad.Epsilon, bad.Delta = 0.1, 0.1
	if _, err := New(Config{Params: bad, Users: 4, UsersEstimator: detector.EstimatorMean, Store: st2}); err == nil {
		t.Fatal("geometry mismatch accepted")
	}

	// Different roster size.
	st3, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if _, err := New(Config{Params: params, Users: 9, UsersEstimator: detector.EstimatorMean, Store: st3}); err == nil {
		t.Fatal("roster mismatch accepted")
	}

	// Different blinding suite.
	st4, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st4.Close()
	aes := params
	aes.Keystream = blind.KeystreamAESCTR
	if _, err := New(Config{Params: aes, Users: 4, UsersEstimator: detector.EstimatorMean, Store: st4}); err == nil {
		t.Fatal("suite mismatch accepted")
	}
}

// Sustained ingestion must cross the snapshot cadence and keep state
// correct through WAL compaction: after many reports trigger a
// snapshot, a recovery still sees every report exactly once.
func TestBackendSnapshotCompaction(t *testing.T) {
	const users = 16
	params := storeTestParams()
	reports := buildReports(t, params, users, 1)

	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	b1 := newStoreBackend(t, params, users, st1)
	for _, r := range reports {
		if err := b1.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b1.Close(); err != nil { // waits for the snapshot goroutine
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	b2 := newStoreBackend(t, params, users, st2)
	reported, _, _, err := b2.RoundStatus(1)
	if err != nil {
		t.Fatal(err)
	}
	if reported != users {
		t.Fatalf("recovered %d reports, want %d", reported, users)
	}
	if _, _, err := b2.CloseRound(1); err != nil {
		t.Fatal(err)
	}

	// The compacted state must equal the uninterrupted control.
	control := newStoreBackend(t, params, users, nil)
	for _, r := range reports {
		if err := control.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := control.CloseRound(1); err != nil {
		t.Fatal(err)
	}
	got, _ := b2.UserCountsOfRound(1)
	want, _ := control.UserCountsOfRound(1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("counts diverged across snapshot compaction")
	}
}
