//go:build !(amd64 || arm64 || 386 || arm || riscv64 || loong64 || mipsle || mips64le || ppc64le || wasm)

package sketch

import "encoding/binary"

// Portable fallback for big-endian (or unlisted) architectures: encode the
// cell block in one pass over pre-sliced 8-byte windows.

func putCellsLE(dst []byte, src []uint64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[8*i:], v)
	}
}

func getCellsLE(dst []uint64, src []byte) {
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(src[8*i:])
	}
}
