package stats

import (
	"errors"
	"math"
)

// SilvermanBandwidth returns the rule-of-thumb kernel bandwidth
// h = 0.9 * min(sd, IQR/1.34) * n^(-1/5) from Silverman (1986), the
// reference the paper cites ([51]) when discussing its minimum-data rule.
// If the spread degenerates to zero the function falls back to 1.0 so the
// estimate remains defined for constant samples.
func SilvermanBandwidth(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 1
	}
	sd := StdDev(xs)
	q1, _ := Quantile(xs, 0.25)
	q3, _ := Quantile(xs, 0.75)
	iqr := (q3 - q1) / 1.34
	spread := sd
	if iqr > 0 && (iqr < spread || spread == 0) {
		spread = iqr
	}
	if spread <= 0 {
		return 1
	}
	return 0.9 * spread * math.Pow(float64(n), -0.2)
}

// KDE is a one-dimensional Gaussian kernel density estimate. It backs the
// "Probability Density" curves of Figure 2 (#Users distribution, actual vs
// CMS-estimated).
type KDE struct {
	xs []float64
	h  float64
}

// NewKDE builds a Gaussian KDE over xs. If bandwidth <= 0 the Silverman
// rule-of-thumb bandwidth is used. The sample is copied.
func NewKDE(xs []float64, bandwidth float64) (*KDE, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if bandwidth <= 0 {
		bandwidth = SilvermanBandwidth(xs)
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	return &KDE{xs: cp, h: bandwidth}, nil
}

// Bandwidth reports the bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.h }

// PDF evaluates the density estimate at x.
func (k *KDE) PDF(x float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	var sum float64
	for _, xi := range k.xs {
		u := (x - xi) / k.h
		sum += math.Exp(-0.5*u*u) * invSqrt2Pi
	}
	return sum / (float64(len(k.xs)) * k.h)
}

// Curve evaluates the density at `points` evenly spaced positions across
// [lo, hi] and returns the positions and densities. It is the series a
// caller plots to regenerate Figure 2.
func (k *KDE) Curve(lo, hi float64, points int) (xs, ys []float64, err error) {
	if points < 2 {
		return nil, nil, errors.New("stats: KDE curve needs >= 2 points")
	}
	if hi <= lo {
		return nil, nil, errors.New("stats: KDE curve needs hi > lo")
	}
	xs = make([]float64, points)
	ys = make([]float64, points)
	step := (hi - lo) / float64(points-1)
	for i := 0; i < points; i++ {
		x := lo + float64(i)*step
		xs[i] = x
		ys[i] = k.PDF(x)
	}
	return xs, ys, nil
}

// Histogram is a fixed-width bin count over a closed interval.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram builds a histogram of xs with `bins` equal-width bins over
// [lo, hi]. Values outside the range are clamped into the edge bins, which
// matches how the paper buckets #Users counts for plotting.
func NewHistogram(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, errors.New("stats: histogram needs >= 1 bin")
	}
	if hi <= lo {
		return nil, errors.New("stats: histogram needs hi > lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.total++
	}
	return h, nil
}

// Density returns the normalized bin densities (integrating to 1 over the
// histogram support) — the discrete analogue of the Figure 2 y-axis.
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	norm := 1 / (float64(h.total) * width)
	for i, c := range h.Counts {
		out[i] = float64(c) * norm
	}
	return out
}

// Total reports how many observations the histogram absorbed.
func (h *Histogram) Total() int { return h.total }
