package main

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"eyewnder/internal/backend"
	"eyewnder/internal/blind"
	"eyewnder/internal/campaign"
	"eyewnder/internal/client"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/obs"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
	"eyewnder/internal/store"
	"eyewnder/internal/vec"
	"eyewnder/internal/wire"
)

// The load harness: one process submitting an entire user population's
// blinded reports over a single shared connection, the way a real load
// generator (or an aggregation proxy) would. It exercises the batched
// streaming path end to end — wire.OpenReportStream with a window of
// frames in flight, adaptive server-side ack batching, per-connection
// decode/fold pipelining — instead of the one-shot submits the
// simulator's other modes use, and optionally runs the back-end on a
// durable round store so every report also pays its group-committed
// WAL append.
type loadConfig struct {
	users     int
	rounds    int
	window    int
	adsEach   int
	campaigns int
	dataDir   string
	scrape    string
}

// loadSummary is the machine-readable result the harness prints as its
// final stdout line (single-line JSON): the reproducible form of the
// end-to-end ingest bench row. ReportsPerMin covers the timed streaming
// sections only (submit through flush — the sustained-ingest number the
// ROADMAP targets at ≥1M/min on a many-core host); ack latencies are
// measured per sequence slot from submit to the covering batched ack.
type loadSummary struct {
	Schema        string  `json:"schema"`
	Users         int     `json:"users"`
	Rounds        int     `json:"rounds"`
	Reports       int     `json:"reports"`
	Campaigns     int     `json:"campaigns,omitempty"`
	Cells         int     `json:"cells"`
	Window        int     `json:"window"`
	Durable       bool    `json:"durable"`
	VecKernel     string  `json:"vec_kernel"`
	MaxProcs      int     `json:"maxprocs"`
	IngestSeconds float64 `json:"ingest_seconds"`
	ReportsPerSec float64 `json:"reports_per_sec"`
	ReportsPerMin float64 `json:"reports_per_min"`
	P50AckMs      float64 `json:"p50_ack_ms"`
	P99AckMs      float64 `json:"p99_ack_ms"`
	// Metrics holds the run's /metrics counter deltas when -scrape was
	// set: every _total/_count/_sum sample that advanced during the
	// run, keyed by its rendered Prometheus name. CI cross-checks
	// eyewnder_reports_accepted_total against Reports.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// metricsDelta folds a run's counter movement for the summary line:
// every counter or histogram sample (_total, _count, _sum) that
// advanced between the two snapshots. Gauges are skipped — they
// describe state, not work done by the run.
func metricsDelta(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range after {
		base := strings.SplitN(k, "{", 2)[0]
		if !strings.HasSuffix(base, "_total") &&
			!strings.HasSuffix(base, "_count") &&
			!strings.HasSuffix(base, "_sum") {
			continue
		}
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// ackTracker pairs submit timestamps with the stream's cumulative ack
// counter to produce per-slot ack latencies. Flush markers occupy
// sequence slots too; they carry a zero timestamp and are skipped.
type ackTracker struct {
	submitted []time.Time // index = sequence slot - 1
	observed  uint64      // acks attributed so far
	latencies []time.Duration
	hist      *obs.Histogram // optional: -scrape mirrors latencies here
}

func (a *ackTracker) submit(t time.Time) { a.submitted = append(a.submitted, t) }

func (a *ackTracker) onAck(acked uint64) {
	now := time.Now()
	for ; a.observed < acked && a.observed < uint64(len(a.submitted)); a.observed++ {
		if t := a.submitted[a.observed]; !t.IsZero() {
			a.latencies = append(a.latencies, now.Sub(t))
			if a.hist != nil {
				a.hist.Observe(now.Sub(t))
			}
		}
	}
}

// percentileMs returns the p-th percentile (0 < p <= 100) of the
// collected ack latencies in milliseconds, 0 when none were observed.
func (a *ackTracker) percentileMs(p float64) float64 {
	if len(a.latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), a.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// runLoad spins an in-process back-end, blinds one report per roster
// member per round, streams them all over one batched connection, and
// closes each round, printing per-round throughput.
func runLoad(cfg loadConfig) error {
	params := privacy.Params{Epsilon: 0.01, Delta: 0.01, IDSpace: 100000, Suite: group.P256()}
	// With -scrape the harness owns a registry, serves it over the admin
	// endpoint for the duration of the run (CI samples it mid-load), and
	// folds the counter deltas into the summary line at the end.
	var reg *obs.Registry
	if cfg.scrape != "" {
		reg = obs.New()
	}
	var st store.Store
	if cfg.dataDir != "" {
		disk, err := store.Open(cfg.dataDir, store.Options{Metrics: reg})
		if err != nil {
			return err
		}
		defer disk.Close()
		st = disk
	}
	be, err := backend.New(backend.Config{
		Params:         params,
		Users:          cfg.users,
		UsersEstimator: detector.EstimatorMean,
		Store:          st,
		Metrics:        reg,
	})
	if err != nil {
		return err
	}
	defer be.Close()
	// With -load-campaigns N the harness provisions N campaigns with
	// deliberately distinct geometries and ID spaces (cycling ε over
	// four widths), then multiplexes every campaign's population over
	// the same single batched stream — the multi-tenant deployment
	// shape, where one connection carries frames for many concurrent
	// campaigns and the server demultiplexes by the preamble tag.
	for i := 1; i <= cfg.campaigns; i++ {
		if err := be.AddCampaign(campaign.Campaign{
			ID:      uint32(i),
			Name:    fmt.Sprintf("load-%d", i),
			Epsilon: 0.01 * float64(1+(i-1)%4),
			Delta:   0.01,
			IDSpace: uint64(50000 + 10000*i),
		}); err != nil {
			return fmt.Errorf("provisioning campaign %d: %w", i, err)
		}
	}
	srv, err := be.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()

	var before map[string]float64
	var ackHist *obs.Histogram
	if reg != nil {
		admin, err := obs.ServeAdmin(cfg.scrape, obs.AdminOptions{
			Registry: reg,
			Status:   func() any { return be.RoundsProgress() },
		})
		if err != nil {
			return fmt.Errorf("-scrape listen: %w", err)
		}
		defer admin.Close()
		fmt.Printf("load: admin endpoint on %s\n", admin.Addr())
		ackHist = reg.Histogram("eyewnder_sim_ack_seconds",
			"Client-observed submit-to-ack latency per streamed report.", nil)
		before = reg.Snapshot()
	}

	cli, err := wire.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer cli.Close()

	// Adopt whatever the server's Welcome advertises — geometry, suite,
	// and config version — rather than mirroring the params above: the
	// harness then exercises the exact deployment path, and its frames
	// carry the version the aggregator checks.
	cf, err := cli.Handshake()
	if err != nil {
		return fmt.Errorf("config handshake: %w", err)
	}
	rcfg, err := client.RoundConfigFromFrame(cf)
	if err != nil {
		return err
	}
	params = rcfg.Params

	// The campaign set the run drives: the implicit campaign 0 plus
	// whatever the server's directory advertises — fetched over the
	// wire, not assumed, so the harness exercises the directory
	// exchange too.
	type loadCampaign struct {
		id     uint32
		params privacy.Params
		cells  int
	}
	camps := []loadCampaign{{id: 0, params: params}}
	if cfg.campaigns > 0 {
		dir, err := cli.CampaignDirectory()
		if err != nil {
			return fmt.Errorf("campaign directory: %w", err)
		}
		if len(dir) != cfg.campaigns {
			return fmt.Errorf("directory advertises %d campaigns, provisioned %d", len(dir), cfg.campaigns)
		}
		for _, c := range dir {
			camps = append(camps, loadCampaign{id: c.ID, params: c.Params(params)})
		}
	}
	for i := range camps {
		cd, cw, err := sketch.Dimensions(camps[i].params.Epsilon, camps[i].params.Delta)
		if err != nil {
			return err
		}
		camps[i].cells = cd * cw
	}

	roster, err := blind.NewRosterKeystream(params.Suite, cfg.users, rand.Reader, params.Keystream)
	if err != nil {
		return err
	}

	d, w, err := sketch.Dimensions(params.Epsilon, params.Delta)
	if err != nil {
		return err
	}
	fmt.Printf("load: %d users × %d rounds × %d campaigns over one batched stream (config v%d, window %d, %d ads/user, %d-cell base sketches%s)\n",
		cfg.users, cfg.rounds, len(camps), rcfg.Version, cfg.window, cfg.adsEach, d*w, durabilityNote(cfg.dataDir))

	// Sequence slots are cumulative per connection, so one tracker spans
	// every round's stream on cli.
	track := &ackTracker{submitted: make([]time.Time, 0, (cfg.users*len(camps)+1)*cfg.rounds), hist: ackHist}
	var ingest time.Duration

	for round := uint64(1); round <= uint64(cfg.rounds); round++ {
		// Blind the whole population's reports for this round first, so
		// the timed section measures the wire+fold path, not the client
		// crypto. Campaign c's frames blind under the campaign-derived
		// pairwise keys (ForCampaign), so concurrent campaigns carry
		// independent pads.
		frames := make([]*wire.ReportFrame, 0, cfg.users*len(camps))
		var roundBytes int
		for _, lc := range camps {
			for u := 0; u < cfg.users; u++ {
				cms, err := lc.params.NewSketch()
				if err != nil {
					return err
				}
				var key [8]byte
				for a := 0; a < cfg.adsEach; a++ {
					binary.LittleEndian.PutUint64(key[:], uint64((u*131+a*17)%int(lc.params.IDSpace)))
					cms.Update(key[:])
				}
				cells := cms.FlatCells()
				party := roster.Parties[u].ForCampaignKeystream(lc.id, lc.params.Keystream)
				if err := blind.ApplyBlinding(cells, party.Blinding(round, len(cells))); err != nil {
					return err
				}
				roundBytes += 8 * len(cells)
				frames = append(frames, &wire.ReportFrame{
					User: u, Campaign: lc.id, Round: round,
					D: cms.Depth(), W: cms.Width(), N: cms.N(), Seed: cms.Seed(),
					Keystream:     byte(lc.params.Keystream),
					ConfigVersion: rcfg.Version,
					Cells:         cells,
				})
			}
		}

		rs, err := cli.OpenReportStream(cfg.window)
		if err != nil {
			return err
		}
		rs.OnAck = track.onAck
		start := time.Now()
		for _, f := range frames {
			track.submit(time.Now())
			if err := rs.Submit(f); err != nil {
				return fmt.Errorf("round %d user %d: %w", round, f.User, err)
			}
		}
		// Close consumes one more slot for its flush marker; a zero
		// timestamp excludes it from the latency sample.
		track.submit(time.Time{})
		if err := rs.Close(); err != nil {
			return err
		}
		elapsed := time.Since(start)
		ingest += elapsed

		for _, lc := range camps {
			var resp wire.CloseRoundResp
			if err := cli.Do(wire.TypeCloseRound, wire.CloseRoundReq{Campaign: lc.id, Round: round}, &resp); err != nil {
				return fmt.Errorf("close campaign %d round %d: %w", lc.id, round, err)
			}
			if len(camps) > 1 {
				fmt.Printf("  round %d campaign %d: Users_th=%.2f distinct ads=%d\n",
					round, lc.id, resp.UsersTh, resp.DistinctAds)
			} else {
				mb := float64(roundBytes) / (1 << 20)
				fmt.Printf("  round %d: %d reports in %v  (%.0f reports/s, %.1f MB/s)  Users_th=%.2f distinct ads=%d\n",
					round, len(frames), elapsed.Round(time.Millisecond),
					float64(len(frames))/elapsed.Seconds(), mb/elapsed.Seconds(),
					resp.UsersTh, resp.DistinctAds)
			}
		}
		if len(camps) > 1 {
			mb := float64(roundBytes) / (1 << 20)
			fmt.Printf("  round %d: %d reports across %d campaigns in %v  (%.0f reports/s, %.1f MB/s)\n",
				round, len(frames), len(camps), elapsed.Round(time.Millisecond),
				float64(len(frames))/elapsed.Seconds(), mb/elapsed.Seconds())
		}
	}

	reports := cfg.users * cfg.rounds * len(camps)
	sum := loadSummary{
		Schema:        "eyewnder-load/v1",
		Users:         cfg.users,
		Rounds:        cfg.rounds,
		Reports:       reports,
		Campaigns:     cfg.campaigns,
		Cells:         d * w,
		Window:        cfg.window,
		Durable:       cfg.dataDir != "",
		VecKernel:     vec.Active(),
		MaxProcs:      runtime.GOMAXPROCS(0),
		IngestSeconds: ingest.Seconds(),
		ReportsPerSec: float64(reports) / ingest.Seconds(),
		ReportsPerMin: float64(reports) / ingest.Seconds() * 60,
		P50AckMs:      track.percentileMs(50),
		P99AckMs:      track.percentileMs(99),
	}
	if reg != nil {
		sum.Metrics = metricsDelta(before, reg.Snapshot())
	}
	// The final stdout line is the machine-readable summary; CI greps it
	// out and feeds it to jq.
	line, err := json.Marshal(sum)
	if err != nil {
		return err
	}
	os.Stdout.Write(append(line, '\n'))
	return nil
}

func durabilityNote(dataDir string) string {
	if dataDir == "" {
		return ""
	}
	return ", durable WAL in " + dataDir
}
