package store

import (
	"time"

	"eyewnder/internal/obs"
)

// storeMetrics holds the store's pre-registered instrument handles.
// Handles are always real (obs.Ensure), so the append and sync paths
// update them unconditionally — no "is metrics on" branch anywhere.
type storeMetrics struct {
	walAppends  *obs.Counter
	walBytes    *obs.Counter
	fsyncs      *obs.Counter
	fsyncLat    *obs.Histogram
	snapshotLat *obs.Histogram
	segsSealed  *obs.Counter
	segsPruned  *obs.Counter
	snapshots   *obs.Counter
}

// newStoreMetrics registers the store instruments in reg (or a
// private registry when reg is nil).
func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	reg = obs.Ensure(reg)
	return &storeMetrics{
		walAppends: reg.Counter("eyewnder_store_wal_appends_total",
			"WAL records appended (reports, opens, adjusts, closes, registrations, config bumps)."),
		walBytes: reg.Counter("eyewnder_store_wal_bytes_total",
			"Bytes of framed WAL records appended (header and checksum included)."),
		fsyncs: reg.Counter("eyewnder_store_fsyncs_total",
			"Group-commit fsyncs led (piggybacked Sync callers do not count)."),
		fsyncLat: reg.Histogram("eyewnder_store_fsync_seconds",
			"Latency of the group-commit leader's fsync.", nil),
		snapshotLat: reg.Histogram("eyewnder_store_snapshot_seconds",
			"End-to-end duration of a snapshot cycle (rotate, capture, publish, prune).", nil),
		segsSealed: reg.Counter("eyewnder_store_segments_sealed_total",
			"WAL segments sealed by rotation."),
		segsPruned: reg.Counter("eyewnder_store_segments_pruned_total",
			"Sealed WAL segments removed by snapshot pruning."),
		snapshots: reg.Counter("eyewnder_store_snapshots_total",
			"Snapshots published."),
	}
}

// observeSince records now-start into h; split out so call sites stay
// one line.
func observeSince(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start))
}

// String names the fsync policy — the form /statusz reports.
func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "batch"
	}
}
