package backend

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/obs"
	"eyewnder/internal/privacy"
	"eyewnder/internal/wire"
)

// rawFrames builds unblinded streamed frames for distinct users — the
// metrics tests exercise admission and accounting, not cancellation.
func rawFrames(t testing.TB, params privacy.Params, users int, round uint64) []*wire.ReportFrame {
	t.Helper()
	frames := make([]*wire.ReportFrame, users)
	for u := 0; u < users; u++ {
		cms, err := params.NewSketch()
		if err != nil {
			t.Fatal(err)
		}
		var key [8]byte
		binary.LittleEndian.PutUint64(key[:], uint64(u))
		cms.Update(key[:])
		frames[u] = &wire.ReportFrame{
			User: u, Round: round,
			D: cms.Depth(), W: cms.Width(), N: cms.N(), Seed: cms.Seed(),
			Keystream: byte(params.Keystream),
			Cells:     cms.FlatCells(),
		}
	}
	return frames
}

// The instrumented streamed-report path must still be allocation-free:
// metrics are pre-registered atomic handles, so accepting a report adds
// nothing to the reserve → log → fold path's zero allocs.
func TestConsumeReportZeroAllocs(t *testing.T) {
	const runs = 512
	users := runs + 64
	params := privacy.Params{Epsilon: 0.05, Delta: 0.05, IDSpace: 2000, Suite: group.P256()}
	b, err := New(Config{
		Params: params, Users: users,
		UsersEstimator: detector.EstimatorMean,
		Metrics:        obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	frames := rawFrames(t, params, users, 1)
	// Open the round outside the measured loop: creation appends an
	// open record and allocates the aggregate, once per round ever.
	if err := b.ConsumeReport(frames[users-1]); err != nil {
		t.Fatal(err)
	}
	next := 0
	allocs := testing.AllocsPerRun(runs, func() {
		if err := b.ConsumeReport(frames[next]); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if allocs != 0 {
		t.Fatalf("instrumented ConsumeReport allocates %v times per report, want 0", allocs)
	}
}

// RoundsProgress (the /statusz enumeration) must agree with
// RoundProgressOf at every point mid-round, and must never create
// rounds the way RoundProgressOf's getRound does.
func TestRoundsProgressConsistency(t *testing.T) {
	const users = 6
	params := testParams()
	b, err := New(Config{Params: params, Users: users, UsersEstimator: detector.EstimatorMean})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if got := b.RoundsProgress(); len(got) != 0 {
		t.Fatalf("fresh backend RoundsProgress = %v, want empty", got)
	}
	b.mu.Lock()
	n := len(b.rounds)
	b.mu.Unlock()
	if n != 0 {
		t.Fatalf("RoundsProgress created %d rounds on an empty backend", n)
	}

	frames := rawFrames(t, params, users, 7)
	for i, f := range frames {
		if err := b.ConsumeReport(f); err != nil {
			t.Fatal(err)
		}
		snaps := b.RoundsProgress()
		if len(snaps) != 1 || snaps[0].Round != 7 {
			t.Fatalf("after %d reports: snapshots = %+v", i+1, snaps)
		}
		p, err := b.RoundProgressOf(7)
		if err != nil {
			t.Fatal(err)
		}
		s := snaps[0]
		if s.Reported != p.Reported || s.Missing != len(p.Missing) ||
			s.Adjusted != p.Adjusted || s.Sealed != p.Sealed || s.Closed != p.Closed {
			t.Fatalf("after %d reports: snapshot %+v != progress %+v", i+1, s, p)
		}
		if s.Reported+s.Missing != users {
			t.Fatalf("torn snapshot: reported %d + missing %d != %d", s.Reported, s.Missing, users)
		}
	}

	// Concurrent status polls against concurrent submissions into a
	// second round must always observe internally consistent snapshots
	// (run under -race this also proves the locking).
	frames2 := rawFrames(t, params, users, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range b.RoundsProgress() {
				if s.Reported+s.Missing != users {
					t.Errorf("torn snapshot: %+v", s)
					return
				}
			}
		}
	}()
	for _, f := range frames2 {
		if err := b.ConsumeReport(f); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if _, _, err := b.CloseRound(7); err != nil {
		t.Fatal(err)
	}
	snaps := b.RoundsProgress()
	if len(snaps) != 2 || !snaps[0].Closed || snaps[0].Round != 7 || snaps[1].Round != 8 {
		t.Fatalf("after close: snapshots = %+v", snaps)
	}
}

// The accept/reject and round-lifecycle counters must account for
// exactly what the back-end did, with rejections classified by reason.
func TestBackendMetricsAccounting(t *testing.T) {
	const users = 4
	reg := obs.New()
	params := testParams()
	b, err := New(Config{
		Params: params, Users: users,
		UsersEstimator: detector.EstimatorMean,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	frames := rawFrames(t, params, users, 1)
	for _, f := range frames {
		if err := b.ConsumeReport(f); err != nil {
			t.Fatal(err)
		}
	}
	// One duplicate, one from a stale config version.
	if err := b.ConsumeReport(frames[0]); !errors.Is(err, privacy.ErrDuplicate) {
		t.Fatalf("duplicate err = %v", err)
	}
	stale := *frames[1]
	stale.ConfigVersion = 99
	if err := b.ConsumeReport(&stale); !errors.Is(err, privacy.ErrIncompatibleConfig) {
		t.Fatalf("stale err = %v", err)
	}
	if _, _, err := b.CloseRound(1); err != nil {
		t.Fatal(err)
	}
	if err := b.ConsumeReport(frames[2]); !errors.Is(err, ErrRoundClosed) {
		t.Fatalf("closed err = %v", err)
	}

	snap := reg.Snapshot()
	want := map[string]float64{
		"eyewnder_reports_accepted_total":                         users,
		`eyewnder_reports_rejected_total{reason="duplicate"}`:     1,
		`eyewnder_reports_rejected_total{reason="stale_version"}`: 1,
		`eyewnder_reports_rejected_total{reason="round_closed"}`:  1,
		"eyewnder_rounds_opened_total":                            1,
		"eyewnder_rounds_closed_total":                            1,
		"eyewnder_rounds_sealed_total":                            0,
		"eyewnder_adjust_shares_total":                            0,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("%s = %v, want %v", k, snap[k], v)
		}
	}
}
