// Command eyewnder-server runs the two server-side components of the
// eyeWnder deployment: the back-end (bulletin board, blinded-report
// aggregation, threshold publication, audits) and the oprf-server (which
// holds the ad-ID mapping key the back-end must never see).
//
// Usage:
//
//	eyewnder-server -backend 127.0.0.1:7001 -oprf 127.0.0.1:7002 -users 100
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"eyewnder/internal/backend"
	"eyewnder/internal/blind"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/oprf"
	"eyewnder/internal/privacy"
)

func main() {
	var (
		backendAddr = flag.String("backend", "127.0.0.1:7001", "back-end listen address")
		oprfAddr    = flag.String("oprf", "127.0.0.1:7002", "oprf-server listen address")
		users       = flag.Int("users", 100, "roster size (number of enrolled users)")
		rsaBits     = flag.Int("rsa-bits", 2048, "oprf RSA modulus size")
		epsilon     = flag.Float64("epsilon", 0.01, "CMS epsilon")
		delta       = flag.Float64("delta", 0.01, "CMS delta")
		idSpace     = flag.Uint64("id-space", 100000, "ad-ID space size |A| (overestimate)")
		stripes     = flag.Int("merge-stripes", 0, "intra-round merge stripes (0 = 2×GOMAXPROCS, 1 = single merge lock)")
		ackBatch    = flag.Int("ack-batch", 0, "streamed-report ack batch k for batched-ack connections (0 = wire default, 1 = ack every frame)")
		keystream   = flag.String("keystream", "hmac-sha256", "blinding keystream suite accepted from clients: hmac-sha256 or aes-ctr (must match the clients)")
	)
	flag.Parse()

	ks, err := blind.KeystreamByName(*keystream)
	if err != nil {
		log.Fatalf("keystream: %v", err)
	}
	osrv, err := oprf.NewServer(*rsaBits)
	if err != nil {
		log.Fatalf("oprf key generation: %v", err)
	}
	params := privacy.Params{Epsilon: *epsilon, Delta: *delta, IDSpace: *idSpace, Suite: group.P256(), Keystream: ks}
	be, err := backend.New(backend.Config{
		Params:         params,
		Users:          *users,
		UsersEstimator: detector.EstimatorMean,
		MergeStripes:   *stripes,
		AckBatch:       *ackBatch,
	})
	if err != nil {
		log.Fatalf("back-end: %v", err)
	}
	beSrv, err := be.Serve(*backendAddr)
	if err != nil {
		log.Fatalf("back-end listen: %v", err)
	}
	defer beSrv.Close()
	opSrv, err := backend.ServeOPRF(*oprfAddr, osrv)
	if err != nil {
		log.Fatalf("oprf listen: %v", err)
	}
	defer opSrv.Close()

	log.Printf("back-end on %s (roster %d users, ε=%g δ=%g |A|=%d, streamed reports on, merge stripes=%d, ack batch=%d, keystream=%s)",
		beSrv.Addr(), *users, *epsilon, *delta, *idSpace, be.MergeStripes(), *ackBatch, ks)
	log.Printf("oprf-server on %s (RSA-%d)", opSrv.Addr(), *rsaBits)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
}
