// Package churn is the deterministic population-lifecycle harness: a
// seeded trace generator emits a whole deployment's worth of churn —
// arrivals, permanent dropouts, clients going dark mid-round (the event
// that forces the adjustment round), re-registrations that bump the
// roster/config versions, connection loss mid-stream — and a driver
// replays the trace against a real back-end server, asserting after
// every round that the finalized per-ad counts byte-match an oracle
// computed from the trace alone. Everything derives from one uint64
// seed through the package's own splitmix64 streams, so two runs with
// the same seed produce identical traces, identical wire traffic, and
// identical finalized counts — the property CI pins.
package churn

import (
	"time"

	"eyewnder/internal/obs"
)

// Config parameterizes a churn run. The zero value of any field picks
// the default noted on it (withDefaults), except Users and Seed, which
// callers always set.
type Config struct {
	// Users is the roster size the back-end is provisioned for. Not all
	// of them ever register: the population grows into the roster over
	// the trace (InitialActive, then PArrive per round).
	Users int `json:"users"`
	// Rounds is the number of reporting rounds to replay (default 4).
	Rounds int `json:"rounds"`
	// Seed is the master seed every derived stream hangs off.
	Seed uint64 `json:"seed"`

	// AdsPerUser is how many ad observations each reporter draws per
	// round, before deduplication (default 3).
	AdsPerUser int `json:"ads_per_user"`
	// IDSpace is the ad-ID space (default 20000 — small enough that the
	// per-round oracle walk stays cheap at e2e scale).
	IDSpace uint64 `json:"id_space"`
	// Epsilon and Delta size the CMS (default 0.05 each: d=3, w=55 —
	// 165 cells, ~1.3 KB per report, so 10⁵–10⁶ simulated users fit in
	// one process).
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	// Campaign, when nonzero, scopes the whole replay to one counting
	// campaign: the harness provisions it (with the trace's own
	// geometry) on the back-end and tags every report, share, status
	// poll, close, and counts fetch with it — so the oracle comparison
	// exercises the (campaign, round) keyed paths end to end. Zero
	// replays into the implicit legacy campaign, byte-identical to the
	// pre-campaign harness.
	Campaign uint32 `json:"campaign,omitempty"`

	// InitialActive is the fraction of the roster that registers before
	// round 1 (default 0.8).
	InitialActive float64 `json:"initial_active"`
	// PArrive is the per-round probability that a never-registered user
	// joins (default 0.05).
	PArrive float64 `json:"p_arrive"`
	// PRereg is the per-round probability that an active user
	// re-registers with a fresh key, bumping the deployment's
	// roster/config versions (default 0.02).
	PRereg float64 `json:"p_rereg"`
	// PDrop is the per-round probability that an active user drops out
	// permanently — it stops reporting forever but its roster slot
	// remains, so it sits in every later round's missing set (default
	// 0.03).
	PDrop float64 `json:"p_drop"`
	// PDark is the per-round probability that an active user goes dark
	// for just this round: it neither reports nor uploads an adjustment
	// share, but its peers' blinding already includes terms toward it —
	// exactly the event that forces the adjustment round (default 0.12,
	// comfortably past the ≥10% the acceptance bar asks for).
	PDark float64 `json:"p_dark"`
	// PReconnect is the per-round probability that the report stream is
	// torn down mid-round and re-established — redial, re-handshake,
	// re-pin the negotiated config version (default 0.5).
	PReconnect float64 `json:"p_reconnect"`

	// Window is the streamed-frame in-flight window (default 256).
	Window int `json:"window"`
	// AdjustWait is the deadline-close budget: how long the server waits
	// for outstanding adjustment shares before giving up on a close
	// attempt (default 10s; the harness uploads all shares before
	// closing, so the wait only bites when something is actually wrong).
	AdjustWait time.Duration `json:"adjust_wait_ns"`
	// DataDir, when set, runs the back-end on a durable round store so
	// every replayed event also pays its WAL append.
	DataDir string `json:"data_dir,omitempty"`
	// ArtifactDir, when set, receives trace.json and a per-round oracle
	// diff on the first mismatch — the debugging artifact CI uploads.
	ArtifactDir string `json:"-"`
	// Metrics, when set, is the observability registry the replayed
	// back-end and store register their instruments in (the harness's
	// -scrape option). Not part of the trace.
	Metrics *obs.Registry `json:"-"`
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.Rounds == 0 {
		c.Rounds = 4
	}
	if c.AdsPerUser == 0 {
		c.AdsPerUser = 3
	}
	if c.IDSpace == 0 {
		c.IDSpace = 20000
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	if c.Delta == 0 {
		c.Delta = 0.05
	}
	if c.InitialActive == 0 {
		c.InitialActive = 0.8
	}
	if c.PArrive == 0 {
		c.PArrive = 0.05
	}
	if c.PRereg == 0 {
		c.PRereg = 0.02
	}
	if c.PDrop == 0 {
		c.PDrop = 0.03
	}
	if c.PDark == 0 {
		c.PDark = 0.12
	}
	if c.PReconnect == 0 {
		c.PReconnect = 0.5
	}
	if c.Window == 0 {
		c.Window = 256
	}
	if c.AdjustWait == 0 {
		c.AdjustWait = 10 * time.Second
	}
	return c
}

// RoundEvents is one round's worth of population lifecycle, all user
// lists sorted ascending. Events are disjoint: a user appears in at
// most one of Joins/Reregs/Drops, and in Darks only if it is active
// this round (a new joiner may go dark immediately; a dropper cannot).
type RoundEvents struct {
	Round uint64 `json:"round"`
	// Joins register for the first time, at generation 1.
	Joins []int `json:"joins,omitempty"`
	// Reregs re-register with a fresh key (generation bump) — the
	// server answers with a roster/config version bump, and this
	// round's reports must carry the new version.
	Reregs []int `json:"reregs,omitempty"`
	// Drops leave permanently before reporting: out of the peer graph
	// from this round on, in the server's missing set forever after.
	Drops []int `json:"drops,omitempty"`
	// Darks stay active but vanish for this round only: still in the
	// peer graph (their neighbors blind toward them), absent from the
	// report and adjustment phases — the users the adjustment round
	// exists for.
	Darks []int `json:"darks,omitempty"`
	// Reconnect tears the report stream down halfway through this
	// round's submissions and re-establishes it (redial, re-handshake).
	Reconnect bool `json:"reconnect,omitempty"`
}

// Trace is a complete seeded lifecycle: the config that generated it
// plus every round's events. It is the single source of truth both the
// driver (what to replay) and the oracle (what the counts must be)
// read from.
type Trace struct {
	Cfg    Config        `json:"cfg"`
	Rounds []RoundEvents `json:"rounds"`
}

// Generate rolls the population lifecycle for cfg. The roll order is
// part of the determinism contract: per round, first one join roll per
// never-registered user (index order), then per active user — again in
// index order — a drop roll, a rereg roll (skipped for this round's
// joiners), and a dark roll, then one reconnect roll. Every draw comes
// from a single splitmix64 stream seeded from (tagTrace, cfg.Seed), so
// the same seed yields the same trace on any platform.
func Generate(cfg Config) *Trace {
	cfg = cfg.withDefaults()
	rng := newRNG(mix(tagTrace, cfg.Seed))
	pop := newPopulation(cfg.Users)
	tr := &Trace{Cfg: cfg, Rounds: make([]RoundEvents, 0, cfg.Rounds)}
	for r := 1; r <= cfg.Rounds; r++ {
		ev := RoundEvents{Round: uint64(r)}
		pJoin := cfg.PArrive
		if r == 1 {
			pJoin = cfg.InitialActive
		}
		for u := 0; u < cfg.Users; u++ {
			if pop.gen[u] == 0 && rng.Float64() < pJoin {
				ev.Joins = append(ev.Joins, u)
			}
		}
		ji := 0
		for u := 0; u < cfg.Users; u++ {
			isNew := ji < len(ev.Joins) && ev.Joins[ji] == u
			if isNew {
				ji++
			}
			if (pop.gen[u] == 0 && !isNew) || pop.dropped[u] {
				continue
			}
			if !isNew {
				if rng.Float64() < cfg.PDrop {
					ev.Drops = append(ev.Drops, u)
					continue
				}
				if rng.Float64() < cfg.PRereg {
					ev.Reregs = append(ev.Reregs, u)
				}
			}
			if rng.Float64() < cfg.PDark {
				ev.Darks = append(ev.Darks, u)
			}
		}
		ev.Reconnect = rng.Float64() < cfg.PReconnect
		pop.apply(ev)
		tr.Rounds = append(tr.Rounds, ev)
	}
	return tr
}
