// Package docscheck holds the repository's documentation checks: godoc
// coverage over the protocol/durability packages, relative-link
// integrity across every markdown file, and README coverage of every
// command-line flag the main binaries define. CI's lint and docs jobs
// run these tests (see scripts/checkdocs.sh for the local entry point);
// they exist so the documentation cannot silently drift from the code.
package docscheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot returns the module root, two levels above this package.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}

// godocPackages are the packages whose exported surface must be fully
// documented: the wire protocol, the durable store, and replication —
// the packages OPERATIONS.md and ARCHITECTURE.md send readers to
// `go doc` for.
var godocPackages = []string{
	"internal/store",
	"internal/wire",
	"internal/repl",
}

// TestGodocCoverage fails if any exported identifier in the packages
// above lacks a doc comment (the `revive exported`-style check the CI
// lint job runs). A documented const/var/type group covers its members;
// methods on unexported types are exempt, being unreachable from godoc.
func TestGodocCoverage(t *testing.T) {
	root := repoRoot(t)
	var missing []string
	for _, pkg := range godocPackages {
		dir := filepath.Join(root, pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("%s/%s: %v", pkg, name, err)
			}
			missing = append(missing, undocumented(f, pkg+"/"+name)...)
		}
	}
	for _, m := range missing {
		t.Errorf("exported identifier without a doc comment: %s", m)
	}
}

// undocumented returns "file: Name" for every exported top-level
// identifier in f that carries no doc comment.
func undocumented(f *ast.File, file string) []string {
	var out []string
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				out = append(out, file+": "+funcLabel(d))
			}
		case *ast.GenDecl:
			if d.Doc != nil && len(d.Specs) == 1 {
				continue // doc on the decl covers its only spec
			}
			grouped := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && !grouped {
						out = append(out, file+": type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil || grouped {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							out = append(out, file+": "+n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverExported reports whether d is a plain function or a method on
// an exported type; methods on unexported types never surface in godoc.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch v := typ.(type) {
		case *ast.StarExpr:
			typ = v.X
		case *ast.IndexExpr:
			typ = v.X
		case *ast.IndexListExpr:
			typ = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// funcLabel renders "Recv.Name" for methods and "Name" for functions.
func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	typ := d.Recv.List[0].Type
	for {
		switch v := typ.(type) {
		case *ast.StarExpr:
			typ = v.X
		case *ast.IndexExpr:
			typ = v.X
		case *ast.IndexListExpr:
			typ = v.X
		case *ast.Ident:
			return v.Name + "." + d.Name.Name
		default:
			return d.Name.Name
		}
	}
}

// mdLinkRE matches the target of an inline markdown link or image:
// [text](target) / ![alt](target). Targets containing spaces or nested
// parens are not used in this repo.
var mdLinkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks resolves every relative link in every markdown file
// in the repository and fails on any that points at a missing file.
// External (scheme-prefixed) links and pure #fragments are skipped —
// the check is hermetic, no network.
func TestMarkdownLinks(t *testing.T) {
	root := repoRoot(t)
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found")
	}
	for _, md := range mdFiles {
		raw, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := filepath.Rel(root, md)
		for _, m := range mdLinkRE.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (%v)", rel, m[1], err)
			}
		}
	}
}

// flagDefRE matches a standard-library flag definition and captures the
// flag name: flag.String("name", ...), flag.Int("name", ...), etc.
var flagDefRE = regexp.MustCompile(`\bflag\.[A-Za-z0-9]+\(\s*"([^"]+)"`)

// flagCoveredBinaries are the commands whose every flag OPERATIONS.md
// and the README promise is documented in the README.
var flagCoveredBinaries = []string{
	"cmd/eyewnder-server",
	"cmd/eyewnder-sim",
	"cmd/eyewnder-bench",
}

// TestREADMEFlagCoverage extracts every flag the server, sim, and bench
// binaries define from their sources and fails if the README never
// mentions `-name`. This is the flag-drift check: adding a flag without
// documenting it (or renaming one and leaving the old name in the
// README's tables) breaks the docs job.
func TestREADMEFlagCoverage(t *testing.T) {
	root := repoRoot(t)
	raw, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	readme := string(raw)
	for _, cmd := range flagCoveredBinaries {
		dir := filepath.Join(root, cmd)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		found := 0
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range flagDefRE.FindAllStringSubmatch(string(src), -1) {
				found++
				if !strings.Contains(readme, "-"+m[1]) {
					t.Errorf("%s defines -%s but README.md never mentions it", cmd, m[1])
				}
			}
		}
		if found == 0 {
			t.Errorf("%s: no flag definitions found — extractor regex out of date?", cmd)
		}
	}
}
