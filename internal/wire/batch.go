package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"eyewnder/internal/campaign"
	"eyewnder/internal/obs"
)

// Batched acknowledgements and per-connection report pipelining.
//
// The legacy streamed path (stream.go) still pays one synchronous JSON
// ack round trip per report: the connection cannot carry frame k+1 until
// the client has parsed the ack for frame k, and the JSON marshal/parse
// of that ack is the path's remaining per-report allocation source. This
// file removes both costs behind an explicit, per-connection opt-in:
//
//  1. The client sends a TypeAckBatch request. The server answers with
//     its batch size k (the -ack-batch flag) and switches the connection
//     into batched mode: streamed report frames are no longer answered
//     individually. Instead the server emits one *binary ack frame* per
//     k consumed frames — plus a flush whenever the socket goes idle,
//     whenever a frame opens a different round than its predecessor, and
//     whenever the client sends an explicit flush marker. k = 1 restores
//     today's one-ack-per-frame behaviour, just in binary.
//
//  2. In batched mode the connection is *pipelined*: the read loop keeps
//     decoding frames off the socket into pooled cell slices and hands
//     them to a per-connection fold goroutine over a bounded channel, so
//     frame k+1 is being decoded while the ReportSink folds frame k.
//     The channel bound preserves backpressure (a slow sink stops the
//     read loop, which stops the TCP window), and the pool discipline is
//     unchanged: each buffer is recycled as soon as its frame is folded.
//
// Ack frame layout (server → client): a 4-byte big-endian header word
// with the top bit set and the payload length in the low 31 bits, then
// seq(8, little-endian) ‖ status(1) ‖ error text. seq is the CUMULATIVE
// count of sequence slots consumed on the connection — every report
// frame and every flush marker occupies one slot — so acks are
// idempotent and loss-tolerant: a later ack supersedes any number of
// earlier ones. status 0 is success; status 1 carries the error text of
// the first failing frame since the previous ack, and the client
// surfaces it on its next Submit/Flush (error propagation without
// stalling the window). The top bit never collides with report frames
// because those travel in the opposite direction.
//
// The client tracks (sent, acked) cumulative counters per connection and
// blocks only when sent-acked reaches its window; the server's
// flush-on-idle guarantees that a blocked client always gets an ack even
// mid-batch, so no timer is needed on either side.

// DefaultAckBatch is the initial ack batch size k when StreamOpts does
// not fix one: adaptive connections start here and adjust from the
// observed in-flight depth.
const DefaultAckBatch = 16

// maxAdaptiveAckBatch caps the per-connection batch an adaptive
// connection can grow to: beyond ~64 frames per ack the ack overhead is
// already amortized into noise, while a larger window only delays error
// propagation.
const maxAdaptiveAckBatch = 64

// defaultPipelineDepth bounds the decoded-but-unfolded frames buffered
// per connection when StreamOpts does not set PipelineDepth.
const defaultPipelineDepth = 4

// ackFixed is the fixed ack payload: seq(8) + status(1).
const ackFixed = 9

// maxAckPayload caps an ack frame's payload (bounded error text).
const maxAckPayload = ackFixed + 1024

// Errors of the batched-ack path.
var (
	ErrBadAckFrame = errors.New("wire: malformed ack frame")
	ErrStreaming   = errors.New("wire: a report stream is open on this connection")
)

// StreamOpts configures a server's batched-ack streaming behaviour.
type StreamOpts struct {
	// AckBatch is k: the streamed report frames covered by one binary
	// ack once a connection negotiates batched mode. 0 (the default)
	// makes k adaptive per connection: it starts at DefaultAckBatch,
	// shrinks (by halving, toward the in-flight depth the fold loop
	// actually observed, floor 2) whenever the pipeline runs dry — a
	// client with a small window gets prompt acks — and doubles, up to
	// maxAdaptiveAckBatch, while the backlog never drains (a blasting
	// client pays for fewer acks and, with a durable sink, fewer
	// fsyncs). A positive value fixes k for every connection; 1
	// acknowledges every frame (the legacy cadence).
	AckBatch int
	// PipelineDepth bounds the decoded-but-unfolded frames buffered per
	// connection (the decode-ahead window). 0 picks the default.
	PipelineDepth int
	// Config, when non-nil, is called to answer each Hello frame with
	// the current negotiated round config (see handshake.go). It must be
	// safe for concurrent use and should always reflect the *latest*
	// config — the server, not the flag set of any one binary, is the
	// source of truth. nil answers Hellos with WelcomeNoConfig.
	Config func() ConfigFrame
	// Campaigns, when non-nil, is called to answer each campaign
	// directory request (see campaign.go) with the currently
	// provisioned campaigns in strictly increasing ID order. It must be
	// safe for concurrent use. nil answers requests with an empty
	// directory.
	Campaigns func() []campaign.Campaign
	// Metrics is the observability registry the server's wire
	// instruments (report frames decoded, ack batches emitted,
	// handshakes answered/rejected) register in. nil means a private
	// registry: the instrumented paths run identically, nothing is
	// exported.
	Metrics *obs.Registry
}

// appendAckFrame appends one encoded ack frame to dst. An empty errMsg
// encodes success; anything else is truncated to the payload cap and
// carried as status 1.
func appendAckFrame(dst []byte, seq uint64, errMsg string) []byte {
	if len(errMsg) > maxAckPayload-ackFixed {
		errMsg = errMsg[:maxAckPayload-ackFixed]
	}
	var hdr [4 + ackFixed]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(ackFixed+len(errMsg))|reportFlag)
	binary.LittleEndian.PutUint64(hdr[4:], seq)
	if errMsg != "" {
		hdr[12] = 1
	}
	dst = append(dst, hdr[:]...)
	return append(dst, errMsg...)
}

// readAckFrame reads one binary ack frame, header word included. A
// non-empty errMsg reports the remote (sink-side) failure the ack
// carries; err reports transport or framing failures.
func readAckFrame(r io.Reader) (seq uint64, errMsg string, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, "", err
	}
	word := binary.BigEndian.Uint32(hdr[:])
	if word&reportFlag == 0 {
		return 0, "", ErrBadAckFrame
	}
	n := word &^ reportFlag
	if n < ackFixed || n > maxAckPayload {
		return 0, "", ErrBadAckFrame
	}
	var buf [maxAckPayload]byte
	if _, err := io.ReadFull(r, buf[:n]); err != nil {
		return 0, "", fmt.Errorf("wire: short ack frame: %w", err)
	}
	seq = binary.LittleEndian.Uint64(buf[0:])
	if buf[8] != 0 {
		errMsg = string(buf[ackFixed:n])
		if errMsg == "" {
			errMsg = "unspecified remote failure"
		}
	}
	return seq, errMsg, nil
}

// writeFlushMarker writes the zero-length report header word that forces
// the server to acknowledge everything consumed so far.
func writeFlushMarker(w io.Writer) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], reportFlag)
	_, err := w.Write(hdr[:])
	return err
}

// --- server side ---

// streamItem is one unit of work handed from a connection's read loop to
// its fold goroutine: a decoded frame backed by a pooled buffer, or a
// flush marker.
type streamItem struct {
	rb    *reportBuf
	f     *ReportFrame
	flush bool
}

// connStream is the per-connection batched-mode state: the bounded
// pipeline channel into the fold goroutine and the (initial) batch.
type connStream struct {
	ch       chan streamItem
	done     chan struct{}
	k        int  // initial batch, reported at negotiation
	adaptive bool // fold loop adjusts k from observed in-flight depth
}

// startStream switches a connection into batched mode: subsequent report
// frames flow through the pipeline channel to a dedicated fold goroutine.
func (s *Server) startStream(conn net.Conn, wmu *sync.Mutex) *connStream {
	k, adaptive := s.opts.AckBatch, false
	if k < 1 {
		k, adaptive = DefaultAckBatch, true
	}
	depth := s.opts.PipelineDepth
	if depth < 1 {
		depth = defaultPipelineDepth
	}
	st := &connStream{ch: make(chan streamItem, depth), done: make(chan struct{}), k: k, adaptive: adaptive}
	s.wg.Add(1)
	go s.foldLoop(conn, wmu, st)
	return st
}

// clampAckBatch bounds an adaptive batch size.
func clampAckBatch(k int) int {
	if k < 1 {
		return 1
	}
	if k > maxAdaptiveAckBatch {
		return maxAdaptiveAckBatch
	}
	return k
}

// stop closes the pipeline and waits for the fold goroutine to drain it.
// The caller must have stopped sending (the read loop has returned) and
// should already have closed conn so a blocked ack write cannot stall
// the drain.
func (st *connStream) stop() {
	close(st.ch)
	<-st.done
}

// foldLoop is a connection's fold goroutine: it consumes decoded frames
// while the read loop decodes the next one, folds them into the sink,
// recycles the pooled buffers, and emits batched acks. Ack cadence:
// every k frames, on any sink error (immediately, so the client learns
// which batch failed), on a round boundary (the previous round's tail
// must not wait for an unrelated batch to fill), on an explicit flush
// marker, and whenever the pipeline runs dry while frames are unacked —
// the flush-on-idle that guarantees a window-blocked client always
// unblocks without either side arming a timer.
//
// With a durable sink (ReportDurability) every ack is preceded by a
// SyncReports barrier, so an acknowledged report is on stable storage;
// the sink's group commit collapses the barrier to one fsync per ack.
//
// On an adaptive connection (StreamOpts.AckBatch 0) k tracks the
// observed in-flight depth: an idle flush means the client drained at
// the current cadence, so k halves toward the depth actually seen
// (prompt acks for shallow submitters); a full batch with more frames
// already queued means sustained backlog, so k doubles up to
// maxAdaptiveAckBatch (fewer acks — and fewer fsyncs — for blasting
// submitters). A fixed k (AckBatch ≥ 1) never adjusts.
func (s *Server) foldLoop(conn net.Conn, wmu *sync.Mutex, st *connStream) {
	defer s.wg.Done()
	defer close(st.done)
	dur, _ := s.sink.(ReportDurability)
	m := s.metrics()
	var (
		k         = st.k // current batch; adjusts when st.adaptive
		seq       uint64 // sequence slots consumed, cumulative
		pending   int    // slots consumed since the last ack went out
		lastRound uint64
		haveRound bool
		connDead  bool   // ack write failed; keep folding, stop acking
		scratch   []byte // reused ack encode buffer
	)
	ack := func(errMsg string) {
		pending = 0
		if connDead {
			return
		}
		if dur != nil {
			// Durability barrier: everything consumed so far must be on
			// stable storage before seq covers it. A sync failure must
			// reach the client even when the ack already carries a
			// (possibly benign) per-frame sink error — the client keeps
			// only the first remote error stickily, and a lost-durability
			// report must not hide behind a duplicate-report message.
			if err := dur.SyncReports(); err != nil {
				if errMsg == "" {
					errMsg = err.Error()
				} else {
					errMsg = err.Error() + " (after: " + errMsg + ")"
				}
			}
		}
		scratch = appendAckFrame(scratch[:0], seq, errMsg)
		wmu.Lock()
		_, err := conn.Write(scratch)
		wmu.Unlock()
		m.ackBatches.Inc()
		if err != nil {
			connDead = true
		}
	}
	for {
		var it streamItem
		var ok bool
		select {
		case it, ok = <-st.ch:
		default:
			// Pipeline dry: the socket is idle, flush the partial batch.
			// The adaptive cadence shrinks toward the depth the client
			// sustained before draining — but by halving, with a floor of
			// 2, not straight to `pending`: a momentarily empty channel
			// (frame in flight on the socket, not yet decoded) is
			// indistinguishable from a drained client window, and a
			// one-observation collapse to k=1 would cost a durable sink
			// one fsync per report on exactly the steady streams the
			// batch exists to amortize.
			if pending > 0 {
				if st.adaptive && pending < k {
					if k = k / 2; k < pending {
						k = pending
					}
					if k < 2 {
						k = 2
					}
				}
				ack("")
			}
			it, ok = <-st.ch
		}
		if !ok {
			return
		}
		if it.flush {
			seq++
			ack("")
			continue
		}
		if haveRound && it.f.Round != lastRound && pending > 0 {
			ack("")
		}
		lastRound, haveRound = it.f.Round, true
		err := s.sink.ConsumeReport(it.f)
		reportBufPool.Put(it.rb)
		seq++
		pending++
		if err != nil {
			ack(err.Error())
			continue
		}
		if pending >= k {
			backlog := len(st.ch) > 0
			ack("")
			if st.adaptive && backlog {
				k = clampAckBatch(k * 2)
			}
		}
	}
}

// --- client side ---

// ReportStream is the client's windowed submission handle on a
// connection that has negotiated batched acknowledgements. Submit keeps
// up to `window` frames in flight and only blocks on the network once
// the window fills; Flush forces the server to acknowledge everything.
// The first sink-side failure the server reports is sticky: it surfaces
// on the next Submit/Flush/Close and poisons the stream (the connection
// itself survives and is reusable after Close).
//
// A ReportStream owns its connection until Close: Do and
// SubmitReportFrame return ErrStreaming while it is open. It is not
// safe for concurrent use — one submitting goroutine per stream.
type ReportStream struct {
	c      *Client
	conn   net.Conn
	k      int
	window int
	remote error // first error ack (sink-side); sticky
	dead   error // transport failure; stream and connection unusable
	closed bool

	// OnAck, when set, observes every ack the stream consumes: acked is
	// the new cumulative acknowledged sequence count (see Sent for the
	// matching submit-side counter). Load harnesses use it to attribute
	// an ack timestamp to each in-flight slot and compute ack-latency
	// percentiles. Called synchronously from Submit/Flush/Close on the
	// submitting goroutine; keep it cheap.
	OnAck func(acked uint64)
}

// Sent returns the cumulative sequence slots written on the stream's
// connection: every Submit consumes one, every Flush (and the flush
// Close issues) one more. The slot a Submit occupied is Sent() right
// after it returns; pairing that with OnAck timestamps per-slot ack
// latency.
func (s *ReportStream) Sent() uint64 { return s.c.rsSent }

// Acked returns the cumulative acknowledged sequence slots.
func (s *ReportStream) Acked() uint64 { return s.c.rsAcked }

// OpenReportStream negotiates batched acknowledgements (first use only —
// the mode is sticky per connection) and opens a windowed submission
// stream. window bounds the unacknowledged frames in flight; 0 picks
// twice the server's ack batch.
func (c *Client) OpenReportStream(window int) (*ReportStream, error) {
	if err := c.negotiateAckBatch(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, ErrClosed
	}
	if c.streaming {
		return nil, ErrStreaming
	}
	if window < 1 {
		window = 2 * c.ackBatch
	}
	c.streaming = true
	return &ReportStream{c: c, conn: c.conn, k: c.ackBatch, window: window}, nil
}

// negotiateAckBatch performs the TypeAckBatch exchange once per
// connection.
func (c *Client) negotiateAckBatch() error {
	c.mu.Lock()
	negotiated := c.ackBatch > 0
	c.mu.Unlock()
	if negotiated {
		return nil
	}
	var resp AckBatchResp
	if err := c.Do(TypeAckBatch, AckBatchReq{}, &resp); err != nil {
		return err
	}
	if resp.K < 1 {
		resp.K = 1
	}
	c.mu.Lock()
	c.ackBatch = resp.K
	c.mu.Unlock()
	return nil
}

// readAckInto consumes one binary ack frame and advances the connection's
// cumulative window. The first remote (sink-side) error is accumulated
// into *remote; transport and protocol failures are returned. The caller
// holds the submission discipline (c.mu for one-shot submits, the open
// ReportStream otherwise).
func (c *Client) readAckInto(remote *error) error {
	seq, errMsg, err := readAckFrame(c.conn)
	if err != nil {
		return err
	}
	if seq < c.rsAcked || seq > c.rsSent {
		return fmt.Errorf("%w: ack %d outside window [%d, %d]", ErrBadAckFrame, seq, c.rsAcked, c.rsSent)
	}
	c.rsAcked = seq
	if errMsg != "" && *remote == nil {
		*remote = fmt.Errorf("wire: remote error: %s", errMsg)
	}
	return nil
}

// submitFrameBatched is the one-shot submit on a batched connection:
// frame + flush marker out, acks drained back in. Caller holds c.mu.
func (c *Client) submitFrameBatched(f *ReportFrame) error {
	if err := WriteReportFrame(c.conn, f); err != nil {
		return err
	}
	c.rsSent++
	if err := writeFlushMarker(c.conn); err != nil {
		return err
	}
	c.rsSent++
	var remote error
	for c.rsAcked < c.rsSent {
		if err := c.readAckInto(&remote); err != nil {
			return err
		}
	}
	return remote
}

// Submit streams one report, blocking only while the in-flight window is
// full. A sink-side failure reported by the server surfaces here (or on
// Flush/Close) once its ack arrives, and poisons the stream.
func (s *ReportStream) Submit(f *ReportFrame) error {
	if s.closed {
		return ErrClosed
	}
	if s.dead != nil {
		return s.dead
	}
	if s.remote != nil {
		return s.remote
	}
	if err := WriteReportFrame(s.conn, f); err != nil {
		s.dead = err
		return err
	}
	s.c.rsSent++
	for s.c.rsSent-s.c.rsAcked >= uint64(s.window) {
		if err := s.readAck(); err != nil {
			return err
		}
	}
	return s.remote
}

// Flush writes a flush marker and blocks until the server has
// acknowledged every frame submitted so far, returning the first
// sink-side failure among them (if any).
func (s *ReportStream) Flush() error {
	if s.closed {
		return ErrClosed
	}
	if s.dead != nil {
		return s.dead
	}
	if err := writeFlushMarker(s.conn); err != nil {
		s.dead = err
		return err
	}
	s.c.rsSent++
	for s.c.rsAcked < s.c.rsSent {
		if err := s.readAck(); err != nil {
			return err
		}
	}
	return s.remote
}

// readAck consumes one ack for the stream, recording remote errors
// stickily and transport errors fatally.
func (s *ReportStream) readAck() error {
	if err := s.c.readAckInto(&s.remote); err != nil {
		s.dead = err
		return err
	}
	if s.OnAck != nil {
		s.OnAck(s.c.rsAcked)
	}
	return nil
}

// InFlight returns the sequence slots (frames and flush markers) written
// but not yet acknowledged.
func (s *ReportStream) InFlight() int {
	return int(s.c.rsSent - s.c.rsAcked)
}

// Close flushes outstanding frames, releases the connection back to
// request/response use, and returns the stream's first error: the drain
// leaves no stray acks behind, so a subsequent Do (or a new
// ReportStream) finds the connection clean.
func (s *ReportStream) Close() error {
	if s.closed {
		return nil
	}
	var err error
	if s.dead == nil {
		err = s.Flush()
	}
	s.closed = true
	s.c.mu.Lock()
	s.c.streaming = false
	s.c.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	return err
}
