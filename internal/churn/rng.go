package churn

// Deterministic randomness for the churn harness. The trace generator
// and the synthetic blinding both need bit-reproducible streams — the
// same seed must replay the same population lifecycle and the same
// pairwise factors on every platform and Go release — so the harness
// carries its own tiny splitmix64 instead of math/rand (whose sequence
// is not a compatibility promise across versions).

const (
	splitmixGamma = 0x9e3779b97f4a7c15
	mixMul1       = 0xbf58476d1ce4e5b9
	mixMul2       = 0x94d049bb133111eb
)

// fin is the splitmix64 output finalizer: a cheap, well-mixed uint64 →
// uint64 permutation. It is the one-shot hash behind mix and the
// per-cell factor stream.
func fin(z uint64) uint64 {
	z = (z ^ (z >> 30)) * mixMul1
	z = (z ^ (z >> 27)) * mixMul2
	return z ^ (z >> 31)
}

// rng is a splitmix64 sequence generator.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) Uint64() uint64 {
	r.s += splitmixGamma
	return fin(r.s)
}

// Float64 returns a uniform draw in [0, 1).
func (r *rng) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// mix folds a sequence of words into one hashed value; used to derive
// independent sub-seeds (per-pair bases, per-user keys, per-user ad
// sets) from the trace seed plus a domain tag.
func mix(vs ...uint64) uint64 {
	h := uint64(splitmixGamma)
	for _, v := range vs {
		h = fin(h ^ v)
	}
	return h
}

// Domain tags keeping the harness's derived streams independent: every
// mix() call leads with one, so the trace's event rolls, the synthetic
// registration keys, the per-user ad sets, and the pairwise factor
// bases can never collide even under adversarial seeds.
const (
	tagTrace uint64 = 0x7452616365 // "tRace"
	tagKey   uint64 = 0x744b6579   // "tKey"
	tagAds   uint64 = 0x74416473   // "tAds"
	tagPair  uint64 = 0x7450616972 // "tPair"
)
