package wire

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	type payload struct {
		A int    `json:"a"`
		B string `json:"b"`
	}
	if err := WriteMsg(&buf, "test.msg", payload{A: 7, B: "x"}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != "test.msg" {
		t.Fatalf("type = %q", m.Type)
	}
	var p payload
	if err := m.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.A != 7 || p.B != "x" {
		t.Fatalf("payload = %+v", p)
	}
}

func TestNilPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, "ping", nil); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != "ping" {
		t.Fatalf("type = %q", m.Type)
	}
	var v struct{}
	if err := m.Decode(&v); err == nil {
		t.Fatal("decoding empty payload should error")
	}
}

func TestReadRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMsg(&buf); err != ErrFrameTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 3})
	buf.WriteString("xyz")
	if _, err := ReadMsg(&buf); err == nil {
		t.Fatal("garbage frame accepted")
	}
}

func TestReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 100})
	buf.WriteString("short")
	if _, err := ReadMsg(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func echoHandler(m *Msg) (string, interface{}, error) {
	switch m.Type {
	case "echo":
		var v map[string]interface{}
		if err := m.Decode(&v); err != nil {
			return "", nil, err
		}
		return "echo_ok", v, nil
	case "boom":
		return "", nil, errors.New("kaboom")
	}
	return "", nil, fmt.Errorf("unknown type %q", m.Type)
}

func TestServerClientExchange(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var resp map[string]interface{}
	if err := cli.Do("echo", map[string]interface{}{"k": "v"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp["k"] != "v" {
		t.Fatalf("resp = %v", resp)
	}
}

func TestServerErrorPropagates(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	err = cli.Do("boom", map[string]string{}, nil)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
	// The connection survives a handler error.
	var resp map[string]interface{}
	if err := cli.Do("echo", map[string]interface{}{"again": "yes"}, &resp); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for j := 0; j < 20; j++ {
				var resp map[string]interface{}
				key := fmt.Sprintf("c%d-%d", i, j)
				if err := cli.Do("echo", map[string]interface{}{"k": key}, &resp); err != nil {
					errs <- err
					return
				}
				if resp["k"] != key {
					errs <- fmt.Errorf("mismatched response %v", resp)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientAfterClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Do("echo", map[string]string{}, nil); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Do("echo", map[string]string{"a": "b"}, nil); err == nil {
		t.Fatal("Do succeeded after server close")
	}
}

func TestLargeFrame(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// ~1 MB payload — bigger than a paper-sized blinded CMS.
	big := strings.Repeat("x", 1<<20)
	var resp map[string]interface{}
	if err := cli.Do("echo", map[string]interface{}{"blob": big}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp["blob"] != big {
		t.Fatal("large payload corrupted")
	}
}
