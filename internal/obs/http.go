// The admin HTTP endpoint: /metrics (Prometheus text), /metrics.json,
// /statusz (one consistent JSON status snapshot), /healthz, and the
// standard /debug/pprof/* handlers. eyewnder-server serves this behind
// -admin; eyewnder-sim serves it behind -scrape so CI can watch a load
// run from outside the process.
package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health is what /healthz reports: OK selects the HTTP status (200 vs
// 503) and the whole struct is the JSON body, so "warm replica, still
// catching up" is distinguishable from "caught up" without being an
// error.
type Health struct {
	// OK is false only when the process should be taken out of
	// rotation: on a follower, a fatally stopped replication loop.
	OK bool `json:"ok"`
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// Detail is a short human phrase: "serving", "caught up",
	// "warm replica (catching up)", or the replication error.
	Detail string `json:"detail"`
}

// AdminOptions configures ServeAdmin. Registry is required; the
// callbacks may be nil, in which case the corresponding endpoint
// serves a minimal default.
type AdminOptions struct {
	Registry *Registry
	// Status builds the /statusz body. It must return one internally
	// consistent snapshot (taken under the owning component's locks),
	// which is then JSON-encoded.
	Status func() any
	// Health builds the /healthz verdict; nil means always-OK primary.
	Health func() Health
}

// Admin is a running admin HTTP listener.
type Admin struct {
	lis net.Listener
	srv *http.Server
}

// ServeAdmin listens on addr and serves the admin endpoint until
// Close. Pass ":0" style addresses for tests.
func ServeAdmin(addr string, opts AdminOptions) (*Admin, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &Admin{lis: lis, srv: &http.Server{
		Handler:           Handler(opts),
		ReadHeaderTimeout: 5 * time.Second,
	}}
	go a.srv.Serve(lis)
	return a, nil
}

// Addr returns the listener's address (resolved, useful with ":0").
func (a *Admin) Addr() string { return a.lis.Addr().String() }

// Close shuts the listener down and drops in-flight requests.
func (a *Admin) Close() error { return a.srv.Close() }

// Handler builds the admin http.Handler — exported separately so tests
// and harnesses can mount it without a real listener.
func Handler(opts AdminOptions) http.Handler {
	reg := Ensure(opts.Registry)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var body any
		if opts.Status != nil {
			body = opts.Status()
		} else {
			body = map[string]any{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		h := Health{OK: true, Role: "primary", Detail: "serving"}
		if opts.Health != nil {
			h = opts.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	// pprof must be mounted by hand: the net/http/pprof side-effect
	// registration only touches http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
