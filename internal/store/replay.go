package store

import (
	"encoding/binary"
	"sort"

	"eyewnder/internal/vec"
)

// Replay: applying WAL records to recovered state.
//
// The applier mirrors the live aggregator's acceptance rules exactly —
// unknown round, out-of-roster user, duplicate report, mismatched cell
// layout, mismatched blinding suite, stale round-config version, and
// closed round are all *skipped*, never applied — for two reasons. First, byte-identical recovery: the
// live path logs a report only after reserving its user slot, so a
// record the live aggregator accepted is accepted on replay and one it
// would have rejected is rejected on replay. Second, idempotence: a
// snapshot is taken *after* the WAL rotates, so the segment replayed on
// top of it may contain records the snapshot already reflects; the
// duplicate/closed checks make re-applying them a no-op, which is what
// lets recovery compose a fuzzy snapshot with its overlapping segment.

// recovered accumulates state during recovery: the bulletin board, the
// per-round states keyed by round ID, and the deployment-wide
// config/roster version counters.
type recovered struct {
	rounds        map[uint64]*RoundState
	roster        map[int][]byte
	configVersion uint32
	rosterVersion uint32
}

// newRecovered seeds recovery from a loaded snapshot (nil for none).
func newRecovered(snap *snapshotData) *recovered {
	rec := &recovered{rounds: make(map[uint64]*RoundState), roster: make(map[int][]byte)}
	if snap != nil {
		for _, rs := range snap.rounds {
			rec.rounds[rs.Round] = rs
		}
		for u, k := range snap.roster {
			rec.roster[u] = k
		}
		rec.configVersion, rec.rosterVersion = snap.configVersion, snap.rosterVersion
	}
	return rec
}

// bumpVersions raises the recovered version counters (never lowers:
// replay on top of a snapshot may revisit older bumps, and version
// counters only ever grow).
func (rec *recovered) bumpVersions(cv, rv uint32) {
	if cv > rec.configVersion {
		rec.configVersion = cv
	}
	if rv > rec.rosterVersion {
		rec.rosterVersion = rv
	}
}

// apply folds one decoded WAL record into the recovered state. A record
// that fails the live acceptance rules is skipped; a record whose body
// does not parse at all returns ErrBadRecord (the caller treats it like
// a corrupt record and ends the segment).
func (rec *recovered) apply(kind byte, body []byte) error {
	switch kind {
	case recRegister:
		r, err := decodeRegisterBody(body)
		if err != nil {
			return err
		}
		rec.roster[int(r.User)] = append([]byte(nil), r.Key...)

	case recOpen:
		r, err := decodeOpenBody(body)
		if err != nil {
			return err
		}
		rec.bumpVersions(r.ConfigVersion, r.RosterVersion)
		if _, ok := rec.rounds[r.Round]; ok {
			return nil // round already open (snapshot overlap): idempotent
		}
		rec.rounds[r.Round] = &RoundState{
			Round:         r.Round,
			RosterSize:    int(r.Roster),
			ConfigVersion: r.ConfigVersion,
			RosterVersion: r.RosterVersion,
			D:             int(r.D),
			W:             int(r.W),
			Seed:          r.Seed,
			Keystream:     r.Keystream,
			Cells:         make([]uint64, r.D*r.W),
			Reported:      make([]bool, r.Roster),
			Adjusts:       make(map[int][]uint64),
		}

	case recConfig:
		cv, rv, err := decodeConfigBody(body)
		if err != nil {
			return err
		}
		rec.bumpVersions(cv, rv)

	case recReport:
		r, err := decodeReportBody(body)
		if err != nil {
			return err
		}
		rs, ok := rec.rounds[r.Round]
		if !ok || rs.Closed {
			return nil // unknown or closed round: the live path rejects too
		}
		user := int(r.User)
		if user < 0 || user >= rs.RosterSize || rs.Reported[user] {
			return nil // out-of-roster or duplicate: skip, as live
		}
		if int(r.D) != rs.D || int(r.W) != rs.W || r.Seed != rs.Seed || r.Keystream != rs.Keystream {
			return nil // layout or blinding-suite mismatch: skip, as live
		}
		if r.ConfigVersion != 0 && rs.ConfigVersion != 0 && r.ConfigVersion != rs.ConfigVersion {
			return nil // stale config version: skip, as live (ErrIncompatibleConfig)
		}
		rs.Reported[user] = true
		rs.N += r.N
		raw := r.Cells
		for i := range rs.Cells {
			rs.Cells[i] += binary.LittleEndian.Uint64(raw[8*i:])
		}

	case recAdjust:
		r, err := decodeAdjustBody(body)
		if err != nil {
			return err
		}
		rs, ok := rec.rounds[r.Round]
		if !ok || rs.Closed {
			return nil
		}
		user := int(r.User)
		if user < 0 || user >= rs.RosterSize || len(r.Cells) != 8*len(rs.Cells) {
			return nil
		}
		cells := make([]uint64, len(rs.Cells))
		vec.GetLE(cells, r.Cells)
		rs.Adjusts[user] = cells // overwrite, as the live map store does

	case recClose:
		if len(body) != 8 {
			return ErrBadRecord
		}
		if rs, ok := rec.rounds[binary.LittleEndian.Uint64(body)]; ok {
			rs.Closed = true
		}

	default:
		return ErrBadRecord // unknown kind under a valid checksum
	}
	return nil
}

// sortedRounds returns the recovered rounds ordered by round ID, so
// recovery hands the back-end a deterministic sequence.
func (rec *recovered) sortedRounds() []*RoundState {
	out := make([]*RoundState, 0, len(rec.rounds))
	for _, rs := range rec.rounds {
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Round < out[j].Round })
	return out
}
