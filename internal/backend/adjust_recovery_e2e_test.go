package backend

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"eyewnder/internal/wire"
)

// TestKillAndRecoverAdjustments is the adjustment round's crash test:
// the server is SIGKILLed after the reports and *half* of the
// reporters' adjustment shares have been appended (and synced) but
// before the round closes. After a restart on the same data dir the
// replayed shares must still be there — an identical re-upload stays
// idempotent, a conflicting one is still refused — and once the
// stragglers' shares land the close must produce counts byte-identical
// to an uninterrupted in-process run over the same reports and shares.
func TestKillAndRecoverAdjustments(t *testing.T) {
	params := storeTestParams()
	const round uint64 = 1
	const reporters = 6 // users 6 and 7 go dark
	reports, roster := buildReportsWithRoster(t, params, e2eUsers, round)
	missing := []int{6, 7}
	cms, err := params.NewSketch()
	if err != nil {
		t.Fatal(err)
	}
	shares := make([][]uint64, reporters)
	for u := 0; u < reporters; u++ {
		if shares[u], err = roster.Parties[u].Adjustment(round, cms.Cells(), missing); err != nil {
			t.Fatal(err)
		}
	}

	// Uninterrupted control, in-process.
	control := newStoreBackend(t, params, e2eUsers, nil)
	for _, r := range reports[:reporters] {
		if err := control.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < reporters; u++ {
		if err := control.SubmitAdjustment(u, round, shares[u]); err != nil {
			t.Fatal(err)
		}
	}
	controlTh, controlAds, err := control.CloseRound(round)
	if err != nil {
		t.Fatal(err)
	}
	controlCounts, err := control.UserCountsOfRound(round)
	if err != nil {
		t.Fatal(err)
	}

	dataDir := filepath.Join(t.TempDir(), "rounds")
	cmd1, addr1 := startRecoveryServer(t, dataDir)

	// Phase 1: all six reports (stream close = acked = fsynced), then
	// half the shares over the synced JSON path.
	cli1, err := wire.Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := cli1.OpenReportStream(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports[:reporters] {
		if err := rs.Submit(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < reporters/2; u++ {
		if err := cli1.Do(wire.TypeSubmitAdjust, wire.SubmitAdjustReq{
			User: u, Round: round, Cells: shares[u],
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	var status wire.RoundStatusResp
	if err := cli1.Do(wire.TypeRoundStatus, wire.CloseRoundReq{Round: round}, &status); err != nil {
		t.Fatal(err)
	}
	if status.Reported != reporters || status.Adjusted != reporters/2 {
		t.Fatalf("pre-kill status = %+v", status)
	}
	cli1.Close()

	// The crash: SIGKILL with the round mid-adjustment.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	// Phase 2: restart on the same data dir — the WAL replay must
	// restore the reported bitmap AND the stored shares.
	_, addr2 := startRecoveryServer(t, dataDir)
	cli2, err := wire.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if err := cli2.Do(wire.TypeRoundStatus, wire.CloseRoundReq{Round: round}, &status); err != nil {
		t.Fatal(err)
	}
	if status.Reported != reporters || !reflect.DeepEqual(status.Missing, missing) ||
		status.Adjusted != reporters/2 || status.Closed {
		t.Fatalf("recovered status = %+v", status)
	}
	// The recovered shares still carry their semantics: an identical
	// re-upload is an idempotent retry…
	if err := cli2.Do(wire.TypeSubmitAdjust, wire.SubmitAdjustReq{
		User: 0, Round: round, Cells: shares[0],
	}, nil); err != nil {
		t.Fatalf("idempotent re-upload after recovery err = %v", err)
	}
	// …and a differing one is still a conflict (the conflict check runs
	// against the replayed copy, not an empty map).
	mutated := append([]uint64(nil), shares[0]...)
	mutated[0]++
	err = cli2.Do(wire.TypeSubmitAdjust, wire.SubmitAdjustReq{
		User: 0, Round: round, Cells: mutated,
	}, nil)
	if err == nil || !strings.Contains(err.Error(), ErrAdjustConflict.Error()) {
		t.Fatalf("conflicting re-upload after recovery err = %v", err)
	}
	// A close is still premature: three shares are outstanding.
	var closed wire.CloseRoundResp
	if err := cli2.Do(wire.TypeCloseRound, wire.CloseRoundReq{Round: round}, &closed); err == nil {
		t.Fatal("close with outstanding shares succeeded")
	}

	// The stragglers' shares land and the deadline close finalizes.
	for u := reporters / 2; u < reporters; u++ {
		if err := cli2.Do(wire.TypeSubmitAdjust, wire.SubmitAdjustReq{
			User: u, Round: round, Cells: shares[u],
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli2.Do(wire.TypeCloseRound, wire.CloseRoundReq{Round: round, AdjustWaitMS: 5000}, &closed); err != nil {
		t.Fatal(err)
	}

	// Byte-identical to the uninterrupted run.
	if closed.DistinctAds != controlAds {
		t.Fatalf("distinct ads: recovered %d, control %d", closed.DistinctAds, controlAds)
	}
	if d := closed.UsersTh - controlTh; d > 1e-9 || d < -1e-9 {
		t.Fatalf("Users_th: recovered %v, control %v", closed.UsersTh, controlTh)
	}
	var counts wire.RoundCountsResp
	if err := cli2.Do(wire.TypeRoundCounts, wire.RoundCountsReq{Round: round}, &counts); err != nil {
		t.Fatal(err)
	}
	if len(counts.Counts) == 0 || !reflect.DeepEqual(counts.Counts, controlCounts) {
		t.Fatalf("recovered counts differ from control: %v != %v", counts.Counts, controlCounts)
	}
}
