package wire

import (
	"bytes"
	"errors"
	"testing"

	"eyewnder/internal/campaign"
)

func testCampaignList() []campaign.Campaign {
	return []campaign.Campaign{
		{ID: 1, Name: "cars", Epsilon: 0.01, Delta: 0.01},
		{ID: 2, Name: "travel", IDSpace: 4096},
		{ID: 7, Name: "fast-food", KeystreamSet: true, Keystream: 0x01, RetainRounds: 2, CadenceSec: 300},
	}
}

func TestCampaignDirRoundTrip(t *testing.T) {
	list := testCampaignList()
	frame, err := AppendCampaignDirFrame(nil, list)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadCampaignDirFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(list) {
		t.Fatalf("got %d entries, want %d", len(got), len(list))
	}
	for i := range list {
		if got[i] != list[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], list[i])
		}
	}
	// Empty directory round-trips too.
	frame, err = AppendCampaignDirFrame(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ReadCampaignDirFrame(bytes.NewReader(frame)); err != nil || len(got) != 0 {
		t.Fatalf("empty directory: %v %v", got, err)
	}
}

func TestCampaignDirRejects(t *testing.T) {
	// Unsorted and duplicate IDs refuse to encode.
	if _, err := AppendCampaignDirFrame(nil, []campaign.Campaign{
		{ID: 2, Name: "b"}, {ID: 1, Name: "a"},
	}); err == nil {
		t.Fatal("unsorted directory encoded")
	}
	if _, err := AppendCampaignDirFrame(nil, []campaign.Campaign{
		{ID: 1, Name: "a"}, {ID: 1, Name: "b"},
	}); err == nil {
		t.Fatal("duplicate directory encoded")
	}
	frame, err := AppendCampaignDirFrame(nil, testCampaignList())
	if err != nil {
		t.Fatal(err)
	}
	// Truncated, trailing-garbage, and bad-magic frames all reject.
	if _, err := ReadCampaignDirFrame(bytes.NewReader(frame[:len(frame)-3])); err == nil {
		t.Fatal("truncated frame accepted")
	}
	bad := append(append([]byte(nil), frame...), 0xEE)
	bad[0] = frame[0]
	// Fix the header length to cover the trailing byte.
	n := uint32(len(frame)) - 4 + 1
	bad[0], bad[1], bad[2], bad[3] = byte(n>>24)|0x80, byte(n>>16), byte(n>>8), byte(n)
	if _, err := ReadCampaignDirFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	badMagic := append([]byte(nil), frame...)
	badMagic[4] ^= 0xFF
	if _, err := ReadCampaignDirFrame(bytes.NewReader(badMagic)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCampaignDirRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCampaignDirRequest(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if len(raw) != 4+campaignDirReqPayload {
		t.Fatalf("request frame %d bytes", len(raw))
	}
	minRev, maxRev, err := ReadCampaignDirRequest(bytes.NewReader(raw[4:]))
	if err != nil {
		t.Fatal(err)
	}
	if minRev != HandshakeRevision || maxRev != HandshakeRevision {
		t.Fatalf("revisions [%d, %d]", minRev, maxRev)
	}
	if _, _, err := ReadCampaignDirRequest(bytes.NewReader(raw[4 : 4+10])); err == nil {
		t.Fatal("short request accepted")
	}
}

// TestCampaignDirectoryExchange drives the full client/server exchange
// over a real connection: directory advertised in the Welcome count,
// fetched with CampaignDirectory, interleaved with JSON traffic.
func TestCampaignDirectoryExchange(t *testing.T) {
	list := testCampaignList()
	echo := func(msg *Msg) (string, interface{}, error) {
		return msg.Type + "_ok", struct{}{}, nil
	}
	srv, err := ServeWithSinkOpts("127.0.0.1:0", echo, nil, StreamOpts{
		Config: func() ConfigFrame {
			return ConfigFrame{Epsilon: 0.01, Delta: 0.01, IDSpace: 100, Campaigns: uint16(len(list))}
		},
		Campaigns: func() []campaign.Campaign { return list },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg, err := c.Handshake()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Campaigns != uint16(len(list)) {
		t.Fatalf("welcome campaign count %d, want %d", cfg.Campaigns, len(list))
	}
	got, err := c.CampaignDirectory()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(list) {
		t.Fatalf("directory %d entries, want %d", len(got), len(list))
	}
	for i := range list {
		if got[i] != list[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], list[i])
		}
	}
	// The exchange must leave the connection usable for JSON traffic.
	if err := c.Do("backend.roster", struct{}{}, nil); err != nil {
		t.Fatalf("Do after directory exchange: %v", err)
	}
}

// TestCampaignDirectoryAgainstOldServer: a server with no Campaigns
// callback answers with an empty directory (StreamOpts zero value), and
// clients see no campaigns rather than an error.
func TestCampaignDirectoryNoCallback(t *testing.T) {
	echo := func(msg *Msg) (string, interface{}, error) {
		return msg.Type + "_ok", struct{}{}, nil
	}
	srv, err := ServeWithSinkOpts("127.0.0.1:0", echo, nil, StreamOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.CampaignDirectory()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty-directory exchange: %v %v", got, err)
	}
}

// FuzzReadCampaignFrame fuzzes both campaign-directory decoders and the
// campaign-tagged report-frame path: arbitrary bytes must either reject
// with the right error class or decode to a frame that re-encodes
// canonically.
func FuzzReadCampaignFrame(f *testing.F) {
	if frame, err := AppendCampaignDirFrame(nil, testCampaignList()); err == nil {
		f.Add(frame)
	}
	if frame, err := AppendCampaignDirFrame(nil, nil); err == nil {
		f.Add(frame)
	}
	var req bytes.Buffer
	if err := WriteCampaignDirRequest(&req); err == nil {
		f.Add(req.Bytes())
	}
	var rep bytes.Buffer
	if err := WriteReportFrame(&rep, &ReportFrame{
		User: 3, Round: 9, D: 2, W: 4, N: 1, Seed: 7, Campaign: 12, Cells: make([]uint64, 8),
	}); err == nil {
		f.Add(rep.Bytes())
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Directory response decoder.
		list, err := ReadCampaignDirFrame(bytes.NewReader(data))
		if err == nil {
			reenc, err := AppendCampaignDirFrame(nil, list)
			if err != nil {
				t.Fatalf("accepted directory refuses to re-encode: %v", err)
			}
			if got, err := ReadCampaignDirFrame(bytes.NewReader(reenc)); err != nil || len(got) != len(list) {
				t.Fatalf("canonical re-decode: %v (%d vs %d entries)", err, len(got), len(list))
			}
		}
		// Directory request decoder (payload only, as the server reads it).
		if minRev, maxRev, err := ReadCampaignDirRequest(bytes.NewReader(data)); err == nil {
			if minRev == 0 || maxRev < minRev {
				t.Fatalf("accepted impossible revision range [%d, %d]", minRev, maxRev)
			}
		} else if !errors.Is(err, ErrBadCampaignFrame) {
			t.Fatalf("unexpected request error class: %v", err)
		}
		// Campaign-tagged report frames: strip a plausible header word
		// and run the streamed-report decoder; an accepted frame must
		// carry a wire-representable campaign and survive a write/read
		// round trip.
		if len(data) >= 4 {
			n := uint32(len(data) - 4)
			var buf reportBuf
			frame, err := readReportFrame(bytes.NewReader(data[4:]), n, &buf)
			if err != nil {
				return
			}
			if frame.Campaign > maxWireCampaign {
				t.Fatalf("decoded campaign %d above wire cap", frame.Campaign)
			}
			var out bytes.Buffer
			cp := *frame
			cp.Cells = append([]uint64(nil), frame.Cells...)
			if err := WriteReportFrame(&out, &cp); err != nil {
				t.Fatalf("accepted frame refuses to re-encode: %v", err)
			}
			if !bytes.Equal(out.Bytes()[4:], data[4:4+int(n)]) {
				t.Fatal("report frame round-trip mismatch")
			}
		}
	})
}
