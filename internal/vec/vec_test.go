package vec

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
)

func TestAddSubRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 1024, parallelThreshold + 17} {
		rng := rand.New(rand.NewSource(int64(n)))
		dst := make([]uint64, n)
		src := make([]uint64, n)
		orig := make([]uint64, n)
		for i := range dst {
			dst[i] = rng.Uint64()
			src[i] = rng.Uint64()
		}
		copy(orig, dst)
		Add(dst, src)
		for i := range dst {
			if dst[i] != orig[i]+src[i] {
				t.Fatalf("n=%d: Add mismatch at %d", n, i)
			}
		}
		Sub(dst, src)
		for i := range dst {
			if dst[i] != orig[i] {
				t.Fatalf("n=%d: Sub did not invert Add at %d", n, i)
			}
		}
	}
}

func TestAddWrapsAround(t *testing.T) {
	dst := []uint64{^uint64(0)}
	Add(dst, []uint64{1})
	if dst[0] != 0 {
		t.Fatalf("wrap-around add = %d, want 0", dst[0])
	}
	Sub(dst, []uint64{1})
	if dst[0] != ^uint64(0) {
		t.Fatalf("wrap-around sub = %d", dst[0])
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched lengths did not panic")
		}
	}()
	Add(make([]uint64, 2), make([]uint64, 3))
}

func TestParallelCoversRange(t *testing.T) {
	const n = 100000
	seen := make([]uint64, n)
	Parallel(n, 1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	Parallel(0, 1024, func(lo, hi int) { t.Error("fn called for empty range") })
}

func BenchmarkAdd16k(b *testing.B)  { benchAdd(b, 1<<14) }
func BenchmarkAdd256k(b *testing.B) { benchAdd(b, 1<<18) }

func benchAdd(b *testing.B, n int) {
	dst := make([]uint64, n)
	src := make([]uint64, n)
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add(dst, src)
	}
}

// Concurrent striped adds must produce exactly the serial sum, for any
// stripe count including the degenerate single-lock case.
func TestStripedAddMatchesSerial(t *testing.T) {
	const n = 10000
	const adders = 8
	for _, stripes := range []int{0, 1, 3, 16} {
		dst := make([]uint64, n)
		s := NewStriped(dst, stripes)
		if s.Len() != n || s.Stripes() < 1 {
			t.Fatalf("stripes=%d: Len=%d Stripes=%d", stripes, s.Len(), s.Stripes())
		}
		srcs := make([][]uint64, adders)
		want := make([]uint64, n)
		for a := range srcs {
			srcs[a] = make([]uint64, n)
			for i := range srcs[a] {
				srcs[a][i] = uint64(a*1000003 + i)
				want[i] += srcs[a][i]
			}
		}
		var wg sync.WaitGroup
		for a := range srcs {
			wg.Add(1)
			go func(src []uint64) {
				defer wg.Done()
				s.Add(src)
			}(srcs[a])
		}
		wg.Wait()
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("stripes=%d: dst[%d] = %d, want %d", stripes, i, dst[i], want[i])
			}
		}
	}
}

func TestStripedAddLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	NewStriped(make([]uint64, 8), 2).Add(make([]uint64, 9))
}

// PutLE/GetLE/AsBytes agree with encoding/binary on every architecture.
func TestByteViewsRoundTrip(t *testing.T) {
	src := []uint64{0, 1, 0xdeadbeefcafebabe, 1 << 63, ^uint64(0)}
	buf := make([]byte, 8*len(src))
	PutLE(buf, src)
	for i, v := range src {
		if got := binary.LittleEndian.Uint64(buf[8*i:]); got != v {
			t.Fatalf("PutLE[%d] = %x, want %x", i, got, v)
		}
	}
	dst := make([]uint64, len(src))
	GetLE(dst, buf)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("GetLE[%d] = %x, want %x", i, dst[i], src[i])
		}
	}
	if view, ok := AsBytes(src); ok {
		if len(view) != len(buf) {
			t.Fatalf("AsBytes len = %d, want %d", len(view), len(buf))
		}
		for i := range buf {
			if view[i] != buf[i] {
				t.Fatalf("AsBytes[%d] = %x, want %x", i, view[i], buf[i])
			}
		}
	}
}
