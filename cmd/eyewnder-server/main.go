// Command eyewnder-server runs the two server-side components of the
// eyeWnder deployment: the back-end (bulletin board, blinded-report
// aggregation, threshold publication, audits) and the oprf-server (which
// holds the ad-ID mapping key the back-end must never see).
//
// Usage:
//
//	eyewnder-server -backend 127.0.0.1:7001 -oprf 127.0.0.1:7002 -users 100
//
// With -data-dir the back-end's rounds are durable: every round event
// is write-ahead logged (fsynced at acknowledgement barriers, see
// -fsync) and snapshotted, and a restart on the same directory recovers
// every round — reported bitmaps, adjustment shares, closed results —
// exactly where the previous process left them.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"eyewnder/internal/backend"
	"eyewnder/internal/blind"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/oprf"
	"eyewnder/internal/privacy"
	"eyewnder/internal/store"
)

func main() {
	var (
		backendAddr = flag.String("backend", "127.0.0.1:7001", "back-end listen address")
		oprfAddr    = flag.String("oprf", "127.0.0.1:7002", "oprf-server listen address")
		users       = flag.Int("users", 100, "roster size (number of enrolled users)")
		rsaBits     = flag.Int("rsa-bits", 2048, "oprf RSA modulus size")
		epsilon     = flag.Float64("epsilon", 0.01, "CMS epsilon")
		delta       = flag.Float64("delta", 0.01, "CMS delta")
		idSpace     = flag.Uint64("id-space", 100000, "ad-ID space size |A| (overestimate)")
		stripes     = flag.Int("merge-stripes", 0, "intra-round merge stripes (0 = 2×GOMAXPROCS, 1 = single merge lock)")
		ackBatch    = flag.Int("ack-batch", 0, "streamed-report ack batch k for batched-ack connections (0 = adaptive per connection, 1 = ack every frame)")
		keystream   = flag.String("keystream", "hmac-sha256", "blinding keystream suite, advertised to clients in the config handshake: hmac-sha256 or aes-ctr")
		retain      = flag.Int("retain-rounds", 0, "age a closed round out of memory and snapshots once its Users_th has been served for N newer closed rounds (0 = keep forever)")
		dataDir     = flag.String("data-dir", "", "durable round store directory: WAL + snapshots, crash recovery on restart (empty = in-memory rounds only)")
		fsync       = flag.String("fsync", "batch", "WAL fsync policy with -data-dir: batch (group-committed at ack barriers), always (every append), off (OS page cache only)")
		snapEvery   = flag.Int("snapshot-every", 0, "reports between WAL-compacting snapshots with -data-dir (0 = default, negative = never)")
	)
	flag.Parse()

	ks, err := blind.KeystreamByName(*keystream)
	if err != nil {
		log.Fatalf("keystream: %v", err)
	}
	osrv, err := oprf.NewServer(*rsaBits)
	if err != nil {
		log.Fatalf("oprf key generation: %v", err)
	}
	var st store.Store
	if *dataDir != "" {
		var mode store.SyncMode
		switch *fsync {
		case "batch":
			mode = store.SyncBatch
		case "always":
			mode = store.SyncAlways
		case "off":
			mode = store.SyncOff
		default:
			log.Fatalf("-fsync %q: want batch, always, or off", *fsync)
		}
		disk, err := store.Open(*dataDir, store.Options{Sync: mode, SnapshotEvery: *snapEvery})
		if err != nil {
			log.Fatalf("round store: %v", err)
		}
		defer disk.Close()
		st = disk
		log.Printf("round store in %s (fsync=%s, %d rounds and %d registrations recovered)",
			*dataDir, *fsync, len(disk.Rounds()), len(disk.Roster()))
	}
	params := privacy.Params{Epsilon: *epsilon, Delta: *delta, IDSpace: *idSpace, Suite: group.P256(), Keystream: ks}
	be, err := backend.New(backend.Config{
		Params:         params,
		Users:          *users,
		UsersEstimator: detector.EstimatorMean,
		MergeStripes:   *stripes,
		AckBatch:       *ackBatch,
		Store:          st,
		RetainRounds:   *retain,
	})
	if err != nil {
		log.Fatalf("back-end: %v", err)
	}
	defer be.Close()
	beSrv, err := be.Serve(*backendAddr)
	if err != nil {
		log.Fatalf("back-end listen: %v", err)
	}
	defer beSrv.Close()
	opSrv, err := backend.ServeOPRF(*oprfAddr, osrv)
	if err != nil {
		log.Fatalf("oprf listen: %v", err)
	}
	defer opSrv.Close()

	cfg := be.CurrentConfig()
	log.Printf("back-end on %s (config v%d, roster v%d with %d users, ε=%g δ=%g |A|=%d, streamed reports on, merge stripes=%d, ack batch=%d, keystream=%s, durable=%v, retain=%d)",
		beSrv.Addr(), cfg.Version, cfg.RosterVersion, *users, *epsilon, *delta, *idSpace,
		be.MergeStripes(), *ackBatch, ks, *dataDir != "", *retain)
	log.Printf("oprf-server on %s (RSA-%d)", opSrv.Addr(), *rsaBits)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
}
