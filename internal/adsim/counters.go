package adsim

// Counters extracts the cleartext statistics a simulation implies: the
// per-(user, campaign) distinct-domain counts and the per-campaign
// distinct-user counts. These are the "Actual" series of Figure 2 and the
// ground-truth inputs to the detector experiments; the privacy protocol
// estimates the same quantities from blinded sketches.
type Counters struct {
	// DomainsPerUserAd[user][campaign] = set of site IDs where the user
	// saw the campaign.
	DomainsPerUserAd map[int]map[int]map[int]bool
	// UsersPerAd[campaign] = set of users that saw the campaign.
	UsersPerAd map[int]map[int]bool
}

// Count aggregates the impression stream into counters. If weeks is
// non-nil, only impressions from those weeks are counted (the detector's
// sliding window corresponds to one week).
func Count(impressions []Impression, weeks map[int]bool) *Counters {
	c := &Counters{
		DomainsPerUserAd: make(map[int]map[int]map[int]bool),
		UsersPerAd:       make(map[int]map[int]bool),
	}
	for _, imp := range impressions {
		if weeks != nil && !weeks[imp.Week] {
			continue
		}
		ua := c.DomainsPerUserAd[imp.User]
		if ua == nil {
			ua = make(map[int]map[int]bool)
			c.DomainsPerUserAd[imp.User] = ua
		}
		ds := ua[imp.Campaign]
		if ds == nil {
			ds = make(map[int]bool)
			ua[imp.Campaign] = ds
		}
		ds[imp.Site] = true

		us := c.UsersPerAd[imp.Campaign]
		if us == nil {
			us = make(map[int]bool)
			c.UsersPerAd[imp.Campaign] = us
		}
		us[imp.User] = true
	}
	return c
}

// UserCount returns #Users(campaign).
func (c *Counters) UserCount(campaign int) int { return len(c.UsersPerAd[campaign]) }

// DomainCount returns #Domains(user, campaign).
func (c *Counters) DomainCount(user, campaign int) int {
	return len(c.DomainsPerUserAd[user][campaign])
}

// UserCountsDistribution returns the per-ad user counts as a float slice —
// the sample Users_th is estimated from.
func (c *Counters) UserCountsDistribution() []float64 {
	out := make([]float64, 0, len(c.UsersPerAd))
	for _, us := range c.UsersPerAd {
		out = append(out, float64(len(us)))
	}
	return out
}

// DomainCountsDistribution returns one user's per-ad domain counts — the
// sample Domains_th,u is estimated from.
func (c *Counters) DomainCountsDistribution(user int) []float64 {
	ads := c.DomainsPerUserAd[user]
	out := make([]float64, 0, len(ads))
	for _, ds := range ads {
		out = append(out, float64(len(ds)))
	}
	return out
}

// ActiveDomains returns the number of distinct ad-serving domains the user
// encountered — the minimum-data rule input.
func (c *Counters) ActiveDomains(user int) int {
	set := make(map[int]bool)
	for _, ds := range c.DomainsPerUserAd[user] {
		for d := range ds {
			set[d] = true
		}
	}
	return len(set)
}

// AdsSeenBy lists the campaigns a user saw.
func (c *Counters) AdsSeenBy(user int) []int {
	ads := c.DomainsPerUserAd[user]
	out := make([]int, 0, len(ads))
	for a := range ads {
		out = append(out, a)
	}
	return out
}
