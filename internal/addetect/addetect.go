// Package addetect implements the browser-extension half of eyeWnder's
// data collection (Section 5, "Browser extension"): finding display ads
// inside a page and inferring each ad's landing page WITHOUT clicking it
// (click-fraud avoidance).
//
// Ad detection follows the AdBlockPlus approach the paper adapts: a rule
// list of URL substrings and element markers identifies ad elements. The
// goal is analysis, not blocking, so detection is deliberately permissive.
//
// Landing-page detection applies the paper's three heuristics in order:
//
//  1. <a href="..."> around or inside the ad element;
//  2. onclick handlers carrying a URL (directly or via a JS call);
//  3. a URL-shaped string inside associated <script> text.
//
// A discovered URL that belongs to a known ad network is NOT resolved
// (that could constitute click fraud and would ping the delivery chain);
// the ad is then identified by its content fingerprint instead — the
// fallback the paper uses for randomized landing URLs (malicious or
// dynamically customized ads).
package addetect

import (
	"crypto/sha256"
	"encoding/hex"
	"regexp"
	"strings"

	"eyewnder/internal/htmlscan"
)

// Ad is one detected display advertisement.
type Ad struct {
	// CreativeURL is the resource the ad element loads (image/iframe
	// src), when present.
	CreativeURL string
	// LandingURL is the inferred click destination; empty when only a
	// known ad-network URL was found (never resolved, per the click-fraud
	// rule).
	LandingURL string
	// ContentID fingerprints the ad content; it identifies the same
	// creative across impressions when landing URLs are randomized.
	ContentID string
	// Method records which heuristic produced LandingURL: "href",
	// "onclick", "script", or "" when none applied.
	Method string
}

// Key returns the stable identifier the extension reports for this ad:
// the landing URL when one was inferred, otherwise the content
// fingerprint. This is the "ad URL" fed into the OPRF mapping.
func (a *Ad) Key() string {
	if a.LandingURL != "" {
		return a.LandingURL
	}
	return "content:" + a.ContentID
}

// Ruleset is the filter list driving detection.
type Ruleset struct {
	// URLSubstrings mark a resource URL as ad-delivered ("/adserver/",
	// "doubleclick", ...).
	URLSubstrings []string
	// ClassMarkers mark an element class/id as an ad slot ("ad-slot",
	// "sponsored", ...).
	ClassMarkers []string
	// AdNetworkHosts are hosts whose URLs must never be resolved; a URL
	// pointing there is delivery machinery, not a landing page.
	AdNetworkHosts []string
}

// DefaultRuleset returns a compact filter list in the spirit of the
// AdBlockPlus EasyList entries the paper's extension uses.
func DefaultRuleset() *Ruleset {
	return &Ruleset{
		URLSubstrings: []string{
			"/adserver/", "/adserv/", "/ads/", "/adx/", "/banner",
			"doubleclick", "adsystem", "adnxs", "creative/",
			"ads.", "adx", "pagead",
		},
		ClassMarkers: []string{
			"ad-slot", "ad_slot", "adbox", "ad-banner", "sponsored",
			"advert", "dfp-", "gpt-ad",
		},
		AdNetworkHosts: []string{
			"ads.", "adx", "doubleclick.net", "adnxs.com",
			"googlesyndication.com", "adsystem",
		},
	}
}

var urlRe = regexp.MustCompile(`https?://[^\s"'<>)]+`)

// Detector scans pages for ads under a ruleset.
type Detector struct {
	rules *Ruleset
}

// New returns a detector; a nil ruleset selects DefaultRuleset.
func New(rules *Ruleset) *Detector {
	if rules == nil {
		rules = DefaultRuleset()
	}
	return &Detector{rules: rules}
}

// isAdURL reports whether a resource URL matches the filter list.
func (d *Detector) isAdURL(url string) bool {
	lower := strings.ToLower(url)
	for _, sub := range d.rules.URLSubstrings {
		if strings.Contains(lower, sub) {
			return true
		}
	}
	return false
}

// isAdElement reports whether class/id markers flag the element.
func (d *Detector) isAdElement(tok *htmlscan.Token) bool {
	class, _ := tok.Attr("class")
	id, _ := tok.Attr("id")
	hay := strings.ToLower(class + " " + id)
	for _, m := range d.rules.ClassMarkers {
		if strings.Contains(hay, m) {
			return true
		}
	}
	return false
}

// IsAdNetworkURL reports whether the URL points at known ad-delivery
// infrastructure (and therefore must not be resolved).
func (d *Detector) IsAdNetworkURL(url string) bool {
	host := hostOf(url)
	for _, h := range d.rules.AdNetworkHosts {
		if strings.Contains(host, h) {
			return true
		}
	}
	return false
}

func hostOf(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}

// extractOnclickURL pulls a URL out of an onclick handler. It accepts
// direct location assignments and URL arguments to arbitrary JS calls
// (footnote 3: the handler often redirects through a function).
func extractOnclickURL(js string) string {
	if m := urlRe.FindString(js); m != "" {
		return strings.TrimRight(m, "\"');")
	}
	return ""
}

// adCandidate accumulates evidence about one ad slot while scanning.
type adCandidate struct {
	creativeURL string
	hrefURL     string
	onclickURL  string
	scriptURL   string
	content     strings.Builder
}

// Scan detects the ads in an HTML page. Detection is structural: an "ad
// region" opens when an ad-marked element or ad-URL resource appears, and
// evidence (hrefs, onclick handlers, script URLs, content) accumulates
// until the region's root element closes.
func (d *Detector) Scan(page string) []*Ad {
	sc := htmlscan.NewScanner(page)
	var ads []*Ad
	var cur *adCandidate
	depth := 0 // element nesting inside the open ad region
	var inScript bool

	flush := func() {
		if cur == nil {
			return
		}
		ads = append(ads, d.finalize(cur))
		cur = nil
		depth = 0
	}

	for tok := sc.Next(); tok != nil; tok = sc.Next() {
		switch tok.Type {
		case htmlscan.StartTag:
			src, _ := tok.Attr("src")
			href, _ := tok.Attr("href")
			onclick, _ := tok.Attr("onclick")
			opensRegion := d.isAdElement(tok) ||
				(src != "" && d.isAdURL(src)) ||
				(href != "" && d.isAdURL(href) && tok.Name == "a")
			if cur == nil && opensRegion {
				cur = &adCandidate{}
			}
			if cur != nil {
				if src != "" && d.isAdURL(src) && cur.creativeURL == "" {
					cur.creativeURL = src
				}
				if href != "" && cur.hrefURL == "" && tok.Name == "a" {
					cur.hrefURL = href
				}
				if onclick != "" && cur.onclickURL == "" {
					if u := extractOnclickURL(onclick); u != "" {
						cur.onclickURL = u
					}
				}
				if !tok.SelfClosing && tok.Name != "img" && tok.Name != "br" {
					depth++
				}
				if tok.Name == "script" && !tok.SelfClosing {
					inScript = true
				}
			}
		case htmlscan.EndTag:
			if cur != nil {
				if tok.Name == "script" {
					inScript = false
				}
				depth--
				if depth <= 0 {
					flush()
				}
			}
		case htmlscan.Text:
			if cur != nil {
				if inScript && cur.scriptURL == "" {
					if m := urlRe.FindString(tok.Data); m != "" {
						cur.scriptURL = strings.TrimRight(m, "\"');")
					}
				}
				if !inScript {
					cur.content.WriteString(strings.TrimSpace(tok.Data))
				}
			}
		}
	}
	flush()
	return ads
}

// finalize applies the landing-page heuristics in the paper's order and
// builds the Ad record.
func (d *Detector) finalize(c *adCandidate) *Ad {
	ad := &Ad{CreativeURL: c.creativeURL}
	// Heuristic order: href, onclick, script-text URL.
	type try struct{ url, method string }
	for _, t := range []try{
		{c.hrefURL, "href"},
		{c.onclickURL, "onclick"},
		{c.scriptURL, "script"},
	} {
		if t.url == "" {
			continue
		}
		if d.IsAdNetworkURL(t.url) {
			// Delivery-chain URL: refrain from resolving (click fraud).
			continue
		}
		ad.LandingURL = t.url
		ad.Method = t.method
		break
	}
	// Content fingerprint for randomized-landing-page identification.
	h := sha256.New()
	h.Write([]byte(c.creativeURL))
	h.Write([]byte{0})
	h.Write([]byte(c.content.String()))
	ad.ContentID = hex.EncodeToString(h.Sum(nil)[:16])
	return ad
}
