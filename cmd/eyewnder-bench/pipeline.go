package main

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"

	"eyewnder/internal/backend"
	"eyewnder/internal/blind"
	"eyewnder/internal/campaign"
	"eyewnder/internal/client"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
	"eyewnder/internal/store"
	"eyewnder/internal/vec"
	"eyewnder/internal/wire"
)

// pipelineResult is one stage's measurement. MaxProcs records the
// GOMAXPROCS the row actually ran under: rows promoted from another
// machine's artifact (see -promote) keep their own stamp, and the
// regression gate refuses to compare rows whose parallelism differs
// from the fresh run's — a many-core baseline number is not a bound a
// single-core rerun could honestly be held to, and vice versa.
type pipelineResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MaxProcs    int     `json:"maxprocs,omitempty"`
}

// pipelineReport is the BENCH_pipeline.json schema. Baseline is carried
// forward from a previous report (see -baseline) so the perf trajectory
// of the hot path is tracked across PRs in one committed artifact.
// BaselineMaxProcs is the loaded baseline's report-level stamp, the
// fallback for baseline rows recorded before per-row stamps existed.
type pipelineReport struct {
	Schema           string                    `json:"schema"`
	Go               string                    `json:"go"`
	MaxProcs         int                       `json:"maxprocs"`
	VecKernel        string                    `json:"vec_kernel,omitempty"`
	Benchmarks       map[string]pipelineResult `json:"benchmarks"`
	Baseline         map[string]pipelineResult `json:"baseline,omitempty"`
	BaselineMaxProcs int                       `json:"baseline_maxprocs,omitempty"`
}

func measure(fn func(b *testing.B)) pipelineResult {
	r := testing.Benchmark(fn)
	return pipelineResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		MaxProcs:    runtime.GOMAXPROCS(0),
	}
}

// runPipeline benchmarks every stage of the privacy hot path — sketch
// update/query, report (de)serialization, report ingestion over loopback
// TCP (JSON vs streamed), same-round merge contention (locked vs
// striped), blinding-vector computation, aggregate merge, and the
// back-end close-round enumeration — and writes the results to outPath.
// With checkPct/checkNsPct > 0 it then gates against the baseline (the
// CI regression gate).
func runPipeline(outPath, baselinePath string, checkPct, checkNsPct float64) error {
	rep := &pipelineReport{
		Schema:     "eyewnder/bench-pipeline/v1",
		Go:         runtime.Version(),
		MaxProcs:   runtime.GOMAXPROCS(0),
		VecKernel:  vec.Active(),
		Benchmarks: map[string]pipelineResult{},
	}
	fmt.Fprintf(os.Stderr, "pipeline: vec kernels: %s, GOMAXPROCS=%d\n", rep.VecKernel, rep.MaxProcs)
	if baselinePath != "" {
		var prev pipelineReport
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
		if err := json.Unmarshal(raw, &prev); err != nil {
			return fmt.Errorf("parsing baseline: %w", err)
		}
		rep.Baseline = prev.Benchmarks
		rep.BaselineMaxProcs = prev.MaxProcs
	}

	// Paper geometry: ε = δ = 0.001 (d=7, w=2719 ≈ 19k cells).
	newCMS := func() *sketch.CMS {
		c, err := sketch.New(0.001, 0.001)
		if err != nil {
			panic(err)
		}
		return c
	}
	key := []byte("https://ads.example.com/creative/123456")

	fmt.Fprintln(os.Stderr, "pipeline: cms update/query ...")
	rep.Benchmarks["cms_update"] = measure(func(b *testing.B) {
		c := newCMS()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Update(key)
		}
	})
	rep.Benchmarks["cms_query"] = measure(func(b *testing.B) {
		c := newCMS()
		c.Update(key)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Query(key)
		}
	})

	// generic reruns a benchmark with the vec dispatch forced onto the
	// pure-Go kernels — the same code a `purego` build selects — so every
	// SIMD-backed row gets a paired *_purego row out of one binary and the
	// committed report carries the kernels' measured win on the recording
	// host. (ForceGeneric is safe here: testing.Benchmark joins its
	// goroutine before the deferred restore runs.)
	generic := func(fn func(b *testing.B)) pipelineResult {
		vec.ForceGeneric(true)
		defer vec.ForceGeneric(false)
		return measure(fn)
	}

	// The rows measure the encode/decode path the way the repeat callers
	// run it — AppendBinary into a reused buffer, UnmarshalBinary into a
	// reused receiver — so the tracked number is the (SIMD-dispatched)
	// cell-block transcode, not the allocator: a fresh 152 KB allocation
	// per op costs more than the encode itself and would bury any kernel
	// change in GC noise.
	fmt.Fprintln(os.Stderr, "pipeline: report marshal/unmarshal (amortized buffers) ...")
	marshalBench := func(b *testing.B) {
		c := newCMS()
		// Warm the scratch buffer in setup: the steady state is 0
		// allocs/op exactly, not a one-time allocation divided by b.N
		// (which jitters with the iteration count and trips the tight
		// alloc/bytes gate on noise).
		scratch, err := c.AppendBinary(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scratch, err = c.AppendBinary(scratch[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	unmarshalBench := func(b *testing.B) {
		c := newCMS()
		data, err := c.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var d sketch.CMS
		// Same: the receiver's cell slice is allocated once, in setup.
		if err := d.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.UnmarshalBinary(data); err != nil {
				b.Fatal(err)
			}
		}
	}
	rep.Benchmarks["cms_marshal"] = measure(marshalBench)
	rep.Benchmarks["cms_marshal_purego"] = generic(marshalBench)
	rep.Benchmarks["cms_unmarshal"] = measure(unmarshalBench)
	rep.Benchmarks["cms_unmarshal_purego"] = generic(unmarshalBench)

	fmt.Fprintln(os.Stderr, "pipeline: blinding vector (16-user roster, 5k cells), HMAC vs AES-CTR ...")
	roster, err := blind.NewRoster(group.P256(), 16, rand.Reader)
	if err != nil {
		return err
	}
	rep.Benchmarks["blind_vector_5k"] = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			roster.Parties[0].Blinding(uint64(i), 5000)
		}
	})
	rosterAES, err := blind.NewRosterKeystream(group.P256(), 16, rand.Reader, blind.KeystreamAESCTR)
	if err != nil {
		return err
	}
	aesBench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rosterAES.Parties[0].Blinding(uint64(i), 5000)
		}
	}
	rep.Benchmarks["blind_aesctr"] = measure(aesBench)
	rep.Benchmarks["blind_aesctr_purego"] = generic(aesBench)

	fmt.Fprintln(os.Stderr, "pipeline: aggregate merge ...")
	mergeBench := func(b *testing.B) {
		dst, src := newCMS(), newCMS()
		src.Update(key)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dst.Merge(src); err != nil {
				b.Fatal(err)
			}
		}
	}
	rep.Benchmarks["cms_merge"] = measure(mergeBench)
	rep.Benchmarks["cms_merge_purego"] = generic(mergeBench)

	fmt.Fprintln(os.Stderr, "pipeline: report ingestion, JSON vs streamed (loopback TCP) ...")
	if err := benchIngestion(rep, newCMS, key); err != nil {
		return err
	}

	fmt.Fprintln(os.Stderr, "pipeline: same-round merge contention, locked vs striped ...")
	if err := benchRoundContention(rep); err != nil {
		return err
	}

	fmt.Fprintln(os.Stderr, "pipeline: durable round store, WAL append + crash recovery ...")
	if err := benchStore(rep, newCMS); err != nil {
		return err
	}

	fmt.Fprintln(os.Stderr, "pipeline: end-to-end ingest, batched stream into a durable back-end ...")
	if err := benchE2EIngest(rep); err != nil {
		return err
	}

	fmt.Fprintln(os.Stderr, "pipeline: multi-campaign ingest, 8 campaigns multiplexed over one stream ...")
	if err := benchMultiCampaignIngest(rep); err != nil {
		return err
	}

	fmt.Fprintln(os.Stderr, "pipeline: close round (8 reports, 20k-ID enumeration) ...")
	params := privacy.Params{Epsilon: 0.001, Delta: 0.001, IDSpace: 20000, Suite: group.P256()}
	reports := make([]*privacy.Report, len(roster.Parties[:8]))
	for u := 0; u < len(reports); u++ {
		cms, err := params.NewSketch()
		if err != nil {
			return err
		}
		var k [8]byte
		for a := 0; a < 50; a++ {
			binary.LittleEndian.PutUint64(k[:], uint64((u*37+a*101)%int(params.IDSpace)))
			cms.Update(k[:])
		}
		cells := cms.FlatCells()
		if err := blind.ApplyBlinding(cells, roster.Parties[u].Blinding(1, len(cells))); err != nil {
			return err
		}
		reports[u] = &privacy.Report{User: u, Round: 1, Sketch: cms}
	}
	// A full 16-party cancellation needs all parties; use the adjustment
	// round for the 8 absentees, exactly as the back-end would.
	missing := []int{8, 9, 10, 11, 12, 13, 14, 15}
	rep.Benchmarks["close_round"] = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			agg, err := privacy.NewAggregator(privacy.UnversionedConfig(params, 16), 1)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range reports {
				if err := agg.Add(r); err != nil {
					b.Fatal(err)
				}
			}
			cells := reports[0].Sketch.Cells()
			for u := 0; u < 8; u++ {
				adj, err := roster.Parties[u].Adjustment(1, cells, missing)
				if err != nil {
					b.Fatal(err)
				}
				if err := agg.ApplyAdjustments(adj); err != nil {
					b.Fatal(err)
				}
			}
			final, err := agg.Finalize()
			if err != nil {
				b.Fatal(err)
			}
			if counts := privacy.UserCounts(final, params); len(counts) == 0 {
				b.Fatal("close round recovered no counts")
			}
		}
	})

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("pipeline benchmarks written to %s\n", outPath)
	names := make([]string, 0, len(rep.Benchmarks))
	for name := range rep.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := rep.Benchmarks[name]
		line := fmt.Sprintf("  %-22s %12.1f ns/op %8d allocs/op", name, r.NsPerOp, r.AllocsPerOp)
		if base, ok := rep.Baseline[name]; ok && r.NsPerOp > 0 {
			line += fmt.Sprintf("   (%.2fx vs baseline)", base.NsPerOp/r.NsPerOp)
		}
		fmt.Println(line)
	}
	if locked, ok := rep.Benchmarks["round_merge_locked"]; ok {
		if striped, ok := rep.Benchmarks["round_merge_striped"]; ok && striped.NsPerOp > 0 {
			fmt.Printf("  same-round contention: striped merge %.2fx vs single round lock (GOMAXPROCS=%d)\n",
				locked.NsPerOp/striped.NsPerOp, rep.MaxProcs)
		}
	}
	if stream, ok := rep.Benchmarks["submit_report_stream"]; ok {
		if batched, ok := rep.Benchmarks["submit_report_stream_batched"]; ok && batched.NsPerOp > 0 {
			fmt.Printf("  batched acks: %.2fx vs per-frame JSON ack (%d -> %d allocs/op, %d -> %d B/op)\n",
				stream.NsPerOp/batched.NsPerOp,
				stream.AllocsPerOp, batched.AllocsPerOp, stream.BytesPerOp, batched.BytesPerOp)
		}
	}
	if hmacKS, ok := rep.Benchmarks["blind_vector_5k"]; ok {
		if aesKS, ok := rep.Benchmarks["blind_aesctr"]; ok && aesKS.NsPerOp > 0 {
			fmt.Printf("  blinding keystream: aes-ctr %.2fx vs hmac-sha256\n", hmacKS.NsPerOp/aesKS.NsPerOp)
		}
	}
	for _, name := range []string{"cms_merge", "cms_marshal", "cms_unmarshal", "blind_aesctr"} {
		asm, ok1 := rep.Benchmarks[name]
		gen, ok2 := rep.Benchmarks[name+"_purego"]
		if ok1 && ok2 && asm.NsPerOp > 0 {
			fmt.Printf("  simd [%s]: %-14s %.2fx vs pure-Go kernels\n", rep.VecKernel, name, gen.NsPerOp/asm.NsPerOp)
		}
	}
	if e2e, ok := rep.Benchmarks["e2e_ingest_durable"]; ok && e2e.NsPerOp > 0 {
		fmt.Printf("  e2e durable ingest: %.0f reports/min (GOMAXPROCS=%d)\n", 60e9/e2e.NsPerOp, rep.MaxProcs)
	}
	if mc, ok := rep.Benchmarks["multi_campaign_ingest"]; ok && mc.NsPerOp > 0 {
		fmt.Printf("  multi-campaign ingest (8 campaigns, one stream): %.0f reports/min (GOMAXPROCS=%d)\n", 60e9/mc.NsPerOp, rep.MaxProcs)
	}
	if checkPct > 0 || checkNsPct > 0 {
		return checkRegressions(rep, checkPct, checkNsPct)
	}
	return nil
}

// discardSink consumes streamed report frames, touching the cells so the
// decode cannot be optimized away.
type discardSink struct{ sum uint64 }

func (s *discardSink) ConsumeReport(f *wire.ReportFrame) error {
	if len(f.Cells) > 0 {
		s.sum += f.Cells[0] + f.Cells[len(f.Cells)-1]
	}
	return nil
}

// benchIngestion measures one report's full submit round trip over
// loopback TCP for both ingestion paths — the JSON envelope (base64
// sketch inside a parsed message, then UnmarshalBinary) and the streamed
// binary frame (cells read straight into pooled slices). Client and
// server run in-process, so allocs/op is the whole path's allocation
// bill; the streamed path must come in far below the JSON one.
func benchIngestion(rep *pipelineReport, newCMS func() *sketch.CMS, key []byte) error {
	sink := &discardSink{}
	handler := func(m *wire.Msg) (string, interface{}, error) {
		if m.Type != wire.TypeSubmitReport {
			return "", nil, fmt.Errorf("bench: unexpected message %q", m.Type)
		}
		var req wire.SubmitReportReq
		if err := m.Decode(&req); err != nil {
			return "", nil, err
		}
		var cms sketch.CMS
		if err := cms.UnmarshalBinary(req.Sketch); err != nil {
			return "", nil, err
		}
		sink.sum += cms.N()
		return wire.TypeSubmitReportOK, struct{}{}, nil
	}
	// The ack batch is pinned (not adaptive): the adaptive cadence reacts
	// to idle flushes, which are timing-dependent, and the regression
	// gate treats allocs/bytes per op as machine-independent — so the
	// tracked row measures the deterministic fixed-k path.
	srv, err := wire.ServeWithSinkOpts("127.0.0.1:0", handler, sink,
		wire.StreamOpts{AckBatch: wire.DefaultAckBatch})
	if err != nil {
		return err
	}
	defer srv.Close()
	cli, err := wire.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer cli.Close()

	cms := newCMS()
	cms.Update(key)
	raw, err := cms.MarshalBinary()
	if err != nil {
		return err
	}
	rep.Benchmarks["submit_report_json"] = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := cli.Do(wire.TypeSubmitReport,
				wire.SubmitReportReq{User: 1, Round: 1, Sketch: raw}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	frame := &wire.ReportFrame{
		User: 1, Round: 1,
		D: cms.Depth(), W: cms.Width(), N: cms.N(), Seed: cms.Seed(),
		Cells: cms.FlatCells(),
	}
	rep.Benchmarks["submit_report_stream"] = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := cli.SubmitReportFrame(frame); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Batched acks + pipelining, on a dedicated connection so the legacy
	// row above keeps measuring the per-frame JSON ack round trip: the
	// client keeps a window of frames in flight, the server folds frame k
	// while decoding frame k+1 and answers once per ack batch, so the
	// JSON ack marshal/parse — the streamed path's remaining per-report
	// allocation — disappears along with the per-frame stall.
	cliBatched, err := wire.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer cliBatched.Close()
	rep.Benchmarks["submit_report_stream_batched"] = measure(func(b *testing.B) {
		s, err := cliBatched.OpenReportStream(0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Submit(frame); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	})
	return nil
}

// benchStore measures the durable round store's two sides of the
// crash-safety bargain.
//
// wal_append is the hot-path cost a durable back-end adds to every
// streamed report: encoding the report event as a CRC-framed WAL record
// (the frame preamble plus the raw cell block, checksummed) — measured
// against io.Discard so the row tracks the CPU cost of the append path
// deterministically, independent of the runner's disk. The fsync is
// deliberately excluded: it is group-committed per ack window, and disk
// latencies on shared CI runners would drown the regression signal.
//
// recover_round is the restart cost: open a data dir whose WAL holds a
// 64-report round at paper geometry and replay it back into round state
// (cells, weight, reported bitmap), i.e. one full crash recovery per
// op.
func benchStore(rep *pipelineReport, newCMS func() *sketch.CMS) error {
	cms := newCMS()
	cells := cms.FlatCells()
	for i := range cells {
		cells[i] = uint64(i) * 2_654_435_761
	}
	d, w := cms.Depth(), cms.Width()
	// One long-lived encoder, exactly like the Disk store's: the encode
	// scratch lives in it, so the append path is allocation-free (the row
	// used to carry 3 allocs/op from stack arrays escaping through the
	// io.Writer interface).
	var enc store.RecordEncoder
	rep.Benchmarks["wal_append"] = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := enc.Report(io.Discard, 0, 1, 1, d, w, 50, 0, 0, 0, cells); err != nil {
				b.Fatal(err)
			}
		}
	})

	dir, err := os.MkdirTemp("", "eyewnder-bench-wal")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	const reporters = 64
	st, err := store.Open(dir, store.Options{Sync: store.SyncOff})
	if err != nil {
		return err
	}
	if err := st.AppendOpen(0, 1, reporters, d, w, 0, 0, 0, 0); err != nil {
		return err
	}
	for u := 0; u < reporters; u++ {
		if err := st.AppendReport(0, 1, u, d, w, 50, 0, 0, 0, cells); err != nil {
			return err
		}
	}
	if err := st.Close(); err != nil {
		return err
	}
	// Every Open starts a fresh (empty) segment for its own appends;
	// remove anything setup did not create after each iteration, so op
	// N replays exactly the same files as op 1 (allocs/op must not
	// drift with b.N — the regression gate treats it as deterministic).
	setupFiles := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		setupFiles[e.Name()] = true
	}
	rep.Benchmarks["recover_round"] = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rst, err := store.Open(dir, store.Options{Sync: store.SyncOff})
			if err != nil {
				b.Fatal(err)
			}
			rounds := rst.Rounds()
			if len(rounds) != 1 || rounds[0].N != 50*reporters {
				b.Fatalf("recovery dropped state: %d rounds", len(rounds))
			}
			if err := rst.Close(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			entries, err := os.ReadDir(dir)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range entries {
				if !setupFiles[e.Name()] {
					os.Remove(filepath.Join(dir, e.Name()))
				}
			}
			b.StartTimer()
		}
	})
	return nil
}

// benchE2EIngest is the whole system under one number: a batched report
// stream over loopback TCP into a real back-end running on a durable
// round store, so every op pays frame encode, wire transfer, pooled
// decode, config-version check, WAL append, group-committed sync (per
// ack window) and the striped fold. It uses the load harness's geometry
// (ε = δ = 0.01, 1360 cells ≈ 11 KB/frame) rather than the paper's 19k
// cells so the WAL the ramp-up writes stays small; reports/min at this
// row is what `eyewnder-sim -load` reports as its summary, and the
// ROADMAP's ≥1M reports/min target reads directly off it on a
// many-core host (60e9 / ns_per_op).
func benchE2EIngest(rep *pipelineReport) error {
	dir, err := os.MkdirTemp("", "eyewnder-bench-e2e")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	// Users bounds the distinct reporters one round accepts; the ramp-up
	// plus the timed run submit one report per distinct user, so give the
	// round plenty of headroom.
	const users = 1 << 21
	params := privacy.Params{Epsilon: 0.01, Delta: 0.01, IDSpace: 20000, Suite: group.P256()}
	be, err := backend.New(backend.Config{
		Params:         params,
		Users:          users,
		UsersEstimator: detector.EstimatorMean,
		Store:          st,
	})
	if err != nil {
		return err
	}
	defer be.Close()
	srv, err := be.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	cli, err := wire.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer cli.Close()
	cf, err := cli.Handshake()
	if err != nil {
		return err
	}
	rcfg, err := client.RoundConfigFromFrame(cf)
	if err != nil {
		return err
	}
	cms, err := rcfg.Params.NewSketch()
	if err != nil {
		return err
	}
	cells := cms.FlatCells()
	for i := range cells {
		cells[i] = uint64(i) * 2_654_435_761
	}
	frame := &wire.ReportFrame{
		Round: 1,
		D:     cms.Depth(), W: cms.Width(), N: 50, Seed: cms.Seed(),
		Keystream:     byte(rcfg.Params.Keystream),
		ConfigVersion: rcfg.Version,
		Cells:         cells,
	}
	next := 0 // distinct user per submitted report, across ramp-up reruns
	rep.Benchmarks["e2e_ingest_durable"] = measure(func(b *testing.B) {
		s, err := cli.OpenReportStream(0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame.User = next % users
			next++
			if err := s.Submit(frame); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	})
	return nil
}

// benchMultiCampaignIngest measures the multi-tenant hot path: one
// batched connection carrying report frames for eight concurrent
// campaigns with distinct geometries, demultiplexed by the binary
// preamble tag and folded into eight independent per-campaign rounds.
// The op is one submitted frame (campaigns round-robin across submits),
// so the row is directly comparable with e2e_ingest_durable minus the
// WAL: any regression in the campaign routing, per-campaign config
// resolution, or keyed round lookup shows up here.
func benchMultiCampaignIngest(rep *pipelineReport) error {
	const (
		users     = 1 << 21
		campaigns = 8
	)
	params := privacy.Params{Epsilon: 0.01, Delta: 0.01, IDSpace: 20000, Suite: group.P256()}
	be, err := backend.New(backend.Config{
		Params:         params,
		Users:          users,
		UsersEstimator: detector.EstimatorMean,
	})
	if err != nil {
		return err
	}
	defer be.Close()
	for i := 1; i <= campaigns; i++ {
		if err := be.AddCampaign(campaign.Campaign{
			ID:      uint32(i),
			Name:    fmt.Sprintf("bench-%d", i),
			Epsilon: 0.01 * float64(1+(i-1)%4),
			Delta:   0.01,
			IDSpace: uint64(20000 + 2000*i),
		}); err != nil {
			return err
		}
	}
	srv, err := be.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	cli, err := wire.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer cli.Close()
	cf, err := cli.Handshake()
	if err != nil {
		return err
	}
	rcfg, err := client.RoundConfigFromFrame(cf)
	if err != nil {
		return err
	}
	dir, err := cli.CampaignDirectory()
	if err != nil {
		return err
	}
	if len(dir) != campaigns {
		return fmt.Errorf("directory advertises %d campaigns, want %d", len(dir), campaigns)
	}
	// One prototype frame per campaign, sized for that campaign's
	// geometry; the timed loop only rotates the user and campaign tag.
	frames := make([]*wire.ReportFrame, campaigns)
	for i, c := range dir {
		cp := c.Params(rcfg.Params)
		cms, err := cp.NewSketch()
		if err != nil {
			return err
		}
		cells := cms.FlatCells()
		for j := range cells {
			cells[j] = uint64(j) * 2_654_435_761
		}
		frames[i] = &wire.ReportFrame{
			Campaign: c.ID, Round: 1,
			D: cms.Depth(), W: cms.Width(), N: 50, Seed: cms.Seed(),
			Keystream:     byte(cp.Keystream),
			ConfigVersion: rcfg.Version,
			Cells:         cells,
		}
	}
	next := 0
	rep.Benchmarks["multi_campaign_ingest"] = measure(func(b *testing.B) {
		s, err := cli.OpenReportStream(0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := frames[next%campaigns]
			f.User = next % users
			next++
			if err := s.Submit(f); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	})
	return nil
}

// benchRoundContention measures many reporters folding into the SAME
// round concurrently — the workload that used to serialize on one round
// lock. The locked variant pins the aggregator to a single merge stripe
// (exactly the old behaviour); the striped variant uses the default
// per-row striping. On a many-core host the striped merge scales with
// GOMAXPROCS while the locked one cannot; the ratio of the two entries
// is the tracked scaling number. maxprocs in the report header records
// the parallelism this run actually had.
func benchRoundContention(rep *pipelineReport) error {
	const (
		reporters = 64
		workers   = 8
	)
	params := privacy.Params{Epsilon: 0.001, Delta: 0.001, IDSpace: 20000, Suite: group.P256()}
	reports := make([]*privacy.Report, reporters)
	for u := range reports {
		cms, err := params.NewSketch()
		if err != nil {
			return err
		}
		var k [8]byte
		for a := 0; a < 50; a++ {
			binary.LittleEndian.PutUint64(k[:], uint64((u*37+a*101)%int(params.IDSpace)))
			cms.Update(k[:])
		}
		reports[u] = &privacy.Report{User: u, Round: 1, Sketch: cms}
	}
	run := func(stripes int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				agg, err := privacy.NewAggregatorStripes(privacy.UnversionedConfig(params, reporters), 1, stripes)
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				per := reporters / workers
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(batch []*privacy.Report) {
						defer wg.Done()
						for _, r := range batch {
							if err := agg.Add(r); err != nil {
								panic(err)
							}
						}
					}(reports[w*per : (w+1)*per])
				}
				wg.Wait()
			}
		}
	}
	rep.Benchmarks["round_merge_locked"] = measure(run(1))
	rep.Benchmarks["round_merge_striped"] = measure(run(0))
	return nil
}

// promoteReport merges a re-recorded pipeline report (e.g. the CI
// contention job's many-core artifact) into the committed baseline at
// dstPath: every benchmark row present in the source replaces its
// counterpart (rows can be restricted with `only`), and the source's
// toolchain/maxprocs stamp is adopted so the committed report says
// where its numbers came from. The destination's own `baseline` block
// is left untouched — promotion refreshes the tracked numbers, not the
// historical comparison. This is how the 1-core `round_merge_*`
// baselines get replaced by many-core measurements without hand-editing
// JSON.
func promoteReport(srcPath, dstPath string, only []string) error {
	var src, dst pipelineReport
	for _, f := range []struct {
		path string
		into *pipelineReport
	}{{srcPath, &src}, {dstPath, &dst}} {
		raw, err := os.ReadFile(f.path)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, f.into); err != nil {
			return fmt.Errorf("parsing %s: %w", f.path, err)
		}
	}
	if dst.Benchmarks == nil {
		dst.Benchmarks = map[string]pipelineResult{}
	}
	wanted := map[string]bool{}
	for _, name := range only {
		if name != "" {
			wanted[name] = true
		}
	}
	promoted := make([]string, 0, len(src.Benchmarks))
	for name, row := range src.Benchmarks {
		if len(wanted) > 0 && !wanted[name] {
			continue
		}
		if _, ok := dst.Benchmarks[name]; !ok && len(wanted) == 0 {
			continue // full promote only refreshes rows the baseline tracks
		}
		dst.Benchmarks[name] = row
		promoted = append(promoted, name)
	}
	for name := range wanted {
		if _, ok := src.Benchmarks[name]; !ok {
			return fmt.Errorf("promote: row %q not in %s", name, srcPath)
		}
	}
	if len(promoted) == 0 {
		return fmt.Errorf("promote: no rows of %s match %s", srcPath, dstPath)
	}
	dst.Go, dst.MaxProcs, dst.VecKernel = src.Go, src.MaxProcs, src.VecKernel
	out, err := json.MarshalIndent(&dst, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(dstPath, out, 0o644); err != nil {
		return err
	}
	sort.Strings(promoted)
	fmt.Printf("promoted %d row(s) from %s into %s (go %s, maxprocs %d):\n",
		len(promoted), srcPath, dstPath, dst.Go, dst.MaxProcs)
	for _, name := range promoted {
		fmt.Printf("  %s\n", name)
	}
	return nil
}

// trackedMetrics lists, per metric, whether it is deterministic across
// machines. The CI gate fails on regressions in deterministic metrics
// (allocs, bytes) at the tight threshold; ns/op varies with the runner's
// hardware and load, so it gets its own (looser) threshold. A baseline
// row with no counterpart in the fresh report is itself a failure:
// renaming or dropping a benchmark must be an explicit baseline update,
// never a silent way past the gate.
func checkRegressions(rep *pipelineReport, pct, nsPct float64) error {
	var failures []string
	for name := range rep.Baseline {
		if _, ok := rep.Benchmarks[name]; !ok {
			failures = append(failures, fmt.Sprintf(
				"%s: baseline row missing from the fresh report (renamed or deleted benchmark? update the committed baseline explicitly)", name))
		}
	}
	for name, cur := range rep.Benchmarks {
		base, ok := rep.Baseline[name]
		if !ok {
			continue // new benchmark: nothing to regress against
		}
		// Refuse to compare rows recorded under different parallelism: a
		// many-core baseline is not a bound a single-core rerun can be
		// held to (nor the reverse). Rows predating per-row stamps fall
		// back to their report's header stamp.
		baseMax, curMax := base.MaxProcs, cur.MaxProcs
		if baseMax == 0 {
			baseMax = rep.BaselineMaxProcs
		}
		if curMax == 0 {
			curMax = rep.MaxProcs
		}
		if baseMax > 0 && curMax > 0 && baseMax != curMax {
			failures = append(failures, fmt.Sprintf(
				"%s: baseline recorded at GOMAXPROCS=%d but this run used %d — not comparable; rerun with GOMAXPROCS=%d or re-promote the baseline from a matching host",
				name, baseMax, curMax, baseMax))
			continue
		}
		check := func(metric string, got, want float64, threshold float64) {
			if threshold <= 0 || want <= 0 {
				return
			}
			if got > want*(1+threshold/100) {
				failures = append(failures, fmt.Sprintf(
					"%s %s regressed %.1f%% (%.1f -> %.1f, threshold %.0f%%)",
					name, metric, 100*(got/want-1), want, got, threshold))
			}
		}
		check("allocs/op", float64(cur.AllocsPerOp), float64(base.AllocsPerOp), pct)
		check("bytes/op", float64(cur.BytesPerOp), float64(base.BytesPerOp), pct)
		check("ns/op", cur.NsPerOp, base.NsPerOp, nsPct)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", f)
		}
		return fmt.Errorf("pipeline: %d benchmark regression(s) beyond threshold", len(failures))
	}
	fmt.Println("pipeline: no benchmark regressions beyond threshold")
	return nil
}
