package blind

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
)

// aesFactorsPerFill is how many 64-bit blinding factors one refill of the
// AES-CTR keystream yields: the stream is advanced 64 bytes (four AES
// blocks) at a time, i.e. eight factors per refill — twice HMAC-SHA256's
// four — and the bulk XORKeyStream call rides the pipelined AES-NI
// assembly instead of paying per-block dispatch.
const aesFactorsPerFill = 64 / 8

// aesBlocksPerFill is the AES block count of one refill (4 × 16 bytes).
const aesBlocksPerFill = 4

// aesKeyLabel domain-separates the AES-CTR expansion key from the raw
// pairwise secret (which also keys the HMAC suite): both suites may exist
// in one deployment history, and their keystreams must share no structure.
const aesKeyLabel = "eyewnder/blind/aes-ctr/v1"

// aesZero is the all-zero plaintext XORKeyStream turns into raw keystream.
var aesZero [aesBlocksPerFill * aes.BlockSize]byte

// aesKeystream is the KeystreamAESCTR expansion of a pairwise key into
// per-cell blinding factors:
//
//	K      = SHA-256(aesKeyLabel ‖ k_ij)
//	stream = AES-256-CTR(K, IV = round ‖ block counter)   (both big-endian)
//	factor_m = little-endian word m of the stream
//
// Like the HMAC keystream it is counter-mode seekable: init can position
// the stream at any cell, which is what lets a future layout stripe one
// pair's cells across workers. The cipher state is built once in init and
// reused for every refill, so factor generation is allocation-free after
// keying (asserted by TestAESKeystreamZeroAllocs).
//
// COMPATIBILITY: this expansion defines the suite-0x01 blinding values.
// All parties in a round must run the same suite or their pairwise terms
// would not cancel; see the Keystream type.
type aesKeystream struct {
	stream cipher.Stream
	buf    [aesBlocksPerFill * aes.BlockSize]byte // current expanded run
	word   int                                    // next word within buf; aesFactorsPerFill = refill
}

// init keys the stream for (key, round) and positions it at cell `cell`.
func (k *aesKeystream) init(key []byte, round uint64, cell int) {
	h := sha256.New()
	h.Write([]byte(aesKeyLabel))
	h.Write(key)
	var aesKey [sha256.Size]byte
	h.Sum(aesKey[:0])
	block, err := aes.NewCipher(aesKey[:])
	if err != nil {
		// 32-byte keys are always valid AES-256 keys.
		panic("blind: aes keying: " + err.Error())
	}
	fill := uint64(cell) / aesFactorsPerFill
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint64(iv[:8], round)
	binary.BigEndian.PutUint64(iv[8:], fill*aesBlocksPerFill)
	k.stream = cipher.NewCTR(block, iv[:])
	k.word = int(uint64(cell) % aesFactorsPerFill)
	k.fill()
}

// fill advances the CTR stream by one 64-byte run into k.buf.
func (k *aesKeystream) fill() {
	k.stream.XORKeyStream(k.buf[:], aesZero[:])
}

// next returns the following 64-bit blinding factor.
func (k *aesKeystream) next() uint64 {
	if k.word == aesFactorsPerFill {
		k.fill()
		k.word = 0
	}
	v := binary.LittleEndian.Uint64(k.buf[8*k.word:])
	k.word++
	return v
}

// accumulate folds the remainder of the stream into out, adding when add
// is true and subtracting otherwise (two's-complement == mod-2⁶⁴).
func (k *aesKeystream) accumulate(out []uint64, add bool) {
	if add {
		for m := range out {
			out[m] += k.next()
		}
	} else {
		for m := range out {
			out[m] -= k.next()
		}
	}
}
