// Package store is the back-end's durable round store: an append-only
// write-ahead log (WAL) of binary round events — round open, report
// folded, adjustment uploaded, round closed, user registered — with
// periodic snapshots of the full round state and crash recovery that
// replays WAL-after-snapshot into byte-identical round state.
//
// The aggregation protocol only works if a round completes: each user's
// report is blinded noise on its own, and the blinding factors cancel
// only once every roster member's contribution is folded. An aggregator
// crash mid-round would therefore silently destroy the work of the
// entire user population for that round. The store makes the round
// survive the process: every event is logged *before* it mutates the
// in-memory aggregate, and recovery rebuilds the aggregate — including
// the reported-bitmap, the adjustment shares, and the blinding-suite
// byte — exactly as it was, so the aggregator's duplicate-report and
// suite-mismatch invariants keep holding across restarts.
//
// # Durability model
//
// Appends are buffered; Sync is the durability barrier, implemented as
// a group commit: concurrent Sync callers coalesce onto one fsync that
// covers everything appended so far. The back-end calls Sync exactly
// where the wire protocol acknowledges — once per batched-ack window,
// not once per report — so the ack batch k amortizes the fsync the same
// way it amortizes the ack write (see wire.ReportDurability).
//
// On-disk layout (one directory per back-end):
//
//	wal-<gen>.log    8-byte magic, then CRC-framed records (record.go)
//	snap-<gen>.snap  full round+roster state at some instant (snapshot.go)
//
// A snapshot at generation G is written only after the WAL has rotated
// to segment G, so snap-G is a superset of every record in segments
// < G and possibly includes a prefix of segment G. Recovery loads the
// newest valid snapshot and replays every segment with generation ≥ its
// own; replay is idempotent (a record already reflected in the snapshot
// is rejected by the same duplicate/closed checks the live aggregator
// applies), which is what makes the fuzzy snapshot safe. Torn or
// corrupt records — a crash mid-append leaves one, at a segment's tail
// — fail their CRC and cleanly end that segment's replay.
package store

import "eyewnder/internal/obs"

// RoundState is one round's complete durable state: everything needed
// to rebuild the back-end's in-memory aggregator byte-identically. It
// is the unit both snapshots and recovery speak in.
type RoundState struct {
	// Campaign is the counting campaign the round belongs to. Campaign 0
	// is the deployment's implicit legacy campaign; rounds recovered from
	// pre-campaign WALs and snapshots land there.
	Campaign uint32
	// Round is the round identifier within its campaign.
	Round uint64
	// RosterSize is the enrolled-user count the round expects reports
	// from; it bounds user indices and sizes the Reported bitmap.
	RosterSize int
	// ConfigVersion and RosterVersion pin the negotiated round config
	// the round was opened under (0/0 = unversioned, the pre-handshake
	// deployment style). Recovery restores them so a recovered round
	// keeps rejecting stale-config reports exactly as it did before the
	// crash.
	ConfigVersion uint32
	RosterVersion uint32
	// D, W and Seed fix the CMS cell layout of the round aggregate.
	D, W int
	Seed uint64
	// N is the aggregate's total update weight (sum of folded report
	// weights).
	N uint64
	// Keystream is the blinding-suite byte of the round: recovery
	// restores it so the aggregator keeps rejecting mismatched-suite
	// reports after a restart exactly as it did before.
	Keystream byte
	// Closed marks a finalized round.
	Closed bool
	// Cells is the aggregate's flat cell vector (d·w counters).
	Cells []uint64
	// Reported is the reported-bitmap: Reported[u] is true once user u's
	// report has been folded. Restoring it is what keeps the duplicate-
	// report invariant across restarts.
	Reported []bool
	// Adjusts holds the uploaded second-round adjustment shares by
	// reporter index.
	Adjusts map[int][]uint64
}

// Store is the back-end's durability interface. The Disk implementation
// persists every event; Null is the in-memory no-op that preserves the
// original (volatile) behavior. All methods are safe for concurrent
// use.
type Store interface {
	// Rounds returns the round states recovered at Open (nil for a fresh
	// or volatile store). Valid until the first mutation; the back-end
	// consumes it once during construction.
	Rounds() []*RoundState
	// Roster returns the recovered bulletin-board entries (user index →
	// blinding public key).
	Roster() map[int][]byte
	// ConfigVersions returns the recovered deployment-wide config and
	// roster version counters (0, 0 for a fresh or volatile store, or a
	// data dir written before the config handshake existed).
	ConfigVersions() (configVersion, rosterVersion uint32)
	// Campaigns returns the recovered campaign directory: campaign ID →
	// opaque canonical campaign encoding, exactly as provisioned. Nil or
	// empty for a fresh, volatile, or pre-campaign store.
	Campaigns() map[uint32][]byte

	// AppendRegister logs a bulletin-board registration.
	AppendRegister(user int, publicKey []byte) error
	// AppendConfig logs a bump of the deployment-wide config/roster
	// version counters (a registration changed the bulletin board).
	AppendConfig(configVersion, rosterVersion uint32) error
	// AppendOpen logs the creation of a round with the given campaign,
	// geometry, roster size, blinding-suite byte, and the config/roster
	// versions the round is pinned to. Campaign 0 writes the legacy
	// record layout byte-identically.
	AppendOpen(campaign uint32, round uint64, rosterSize, d, w int, seed uint64, keystream byte, configVersion, rosterVersion uint32) error
	// AppendReport logs one accepted report — header fields plus the
	// flat cell vector, i.e. exactly the streamed wire frame's payload
	// (campaign and config version included) — before the cells are
	// folded into the aggregate. The cells are consumed during the call
	// and may be recycled as soon as it returns.
	AppendReport(campaign uint32, round uint64, user, d, w int, n, seed uint64, keystream byte, configVersion uint32, cells []uint64) error
	// AppendAdjust logs an accepted second-round adjustment share.
	AppendAdjust(campaign uint32, round uint64, user int, cells []uint64) error
	// AppendClose logs a round's finalization.
	AppendClose(campaign uint32, round uint64) error
	// AppendCampaign logs a campaign provisioning. def is the campaign
	// registry's canonical encoding; the store persists and replays it
	// opaquely (last write wins per ID).
	AppendCampaign(def []byte) error

	// Sync is the durability barrier: it returns once every record
	// appended before the call is on stable storage. Concurrent callers
	// group-commit onto a shared fsync.
	Sync() error

	// ShouldSnapshot reports whether enough has been logged since the
	// last snapshot that the owner should trigger one.
	ShouldSnapshot() bool
	// Snapshot rotates the WAL, captures the owner's current state via
	// the callback (which runs without any store lock held), writes it
	// as a new snapshot, and prunes old segments. Calls are serialized.
	Snapshot(capture func() ([]*RoundState, error)) error

	// Close flushes and releases the store. Appends after Close fail.
	Close() error
}

// Null is the volatile no-op store: every append succeeds without doing
// anything and recovery finds nothing. A back-end configured with it
// behaves exactly like one with no store at all.
type Null struct{}

// Rounds implements Store.
func (Null) Rounds() []*RoundState { return nil }

// Roster implements Store.
func (Null) Roster() map[int][]byte { return nil }

// ConfigVersions implements Store.
func (Null) ConfigVersions() (uint32, uint32) { return 0, 0 }

// Campaigns implements Store.
func (Null) Campaigns() map[uint32][]byte { return nil }

// AppendRegister implements Store.
func (Null) AppendRegister(int, []byte) error { return nil }

// AppendConfig implements Store.
func (Null) AppendConfig(uint32, uint32) error { return nil }

// AppendOpen implements Store.
func (Null) AppendOpen(uint32, uint64, int, int, int, uint64, byte, uint32, uint32) error {
	return nil
}

// AppendReport implements Store.
func (Null) AppendReport(uint32, uint64, int, int, int, uint64, uint64, byte, uint32, []uint64) error {
	return nil
}

// AppendAdjust implements Store.
func (Null) AppendAdjust(uint32, uint64, int, []uint64) error { return nil }

// AppendClose implements Store.
func (Null) AppendClose(uint32, uint64) error { return nil }

// AppendCampaign implements Store.
func (Null) AppendCampaign([]byte) error { return nil }

// Sync implements Store.
func (Null) Sync() error { return nil }

// ShouldSnapshot implements Store.
func (Null) ShouldSnapshot() bool { return false }

// Snapshot implements Store.
func (Null) Snapshot(func() ([]*RoundState, error)) error { return nil }

// Close implements Store.
func (Null) Close() error { return nil }

// SyncMode selects when WAL appends reach stable storage.
type SyncMode int

const (
	// SyncBatch (the default) makes Sync the durability barrier: appends
	// buffer, and concurrent Sync callers group-commit onto one fsync.
	// With batched acknowledgements on the wire this costs one fsync per
	// ack window, not per report.
	SyncBatch SyncMode = iota
	// SyncAlways fsyncs every append before it returns. Maximum
	// durability, one fsync per record.
	SyncAlways
	// SyncOff never fsyncs: appends and Sync only flush to the OS.
	// Survives a process kill but not a host crash.
	SyncOff
)

// DefaultSnapshotEvery is the report-append count between snapshots
// when Options does not set one.
const DefaultSnapshotEvery = 4096

// Options configures a Disk store.
type Options struct {
	// Sync selects the fsync policy. The zero value is SyncBatch.
	Sync SyncMode
	// SnapshotEvery is the number of report appends after which
	// ShouldSnapshot turns true (and the WAL is compacted into a fresh
	// snapshot). 0 picks DefaultSnapshotEvery; negative disables
	// snapshotting (the WAL grows until the owner calls Snapshot).
	SnapshotEvery int
	// RetainSegments keeps the newest N sealed WAL segments (and their
	// generation's snapshots) across snapshot pruning. 0 prunes
	// everything below the new snapshot — the original behavior. A
	// replicated primary sets this so a follower that is one poll
	// behind a rotation can still fetch the just-sealed segment instead
	// of falling back to a full snapshot resync (see internal/repl).
	RetainSegments int
	// Metrics is the observability registry the store's instruments
	// (WAL appends/bytes, fsync count and latency, snapshot duration,
	// segment seals/prunes) register in. nil means a private registry:
	// the instrumented paths run identically, nothing is exported.
	Metrics *obs.Registry
}

// snapshotEvery resolves the configured snapshot cadence.
func (o Options) snapshotEvery() int {
	if o.SnapshotEvery == 0 {
		return DefaultSnapshotEvery
	}
	return o.SnapshotEvery
}
