package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzReadWALRecord hammers the WAL record decoder with arbitrary
// bytes: it must never panic, never allocate beyond the declared record
// cap, and classify every input as either a clean stream of records, a
// clean EOF, or a corrupt record — the exact trichotomy crash recovery
// relies on to stop at the last valid record of a torn segment. Each
// accepted record's body must also survive its kind-specific parse
// without panicking, and report bodies must re-encode byte-identically
// (the codec is its own reference).
func FuzzReadWALRecord(f *testing.F) {
	// Seed with one well-formed stream of every record kind, plus the
	// classic torn shapes: empty input, a bare length, a length with no
	// body, and a checksum off by one bit.
	var seed bytes.Buffer
	var enc RecordEncoder
	enc.register(&seed, 2, []byte("pk"))
	enc.open(&seed, 0, 4, 8, 2, 4, 7, 1, 3, 2)
	enc.Report(&seed, 0, 4, 2, 2, 4, 3, 7, 1, 3, make([]uint64, 8))
	enc.adjust(&seed, 0, 4, 2, []uint64{1, 2, 3})
	enc.config(&seed, 3, 2)
	enc.close(&seed, 0, 4)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{5})
	f.Add([]byte{5, 0, 0, 0, recClose})
	torn := append([]byte(nil), seed.Bytes()...)
	torn[len(torn)-1] ^= 1
	f.Add(torn)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for {
			kind, body, nbuf, err := ReadWALRecord(r, buf)
			buf = nbuf
			if err != nil {
				// io.EOF (clean end) or ErrCorruptRecord (stop point):
				// either way the loop terminates without panicking.
				if err != io.EOF && !errors.Is(err, ErrCorruptRecord) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			switch kind {
			case recRegister:
				decodeRegisterBody(body)
			case recOpen:
				decodeOpenBody(body)
			case recReport:
				rec, err := decodeReportBody(body)
				if err != nil {
					continue
				}
				// Re-encode through the production encoder and compare:
				// decode(encode(decode(x))) must equal decode(x).
				cells := make([]uint64, rec.D*rec.W)
				for i := range cells {
					cells[i] = binary.LittleEndian.Uint64(rec.Cells[8*i:])
				}
				var out bytes.Buffer
				var enc RecordEncoder
				if err := enc.Report(&out, 0, rec.Round, int(rec.User), int(rec.D), int(rec.W),
					rec.N, rec.Seed, rec.Keystream, rec.ConfigVersion, cells); err != nil {
					t.Fatalf("re-encode of accepted report failed: %v", err)
				}
				kind2, body2, _, err := ReadWALRecord(bytes.NewReader(out.Bytes()), nil)
				if err != nil || kind2 != recReport || !bytes.Equal(body2, body) {
					t.Fatalf("report round-trip mismatch: %v", err)
				}
			case recAdjust:
				decodeAdjustBody(body)
			case recConfig:
				decodeConfigBody(body)
			case recClose:
			}
		}
	})
}
