// Quickstart: stand up a complete in-process eyeWnder deployment, browse
// a few pages, run the weekly privacy-preserving report, and audit two
// ads in real time — one that chases a single user across sites (it gets
// flagged targeted) and one broad brand campaign (it does not).
package main

import (
	"fmt"
	"log"
	"time"

	"eyewnder"
)

func main() {
	// Four users; small sketch so the demo is instant.
	params := eyewnder.Params{Epsilon: 0.01, Delta: 0.01, IDSpace: 10000,
		Suite: eyewnder.DefaultParams().Suite}
	sys, err := eyewnder.NewSystem(eyewnder.SystemConfig{
		Users: 4, Params: &params, RSABits: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}

	page := func(withChaser bool) string {
		html := `<html><body>
<div class="ad-slot"><a href="https://brand.example/shopping/everywhere"><img src="https://ads.adx0.example/creative/1"></a></div>`
		if withChaser {
			html += `
<div class="ad-slot"><a href="https://boutique.example/fashion/just-for-you"><img src="https://ads.adx1.example/creative/2"></a></div>`
		}
		return html + "</body></html>"
	}

	// A week of browsing: user 0 is chased by the boutique ad across six
	// domains; everyone sees the brand ad everywhere.
	t0 := time.Date(2019, 3, 4, 9, 0, 0, 0, time.UTC)
	for site := 0; site < 6; site++ {
		domain := fmt.Sprintf("www.site-%d.example", site)
		at := t0.Add(time.Duration(site) * 12 * time.Hour)
		for i, ext := range sys.Extensions {
			if _, err := ext.VisitPage(domain, page(i == 0), at); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Weekly round: blinded reports, aggregation, threshold publication.
	const round = 1
	if err := sys.SubmitAllReports(round); err != nil {
		log.Fatal(err)
	}
	usersTh, distinct, err := sys.CloseRound(round)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round closed: %d distinct ads observed, Users_th = %.2f\n", distinct, usersTh)

	// Real-time audits from user 0's browser.
	now := t0.Add(4 * 24 * time.Hour)
	for _, adKey := range []string{
		"https://boutique.example/fashion/just-for-you",
		"https://brand.example/shopping/everywhere",
	} {
		v, err := sys.Extensions[0].AuditAd(adKey, round, now)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-48s → %-12s (#domains=%d ≥ %.1f?  #users=%d ≤ %.1f?)\n",
			adKey, v.Class, v.DomainCount, v.DomainsThreshold, v.UserCount, v.UsersThreshold)
	}
}
