// Package logit implements binomial logistic regression fitted by
// iteratively re-weighted least squares (IRLS) — the statistical engine
// behind the socio-economic bias analysis of Section 8 (Table 2 and
// Figure 5). It reports, per coefficient, the odds ratio, standard error,
// Wald z value, two-sided p-value, and 95% confidence interval, plus an
// ANOVA-style likelihood-ratio test for comparing nested models (the test
// the paper uses to drop the employment factor).
//
// Categorical predictors are handled by the Builder, which performs dummy
// coding against a declared base level — the paper's bases are gender =
// undisclosed, income = 0-30k, age = 1-20.
package logit

import (
	"errors"
	"fmt"
	"math"

	"eyewnder/internal/stats"
)

// Errors returned by the package.
var (
	ErrDimension = errors.New("logit: dimension mismatch")
	ErrNoData    = errors.New("logit: no observations")
	ErrSingular  = errors.New("logit: singular information matrix")
	ErrNotNested = errors.New("logit: models are not nested")
	ErrBadFactor = errors.New("logit: unknown factor or level")
)

// Model is a fitted logistic regression.
type Model struct {
	// Coef holds the fitted coefficients (log-odds scale); Coef[0] is the
	// intercept when the design matrix includes one.
	Coef []float64
	// SE holds the coefficient standard errors from the inverse
	// information matrix.
	SE []float64
	// LogLik is the maximized log-likelihood.
	LogLik float64
	// NullLogLik is the log-likelihood of the intercept-only model.
	NullLogLik float64
	// Iterations is how many IRLS steps ran; Converged reports whether
	// the deviance change fell below tolerance.
	Iterations int
	Converged  bool
	// N is the number of observations.
	N int
	// Names labels coefficients (set by the Builder; optional otherwise).
	Names []string
}

// Fit runs IRLS on design matrix X (rows = observations, including any
// intercept column) against binary outcomes y (0/1).
func Fit(X [][]float64, y []float64, maxIter int, tol float64) (*Model, error) {
	n := len(X)
	if n == 0 {
		return nil, ErrNoData
	}
	if len(y) != n {
		return nil, ErrDimension
	}
	p := len(X[0])
	for _, row := range X {
		if len(row) != p {
			return nil, ErrDimension
		}
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	if tol <= 0 {
		tol = 1e-10
	}
	beta := make([]float64, p)
	prevDev := math.Inf(1)
	m := &Model{N: n}
	var info [][]float64
	for iter := 0; iter < maxIter; iter++ {
		m.Iterations = iter + 1
		// Working weights and response.
		// z_i = eta_i + (y_i - mu_i) / w_i, w_i = mu_i (1 - mu_i).
		XtWX := newMatrix(p)
		XtWz := make([]float64, p)
		dev := 0.0
		for i := 0; i < n; i++ {
			eta := dot(X[i], beta)
			mu := sigmoid(eta)
			// Clamp for numerical stability on separable data.
			const epsMu = 1e-10
			if mu < epsMu {
				mu = epsMu
			} else if mu > 1-epsMu {
				mu = 1 - epsMu
			}
			w := mu * (1 - mu)
			z := eta + (y[i]-mu)/w
			for a := 0; a < p; a++ {
				xa := X[i][a]
				if xa == 0 {
					continue
				}
				wxa := w * xa
				XtWz[a] += wxa * z
				for b := a; b < p; b++ {
					XtWX[a][b] += wxa * X[i][b]
				}
			}
			dev += devianceTerm(y[i], mu)
		}
		// Mirror the upper triangle.
		for a := 0; a < p; a++ {
			for b := 0; b < a; b++ {
				XtWX[a][b] = XtWX[b][a]
			}
		}
		next, inv, err := solveWithInverse(XtWX, XtWz)
		if err != nil {
			return nil, err
		}
		beta = next
		info = inv
		if math.Abs(prevDev-dev) < tol*(math.Abs(dev)+tol) {
			m.Converged = true
			prevDev = dev
			break
		}
		prevDev = dev
	}
	m.Coef = beta
	m.SE = make([]float64, p)
	for j := 0; j < p; j++ {
		m.SE[j] = math.Sqrt(math.Max(info[j][j], 0))
	}
	m.LogLik = logLik(X, y, beta)
	m.NullLogLik = nullLogLik(y)
	return m, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func devianceTerm(y, mu float64) float64 {
	if y > 0.5 {
		return -2 * math.Log(mu)
	}
	return -2 * math.Log(1-mu)
}

func logLik(X [][]float64, y, beta []float64) float64 {
	var ll float64
	for i := range X {
		mu := sigmoid(dot(X[i], beta))
		const epsMu = 1e-12
		mu = math.Min(math.Max(mu, epsMu), 1-epsMu)
		if y[i] > 0.5 {
			ll += math.Log(mu)
		} else {
			ll += math.Log(1 - mu)
		}
	}
	return ll
}

func nullLogLik(y []float64) float64 {
	n := float64(len(y))
	var ones float64
	for _, v := range y {
		ones += v
	}
	if ones == 0 || ones == n {
		return 0
	}
	p := ones / n
	return ones*math.Log(p) + (n-ones)*math.Log(1-p)
}

func newMatrix(p int) [][]float64 {
	m := make([][]float64, p)
	for i := range m {
		m[i] = make([]float64, p)
	}
	return m
}

// solveWithInverse solves A x = b and returns A⁻¹ (for the covariance),
// via Gauss-Jordan elimination with partial pivoting.
func solveWithInverse(A [][]float64, b []float64) (x []float64, inv [][]float64, err error) {
	p := len(A)
	// Augment [A | I | b].
	aug := make([][]float64, p)
	for i := 0; i < p; i++ {
		aug[i] = make([]float64, 2*p+1)
		copy(aug[i], A[i])
		aug[i][p+i] = 1
		aug[i][2*p] = b[i]
	}
	for col := 0; col < p; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < p; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[piv][col]) {
				piv = r
			}
		}
		if math.Abs(aug[piv][col]) < 1e-12 {
			return nil, nil, ErrSingular
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		// Normalize and eliminate.
		d := aug[col][col]
		for j := col; j <= 2*p; j++ {
			aug[col][j] /= d
		}
		for r := 0; r < p; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for j := col; j <= 2*p; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	x = make([]float64, p)
	inv = make([][]float64, p)
	for i := 0; i < p; i++ {
		x[i] = aug[i][2*p]
		inv[i] = aug[i][p : 2*p]
	}
	return x, inv, nil
}

// Predict returns the fitted probability for a design row.
func (m *Model) Predict(row []float64) float64 { return sigmoid(dot(row, m.Coef)) }

// CoefSummary is one row of a Table 2-style report.
type CoefSummary struct {
	Name string
	// Coef is the log-odds coefficient; OR = exp(Coef).
	Coef, OR, SE, Z, P float64
	// CILo and CIHi bound the 95% confidence interval on the OR scale.
	CILo, CIHi float64
}

// Summary produces per-coefficient statistics. If the model has Names
// they label the rows; otherwise "b0", "b1", ...
func (m *Model) Summary() []CoefSummary {
	out := make([]CoefSummary, len(m.Coef))
	for j, c := range m.Coef {
		name := fmt.Sprintf("b%d", j)
		if j < len(m.Names) && m.Names[j] != "" {
			name = m.Names[j]
		}
		z, pval := stats.WaldTest(c, m.SE[j])
		out[j] = CoefSummary{
			Name: name,
			Coef: c,
			OR:   math.Exp(c),
			SE:   m.SE[j],
			Z:    z,
			P:    pval,
			CILo: math.Exp(c - 1.959963985*m.SE[j]),
			CIHi: math.Exp(c + 1.959963985*m.SE[j]),
		}
	}
	return out
}

// LikelihoodRatioTest compares a nested null model against a fuller
// alternative: statistic 2(llFull − llNull) ~ χ²(dfFull − dfNull). This is
// the anova-style test the paper uses to drop "employment status".
func LikelihoodRatioTest(null, full *Model) (statistic float64, df int, p float64, err error) {
	df = len(full.Coef) - len(null.Coef)
	if df <= 0 {
		return 0, 0, 0, ErrNotNested
	}
	statistic = 2 * (full.LogLik - null.LogLik)
	if statistic < 0 {
		statistic = 0
	}
	p = stats.ChiSquareSF(statistic, df)
	return statistic, df, p, nil
}
