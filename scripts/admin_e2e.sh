#!/usr/bin/env bash
# Admin-endpoint e2e across a failover: a durable primary with an
# attached follower, both serving -admin. Drive real client traffic at
# the primary, scrape both roles mid-run, SIGKILL the primary, promote
# the follower (SIGUSR1), finish the round against the promoted node,
# and require its admin endpoint to have survived the promotion — role
# gauges flipped, counters continuous, /healthz flipped from
# warm-replica/caught-up to a serving primary.
#
# Usage: admin_e2e.sh <bin-dir> <artifact-dir>
#   bin-dir      : directory holding eyewnder-server and eyewnder-client
#   artifact-dir : where the scraped /metrics and /statusz bodies land
set -euo pipefail

bin="$1"
arts="$2"
mkdir -p "$arts"

BE1=127.0.0.1:7871
OPRF1=127.0.0.1:7872
REPL=127.0.0.1:7873
ADMIN1=127.0.0.1:7874
BE2=127.0.0.1:7875
OPRF2=127.0.0.1:7876
ADMIN2=127.0.0.1:7877

dir="$(mktemp -d)"
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
}
trap cleanup EXIT

# wait_port <host:port>: block until something listens there.
wait_port() {
    local hp="$1" i
    for i in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/${hp%:*}/${hp#*:}") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.2
    done
    echo "nothing listening on $hp" >&2
    return 1
}

# poll_until <seconds> <cmd...>: retry a scrape predicate at 4 Hz.
poll_until() {
    local secs="$1" i
    shift
    for i in $(seq 1 $((secs * 4))); do
        if "$@" >/dev/null 2>&1; then return 0; fi
        sleep 0.25
    done
    echo "timed out waiting for: $*" >&2
    return 1
}

# metric <admin-addr> <name>: one sample's value off /metrics (0 if absent).
metric() {
    curl -sf "http://$1/metrics" | awk -v m="$2" '$1 == m { print $2; found = 1 } END { if (!found) print 0 }'
}

metric_is() { # <admin-addr> <name> <want>
    [ "$(metric "$1" "$2")" = "$3" ]
}

"$bin/eyewnder-server" -backend "$BE1" -oprf "$OPRF1" -users 3 \
    -data-dir "$dir/primary" -repl "$REPL" -admin "$ADMIN1" \
    >"$dir/primary.log" 2>&1 &
pids+=($!)
primary_pid=$!

# The follower needs the primary reachable at start (its initial sync
# is what gives it something to serve).
wait_port "$REPL"

"$bin/eyewnder-server" -backend "$BE2" -oprf "$OPRF2" -users 3 \
    -data-dir "$dir/follower" -follow "$REPL" -admin "$ADMIN2" \
    -repl-status-every 2s \
    >"$dir/follower.log" 2>&1 &
pids+=($!)
follower_pid=$!

poll_until 20 curl -sf "http://$ADMIN1/healthz"
poll_until 20 curl -sf "http://$ADMIN2/healthz"

# Both roles answer the full admin surface before any traffic.
curl -sf "http://$ADMIN1/healthz" | grep -q '"role":"primary"'
curl -sf "http://$ADMIN2/healthz" | grep -q '"role":"follower"'
curl -sf "http://$ADMIN2/metrics" | grep -q '^eyewnder_replica 1$'
curl -sf "http://$ADMIN1/debug/pprof/cmdline" >/dev/null
curl -sf "http://$ADMIN2/debug/pprof/cmdline" >/dev/null

# Round 1: the whole roster reports at the primary (clients block until
# the full roster has registered, so they must run concurrently).
"$bin/eyewnder-client" -backend "$BE1" -oprf "$OPRF1" -user 0 -visits 10 >"$dir/c0.log" 2>&1 &
c0=$!
"$bin/eyewnder-client" -backend "$BE1" -oprf "$OPRF1" -user 1 -visits 10 >"$dir/c1.log" 2>&1 &
c1=$!
"$bin/eyewnder-client" -backend "$BE1" -oprf "$OPRF1" -user 2 -visits 10 -close >"$dir/c2.log" 2>&1
wait "$c0" "$c1"
grep -q "closed: Users_th" "$dir/c2.log"

# Scrape the live primary: the traffic is visible.
metric_is "$ADMIN1" eyewnder_reports_accepted_total 3
metric_is "$ADMIN1" eyewnder_rounds_opened_total 1
metric_is "$ADMIN1" eyewnder_rounds_closed_total 1
curl -sf "http://$ADMIN1/metrics" >"$arts/primary_metrics_midrun.txt"
curl -sf "http://$ADMIN1/statusz" >"$arts/primary_statusz_midrun.json"
grep -q '^eyewnder_store_fsyncs_total [1-9]' "$arts/primary_metrics_midrun.txt"
grep -q '"reported": 3' "$arts/primary_statusz_midrun.json"

# The follower mirrors it; wait until it is caught up, then scrape.
poll_until 30 metric_is "$ADMIN2" eyewnder_repl_caught_up 1
curl -sf "http://$ADMIN2/metrics" >"$arts/follower_metrics_midrun.txt"
curl -sf "http://$ADMIN2/statusz" >"$arts/follower_statusz_midrun.json"
grep -q '^eyewnder_repl_events_total [1-9]' "$arts/follower_metrics_midrun.txt"
curl -sf "http://$ADMIN2/healthz" | grep -q '"detail":"caught-up"'
events_before="$(metric "$ADMIN2" eyewnder_repl_events_total)"

# Kill the primary dead, promote the follower.
kill -9 "$primary_pid"
wait "$primary_pid" 2>/dev/null || true
kill -USR1 "$follower_pid"
poll_until 20 metric_is "$ADMIN2" eyewnder_replica 0
curl -sf "http://$ADMIN2/healthz" | grep -q '"detail":"promoted"'

# The registry survived: the replication counters did not reset.
events_after="$(metric "$ADMIN2" eyewnder_repl_events_total)"
if [ "${events_after%.*}" -lt "${events_before%.*}" ]; then
    echo "repl counters reset across promotion: $events_before -> $events_after" >&2
    exit 1
fi

# Round 2 runs entirely against the promoted node.
"$bin/eyewnder-client" -backend "$BE2" -oprf "$OPRF2" -user 0 -visits 10 -round 2 >"$dir/p0.log" 2>&1 &
p0=$!
"$bin/eyewnder-client" -backend "$BE2" -oprf "$OPRF2" -user 1 -visits 10 -round 2 >"$dir/p1.log" 2>&1 &
p1=$!
"$bin/eyewnder-client" -backend "$BE2" -oprf "$OPRF2" -user 2 -visits 10 -round 2 -close >"$dir/p2.log" 2>&1
wait "$p0" "$p1"
grep -q "closed: Users_th" "$dir/p2.log"

# Post-promotion scrape: the promoted back-end's ingest and round
# lifecycle are on the SAME endpoint, continuing the same series.
# (Round 1 arrived via replication — repl_events — so accepted counts
# only the promoted node's own ingest.)
metric_is "$ADMIN2" eyewnder_reports_accepted_total 3
metric_is "$ADMIN2" eyewnder_rounds_closed_total 1
curl -sf "http://$ADMIN2/metrics" >"$arts/promoted_metrics.txt"
curl -sf "http://$ADMIN2/statusz" >"$arts/promoted_statusz.json"
grep -q '"role": "primary"' "$arts/promoted_statusz.json"
grep -q '"store"' "$arts/promoted_statusz.json"

echo "OK: admin endpoint served both roles and survived promotion"
