// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (see DESIGN.md §3 for the experiment index), plus
// the ablation benches for the design choices DESIGN.md §4 calls out.
//
// Each benchmark runs the corresponding experiment end to end and
// reports the headline quantity of the table/figure as a custom metric,
// so `go test -bench=. -benchmem` both times the reproduction and prints
// the reproduced numbers.
//
// Workloads are scaled so a full -bench=. pass finishes in minutes; the
// cmd binaries run the full-size versions.
package eyewnder

import (
	"crypto/rand"
	"testing"
	"time"

	"eyewnder/internal/adsim"
	"eyewnder/internal/detector"
	"eyewnder/internal/experiments"
	"eyewnder/internal/group"
)

// benchSim is the scaled Table 1 configuration shared by the benches.
func benchSim() adsim.Config {
	cfg := adsim.DefaultConfig()
	cfg.Users = 120
	cfg.Sites = 400
	cfg.Campaigns = 600
	cfg.AvgVisitsPerWeek = 80
	cfg.StaticSitesMin, cfg.StaticSitesMax = 2, 120
	return cfg
}

// BenchmarkTable1_SimulationBaseline regenerates the Table 1 workload:
// one full simulated week under the paper's configuration shape.
func BenchmarkTable1_SimulationBaseline(b *testing.B) {
	cfg := benchSim()
	var impressions int
	for i := 0; i < b.N; i++ {
		sim, err := adsim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res := sim.Run()
		impressions = len(res.Impressions)
	}
	b.ReportMetric(float64(impressions), "impressions")
}

// BenchmarkFig2_UsersDistributionCMSvsActual runs the full privacy
// pipeline (OPRF, blinding, aggregation, enumeration) and reports how far
// the CMS-side threshold drifts from the cleartext one — Figure 2's
// Act_Th vs CMS_Th gap.
func BenchmarkFig2_UsersDistributionCMSvsActual(b *testing.B) {
	cfg := experiments.DefaultFig2Config()
	cfg.Sim.Users = 16
	cfg.Sim.Sites = 60
	cfg.Sim.Campaigns = 50
	cfg.Sim.AvgVisitsPerWeek = 30
	cfg.Sim.Weeks = 1
	var drift float64
	for i := 0; i < b.N; i++ {
		weeks, err := experiments.Fig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		drift = weeks[0].CMSTh - weeks[0].ActualTh
	}
	b.ReportMetric(drift, "threshold-drift")
}

// BenchmarkFig3_FalseNegativesVsFrequencyCap runs the Figure 3 sweep and
// reports the Mean-estimator FN% at frequency cap 7 (the paper's 6-7
// repetitions / <30% FN operating point).
func BenchmarkFig3_FalseNegativesVsFrequencyCap(b *testing.B) {
	cfg := experiments.Fig3Config{
		Base: benchSim(),
		Caps: []int{1, 4, 7, 10},
	}
	var fnAt7 float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fnAt7 = pts[2].FNMeanPct
	}
	b.ReportMetric(fnAt7, "FN%@cap7")
}

// BenchmarkSec722_FalsePositiveConfigurations runs the §7.2.2 FP study
// over overlapping-static-campaign configurations and reports the worst
// FP% observed (paper bound: 2%).
func BenchmarkSec722_FalsePositiveConfigurations(b *testing.B) {
	base := benchSim()
	var worst float64
	for i := 0; i < b.N; i++ {
		results, err := experiments.FPStudy(base, 6)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range results {
			if r.FPPct > worst {
				worst = r.FPPct
			}
		}
	}
	b.ReportMetric(worst, "worst-FP%")
}

// BenchmarkSec71_CMSSizeVsCleartext regenerates the §7.1 size table and
// reports the T=100k sketch size in decimal KB (paper: 207).
func BenchmarkSec71_CMSSizeVsCleartext(b *testing.B) {
	var kb float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Overhead(1024, group.P256())
		if err != nil {
			b.Fatal(err)
		}
		kb = rep.CMSKB[100000]
	}
	b.ReportMetric(kb, "KB@T=100k")
}

// BenchmarkSec71_OPRFMapping times one ad-URL → ad-ID mapping round trip
// (paper: < 500 ms, 2 × 1024-bit elements exchanged).
func BenchmarkSec71_OPRFMapping(b *testing.B) {
	rep, err := experiments.Overhead(1024, group.P256())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rep.OPRFRoundTrip.Microseconds()), "µs/mapping")
}

// BenchmarkSec71_BlindingFactorsCompute measures deriving one user's
// blinding vector (5k cells) against a roster — the client-side cost the
// paper reports as ~30 s for 1k users.
func BenchmarkSec71_BlindingFactorsCompute(b *testing.B) {
	rep, err := experiments.Overhead(1024, group.P256())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rep.BlindingComputeFor1kUsers5kCells.Milliseconds()), "ms/1k-users-5k-cells")
}

// BenchmarkFig4_EvaluationTree runs the live-validation analogue and
// reports the likely-TP precision (paper: 78%).
func BenchmarkFig4_EvaluationTree(b *testing.B) {
	cfg := experiments.DefaultFig4Config()
	cfg.Sim.Users = 60
	cfg.Sim.Sites = 800
	cfg.Sim.Campaigns = 3000
	cfg.Sim.Weeks = 2
	cfg.CBThreshold = 3
	var tp float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tp = 100 * res.Summary.LikelyTPRate
	}
	b.ReportMetric(tp, "likely-TP%")
}

// BenchmarkTable2_LogisticRegression runs the Section 8 bias analysis and
// reports the recovered male-gender odds ratio (paper: 0.174).
func BenchmarkTable2_LogisticRegression(b *testing.B) {
	cfg := experiments.DefaultTable2Config()
	cfg.Sim.Users = 250
	var maleOR float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Name == "gender:male" {
				maleOR = r.OR
			}
		}
	}
	b.ReportMetric(maleOR, "OR(male)")
}

// BenchmarkFig5_PredictedProbabilities reports the predicted targeting
// probability for the 60-70 age bracket (the strongest positive effect in
// Figure 5).
func BenchmarkFig5_PredictedProbabilities(b *testing.B) {
	cfg := experiments.DefaultTable2Config()
	cfg.Sim.Users = 250
	var p float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		p = res.Fig5["age"]["60-70"]
	}
	b.ReportMetric(p, "P(targeted|60-70)")
}

// --- Ablation benches (DESIGN.md §4) ---

// BenchmarkAblation_ThresholdEstimators compares the four estimators and
// reports the FN% spread between the best and worst.
func BenchmarkAblation_ThresholdEstimators(b *testing.B) {
	cfg := benchSim()
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblateEstimators(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := 1.0, 0.0
		for _, a := range res {
			fn := a.Conf.FNRate()
			if fn < lo {
				lo = fn
			}
			if fn > hi {
				hi = fn
			}
		}
		spread = 100 * (hi - lo)
	}
	b.ReportMetric(spread, "FN%-spread")
}

// BenchmarkAblation_SketchGeometry sweeps ε/δ and reports the mean
// overestimation at the paper's geometry.
func BenchmarkAblation_SketchGeometry(b *testing.B) {
	cfg := benchSim()
	var over float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblateSketchGeometry(cfg, [][2]float64{
			{0.1, 0.1}, {0.01, 0.01}, {0.001, 0.001},
		})
		if err != nil {
			b.Fatal(err)
		}
		over = res[2].MeanOverestimate
	}
	b.ReportMetric(over, "overestimate@0.001")
}

// BenchmarkAblation_TimeWindow sweeps the observation window.
func BenchmarkAblation_TimeWindow(b *testing.B) {
	cfg := benchSim()
	var classified7 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblateWindow(cfg, []int{1, 3, 7})
		if err != nil {
			b.Fatal(err)
		}
		classified7 = float64(res[2].Conf.Classified())
	}
	b.ReportMetric(classified7, "pairs@7d")
}

// BenchmarkAblation_MinimumData sweeps the minimum-data rule.
func BenchmarkAblation_MinimumData(b *testing.B) {
	cfg := benchSim()
	var unknowns float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblateMinDomains(cfg, []int{2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		unknowns = float64(res[2].Conf.Unknown)
	}
	b.ReportMetric(unknowns, "unknown@min8")
}

// BenchmarkAblation_BlindingGroup compares the two DH suites for the
// blinding key agreement (P-256 vs 2048-bit MODP): pairwise-secret
// derivation time and bulletin-board traffic at 10k users.
func BenchmarkAblation_BlindingGroup(b *testing.B) {
	for _, suite := range []group.Suite{group.P256(), group.MODP2048()} {
		b.Run(suite.Name(), func(b *testing.B) {
			a, err := suite.GenerateKey(rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			peer, err := suite.GenerateKey(rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			pub := peer.PublicKey()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.SharedSecret(pub); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(group.Suite(suite).PublicKeySize()*10000)/1e6, "MB@10k-users")
		})
	}
}

// BenchmarkDetectorClassifyEndToEnd measures the in-browser audit path of
// the facade: detector classification against published thresholds.
func BenchmarkDetectorClassifyEndToEnd(b *testing.B) {
	u := detector.NewUserState(detector.DefaultConfig())
	for i := 0; i < 40; i++ {
		u.Observe("ad", "site.example", adsim.SimStart)
	}
	now := adsim.SimStart.Add(time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Classify("ad", 3, 5, now)
	}
}
