package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"eyewnder/internal/vec"
)

// WAL record framing. Every record is
//
//	┌────────────┬────────┬──────────┬─────────────────┐
//	│ length     │ kind   │ body     │ crc32c          │
//	│ 4 B, LE    │ 1 B    │ length B │ 4 B, LE, over   │
//	│ = len(body)│        │          │ kind ‖ body     │
//	└────────────┴────────┴──────────┴─────────────────┘
//
// The CRC (Castagnoli) is what makes torn writes detectable: a crash
// mid-append leaves a record whose length field, body, or checksum is
// incomplete, and replay stops cleanly at the last record that checks
// out. The length field is validated against maxRecordBody before any
// allocation, so a corrupt length cannot provoke a huge read buffer.
//
// Record kinds and body layouts (all integers little-endian):
//
//	recRegister  user(8) publicKey(rest)
//	recOpen      round(8) roster(8) d(8) w(8) seed(8) keystream(1)
//	             [configVersion(4) rosterVersion(4) [campaign(4)]]
//	recReport    user(8) round(8) d(8) w(8) n(8) seed(8) keystream(1)
//	             reserved(1) campaign(2) configVersion(4) cells(8·d·w)
//	             — the wire frame payload
//	recAdjust    round(8) user(8) [campaign(4)] cells(8·c)
//	recClose     round(8) [campaign(4)]
//	recConfig    configVersion(4) rosterVersion(4)
//	recCampaign  one canonical campaign encoding (campaign.AppendBinary)
//
// The report body deliberately mirrors the streamed wire frame's
// payload byte-for-byte (wire/stream.go): the back-end logs the report
// while its pooled cell slice is still borrowed from the connection,
// and reusing the frame layout keeps that append a straight copy with
// no re-marshalling. recOpen's trailing version pair rode in with the
// negotiated-config redesign; a 41-byte body (written by an older
// release) decodes with both versions zero, the unversioned deployment
// style. recConfig logs a bump of the deployment-wide config/roster
// version counters (a registration changed the bulletin board), so
// recovery restores the exact negotiated state, not just the round
// contents.
//
// Campaign tagging rode in with the multi-campaign service: a report's
// campaign occupies two formerly reserved preamble bytes (still the
// wire frame payload, byte-for-byte), while recOpen, recAdjust, and
// recClose grew length-discriminated campaign variants. Campaign 0 —
// the implicit legacy campaign — always writes the legacy layouts, so
// a single-campaign deployment's WAL is byte-identical to one written
// by a pre-campaign release, and old data dirs keep recovering.
// recCampaign logs a campaign provisioning; its body is the campaign
// registry's canonical encoding, stored and replayed opaquely so the
// recovered directory is byte-identical to what was advertised.

// Record kinds.
const (
	recRegister = 0x01
	recOpen     = 0x02
	recReport   = 0x03
	recAdjust   = 0x04
	recClose    = 0x05
	recConfig   = 0x06
	recCampaign = 0x07
)

// reportPreamble is the fixed prefix of a report body: user(8) round(8)
// d(8) w(8) n(8) seed(8) keystream(1) reserved(1) campaign(2)
// configVersion(4) — identical to the wire report frame's preamble.
const reportPreamble = 56

// maxRecordCampaign caps the campaign ID a record can carry, mirroring
// the wire layer's 16-bit frame field so a logged report body stays a
// byte-for-byte copy of its frame payload.
const maxRecordCampaign = 0xFFFF

// Round-open body sizes: openBodyV1 predates the config handshake,
// openBody appends configVersion(4) rosterVersion(4), and
// openBodyCampaign appends campaign(4) — written only for campaign ≠ 0
// so legacy deployments stay byte-identical.
const (
	openBodyV1       = 41
	openBody         = 49
	openBodyCampaign = 53
)

// campaignBodyMin is the smallest valid recCampaign body — the campaign
// registry's fixed encoding prefix (campaign.AppendBinary); the store
// treats the body opaquely beyond the leading little-endian ID.
const campaignBodyMin = 40

// configBody is the size of a recConfig body.
const configBody = 8

// maxRecordBody caps a record body (mirrors wire.MaxFrame): the largest
// legitimate record is a report, whose cell block the wire layer
// already caps at 16 MiB.
const maxRecordBody = 16 << 20

// Geometry bounds for decoded report headers, mirroring the wire
// layer's: d·w is additionally tied to the record length, so a hostile
// header cannot claim more cells than the record carries.
const (
	maxReportDepth = 1 << 20
	maxReportWidth = 1 << 32
)

// Errors of the record layer.
var (
	// ErrCorruptRecord marks a record whose length, kind, or checksum is
	// invalid — the point where a segment's replay stops.
	ErrCorruptRecord = errors.New("store: corrupt WAL record")
	// ErrBadRecord marks a structurally valid record whose body does not
	// parse (wrong size for its kind, impossible geometry).
	ErrBadRecord = errors.New("store: malformed WAL record body")
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RecordEncoder frames WAL records onto an io.Writer. The header,
// fixed-prefix, and checksum scratch live in the encoder rather than on
// the stack: small byte arrays handed through the io.Writer interface
// escape, and those per-append allocations (three of them) were the
// last ones left on the durable report-ingestion path. A long-lived
// encoder — the Disk store owns one, serialized by its append lock —
// makes every append allocation-free (wal_append in
// BENCH_pipeline.json tracks it at 0 allocs/op). The zero value is
// ready to use; an encoder is not safe for concurrent use.
type RecordEncoder struct {
	hdr  [5]byte
	pre  [reportPreamble]byte // largest fixed body prefix
	tail [4]byte
	cell []byte // cell-block scratch for hosts without a zero-copy byte view

	// lastWrote is the framed size (overhead + body) of the last record
	// successfully written — read by the store's byte counters under
	// the same lock that serializes the encoder.
	lastWrote int
}

// cellBytes returns the little-endian byte block for cells: the slice's
// raw byte view where the layout allows it (little-endian hosts outside
// purego builds), otherwise an encoder-owned scratch buffer the cells
// are re-encoded into. The scratch grows to the largest block seen and
// is then reused, keeping the append path allocation-free under both
// dispatch modes. The returned slice is valid until the next call.
func (e *RecordEncoder) cellBytes(cells []uint64) []byte {
	if view, ok := vec.AsBytes(cells); ok {
		return view
	}
	n := 8 * len(cells)
	if cap(e.cell) < n {
		e.cell = make([]byte, n)
	}
	raw := e.cell[:n]
	vec.PutLE(raw, cells)
	return raw
}

// record writes one framed record: the 5-byte length+kind header, the
// fixed body prefix (from e.pre), an optional variable block, and the
// trailing CRC over kind+body. The variable block is written as given,
// so a report's cell view streams straight from the caller's (possibly
// pooled) memory.
func (e *RecordEncoder) record(w io.Writer, kind byte, fixed, rest []byte) error {
	n := len(fixed) + len(rest)
	if n > maxRecordBody {
		return fmt.Errorf("%w: %d-byte body", ErrBadRecord, n)
	}
	binary.LittleEndian.PutUint32(e.hdr[0:], uint32(n))
	e.hdr[4] = kind
	if _, err := w.Write(e.hdr[:]); err != nil {
		return err
	}
	crc := crc32.Update(0, castagnoli, e.hdr[4:5])
	if len(fixed) > 0 {
		if _, err := w.Write(fixed); err != nil {
			return err
		}
		crc = crc32.Update(crc, castagnoli, fixed)
	}
	if len(rest) > 0 {
		if _, err := w.Write(rest); err != nil {
			return err
		}
		crc = crc32.Update(crc, castagnoli, rest)
	}
	binary.LittleEndian.PutUint32(e.tail[:], crc)
	if _, err := w.Write(e.tail[:]); err != nil {
		return err
	}
	e.lastWrote = walRecordOverhead + n
	return nil
}

// ReadWALRecord reads one framed record from r. buf is an optional
// reusable scratch buffer; the returned body aliases it (or a grown
// replacement, also returned) and is valid until the next call. A clean
// end of input returns io.EOF; a torn or corrupt record returns
// ErrCorruptRecord. Exported so the fuzz harness and offline WAL tools
// share the exact decoder recovery runs.
func ReadWALRecord(r io.Reader, buf []byte) (kind byte, body, newBuf []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, buf, io.EOF
		}
		return 0, nil, buf, fmt.Errorf("%w: %v", ErrCorruptRecord, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, buf, fmt.Errorf("%w: torn header: %v", ErrCorruptRecord, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	kind = hdr[4]
	if n > maxRecordBody {
		return 0, nil, buf, fmt.Errorf("%w: %d-byte body", ErrCorruptRecord, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	body = buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, buf, fmt.Errorf("%w: torn body: %v", ErrCorruptRecord, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, buf, fmt.Errorf("%w: torn checksum: %v", ErrCorruptRecord, err)
	}
	crc := crc32.Update(0, castagnoli, hdr[4:5])
	crc = crc32.Update(crc, castagnoli, body)
	if binary.LittleEndian.Uint32(tail[:]) != crc {
		return 0, nil, buf, fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
	}
	return kind, body, buf, nil
}

// Report frames one report event — the wire frame's payload (56-byte
// preamble + little-endian cell block) as a WAL record — onto w. On
// little-endian hosts the cell block is written as the slice's raw byte
// view, so the append is one header write plus one bulk copy of memory
// the wire layer already holds. Exported so the pipeline bench measures
// exactly the encoder the hot path runs.
func (e *RecordEncoder) Report(w io.Writer, campaign uint32, round uint64, user, d, wd int, n, seed uint64, keystream byte, configVersion uint32, cells []uint64) error {
	if d < 1 || wd < 1 || uint64(d) > maxReportDepth || uint64(wd) >= maxReportWidth ||
		uint64(d)*uint64(wd) != uint64(len(cells)) {
		return fmt.Errorf("%w: report geometry d=%d w=%d cells=%d", ErrBadRecord, d, wd, len(cells))
	}
	if campaign > maxRecordCampaign {
		return fmt.Errorf("%w: campaign %d", ErrBadRecord, campaign)
	}
	pre := e.pre[:reportPreamble]
	binary.LittleEndian.PutUint64(pre[0:], uint64(user))
	binary.LittleEndian.PutUint64(pre[8:], round)
	binary.LittleEndian.PutUint64(pre[16:], uint64(d))
	binary.LittleEndian.PutUint64(pre[24:], uint64(wd))
	binary.LittleEndian.PutUint64(pre[32:], n)
	binary.LittleEndian.PutUint64(pre[40:], seed)
	pre[48], pre[49] = keystream, 0
	binary.LittleEndian.PutUint16(pre[50:], uint16(campaign))
	binary.LittleEndian.PutUint32(pre[52:], configVersion)
	return e.record(w, recReport, pre, e.cellBytes(cells))
}

// reportRecord is a decoded report body. Cells is the raw little-endian
// cell block, aliasing the record buffer.
type reportRecord struct {
	User          uint64
	Round         uint64
	D, W          uint64
	N             uint64
	Seed          uint64
	Keystream     byte
	Campaign      uint32
	ConfigVersion uint32
	Cells         []byte
}

// decodeReportBody parses a recReport body. The geometry is validated
// against the body length before use, so a corrupt-but-checksummed
// record cannot claim cells it does not carry.
func decodeReportBody(body []byte) (reportRecord, error) {
	if len(body) < reportPreamble {
		return reportRecord{}, fmt.Errorf("%w: short report body", ErrBadRecord)
	}
	rec := reportRecord{
		User:          binary.LittleEndian.Uint64(body[0:]),
		Round:         binary.LittleEndian.Uint64(body[8:]),
		D:             binary.LittleEndian.Uint64(body[16:]),
		W:             binary.LittleEndian.Uint64(body[24:]),
		N:             binary.LittleEndian.Uint64(body[32:]),
		Seed:          binary.LittleEndian.Uint64(body[40:]),
		Keystream:     body[48],
		Campaign:      uint32(binary.LittleEndian.Uint16(body[50:])),
		ConfigVersion: binary.LittleEndian.Uint32(body[52:]),
	}
	if rec.User > 1<<31 || rec.D < 1 || rec.W < 1 || rec.D > maxReportDepth || rec.W > maxReportWidth {
		return reportRecord{}, fmt.Errorf("%w: report header", ErrBadRecord)
	}
	cells := rec.D * rec.W // ≤ 2⁵² by the bounds above: no overflow
	if uint64(len(body)) != reportPreamble+8*cells {
		return reportRecord{}, fmt.Errorf("%w: report body %d bytes, want %d cells", ErrBadRecord, len(body), cells)
	}
	rec.Cells = body[reportPreamble:]
	return rec, nil
}

// open frames a round-open event onto w, carrying the round config the
// round is pinned to. Campaign 0 writes the legacy 49-byte body;
// provisioned campaigns append their ID.
func (e *RecordEncoder) open(w io.Writer, campaign uint32, round uint64, roster, d, wd int, seed uint64, keystream byte, configVersion, rosterVersion uint32) error {
	body := e.pre[:openBodyCampaign]
	binary.LittleEndian.PutUint64(body[0:], round)
	binary.LittleEndian.PutUint64(body[8:], uint64(roster))
	binary.LittleEndian.PutUint64(body[16:], uint64(d))
	binary.LittleEndian.PutUint64(body[24:], uint64(wd))
	binary.LittleEndian.PutUint64(body[32:], seed)
	body[40] = keystream
	binary.LittleEndian.PutUint32(body[41:], configVersion)
	binary.LittleEndian.PutUint32(body[45:], rosterVersion)
	if campaign == 0 {
		return e.record(w, recOpen, body[:openBody], nil)
	}
	binary.LittleEndian.PutUint32(body[49:], campaign)
	return e.record(w, recOpen, body, nil)
}

// openRecord is a decoded round-open body.
type openRecord struct {
	Round         uint64
	Roster        uint64
	D, W          uint64
	Seed          uint64
	Keystream     byte
	Campaign      uint32
	ConfigVersion uint32
	RosterVersion uint32
}

// decodeOpenBody parses a recOpen body. The 41-byte pre-handshake
// layout decodes with zero config/roster versions — the unversioned
// deployment style, accepted so old data dirs keep recovering — and
// the 49-byte pre-campaign layout decodes as campaign 0.
func decodeOpenBody(body []byte) (openRecord, error) {
	if len(body) != openBody && len(body) != openBodyV1 && len(body) != openBodyCampaign {
		return openRecord{}, fmt.Errorf("%w: open body %d bytes", ErrBadRecord, len(body))
	}
	rec := openRecord{
		Round:     binary.LittleEndian.Uint64(body[0:]),
		Roster:    binary.LittleEndian.Uint64(body[8:]),
		D:         binary.LittleEndian.Uint64(body[16:]),
		W:         binary.LittleEndian.Uint64(body[24:]),
		Seed:      binary.LittleEndian.Uint64(body[32:]),
		Keystream: body[40],
	}
	if len(body) >= openBody {
		rec.ConfigVersion = binary.LittleEndian.Uint32(body[41:])
		rec.RosterVersion = binary.LittleEndian.Uint32(body[45:])
	}
	if len(body) == openBodyCampaign {
		rec.Campaign = binary.LittleEndian.Uint32(body[49:])
		if rec.Campaign == 0 {
			// A campaign-variant body claiming campaign 0 is an encoder
			// bug: campaign 0 always writes the legacy layout.
			return openRecord{}, fmt.Errorf("%w: campaign-variant open for campaign 0", ErrBadRecord)
		}
	}
	if rec.Roster > 1<<31 || rec.D < 1 || rec.W < 1 || rec.D > maxReportDepth || rec.W > maxReportWidth ||
		rec.D*rec.W > maxSnapshotCells {
		return openRecord{}, fmt.Errorf("%w: open header", ErrBadRecord)
	}
	return rec, nil
}

// config frames a deployment-wide config/roster version bump onto w.
func (e *RecordEncoder) config(w io.Writer, configVersion, rosterVersion uint32) error {
	body := e.pre[:configBody]
	binary.LittleEndian.PutUint32(body[0:], configVersion)
	binary.LittleEndian.PutUint32(body[4:], rosterVersion)
	return e.record(w, recConfig, body, nil)
}

// decodeConfigBody parses a recConfig body.
func decodeConfigBody(body []byte) (configVersion, rosterVersion uint32, err error) {
	if len(body) != configBody {
		return 0, 0, fmt.Errorf("%w: config body %d bytes", ErrBadRecord, len(body))
	}
	return binary.LittleEndian.Uint32(body[0:]), binary.LittleEndian.Uint32(body[4:]), nil
}

// adjust frames an adjustment-share upload onto w. Campaign 0 writes
// the legacy 16-byte prefix; provisioned campaigns append their ID,
// which the decoder discriminates by the prefix remainder (cells are
// always whole 8-byte words).
func (e *RecordEncoder) adjust(w io.Writer, campaign uint32, round uint64, user int, cells []uint64) error {
	if campaign > maxRecordCampaign {
		return fmt.Errorf("%w: campaign %d", ErrBadRecord, campaign)
	}
	pre := e.pre[:20]
	binary.LittleEndian.PutUint64(pre[0:], round)
	binary.LittleEndian.PutUint64(pre[8:], uint64(user))
	if campaign == 0 {
		return e.record(w, recAdjust, pre[:16], e.cellBytes(cells))
	}
	binary.LittleEndian.PutUint32(pre[16:], campaign)
	return e.record(w, recAdjust, pre, e.cellBytes(cells))
}

// adjustRecord is a decoded adjustment body. Cells aliases the record
// buffer.
type adjustRecord struct {
	Round    uint64
	User     uint64
	Campaign uint32
	Cells    []byte
}

// decodeAdjustBody parses a recAdjust body. The prefix length mod 8
// distinguishes the layouts: 16-byte legacy prefix leaves the cell
// region a multiple of 8, the 20-byte campaign prefix leaves remainder
// 4.
func decodeAdjustBody(body []byte) (adjustRecord, error) {
	if len(body) < 16 {
		return adjustRecord{}, fmt.Errorf("%w: adjust body %d bytes", ErrBadRecord, len(body))
	}
	rec := adjustRecord{
		Round: binary.LittleEndian.Uint64(body[0:]),
		User:  binary.LittleEndian.Uint64(body[8:]),
	}
	switch (len(body) - 16) % 8 {
	case 0:
		rec.Cells = body[16:]
	case 4:
		if len(body) < 20 {
			return adjustRecord{}, fmt.Errorf("%w: adjust body %d bytes", ErrBadRecord, len(body))
		}
		rec.Campaign = binary.LittleEndian.Uint32(body[16:])
		rec.Cells = body[20:]
		if rec.Campaign == 0 || rec.Campaign > maxRecordCampaign {
			return adjustRecord{}, fmt.Errorf("%w: adjust campaign %d", ErrBadRecord, rec.Campaign)
		}
	default:
		return adjustRecord{}, fmt.Errorf("%w: adjust body %d bytes", ErrBadRecord, len(body))
	}
	if rec.User > 1<<31 {
		return adjustRecord{}, fmt.Errorf("%w: adjust user", ErrBadRecord)
	}
	return rec, nil
}

// close frames a round-close event onto w. Campaign 0 writes the
// legacy 8-byte body; provisioned campaigns append their ID.
func (e *RecordEncoder) close(w io.Writer, campaign uint32, round uint64) error {
	if campaign > maxRecordCampaign {
		return fmt.Errorf("%w: campaign %d", ErrBadRecord, campaign)
	}
	body := e.pre[:12]
	binary.LittleEndian.PutUint64(body, round)
	if campaign == 0 {
		return e.record(w, recClose, body[:8], nil)
	}
	binary.LittleEndian.PutUint32(body[8:], campaign)
	return e.record(w, recClose, body, nil)
}

// campaignDef frames a campaign provisioning onto w. The body is the
// campaign registry's canonical encoding, carried opaquely: the store
// persists and replays it without understanding the geometry inside.
func (e *RecordEncoder) campaignDef(w io.Writer, def []byte) error {
	if len(def) < campaignBodyMin {
		return fmt.Errorf("%w: campaign body %d bytes", ErrBadRecord, len(def))
	}
	if id := binary.LittleEndian.Uint32(def[0:]); id == 0 || id > maxRecordCampaign {
		return fmt.Errorf("%w: campaign id %d", ErrBadRecord, binary.LittleEndian.Uint32(def[0:]))
	}
	return e.record(w, recCampaign, def, nil)
}

// decodeCampaignBody parses a recCampaign body: the opaque canonical
// campaign encoding, checked just enough to extract a plausible ID.
func decodeCampaignBody(body []byte) (uint32, []byte, error) {
	if len(body) < campaignBodyMin {
		return 0, nil, fmt.Errorf("%w: campaign body %d bytes", ErrBadRecord, len(body))
	}
	id := binary.LittleEndian.Uint32(body[0:])
	if id == 0 || id > maxRecordCampaign {
		return 0, nil, fmt.Errorf("%w: campaign id %d", ErrBadRecord, id)
	}
	return id, body, nil
}

// register frames a bulletin-board registration onto w.
func (e *RecordEncoder) register(w io.Writer, user int, publicKey []byte) error {
	pre := e.pre[:8]
	binary.LittleEndian.PutUint64(pre, uint64(user))
	return e.record(w, recRegister, pre, publicKey)
}

// registerRecord is a decoded registration body. Key aliases the record
// buffer.
type registerRecord struct {
	User uint64
	Key  []byte
}

// decodeRegisterBody parses a recRegister body.
func decodeRegisterBody(body []byte) (registerRecord, error) {
	if len(body) < 8 {
		return registerRecord{}, fmt.Errorf("%w: register body %d bytes", ErrBadRecord, len(body))
	}
	rec := registerRecord{User: binary.LittleEndian.Uint64(body[0:]), Key: body[8:]}
	if rec.User > 1<<31 {
		return registerRecord{}, fmt.Errorf("%w: register user", ErrBadRecord)
	}
	return rec, nil
}
