#!/usr/bin/env bash
# Cross-version compatibility e2e for the config-handshake protocol.
#
# Usage: compat_e2e.sh <mode> <old-bin-dir> <new-bin-dir>
#   mode old-client-new-server : the previous release's flag-driven
#        clients must complete a full streamed-report round against the
#        current server (their reports decode as config version 0,
#        "unversioned", and the flag-derived geometry matches the
#        server's defaults).
#   mode new-client-old-server : the current zero-flag client must fail
#        FAST and CLEANLY against the previous release's server — the
#        old server drops the Hello, the client reports the missing
#        handshake — never hang, never join, never submit.
#
# Both directions bind to fixed localhost ports; the script owns the
# processes it starts and kills them on exit.
set -euo pipefail

mode="$1"
old="$2"
new="$3"

BE=127.0.0.1:7861
OPRF=127.0.0.1:7862
log="$(mktemp -d)"
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
}
trap cleanup EXIT

wait_port() { # host:port
    local hp="$1" i
    for i in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/${hp%:*}/${hp#*:}") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.2
    done
    echo "server on $hp never came up" >&2
    return 1
}

case "$mode" in
old-client-new-server)
    # Current server, 3-user roster; the old clients mirror its default
    # geometry through their own default flags (the legacy deployment
    # style this PR keeps working).
    "$new/eyewnder-server" -backend "$BE" -oprf "$OPRF" -users 3 >"$log/server.log" 2>&1 &
    pids+=($!)
    wait_port "$BE"
    "$old/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 0 -total 3 -visits 10 >"$log/c0.log" 2>&1 &
    c0=$!
    "$old/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 1 -total 3 -visits 10 >"$log/c1.log" 2>&1 &
    c1=$!
    if ! "$old/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 2 -total 3 -visits 10 -close >"$log/c2.log" 2>&1; then
        echo "old client failed against new server:" >&2
        tail -n 20 "$log"/c2.log "$log"/server.log >&2
        exit 1
    fi
    wait "$c0" "$c1"
    grep -q "closed: Users_th" "$log/c2.log"
    echo "OK: previous release's clients completed a round against the current server"
    ;;

new-client-old-server)
    "$old/eyewnder-server" -backend "$BE" -oprf "$OPRF" -users 3 >"$log/server.log" 2>&1 &
    pids+=($!)
    wait_port "$BE"
    # The new client must exit nonzero quickly with the handshake error,
    # not hang waiting for a roster it can never negotiate.
    set +e
    timeout 30 "$new/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 0 >"$log/c.log" 2>&1
    rc=$?
    set -e
    if [ "$rc" -eq 0 ]; then
        echo "new client unexpectedly succeeded against the old server" >&2
        exit 1
    fi
    if [ "$rc" -eq 124 ]; then
        echo "new client HUNG against the old server (timeout)" >&2
        tail -n 20 "$log/c.log" >&2
        exit 1
    fi
    if ! grep -qi "handshake" "$log/c.log"; then
        echo "new client failed without naming the handshake:" >&2
        tail -n 20 "$log/c.log" >&2
        exit 1
    fi
    echo "OK: current client failed cleanly against the previous release's server"
    ;;

*)
    echo "unknown mode $mode" >&2
    exit 2
    ;;
esac
