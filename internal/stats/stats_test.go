package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMeanBasic(t *testing.T) {
	approx(t, Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12, "Mean")
	approx(t, Mean([]float64{5}), 5, 1e-12, "Mean single")
	approx(t, Mean(nil), 0, 0, "Mean empty")
}

func TestMeanKahanStability(t *testing.T) {
	// 1e8 + many tiny values: naive summation loses the tail.
	xs := make([]float64, 1001)
	xs[0] = 1e8
	for i := 1; i <= 1000; i++ {
		xs[i] = 1e-3
	}
	want := (1e8 + 1.0) / 1001.0
	approx(t, Mean(xs), want, 1e-6, "Mean Kahan")
}

func TestMedianOddEven(t *testing.T) {
	approx(t, Median([]float64{3, 1, 2}), 2, 0, "Median odd")
	approx(t, Median([]float64{4, 1, 3, 2}), 2.5, 0, "Median even")
	approx(t, Median(nil), 0, 0, "Median empty")
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{9, 1, 5}
	Median(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 = 32/7.
	approx(t, Variance(xs), 32.0/7.0, 1e-12, "Variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7.0), 1e-12, "StdDev")
	approx(t, Variance([]float64{1}), 0, 0, "Variance n=1")
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Fatalf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Fatalf("Max = %v, %v", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	q, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, q, 3, 1e-12, "Quantile 0.5")
	q, _ = Quantile(xs, 0)
	approx(t, q, 1, 0, "Quantile 0")
	q, _ = Quantile(xs, 1)
	approx(t, q, 5, 0, "Quantile 1")
	q, _ = Quantile(xs, 0.25)
	approx(t, q, 2, 1e-12, "Quantile 0.25")
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatalf("Quantile(nil) err = %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("Quantile(1.5) should error")
	}
}

func TestQuantileMatchesMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		q, err := Quantile(xs, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, q, Median(xs), 1e-9, "Quantile(0.5) vs Median")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 {
		t.Fatalf("N = %d", s.N)
	}
	approx(t, s.Mean, 2, 1e-12, "Summary.Mean")
	approx(t, s.Median, 2, 0, "Summary.Median")
	approx(t, s.Min, 1, 0, "Summary.Min")
	approx(t, s.Max, 3, 0, "Summary.Max")
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	// Property: min <= mean <= max and min <= median <= max.
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		m := Mean(xs)
		md := Median(xs)
		return mn-1e-9 <= m && m <= mx+1e-9 && mn <= md && md <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceShiftInvariantProperty(t *testing.T) {
	// Property: Var(x + c) == Var(x).
	f := func(raw []int8, shift int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) + float64(shift)
		}
		return math.Abs(Variance(xs)-Variance(ys)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
