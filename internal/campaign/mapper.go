package campaign

import (
	"eyewnder/internal/addetect"
	"eyewnder/internal/contentbased"
	"eyewnder/internal/taxonomy"
)

// Mapper routes detected ads to campaigns: a campaign whose name is a
// taxonomy topic receives every ad whose landing page classifies under
// that topic (contentbased.LandingCategory, the same classifier the
// detection-baseline evaluation uses). Ads with no landing URL (content
// fingerprints only) or with a category no campaign claims are dropped
// — they still count toward campaign 0 in deployments that run the
// legacy campaign, but the mapper itself never invents a destination.
type Mapper struct {
	byTopic map[taxonomy.Topic]uint32
}

// NewMapper builds a mapper over the campaigns; entries whose Name is
// not a taxonomy topic are ignored (they are reachable only by explicit
// campaign tagging, not by detection).
func NewMapper(campaigns []Campaign) *Mapper {
	m := &Mapper{byTopic: make(map[taxonomy.Topic]uint32)}
	for _, c := range campaigns {
		if topic, ok := taxonomy.ByName(c.Name); ok {
			m.byTopic[topic] = c.ID
		}
	}
	return m
}

// Map returns the campaign the detected ad belongs to. ok is false when
// the ad carries no classifiable landing URL or no campaign claims its
// category — the caller drops the ad (or routes it to campaign 0).
func (m *Mapper) Map(ad *addetect.Ad) (id uint32, ok bool) {
	if ad == nil || ad.LandingURL == "" {
		return 0, false
	}
	topic, ok := contentbased.LandingCategory(ad.LandingURL)
	if !ok {
		return 0, false
	}
	id, ok = m.byTopic[topic]
	return id, ok
}

// MapTopic returns the campaign claiming the topic directly, for
// callers that classified out-of-band.
func (m *Mapper) MapTopic(topic taxonomy.Topic) (id uint32, ok bool) {
	id, ok = m.byTopic[topic]
	return id, ok
}
