package campaign

import (
	"fmt"
	"testing"

	"eyewnder/internal/addetect"
	"eyewnder/internal/taxonomy"
)

func testDirectory(t *testing.T) []Campaign {
	t.Helper()
	return []Campaign{
		{ID: 1, Name: "cars"},
		{ID: 2, Name: "travel"},
		{ID: 3, Name: "fast-food"},
		{ID: 9, Name: "brand-halo"}, // not a taxonomy topic: detection never routes here
	}
}

// TestMapperRouting drives the detector→campaign path table-style: each
// classified ad must land in exactly the campaign claiming its landing
// category, and the unmapped cases must take the drop path.
func TestMapperRouting(t *testing.T) {
	m := NewMapper(testDirectory(t))
	cases := []struct {
		name   string
		ad     *addetect.Ad
		wantID uint32
		wantOK bool
	}{
		{"cars landing", &addetect.Ad{LandingURL: "https://shop1.example/cars/offer-1"}, 1, true},
		{"travel landing", &addetect.Ad{LandingURL: "https://shop2.example/travel/offer-9"}, 2, true},
		{"hyphenated topic", &addetect.Ad{LandingURL: "https://shop3.example/fast-food/offer-2"}, 3, true},
		{"unclaimed topic drops", &addetect.Ad{LandingURL: "https://shop4.example/fishing/offer-3"}, 0, false},
		{"no taxonomy segment drops", &addetect.Ad{LandingURL: "https://shop5.example/checkout"}, 0, false},
		{"content-only ad drops", &addetect.Ad{ContentID: "deadbeef"}, 0, false},
		{"nil ad drops", nil, 0, false},
	}
	for _, tc := range cases {
		id, ok := m.Map(tc.ad)
		if id != tc.wantID || ok != tc.wantOK {
			t.Errorf("%s: Map() = (%d, %v), want (%d, %v)", tc.name, id, ok, tc.wantID, tc.wantOK)
		}
	}
}

// TestMapperFromDetectorScan runs real pages through the addetect
// detector and asserts the detected ads deterministically land in the
// right campaign — the end-to-end classification path the pipeline sim
// uses.
func TestMapperFromDetectorScan(t *testing.T) {
	m := NewMapper(testDirectory(t))
	det := addetect.New(nil)
	page := func(landing string) string {
		return fmt.Sprintf(`<html><body>
<div class="ad-slot"><a href=%q><img src="https://cdn.example/ads/creative-1.png" width="300" height="250"></a></div>
</body></html>`, landing)
	}
	for _, tc := range []struct {
		landing string
		wantID  uint32
		wantOK  bool
	}{
		{"https://shop1.example/cars/offer-7", 1, true},
		{"https://shop2.example/travel/offer-1", 2, true},
		{"https://shop9.example/pets/offer-4", 0, false}, // no campaign claims pets
	} {
		ads := det.Scan(page(tc.landing))
		if len(ads) != 1 {
			t.Fatalf("landing %s: detected %d ads, want 1", tc.landing, len(ads))
		}
		id, ok := m.Map(ads[0])
		if id != tc.wantID || ok != tc.wantOK {
			t.Errorf("landing %s: Map() = (%d, %v), want (%d, %v)", tc.landing, id, ok, tc.wantID, tc.wantOK)
		}
	}
}

func TestMapTopic(t *testing.T) {
	m := NewMapper(testDirectory(t))
	if id, ok := m.MapTopic(taxonomy.Cars); !ok || id != 1 {
		t.Fatalf("MapTopic(Cars) = (%d, %v)", id, ok)
	}
	if _, ok := m.MapTopic(taxonomy.Fishing); ok {
		t.Fatal("unclaimed topic mapped")
	}
}
