package churn

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// testConfig keeps e2e runs fast: a few hundred users is enough to hit
// every lifecycle event kind in four rounds, while a real back-end and
// real wire connections are exercised end to end.
func testConfig(users int, seed uint64) Config {
	return Config{Users: users, Seed: seed, Rounds: 4, AdjustWait: 5 * time.Second}
}

// TestGenerateDeterministic pins trace generation: same seed, same
// trace, bit for bit; different seed, different trace.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testConfig(400, 9))
	b := Generate(testConfig(400, 9))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := Generate(testConfig(400, 10))
	if reflect.DeepEqual(a.Rounds, c.Rounds) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestGenerateEventsDisjoint checks the trace's structural contract:
// per round, a user appears in at most one of Joins/Reregs/Drops; a
// joiner or re-registrant may additionally go dark (register, then
// vanish — the version bump lands but no report follows), a dropper
// never does; and nothing ever happens to a dropped user again.
func TestGenerateEventsDisjoint(t *testing.T) {
	cfg := testConfig(600, 3)
	cfg.Rounds = 6
	tr := Generate(cfg)
	pop := newPopulation(cfg.Users)
	for _, ev := range tr.Rounds {
		seen := make(map[int]string)
		mark := func(list []int, kind string) {
			for _, u := range list {
				if prev, dup := seen[u]; dup && !(kind == "dark" && (prev == "join" || prev == "rereg")) {
					t.Fatalf("round %d: user %d in both %s and %s", ev.Round, u, prev, kind)
				}
				seen[u] = kind
				if pop.dropped[u] {
					t.Fatalf("round %d: dropped user %d has event %s", ev.Round, u, kind)
				}
			}
		}
		mark(ev.Joins, "join")
		mark(ev.Reregs, "rereg")
		mark(ev.Drops, "drop")
		for _, u := range ev.Joins {
			if pop.gen[u] != 0 {
				t.Fatalf("round %d: join for already-registered user %d", ev.Round, u)
			}
		}
		for _, u := range ev.Reregs {
			if pop.gen[u] == 0 {
				t.Fatalf("round %d: rereg for unregistered user %d", ev.Round, u)
			}
		}
		mark(ev.Darks, "dark")
		pop.apply(ev)
		for _, u := range ev.Darks {
			if pop.gen[u] == 0 || pop.dropped[u] {
				t.Fatalf("round %d: dark user %d is not active", ev.Round, u)
			}
		}
	}
}

// TestRingCancellation checks the harness's blinding algebra directly,
// without a server: summing every ring member's blinded cells yields
// the plain sums when everyone is present, and subtracting the
// reporters' adjustment shares restores the plain sums when some
// members go dark.
func TestRingCancellation(t *testing.T) {
	const cells, round, seed = 16, 3, 77
	active := []int{1, 4, 5, 9, 12}
	gens := make([]uint32, 13)
	for _, u := range active {
		gens[u] = uint32(u%3 + 1)
	}
	dark := map[int]bool{5: true, 9: true}
	missing := make([]bool, 13)
	for u := range dark {
		missing[u] = true
	}

	plain := make([]uint64, cells)
	sum := make([]uint64, cells)
	var nb [2]int
	for i, u := range active {
		if dark[u] {
			continue
		}
		user := make([]uint64, cells)
		for c := range user {
			user[c] = uint64(u)*100 + uint64(c) // stand-in sketch cells
			plain[c] += user[c]
		}
		a, b, n := ringNeighbors(active, i)
		nb[0], nb[1] = a, b
		blindCells(user, seed, round, u, nb[:n], gens)
		for c := range sum {
			sum[c] += user[c]
		}
	}
	share := make([]uint64, cells)
	for i, u := range active {
		if dark[u] {
			continue
		}
		a, b, n := ringNeighbors(active, i)
		nb[0], nb[1] = a, b
		adjustShare(share, seed, round, u, nb[:n], gens, missing)
		for c := range sum {
			sum[c] -= share[c]
		}
	}
	for c := range sum {
		if sum[c] != plain[c] {
			t.Fatalf("cell %d: adjusted sum %d != plain sum %d", c, sum[c], plain[c])
		}
	}
}

// TestReplayEndToEnd is the tentpole assertion at test scale: a seeded
// trace with well over 10%% of reporters going dark every round replays
// against a real server, every non-empty round closes through the
// adjustment path, and every round's finalized counts byte-match the
// trace oracle (Replay fails otherwise).
func TestReplayEndToEnd(t *testing.T) {
	cfg := testConfig(300, 42)
	res, err := Run(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != cfg.Rounds {
		t.Fatalf("replayed %d rounds, want %d", len(res.Rounds), cfg.Rounds)
	}
	darks := 0
	for _, rr := range res.Rounds {
		if rr.Skipped {
			continue
		}
		if !rr.Adjusted {
			t.Fatalf("round %d closed without the adjustment path (%d missing)", rr.Round, rr.Missing)
		}
		if rr.Shares != rr.Reporters {
			t.Fatalf("round %d: %d shares from %d reporters", rr.Round, rr.Shares, rr.Reporters)
		}
		darks += rr.Darks
	}
	if darks == 0 {
		t.Fatal("trace produced no dark users; the adjustment round was never forced")
	}
	if res.Digest == "" {
		t.Fatal("empty digest")
	}
}

// TestReplayDeterministic double-runs one seed and cross-runs another:
// the digest (chained over every round's finalized counts) must be
// identical for identical seeds and different otherwise.
func TestReplayDeterministic(t *testing.T) {
	a, err := Run(testConfig(200, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(200, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed, different digests: %s != %s", a.Digest, b.Digest)
	}
	if a.Reports != b.Reports || a.Shares != b.Shares {
		t.Fatalf("same seed, different traffic: %d/%d reports, %d/%d shares",
			a.Reports, b.Reports, a.Shares, b.Shares)
	}
	c, err := Run(testConfig(200, 6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == c.Digest {
		t.Fatal("different seeds produced the same digest")
	}
}

// TestReplayDurable replays on a disk-backed round store: every
// registration, report, share, and close also pays its WAL append, and
// the digest must match the volatile run's — durability must not
// change the arithmetic.
func TestReplayDurable(t *testing.T) {
	volatile, err := Run(testConfig(150, 21), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(150, 21)
	cfg.DataDir = t.TempDir()
	durable, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if volatile.Digest != durable.Digest {
		t.Fatalf("durable run diverged from volatile: %s != %s", durable.Digest, volatile.Digest)
	}
}

// TestTraceRoundTripsJSON pins the artifact format: a trace survives
// JSON encode/decode intact (CI uploads trace.json on failure and a
// developer replays it).
func TestTraceRoundTripsJSON(t *testing.T) {
	tr := Generate(testConfig(100, 13))
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Rounds, back.Rounds) {
		t.Fatal("trace did not survive the JSON round trip")
	}
}
