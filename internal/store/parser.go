package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// SegmentParser incrementally parses a WAL segment's byte stream into
// decoded events. It is the follower-side half of segment shipping: the
// replication layer fetches arbitrary byte ranges of the primary's
// active segment — chunk boundaries land mid-record all the time, a
// bufio flush is not record-aligned — feeds them in order, and drains
// whatever complete records they finish.
//
//	p := NewSegmentParser()
//	for each fetched chunk c, in file order:
//	    p.Feed(c)
//	    for {
//	        ev, err := p.Next()
//	        if ev == nil { break }      // need more bytes (or err != nil)
//	        apply(ev)
//	    }
//
// Next's error split mirrors segment replay: ErrCorruptRecord means the
// bytes themselves are bad — on a stream that will grow no further
// (primary crashed mid-append) that is the torn tail, and the caller
// stops the segment cleanly at Offset(); ErrBadRecord means a record
// whose checksum validates does not parse, which is version skew, and
// the caller must refuse loudly rather than skip. Both are sticky: the
// parser refuses to continue past the damage.
//
// A SegmentParser is not safe for concurrent use.
type SegmentParser struct {
	buf   []byte
	start int   // consumed prefix of buf
	off   int64 // absolute segment offset of buf[start]
	magic bool  // segment magic verified and consumed
	err   error // sticky
}

// NewSegmentParser returns a parser positioned at offset 0 of a
// segment, expecting the 8-byte segment magic first.
func NewSegmentParser() *SegmentParser {
	return &SegmentParser{}
}

// Feed appends the next chunk of the segment's byte stream. Chunks must
// be fed in file order with no gaps. Feed copies the data; the caller
// may reuse its buffer. Events previously returned by Next have
// byte-slice fields aliasing the parser's buffer and are invalidated by
// Feed.
func (p *SegmentParser) Feed(data []byte) {
	if p.start > 0 {
		n := copy(p.buf, p.buf[p.start:])
		p.buf = p.buf[:n]
		p.start = 0
	}
	p.buf = append(p.buf, data...)
}

// Next returns the next complete record's event. A nil event with a nil
// error means the buffered bytes end mid-record: feed more. A nil event
// with ErrCorruptRecord or ErrBadRecord means the stream is damaged at
// Offset() (see the type comment for which is recoverable); the error
// is sticky. The returned event's byte-slice fields alias the parser's
// buffer and are valid until the next Feed.
func (p *SegmentParser) Next() (Event, error) {
	if p.err != nil {
		return nil, p.err
	}
	avail := p.buf[p.start:]
	if !p.magic {
		if len(avail) < len(walMagic) {
			return nil, nil
		}
		if string(avail[:len(walMagic)]) != walMagic {
			p.err = fmt.Errorf("%w: bad segment magic", ErrCorruptRecord)
			return nil, p.err
		}
		p.start += len(walMagic)
		p.off += int64(len(walMagic))
		p.magic = true
		avail = p.buf[p.start:]
	}
	if len(avail) < 5 {
		return nil, nil
	}
	n := binary.LittleEndian.Uint32(avail[0:4])
	kind := avail[4]
	if n > maxRecordBody {
		p.err = fmt.Errorf("%w: %d-byte body", ErrCorruptRecord, n)
		return nil, p.err
	}
	total := walRecordOverhead + int(n)
	if len(avail) < total {
		return nil, nil
	}
	body := avail[5 : 5+n]
	crc := crc32.Update(0, castagnoli, avail[4:5])
	crc = crc32.Update(crc, castagnoli, body)
	if binary.LittleEndian.Uint32(avail[5+n:total]) != crc {
		p.err = fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
		return nil, p.err
	}
	ev, err := DecodeEvent(kind, body)
	if err != nil {
		p.err = err // checksummed but unparseable: version skew, refuse
		return nil, p.err
	}
	p.start += total
	p.off += int64(total)
	return ev, nil
}

// Offset returns the absolute byte offset just past the last fully
// parsed record (including the segment magic once consumed). On a
// damaged stream it is where the damage starts — the offset a follower
// truncates to before re-requesting.
func (p *SegmentParser) Offset() int64 { return p.off }

// SkipTo repositions the parser at absolute segment offset off with an
// empty buffer, treating the magic as already verified when off > 0. A
// follower that recovered its local tail up to some offset resumes
// tailing there instead of re-feeding the whole file.
func (p *SegmentParser) SkipTo(off int64) {
	p.buf = p.buf[:0]
	p.start = 0
	p.off = off
	p.magic = off >= int64(len(walMagic))
	p.err = nil
}
