// Simulation example: a compact version of the paper's Figure 3 study —
// sweep the advertisers' frequency cap and watch the detector's false
// negatives collapse once an ad "follows" its target often enough.
package main

import (
	"fmt"
	"log"

	"eyewnder/internal/adsim"
	"eyewnder/internal/experiments"
)

func main() {
	base := adsim.DefaultConfig()
	base.Users = 150
	base.Sites = 400
	base.Campaigns = 600 // keep ads ≫ users, like the real web
	base.AvgVisitsPerWeek = 90

	cfg := experiments.Fig3Config{
		Base:        base,
		Caps:        []int{1, 2, 3, 4, 6, 8, 10, 12},
		Repetitions: 2,
	}
	pts, err := experiments.Fig3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("False negatives vs. frequency cap (mini Figure 3)")
	fmt.Printf("%-6s %10s %16s  %s\n", "cap", "Mean FN%", "Mean+Median FN%", "bar (Mean)")
	for _, p := range pts {
		bar := ""
		for i := 0.0; i < p.FNMeanPct; i += 4 {
			bar += "#"
		}
		fmt.Printf("%-6d %10.1f %16.1f  %s\n", p.FrequencyCap, p.FNMeanPct, p.FNMeanMedianPct, bar)
	}
	fmt.Println("\nReading: a cap of 1 makes targeted ads indistinguishable (FN ~100%);")
	fmt.Println("a handful of repetitions makes them detectable, and Mean+Median trades")
	fmt.Println("later detection for a lower floor — the paper's Figure 3 shape.")
}
