// Command eyewnder-client is a simulated browser-extension user: it
// connects to a running eyewnder-server pair, negotiates the round
// config, registers its blinding key, browses simulator-rendered pages
// for a week, uploads its blinded report, and audits the ads it saw
// once the round is closed.
//
// The client carries ZERO protocol flags: the sketch geometry, ad-ID
// space, blinding-keystream suite, roster size, and ack policy all
// arrive in the server's Welcome handshake, so operators cannot
// misconfigure a client into corrupting a round. A server that does not
// speak the handshake (an older release) is reported cleanly.
//
// Run one process per user, then close the round with -close once every
// user has reported:
//
//	eyewnder-client -user 0 &
//	eyewnder-client -user 1 &
//	eyewnder-client -user 2 -close
package main

import (
	"flag"
	"log"
	"time"

	"eyewnder/internal/adsim"
	"eyewnder/internal/client"
	"eyewnder/internal/detector"
	"eyewnder/internal/wire"
)

func main() {
	var (
		backendAddr = flag.String("backend", "127.0.0.1:7001", "back-end address")
		oprfAddr    = flag.String("oprf", "127.0.0.1:7002", "oprf-server address")
		user        = flag.Int("user", 0, "this user's roster index")
		visits      = flag.Int("visits", 40, "page visits to simulate")
		round       = flag.Uint64("round", 1, "reporting round")
		closeRound  = flag.Bool("close", false, "close the round after reporting and audit")
		seed        = flag.Int64("seed", 1, "browsing seed")
	)
	flag.Parse()

	beConn, err := wire.Dial(*backendAddr)
	if err != nil {
		log.Fatalf("dial back-end: %v", err)
	}
	defer beConn.Close()
	opConn, err := wire.Dial(*oprfAddr)
	if err != nil {
		log.Fatalf("dial oprf-server: %v", err)
	}
	defer opConn.Close()
	pub, err := client.FetchOPRFPublicKey(opConn)
	if err != nil {
		log.Fatalf("fetch oprf key: %v", err)
	}

	// No Params in the options: client.New negotiates the round config
	// from the back-end (Hello/Welcome) before doing anything else.
	ext, err := client.New(client.Options{
		User: *user, Detector: detector.DefaultConfig(),
	}, &client.WireBackend{C: beConn}, &client.WireEvaluator{C: opConn}, pub)
	if err != nil {
		log.Fatalf("negotiate config: %v", err)
	}
	cfg := ext.Config()
	total := cfg.RosterSize
	log.Printf("negotiated config v%d: ε=%g δ=%g |A|=%d keystream=%s roster v%d (%d users)",
		cfg.Version, cfg.Params.Epsilon, cfg.Params.Delta, cfg.Params.IDSpace,
		cfg.Params.Keystream, cfg.RosterVersion, total)

	if err := ext.Register(); err != nil {
		log.Fatalf("register: %v", err)
	}
	log.Printf("user %d registered; waiting for full roster of %d", *user, total)
	for {
		if err := ext.Join(); err == nil {
			break
		}
		time.Sleep(300 * time.Millisecond)
	}
	log.Printf("user %d joined the roster (config v%d)", *user, ext.Config().Version)

	// Browse simulator-generated pages.
	simCfg := adsim.DefaultConfig()
	simCfg.Users = total
	simCfg.Sites = 200
	simCfg.Campaigns = 400
	simCfg.Seed = *seed
	sim, err := adsim.New(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	res := sim.Run()
	t0 := adsim.SimStart
	seen := map[string]bool{}
	n := 0
	for _, imp := range res.Impressions {
		if imp.User != *user || n >= *visits {
			continue
		}
		n++
		site := sim.Sites()[imp.Site]
		camp := sim.Campaign(imp.Campaign)
		page := adsim.RenderPage(site, []*adsim.Campaign{camp}, int64(n))
		ads, err := ext.VisitPage(site.Domain, page, imp.Time)
		if err != nil {
			log.Fatalf("visit: %v", err)
		}
		for _, ad := range ads {
			seen[ad.Key()] = true
		}
	}
	log.Printf("user %d browsed %d pages, observed %d distinct ads", *user, n, len(seen))

	if err := ext.SubmitReport(*round); err != nil {
		log.Fatalf("report: %v", err)
	}
	log.Printf("user %d submitted blinded report for round %d", *user, *round)

	if !*closeRound {
		return
	}
	// Wait until everyone reported, then close and audit.
	for {
		reported, _, _, err := (&client.WireBackend{C: beConn}).RoundStatus(*round)
		if err != nil {
			log.Fatal(err)
		}
		if reported >= total {
			break
		}
		time.Sleep(300 * time.Millisecond)
	}
	var resp wire.CloseRoundResp
	if err := beConn.Do(wire.TypeCloseRound, wire.CloseRoundReq{Round: *round}, &resp); err != nil {
		log.Fatalf("close round: %v", err)
	}
	log.Printf("round %d closed: Users_th=%.2f over %d distinct ads", *round, resp.UsersTh, resp.DistinctAds)
	now := t0.Add(6 * 24 * time.Hour)
	for key := range seen {
		v, err := ext.AuditAd(key, *round, now)
		if err != nil {
			log.Fatalf("audit: %v", err)
		}
		log.Printf("audit %-60s → %-12s (#domains=%d th=%.2f  #users=%d th=%.2f)",
			key, v.Class, v.DomainCount, v.DomainsThreshold, v.UserCount, v.UsersThreshold)
	}
}
