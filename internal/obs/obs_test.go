package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPromEscaping holds the text-format escaping rules for label
// values: backslash, double quote, and newline must come out escaped.
func TestPromEscaping(t *testing.T) {
	r := New()
	r.Counter("esc_total", "escaping probe", "path", `C:\x "q"`+"\nend").Inc()
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="C:\\x \"q\"\nend"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped sample missing:\nwant %s\ngot:\n%s", want, sb.String())
	}
}

// TestPromHeaders checks one HELP/TYPE pair per metric name, with
// label variants grouped under it even when registration interleaves
// other metrics.
func TestPromHeaders(t *testing.T) {
	r := New()
	r.Counter("a_total", "a help", "reason", "x").Inc()
	r.Gauge("g", "g help").Set(-3)
	r.Counter("a_total", "a help", "reason", "y").Add(2)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE a_total counter"); n != 1 {
		t.Fatalf("want exactly one TYPE line for a_total, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "# TYPE g gauge") {
		t.Fatalf("gauge TYPE line missing:\n%s", out)
	}
	// Variants adjacent: x line directly before y line.
	ix := strings.Index(out, `a_total{reason="x"} 1`)
	iy := strings.Index(out, `a_total{reason="y"} 2`)
	ig := strings.Index(out, "g -3")
	if ix < 0 || iy < 0 || ig < 0 {
		t.Fatalf("samples missing:\n%s", out)
	}
	if !(ix < iy && iy < ig) {
		t.Fatalf("label variants not grouped before g:\n%s", out)
	}
}

// TestHistogramInvariants verifies the exposition invariants clients
// depend on: buckets are cumulative and non-decreasing, the +Inf
// bucket equals _count, and _sum matches the observed total.
func TestHistogramInvariants(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "probe", []time.Duration{
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	})
	obs := []time.Duration{
		500 * time.Microsecond, // bucket 0
		time.Millisecond,       // bucket 0 (le is inclusive)
		5 * time.Millisecond,   // bucket 1
		50 * time.Millisecond,  // bucket 2
		time.Second,            // above all bounds → only +Inf
	}
	var total time.Duration
	for _, d := range obs {
		h.Observe(d)
		total += d
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.001"} 2`,
		`lat_seconds_bucket{le="0.01"} 3`,
		`lat_seconds_bucket{le="0.1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 || h.Sum() != total {
		t.Fatalf("count/sum: got %d/%v want 5/%v", h.Count(), h.Sum(), total)
	}
	if !strings.Contains(out, "lat_seconds_sum "+formatFloat(total.Seconds())) {
		t.Errorf("sum sample missing in:\n%s", out)
	}
}

// TestGetOrRegister checks the promotion-critical property: asking for
// the same (name, labels) returns the same instrument, and a GaugeFunc
// re-registration swaps the callback in place.
func TestGetOrRegister(t *testing.T) {
	r := New()
	c1 := r.Counter("x_total", "h")
	c1.Inc()
	c2 := r.Counter("x_total", "h")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	if r.Counter("x_total", "h", "reason", "a") == c1 {
		t.Fatal("different labels returned the same counter")
	}
	r.GaugeFunc("fn", "h", func() float64 { return 1 })
	r.GaugeFunc("fn", "h", func() float64 { return 2 })
	if got := r.Snapshot()["fn"]; got != 2 {
		t.Fatalf("GaugeFunc re-register did not replace callback: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", "h")
}

// TestConcurrentHammer bumps every instrument kind from many
// goroutines; under -race this is the data-race check, and the final
// totals prove no update was lost.
func TestConcurrentHammer(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "h")
	sc := r.ShardedCounter("sc_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", nil)
	const workers, iters = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := sc.NextShard()
			for i := 0; i < iters; i++ {
				c.Inc()
				sc.Inc(shard)
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%128 == 0 {
					// Scrape concurrently with the writers.
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Fatalf("counter lost updates: %d", c.Value())
	}
	if sc.Value() != workers*iters {
		t.Fatalf("sharded counter lost updates: %d", sc.Value())
	}
	if g.Value() != workers*iters {
		t.Fatalf("gauge lost updates: %d", g.Value())
	}
	if h.Count() != workers*iters {
		t.Fatalf("histogram lost updates: %d", h.Count())
	}
	if got := r.Snapshot()["sc_total"]; got != workers*iters {
		t.Fatalf("sharded counter snapshot: %v", got)
	}
}

// TestUpdateAllocs pins the hot-path contract: instrument updates are
// 0 allocs/op.
func TestUpdateAllocs(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "h")
	sc := r.ShardedCounter("sc_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", nil)
	shard := sc.NextShard()
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		sc.Inc(shard)
		g.Set(7)
		h.Observe(3 * time.Millisecond)
	}); n != 0 {
		t.Fatalf("instrument updates allocate: %v allocs/op", n)
	}
}

// TestJSONSnapshot checks the flattened JSON form used by the harness
// scrape diff.
func TestJSONSnapshot(t *testing.T) {
	r := New()
	r.Counter("c_total", "h").Add(3)
	r.Histogram("h_seconds", "h", nil).Observe(time.Millisecond)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatal(err)
	}
	if m["c_total"] != 3 || m["h_seconds_count"] != 1 {
		t.Fatalf("unexpected snapshot: %v", m)
	}
}

// TestAdminHandler exercises the four endpoints through a live
// httptest server, including the 503 health path.
func TestAdminHandler(t *testing.T) {
	r := New()
	r.Counter("c_total", "h").Inc()
	unhealthy := false
	h := Handler(AdminOptions{
		Registry: r,
		Status:   func() any { return map[string]int{"rounds": 2} },
		Health: func() Health {
			if unhealthy {
				return Health{OK: false, Role: "follower", Detail: "replication stopped"}
			}
			return Health{OK: true, Role: "follower", Detail: "caught up"}
		},
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "c_total 1") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/statusz"); code != 200 || !strings.Contains(body, `"rounds": 2`) {
		t.Fatalf("/statusz: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "caught up") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	unhealthy = true
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "replication stopped") {
		t.Fatalf("unhealthy /healthz: %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}
