// Package campaign defines the multi-campaign registry: named counting
// campaigns with independent sketch geometry, keystream suite, cadence,
// and retention, multiplexed over one deployment. Campaign 0 is the
// implicit legacy campaign — the deployment's base round config — and
// is never listed in a directory; every other campaign is provisioned
// explicitly and advertised to clients through the wire layer's
// campaign directory frame.
//
// A campaign definition has one canonical binary encoding (AppendBinary
// / DecodeBinary) shared by the wire directory frame, the store's
// campaign WAL record, and the snapshot directory section, so the
// provisioned state a follower replays or a restart recovers is
// byte-identical to what the primary advertised.
package campaign

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"eyewnder/internal/blind"
	"eyewnder/internal/privacy"
)

// Errors of the campaign registry.
var (
	// ErrBadCampaign marks a definition that fails validation (reserved
	// ID, bad geometry, unknown suite, oversized name).
	ErrBadCampaign = errors.New("campaign: invalid definition")
	// ErrDuplicate marks provisioning an ID the directory already holds.
	ErrDuplicate = errors.New("campaign: duplicate id")
	// ErrUnknown marks a lookup of an ID the directory does not hold.
	ErrUnknown = errors.New("campaign: unknown id")
)

// MaxName caps a campaign name: names ride in fixed directory frames
// with a 16-bit length field, and short names keep metric labels sane.
const MaxName = 255

// wireFixed is the fixed prefix of the binary encoding:
// id(4) epsilon(8) delta(8) idSpace(8) keystream(1) flags(1)
// nameLen(2) retain(4) cadence(4), little-endian, then nameLen name
// bytes.
const wireFixed = 40

// flagKeystreamSet marks that the definition pins its own keystream
// suite rather than inheriting the deployment's.
const flagKeystreamSet = 0x01

// Campaign is one provisioned counting campaign. Zero-valued geometry
// fields inherit the deployment's base params (Params), so a campaign
// may override only what it needs — for example a coarser sketch for a
// high-cardinality category.
type Campaign struct {
	// ID keys all round state ((campaign, round) everywhere). ID 0 is
	// reserved for the implicit legacy campaign and never appears in a
	// directory.
	ID uint32
	// Name labels the campaign in metrics, /statusz, and the
	// detector→campaign mapping (a name matching a taxonomy topic
	// receives that topic's detections).
	Name string
	// Epsilon and Delta size the campaign's CMS; zero inherits the base.
	Epsilon, Delta float64
	// IDSpace is the campaign's ad-ID space; zero inherits the base.
	IDSpace uint64
	// Keystream pins the blinding expansion suite when KeystreamSet;
	// otherwise the campaign inherits the deployment's.
	Keystream blind.Keystream
	// KeystreamSet reports whether Keystream is explicit.
	KeystreamSet bool
	// RetainRounds overrides the deployment's closed-round retention
	// when positive.
	RetainRounds int
	// CadenceSec is the advisory reporting cadence in seconds (0 =
	// deployment default); the server does not schedule on it, clients
	// and sims may.
	CadenceSec uint32
}

// Validate checks the definition is provisionable.
func (c Campaign) Validate() error {
	if c.ID == 0 {
		return fmt.Errorf("%w: id 0 is reserved for the legacy campaign", ErrBadCampaign)
	}
	if c.Name == "" || len(c.Name) > MaxName {
		return fmt.Errorf("%w: name %q", ErrBadCampaign, c.Name)
	}
	if !(c.Epsilon >= 0 && c.Epsilon < 1) || !(c.Delta >= 0 && c.Delta < 1) {
		return fmt.Errorf("%w: epsilon=%g delta=%g", ErrBadCampaign, c.Epsilon, c.Delta)
	}
	if c.KeystreamSet && !c.Keystream.Valid() {
		return fmt.Errorf("%w: keystream 0x%02x", ErrBadCampaign, byte(c.Keystream))
	}
	if c.RetainRounds < 0 {
		return fmt.Errorf("%w: retain %d", ErrBadCampaign, c.RetainRounds)
	}
	return nil
}

// Params resolves the campaign's effective round parameters against the
// deployment's base params: zero-valued overrides inherit.
func (c Campaign) Params(base privacy.Params) privacy.Params {
	p := base
	if c.Epsilon > 0 {
		p.Epsilon = c.Epsilon
	}
	if c.Delta > 0 {
		p.Delta = c.Delta
	}
	if c.IDSpace > 0 {
		p.IDSpace = c.IDSpace
	}
	if c.KeystreamSet {
		p.Keystream = c.Keystream
	}
	return p
}

// AppendBinary appends the canonical binary encoding of c to dst and
// returns the extended slice. The layout (all little-endian) is the
// directory-frame entry: id(4) epsilon(8) delta(8) idSpace(8)
// keystream(1) flags(1) nameLen(2) retain(4) cadence(4) name(nameLen).
func (c Campaign) AppendBinary(dst []byte) []byte {
	dst = le32(dst, c.ID)
	dst = le64(dst, f64bits(c.Epsilon))
	dst = le64(dst, f64bits(c.Delta))
	dst = le64(dst, c.IDSpace)
	var flags byte
	if c.KeystreamSet {
		flags |= flagKeystreamSet
	}
	dst = append(dst, byte(c.Keystream), flags)
	dst = append(dst, byte(len(c.Name)), byte(len(c.Name)>>8))
	dst = le32(dst, uint32(c.RetainRounds))
	dst = le32(dst, c.CadenceSec)
	return append(dst, c.Name...)
}

// DecodeBinary decodes one campaign definition from the front of b,
// returning the definition, the number of bytes consumed, and an error
// when b is short or the definition fails Validate. The decoder is the
// single parser behind the wire directory frame, the campaign WAL
// record, and the snapshot directory section.
func DecodeBinary(b []byte) (Campaign, int, error) {
	if len(b) < wireFixed {
		return Campaign{}, 0, fmt.Errorf("%w: %d-byte entry", ErrBadCampaign, len(b))
	}
	c := Campaign{
		ID:      leU32(b[0:]),
		Epsilon: f64from(leU64(b[4:])),
		Delta:   f64from(leU64(b[12:])),
		IDSpace: leU64(b[20:]),
	}
	c.Keystream = blind.Keystream(b[28])
	flags := b[29]
	c.KeystreamSet = flags&flagKeystreamSet != 0
	nameLen := int(b[30]) | int(b[31])<<8
	c.RetainRounds = int(leU32(b[32:]))
	c.CadenceSec = leU32(b[36:])
	if flags&^flagKeystreamSet != 0 {
		return Campaign{}, 0, fmt.Errorf("%w: flags 0x%02x", ErrBadCampaign, flags)
	}
	if len(b) < wireFixed+nameLen {
		return Campaign{}, 0, fmt.Errorf("%w: truncated name", ErrBadCampaign)
	}
	c.Name = string(b[wireFixed : wireFixed+nameLen])
	if err := c.Validate(); err != nil {
		return Campaign{}, 0, err
	}
	return c, wireFixed + nameLen, nil
}

// EncodedSize returns the byte length of c's binary encoding.
func (c Campaign) EncodedSize() int { return wireFixed + len(c.Name) }

// Directory is an ordered set of provisioned campaigns. The zero value
// is empty and ready to use. A Directory is not safe for concurrent
// mutation; owners (the backend) guard it with their own lock.
type Directory struct {
	byID map[uint32]Campaign
}

// Add provisions a campaign, validating it and refusing duplicates.
func (d *Directory) Add(c Campaign) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if _, ok := d.byID[c.ID]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicate, c.ID)
	}
	if d.byID == nil {
		d.byID = make(map[uint32]Campaign)
	}
	d.byID[c.ID] = c
	return nil
}

// Get returns the campaign with the given ID.
func (d *Directory) Get(id uint32) (Campaign, bool) {
	c, ok := d.byID[id]
	return c, ok
}

// Len returns the number of provisioned campaigns.
func (d *Directory) Len() int { return len(d.byID) }

// List returns the campaigns sorted by ID — the canonical directory
// order used by the wire frame and the snapshot section.
func (d *Directory) List() []Campaign {
	out := make([]Campaign, 0, len(d.byID))
	for _, c := range d.byID {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ParseSpec parses the -campaigns flag syntax: semicolon-separated
// campaign entries, each a comma-separated list of key=value pairs.
// Keys: id (required, ≥1), name (required), eps, delta, ids, ks
// (keystream suite name), retain, cadence (seconds). Example:
//
//	id=1,name=autos,eps=0.01,delta=0.01;id=2,name=travel,ids=4096,ks=aes-ctr
func ParseSpec(spec string) ([]Campaign, error) {
	var out []Campaign
	seen := make(map[uint32]bool)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		var c Campaign
		for _, kv := range strings.Split(entry, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("%w: %q is not key=value", ErrBadCampaign, kv)
			}
			var err error
			switch key {
			case "id":
				var id uint64
				id, err = strconv.ParseUint(val, 10, 32)
				c.ID = uint32(id)
			case "name":
				c.Name = val
			case "eps":
				c.Epsilon, err = strconv.ParseFloat(val, 64)
			case "delta":
				c.Delta, err = strconv.ParseFloat(val, 64)
			case "ids":
				c.IDSpace, err = strconv.ParseUint(val, 10, 64)
			case "ks":
				c.Keystream, err = blind.KeystreamByName(val)
				c.KeystreamSet = err == nil
			case "retain":
				c.RetainRounds, err = strconv.Atoi(val)
			case "cadence":
				var cad uint64
				cad, err = strconv.ParseUint(val, 10, 32)
				c.CadenceSec = uint32(cad)
			default:
				return nil, fmt.Errorf("%w: unknown key %q", ErrBadCampaign, key)
			}
			if err != nil {
				return nil, fmt.Errorf("%w: %s=%q: %v", ErrBadCampaign, key, val, err)
			}
		}
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("%v (entry %q)", err, entry)
		}
		if seen[c.ID] {
			return nil, fmt.Errorf("%w: %d (entry %q)", ErrDuplicate, c.ID, entry)
		}
		seen[c.ID] = true
		out = append(out, c)
	}
	return out, nil
}

// Little-endian append/read helpers; the campaign codec stays free of
// encoding/binary's append allocations on hot directory paths.

func le32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leU64(b []byte) uint64 {
	return uint64(leU32(b)) | uint64(leU32(b[4:]))<<32
}

func f64bits(f float64) uint64 { return math.Float64bits(f) }

func f64from(u uint64) float64 { return math.Float64frombits(u) }
