// Package detector implements eyeWnder's count-based targeted-ad
// detection algorithm (Section 4 of the paper).
//
// The algorithm rests on two observations about targeted advertising:
//
//  1. Targeted ads "follow" their targets: a targeted user sees the same
//     ad across many different domains.
//  2. Targeted ads are seen by relatively few users, because only users
//     sharing the targeting profile receive them.
//
// An ad α shown to user u is therefore classified Targeted iff BOTH
//
//	#Domains(u, α) >= Domains_th,u   (local condition)
//	#Users(α)      <= Users_th       (global condition)
//
// where #Domains(u, α) counts the distinct domains on which u saw α
// within the sliding time window, and #Users(α) counts the distinct users
// that saw α (estimated from the privacy-preserving aggregate sketch).
//
// Both thresholds are estimated from the corresponding empirical
// distributions: Domains_th,u from u's own per-ad domain counts (locally,
// in the browser), Users_th from the global per-ad user counts (at the
// back-end). The paper evaluates several moment-based estimators and
// settles on the mean (Section 4.2, Figure 3); all variants are provided
// here for the ablation benches.
//
// Minimum-data rule: if the user has seen ads on fewer than MinDomains
// distinct domains within the window, the algorithm refrains from
// guessing and returns Unknown.
package detector

import (
	"fmt"
	"time"

	"eyewnder/internal/stats"
)

// Class is the detector's verdict for one (user, ad) pair.
type Class uint8

// Verdicts.
const (
	// Unknown means the minimum-data requirement was not met.
	Unknown Class = iota
	// NonTargeted means at least one of the two count conditions failed.
	NonTargeted
	// Targeted means both count conditions held.
	Targeted
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Unknown:
		return "unknown"
	case NonTargeted:
		return "non-targeted"
	case Targeted:
		return "targeted"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Estimator selects how a threshold is derived from an empirical
// distribution of counts.
type Estimator uint8

// Threshold estimators evaluated in Section 4.2 / Figure 3.
const (
	// EstimatorMean uses the distribution mean — the paper's choice.
	EstimatorMean Estimator = iota
	// EstimatorMedian uses the median.
	EstimatorMedian
	// EstimatorMeanPlusMedian uses mean+median — stricter on the local
	// condition, more permissive on the global one (the "Mean+Median"
	// curve of Figure 3).
	EstimatorMeanPlusMedian
	// EstimatorMeanPlusStdDev uses mean+σ.
	EstimatorMeanPlusStdDev
)

// String implements fmt.Stringer.
func (e Estimator) String() string {
	switch e {
	case EstimatorMean:
		return "mean"
	case EstimatorMedian:
		return "median"
	case EstimatorMeanPlusMedian:
		return "mean+median"
	case EstimatorMeanPlusStdDev:
		return "mean+stddev"
	}
	return fmt.Sprintf("Estimator(%d)", uint8(e))
}

// Threshold computes the estimator's threshold over the sample. An empty
// sample yields 0.
func (e Estimator) Threshold(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	switch e {
	case EstimatorMean:
		return stats.Mean(xs)
	case EstimatorMedian:
		return stats.Median(xs)
	case EstimatorMeanPlusMedian:
		return stats.Mean(xs) + stats.Median(xs)
	case EstimatorMeanPlusStdDev:
		return stats.Mean(xs) + stats.StdDev(xs)
	default:
		return stats.Mean(xs)
	}
}

// Config fixes the algorithm's tunables.
type Config struct {
	// Window is the sliding observation window; the paper uses one week
	// (ad campaigns last about a week and the window spans both weekday
	// and weekend browsing, Section 4.2).
	Window time.Duration
	// MinDomains is the minimum number of distinct ad-serving domains the
	// user must have visited inside the window before the detector will
	// guess; the paper requires 4.
	MinDomains int
	// DomainsEstimator derives Domains_th,u from the user's per-ad domain
	// counts.
	DomainsEstimator Estimator
	// UsersEstimator derives Users_th from the global per-ad user counts.
	UsersEstimator Estimator
}

// DefaultConfig mirrors the paper: 7-day window, >= 4 domains, mean
// thresholds on both counters.
func DefaultConfig() Config {
	return Config{
		Window:           7 * 24 * time.Hour,
		MinDomains:       4,
		DomainsEstimator: EstimatorMean,
		UsersEstimator:   EstimatorMean,
	}
}

// UserState is the per-user local state: for each ad, the set of domains
// where the user saw it, with last-seen times for window pruning. It runs
// entirely on the user's device — no impression leaves the browser.
type UserState struct {
	cfg Config
	// lastSeen[ad][domain] = most recent impression time.
	lastSeen map[string]map[string]time.Time

	// Classification runs the window prune, the active-domain scan, and
	// the Domains_th,u estimate over the whole state, but the audit path
	// classifies many ads against the same instant. Cache those derived
	// quantities keyed by `now`; any Observe invalidates the cache.
	cacheValid  bool
	cacheNow    time.Time
	cacheActive int       // distinct ad-serving domains in the window
	cacheSample []float64 // per-ad domain counts (reused buffer)
	cacheTh     float64   // Domains_th,u; 0 when the min-data rule fails
	cacheThOK   bool      // minimum-data rule satisfied
}

// NewUserState returns empty local state under cfg.
func NewUserState(cfg Config) *UserState {
	return &UserState{cfg: cfg, lastSeen: make(map[string]map[string]time.Time)}
}

// Observe records that the user saw ad on domain at time t.
func (u *UserState) Observe(ad, domain string, t time.Time) {
	m := u.lastSeen[ad]
	if m == nil {
		m = make(map[string]time.Time)
		u.lastSeen[ad] = m
	}
	if prev, ok := m[domain]; !ok || t.After(prev) {
		m[domain] = t
	}
	u.cacheValid = false
}

// prune drops observations that fell out of the window ending at now.
func (u *UserState) prune(now time.Time) {
	cutoff := now.Add(-u.cfg.Window)
	for ad, domains := range u.lastSeen {
		for d, ts := range domains {
			if ts.Before(cutoff) {
				delete(domains, d)
			}
		}
		if len(domains) == 0 {
			delete(u.lastSeen, ad)
		}
	}
}

// refresh brings the derived-state cache up to date for the window ending
// at now: prunes expired observations and recomputes the active-domain
// count, the per-ad domain-count sample, and Domains_th,u. Repeated calls
// with the same `now` (the common audit pattern) are free.
func (u *UserState) refresh(now time.Time) {
	if u.cacheValid && u.cacheNow.Equal(now) {
		return
	}
	u.prune(now)
	set := make(map[string]struct{}, 16)
	u.cacheSample = u.cacheSample[:0]
	for _, domains := range u.lastSeen {
		u.cacheSample = append(u.cacheSample, float64(len(domains)))
		for d := range domains {
			set[d] = struct{}{}
		}
	}
	u.cacheActive = len(set)
	u.cacheThOK = u.cacheActive >= u.cfg.MinDomains
	if u.cacheThOK {
		u.cacheTh = u.cfg.DomainsEstimator.Threshold(u.cacheSample)
	} else {
		u.cacheTh = 0
	}
	u.cacheValid = true
	u.cacheNow = now
}

// DomainCount returns #Domains(u, ad) within the window ending at now.
func (u *UserState) DomainCount(ad string, now time.Time) int {
	u.refresh(now)
	return len(u.lastSeen[ad])
}

// ActiveDomains returns the number of distinct ad-serving domains the user
// visited within the window — the quantity the minimum-data rule checks.
func (u *UserState) ActiveDomains(now time.Time) int {
	u.refresh(now)
	return u.cacheActive
}

// AdCount returns the number of distinct ads inside the window.
func (u *UserState) AdCount(now time.Time) int {
	u.refresh(now)
	return len(u.lastSeen)
}

// Ads returns the distinct ads observed inside the window.
func (u *UserState) Ads(now time.Time) []string {
	u.refresh(now)
	out := make([]string, 0, len(u.lastSeen))
	for ad := range u.lastSeen {
		out = append(out, ad)
	}
	return out
}

// DomainsThreshold computes Domains_th,u at time now. ok is false when the
// minimum-data rule is not met, in which case the caller must return
// Unknown rather than guess.
func (u *UserState) DomainsThreshold(now time.Time) (th float64, ok bool) {
	u.refresh(now)
	return u.cacheTh, u.cacheThOK
}

// HasMinimumData reports whether the minimum-data rule is satisfied.
func (u *UserState) HasMinimumData(now time.Time) bool {
	u.refresh(now)
	return u.cacheThOK
}

// UsersThreshold derives the global Users_th from the per-ad user counts
// (the values the back-end extracts from the aggregate CMS). The back-end
// computes this once per round and pushes it to clients.
func UsersThreshold(counts []float64, est Estimator) float64 {
	return est.Threshold(counts)
}

// Verdict carries a classification with the evidence behind it, so that a
// user reporting a suspected data-protection violation can show why the
// tool flagged the ad.
type Verdict struct {
	Class Class
	// DomainCount is #Domains(u, α) in the window.
	DomainCount int
	// DomainsThreshold is Domains_th,u (0 when Class == Unknown).
	DomainsThreshold float64
	// UserCount is the estimated #Users(α).
	UserCount uint64
	// UsersThreshold is the global Users_th used.
	UsersThreshold float64
}

// Classify runs the count-based rule for one ad: both conditions must
// hold. usersCount is the global estimate of #Users(ad), usersTh the
// published Users_th.
func (u *UserState) Classify(ad string, usersCount uint64, usersTh float64, now time.Time) Verdict {
	dth, ok := u.DomainsThreshold(now)
	if !ok {
		return Verdict{Class: Unknown, UserCount: usersCount, UsersThreshold: usersTh}
	}
	dc := u.DomainCount(ad, now)
	v := Verdict{
		Class:            NonTargeted,
		DomainCount:      dc,
		DomainsThreshold: dth,
		UserCount:        usersCount,
		UsersThreshold:   usersTh,
	}
	if float64(dc) >= dth && float64(usersCount) <= usersTh {
		v.Class = Targeted
	}
	return v
}
