// Package taxonomy provides the static topic taxonomy that the simulator
// and the content-based baseline share. The paper's content-based
// heuristic ([16], Section 7.3.2) relies on page → category and
// landing-page → category mappings (it used AdWords categories); here the
// categories come from a fixed taxonomy so that the semantic-overlap test
// is deterministic and reproducible.
package taxonomy

import "fmt"

// Topic is one interest / content category.
type Topic int

// The taxonomy. The list mirrors the interest categories that appear in
// the paper's examples (computers, cars, dating, fast food, beauty,
// seafood, real estate, ...) plus enough general-audience topics for a
// thousand-site web.
const (
	Computers Topic = iota
	Electronics
	Programming
	Cars
	Sports
	Fishing
	Travel
	Fashion
	Beauty
	Fitness
	Food
	Seafood
	FastFood
	Dating
	RealEstate
	Insurance
	Government
	InternetServices
	News
	Finance
	Health
	Gaming
	Music
	Movies
	Pets
	Gardening
	Parenting
	Education
	Shopping
	Photography
	numTopics // sentinel
)

// Count is the number of topics in the taxonomy.
const Count = int(numTopics)

var names = [...]string{
	"computers", "electronics", "programming", "cars", "sports",
	"fishing", "travel", "fashion", "beauty", "fitness",
	"food", "seafood", "fast-food", "dating", "real-estate",
	"insurance", "government", "internet-services", "news", "finance",
	"health", "gaming", "music", "movies", "pets",
	"gardening", "parenting", "education", "shopping", "photography",
}

// String implements fmt.Stringer.
func (t Topic) String() string {
	if t < 0 || int(t) >= Count {
		return fmt.Sprintf("Topic(%d)", int(t))
	}
	return names[t]
}

// Valid reports whether t is a taxonomy member.
func (t Topic) Valid() bool { return t >= 0 && int(t) < Count }

// ByName returns the topic with the given name.
func ByName(name string) (Topic, bool) {
	for i, n := range names {
		if n == name {
			return Topic(i), true
		}
	}
	return 0, false
}

// All returns all topics in taxonomy order.
func All() []Topic {
	out := make([]Topic, Count)
	for i := range out {
		out[i] = Topic(i)
	}
	return out
}

// related maps each topic to semantically adjacent topics. Overlap(a, b)
// is true when a == b or b is in related[a]. The detector's "indirect
// targeting" examples are exactly pairs with NO overlap (e.g. computers →
// dating, beauty → seafood).
var related = map[Topic][]Topic{
	Computers:        {Electronics, Programming, InternetServices, Gaming},
	Electronics:      {Computers, Programming, Photography, Gaming},
	Programming:      {Computers, Electronics, InternetServices, Education},
	Cars:             {Insurance, Sports},
	Sports:           {Fitness, Cars, Gaming},
	Fishing:          {Sports, Food},
	Travel:           {Photography, Food},
	Fashion:          {Beauty, Shopping},
	Beauty:           {Fashion, Fitness, Health},
	Fitness:          {Sports, Health, Beauty},
	Food:             {Seafood, FastFood, Travel},
	Seafood:          {Food},
	FastFood:         {Food},
	Dating:           {},
	RealEstate:       {Finance, Insurance},
	Insurance:        {Finance, Cars, RealEstate, Health},
	Government:       {News, Education},
	InternetServices: {Computers, Programming},
	News:             {Government, Finance},
	Finance:          {Insurance, RealEstate, News},
	Health:           {Fitness, Beauty, Insurance},
	Gaming:           {Computers, Electronics, Sports},
	Music:            {Movies},
	Movies:           {Music, News},
	Pets:             {Gardening},
	Gardening:        {Pets, RealEstate},
	Parenting:        {Education, Health},
	Education:        {Programming, Parenting, Government},
	Shopping:         {Fashion, Electronics},
	Photography:      {Electronics, Travel},
}

// Overlap reports whether topics a and b are semantically overlapping —
// the test that separates direct from indirect targeting (Section 2.1).
func Overlap(a, b Topic) bool {
	if a == b {
		return true
	}
	for _, r := range related[a] {
		if r == b {
			return true
		}
	}
	for _, r := range related[b] {
		if r == a {
			return true
		}
	}
	return false
}

// OverlapAny reports whether any topic in as overlaps b.
func OverlapAny(as []Topic, b Topic) bool {
	for _, a := range as {
		if Overlap(a, b) {
			return true
		}
	}
	return false
}

// NonOverlapping returns, for topic a, some topic with no semantic
// overlap — used by the simulator to construct indirect campaigns.
func NonOverlapping(a Topic) Topic {
	for _, t := range All() {
		if !Overlap(a, t) {
			return t
		}
	}
	return a // fully-connected taxonomy would make this unreachable
}
