package store

import (
	"errors"
	"os"
	"path/filepath"
)

// ErrReadOnlyStore is returned by mutating operations on a Recovered
// store (and by a replica back-end rejecting writes routed at it).
var ErrReadOnlyStore = errors.New("store: read-only")

// Recovered is a read-only view of a store directory: the round and
// roster state rebuilt by the same snapshot-plus-replay path Open runs,
// without creating a fresh segment or touching the directory in any
// way. It implements Store — reads return the recovered state, appends
// fail with ErrReadOnlyStore — so a replica back-end can be built from
// it exactly like a primary is built from a Disk.
//
// The replication follower is the consumer: it must rebuild state from
// its local mirror of the primary's directory on every start, but must
// NOT Open the directory — Open creates wal-(max+1).log, and that
// generation belongs to the primary, whose next rotation would collide
// with it. Promotion is the moment the follower finally does call Open,
// on the same directory, and takes ownership of the generation space.
type Recovered struct {
	rounds    []*RoundState
	roster    map[int][]byte
	campaigns map[uint32][]byte
	cfgVer    uint32
	rosVer    uint32
	tailGen   uint64
	tailOff   int64
	files     []FileInfo
}

// Recover rebuilds round state from the store directory at dir without
// modifying it. A missing directory is not an error: it recovers as
// empty (the state a brand-new follower starts from).
func Recover(dir string) (*Recovered, error) {
	walGens, snapGens, _, err := scanStoreDir(dir, false)
	if err != nil {
		if os.IsNotExist(err) {
			return &Recovered{roster: map[int][]byte{}, campaigns: map[uint32][]byte{}}, nil
		}
		return nil, err
	}
	rec, _, tailGen, tailOff, err := recoverState(dir, walGens, snapGens)
	if err != nil {
		return nil, err
	}
	r := &Recovered{
		rounds:    rec.sortedRounds(),
		roster:    rec.roster,
		campaigns: rec.campaigns,
		cfgVer:    rec.configVersion,
		rosVer:    rec.rosterVersion,
		tailGen:   tailGen,
		tailOff:   tailOff,
	}
	for _, g := range snapGens {
		if st, err := os.Stat(filepath.Join(dir, snapName(g))); err == nil {
			r.files = append(r.files, FileInfo{Kind: FileSnapshot, Gen: g, Size: st.Size(), Sealed: true})
		}
	}
	for _, g := range walGens {
		if st, err := os.Stat(filepath.Join(dir, walName(g))); err == nil {
			r.files = append(r.files, FileInfo{Kind: FileWAL, Gen: g, Size: st.Size(), Sealed: g != tailGen})
		}
	}
	return r, nil
}

// TailGen returns the generation of the last WAL segment the recovery
// replayed — the segment a follower resumes tailing — or 0 if the
// directory held no segments.
func (r *Recovered) TailGen() uint64 { return r.tailGen }

// TailOff returns the byte offset just past the last valid record in
// the tail segment. Bytes after it (a torn fetch or torn append) were
// not applied; a follower truncates its local tail to this offset and
// re-requests from here, which is what makes a torn shipped tail
// converge instead of wedging.
func (r *Recovered) TailOff() int64 { return r.tailOff }

// Files returns the store files present in the recovered directory,
// ordered as scanned (snapshots then segments, each by generation). The
// tail segment is reported unsealed; everything else sealed.
func (r *Recovered) Files() []FileInfo { return r.files }

// Rounds implements Store.
func (r *Recovered) Rounds() []*RoundState { return r.rounds }

// Roster implements Store.
func (r *Recovered) Roster() map[int][]byte {
	out := make(map[int][]byte, len(r.roster))
	for u, k := range r.roster {
		out[u] = append([]byte(nil), k...)
	}
	return out
}

// ConfigVersions implements Store.
func (r *Recovered) ConfigVersions() (uint32, uint32) { return r.cfgVer, r.rosVer }

// Campaigns implements Store.
func (r *Recovered) Campaigns() map[uint32][]byte {
	out := make(map[uint32][]byte, len(r.campaigns))
	for id, def := range r.campaigns {
		out[id] = append([]byte(nil), def...)
	}
	return out
}

// AppendCampaign implements Store: it fails with ErrReadOnlyStore.
func (r *Recovered) AppendCampaign([]byte) error { return ErrReadOnlyStore }

// AppendRegister implements Store: it fails with ErrReadOnlyStore.
func (r *Recovered) AppendRegister(int, []byte) error { return ErrReadOnlyStore }

// AppendConfig implements Store: it fails with ErrReadOnlyStore.
func (r *Recovered) AppendConfig(uint32, uint32) error { return ErrReadOnlyStore }

// AppendOpen implements Store: it fails with ErrReadOnlyStore.
func (r *Recovered) AppendOpen(uint32, uint64, int, int, int, uint64, byte, uint32, uint32) error {
	return ErrReadOnlyStore
}

// AppendReport implements Store: it fails with ErrReadOnlyStore.
func (r *Recovered) AppendReport(uint32, uint64, int, int, int, uint64, uint64, byte, uint32, []uint64) error {
	return ErrReadOnlyStore
}

// AppendAdjust implements Store: it fails with ErrReadOnlyStore.
func (r *Recovered) AppendAdjust(uint32, uint64, int, []uint64) error { return ErrReadOnlyStore }

// AppendClose implements Store: it fails with ErrReadOnlyStore.
func (r *Recovered) AppendClose(uint32, uint64) error { return ErrReadOnlyStore }

// Sync implements Store: a no-op (nothing was appended).
func (r *Recovered) Sync() error { return nil }

// ShouldSnapshot implements Store: always false.
func (r *Recovered) ShouldSnapshot() bool { return false }

// Snapshot implements Store: it fails with ErrReadOnlyStore.
func (r *Recovered) Snapshot(func() ([]*RoundState, error)) error { return ErrReadOnlyStore }

// Close implements Store: a no-op (no file handles are held).
func (r *Recovered) Close() error { return nil }
