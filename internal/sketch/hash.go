package sketch

import (
	"encoding/binary"
	"math/bits"
)

// hash128 hashes x into two 64-bit values in a single allocation-free
// pass, consuming 8 bytes per step. The pair seeds Kirsch–Mitzenmacher
// double hashing (idx_j = h1 + j·h2 mod w), which is provably sufficient
// for the CMS error analysis while hashing each key exactly once — the
// technique production sketches (count-min-log, pmc) use instead of d
// independent hash passes.
//
// The two lanes mix the same input stream with different multipliers and
// rotations and are finalized with independent splitmix64 avalanches, so
// the (h1, h2) pair behaves as an independent pair for index derivation.
//
// COMPATIBILITY: this function defines the sketch cell layout. Every
// protocol participant (clients, back-end, simulator) must run the same
// version, or blinded aggregation would sum mismatched cells. Change it
// only in lockstep with a protocol round version bump.
func hash128(x []byte, seed uint64) (h1, h2 uint64) {
	const (
		k0 = 0x9e3779b97f4a7c15 // 2⁶⁴/φ, odd
		k1 = 0xbf58476d1ce4e5b9 // splitmix64 finalizer multipliers
		k2 = 0x94d049bb133111eb
	)
	h1 = seed ^ 0xcbf29ce484222325
	h2 = (seed+1)*k0 ^ 0x2545f4914f6cdd1d
	n := uint64(len(x))
	for len(x) >= 8 {
		v := binary.LittleEndian.Uint64(x)
		h1 = bits.RotateLeft64((h1^v)*k1, 31)
		h2 = bits.RotateLeft64((h2+v)*k2, 29) ^ v
		x = x[8:]
	}
	var tail uint64
	for i := 0; i < len(x); i++ {
		tail |= uint64(x[i]) << (8 * uint(i))
	}
	h1 = bits.RotateLeft64((h1^tail)*k1, 31) ^ n
	h2 = bits.RotateLeft64((h2+tail)*k2, 29) + n
	return mix64(h1), mix64(h2 + k0)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so that every
// input bit affects every output bit.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
