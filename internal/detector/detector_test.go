package detector

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2019, 3, 4, 12, 0, 0, 0, time.UTC)

// populate gives the user enough background ads to satisfy the
// minimum-data rule: `n` background ads, each on one distinct domain.
func populate(u *UserState, n int, at time.Time) {
	for i := 0; i < n; i++ {
		u.Observe(fmt.Sprintf("bg-ad-%d", i), fmt.Sprintf("bg-site-%d.com", i), at)
	}
}

func TestClassifyTargetedAd(t *testing.T) {
	cfg := DefaultConfig()
	u := NewUserState(cfg)
	populate(u, 5, t0)
	// The targeted ad follows the user across 6 domains.
	for i := 0; i < 6; i++ {
		u.Observe("chasing-ad", fmt.Sprintf("site-%d.com", i), t0.Add(time.Duration(i)*time.Hour))
	}
	// Global view: only 2 users saw it; global mean is 40.
	v := u.Classify("chasing-ad", 2, 40, t0.Add(12*time.Hour))
	if v.Class != Targeted {
		t.Fatalf("verdict = %+v, want Targeted", v)
	}
	if v.DomainCount != 6 {
		t.Fatalf("DomainCount = %d", v.DomainCount)
	}
}

func TestClassifyBroadStaticAd(t *testing.T) {
	u := NewUserState(DefaultConfig())
	populate(u, 5, t0)
	for i := 0; i < 6; i++ {
		u.Observe("brand-ad", fmt.Sprintf("site-%d.com", i), t0)
	}
	// Brand campaign: thousands of users saw it — global condition fails.
	v := u.Classify("brand-ad", 5000, 40, t0.Add(time.Hour))
	if v.Class != NonTargeted {
		t.Fatalf("verdict = %+v, want NonTargeted", v)
	}
}

func TestClassifySingleImpression(t *testing.T) {
	// An ad seen once cannot be distinguished from non-targeted: with the
	// mean estimator and background ads at 1 domain each the threshold is
	// ~1, so one sighting alone is not decisive — but a contextual ad seen
	// on one domain with a huge user count is cleanly NonTargeted.
	u := NewUserState(DefaultConfig())
	populate(u, 6, t0)
	u.Observe("contextual", "sports-site.com", t0)
	v := u.Classify("contextual", 900, 40, t0.Add(time.Hour))
	if v.Class != NonTargeted {
		t.Fatalf("verdict = %+v, want NonTargeted", v)
	}
}

func TestMinimumDataRuleReturnsUnknown(t *testing.T) {
	u := NewUserState(DefaultConfig())
	// Only 3 ad-serving domains < MinDomains 4.
	u.Observe("a", "d1.com", t0)
	u.Observe("b", "d2.com", t0)
	u.Observe("c", "d3.com", t0)
	v := u.Classify("a", 1, 40, t0.Add(time.Hour))
	if v.Class != Unknown {
		t.Fatalf("verdict = %+v, want Unknown", v)
	}
	if u.HasMinimumData(t0.Add(time.Hour)) {
		t.Fatal("HasMinimumData = true with 3 domains")
	}
	u.Observe("d", "d4.com", t0)
	if !u.HasMinimumData(t0.Add(time.Hour)) {
		t.Fatal("HasMinimumData = false with 4 domains")
	}
}

func TestWindowPruning(t *testing.T) {
	cfg := DefaultConfig()
	u := NewUserState(cfg)
	u.Observe("old-ad", "old-site.com", t0)
	later := t0.Add(8 * 24 * time.Hour) // past the 7-day window
	if got := u.DomainCount("old-ad", later); got != 0 {
		t.Fatalf("DomainCount after window = %d", got)
	}
	if got := u.AdCount(later); got != 0 {
		t.Fatalf("AdCount after window = %d", got)
	}
	// Re-observation refreshes the window.
	u.Observe("old-ad", "old-site.com", later)
	if got := u.DomainCount("old-ad", later.Add(time.Hour)); got != 1 {
		t.Fatalf("DomainCount = %d", got)
	}
}

func TestObserveKeepsLatestTimestamp(t *testing.T) {
	u := NewUserState(DefaultConfig())
	u.Observe("ad", "site.com", t0)
	u.Observe("ad", "site.com", t0.Add(3*24*time.Hour))
	// An out-of-order older observation must not roll the timestamp back.
	u.Observe("ad", "site.com", t0.Add(1*24*time.Hour))
	// 8 days after t0 the window (anchored to the 3-day refresh) holds.
	if got := u.DomainCount("ad", t0.Add(8*24*time.Hour)); got != 1 {
		t.Fatalf("DomainCount = %d", got)
	}
}

func TestDomainCountDistinct(t *testing.T) {
	u := NewUserState(DefaultConfig())
	for i := 0; i < 10; i++ {
		u.Observe("ad", "same-site.com", t0.Add(time.Duration(i)*time.Minute))
	}
	if got := u.DomainCount("ad", t0.Add(time.Hour)); got != 1 {
		t.Fatalf("repeat impressions on one domain counted as %d", got)
	}
}

func TestDomainsThreshold(t *testing.T) {
	u := NewUserState(DefaultConfig())
	// 4 ads on 1 domain each + 1 ad on 6 domains: mean = (1+1+1+1+6)/5 = 2.
	populate(u, 4, t0)
	for i := 0; i < 6; i++ {
		u.Observe("multi", fmt.Sprintf("m%d.com", i), t0)
	}
	th, ok := u.DomainsThreshold(t0.Add(time.Hour))
	if !ok {
		t.Fatal("threshold unavailable")
	}
	if th != 2 {
		t.Fatalf("Domains_th = %v, want 2", th)
	}
}

func TestEstimators(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 6} // mean 2, median 1
	cases := []struct {
		est  Estimator
		want float64
	}{
		{EstimatorMean, 2},
		{EstimatorMedian, 1},
		{EstimatorMeanPlusMedian, 3},
	}
	for _, c := range cases {
		if got := c.est.Threshold(xs); got != c.want {
			t.Errorf("%v.Threshold = %v, want %v", c.est, got, c.want)
		}
	}
	if got := EstimatorMeanPlusStdDev.Threshold(xs); got <= 2 {
		t.Errorf("mean+stddev = %v, want > mean", got)
	}
	for _, e := range []Estimator{EstimatorMean, EstimatorMedian, EstimatorMeanPlusMedian, EstimatorMeanPlusStdDev} {
		if e.Threshold(nil) != 0 {
			t.Errorf("%v.Threshold(nil) != 0", e)
		}
		if e.String() == "" {
			t.Errorf("%v has empty String", e)
		}
	}
	if Estimator(99).Threshold(xs) != 2 {
		t.Error("unknown estimator should fall back to mean")
	}
}

func TestUsersThreshold(t *testing.T) {
	counts := []float64{1, 2, 3, 10}
	if got := UsersThreshold(counts, EstimatorMean); got != 4 {
		t.Fatalf("UsersThreshold = %v", got)
	}
}

func TestClassStrings(t *testing.T) {
	if Unknown.String() != "unknown" || NonTargeted.String() != "non-targeted" || Targeted.String() != "targeted" {
		t.Fatal("Class strings wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class has empty String")
	}
	if Estimator(9).String() == "" {
		t.Fatal("unknown estimator has empty String")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Window != 7*24*time.Hour {
		t.Fatalf("Window = %v", cfg.Window)
	}
	if cfg.MinDomains != 4 {
		t.Fatalf("MinDomains = %d", cfg.MinDomains)
	}
	if cfg.DomainsEstimator != EstimatorMean || cfg.UsersEstimator != EstimatorMean {
		t.Fatal("default estimators should be mean")
	}
}

// Property: the classification is monotone in domain count — observing the
// ad on additional domains can only move the verdict toward Targeted (for
// a fixed user-count side).
func TestPropertyMonotoneInDomains(t *testing.T) {
	f := func(extraDomains uint8, usersCount uint16) bool {
		cfg := DefaultConfig()
		u := NewUserState(cfg)
		populate(u, 5, t0)
		u.Observe("ad", "first.com", t0)
		now := t0.Add(time.Hour)
		usersTh := 40.0
		before := u.Classify("ad", uint64(usersCount), usersTh, now).Class
		for i := 0; i < int(extraDomains%16); i++ {
			u.Observe("ad", fmt.Sprintf("extra-%d.com", i), t0)
		}
		after := u.Classify("ad", uint64(usersCount), usersTh, now).Class
		// Targeted must not flip back to NonTargeted.
		return !(before == Targeted && after == NonTargeted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: below minimum data the verdict is always Unknown, regardless
// of the global side.
func TestPropertyUnknownBelowMinimumData(t *testing.T) {
	f := func(nDomains uint8, usersCount uint16, usersTh uint16) bool {
		cfg := DefaultConfig()
		u := NewUserState(cfg)
		n := int(nDomains % uint8(cfg.MinDomains)) // 0..3 < MinDomains
		for i := 0; i < n; i++ {
			u.Observe("ad", fmt.Sprintf("d%d.com", i), t0)
		}
		v := u.Classify("ad", uint64(usersCount), float64(usersTh), t0.Add(time.Minute))
		return v.Class == Unknown
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkClassify(b *testing.B) {
	u := NewUserState(DefaultConfig())
	for i := 0; i < 50; i++ {
		u.Observe(fmt.Sprintf("ad-%d", i), fmt.Sprintf("site-%d.com", i%20), t0)
	}
	now := t0.Add(time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Classify("ad-7", 3, 40, now)
	}
}
