package backend

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"eyewnder/internal/detector"
	"eyewnder/internal/privacy"
)

// TestSubmitAdjustmentEdgeCases walks every rejection path of the
// adjustment upload — unknown round, wrong cell count, non-reporter,
// conflicting duplicate, closed round, bad user — and then proves none
// of the rejected (or retried) uploads perturbed the live aggregate:
// the round's finalized counts must be byte-identical to a control
// backend that saw only the clean traffic.
func TestSubmitAdjustmentEdgeCases(t *testing.T) {
	b, clients := newBackend(t)
	_, ros := fixtures(t)
	control, err := New(Config{Params: testParams(), Users: len(ros.Parties), UsersEstimator: detector.EstimatorMean})
	if err != nil {
		t.Fatal(err)
	}

	const round = 3
	// Users 0..2 report (user 3 missing); the same report objects feed
	// both backends, so their aggregates start byte-identical.
	cms, _ := testParams().NewSketch()
	cells := cms.Cells()
	var reports []*privacy.Report
	for _, c := range clients[:3] {
		if _, err := c.ObserveAd("https://ads.example/edge"); err != nil {
			t.Fatal(err)
		}
		rep, err := c.Report(round)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	shares := make([][]uint64, 3)
	for i, c := range clients[:3] {
		adj, err := c.Adjust(round, cells, []int{3})
		if err != nil {
			t.Fatal(err)
		}
		shares[i] = adj
	}

	// A share can never open a round: before any report, the round is
	// unknown.
	if err := b.SubmitAdjustment(0, round, shares[0]); !errors.Is(err, ErrUnknownRound) {
		t.Fatalf("pre-report share err = %v, want ErrUnknownRound", err)
	}

	for _, rep := range reports {
		if err := b.SubmitReport(rep); err != nil {
			t.Fatal(err)
		}
		if err := control.SubmitReport(rep); err != nil {
			t.Fatal(err)
		}
	}

	// Out-of-range user, checked before anything else.
	if err := b.SubmitAdjustment(-1, round, shares[0]); !errors.Is(err, ErrBadUser) {
		t.Fatalf("negative user err = %v, want ErrBadUser", err)
	}
	if err := b.SubmitAdjustment(len(ros.Parties), round, shares[0]); !errors.Is(err, ErrBadUser) {
		t.Fatalf("out-of-roster user err = %v, want ErrBadUser", err)
	}
	// Wrong cell count, rejected at upload time rather than poisoning
	// every later close.
	if err := b.SubmitAdjustment(0, round, make([]uint64, cells-1)); err == nil {
		t.Fatal("short share accepted")
	}
	// A share for a round nobody has touched is still unknown.
	if err := b.SubmitAdjustment(0, round+1, shares[0]); !errors.Is(err, ErrUnknownRound) {
		t.Fatalf("unknown round err = %v, want ErrUnknownRound", err)
	}
	// User 3 never reported: its share has nothing to cancel.
	if err := b.SubmitAdjustment(3, round, shares[0]); !errors.Is(err, ErrAdjustNotReporter) {
		t.Fatalf("non-reporter err = %v, want ErrAdjustNotReporter", err)
	}
	// A close with a report missing and no shares fails and must leave
	// the round retryable (the clone invariant: shares only ever apply
	// to a clone of the aggregate, never the live one).
	if _, _, err := b.CloseRound(round); !errors.Is(err, ErrAdjustIncomplete) {
		t.Fatalf("premature close err = %v, want ErrAdjustIncomplete", err)
	}

	// Clean shares land; an identical re-upload is an idempotent retry,
	// a differing one is a conflict.
	for i, adj := range shares {
		if err := b.SubmitAdjustment(i, round, adj); err != nil {
			t.Fatal(err)
		}
		if err := control.SubmitAdjustment(i, round, adj); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.SubmitAdjustment(0, round, shares[0]); err != nil {
		t.Fatalf("idempotent re-upload err = %v", err)
	}
	mutated := append([]uint64(nil), shares[0]...)
	mutated[0]++
	if err := b.SubmitAdjustment(0, round, mutated); !errors.Is(err, ErrAdjustConflict) {
		t.Fatalf("conflicting re-upload err = %v, want ErrAdjustConflict", err)
	}

	th, ads, err := b.CloseRound(round)
	if err != nil {
		t.Fatal(err)
	}
	// Closed rounds refuse further shares.
	if err := b.SubmitAdjustment(1, round, shares[1]); !errors.Is(err, ErrRoundClosed) {
		t.Fatalf("post-close share err = %v, want ErrRoundClosed", err)
	}

	// The control backend saw none of the failed uploads, the conflict
	// attempt, or the failed close; if any of them had leaked into the
	// live aggregate, these finalized counts would differ.
	thC, adsC, err := control.CloseRound(round)
	if err != nil {
		t.Fatal(err)
	}
	if th != thC || ads != adsC {
		t.Fatalf("edge-case traffic changed the close: th %v vs %v, ads %d vs %d", th, thC, ads, adsC)
	}
	counts, err := b.UserCountsOfRound(round)
	if err != nil {
		t.Fatal(err)
	}
	countsC, err := control.UserCountsOfRound(round)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) == 0 || !reflect.DeepEqual(counts, countsC) {
		t.Fatalf("edge-case traffic perturbed the aggregate: %v != %v", counts, countsC)
	}
}

// TestCloseRoundWaitDeadline pins the deadline close: it seals the
// round (late reports get ErrRoundSealed), times out with
// ErrAdjustIncomplete while reporters' shares are outstanding, leaves
// the round retryable, and finalizes once the shares land — including
// a share landing mid-wait, which must wake the close rather than let
// it sleep to its deadline.
func TestCloseRoundWaitDeadline(t *testing.T) {
	b, clients := newBackend(t)
	const round = 11
	cms, _ := testParams().NewSketch()
	for _, c := range clients[:2] {
		if _, err := c.ObserveAd("https://ads.example/wait"); err != nil {
			t.Fatal(err)
		}
		rep, err := c.Report(round)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SubmitReport(rep); err != nil {
			t.Fatal(err)
		}
	}

	// No shares yet: the deadline expires and the close gives up.
	if _, _, err := b.CloseRoundWait(round, 20*time.Millisecond); !errors.Is(err, ErrAdjustIncomplete) {
		t.Fatalf("deadline close err = %v, want ErrAdjustIncomplete", err)
	}
	// The failed close sealed the round: late reports are refused, so
	// the missing set every reporter adjusts against stays frozen.
	rep, err := clients[2].Report(round)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitReport(rep); !errors.Is(err, ErrRoundSealed) {
		t.Fatalf("post-seal report err = %v, want ErrRoundSealed", err)
	}
	p, err := b.RoundProgressOf(round)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Sealed || p.Closed || p.Reported != 2 || len(p.Missing) != 2 {
		t.Fatalf("progress after failed deadline close = %+v", p)
	}

	// One share lands before the retry, the other mid-wait: the retried
	// close must wake on the second share and finalize well before its
	// deadline.
	missing := []int{2, 3}
	adj0, err := clients[0].Adjust(round, cms.Cells(), missing)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitAdjustment(0, round, adj0); err != nil {
		t.Fatal(err)
	}
	adj1, err := clients[1].Adjust(round, cms.Cells(), missing)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		b.SubmitAdjustment(1, round, adj1)
	}()
	start := time.Now()
	th, ads, err := b.CloseRoundWait(round, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("close slept %v instead of waking on the share", waited)
	}
	if ads < 1 || th <= 0 {
		t.Fatalf("close = th %v, ads %d", th, ads)
	}
	// Idempotent re-close returns the cached result without waiting.
	th2, ads2, err := b.CloseRoundWait(round, time.Millisecond)
	if err != nil || th2 != th || ads2 != ads {
		t.Fatalf("re-close = %v/%d, %v", th2, ads2, err)
	}
}

// TestRoundProgressConsistentUnderLoad is the torn-view regression
// test: RoundProgressOf is polled continuously while reports and
// adjustment shares land from many goroutines, and every observation
// must satisfy Reported + len(Missing) == roster size with Adjusted
// never exceeding Reported. Under -race this also proves the status
// path is data-race-free against submissions (the old separate
// Reported()/Missing() reads took the aggregator lock twice and could
// publish a torn view when a report folded in between).
func TestRoundProgressConsistentUnderLoad(t *testing.T) {
	const users = 32
	params := testParams()
	b, err := New(Config{Params: params, Users: users, UsersEstimator: detector.EstimatorMean})
	if err != nil {
		t.Fatal(err)
	}
	const round = 1
	// Unblinded single-user sketches are fine here: acceptance (and the
	// progress bookkeeping under test) does not depend on blinding.
	makeReport := func(u int) *privacy.Report {
		cms, err := params.NewSketch()
		if err != nil {
			t.Fatal(err)
		}
		cms.Update([]byte{byte(u)})
		return &privacy.Report{User: u, Round: round, Sketch: cms}
	}
	if err := b.SubmitReport(makeReport(0)); err != nil {
		t.Fatal(err) // the round must exist before the pollers start
	}
	cms, _ := params.NewSketch()
	cells := cms.Cells()

	stop := make(chan struct{})
	var pollErr error
	var pollMu sync.Mutex
	var pollers sync.WaitGroup
	for g := 0; g < 4; g++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, err := b.RoundProgressOf(round)
				if err != nil {
					continue
				}
				if p.Reported+len(p.Missing) != users || p.Adjusted > p.Reported {
					pollMu.Lock()
					if pollErr == nil {
						pollErr = fmt.Errorf("torn progress view: reported=%d missing=%d adjusted=%d",
							p.Reported, len(p.Missing), p.Adjusted)
					}
					pollMu.Unlock()
					return
				}
			}
		}()
	}

	var writers sync.WaitGroup
	for u := 1; u < users-1; u++ {
		writers.Add(1)
		go func(u int) {
			defer writers.Done()
			if err := b.SubmitReport(makeReport(u)); err != nil {
				t.Error(err)
				return
			}
			// Immediately follow with this reporter's (placeholder)
			// share, racing the pollers' Adjusted reads.
			if err := b.SubmitAdjustment(u, round, make([]uint64, cells)); err != nil {
				t.Error(err)
			}
		}(u)
	}
	writers.Wait()
	close(stop)
	pollers.Wait()
	if pollErr != nil {
		t.Fatal(pollErr)
	}
	p, err := b.RoundProgressOf(round)
	if err != nil {
		t.Fatal(err)
	}
	if p.Reported != users-1 || len(p.Missing) != 1 || p.Adjusted != users-2 {
		t.Fatalf("final progress = %+v", p)
	}
}
