#!/bin/sh
# checkdocs.sh — run the repository's documentation checks locally:
#
#   - godoc coverage: every exported identifier in internal/store,
#     internal/wire, and internal/repl carries a doc comment
#   - markdown links: every relative link in every *.md resolves
#   - flag coverage: every eyewnder-server / -sim / -bench flag is
#     mentioned in README.md
#
# CI's docs job runs exactly this script; the lint job additionally
# runs the godoc check on its own. The checks are plain Go tests in
# internal/docscheck — hermetic, no network, no extra tools.
set -eu
cd "$(dirname "$0")/.."
exec go test -count=1 -v ./internal/docscheck/
