//go:build purego || !(amd64 || arm64)

package vec

// pickKernels keeps the generic add/sub kernels: either this is a
// `purego` build (no assembly compiled in) or the architecture has no
// checked-in kernels.
func pickKernels() {}
