package sketch

import "testing"

// The privacy hot path must stay allocation-free: every client report
// hashes thousands of keys through Update, and the back-end's close-round
// enumeration issues IDSpace queries. A stray allocation here multiplies
// into GC pressure across the whole fleet, so regressions are asserted,
// not just benchmarked.

func TestUpdateZeroAllocs(t *testing.T) {
	c, err := New(0.001, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("https://ads.example.com/creative/123456")
	if allocs := testing.AllocsPerRun(1000, func() { c.Update(key) }); allocs != 0 {
		t.Fatalf("Update allocates %v times per call, want 0", allocs)
	}
}

func TestQueryZeroAllocs(t *testing.T) {
	c, err := New(0.001, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("https://ads.example.com/creative/123456")
	c.Update(key)
	if allocs := testing.AllocsPerRun(1000, func() { c.Query(key) }); allocs != 0 {
		t.Fatalf("Query allocates %v times per call, want 0", allocs)
	}
}

func TestConservativeUpdateZeroAllocs(t *testing.T) {
	c, err := New(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("https://ads.example.com/creative/abc")
	if allocs := testing.AllocsPerRun(1000, func() { c.ConservativeUpdate(key, 1) }); allocs != 0 {
		t.Fatalf("ConservativeUpdate allocates %v times per call, want 0", allocs)
	}
}

func TestSBFUpdateZeroAllocs(t *testing.T) {
	s, err := NewSBFForElements(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("https://ads.example.com/creative/123456")
	if allocs := testing.AllocsPerRun(1000, func() { s.Update(key) }); allocs != 0 {
		t.Fatalf("SBF Update allocates %v times per call, want 0", allocs)
	}
}

func TestSBFQueryZeroAllocs(t *testing.T) {
	s, err := NewSBFForElements(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("https://ads.example.com/creative/123456")
	s.Update(key)
	if allocs := testing.AllocsPerRun(1000, func() { s.Query(key) }); allocs != 0 {
		t.Fatalf("SBF Query allocates %v times per call, want 0", allocs)
	}
}

func TestIndexesReusesBuffer(t *testing.T) {
	c, err := New(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int, c.Depth())
	key := []byte("ad-key")
	if allocs := testing.AllocsPerRun(1000, func() { c.Indexes(key, buf) }); allocs != 0 {
		t.Fatalf("Indexes with sized buffer allocates %v times per call, want 0", allocs)
	}
}

// Indexes must agree with the cells Update touches and Query reads.
func TestIndexesMatchUpdate(t *testing.T) {
	c, err := NewWithDimensions(6, 97)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("cross-check")
	idx := c.Indexes(key, nil)
	if len(idx) != c.Depth() {
		t.Fatalf("Indexes returned %d entries, want %d", len(idx), c.Depth())
	}
	c.Update(key)
	for j, col := range idx {
		if col < 0 || col >= c.Width() {
			t.Fatalf("row %d index %d out of range", j, col)
		}
		if got := c.Cell(j, col); got != 1 {
			t.Fatalf("row %d cell %d = %d after one update, want 1", j, col, got)
		}
	}
	if c.Query(key) != 1 {
		t.Fatalf("Query = %d, want 1", c.Query(key))
	}
}
