package repl_test

import (
	"crypto/rand"
	"encoding/binary"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"eyewnder/internal/backend"
	"eyewnder/internal/blind"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/privacy"
	"eyewnder/internal/repl"
	"eyewnder/internal/store"
	"eyewnder/internal/wire"
)

// testParams is a small geometry so replication tests stay fast.
func testParams() privacy.Params {
	return privacy.Params{Epsilon: 0.02, Delta: 0.02, IDSpace: 2048, Suite: group.P256()}
}

// backendCfg is the deployment configuration both primary and follower
// run with.
func backendCfg(params privacy.Params, users int) backend.Config {
	return backend.Config{Params: params, Users: users, UsersEstimator: detector.EstimatorMean}
}

// buildReports blinds one report per roster member for the given round.
func buildReports(t *testing.T, params privacy.Params, users int, round uint64) []*privacy.Report {
	t.Helper()
	roster, err := blind.NewRosterKeystream(params.Suite, users, rand.Reader, params.Keystream)
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]*privacy.Report, users)
	for u := 0; u < users; u++ {
		cms, err := params.NewSketch()
		if err != nil {
			t.Fatal(err)
		}
		var key [8]byte
		for a := 0; a < 6; a++ {
			binary.LittleEndian.PutUint64(key[:], uint64((u*3+a)%int(params.IDSpace)))
			cms.Update(key[:])
		}
		cells := cms.FlatCells()
		if err := blind.ApplyBlinding(cells, roster.Parties[u].Blinding(round, len(cells))); err != nil {
			t.Fatal(err)
		}
		reports[u] = &privacy.Report{User: u, Round: round, Sketch: cms, Keystream: params.Keystream}
	}
	return reports
}

// frameOf converts a report to its streamed wire form.
func frameOf(r *privacy.Report) *wire.ReportFrame {
	return &wire.ReportFrame{
		User: r.User, Round: r.Round,
		D: r.Sketch.Depth(), W: r.Sketch.Width(),
		N: r.Sketch.N(), Seed: r.Sketch.Seed(),
		Keystream:     byte(r.Keystream),
		ConfigVersion: r.ConfigVersion,
		Cells:         r.Sketch.FlatCells(),
	}
}

// newPrimary opens a durable primary back-end on dir and serves its
// store over the replication protocol.
func newPrimary(t *testing.T, dir string, users int, opts store.Options) (*backend.Backend, *store.Disk, *repl.Primary) {
	t.Helper()
	st, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := backendCfg(testParams(), users)
	cfg.Store = st
	b, err := backend.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := repl.ServePrimary("127.0.0.1:0", st)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p.Close()
		b.Close()
		st.Close()
	})
	return b, st, p
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// assertMirror compares the replica's observable state to the
// primary's for the given closed rounds.
func assertMirror(t *testing.T, primary, replica *backend.Backend, rounds ...uint64) {
	t.Helper()
	pKeys, pcv, prv := primary.Roster()
	rKeys, rcv, rrv := replica.Roster()
	if !reflect.DeepEqual(pKeys, rKeys) || pcv != rcv || prv != rrv {
		t.Fatalf("roster/version mismatch: (%d,%d) vs (%d,%d)", pcv, prv, rcv, rrv)
	}
	for _, round := range rounds {
		pth, err := primary.Threshold(round)
		if err != nil {
			t.Fatal(err)
		}
		rth, err := replica.Threshold(round)
		if err != nil {
			t.Fatalf("replica threshold(%d): %v", round, err)
		}
		if pth != rth {
			t.Fatalf("round %d: threshold %v vs %v", round, pth, rth)
		}
		pc, err := primary.UserCountsOfRound(round)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := replica.UserCountsOfRound(round)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pc, rc) {
			t.Fatalf("round %d: per-ad counts diverge", round)
		}
	}
}

// A follower attached to a live primary must mirror everything the
// primary logs — registrations, full rounds, an adjustment round, a
// forced rotation landing mid-follow, and an open mid-round tail — and
// report itself caught up.
func TestFollowerMirrorsLivePrimary(t *testing.T) {
	const users = 6
	params := testParams()
	b, st, p := newPrimary(t, t.TempDir(), users, store.Options{SnapshotEvery: -1, RetainSegments: 2})

	f, err := repl.StartFollower(repl.Options{
		Dir: filepath.Join(t.TempDir(), "mirror"), Addr: p.Addr(),
		Poll: 2 * time.Millisecond,
		Logf: t.Logf,
	}, backendCfg(params, users))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	if _, err := b.Register(2, []byte("pk2")); err != nil {
		t.Fatal(err)
	}

	// Round 1: full roster, straight close.
	for _, r := range buildReports(t, params, users, 1) {
		if err := b.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.CloseRound(1); err != nil {
		t.Fatal(err)
	}

	// Force a rotation mid-follow: the follower must finish the sealed
	// segment and move to the new active one.
	if _, err := st.Seal(); err != nil {
		t.Fatal(err)
	}

	// Round 2: one user missing, adjustment shares, close.
	reports2 := buildReports(t, params, users, 2)
	for _, r := range reports2[:users-1] {
		if err := b.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	cells := len(reports2[0].Sketch.FlatCells())
	for u := 0; u < users-1; u++ {
		share := make([]uint64, cells)
		for i := range share {
			share[i] = uint64(u*1000 + i)
		}
		if err := b.SubmitAdjustment(u, 2, share); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.CloseRound(2); err != nil {
		t.Fatal(err)
	}

	// Round 3 stays open mid-round: the warm state promotion needs.
	for _, r := range buildReports(t, params, users, 3)[:3] {
		if err := b.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.SyncReports(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "follower to catch up", func() bool {
		rp, err := f.Replica().RoundProgressOf(3)
		return err == nil && rp.Reported == 3 && f.Status().CaughtUp
	})
	st.Sync() // no-op barrier; keeps the flushed horizon settled before comparing

	assertMirror(t, b, f.Replica(), 1, 2)
	pp, err := b.RoundProgressOf(3)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := f.Replica().RoundProgressOf(3)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Reported != rp.Reported || !reflect.DeepEqual(pp.Missing, rp.Missing) {
		t.Fatalf("round 3 progress %+v vs %+v", pp, rp)
	}
	s := f.Status()
	if !s.Connected || s.Err != nil {
		t.Fatalf("status = %+v", s)
	}
	if s.TailGen < 2 {
		t.Fatalf("follower never crossed the forced rotation: tail gen %d", s.TailGen)
	}
}

// A follower restarted after the primary pruned its tail segment
// (snapshot compaction with no retention) must resync from the newer
// snapshot: fetch it, rebuild the replica through recovery, prune its
// own stale segments, and converge.
func TestFollowerRestartAfterPrune(t *testing.T) {
	const users = 6
	params := testParams()
	dir := t.TempDir()
	// Snapshot every 4 report appends, retain nothing: round 2's
	// reports are guaranteed to trigger a compaction that prunes the
	// segment the stopped follower was tailing.
	b, _, p := newPrimary(t, dir, users, store.Options{SnapshotEvery: 4})
	mirror := filepath.Join(t.TempDir(), "mirror")

	for _, r := range buildReports(t, params, users, 1) {
		if err := b.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.CloseRound(1); err != nil {
		t.Fatal(err)
	}

	f1, err := repl.StartFollower(repl.Options{Dir: mirror, Addr: p.Addr(), Poll: 2 * time.Millisecond}, backendCfg(params, users))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first follower to mirror round 1", func() bool {
		th, err := f1.Replica().Threshold(1)
		return err == nil && th >= 0 && f1.Status().CaughtUp
	})
	f1.Stop()
	f1Tail := store.FileInfo{Kind: store.FileWAL, Gen: f1.Status().TailGen}.Name()

	for _, r := range buildReports(t, params, users, 2) {
		if err := b.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.CloseRound(2); err != nil {
		t.Fatal(err)
	}
	// The snapshot goroutine compacts asynchronously; wait until the
	// segment the stopped follower was tailing is pruned away, so the
	// restart below is forced onto the snapshot-resync path.
	waitFor(t, "primary to prune the stopped follower's tail segment", func() bool {
		_, err := os.Stat(filepath.Join(dir, f1Tail))
		return os.IsNotExist(err)
	})

	f2, err := repl.StartFollower(repl.Options{Dir: mirror, Addr: p.Addr(), Poll: 2 * time.Millisecond, Logf: t.Logf}, backendCfg(params, users))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Stop()
	waitFor(t, "second follower to converge", func() bool {
		th, err := f2.Replica().Threshold(2)
		return err == nil && th >= 0 && f2.Status().CaughtUp
	})
	assertMirror(t, b, f2.Replica(), 1, 2)
	// The local mirror must have followed the primary's pruning: its
	// copy of the pruned segment is covered by the fetched snapshot.
	if _, err := os.Stat(filepath.Join(mirror, "wal-0000000000000001.log")); !os.IsNotExist(err) {
		t.Fatal("stale pre-snapshot segment survived in the mirror")
	}
}

// fakeSource serves scripted file bytes with a controllable visible
// size, so tests can freeze a torn (mid-record) tail exactly where
// they want it.
type fakeSource struct {
	mu    sync.Mutex
	data  map[store.FileKind]map[uint64][]byte
	limit map[store.FileKind]map[uint64]int64
}

func newFakeSource() *fakeSource {
	return &fakeSource{
		data:  map[store.FileKind]map[uint64][]byte{store.FileWAL: {}, store.FileSnapshot: {}},
		limit: map[store.FileKind]map[uint64]int64{store.FileWAL: {}, store.FileSnapshot: {}},
	}
}

func (s *fakeSource) set(kind store.FileKind, gen uint64, data []byte, limit int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[kind][gen] = data
	s.limit[kind][gen] = limit
}

func (s *fakeSource) Manifest() ([]store.FileInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var files []store.FileInfo
	for kind, gens := range s.data {
		for gen := range gens {
			files = append(files, store.FileInfo{Kind: kind, Gen: gen, Size: s.limit[kind][gen], Sealed: kind == store.FileSnapshot})
		}
	}
	return files, nil
}

func (s *fakeSource) ReadFileAt(kind store.FileKind, gen uint64, off int64, p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.data[kind][gen]
	if !ok {
		return 0, os.ErrNotExist
	}
	visible := data[:s.limit[kind][gen]]
	if off >= int64(len(visible)) {
		return 0, io.EOF
	}
	n := copy(p, visible[off:])
	if int64(off)+int64(n) == int64(len(visible)) {
		return n, io.EOF
	}
	return n, nil
}

// recordBoundaries parses a WAL segment's bytes and returns the byte
// offset after each complete record (the magic's end first).
func recordBoundaries(t *testing.T, raw []byte) []int64 {
	t.Helper()
	sp := store.NewSegmentParser()
	sp.Feed(raw)
	offs := []int64{8}
	for {
		ev, err := sp.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev == nil {
			return offs
		}
		offs = append(offs, sp.Offset())
	}
}

// A shipped tail cut mid-record must stop the follower cleanly at the
// last complete record; when the rest of the bytes appear, the
// follower re-requests from where it stopped and converges. This is
// the shipping-level half of the torn-tail discipline (recovery is the
// other half).
func TestFollowerConvergesTornTail(t *testing.T) {
	const users = 4
	params := testParams()
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg := backendCfg(params, users)
	cfg.Store = st
	b, err := backend.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, r := range buildReports(t, params, users, 1) {
		if err := b.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.CloseRound(1); err != nil {
		t.Fatal(err)
	}
	if err := b.SyncReports(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "wal-0000000000000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	offs := recordBoundaries(t, raw)
	// Cut 3 bytes into the third report record: open + 2 full reports
	// are visible, the third is torn.
	cut := offs[3] + 3
	src := newFakeSource()
	src.set(store.FileWAL, 1, raw, cut)
	p, err := repl.ServePrimary("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	f, err := repl.StartFollower(repl.Options{
		Dir: filepath.Join(t.TempDir(), "mirror"), Addr: p.Addr(),
		Poll: 2 * time.Millisecond, Logf: t.Logf,
	}, backendCfg(params, users))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	// The follower fetches everything visible, applies the two whole
	// reports, and stops cleanly inside the torn record.
	waitFor(t, "follower to reach the torn tail", func() bool {
		s := f.Status()
		return s.CaughtUp && s.TailOff == cut
	})
	rp, err := f.Replica().RoundProgressOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Reported != 2 {
		t.Fatalf("reported at torn tail = %d, want 2", rp.Reported)
	}

	// The rest of the bytes appear (the primary's next flush): the
	// follower re-requests from the cut and converges.
	src.set(store.FileWAL, 1, raw, int64(len(raw)))
	waitFor(t, "follower to converge past the torn tail", func() bool {
		th, err := f.Replica().Threshold(1)
		return err == nil && th >= 0
	})
	assertMirror(t, b, f.Replica(), 1)
}

// A connection that does not speak the protocol must be dropped at the
// hello, before any frame is honored.
func TestPrimaryDropsBadHello(t *testing.T) {
	src := newFakeSource()
	p, err := repl.ServePrimary("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("HTTP/1.1 GET /\r\n")); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	total := 0
	for {
		n, rerr := nc.Read(buf) // the primary's own hello arrives first
		total += n
		if rerr != nil {
			if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
				t.Fatal("primary left a non-protocol connection open")
			}
			return // dropped at the hello: correct
		}
		if total > len(wire.ReplMagic)+4 {
			t.Fatal("primary kept talking to a non-protocol peer")
		}
	}
}
