//go:build purego || !(amd64 || arm64 || 386 || arm || riscv64 || loong64 || mipsle || mips64le || ppc64le || wasm)

package vec

// Portable fallback for purego builds and big-endian (or unlisted)
// architectures: no unsafe, so no raw byte view exists — callers read
// into a byte buffer and decode with GetLE — and the encode kernels
// stay the generic per-word loops.

// AsBytes reports that no zero-copy byte view is available.
func AsBytes(v []uint64) ([]byte, bool) { return nil, false }

// pickEncode keeps the generic encode kernels selected at init.
func pickEncode() {}
