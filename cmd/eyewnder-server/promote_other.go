//go:build !unix

package main

import "os"

// notifyPromote on platforms without SIGUSR1: promotion is triggered
// only via the repl.promote wire message. The channel never delivers.
func notifyPromote() <-chan os.Signal {
	return make(chan os.Signal)
}
