package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Replication protocol frames. The segment-shipping conversation
// (internal/repl) is a pull loop the follower drives: manifest request,
// manifest, fetch, chunk. It runs on its own port with its own framing —
// binary like the streamed-report path, checksummed like the WAL —
// because what it carries is raw WAL bytes, and a transport flake that
// silently corrupted them would be indistinguishable from a torn
// segment on the follower's disk.
//
// A connection opens with a fixed 12-byte hello in each direction:
//
//	┌──────────────┬────────────────┐
//	│ "EYWNREPL"   │ revision       │
//	│ 8 B          │ 4 B, BE        │
//	└──────────────┴────────────────┘
//
// after which every frame is
//
//	┌────────────┬────────┬──────────┬─────────────────┐
//	│ length     │ kind   │ body     │ crc32c          │
//	│ 4 B, BE    │ 1 B    │ length B │ 4 B, LE, over   │
//	│ = len(body)│        │          │ kind ‖ body     │
//	└────────────┴────────┴──────────┴─────────────────┘
//
// — the JSON layer's big-endian length prefix married to the WAL's
// Castagnoli trailer. Frame kinds and body layouts (integers BE):
//
//	ReplManifestReq  (empty) — follower asks for the shipping manifest
//	ReplManifest     count(4), then per file: fileKind(1) gen(8)
//	                 size(8) sealed(1)
//	ReplFetch        fileKind(1) gen(8) off(8) maxLen(4)
//	ReplChunk        flags(1) data(rest) — the fetched byte range;
//	                 flags marks EOF-at-current-size and file-gone
//	ReplError        UTF-8 message — the primary refusing a request
//
// Future revisions bump ReplRevision; a primary refuses a hello whose
// revision it does not speak, so a follower never misparses frames.

// ReplMagic is the 8-byte magic opening a replication connection, in
// both directions.
const ReplMagic = "EYWNREPL"

// ReplRevision is the protocol revision this build speaks.
const ReplRevision = 1

// Replication frame kinds. Requests (follower → primary) have the top
// bit clear, responses (primary → follower) have it set.
const (
	// ReplManifestReq asks the primary for its current shipping
	// manifest. Empty body.
	ReplManifestReq byte = 0x01
	// ReplFetch asks for a byte range of one store file.
	ReplFetch byte = 0x02
	// ReplManifest carries the primary's shipping manifest.
	ReplManifest byte = 0x81
	// ReplChunk carries a fetched byte range.
	ReplChunk byte = 0x82
	// ReplError carries a refusal message; the connection stays usable.
	ReplError byte = 0xEF
)

// ReplChunk body flags.
const (
	// ReplChunkEOF marks a chunk that reached the file's current flushed
	// size: for a sealed file the follower holds it all, for the active
	// segment there is simply nothing more yet.
	ReplChunkEOF byte = 1 << 0
	// ReplChunkGone marks a fetch of a file the primary no longer has
	// (pruned by snapshot compaction). The chunk carries no data; the
	// follower re-requests the manifest and syncs from a newer snapshot.
	ReplChunkGone byte = 1 << 1
)

// ErrReplProto marks a malformed or checksum-failing replication frame
// or hello; the connection cannot be trusted further.
var ErrReplProto = errors.New("wire: bad repl frame")

// replCastagnoli is the frame checksum table (same polynomial as the
// WAL's record trailer).
var replCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteReplHello writes the 12-byte protocol hello.
func WriteReplHello(w io.Writer) error {
	var hello [12]byte
	copy(hello[:8], ReplMagic)
	binary.BigEndian.PutUint32(hello[8:], ReplRevision)
	_, err := w.Write(hello[:])
	return err
}

// ReadReplHello reads and validates the peer's hello, returning the
// peer's revision. A wrong magic or an unsupported revision returns
// ErrReplProto: the peers must not attempt to exchange frames.
func ReadReplHello(r io.Reader) (uint32, error) {
	var hello [12]byte
	if _, err := io.ReadFull(r, hello[:]); err != nil {
		return 0, fmt.Errorf("%w: short hello: %v", ErrReplProto, err)
	}
	if string(hello[:8]) != ReplMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrReplProto)
	}
	rev := binary.BigEndian.Uint32(hello[8:])
	if rev != ReplRevision {
		return 0, fmt.Errorf("%w: unsupported revision %d", ErrReplProto, rev)
	}
	return rev, nil
}

// WriteReplFrame frames and writes one replication frame.
func WriteReplFrame(w io.Writer, kind byte, body []byte) error {
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	crc := crc32.Update(0, replCastagnoli, hdr[4:5])
	crc = crc32.Update(crc, replCastagnoli, body)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	_, err := w.Write(tail[:])
	return err
}

// ReadReplFrame reads one replication frame. buf is an optional
// reusable scratch buffer; the returned body aliases it (or a grown
// replacement, also returned) and is valid until the next call. A
// framing or checksum failure returns ErrReplProto — the stream
// position is unknowable after it, so the caller drops the connection.
func ReadReplFrame(r io.Reader, buf []byte) (kind byte, body, newBuf []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	kind = hdr[4]
	if n > MaxFrame {
		return 0, nil, buf, fmt.Errorf("%w: %d-byte body", ErrReplProto, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	body = buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, buf, fmt.Errorf("%w: torn body: %v", ErrReplProto, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, buf, fmt.Errorf("%w: torn checksum: %v", ErrReplProto, err)
	}
	crc := crc32.Update(0, replCastagnoli, hdr[4:5])
	crc = crc32.Update(crc, replCastagnoli, body)
	if binary.LittleEndian.Uint32(tail[:]) != crc {
		return 0, nil, buf, fmt.Errorf("%w: checksum mismatch", ErrReplProto)
	}
	return kind, body, buf, nil
}

// ReplFileInfo is one store file in a shipped manifest: the wire-level
// mirror of store.FileInfo, kept free of a store dependency so the wire
// package stays a pure protocol layer.
type ReplFileInfo struct {
	// FileKind is the store file kind byte (store.FileWAL or
	// store.FileSnapshot).
	FileKind byte
	// Gen is the file's generation.
	Gen uint64
	// Size is the file's flushed size in bytes.
	Size int64
	// Sealed reports whether the file is immutable.
	Sealed bool
}

// replManifestEntry is the encoded size of one manifest entry:
// fileKind(1) gen(8) size(8) sealed(1).
const replManifestEntry = 18

// EncodeReplManifest encodes a ReplManifest body.
func EncodeReplManifest(files []ReplFileInfo) []byte {
	body := make([]byte, 4+replManifestEntry*len(files))
	binary.BigEndian.PutUint32(body, uint32(len(files)))
	at := 4
	for _, f := range files {
		body[at] = f.FileKind
		binary.BigEndian.PutUint64(body[at+1:], f.Gen)
		binary.BigEndian.PutUint64(body[at+9:], uint64(f.Size))
		if f.Sealed {
			body[at+17] = 1
		}
		at += replManifestEntry
	}
	return body
}

// DecodeReplManifest decodes a ReplManifest body.
func DecodeReplManifest(body []byte) ([]ReplFileInfo, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: short manifest", ErrReplProto)
	}
	n := binary.BigEndian.Uint32(body)
	if uint64(len(body)) != 4+replManifestEntry*uint64(n) {
		return nil, fmt.Errorf("%w: manifest %d bytes for %d entries", ErrReplProto, len(body), n)
	}
	files := make([]ReplFileInfo, n)
	at := 4
	for i := range files {
		files[i] = ReplFileInfo{
			FileKind: body[at],
			Gen:      binary.BigEndian.Uint64(body[at+1:]),
			Size:     int64(binary.BigEndian.Uint64(body[at+9:])),
			Sealed:   body[at+17] != 0,
		}
		if files[i].Size < 0 {
			return nil, fmt.Errorf("%w: negative manifest size", ErrReplProto)
		}
		at += replManifestEntry
	}
	return files, nil
}

// ReplFetchReq is a decoded ReplFetch body: a byte-range read of one
// store file.
type ReplFetchReq struct {
	// FileKind is the store file kind byte of the target.
	FileKind byte
	// Gen is the target file's generation.
	Gen uint64
	// Off is the byte offset to read from.
	Off int64
	// MaxLen caps the chunk the primary may answer with.
	MaxLen uint32
}

// replFetchBody is the encoded size of a ReplFetch body.
const replFetchBody = 21

// EncodeReplFetch encodes a ReplFetch body.
func EncodeReplFetch(req ReplFetchReq) []byte {
	body := make([]byte, replFetchBody)
	body[0] = req.FileKind
	binary.BigEndian.PutUint64(body[1:], req.Gen)
	binary.BigEndian.PutUint64(body[9:], uint64(req.Off))
	binary.BigEndian.PutUint32(body[17:], req.MaxLen)
	return body
}

// DecodeReplFetch decodes a ReplFetch body.
func DecodeReplFetch(body []byte) (ReplFetchReq, error) {
	if len(body) != replFetchBody {
		return ReplFetchReq{}, fmt.Errorf("%w: fetch body %d bytes", ErrReplProto, len(body))
	}
	req := ReplFetchReq{
		FileKind: body[0],
		Gen:      binary.BigEndian.Uint64(body[1:]),
		Off:      int64(binary.BigEndian.Uint64(body[9:])),
		MaxLen:   binary.BigEndian.Uint32(body[17:]),
	}
	if req.Off < 0 {
		return ReplFetchReq{}, fmt.Errorf("%w: negative fetch offset", ErrReplProto)
	}
	return req, nil
}
