package wire

import (
	"net"
	"sync"
	"testing"
)

// fillStream queues n decoded frames (round 1, distinct users) on st.
func fillStream(st *connStream, n int) {
	for i := 0; i < n; i++ {
		rb := reportBufPool.Get().(*reportBuf)
		st.ch <- streamItem{rb: rb, f: &ReportFrame{User: i, Round: 1}}
	}
}

// readAckSeqs reads acks until the cumulative sequence reaches total,
// returning every seq observed.
func readAckSeqs(t *testing.T, conn net.Conn, total uint64) []uint64 {
	t.Helper()
	var seqs []uint64
	for {
		seq, msg, err := readAckFrame(conn)
		if err != nil || msg != "" {
			t.Fatalf("ack: %d %q %v", seq, msg, err)
		}
		seqs = append(seqs, seq)
		if seq >= total {
			return seqs
		}
	}
}

// Under sustained backlog an adaptive connection must double its batch
// after every full batch, so the ack cadence grows exponentially — and
// the final idle flush shrinks it back to the drained depth. The
// channel is pre-filled, so the whole run is deterministic.
func TestAdaptiveAckGrowsUnderBacklog(t *testing.T) {
	sink := &countingSink{}
	s := &Server{sink: sink, opts: StreamOpts{}}
	srvConn, cliConn := net.Pipe()
	defer cliConn.Close()
	defer srvConn.Close()
	var wmu sync.Mutex
	st := &connStream{ch: make(chan streamItem, 64), done: make(chan struct{}), k: 4, adaptive: true}
	fillStream(st, 64)
	s.wg.Add(1)
	go s.foldLoop(srvConn, &wmu, st)

	// k: 4 → 8 → 16 → 32 → … gives acks at 4, 12, 28, 60; the last 4
	// frames drain the pipeline, so the final ack is the idle flush.
	want := []uint64{4, 12, 28, 60, 64}
	got := readAckSeqs(t, cliConn, 64)
	if len(got) != len(want) {
		t.Fatalf("ack seqs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ack seqs = %v, want %v", got, want)
		}
	}
	close(st.ch)
	<-st.done
	if sink.count() != 64 {
		t.Fatalf("sink saw %d frames", sink.count())
	}
}

// A fixed batch (AckBatch ≥ 1) must never adapt: the same backlog gets
// one ack every k frames, regardless of depth.
func TestFixedAckBatchDoesNotAdapt(t *testing.T) {
	sink := &countingSink{}
	s := &Server{sink: sink, opts: StreamOpts{AckBatch: 4}}
	srvConn, cliConn := net.Pipe()
	defer cliConn.Close()
	defer srvConn.Close()
	var wmu sync.Mutex
	st := &connStream{ch: make(chan streamItem, 32), done: make(chan struct{}), k: 4}
	fillStream(st, 32)
	s.wg.Add(1)
	go s.foldLoop(srvConn, &wmu, st)

	got := readAckSeqs(t, cliConn, 32)
	for i, seq := range got {
		if want := uint64(4 * (i + 1)); seq != want {
			t.Fatalf("fixed-k ack %d = %d, want %d (%v)", i, seq, want, got)
		}
	}
	close(st.ch)
	<-st.done
}

// The adaptive cap: k must stop doubling at maxAdaptiveAckBatch.
func TestAdaptiveAckRespectsCap(t *testing.T) {
	if got := clampAckBatch(maxAdaptiveAckBatch * 4); got != maxAdaptiveAckBatch {
		t.Fatalf("clamp high = %d", got)
	}
	if got := clampAckBatch(0); got != 1 {
		t.Fatalf("clamp low = %d", got)
	}
}

// End-to-end smoke over a real server: an adaptive connection (the
// default StreamOpts) negotiates DefaultAckBatch as its initial k and
// carries a long windowed stream correctly.
func TestAdaptiveAckEndToEnd(t *testing.T) {
	sink := &countingSink{}
	_, cli := batchedPair(t, sink, StreamOpts{})
	rs, err := cli.OpenReportStream(128)
	if err != nil {
		t.Fatal(err)
	}
	if rs.k != DefaultAckBatch {
		t.Fatalf("negotiated initial k = %d, want %d", rs.k, DefaultAckBatch)
	}
	f := testFrame(32)
	for i := 0; i < 300; i++ {
		f.User = i
		if err := rs.Submit(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 300 {
		t.Fatalf("sink saw %d frames, want 300", sink.count())
	}
}
