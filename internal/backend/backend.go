// Package backend implements eyeWnder's back-end server (Figure 1): it
// hosts the bulletin board of blinding public keys, collects blinded CMS
// reports, runs the missing-client adjustment round, unblinds the weekly
// aggregate, computes the global Users_th threshold, and answers
// real-time ad audits. It also exposes the oprf-server as a separate
// network endpoint with its own key, preserving the paper's trust split:
// the back-end never holds the OPRF secret.
package backend

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"

	"eyewnder/internal/blind"
	"eyewnder/internal/detector"
	"eyewnder/internal/oprf"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
	"eyewnder/internal/store"
	"eyewnder/internal/vec"
	"eyewnder/internal/wire"
)

// Errors returned by the package.
var (
	ErrRoundClosed    = errors.New("backend: round already closed")
	ErrRoundNotClosed = errors.New("backend: round not closed yet")
	ErrUnknownRound   = errors.New("backend: unknown round")
	ErrBadUser        = errors.New("backend: user index out of range")
)

// Config fixes the back-end's parameters.
type Config struct {
	// Params is the shared protocol geometry.
	Params privacy.Params
	// Users is the roster size.
	Users int
	// UsersEstimator derives Users_th from the per-ad user counts.
	UsersEstimator detector.Estimator
	// MergeStripes sets the intra-round merge striping: 0 picks the
	// default (2×GOMAXPROCS), 1 degenerates to a single merge lock.
	MergeStripes int
	// AckBatch sets the streamed-report ack batch k for connections that
	// negotiate batched acknowledgements: one binary ack per k frames.
	// 0 (the default) lets the server adapt k per connection from the
	// observed in-flight depth; 1 acknowledges every frame.
	AckBatch int
	// Store is the durable round store. nil (or store.Null{}) keeps all
	// round state in memory — the original behavior. A store.Disk makes
	// every round event — open, report, adjustment, close, registration
	// — crash-recoverable: New replays the store's recovered state into
	// live rounds, and the wire layer's acknowledgements double as
	// group-committed fsync barriers (SyncReports), so a report is
	// durable before its ack and the batched-ack window amortizes the
	// fsyncs.
	Store store.Store
	// RetainRounds bounds closed-round retention: once a round's
	// Users_th has been served for RetainRounds newer closed rounds, the
	// round ages out of memory (and out of subsequent snapshots) — its
	// threshold and audits answer ErrUnknownRound afterwards. 0 keeps
	// every closed round forever (the original behavior). Retention also
	// applies at recovery, so a restart does not resurrect aged-out
	// rounds.
	RetainRounds int
}

// Backend is the server state. All methods are safe for concurrent use.
//
// Locking is three-level: Backend.mu guards only the roster and the round
// map; each round carries an RWMutex whose read side admits any number of
// concurrent reporters while the write side (close, adjustments, status)
// excludes them; and within a round the aggregator's merge is striped
// across row ranges (vec.Striped), so reporters into the *same* round
// fold disjoint stripes in parallel. Folding a report merges a full cell
// vector (tens of KB) — under the earlier single round lock one hot
// round's ingestion serialized even on many-core hosts.
type Backend struct {
	cfg   Config
	cells int // sketch cell count implied by Params, for share validation

	// store is the durability sink (store.Null when Config.Store is
	// nil); durable is false for the null store, gating the snapshot
	// machinery.
	store   store.Store
	durable bool
	// snapC wakes the snapshot goroutine; snapQuit (closed by Close)
	// tells it to exit — snapC itself is never closed, because reporters
	// send on it concurrently and a send racing a close would panic;
	// snapDone closes when the goroutine exits; snapErr holds the last
	// snapshot failure (surfaced by Close). All nil/unused when not
	// durable.
	snapC     chan struct{}
	snapQuit  chan struct{}
	snapDone  chan struct{}
	snapErrMu sync.Mutex
	snapErr   error
	closing   sync.Once

	mu     sync.Mutex
	roster [][]byte // bulletin board; nil slot = unregistered
	rounds map[uint64]*round
	// retiredBelow is the retention cutoff (guarded by mu): rounds with
	// ID below it have had their Users_th served for the full horizon
	// and were dropped. getRound refuses to re-create them — a retired
	// round must answer ErrUnknownRound, not silently reopen with a
	// fresh reported bitmap. 0 = nothing retired.
	retiredBelow uint64
	// configVersion and rosterVersion are the deployment-wide negotiated
	// round-config counters (guarded by mu). The back-end is the single
	// source of truth for them: the wire handshake advertises the
	// current pair, every registration that changes the bulletin board
	// bumps both, rounds pin the pair current at their open, and with a
	// durable store the counters survive restarts (recConfig records +
	// snapshot headers).
	configVersion uint32
	rosterVersion uint32
}

type round struct {
	mu      sync.RWMutex
	agg     *privacy.Aggregator
	adjusts map[int][]uint64 // second-round shares by reporter
	closed  bool
	final   *sketch.CMS
	usersTh float64
	// counts is the per-ad-ID user-count map extracted at close.
	counts map[uint64]uint64
}

// New constructs a back-end. With a durable Config.Store, the store's
// recovered state — bulletin-board registrations and full round states
// (aggregate cells, reported bitmaps, adjustment shares, closed flags)
// — is replayed into live rounds before the back-end accepts traffic,
// so a restart resumes every round exactly where the crash left it.
func New(cfg Config) (*Backend, error) {
	if cfg.Users < 1 {
		return nil, errors.New("backend: Users must be >= 1")
	}
	d, w, err := sketch.Dimensions(cfg.Params.Epsilon, cfg.Params.Delta)
	if err != nil {
		return nil, err
	}
	st := cfg.Store
	if st == nil {
		st = store.Null{}
	}
	_, isNull := st.(store.Null)
	b := &Backend{
		cfg:     cfg,
		cells:   d * w,
		store:   st,
		durable: !isNull,
		roster:  make([][]byte, cfg.Users),
		rounds:  make(map[uint64]*round),
	}
	if err := b.restore(); err != nil {
		return nil, err
	}
	if b.durable {
		b.snapC = make(chan struct{}, 1)
		b.snapQuit = make(chan struct{})
		b.snapDone = make(chan struct{})
		go b.snapshotLoop()
	}
	return b, nil
}

// restore replays the store's recovered state into live rounds. The
// recovered geometry, roster size, and blinding suite must match this
// back-end's configuration: persisted rounds from a different protocol
// configuration could never aggregate correctly, so a mismatch refuses
// to start rather than corrupt rounds silently. The deployment-wide
// config/roster version counters are adopted from the store (floored at
// 1 — version 0 is reserved for the unversioned legacy style — and at
// the highest version any recovered round was opened under), so the
// negotiated state a restart advertises is exactly the one the crash
// interrupted. Closed rounds past the retention horizon are not
// resurrected.
func (b *Backend) restore() error {
	for u, key := range b.store.Roster() {
		if u < 0 || u >= b.cfg.Users {
			return fmt.Errorf("backend: recovered roster entry for user %d, roster size %d — data dir from a different deployment?", u, b.cfg.Users)
		}
		b.roster[u] = append([]byte(nil), key...)
	}
	cv, rv := b.store.ConfigVersions()
	b.configVersion, b.rosterVersion = max32(cv, 1), max32(rv, 1)
	recovered := b.store.Rounds()
	var closed []uint64
	for _, rs := range recovered {
		if rs.Closed {
			closed = append(closed, rs.Round)
		}
	}
	b.retiredBelow = retentionCutoff(closed, b.cfg.RetainRounds)
	for _, rs := range recovered {
		if rs.D*rs.W != b.cells {
			return fmt.Errorf("backend: recovered round %d has %dx%d cells, config wants %d — data dir from a different geometry?", rs.Round, rs.D, rs.W, b.cells)
		}
		if rs.RosterSize != b.cfg.Users {
			return fmt.Errorf("backend: recovered round %d expects %d users, config says %d", rs.Round, rs.RosterSize, b.cfg.Users)
		}
		if rs.Keystream != byte(b.cfg.Params.Keystream) {
			return fmt.Errorf("backend: recovered round %d used keystream suite %#02x, config says %#02x", rs.Round, rs.Keystream, byte(b.cfg.Params.Keystream))
		}
		b.configVersion = max32(b.configVersion, rs.ConfigVersion)
		b.rosterVersion = max32(b.rosterVersion, rs.RosterVersion)
		if rs.Closed && rs.Round < b.retiredBelow {
			continue // aged out: its Users_th has been served long enough
		}
		rcfg := privacy.RoundConfig{
			Version:       rs.ConfigVersion,
			RosterVersion: rs.RosterVersion,
			RosterSize:    b.cfg.Users,
			Params:        b.cfg.Params,
		}
		agg, err := privacy.RestoreAggregatorStripes(rcfg, rs.Round, b.cfg.MergeStripes,
			rs.Cells, rs.N, rs.Seed, rs.Reported)
		if err != nil {
			return err
		}
		adjusts := rs.Adjusts
		if adjusts == nil {
			adjusts = make(map[int][]uint64)
		}
		r := &round{agg: agg, adjusts: adjusts}
		if rs.Closed {
			// Re-derive the close-time results (final sketch, per-ad
			// counts, Users_th) from the recovered aggregate: the inputs
			// are byte-identical, so the counts are too.
			if err := b.finalizeLocked(r); err != nil {
				return fmt.Errorf("backend: re-closing recovered round %d: %w", rs.Round, err)
			}
			r.closed = true
		}
		b.rounds[rs.Round] = r
	}
	return nil
}

// retentionCutoff returns the exclusive round-ID bound below which
// closed rounds age out: with retain > 0 and more than retain closed
// rounds, it is the retain-th newest closed round's ID — every closed
// round older than that has had its Users_th served while retain newer
// closed rounds were published. Counting closed rounds (rather than
// subtracting retain from an ID) keeps the promise independent of the
// round numbering scheme: sparse or date-keyed round IDs retire on the
// same schedule as consecutive ones. 0 means nothing retires. The
// slice is sorted in place.
func retentionCutoff(closed []uint64, retain int) uint64 {
	if retain <= 0 || len(closed) <= retain {
		return 0
	}
	sort.Slice(closed, func(i, j int) bool { return closed[i] > closed[j] })
	return closed[retain-1]
}

// max32 returns the larger of two uint32s.
func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// snapshotLoop runs store snapshots off the hot path: report ingestion
// only pokes snapC (non-blocking) when the store says enough has been
// logged, and this goroutine captures the round states and compacts the
// WAL. Snapshot failures are remembered and surfaced by Close — the WAL
// keeps growing but stays correct.
func (b *Backend) snapshotLoop() {
	defer close(b.snapDone)
	for {
		select {
		case <-b.snapQuit:
			return
		case <-b.snapC:
			if err := b.store.Snapshot(b.captureRoundStates); err != nil {
				b.snapErrMu.Lock()
				b.snapErr = err
				b.snapErrMu.Unlock()
			}
		}
	}
}

// maybeSnapshot pokes the snapshot goroutine when the store wants one.
func (b *Backend) maybeSnapshot() {
	if b.durable && b.store.ShouldSnapshot() {
		select {
		case b.snapC <- struct{}{}:
		default:
		}
	}
}

// captureRoundStates snapshots every round's durable state. Each round
// is captured under its write lock (excluding in-flight reporters), so
// the state is internally consistent; rounds are captured one at a
// time, which is fine because the WAL has already rotated — anything
// folded between two captures is replayed idempotently on top.
func (b *Backend) captureRoundStates() ([]*store.RoundState, error) {
	b.mu.Lock()
	ids := make([]uint64, 0, len(b.rounds))
	rounds := make([]*round, 0, len(b.rounds))
	for id, r := range b.rounds {
		ids = append(ids, id)
		rounds = append(rounds, r)
	}
	b.mu.Unlock()
	out := make([]*store.RoundState, 0, len(rounds))
	for i, r := range rounds {
		r.mu.Lock()
		d, w, seed, n, ks, cells, reported := r.agg.SnapshotState()
		rcfg := r.agg.Config()
		adjusts := make(map[int][]uint64, len(r.adjusts))
		for u, s := range r.adjusts {
			adjusts[u] = append([]uint64(nil), s...)
		}
		closed := r.closed
		r.mu.Unlock()
		out = append(out, &store.RoundState{
			Round: ids[i], RosterSize: b.cfg.Users,
			ConfigVersion: rcfg.Version, RosterVersion: rcfg.RosterVersion,
			D: d, W: w, Seed: seed, N: n, Keystream: byte(ks),
			Closed: closed, Cells: cells, Reported: reported, Adjusts: adjusts,
		})
	}
	return out, nil
}

// SyncReports implements wire.ReportDurability: the wire layer calls it
// immediately before acknowledging streamed reports, making the ack a
// durability barrier. The store's group commit coalesces concurrent
// barriers, so one fsync covers a whole batched-ack window.
func (b *Backend) SyncReports() error { return b.store.Sync() }

// Close stops the snapshot goroutine and reports the last snapshot
// failure, if any. It does not close the store — the store's owner
// (whoever called store.Open) does that, after the back-end is done.
func (b *Backend) Close() error {
	if b.durable {
		b.closing.Do(func() { close(b.snapQuit) })
		<-b.snapDone
	}
	b.snapErrMu.Lock()
	defer b.snapErrMu.Unlock()
	return b.snapErr
}

// MergeStripes returns the per-round merge stripe count actually in
// effect for this back-end's sketch geometry (the configured value is a
// request; tiny sketches clamp it).
func (b *Backend) MergeStripes() int {
	return vec.EffectiveStripes(b.cells, b.cfg.MergeStripes)
}

// CurrentConfig returns the negotiated round config the back-end
// currently advertises: the flag-derived protocol geometry stamped with
// the live config/roster versions. This — not any client-side flag set
// — is the deployment's source of truth; the wire handshake serves it
// to every connecting client.
func (b *Backend) CurrentConfig() privacy.RoundConfig {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.currentConfigLocked()
}

// currentConfigLocked is CurrentConfig under b.mu.
func (b *Backend) currentConfigLocked() privacy.RoundConfig {
	return privacy.RoundConfig{
		Version:       b.configVersion,
		RosterVersion: b.rosterVersion,
		RosterSize:    b.cfg.Users,
		Params:        b.cfg.Params,
	}
}

// wireConfig renders the current config as a Welcome-frame payload
// (wire.StreamOpts.Config).
func (b *Backend) wireConfig() wire.ConfigFrame {
	cfg := b.CurrentConfig()
	return wire.ConfigFrame{
		ConfigVersion: cfg.Version,
		RosterVersion: cfg.RosterVersion,
		RosterSize:    uint32(cfg.RosterSize),
		Epsilon:       cfg.Params.Epsilon,
		Delta:         cfg.Params.Delta,
		IDSpace:       cfg.Params.IDSpace,
		Keystream:     byte(cfg.Params.Keystream),
		Group:         wire.GroupP256,
		Estimator:     byte(b.cfg.UsersEstimator),
		AckBatch:      uint32(b.cfg.AckBatch),
	}
}

// Register stores a user's blinding public key on the bulletin board
// (durably, when a store is configured: the board must survive restarts
// or recovered rounds would face an empty roster). A registration that
// changes the board — a fresh slot, or a new key over an old one —
// bumps the roster and config versions: the pairwise blinding sets
// every other member derived are now stale, so rounds opened before the
// bump stop admitting new-config reporters and rounds opened after it
// reject old-config ones (privacy.ErrIncompatibleConfig), instead of
// silently breaking blinding cancellation. Re-registering an identical
// key (a client retry) bumps nothing.
//
// The fsync barrier runs after b.mu is released — report ingestion
// (which needs b.mu for round lookup) never stalls behind a
// registration's disk flush, and concurrent registrations group-commit
// onto one fsync. A Sync failure surfaces as the registration's error;
// the client retries and the overwrite is idempotent.
func (b *Backend) Register(user int, publicKey []byte) (rosterSize int, err error) {
	b.mu.Lock()
	if user < 0 || user >= b.cfg.Users {
		b.mu.Unlock()
		return 0, ErrBadUser
	}
	if len(publicKey) == 0 {
		// An empty key can never be a blinding public key, and accepting
		// one would let a buggy client bump the deployment versions on
		// every retry (empty never compares equal to an absent slot).
		b.mu.Unlock()
		return 0, errors.New("backend: empty public key")
	}
	if err := b.store.AppendRegister(user, publicKey); err != nil {
		b.mu.Unlock()
		return 0, err
	}
	if !bytesEqual(b.roster[user], publicKey) {
		// The version bump is logged in the same critical section as the
		// register record, so recovery can never observe one without the
		// other; the live counters advance only once the record is
		// appended, so a failed append never leaves the backend
		// advertising a version no durable record backs.
		cv, rv := b.configVersion+1, b.rosterVersion+1
		if err := b.store.AppendConfig(cv, rv); err != nil {
			b.mu.Unlock()
			return 0, err
		}
		b.configVersion, b.rosterVersion = cv, rv
	}
	b.roster[user] = append([]byte(nil), publicKey...)
	b.mu.Unlock()
	if err := b.store.Sync(); err != nil {
		return 0, err
	}
	return b.cfg.Users, nil
}

// bytesEqual reports whether a and b hold the same bytes.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Roster returns the bulletin board together with the config/roster
// versions it is current at, so a caller deriving pairwise blinding
// secrets can pin the exact negotiated state its reports belong to.
func (b *Backend) Roster() (keys [][]byte, configVersion, rosterVersion uint32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([][]byte, len(b.roster))
	for i, k := range b.roster {
		if k != nil {
			out[i] = append([]byte(nil), k...)
		}
	}
	return out, b.configVersion, b.rosterVersion
}

// getRound returns (creating on first touch) the round's state. Only the
// map access happens under the global lock; callers lock the returned
// round for any state access. Round creation is logged before the round
// becomes visible, so the WAL always carries a round's open record
// ahead of its reports; the record is not fsynced here — every
// acknowledgement barrier that matters (report ack, adjustment upload,
// close) group-commits everything appended before it, open record
// included, and an open that was never followed by an acked event is
// trivially recreated on demand after a crash.
func (b *Backend) getRound(id uint64) (*round, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.rounds[id]
	if !ok {
		if id < b.retiredBelow {
			// The round was retired: its Users_th has already been
			// published and served. Re-creating it here would hand out a
			// fresh reported bitmap (breaking the duplicate invariant
			// for late or replayed reports) and eventually publish a
			// second, different threshold for the same round ID.
			return nil, ErrUnknownRound
		}
		// The round pins the config current at its open: later version
		// bumps (roster changes) open *future* rounds under the new
		// config, while this one keeps accepting exactly the cohort that
		// negotiated it.
		rcfg := b.currentConfigLocked()
		agg, err := privacy.NewAggregatorStripes(rcfg, id, b.cfg.MergeStripes)
		if err != nil {
			return nil, err
		}
		d, w, seed := agg.Layout()
		if err := b.store.AppendOpen(id, b.cfg.Users, d, w, seed, byte(b.cfg.Params.Keystream),
			rcfg.Version, rcfg.RosterVersion); err != nil {
			return nil, err
		}
		r = &round{agg: agg, adjusts: make(map[int][]uint64)}
		b.rounds[id] = r
	}
	return r, nil
}

// lookupRound returns an existing round without creating one.
func (b *Backend) lookupRound(id uint64) (*round, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.rounds[id]
	return r, ok
}

// SubmitReport folds one blinded report into the round aggregate.
// Reporters hold only the round's read lock: the aggregator's own
// bookkeeping lock and striped cell merge admit concurrent submissions
// into the same round, while the write lock (CloseRound) excludes them.
//
// The sequence is reserve → log → fold: the aggregator first validates
// and reserves the user's slot (so the WAL only ever records reports
// the aggregate will absorb, and records them in acceptance order),
// then the report is logged, then the cells merge. This path also syncs
// before returning — its callers (JSON wire handler, in-process
// clients) treat the return as the acknowledgement.
func (b *Backend) SubmitReport(rep *privacy.Report) error {
	r, err := b.getRound(rep.Round)
	if err != nil {
		return err
	}
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return ErrRoundClosed
	}
	if err := r.agg.Reserve(rep); err != nil {
		r.mu.RUnlock()
		return err
	}
	sk := rep.Sketch
	if err := b.store.AppendReport(rep.Round, rep.User, sk.Depth(), sk.Width(), sk.N(), sk.Seed(),
		byte(rep.Keystream), rep.ConfigVersion, sk.FlatCells()); err != nil {
		r.agg.Unreserve(rep.User, sk.N())
		r.mu.RUnlock()
		return err
	}
	r.agg.FoldReserved(sk.FlatCells())
	// The fsync barrier runs outside the round lock: a close or snapshot
	// queued on the write side would otherwise block every reporter
	// behind this submission's disk flush.
	r.mu.RUnlock()
	if err := b.store.Sync(); err != nil {
		return err
	}
	b.maybeSnapshot()
	return nil
}

// ConsumeReport implements wire.ReportSink: a streamed report's pooled
// cell vector folds straight into the round aggregate, with no
// intermediate []byte or CMS ever materialized. The frame's keystream
// suite byte is enforced against the round's: a report blinded under a
// different suite would not cancel and would silently corrupt the
// aggregate.
//
// Durability: the frame is logged (reserve → log → fold, like
// SubmitReport) while its cells are still the pooled wire buffer, but
// NOT synced here — the wire layer calls SyncReports immediately before
// each acknowledgement, so one group-committed fsync covers a whole
// batched-ack window instead of every report paying its own.
func (b *Backend) ConsumeReport(f *wire.ReportFrame) error {
	r, err := b.getRound(f.Round)
	if err != nil {
		return err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return ErrRoundClosed
	}
	ks := blind.Keystream(f.Keystream)
	if err := r.agg.ReserveCells(f.User, f.D, f.W, f.N, f.Seed, ks, f.ConfigVersion, len(f.Cells)); err != nil {
		return err
	}
	if err := b.store.AppendReport(f.Round, f.User, f.D, f.W, f.N, f.Seed, f.Keystream, f.ConfigVersion, f.Cells); err != nil {
		r.agg.Unreserve(f.User, f.N)
		return err
	}
	r.agg.FoldReserved(f.Cells)
	b.maybeSnapshot()
	return nil
}

// RoundStatus reports progress of a round.
func (b *Backend) RoundStatus(id uint64) (reported int, missing []int, closed bool, err error) {
	r, err := b.getRound(id)
	if err != nil {
		return 0, nil, false, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.agg.Reported(), r.agg.Missing(), r.closed, nil
}

// SubmitAdjustment records a reporter's second-round share. Shares with
// the wrong cell count are rejected here, at upload time: a stored
// bad-length share would otherwise make every CloseRound attempt fail.
func (b *Backend) SubmitAdjustment(user int, id uint64, cells []uint64) error {
	if user < 0 || user >= b.cfg.Users {
		return ErrBadUser
	}
	if len(cells) != b.cells {
		return fmt.Errorf("backend: adjustment share has %d cells, want %d", len(cells), b.cells)
	}
	r, err := b.getRound(id)
	if err != nil {
		return err
	}
	// The write lock covers only the closed check, the append (which
	// must order against a concurrent close), and the map update; the
	// fsync barrier runs after it is released, so the round's reporters
	// (read-lock holders) never stall behind an adjustment's disk flush
	// and concurrent adjustment uploads group-commit onto one fsync. A
	// Sync failure surfaces as this upload's error; a retry overwrites
	// the share idempotently.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRoundClosed
	}
	if err := b.store.AppendAdjust(id, user, cells); err != nil {
		r.mu.Unlock()
		return err
	}
	r.adjusts[user] = append([]uint64(nil), cells...)
	r.mu.Unlock()
	return b.store.Sync()
}

// CloseRound unblinds the aggregate (applying any adjustment shares),
// extracts the per-ad user counts, and computes Users_th. The close is
// logged and synced before the round flips to closed, so a crash
// straddling the close either replays it (record durable) or leaves
// the round open and retryable (record lost) — never half-closed. With
// Config.RetainRounds set, a successful close also ages out closed
// rounds whose Users_th has now been served for the retention horizon.
func (b *Backend) CloseRound(id uint64) (usersTh float64, distinctAds int, err error) {
	r, err := b.getRound(id)
	if err != nil {
		return 0, 0, err
	}
	r.mu.Lock()
	if r.closed {
		defer r.mu.Unlock()
		return r.usersTh, len(r.counts), nil
	}
	if err := b.finalizeLocked(r); err != nil {
		r.mu.Unlock()
		return 0, 0, err
	}
	if err := b.store.AppendClose(id); err != nil {
		r.mu.Unlock()
		return 0, 0, err
	}
	if err := b.store.Sync(); err != nil {
		r.mu.Unlock()
		return 0, 0, err
	}
	r.closed = true
	usersTh, distinctAds = r.usersTh, len(r.counts)
	r.mu.Unlock()
	b.retireRounds()
	return usersTh, distinctAds, nil
}

// retireRounds drops every closed round older than the RetainRounds-th
// newest closed round: its Users_th has been served for the configured
// horizon, so its memory (cells, counts, final sketch) and its slot in
// future snapshots are released, and getRound refuses to resurrect it.
// Open stragglers are never retired — they have not served anything
// yet. Retention is not logged — the WAL may still carry the rounds
// until compaction — because the same cutoff is re-derived at recovery
// (restore), so an aged-out round stays gone across restarts.
func (b *Backend) retireRounds() {
	if b.cfg.RetainRounds <= 0 {
		return
	}
	// Pass 1: snapshot the round map under b.mu only. Checking a
	// round's closed flag takes its lock, and a round mid-close holds
	// its write lock across an fsync — blocking on that while holding
	// b.mu would stall every reporter's round lookup behind a disk
	// flush.
	b.mu.Lock()
	ids := make([]uint64, 0, len(b.rounds))
	rounds := make([]*round, 0, len(b.rounds))
	for rid, r := range b.rounds {
		ids = append(ids, rid)
		rounds = append(rounds, r)
	}
	b.mu.Unlock()
	var closed []uint64
	closedSet := make(map[uint64]bool)
	for i, r := range rounds {
		r.mu.RLock()
		c := r.closed
		r.mu.RUnlock()
		if c {
			closed = append(closed, ids[i])
			closedSet[ids[i]] = true
		}
	}
	cutoff := retentionCutoff(closed, b.cfg.RetainRounds)
	if cutoff == 0 {
		return
	}
	// Pass 2: delete under b.mu. Rounds are only ever created or
	// deleted, never replaced, and closed is sticky — a round observed
	// closed in pass 1 is still the same closed round now.
	b.mu.Lock()
	for rid := range b.rounds {
		if rid < cutoff && closedSet[rid] {
			delete(b.rounds, rid)
		}
	}
	if cutoff > b.retiredBelow {
		b.retiredBelow = cutoff
	}
	b.mu.Unlock()
}

// finalizeLocked computes a round's close-time results — the unblinded
// final sketch, the per-ad user counts, and Users_th — without marking
// it closed. Shared by CloseRound and the recovery path, which re-runs
// it on a restored aggregate: the inputs are byte-identical to the
// original close, so the counts are too. Caller holds r.mu (write).
func (b *Backend) finalizeLocked(r *round) error {
	// Adjustments are applied to a clone of the aggregate
	// (FinalizeWithAdjustments), never to the live one: if the close
	// fails (reports still missing, say), a retry must not subtract the
	// same shares twice.
	shares := make([][]uint64, 0, len(r.adjusts))
	for _, s := range r.adjusts {
		shares = append(shares, s)
	}
	final, err := r.agg.FinalizeWithAdjustments(shares...)
	if err != nil {
		return err
	}
	r.final = final
	r.counts = privacy.UserCounts(final, b.cfg.Params)
	sample := make([]float64, 0, len(r.counts))
	for _, c := range r.counts {
		sample = append(sample, float64(c))
	}
	r.usersTh = detector.UsersThreshold(sample, b.cfg.UsersEstimator)
	return nil
}

// Threshold returns a closed round's Users_th (Figure 1, arrow 5).
func (b *Backend) Threshold(id uint64) (float64, error) {
	r, ok := b.lookupRound(id)
	if !ok {
		return 0, ErrUnknownRound
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.closed {
		return 0, ErrRoundNotClosed
	}
	return r.usersTh, nil
}

// AuditAd answers a real-time audit: the estimated #Users for an ad ID in
// a closed round.
func (b *Backend) AuditAd(id uint64, adID uint64) (uint64, error) {
	r, ok := b.lookupRound(id)
	if !ok {
		return 0, ErrUnknownRound
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.closed {
		return 0, ErrRoundNotClosed
	}
	return privacy.QueryUsers(r.final, adID), nil
}

// UserCountsOfRound exposes a closed round's per-ad-ID counts (used by the
// evaluation harness and the Figure 2 experiment).
func (b *Backend) UserCountsOfRound(id uint64) (map[uint64]uint64, error) {
	r, ok := b.lookupRound(id)
	if !ok {
		return nil, ErrUnknownRound
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.closed {
		return nil, ErrRoundNotClosed
	}
	out := make(map[uint64]uint64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out, nil
}

// Handler adapts the back-end to the wire protocol.
func (b *Backend) Handler() wire.Handler {
	return func(m *wire.Msg) (string, interface{}, error) {
		switch m.Type {
		case wire.TypeRegister:
			var req wire.RegisterReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			n, err := b.Register(req.User, req.PublicKey)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeRegisterOK, wire.RegisterResp{RosterSize: n}, nil

		case wire.TypeRoster:
			keys, cv, rv := b.Roster()
			return wire.TypeRosterOK, wire.RosterResp{
				PublicKeys: keys, ConfigVersion: cv, RosterVersion: rv,
			}, nil

		case wire.TypeSubmitReport:
			var req wire.SubmitReportReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			var cms sketch.CMS
			if err := cms.UnmarshalBinary(req.Sketch); err != nil {
				return "", nil, err
			}
			rep := &privacy.Report{
				User: req.User, Round: req.Round, Sketch: &cms,
				Keystream:     blind.Keystream(req.Keystream),
				ConfigVersion: req.ConfigVersion,
			}
			if err := b.SubmitReport(rep); err != nil {
				return "", nil, err
			}
			return wire.TypeSubmitReportOK, struct{}{}, nil

		case wire.TypeRoundStatus:
			var req wire.CloseRoundReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			reported, missing, closed, err := b.RoundStatus(req.Round)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeRoundStatusOK, wire.RoundStatusResp{
				Round: req.Round, Reported: reported, Missing: missing, Closed: closed,
			}, nil

		case wire.TypeSubmitAdjust:
			var req wire.SubmitAdjustReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			if err := b.SubmitAdjustment(req.User, req.Round, req.Cells); err != nil {
				return "", nil, err
			}
			return wire.TypeSubmitAdjustOK, struct{}{}, nil

		case wire.TypeCloseRound:
			var req wire.CloseRoundReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			th, ads, err := b.CloseRound(req.Round)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeCloseRoundOK, wire.CloseRoundResp{
				Round: req.Round, UsersTh: th, DistinctAds: ads,
			}, nil

		case wire.TypeThreshold:
			var req wire.ThresholdReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			th, err := b.Threshold(req.Round)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeThresholdOK, wire.ThresholdResp{Round: req.Round, UsersTh: th}, nil

		case wire.TypeAuditAd:
			var req wire.AuditAdReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			users, err := b.AuditAd(req.Round, req.AdID)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeAuditAdOK, wire.AuditAdResp{Users: users}, nil
		}
		return "", nil, fmt.Errorf("backend: unknown message %q", m.Type)
	}
}

// Serve starts the back-end on a TCP address, accepting both JSON
// messages and streamed report frames (the back-end is its own
// wire.ReportSink). Connections that negotiate batched acknowledgements
// get one binary ack per Config.AckBatch frames and pipelined
// decode-while-fold ingestion; Hello frames are answered with the
// back-end's current negotiated config, making the server — not any
// operator flag set — the source of truth for protocol state.
func (b *Backend) Serve(addr string) (*wire.Server, error) {
	return wire.ServeWithSinkOpts(addr, b.Handler(), b, wire.StreamOpts{
		AckBatch: b.cfg.AckBatch,
		Config:   b.wireConfig,
	})
}

// OPRFHandler adapts an oprf.Server to the wire protocol.
func OPRFHandler(srv *oprf.Server) wire.Handler {
	return func(m *wire.Msg) (string, interface{}, error) {
		switch m.Type {
		case wire.TypeOPRFPublicKey:
			pub := srv.PublicKey()
			return wire.TypeOPRFPublicKeyOK, wire.OPRFPublicKeyResp{N: pub.N.Bytes(), E: pub.E}, nil
		case wire.TypeOPRFEvaluate:
			var req wire.OPRFEvaluateReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			y, err := srv.Evaluate(new(big.Int).SetBytes(req.Blinded))
			if err != nil {
				return "", nil, err
			}
			return wire.TypeOPRFEvaluateOK, wire.OPRFEvaluateResp{Signed: y.Bytes()}, nil
		}
		return "", nil, fmt.Errorf("oprf-server: unknown message %q", m.Type)
	}
}

// ServeOPRF starts the oprf-server on a TCP address.
func ServeOPRF(addr string, srv *oprf.Server) (*wire.Server, error) {
	return wire.Serve(addr, OPRFHandler(srv))
}
