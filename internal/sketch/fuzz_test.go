package sketch

import (
	"encoding/binary"
	"testing"
)

// Adversarial headers: (d, w) pairs whose product (or 8·d·w payload size)
// would overflow naive int arithmetic, plus plausible-but-huge geometries
// that must be rejected before any allocation.
func TestUnmarshalRejectsOverflowHeaders(t *testing.T) {
	cases := []struct {
		name string
		d, w uint64
	}{
		{"d*w overflows int32", 1 << 20, 1 << 32},
		{"8*d*w overflows int64", 1 << 20, 1 << 41},
		{"cells above cap", 1 << 14, 1 << 20},
		{"max allowed bounds", 1 << 20, 1 << 32},
		{"huge w", 1, 1<<32 + 1},
		{"huge d", 1<<20 + 1, 1},
		{"zero d", 0, 16},
		{"zero w", 16, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// A short buffer with a poisoned header: if the length check
			// is computed with overflowing arithmetic it can spuriously
			// match, so the header must be rejected on bounds alone.
			data := make([]byte, 40)
			binary.LittleEndian.PutUint64(data[0:], c.d)
			binary.LittleEndian.PutUint64(data[8:], c.w)
			var cms CMS
			if err := cms.UnmarshalBinary(data); err != ErrCorrupt {
				t.Fatalf("d=%d w=%d: err = %v, want ErrCorrupt", c.d, c.w, err)
			}
		})
	}
}

func FuzzUnmarshalBinary(f *testing.F) {
	small, _ := NewWithDimensions(3, 17)
	small.UpdateString("seed-ad")
	valid, _ := small.MarshalBinary()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(make([]byte, 32))
	trunc := append([]byte(nil), valid[:33]...)
	f.Add(trunc)
	overflow := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(overflow[0:], 1<<20)
	binary.LittleEndian.PutUint64(overflow[8:], 1<<32)
	f.Add(overflow)

	f.Fuzz(func(t *testing.T, data []byte) {
		var cms CMS
		if err := cms.UnmarshalBinary(data); err != nil {
			return // rejected: fine, as long as it neither panics nor allocates wildly
		}
		// Accepted payloads must round-trip byte-identically and answer
		// queries without panicking.
		if cms.Depth() < 1 || cms.Width() < 1 {
			t.Fatalf("accepted degenerate sketch d=%d w=%d", cms.Depth(), cms.Width())
		}
		if uint64(cms.Depth())*uint64(cms.Width()) > maxUnmarshalCells {
			t.Fatalf("accepted oversized sketch d=%d w=%d", cms.Depth(), cms.Width())
		}
		_ = cms.Query([]byte("probe"))
		out, err := cms.MarshalBinary()
		if err != nil {
			t.Fatalf("remarshal: %v", err)
		}
		if len(out) != len(data) {
			t.Fatalf("round trip changed length: %d != %d", len(out), len(data))
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatalf("round trip changed byte %d", i)
			}
		}
	})
}
