package experiments

import (
	"fmt"

	"eyewnder/internal/adsim"
	"eyewnder/internal/detector"
	"eyewnder/internal/sketch"
)

// EstimatorAblation compares the four threshold estimators of Section
// 4.2 on one simulated workload (the design choice Figure 3 examines for
// two of them).
type EstimatorAblation struct {
	Estimator detector.Estimator
	Conf      Confusion
}

// AblateEstimators runs every estimator pair (same estimator on both
// thresholds, as in the paper) over the same simulation.
func AblateEstimators(cfg adsim.Config) ([]EstimatorAblation, error) {
	sim, err := adsim.New(cfg)
	if err != nil {
		return nil, err
	}
	res := sim.Run()
	ests := []detector.Estimator{
		detector.EstimatorMean,
		detector.EstimatorMedian,
		detector.EstimatorMeanPlusMedian,
		detector.EstimatorMeanPlusStdDev,
	}
	out := make([]EstimatorAblation, 0, len(ests))
	for _, e := range ests {
		out = append(out, EstimatorAblation{
			Estimator: e,
			Conf:      EvaluateWeek(sim, res, 0, e, e, 4),
		})
	}
	return out, nil
}

// WindowAblation evaluates the detector when only the first `days` days
// of the week are visible — the time-window design choice of Section 4.2.
type WindowAblation struct {
	Days int
	Conf Confusion
}

// AblateWindow sweeps observation windows of 1..7 days.
func AblateWindow(cfg adsim.Config, days []int) ([]WindowAblation, error) {
	sim, err := adsim.New(cfg)
	if err != nil {
		return nil, err
	}
	res := sim.Run()
	out := make([]WindowAblation, 0, len(days))
	for _, d := range days {
		filtered := res.Impressions[:0:0]
		for _, imp := range res.Impressions {
			if imp.Week == 0 && imp.Day < d {
				filtered = append(filtered, imp)
			}
		}
		windowRes := *res
		windowRes.Impressions = filtered
		out = append(out, WindowAblation{
			Days: d,
			Conf: EvaluateWeek(sim, &windowRes, 0,
				detector.EstimatorMean, detector.EstimatorMean, 4),
		})
	}
	return out, nil
}

// MinDomainsAblation evaluates the minimum-data rule's trade-off: lower
// thresholds classify more pairs (fewer Unknowns) at higher error.
type MinDomainsAblation struct {
	MinDomains int
	Conf       Confusion
}

// AblateMinDomains sweeps the minimum-data rule.
func AblateMinDomains(cfg adsim.Config, values []int) ([]MinDomainsAblation, error) {
	sim, err := adsim.New(cfg)
	if err != nil {
		return nil, err
	}
	res := sim.Run()
	out := make([]MinDomainsAblation, 0, len(values))
	for _, v := range values {
		out = append(out, MinDomainsAblation{
			MinDomains: v,
			Conf: EvaluateWeek(sim, res, 0,
				detector.EstimatorMean, detector.EstimatorMean, v),
		})
	}
	return out, nil
}

// SketchAblation reports the mean relative overestimation of per-ad user
// counts for a sketch geometry, plus its size — the ε/δ trade-off behind
// the paper's choice of 0.001.
type SketchAblation struct {
	Epsilon, Delta float64
	SizeKB         float64
	// MeanOverestimate is avg((est - true) / true) over all ads.
	MeanOverestimate float64
}

// AblateSketchGeometry measures estimate inflation across geometries on a
// fixed workload of per-user ad sets.
func AblateSketchGeometry(cfg adsim.Config, geometries [][2]float64) ([]SketchAblation, error) {
	sim, err := adsim.New(cfg)
	if err != nil {
		return nil, err
	}
	res := sim.Run()
	counters := adsim.Count(res.Impressions, map[int]bool{0: true})
	out := make([]SketchAblation, 0, len(geometries))
	for _, g := range geometries {
		eps, delta := g[0], g[1]
		cms, err := sketch.New(eps, delta)
		if err != nil {
			return nil, err
		}
		// Encode each user's distinct ads (ID = campaign ID bytes).
		for user := range counters.DomainsPerUserAd {
			for _, ad := range counters.AdsSeenBy(user) {
				cms.UpdateString(fmt.Sprintf("ad-%d", ad))
			}
		}
		var relSum float64
		var n int
		for ad, users := range counters.UsersPerAd {
			truth := float64(len(users))
			est := float64(cms.QueryString(fmt.Sprintf("ad-%d", ad)))
			relSum += (est - truth) / truth
			n++
		}
		ab := SketchAblation{
			Epsilon: eps,
			Delta:   delta,
			SizeKB:  float64(cms.SizeBytes(4)) / 1000,
		}
		if n > 0 {
			ab.MeanOverestimate = relSum / float64(n)
		}
		out = append(out, ab)
	}
	return out, nil
}
