package campaign

import (
	"bytes"
	"errors"
	"testing"

	"eyewnder/internal/blind"
	"eyewnder/internal/privacy"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		c    Campaign
		ok   bool
	}{
		{"minimal", Campaign{ID: 1, Name: "cars"}, true},
		{"full", Campaign{ID: 7, Name: "travel", Epsilon: 0.01, Delta: 0.02, IDSpace: 4096,
			Keystream: blind.KeystreamAESCTR, KeystreamSet: true, RetainRounds: 3, CadenceSec: 60}, true},
		{"id zero", Campaign{ID: 0, Name: "cars"}, false},
		{"empty name", Campaign{ID: 1}, false},
		{"long name", Campaign{ID: 1, Name: string(make([]byte, MaxName+1))}, false},
		{"epsilon too big", Campaign{ID: 1, Name: "x", Epsilon: 1}, false},
		{"negative delta", Campaign{ID: 1, Name: "x", Delta: -0.1}, false},
		{"bad keystream", Campaign{ID: 1, Name: "x", Keystream: 0x7f, KeystreamSet: true}, false},
		{"negative retain", Campaign{ID: 1, Name: "x", RetainRounds: -1}, false},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestParamsInheritance(t *testing.T) {
	base := privacy.Params{Epsilon: 0.001, Delta: 0.002, IDSpace: 100000, Keystream: blind.KeystreamAESCTR}
	c := Campaign{ID: 1, Name: "cars", Epsilon: 0.05, IDSpace: 512}
	p := c.Params(base)
	if p.Epsilon != 0.05 || p.Delta != 0.002 || p.IDSpace != 512 {
		t.Fatalf("resolved params %+v", p)
	}
	if p.Keystream != blind.KeystreamAESCTR {
		t.Fatalf("keystream should inherit base, got %v", p.Keystream)
	}
	c2 := Campaign{ID: 2, Name: "travel", Keystream: blind.KeystreamHMACSHA256, KeystreamSet: true}
	if got := c2.Params(base).Keystream; got != blind.KeystreamHMACSHA256 {
		t.Fatalf("explicit keystream not applied: %v", got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	cases := []Campaign{
		{ID: 1, Name: "cars"},
		{ID: 42, Name: "travel", Epsilon: 0.01, Delta: 0.001, IDSpace: 1 << 20,
			Keystream: blind.KeystreamAESCTR, KeystreamSet: true, RetainRounds: 5, CadenceSec: 3600},
		{ID: 0xFFFFFFFF, Name: "x"},
	}
	for _, c := range cases {
		enc := c.AppendBinary(nil)
		if len(enc) != c.EncodedSize() {
			t.Fatalf("EncodedSize %d != len %d", c.EncodedSize(), len(enc))
		}
		got, n, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", c, err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		if got != c {
			t.Fatalf("round trip: got %+v want %+v", got, c)
		}
		// Re-encode: byte-identical (the canonical-encoding property the
		// store and wire layers rely on).
		if !bytes.Equal(got.AppendBinary(nil), enc) {
			t.Fatalf("re-encode differs for %+v", c)
		}
	}
}

func TestDecodeBinaryRejects(t *testing.T) {
	c := Campaign{ID: 1, Name: "cars"}
	enc := c.AppendBinary(nil)
	if _, _, err := DecodeBinary(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated name accepted")
	}
	if _, _, err := DecodeBinary(enc[:10]); err == nil {
		t.Fatal("short fixed prefix accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[29] |= 0x80 // unknown flag bit
	if _, _, err := DecodeBinary(bad); err == nil {
		t.Fatal("unknown flags accepted")
	}
	zero := Campaign{Name: "x"}.AppendBinary(nil)
	if _, _, err := DecodeBinary(zero); err == nil {
		t.Fatal("campaign 0 decoded")
	}
}

func TestDirectory(t *testing.T) {
	var d Directory
	if err := d.Add(Campaign{ID: 2, Name: "travel"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(Campaign{ID: 1, Name: "cars"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(Campaign{ID: 2, Name: "dup"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate add: %v", err)
	}
	if err := d.Add(Campaign{ID: 0, Name: "zero"}); !errors.Is(err, ErrBadCampaign) {
		t.Fatalf("campaign 0 add: %v", err)
	}
	list := d.List()
	if len(list) != 2 || list[0].ID != 1 || list[1].ID != 2 {
		t.Fatalf("list order: %+v", list)
	}
	if c, ok := d.Get(1); !ok || c.Name != "cars" {
		t.Fatalf("get: %+v %v", c, ok)
	}
	if _, ok := d.Get(9); ok {
		t.Fatal("unknown id found")
	}
	if d.Len() != 2 {
		t.Fatalf("len %d", d.Len())
	}
}

func TestParseSpec(t *testing.T) {
	got, err := ParseSpec("id=1,name=cars,eps=0.01,delta=0.02;id=2,name=travel,ids=4096,ks=aes-ctr,retain=3,cadence=60")
	if err != nil {
		t.Fatal(err)
	}
	want := []Campaign{
		{ID: 1, Name: "cars", Epsilon: 0.01, Delta: 0.02},
		{ID: 2, Name: "travel", IDSpace: 4096, Keystream: blind.KeystreamAESCTR, KeystreamSet: true,
			RetainRounds: 3, CadenceSec: 60},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d campaigns", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{
		"id=0,name=x", // reserved id
		"name=x",      // missing id
		"id=1",        // missing name
		"id=1,name=x,ks=rot13",
		"id=1,name=x,eps=nope",
		"id=1,name=a;id=1,name=b", // duplicate id
		"id=1,name=x,bogus=1",
		"id=1,name=x,noequals",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if got, err := ParseSpec(" ; "); err != nil || len(got) != 0 {
		t.Fatalf("blank spec: %v %v", got, err)
	}
}
