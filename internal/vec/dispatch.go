package vec

import "os"

// Kernel dispatch. The four element kernels — wraparound add/sub and
// the bulk little-endian (de)serialization — are selected exactly once,
// at package init, and then called through these package-level function
// variables. The selection order is:
//
//  1. `purego` build tag: the assembly kernels (and the unsafe bulk
//     encode) are not even compiled in; everything is the generic Go
//     loop. This is the path the CI purego leg pins.
//  2. EYEWNDER_NOSIMD (any non-empty value) at process start: the
//     generic kernels are selected even though faster ones were
//     compiled in — the runtime off-switch for bisecting a suspected
//     kernel bug in production without rebuilding.
//  3. Hardware capability (internal/vec/cpu): AVX2 on amd64, NEON on
//     arm64. No capable hardware, no SIMD.
//
// Every kernel computes bit-identical results (uint64 wraparound
// arithmetic has no rounding to disagree on); the equivalence tests in
// dispatch_test.go assert it over random lengths, unaligned tails and
// wraparound values.
var (
	// Selected kernels, called by Add/Sub/PutLE/GetLE and Striped.Add.
	addImpl   func(dst, src []uint64)
	subImpl   func(dst, src []uint64)
	putLEImpl func(dst []byte, src []uint64)
	getLEImpl func(dst []uint64, src []byte)

	// The init-time selection, kept so ForceGeneric(false) can restore
	// it. When EYEWNDER_NOSIMD was set at startup the selection IS the
	// generic set, so restoring never resurrects a disabled kernel.
	selAdd   func(dst, src []uint64)
	selSub   func(dst, src []uint64)
	selPutLE func(dst []byte, src []uint64)
	selGetLE func(dst []uint64, src []byte)

	// kernelName names the selected add/sub kernel ("avx2", "neon",
	// "generic"); activeNote carries why a faster path was not taken.
	kernelName = "generic"
	activeNote string
	forced     bool
)

func init() {
	selAdd, selSub = addGeneric, subGeneric
	selPutLE, selGetLE = putLEGeneric, getLEGeneric
	if os.Getenv("EYEWNDER_NOSIMD") != "" {
		activeNote = "EYEWNDER_NOSIMD"
	} else {
		pickEncode()  // bulk LE (memmove) encode where unsafe is allowed
		pickKernels() // AVX2 / NEON add+sub where the hardware has them
	}
	addImpl, subImpl = selAdd, selSub
	putLEImpl, getLEImpl = selPutLE, selGetLE
}

// Active names the kernel set in use: "avx2", "neon", or "generic",
// with a parenthesized reason when a faster set was available but not
// selected. Servers log it at startup so an operator can verify which
// path a deployment actually runs.
func Active() string {
	name := kernelName
	if forced {
		return "generic (forced)"
	}
	if activeNote != "" {
		return name + " (" + activeNote + ")"
	}
	return name
}

// ForceGeneric(true) swaps every kernel for the generic Go loop at
// runtime; ForceGeneric(false) restores the init-time selection. It
// exists for the paired asm-vs-generic benchmark rows and the
// equivalence tests; it is NOT synchronized with concurrent kernel
// callers, so flip it only while no Add/Sub/PutLE/GetLE is in flight.
func ForceGeneric(on bool) {
	forced = on
	if on {
		addImpl, subImpl = addGeneric, subGeneric
		putLEImpl, getLEImpl = putLEGeneric, getLEGeneric
		return
	}
	addImpl, subImpl = selAdd, selSub
	putLEImpl, getLEImpl = selPutLE, selGetLE
}
