package blind

import (
	"crypto/aes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"testing"

	"eyewnder/internal/group"
)

// refAESFactor recomputes factor m the slow way, straight from the spec:
// K = SHA-256(label ‖ key), block = AES-256_K(round ‖ m/2) with both
// counter halves big-endian, factor = little-endian word m%2 of the
// block.
func refAESFactor(t *testing.T, key []byte, round uint64, m int) uint64 {
	t.Helper()
	h := sha256.New()
	h.Write([]byte(aesKeyLabel))
	h.Write(key)
	block, err := aes.NewCipher(h.Sum(nil))
	if err != nil {
		t.Fatal(err)
	}
	var in, out [aes.BlockSize]byte
	binary.BigEndian.PutUint64(in[:8], round)
	binary.BigEndian.PutUint64(in[8:], uint64(m)/2)
	block.Encrypt(out[:], in[:])
	return binary.LittleEndian.Uint64(out[8*(m%2):])
}

func TestAESKeystreamMatchesReference(t *testing.T) {
	key := []byte("pairwise-secret-0123456789abcdef")
	const round = 42
	var ks aesKeystream
	ks.init(key, round, 0)
	for m := 0; m < 40; m++ {
		if got, want := ks.next(), refAESFactor(t, key, round, m); got != want {
			t.Fatalf("factor %d = %#x, want %#x", m, got, want)
		}
	}
}

// Counter-mode random access: starting mid-stream must agree with the
// sequential walk, cell by cell.
func TestAESKeystreamSeek(t *testing.T) {
	key := []byte("another-pairwise-secret")
	const round = 7
	for _, start := range []int{1, 2, 3, 7, 8, 9, 15, 16, 17, 100} {
		var ks aesKeystream
		ks.init(key, round, start)
		for m := start; m < start+20; m++ {
			if got, want := ks.next(), refAESFactor(t, key, round, m); got != want {
				t.Fatalf("start %d: factor %d = %#x, want %#x", start, m, got, want)
			}
		}
	}
}

func TestAESKeystreamRoundsDiffer(t *testing.T) {
	key := []byte("same-key-different-round")
	var a, b aesKeystream
	a.init(key, 1, 0)
	b.init(key, 2, 0)
	same := 0
	for i := 0; i < 16; i++ {
		if a.next() == b.next() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("keystreams identical across rounds")
	}
}

// The two suites must share no structure: same key, same round, disjoint
// streams (the AES key is domain-separated from the raw pairwise secret).
func TestAESKeystreamDiffersFromHMAC(t *testing.T) {
	key := []byte("shared-pairwise-secret")
	var h keystream
	var a aesKeystream
	h.init(key, 5, 0)
	a.init(key, 5, 0)
	same := 0
	for i := 0; i < 16; i++ {
		if h.next() == a.next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d of 16 factors collide across suites", same)
	}
}

// Factor generation must be allocation-free once the stream is keyed —
// blinding touches every sketch cell for every peer.
func TestAESKeystreamZeroAllocs(t *testing.T) {
	var ks aesKeystream
	ks.init([]byte("zero-alloc-pair-key"), 3, 0)
	var sink uint64
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1024; i++ {
			sink += ks.next()
		}
	})
	if allocs != 0 {
		t.Fatalf("aes keystream allocates %v times per 1024 factors, want 0", allocs)
	}
	_ = sink
}

// An AES-CTR roster must cancel exactly like an HMAC one: the suite
// changes the expansion, not the shares-of-zero algebra.
func TestAESBlindingsSumToZero(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		r, err := NewRosterKeystream(group.P256(), n, rand.Reader, KeystreamAESCTR)
		if err != nil {
			t.Fatal(err)
		}
		const cells = 37
		const round = 7
		sum := make([]uint64, cells)
		for _, p := range r.Parties {
			if p.Keystream() != KeystreamAESCTR {
				t.Fatalf("party suite = %v, want aes-ctr", p.Keystream())
			}
			b := p.Blinding(round, cells)
			for m := range sum {
				sum[m] += b[m]
			}
		}
		for m, v := range sum {
			if v != 0 {
				t.Fatalf("n=%d: cell %d residue %d", n, m, v)
			}
		}
	}
}

// Adjustment shares must also cancel under the AES suite: a partial
// report set plus the reporters' adjustments is exactly zero residue.
func TestAESAdjustmentCancels(t *testing.T) {
	const cells = 29
	const round = 3
	r, err := NewRosterKeystream(group.P256(), 4, rand.Reader, KeystreamAESCTR)
	if err != nil {
		t.Fatal(err)
	}
	missing := []int{3}
	sum := make([]uint64, cells)
	for _, p := range r.Parties[:3] {
		b := p.Blinding(round, cells)
		for m := range sum {
			sum[m] += b[m]
		}
	}
	for _, p := range r.Parties[:3] {
		adj, err := p.Adjustment(round, cells, missing)
		if err != nil {
			t.Fatal(err)
		}
		for m := range sum {
			sum[m] -= adj[m]
		}
	}
	for m, v := range sum {
		if v != 0 {
			t.Fatalf("cell %d residue %d after adjustment", m, v)
		}
	}
}

func TestKeystreamSuiteNames(t *testing.T) {
	for _, c := range []struct {
		name string
		want Keystream
	}{
		{"hmac-sha256", KeystreamHMACSHA256},
		{"hmac", KeystreamHMACSHA256},
		{"aes-ctr", KeystreamAESCTR},
		{"aes", KeystreamAESCTR},
	} {
		got, err := KeystreamByName(c.name)
		if err != nil || got != c.want {
			t.Fatalf("KeystreamByName(%q) = %v, %v", c.name, got, err)
		}
	}
	if _, err := KeystreamByName("rot13"); err == nil {
		t.Fatal("unknown suite name accepted")
	}
	if _, err := NewPartyKeystream(nil, nil, 0, Keystream(0x7f)); err == nil {
		t.Fatal("invalid suite byte accepted")
	}
}

func BenchmarkAESKeystream(b *testing.B) {
	var ks aesKeystream
	ks.init([]byte("bench-pair-key"), 1, 0)
	var sink uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += ks.next()
	}
	_ = sink
}

func BenchmarkBlindingVector5kCellsAESCTR(b *testing.B) {
	r, err := NewRosterKeystream(group.P256(), 16, rand.Reader, KeystreamAESCTR)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Parties[0].Blinding(uint64(i), 5000)
	}
}
