package store

import (
	"os"
	"path/filepath"
	"sort"
)

// Segment shipping: the store-side API the replication layer is built
// on. A primary's store directory is a set of immutable-once-sealed
// files — WAL segments and snapshots, both generation-named — plus one
// active WAL segment that only ever grows. That shape is what makes
// replication a file-shipping problem: a follower mirrors the directory
// by fetching byte ranges, and the only file whose content can change
// under it is the active segment, which changes by append only.
//
// Manifest is the shipping index (which files exist, how many bytes of
// each are safe to read, which are sealed), ReadFileAt serves the byte
// ranges, and Seal force-rotates the active segment so a follower can
// cheaply catch up on a quiet primary. The invariants the follower
// leans on:
//
//   - A sealed file never changes or grows. Once fetched in full it is
//     final; re-fetching is never needed.
//   - The active segment grows append-only. A follower holding n bytes
//     of it fetches [n, size) and never re-reads the prefix.
//   - Files disappear only by pruning (snapshot compaction), and only
//     after a newer snapshot covers them. A vanished file means "fetch
//     the newer snapshot instead", never data loss.
//   - Manifest sizes count flushed bytes (the file's size in the
//     filesystem), which may trail appends still in the write buffer
//     and may *lead* the fsync horizon. The byte-identical promotion
//     guarantee is anchored on acknowledged records: the wire layer
//     syncs before acking, so every acked record is durable on the
//     primary and fetchable by the follower.

// FileKind identifies the kind of a store file in a shipping manifest.
type FileKind uint8

const (
	// FileWAL is a WAL segment (wal-<gen>.log).
	FileWAL FileKind = iota + 1
	// FileSnapshot is a snapshot (snap-<gen>.snap).
	FileSnapshot
)

// String names the kind for logs and errors.
func (k FileKind) String() string {
	switch k {
	case FileWAL:
		return "wal"
	case FileSnapshot:
		return "snap"
	}
	return "unknown"
}

// name returns the store file name for a kind and generation.
func (k FileKind) name(gen uint64) string {
	if k == FileSnapshot {
		return snapName(gen)
	}
	return walName(gen)
}

// FileInfo describes one store file in a shipping manifest.
type FileInfo struct {
	// Kind is the file's kind (WAL segment or snapshot).
	Kind FileKind
	// Gen is the file's generation number.
	Gen uint64
	// Size is the file's flushed size in bytes. For a sealed file this
	// is its final size; for the active segment it is the current safe
	// read horizon, which only grows.
	Size int64
	// Sealed reports whether the file can still change: snapshots and
	// rotated-away WAL segments are sealed (immutable), the active WAL
	// segment is not.
	Sealed bool
}

// Name returns the file's name inside the store directory.
func (fi FileInfo) Name() string { return fi.Kind.name(fi.Gen) }

// Manifest returns the store's current shipping manifest: every WAL
// segment and snapshot in the directory, with flushed sizes and seal
// states, ordered by generation (snapshots before segments within a
// generation). Safe to call concurrently with appends, Sync, and
// Snapshot.
func (d *Disk) Manifest() ([]FileInfo, error) {
	walGens, snapGens, _, err := scanStoreDir(d.dir, false)
	if err != nil {
		return nil, err
	}
	// Read the active generation only AFTER the directory scan: an
	// in-flight rotation pre-creates its next segment before d.gen
	// advances, and scanning after the gen read could list that segment
	// while activeGen still names its predecessor — marking the segment
	// that is about to keep growing as sealed. Scanning first makes the
	// race harmless: the pre-created segment reads as gen > activeGen,
	// which is treated as unsealed below.
	d.mu.Lock()
	if err := d.usableLocked(); err != nil {
		d.mu.Unlock()
		return nil, err
	}
	activeGen := d.gen
	d.mu.Unlock()

	files := make([]FileInfo, 0, len(walGens)+len(snapGens))
	for _, g := range snapGens {
		st, err := os.Stat(filepath.Join(d.dir, snapName(g)))
		if err != nil {
			continue // pruned between scan and stat
		}
		files = append(files, FileInfo{Kind: FileSnapshot, Gen: g, Size: st.Size(), Sealed: true})
	}
	for _, g := range walGens {
		st, err := os.Stat(filepath.Join(d.dir, walName(g)))
		if err != nil {
			continue
		}
		files = append(files, FileInfo{Kind: FileWAL, Gen: g, Size: st.Size(), Sealed: g < activeGen})
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].Gen != files[j].Gen {
			return files[i].Gen < files[j].Gen
		}
		return files[i].Kind == FileSnapshot && files[j].Kind == FileWAL
	})
	return files, nil
}

// ReadFileAt reads up to len(p) bytes from the named store file at
// offset off, for shipping to a follower. It returns the count read and
// any error, with io.EOF semantics as os.File.ReadAt: a read past the
// current flushed size returns what is there plus io.EOF. A file that
// no longer exists (pruned by snapshot compaction) returns an error
// satisfying errors.Is(err, fs.ErrNotExist); the shipper translates
// that into "fetch the newer snapshot". Safe to call concurrently with
// appends.
func (d *Disk) ReadFileAt(kind FileKind, gen uint64, off int64, p []byte) (int, error) {
	f, err := os.Open(filepath.Join(d.dir, kind.name(gen)))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return f.ReadAt(p, off)
}

// Seal force-rotates the WAL: the active segment is flushed, fsynced,
// and sealed, and appends move to a fresh segment of the next
// generation. It returns the sealed segment's generation. Unlike
// Snapshot, no snapshot is written and nothing is pruned — the sealed
// segment stays until a later snapshot covers it, and the snapshot
// cadence counter keeps running. Sealing an empty active segment is
// legal and cheap: the sealed file then holds only the 8-byte magic.
func (d *Disk) Seal() (uint64, error) {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	rot, err := d.rotate()
	if err != nil {
		return 0, err
	}
	return rot.oldGen, nil
}
