package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"eyewnder/internal/campaign"
)

// testCampaignDef encodes a campaign definition the way the backend
// journals it (the canonical binary encoding).
func testCampaignDef(t *testing.T, id uint32) []byte {
	t.Helper()
	c := campaign.Campaign{
		ID: id, Name: "store-test",
		Epsilon: 0.02, Delta: 0.02, IDSpace: 4096,
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c.AppendBinary(nil)
}

// Campaign provisioning records and campaign-tagged round records must
// round-trip through the WAL: a reopened store recovers the campaign
// directory and keeps (campaign, round) state separate from identical
// round numbers in other campaigns.
func TestCampaignWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{})

	def7 := testCampaignDef(t, 7)
	def9 := testCampaignDef(t, 9)
	if err := d.AppendCampaign(def7); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendCampaign(def9); err != nil {
		t.Fatal(err)
	}
	// Round 1 exists in campaign 0, 7, and 9 simultaneously — same round
	// number, three independent states.
	logRound(t, d, 1, 4, 0, 1)
	for _, c := range []uint32{7, 9} {
		if err := d.AppendOpen(c, 1, 4, testD, testW, 0, 1, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := d.AppendReport(c, 1, int(c)%4, testD, testW, 5, 0, 1, 0, testCells(uint64(c))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AppendAdjust(7, 1, 2, testCells(99)); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendClose(9, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTestStore(t, dir, Options{})
	defer d2.Close()

	camps := d2.Campaigns()
	if len(camps) != 2 || !reflect.DeepEqual(camps[7], def7) || !reflect.DeepEqual(camps[9], def9) {
		t.Fatalf("recovered campaigns = %v", camps)
	}
	byKey := make(map[[2]uint64]*RoundState)
	for _, rs := range d2.Rounds() {
		byKey[[2]uint64{uint64(rs.Campaign), rs.Round}] = rs
	}
	if len(byKey) != 3 {
		t.Fatalf("recovered %d rounds, want 3", len(byKey))
	}
	if rs := byKey[[2]uint64{0, 1}]; rs == nil || !reflect.DeepEqual(rs.Cells, wantRoundCells(0, 1)) {
		t.Fatal("campaign 0 round state wrong")
	}
	if rs := byKey[[2]uint64{7, 1}]; rs == nil || !reflect.DeepEqual(rs.Cells, testCells(7)) {
		t.Fatal("campaign 7 round state wrong")
	} else if !reflect.DeepEqual(rs.Adjusts[2], testCells(99)) {
		t.Fatal("campaign 7 adjustment lost")
	} else if rs.Closed {
		t.Fatal("campaign 7 closed by campaign 9's close record")
	}
	if rs := byKey[[2]uint64{9, 1}]; rs == nil || !rs.Closed {
		t.Fatal("campaign 9 close lost")
	}

	// The read-only recovery view agrees.
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.Campaigns(), camps) {
		t.Fatal("Recover campaign directory differs from Disk recovery")
	}
	if err := rec.AppendCampaign(def7); err == nil {
		t.Fatal("read-only store accepted a campaign append")
	}
}

// Campaign 0 must write the legacy record layouts byte-identically: no
// campaign suffix on open/adjust/close bodies, zeroed campaign bytes in
// the report preamble — so a single-campaign WAL is indistinguishable
// from one written by a pre-campaign release.
func TestCampaignZeroWALByteIdentity(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{})
	if err := d.AppendOpen(0, 1, 4, testD, testW, 0, 1, 7, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendReport(0, 1, 2, testD, testW, 5, 0, 1, 7, testCells(2)); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendAdjust(0, 1, 3, testCells(3)); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendClose(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("wal glob: %v %v", paths, err)
	}
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	// Walk the record framing past the segment magic:
	// len(4) kind(1) body crc(4).
	cellBytes := 8 * testD * testW
	wantBody := map[byte]int{
		recOpen:   openBody,       // no campaign(4) suffix
		recReport: 56 + cellBytes, // preamble + cells, unchanged size
		recAdjust: 16 + cellBytes, // round(8) user(8) cells
		recClose:  8,              // round(8)
	}
	seen := map[byte]bool{}
	for off := len(walMagic); off < len(raw); {
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		kind := raw[off+4]
		body := raw[off+5 : off+5+n]
		if want, ok := wantBody[kind]; ok {
			seen[kind] = true
			if n != want {
				t.Fatalf("record kind %#x: body %d bytes, legacy layout is %d", kind, n, want)
			}
			if kind == recReport {
				if c := binary.LittleEndian.Uint16(body[50:52]); c != 0 {
					t.Fatalf("campaign-0 report preamble carries campaign %d", c)
				}
			}
		}
		off += 5 + n + 4
	}
	for kind := range wantBody {
		if !seen[kind] {
			t.Fatalf("record kind %#x missing from WAL", kind)
		}
	}
	// And nothing campaign-shaped was journaled.
	d2 := openTestStore(t, dir, Options{})
	defer d2.Close()
	if len(d2.Campaigns()) != 0 {
		t.Fatal("campaign-0 traffic created directory entries")
	}
}

// Campaign directory and per-round campaign tags must survive the
// snapshot path too: a store recovered from snapshot + post-snapshot
// WAL sees the same campaigns and keyed rounds.
func TestCampaignSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{})
	def := testCampaignDef(t, 5)
	if err := d.AppendCampaign(def); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendOpen(5, 2, 4, testD, testW, 0, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendReport(5, 2, 1, testD, testW, 5, 0, 1, 0, testCells(5)); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	state := &RoundState{
		Campaign: 5, Round: 2, RosterSize: 4, D: testD, W: testW, N: 5, Keystream: 1,
		Cells:    testCells(5),
		Reported: []bool{false, true, false, false},
		Adjusts:  map[int][]uint64{},
	}
	if err := d.Snapshot(func() ([]*RoundState, error) {
		return []*RoundState{state}, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot campaign traffic replays on top.
	if err := d.AppendReport(5, 2, 3, testD, testW, 5, 0, 1, 0, testCells(6)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTestStore(t, dir, Options{})
	defer d2.Close()
	if camps := d2.Campaigns(); !reflect.DeepEqual(camps[5], def) {
		t.Fatalf("campaign lost across snapshot: %v", camps)
	}
	rounds := d2.Rounds()
	if len(rounds) != 1 {
		t.Fatalf("recovered %d rounds, want 1", len(rounds))
	}
	rs := rounds[0]
	if rs.Campaign != 5 || rs.Round != 2 {
		t.Fatalf("recovered round keyed (%d, %d), want (5, 2)", rs.Campaign, rs.Round)
	}
	want := make([]uint64, testD*testW)
	for i, v := range testCells(5) {
		want[i] = v + testCells(6)[i]
	}
	if !reflect.DeepEqual(rs.Cells, want) {
		t.Fatal("snapshot + replay cells wrong")
	}
	if !reflect.DeepEqual(rs.Reported, []bool{false, true, false, true}) {
		t.Fatalf("reported = %v", rs.Reported)
	}
}
