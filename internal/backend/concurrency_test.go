package backend

import (
	"sync"
	"testing"
)

// Per-round locking must keep concurrent submissions and status polls
// coherent: every report lands exactly once and the closed aggregate
// recovers the exact multiset union. Run with -race.
func TestConcurrentSubmitAndClose(t *testing.T) {
	b, clients := newBackend(t)
	const round = 5

	ads := [][]string{
		{"https://a.example/1", "https://a.example/2"},
		{"https://a.example/1"},
		{"https://b.example/9", "https://a.example/2"},
		{"https://a.example/1", "https://b.example/9"},
	}
	// Observation and report construction are per-client (client state is
	// not shared); only the backend interaction runs concurrently.
	adIDs := make(map[string]uint64)
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(clients))
	for u, c := range clients {
		for _, ad := range ads[u] {
			id, err := c.ObserveAd(ad)
			if err != nil {
				t.Fatal(err)
			}
			adIDs[ad] = id
		}
		rep, err := c.Report(round)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := b.SubmitReport(rep); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, _, _, err := b.RoundStatus(round); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if _, _, err := b.CloseRound(round); err != nil {
		t.Fatal(err)
	}
	users, err := b.AuditAd(round, adIDs["https://a.example/1"])
	if err != nil {
		t.Fatal(err)
	}
	if users < 3 {
		t.Fatalf("AuditAd(a.example/1) = %d, want >= 3 (CMS never underestimates)", users)
	}
}

// A wrong-length adjustment share must be rejected at upload time — if it
// were stored, every later CloseRound would fail on it and the round could
// never close.
func TestSubmitAdjustmentRejectsBadLength(t *testing.T) {
	b, _ := newBackend(t)
	if err := b.SubmitAdjustment(0, 1, make([]uint64, 7)); err == nil {
		t.Fatal("wrong-length adjustment share accepted")
	}
}

// A CloseRound that fails (here: reports missing, no adjustments) must
// leave the round aggregate untouched, so that a later successful close
// does not subtract adjustment shares twice.
func TestCloseRoundRetrySafe(t *testing.T) {
	b, clients := newBackend(t)
	const round = 9
	sketchCells := b.cells

	// Upload an adjustment share before any report: the close attempt
	// must fail (no reports) WITHOUT consuming the share.
	adj, err := clients[0].Adjust(round, sketchCells, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitAdjustment(0, round, adj); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.CloseRound(round); err == nil {
		t.Fatal("close with zero reports succeeded")
	}

	// Users 0, 2, 3 report (user 1 is missing); they all adjust for 1.
	for _, u := range []int{0, 2, 3} {
		if _, err := clients[u].ObserveAd("https://ad.example/x"); err != nil {
			t.Fatal(err)
		}
		rep, err := clients[u].Report(round)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SubmitReport(rep); err != nil {
			t.Fatal(err)
		}
		if u != 0 {
			adj, err := clients[u].Adjust(round, sketchCells, []int{1})
			if err != nil {
				t.Fatal(err)
			}
			if err := b.SubmitAdjustment(u, round, adj); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := b.CloseRound(round); err != nil {
		t.Fatal(err)
	}
	counts, err := b.UserCountsOfRound(round)
	if err != nil {
		t.Fatal(err)
	}
	// Had the failed close consumed the first share, cancellation would
	// break and the counts would be uniform noise (≈ IDSpace entries with
	// astronomic values). Exact recovery means few, small counts.
	if len(counts) > 200 {
		t.Fatalf("close after failed attempt recovered %d nonzero IDs — adjustment shares double-applied?", len(counts))
	}
	for id, v := range counts {
		if v > 3 {
			t.Fatalf("id %d count = %d, want <= 3 reporters", id, v)
		}
	}
}
