package blind

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"

	"eyewnder/internal/vec"
)

// aesFactorsPerFill is how many 64-bit blinding factors one refill of the
// AES-CTR keystream yields. The stream is advanced 512 bytes (32 AES
// blocks) at a time: one XORKeyStream call covers 64 factors, so the
// AES-NI multiblock assembly runs long pipelined bursts and the
// per-refill dispatch overhead amortizes to noise. The refill width is
// an implementation detail, NOT protocol state — CTR output depends only
// on the absolute stream position, so any refill width produces the
// same suite-0x01 factors (the reference tests pin them byte for byte).
const aesFactorsPerFill = 512 / 8

// aesBlocksPerFill is the AES block count of one refill (32 × 16 bytes).
const aesBlocksPerFill = aesFactorsPerFill * 8 / aes.BlockSize

// aesKeyLabel domain-separates the AES-CTR expansion key from the raw
// pairwise secret (which also keys the HMAC suite): both suites may exist
// in one deployment history, and their keystreams must share no structure.
const aesKeyLabel = "eyewnder/blind/aes-ctr/v1"

// aesZero is the all-zero plaintext XORKeyStream turns into raw keystream.
var aesZero [aesBlocksPerFill * aes.BlockSize]byte

// aesKeystream is the KeystreamAESCTR expansion of a pairwise key into
// per-cell blinding factors:
//
//	K      = SHA-256(aesKeyLabel ‖ k_ij)
//	stream = AES-256-CTR(K, IV = round ‖ block counter)   (both big-endian)
//	factor_m = little-endian word m of the stream
//
// Like the HMAC keystream it is counter-mode seekable: init can position
// the stream at any cell, which is what lets a future layout stripe one
// pair's cells across workers. The cipher state is built once in init and
// reused for every refill, so factor generation is allocation-free after
// keying (asserted by TestAESKeystreamZeroAllocs).
//
// The refill is decoded once into words so accumulate can fold whole
// 64-factor runs with vec.Add/vec.Sub — the SIMD merge kernels — instead
// of a per-word load/decode/add loop.
//
// COMPATIBILITY: this expansion defines the suite-0x01 blinding values.
// All parties in a round must run the same suite or their pairwise terms
// would not cancel; see the Keystream type.
type aesKeystream struct {
	stream cipher.Stream
	buf    [aesBlocksPerFill * aes.BlockSize]byte // raw keystream bytes of the current run
	words  [aesFactorsPerFill]uint64              // the run decoded as factors
	word   int                                    // next word within words; aesFactorsPerFill = refill
}

// init keys the stream for (key, round) and positions it at cell `cell`.
func (k *aesKeystream) init(key []byte, round uint64, cell int) {
	h := sha256.New()
	h.Write([]byte(aesKeyLabel))
	h.Write(key)
	var aesKey [sha256.Size]byte
	h.Sum(aesKey[:0])
	block, err := aes.NewCipher(aesKey[:])
	if err != nil {
		// 32-byte keys are always valid AES-256 keys.
		panic("blind: aes keying: " + err.Error())
	}
	fill := uint64(cell) / aesFactorsPerFill
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint64(iv[:8], round)
	binary.BigEndian.PutUint64(iv[8:], fill*aesBlocksPerFill)
	k.stream = cipher.NewCTR(block, iv[:])
	k.word = int(uint64(cell) % aesFactorsPerFill)
	k.fill()
}

// fill advances the CTR stream by one 512-byte run and decodes it into
// k.words. It does not touch k.word: the caller owns the cursor.
func (k *aesKeystream) fill() {
	k.stream.XORKeyStream(k.buf[:], aesZero[:])
	vec.GetLE(k.words[:], k.buf[:])
}

// next returns the following 64-bit blinding factor.
func (k *aesKeystream) next() uint64 {
	if k.word == aesFactorsPerFill {
		k.fill()
		k.word = 0
	}
	v := k.words[k.word]
	k.word++
	return v
}

// accumulate folds the remainder of the stream into out, adding when add
// is true and subtracting otherwise (two's-complement == mod-2⁶⁴). Whole
// refills fold through the vec SIMD kernels, 64 factors per call; only
// the run already partially consumed and the final short tail go word by
// word.
func (k *aesKeystream) accumulate(out []uint64, add bool) {
	m := 0
	// Drain the partially consumed run (after init at an unaligned cell,
	// or a previous short accumulate).
	for m < len(out) && k.word != aesFactorsPerFill {
		if add {
			out[m] += k.words[k.word]
		} else {
			out[m] -= k.words[k.word]
		}
		k.word++
		m++
	}
	// Bulk runs: one XORKeyStream refill, one SIMD fold per 64 factors.
	for len(out)-m >= aesFactorsPerFill {
		k.fill()
		if add {
			vec.Add(out[m:m+aesFactorsPerFill], k.words[:])
		} else {
			vec.Sub(out[m:m+aesFactorsPerFill], k.words[:])
		}
		m += aesFactorsPerFill
	}
	// Tail shorter than a run: refill and consume word by word, leaving
	// the cursor mid-run for any follow-up accumulate.
	if m < len(out) {
		k.fill()
		k.word = 0
		for ; m < len(out); m++ {
			if add {
				out[m] += k.words[k.word]
			} else {
				out[m] -= k.words[k.word]
			}
			k.word++
		}
	}
}
