package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// countingSink counts consumed frames and optionally fails chosen users.
type countingSink struct {
	mu     sync.Mutex
	frames []ReportFrame // header copies only; Cells not retained
	failOn map[int]error
}

func (s *countingSink) ConsumeReport(f *ReportFrame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.failOn[f.User]; err != nil {
		return err
	}
	cp := *f
	cp.Cells = nil
	s.frames = append(s.frames, cp)
	return nil
}

func (s *countingSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

func batchedPair(t *testing.T, sink ReportSink, opts StreamOpts) (*Server, *Client) {
	t.Helper()
	echo := func(m *Msg) (string, interface{}, error) { return "echo", struct{}{}, nil }
	srv, err := ServeWithSinkOpts("127.0.0.1:0", echo, sink, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

// A batched stream must deliver every frame to the sink, in order, with
// the suite byte intact, and leave the connection clean for JSON use.
func TestBatchedStreamRoundTrip(t *testing.T) {
	sink := &countingSink{}
	_, cli := batchedPair(t, sink, StreamOpts{AckBatch: 4})
	s, err := cli.OpenReportStream(0)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 11
	for i := 0; i < frames; i++ {
		f := testFrame(64)
		f.User = i
		f.Keystream = 0x01
		if err := s.Submit(f); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.InFlight(); got != 0 {
		t.Fatalf("in flight after flush = %d", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	got := append([]ReportFrame(nil), sink.frames...)
	sink.mu.Unlock()
	if len(got) != frames {
		t.Fatalf("sink saw %d frames, want %d", len(got), frames)
	}
	for i, f := range got {
		if f.User != i || f.Keystream != 0x01 {
			t.Fatalf("frame %d = %+v", i, f)
		}
	}
	// The connection must be reusable for request/response traffic.
	if err := cli.Do("ping", nil, nil); err != nil {
		t.Fatalf("connection not clean after stream close: %v", err)
	}
	// And for one-shot submits, which now ride the batched binary path.
	if err := cli.SubmitReportFrame(testFrame(64)); err != nil {
		t.Fatalf("one-shot submit after stream: %v", err)
	}
	if sink.count() != frames+1 {
		t.Fatalf("one-shot frame not folded")
	}
}

// k = 1 must degenerate to today's behaviour: every frame individually
// acknowledged, so with a window of 1 each Submit returns fully acked.
func TestBatchedAckK1DegeneratesToSync(t *testing.T) {
	sink := &countingSink{}
	_, cli := batchedPair(t, sink, StreamOpts{AckBatch: 1})
	s, err := cli.OpenReportStream(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Submit(testFrame(64)); err != nil {
			t.Fatal(err)
		}
		if got := s.InFlight(); got != 0 {
			t.Fatalf("submit %d: %d frames in flight under k=1/window=1, want 0", i, got)
		}
		if sink.count() != i+1 {
			t.Fatalf("submit %d: sink saw %d frames", i, sink.count())
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// While a stream is open the connection belongs to it: Do and
// SubmitReportFrame must refuse rather than interleave with acks.
func TestStreamOwnsConnection(t *testing.T) {
	_, cli := batchedPair(t, &countingSink{}, StreamOpts{})
	s, err := cli.OpenReportStream(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Do("ping", nil, nil); !errors.Is(err, ErrStreaming) {
		t.Fatalf("Do during stream err = %v", err)
	}
	if err := cli.SubmitReportFrame(testFrame(64)); !errors.Is(err, ErrStreaming) {
		t.Fatalf("SubmitReportFrame during stream err = %v", err)
	}
	if _, err := cli.OpenReportStream(0); !errors.Is(err, ErrStreaming) {
		t.Fatalf("second OpenReportStream err = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Do("ping", nil, nil); err != nil {
		t.Fatal(err)
	}
}

// An error ack mid-batch must surface the failing frame's message on a
// later Submit/Flush, poison the stream, leave earlier and later frames
// folded, and leave the connection usable after Close.
func TestBatchedAckErrorMidBatch(t *testing.T) {
	sink := &countingSink{failOn: map[int]error{3: fmt.Errorf("round closed")}}
	_, cli := batchedPair(t, sink, StreamOpts{AckBatch: 2})
	s, err := cli.OpenReportStream(64) // window large: error arrives asynchronously
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		f := testFrame(64)
		f.User = i
		if err := s.Submit(f); err != nil {
			// Acceptable: the error ack may already have been drained.
			if !strings.Contains(err.Error(), "round closed") {
				t.Fatalf("submit %d: %v", i, err)
			}
		}
	}
	if err := s.Flush(); err == nil || !strings.Contains(err.Error(), "round closed") {
		t.Fatalf("flush err = %v, want the mid-batch sink error", err)
	}
	// Sticky: the stream is poisoned for further submissions.
	if err := s.Submit(testFrame(64)); err == nil || !strings.Contains(err.Error(), "round closed") {
		t.Fatalf("post-error submit err = %v", err)
	}
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "round closed") {
		t.Fatalf("close err = %v", err)
	}
	// Frames other than the failing one were folded.
	if got := sink.count(); got != 5 {
		t.Fatalf("sink saw %d frames, want 5 (all but the failing one)", got)
	}
	// The connection survives: the failure was the round's, not the wire's.
	if err := cli.Do("ping", nil, nil); err != nil {
		t.Fatalf("connection did not survive error ack: %v", err)
	}
}

// Dropping the connection with unacknowledged frames in flight must not
// lose the frames the server already received, leak the fold goroutine,
// or disturb other connections.
func TestBatchedConnCloseWithUnackedFrames(t *testing.T) {
	sink := &countingSink{}
	srv, cli := batchedPair(t, sink, StreamOpts{AckBatch: 64})
	s, err := cli.OpenReportStream(64)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 8
	for i := 0; i < frames; i++ {
		if err := s.Submit(testFrame(64)); err != nil {
			t.Fatal(err)
		}
	}
	// No flush: kill the connection with everything unacked.
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.count() < frames {
		if time.Now().After(deadline) {
			t.Fatalf("server folded %d of %d frames sent before close", sink.count(), frames)
		}
		time.Sleep(time.Millisecond)
	}
	// The server keeps serving fresh connections.
	cli2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if err := cli2.Do("ping", nil, nil); err != nil {
		t.Fatal(err)
	}
}

// Losing the server mid-stream (ack loss) must surface as a transport
// error on Submit/Flush rather than a hang.
func TestBatchedAckLossServerGone(t *testing.T) {
	sink := &countingSink{}
	srv, cli := batchedPair(t, sink, StreamOpts{AckBatch: 4})
	s, err := cli.OpenReportStream(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(testFrame(64)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	var last error
	for i := 0; i < 64; i++ {
		if last = s.Submit(testFrame(64)); last != nil {
			break
		}
	}
	if last == nil {
		last = s.Flush()
	}
	if last == nil {
		t.Fatal("stream survived server shutdown")
	}
	if err := s.Close(); err == nil {
		t.Fatal("close after transport failure returned nil")
	}
}

// Short or corrupt ack frames must be rejected cleanly.
func TestReadAckFrameShortAndCorrupt(t *testing.T) {
	valid := appendAckFrame(nil, 42, "")
	for cut := 0; cut < len(valid); cut++ {
		if _, _, err := readAckFrame(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
	// Header word without the flag bit is not an ack frame.
	notAck := append([]byte(nil), valid...)
	notAck[0] &^= 0x80
	if _, _, err := readAckFrame(bytes.NewReader(notAck)); !errors.Is(err, ErrBadAckFrame) {
		t.Fatalf("flagless header err = %v", err)
	}
	// Oversized payload length.
	huge := appendAckFrame(nil, 1, "")
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := readAckFrame(bytes.NewReader(huge)); !errors.Is(err, ErrBadAckFrame) {
		t.Fatalf("oversized payload err = %v", err)
	}
	// Error text round-trips, and over-long text is truncated not refused.
	seq, msg, err := readAckFrame(bytes.NewReader(appendAckFrame(nil, 7, "boom")))
	if err != nil || seq != 7 || msg != "boom" {
		t.Fatalf("decode = %d %q %v", seq, msg, err)
	}
	long := strings.Repeat("x", 4*maxAckPayload)
	if _, msg, err := readAckFrame(bytes.NewReader(appendAckFrame(nil, 7, long))); err != nil || len(msg) != maxAckPayload-ackFixed {
		t.Fatalf("long text decode: len=%d err=%v", len(msg), err)
	}
}

// An ack with a sequence number outside the client's window is a
// protocol violation and must kill the stream, not corrupt the counters.
func TestAckSequenceOutsideWindow(t *testing.T) {
	srvConn, cliConn := net.Pipe()
	defer srvConn.Close()
	c := &Client{conn: cliConn, ackBatch: 1}
	done := make(chan error, 1)
	go func() {
		// Fake server: swallow the frame+marker, ack far beyond sent.
		io.ReadFull(srvConn, make([]byte, 4+reportPreamble+8*64+4))
		srvConn.Write(appendAckFrame(nil, 99, ""))
		done <- nil
	}()
	err := c.SubmitReportFrame(testFrame(64))
	if !errors.Is(err, ErrBadAckFrame) {
		t.Fatalf("out-of-window ack err = %v", err)
	}
	<-done
}

// The fold goroutine must flush the pending batch when a frame opens a
// different round than its predecessor, before folding the new round's
// frame — the previous round's tail must not wait on an unrelated batch.
func TestFoldLoopFlushesOnRoundBoundary(t *testing.T) {
	sink := &countingSink{}
	s := &Server{sink: sink, opts: StreamOpts{AckBatch: 100}}
	srvConn, cliConn := net.Pipe()
	defer cliConn.Close()
	defer srvConn.Close()
	var wmu sync.Mutex
	st := &connStream{ch: make(chan streamItem, 8), done: make(chan struct{}), k: 100}
	// Queue everything before the folder starts so the channel never runs
	// dry mid-sequence (which would trigger the idle flush instead).
	for i := 0; i < 3; i++ {
		rb := reportBufPool.Get().(*reportBuf)
		st.ch <- streamItem{rb: rb, f: &ReportFrame{User: i, Round: 1}}
	}
	rb := reportBufPool.Get().(*reportBuf)
	st.ch <- streamItem{rb: rb, f: &ReportFrame{User: 3, Round: 2}}
	s.wg.Add(1)
	go s.foldLoop(srvConn, &wmu, st)
	// First ack: the round boundary, covering exactly the three round-1
	// frames even though the batch (k=100) is nowhere near full.
	seq, msg, err := readAckFrame(cliConn)
	if err != nil || msg != "" {
		t.Fatalf("boundary ack: %d %q %v", seq, msg, err)
	}
	if seq != 3 {
		t.Fatalf("boundary ack seq = %d, want 3", seq)
	}
	// Second ack: the idle flush for the round-2 frame.
	seq, msg, err = readAckFrame(cliConn)
	if err != nil || msg != "" || seq != 4 {
		t.Fatalf("idle ack: %d %q %v", seq, msg, err)
	}
	close(st.ch)
	<-st.done
	if sink.count() != 4 {
		t.Fatalf("sink saw %d frames, want 4", sink.count())
	}
}

// A server without a sink must refuse the negotiation.
func TestAckBatchNegotiationNoSink(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(m *Msg) (string, interface{}, error) {
		return "echo", struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.OpenReportStream(0); err == nil || !strings.Contains(err.Error(), "does not accept") {
		t.Fatalf("negotiation err = %v", err)
	}
	// The refusal must not wedge the connection.
	if err := cli.Do("ping", nil, nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzReadAckFrame hammers the binary ack decoder: arbitrary input must
// never panic, and every accepted decode must re-encode to a frame that
// decodes identically (the codec is its own reference).
func FuzzReadAckFrame(f *testing.F) {
	f.Add(appendAckFrame(nil, 0, ""))
	f.Add(appendAckFrame(nil, 1<<40, "round closed"))
	f.Add([]byte{})
	f.Add([]byte{0x80, 0, 0, ackFixed})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, msg, err := readAckFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		seq2, msg2, err2 := readAckFrame(bytes.NewReader(appendAckFrame(nil, seq, msg)))
		if err2 != nil || seq2 != seq || msg2 != msg {
			t.Fatalf("re-encode mismatch: (%d %q) -> (%d %q %v)", seq, msg, seq2, msg2, err2)
		}
	})
}
