package contentbased

import (
	"fmt"
	"testing"

	"eyewnder/internal/taxonomy"
)

func profileWith(topic taxonomy.Topic, nSites int) *Profile {
	p := NewProfile()
	for i := 0; i < nSites; i++ {
		p.VisitSite(fmt.Sprintf("www.%s-%d.example", topic, i), topic)
	}
	return p
}

func TestProfileThreshold(t *testing.T) {
	p := profileWith(taxonomy.Cars, 19)
	c := New(20)
	if got := p.Categories(c.T); len(got) != 0 {
		t.Fatalf("19 sites should be below T=20, got %v", got)
	}
	p.VisitSite("www.cars-extra.example", taxonomy.Cars)
	if got := p.Categories(c.T); len(got) != 1 || got[0] != taxonomy.Cars {
		t.Fatalf("categories = %v", got)
	}
}

func TestDistinctSitesOnly(t *testing.T) {
	p := NewProfile()
	for i := 0; i < 50; i++ {
		p.VisitSite("www.same.example", taxonomy.Travel) // repeat visits
	}
	if p.SiteCount(taxonomy.Travel) != 1 {
		t.Fatalf("SiteCount = %d", p.SiteCount(taxonomy.Travel))
	}
	if got := p.Categories(2); len(got) != 0 {
		t.Fatalf("repeat visits inflated the profile: %v", got)
	}
}

func TestIsTargetedExactMatch(t *testing.T) {
	p := profileWith(taxonomy.Fishing, 25)
	c := New(20)
	if !c.IsTargeted(p, taxonomy.Fishing) {
		t.Fatal("direct match missed")
	}
	// Related-but-different category is NOT an exact match: the CB
	// baseline classifies non-targeted.
	if c.IsTargeted(p, taxonomy.Sports) {
		t.Fatal("CB should require exact category match")
	}
}

func TestIndirectTargetingInvisibleToCB(t *testing.T) {
	// A computers-profiled user receiving a dating ad: indirect targeting
	// by construction — the CB baseline must miss it, and the overlap
	// test must be false.
	p := profileWith(taxonomy.Computers, 25)
	c := New(20)
	if c.IsTargeted(p, taxonomy.Dating) {
		t.Fatal("CB detected an indirect ad — taxonomy overlap is broken")
	}
	if c.HasSemanticOverlap(p, taxonomy.Dating) {
		t.Fatal("semantic overlap claimed for computers/dating")
	}
}

func TestSemanticOverlapRelatedCategory(t *testing.T) {
	p := profileWith(taxonomy.Fitness, 25)
	c := New(20)
	if !c.HasSemanticOverlap(p, taxonomy.Health) {
		t.Fatal("fitness~health overlap missed")
	}
}

func TestDefaultThreshold(t *testing.T) {
	if New(0).T != 20 {
		t.Fatal("default T should be 20")
	}
	if New(-3).T != 20 {
		t.Fatal("negative T should fall back to 20")
	}
	if New(5).T != 5 {
		t.Fatal("explicit T ignored")
	}
}

func TestLandingCategory(t *testing.T) {
	cases := []struct {
		url   string
		topic taxonomy.Topic
		ok    bool
	}{
		{"https://shop3.example/seafood/offer-12", taxonomy.Seafood, true},
		{"https://shop0.example/real-estate/offer-1", taxonomy.RealEstate, true},
		{"https://shop1.example/unknown-cat/x", 0, false},
		{"not a url at all", 0, false},
		{"https://host.example/", 0, false},
	}
	for _, c := range cases {
		got, ok := LandingCategory(c.url)
		if ok != c.ok || (ok && got != c.topic) {
			t.Errorf("LandingCategory(%q) = %v, %v; want %v, %v", c.url, got, ok, c.topic, c.ok)
		}
	}
}

func TestMultiTopicProfile(t *testing.T) {
	p := NewProfile()
	for i := 0; i < 22; i++ {
		p.VisitSite(fmt.Sprintf("a%d.example", i), taxonomy.Computers)
	}
	for i := 0; i < 21; i++ {
		p.VisitSite(fmt.Sprintf("b%d.example", i), taxonomy.Cars)
	}
	for i := 0; i < 3; i++ {
		p.VisitSite(fmt.Sprintf("c%d.example", i), taxonomy.Pets)
	}
	cats := p.Categories(20)
	if len(cats) != 2 {
		t.Fatalf("categories = %v", cats)
	}
	c := New(20)
	if !c.IsTargeted(p, taxonomy.Computers) || !c.IsTargeted(p, taxonomy.Cars) {
		t.Fatal("significant categories not targeted")
	}
	if c.IsTargeted(p, taxonomy.Pets) {
		t.Fatal("insignificant category targeted")
	}
}
