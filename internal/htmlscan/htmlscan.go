// Package htmlscan is a minimal, dependency-free HTML tokenizer: enough
// of the language for the ad-detection heuristics of package addetect to
// walk a page's elements, attributes, and script bodies. It is not a
// validating parser — real browsers aren't either — and it tolerates the
// malformed markup ad networks routinely emit.
package htmlscan

import (
	"strings"
)

// TokenType discriminates scanner output.
type TokenType uint8

// Token types.
const (
	// StartTag is <name attr=...>, including self-closing tags.
	StartTag TokenType = iota
	// EndTag is </name>.
	EndTag
	// Text is character data between tags.
	Text
	// Comment is <!-- ... -->.
	Comment
)

// Token is one scanned unit.
type Token struct {
	Type TokenType
	// Name is the lower-cased tag name (StartTag/EndTag only).
	Name string
	// Attrs holds lower-cased attribute names mapped to their raw values
	// (StartTag only).
	Attrs map[string]string
	// Data is the text content (Text/Comment) or the raw tag body.
	Data string
	// SelfClosing marks <tag ... /> forms.
	SelfClosing bool
}

// Attr fetches an attribute by (lower-case) name; ok is false if absent.
func (t *Token) Attr(name string) (value string, ok bool) {
	if t.Attrs == nil {
		return "", false
	}
	v, ok := t.Attrs[name]
	return v, ok
}

// Scanner walks an HTML document token by token.
type Scanner struct {
	src string
	pos int
	// rawEnd, when non-empty, is the closing tag we are skipping to
	// verbatim (script/style bodies).
	rawTag string
}

// NewScanner returns a scanner over src.
func NewScanner(src string) *Scanner { return &Scanner{src: src} }

// Next returns the next token, or nil at end of input.
func (s *Scanner) Next() *Token {
	if s.pos >= len(s.src) {
		return nil
	}
	// Inside a raw-text element (<script>, <style>): everything until the
	// matching close tag is a single Text token.
	if s.rawTag != "" {
		end := s.findCloseTag(s.rawTag)
		data := s.src[s.pos:end]
		s.pos = end
		s.rawTag = ""
		if data != "" {
			return &Token{Type: Text, Data: data}
		}
		return s.Next()
	}
	if s.src[s.pos] != '<' {
		// Character data until the next tag.
		end := strings.IndexByte(s.src[s.pos:], '<')
		if end < 0 {
			end = len(s.src) - s.pos
		}
		data := s.src[s.pos : s.pos+end]
		s.pos += end
		return &Token{Type: Text, Data: data}
	}
	// Comment?
	if strings.HasPrefix(s.src[s.pos:], "<!--") {
		end := strings.Index(s.src[s.pos+4:], "-->")
		if end < 0 {
			data := s.src[s.pos+4:]
			s.pos = len(s.src)
			return &Token{Type: Comment, Data: data}
		}
		data := s.src[s.pos+4 : s.pos+4+end]
		s.pos += 4 + end + 3
		return &Token{Type: Comment, Data: data}
	}
	// Tag.
	end := s.findTagEnd(s.pos)
	if end <= s.pos {
		// Lone '<' at end of input.
		s.pos = len(s.src)
		return nil
	}
	raw := s.src[s.pos+1 : end] // without < >
	s.pos = end + 1
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return s.Next()
	}
	if raw[0] == '/' {
		return &Token{Type: EndTag, Name: strings.ToLower(strings.TrimSpace(raw[1:])), Data: raw}
	}
	if raw[0] == '!' || raw[0] == '?' {
		// Doctype / processing instruction: surface as comment.
		return &Token{Type: Comment, Data: raw}
	}
	tok := parseStartTag(raw)
	if tok.Name == "script" || tok.Name == "style" {
		if !tok.SelfClosing {
			s.rawTag = tok.Name
		}
	}
	return tok
}

// findTagEnd locates the '>' terminating the tag that starts at `start`,
// honoring quoted attribute values that may contain '>'.
func (s *Scanner) findTagEnd(start int) int {
	inQuote := byte(0)
	for i := start + 1; i < len(s.src); i++ {
		c := s.src[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '>':
			return i
		}
	}
	// Unterminated tag: consume the rest of the input as the tag body.
	return len(s.src)
}

// findCloseTag returns the index where </tag appears (case-insensitive),
// or end of input.
func (s *Scanner) findCloseTag(tag string) int {
	needle := "</" + tag
	lower := strings.ToLower(s.src[s.pos:])
	if i := strings.Index(lower, needle); i >= 0 {
		return s.pos + i
	}
	return len(s.src)
}

// parseStartTag splits "name attr=val attr2='val'" into a StartTag token.
func parseStartTag(raw string) *Token {
	selfClosing := strings.HasSuffix(raw, "/")
	if selfClosing {
		raw = strings.TrimSpace(raw[:len(raw)-1])
	}
	nameEnd := len(raw)
	for i, c := range raw {
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			nameEnd = i
			break
		}
	}
	tok := &Token{
		Type:        StartTag,
		Name:        strings.ToLower(raw[:nameEnd]),
		Data:        raw,
		SelfClosing: selfClosing,
	}
	rest := raw[nameEnd:]
	tok.Attrs = parseAttrs(rest)
	return tok
}

// parseAttrs parses an attribute list. Values may be double-quoted,
// single-quoted, or bare; bare attributes get "".
func parseAttrs(s string) map[string]string {
	attrs := make(map[string]string)
	i := 0
	n := len(s)
	for i < n {
		// Skip whitespace.
		for i < n && isSpace(s[i]) {
			i++
		}
		if i >= n {
			break
		}
		// Attribute name.
		start := i
		for i < n && !isSpace(s[i]) && s[i] != '=' {
			i++
		}
		name := strings.ToLower(s[start:i])
		if name == "" {
			i++
			continue
		}
		// Skip whitespace before '='.
		for i < n && isSpace(s[i]) {
			i++
		}
		if i >= n || s[i] != '=' {
			attrs[name] = ""
			continue
		}
		i++ // consume '='
		for i < n && isSpace(s[i]) {
			i++
		}
		if i >= n {
			attrs[name] = ""
			break
		}
		var val string
		if s[i] == '"' || s[i] == '\'' {
			quote := s[i]
			i++
			vstart := i
			for i < n && s[i] != quote {
				i++
			}
			val = s[vstart:i]
			if i < n {
				i++
			}
		} else {
			vstart := i
			for i < n && !isSpace(s[i]) {
				i++
			}
			val = s[vstart:i]
		}
		attrs[name] = val
	}
	return attrs
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// All scans the whole document and returns every token.
func All(src string) []*Token {
	sc := NewScanner(src)
	var out []*Token
	for tok := sc.Next(); tok != nil; tok = sc.Next() {
		out = append(out, tok)
	}
	return out
}
