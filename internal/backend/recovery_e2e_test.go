package backend

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"eyewnder/internal/detector"
	"eyewnder/internal/store"
	"eyewnder/internal/wire"
)

// The kill-and-recover end-to-end test runs a real back-end server in a
// child process (this test binary re-executed with the env marker
// below), SIGKILLs it mid-round — no flush, no goodbye, exactly the
// crash the WAL exists for — restarts it on the same data dir, finishes
// the round over the wire, and requires the result to be identical to
// an uninterrupted in-process run.

const (
	e2eDirEnv  = "EYEWNDER_RECOVERY_SERVER_DIR"
	e2eAddrEnv = "EYEWNDER_RECOVERY_ADDR_FILE"
	// e2eDiffEnv names a file the test writes the recovered-vs-live
	// round comparison to (the CI recovery job uploads it as an
	// artifact). Unset: no file is written.
	e2eDiffEnv = "EYEWNDER_ROUND_DIFF_OUT"
)

// e2eUsers is the fixed roster size both the helper process and the
// test use (with storeTestParams as the shared geometry); they must
// agree or recovery would — correctly — refuse the data dir.
const e2eUsers = 8

// TestMain doubles as the crash-test server binary: when the env marker
// is set, the process runs a durable back-end until it is killed.
func TestMain(m *testing.M) {
	if dir := os.Getenv(e2eDirEnv); dir != "" {
		runRecoveryServer(dir, os.Getenv(e2eAddrEnv))
		return
	}
	os.Exit(m.Run())
}

// runRecoveryServer is the child-process body: open the store, recover,
// serve, publish the address, and block until killed.
func runRecoveryServer(dir, addrFile string) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "recovery server: %v\n", err)
		os.Exit(1)
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		fail(err)
	}
	b, err := New(Config{
		Params:         storeTestParams(),
		Users:          e2eUsers,
		UsersEstimator: detector.EstimatorMean,
		Store:          st,
	})
	if err != nil {
		fail(err)
	}
	srv, err := b.Serve("127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	// Publish the listen address atomically so the parent never reads a
	// half-written file.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(srv.Addr()), 0o644); err != nil {
		fail(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fail(err)
	}
	select {} // SIGKILL is the only way out
}

// startRecoveryServer spawns the helper process on dir and returns the
// running command plus the address it listens on.
func startRecoveryServer(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), e2eDirEnv+"="+dir, e2eAddrEnv+"="+addrFile)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting recovery server: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if addr, err := os.ReadFile(addrFile); err == nil {
			return cmd, string(addr)
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("recovery server never published its address")
	return nil, ""
}

// roundDiff is the artifact the CI recovery job uploads: the recovered
// run's results next to the uninterrupted control's.
type roundDiff struct {
	Identical         bool     `json:"identical"`
	DistinctAdsLive   int      `json:"distinct_ads_live"`
	DistinctAdsRecov  int      `json:"distinct_ads_recovered"`
	UsersThLive       float64  `json:"users_th_live"`
	UsersThRecov      float64  `json:"users_th_recovered"`
	CountMismatches   []string `json:"count_mismatches,omitempty"`
	ReportedPreKill   int      `json:"reported_before_kill"`
	ReportedRecovered int      `json:"reported_after_restart"`
}

// TestKillAndRecoverMidRound is the crash-recovery acceptance test:
// SIGKILL the server after half the roster has reported, restart it on
// the same -data-dir, submit the rest, and require CloseRound to yield
// counts byte-identical to an uninterrupted run.
func TestKillAndRecoverMidRound(t *testing.T) {
	params := storeTestParams()
	reports := buildReports(t, params, e2eUsers, 1)

	// Uninterrupted control, in-process.
	control := newStoreBackend(t, params, e2eUsers, nil)
	for _, r := range reports {
		if err := control.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	controlTh, controlAds, err := control.CloseRound(1)
	if err != nil {
		t.Fatal(err)
	}
	controlCounts, err := control.UserCountsOfRound(1)
	if err != nil {
		t.Fatal(err)
	}

	dataDir := filepath.Join(t.TempDir(), "rounds")
	cmd1, addr1 := startRecoveryServer(t, dataDir)

	// Phase 1: register a key (roster durability) and stream half the
	// roster's reports over a batched connection; every Flush-ed frame
	// is fsynced before its ack, so the kill below cannot lose them.
	cli1, err := wire.Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli1.Do(wire.TypeRegister,
		wire.RegisterReq{User: 3, PublicKey: []byte("pk3")}, nil); err != nil {
		t.Fatal(err)
	}
	rs, err := cli1.OpenReportStream(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports[:4] {
		if err := rs.Submit(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Close(); err != nil { // flushes: all four acked = durable
		t.Fatal(err)
	}
	var status wire.RoundStatusResp
	if err := cli1.Do(wire.TypeRoundStatus, wire.CloseRoundReq{Round: 1}, &status); err != nil {
		t.Fatal(err)
	}
	if status.Reported != 4 {
		t.Fatalf("pre-kill reported = %d, want 4", status.Reported)
	}
	reportedPreKill := status.Reported
	cli1.Close()

	// The crash: SIGKILL, mid-round. No flush, no shutdown hook.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	// Phase 2: restart on the same data dir.
	_, addr2 := startRecoveryServer(t, dataDir)
	cli2, err := wire.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()

	// The reported-bitmap survived the kill…
	if err := cli2.Do(wire.TypeRoundStatus, wire.CloseRoundReq{Round: 1}, &status); err != nil {
		t.Fatal(err)
	}
	if status.Reported != 4 || !reflect.DeepEqual(status.Missing, []int{4, 5, 6, 7}) {
		t.Fatalf("recovered status = %+v", status)
	}
	// …the bulletin board too…
	var roster wire.RosterResp
	if err := cli2.Do(wire.TypeRoster, struct{}{}, &roster); err != nil {
		t.Fatal(err)
	}
	if string(roster.PublicKeys[3]) != "pk3" {
		t.Fatal("registration lost across the kill")
	}
	// …and a duplicate of a pre-kill report still bounces.
	if err := cli2.SubmitReportFrame(frameOf(reports[0])); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate across kill = %v", err)
	}

	// Finish the round and close it over the wire.
	rs2, err := cli2.OpenReportStream(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports[4:] {
		if err := rs2.Submit(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs2.Close(); err != nil {
		t.Fatal(err)
	}
	var closed wire.CloseRoundResp
	if err := cli2.Do(wire.TypeCloseRound, wire.CloseRoundReq{Round: 1}, &closed); err != nil {
		t.Fatal(err)
	}

	// Compare against the uninterrupted control: distinct-ad count,
	// every per-ad user count (integers — byte-identical or bust), and
	// Users_th (float; the close-time sample order is map-dependent, so
	// equal within rounding).
	diff := roundDiff{
		DistinctAdsLive:   controlAds,
		DistinctAdsRecov:  closed.DistinctAds,
		UsersThLive:       controlTh,
		UsersThRecov:      closed.UsersTh,
		ReportedPreKill:   reportedPreKill,
		ReportedRecovered: status.Reported,
	}
	for id, want := range controlCounts {
		var audit wire.AuditAdResp
		if err := cli2.Do(wire.TypeAuditAd, wire.AuditAdReq{Round: 1, AdID: id}, &audit); err != nil {
			t.Fatal(err)
		}
		if audit.Users != want {
			diff.CountMismatches = append(diff.CountMismatches,
				fmt.Sprintf("ad %d: live %d, recovered %d", id, want, audit.Users))
		}
	}
	thDelta := closed.UsersTh - controlTh
	diff.Identical = closed.DistinctAds == controlAds && len(diff.CountMismatches) == 0 &&
		thDelta < 1e-9 && thDelta > -1e-9
	if out := os.Getenv(e2eDiffEnv); out != "" {
		raw, _ := json.MarshalIndent(diff, "", "  ")
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			t.Errorf("writing round diff artifact: %v", err)
		}
	}
	if !diff.Identical {
		t.Fatalf("recovered round differs from uninterrupted run: %+v", diff)
	}
}
