package adsim

import (
	"math"
	"testing"

	"eyewnder/internal/taxonomy"
)

// smallConfig keeps runs fast while exercising every code path.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Users = 60
	cfg.Sites = 120
	cfg.Campaigns = 60
	cfg.AvgVisitsPerWeek = 50
	cfg.StaticSitesMin = 5
	cfg.StaticSitesMax = 25
	return cfg
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.Sites = 0 },
		func(c *Config) { c.AvgVisitsPerWeek = 0 },
		func(c *Config) { c.AdsPerSite = 0 },
		func(c *Config) { c.TargetedFraction = 1.5 },
		func(c *Config) { c.Campaigns = 0 },
		func(c *Config) { c.FrequencyCap = 0 },
		func(c *Config) { c.Weeks = 0 },
		func(c *Config) { c.SlotsPerVisit = 0 },
		func(c *Config) { c.BaseTargetedShare = -0.1 },
		func(c *Config) { c.InterestAffinity = 2 },
		func(c *Config) { c.WeekendFactor = 0 },
		func(c *Config) { c.ZipfS = 1 },
		func(c *Config) { c.MinInterests = 0 },
		func(c *Config) { c.MaxInterests = 1; c.MinInterests = 2 },
		func(c *Config) { c.RetargetedShare = 0.8; c.IndirectShare = 0.5 },
		func(c *Config) { c.StaticSitesMin = 10; c.StaticSitesMax = 5 },
	}
	for i, mod := range mods {
		cfg := DefaultConfig()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mod %d: invalid config accepted", i)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := smallConfig()
	r1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := r1.Run()
	b := r2.Run()
	if len(a.Impressions) != len(b.Impressions) {
		t.Fatalf("impression counts differ: %d vs %d", len(a.Impressions), len(b.Impressions))
	}
	for i := range a.Impressions {
		if a.Impressions[i] != b.Impressions[i] {
			t.Fatalf("impression %d differs", i)
		}
	}
}

func TestCampaignMixMatchesConfig(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[Kind]int{}
	for _, c := range s.Campaigns() {
		kinds[c.Kind]++
	}
	targeted := kinds[KindTargeted] + kinds[KindIndirect] + kinds[KindRetargeted]
	wantTargeted := int(math.Round(float64(cfg.Campaigns) * cfg.TargetedFraction))
	if targeted != wantTargeted {
		t.Fatalf("targeted campaigns = %d, want %d", targeted, wantTargeted)
	}
	if kinds[KindStatic] == 0 || kinds[KindContextual] == 0 {
		t.Fatalf("missing non-targeted kinds: %v", kinds)
	}
	if kinds[KindIndirect] == 0 || kinds[KindRetargeted] == 0 {
		t.Fatalf("missing targeted sub-kinds: %v", kinds)
	}
}

func TestIndirectCampaignsHaveNoSemanticOverlap(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range s.Campaigns() {
		switch c.Kind {
		case KindIndirect:
			if taxonomy.OverlapAny(c.TargetTopics, c.Category) {
				t.Fatalf("indirect campaign %d overlaps: targets %v, category %v",
					c.ID, c.TargetTopics, c.Category)
			}
		case KindTargeted:
			if !taxonomy.OverlapAny(c.TargetTopics, c.Category) {
				t.Fatalf("direct campaign %d lacks overlap", c.ID)
			}
		}
	}
}

func TestFrequencyCapRespected(t *testing.T) {
	cfg := smallConfig()
	cfg.FrequencyCap = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	perUserWeek := map[[3]int]int{} // (user, campaign, week) -> impressions
	for _, imp := range res.Impressions {
		if s.Campaign(imp.Campaign).Kind.IsTargeted() {
			perUserWeek[[3]int{imp.User, imp.Campaign, imp.Week}]++
		}
	}
	for k, n := range perUserWeek {
		if n > cfg.FrequencyCap {
			t.Fatalf("user %d saw targeted campaign %d %d times in week %d (cap %d)",
				k[0], k[1], n, k[2], cfg.FrequencyCap)
		}
	}
}

func TestImpressionVolumePlausible(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	// ~Users * AvgVisits visits, each showing up to SlotsPerVisit ads.
	expVisits := float64(cfg.Users) * cfg.AvgVisitsPerWeek
	if f := float64(res.Visits) / expVisits; f < 0.8 || f > 1.2 {
		t.Fatalf("visits = %d, expected ~%.0f", res.Visits, expVisits)
	}
	if len(res.Impressions) < res.Visits {
		t.Fatalf("impressions (%d) < visits (%d): inventories too thin", len(res.Impressions), res.Visits)
	}
}

func TestWeekendDiscount(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 200
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	byDay := make([]int, 7)
	for _, imp := range res.Impressions {
		byDay[imp.Day]++
	}
	weekday := float64(byDay[0]+byDay[1]+byDay[2]+byDay[3]+byDay[4]) / 5
	weekend := float64(byDay[5]+byDay[6]) / 2
	if weekend >= weekday {
		t.Fatalf("weekend rate %.0f >= weekday rate %.0f", weekend, weekday)
	}
}

func TestCrawlerNeverSeesPureTargetedAds(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for siteID := 0; siteID < cfg.Sites; siteID += 7 {
		for _, cid := range s.CrawlerVisit(siteID, 5) {
			if s.Campaign(cid).Kind.IsTargeted() {
				t.Fatalf("clean-profile crawler served targeted campaign %d", cid)
			}
		}
	}
}

func TestTargetedAdsFollowFewerUsers(t *testing.T) {
	// The two structural properties the detector relies on must emerge:
	// targeted ads are seen by fewer users, and by their viewers on more
	// domains, than static ads.
	cfg := smallConfig()
	cfg.Users = 150
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	c := Count(res.Impressions, nil)
	var tUsers, sUsers, tCount, sCount float64
	var tDomains, sDomains, tPairs, sPairs float64
	for _, camp := range s.Campaigns() {
		n := float64(c.UserCount(camp.ID))
		if n == 0 {
			continue
		}
		if camp.Kind.IsTargeted() {
			tUsers += n
			tCount++
		} else if camp.Kind == KindStatic {
			sUsers += n
			sCount++
		}
	}
	for user, ads := range c.DomainsPerUserAd {
		_ = user
		for cid, ds := range ads {
			if s.Campaign(cid).Kind.IsTargeted() {
				tDomains += float64(len(ds))
				tPairs++
			} else if s.Campaign(cid).Kind == KindStatic {
				sDomains += float64(len(ds))
				sPairs++
			}
		}
	}
	if tCount == 0 || sCount == 0 || tPairs == 0 || sPairs == 0 {
		t.Fatal("degenerate simulation: missing campaign exposure")
	}
	if tUsers/tCount >= sUsers/sCount {
		t.Fatalf("targeted ads seen by %.1f users on average, static by %.1f — expected fewer",
			tUsers/tCount, sUsers/sCount)
	}
	if tDomains/tPairs <= sDomains/sPairs {
		t.Fatalf("targeted ads follow across %.2f domains, static %.2f — expected more",
			tDomains/tPairs, sDomains/sPairs)
	}
}

func TestCountersAggregation(t *testing.T) {
	imps := []Impression{
		{User: 0, Site: 1, Campaign: 5, Week: 0},
		{User: 0, Site: 2, Campaign: 5, Week: 0},
		{User: 0, Site: 2, Campaign: 5, Week: 0}, // repeat domain
		{User: 1, Site: 3, Campaign: 5, Week: 1},
		{User: 1, Site: 3, Campaign: 6, Week: 1},
	}
	c := Count(imps, nil)
	if c.UserCount(5) != 2 {
		t.Fatalf("UserCount(5) = %d", c.UserCount(5))
	}
	if c.DomainCount(0, 5) != 2 {
		t.Fatalf("DomainCount(0,5) = %d", c.DomainCount(0, 5))
	}
	if c.ActiveDomains(0) != 2 || c.ActiveDomains(1) != 1 {
		t.Fatalf("ActiveDomains = %d/%d", c.ActiveDomains(0), c.ActiveDomains(1))
	}
	if got := len(c.AdsSeenBy(1)); got != 2 {
		t.Fatalf("AdsSeenBy(1) = %d ads", got)
	}
	// Week filter.
	w0 := Count(imps, map[int]bool{0: true})
	if w0.UserCount(5) != 1 || w0.UserCount(6) != 0 {
		t.Fatalf("week filter broken: %d/%d", w0.UserCount(5), w0.UserCount(6))
	}
	if d := w0.UserCountsDistribution(); len(d) != 1 || d[0] != 1 {
		t.Fatalf("UserCountsDistribution = %v", d)
	}
	if d := c.DomainCountsDistribution(0); len(d) != 1 || d[0] != 2 {
		t.Fatalf("DomainCountsDistribution = %v", d)
	}
}

func TestDemographicBiasPlantsDifferentShares(t *testing.T) {
	cfg := smallConfig()
	cfg.DemographicBias = true
	cfg.Users = 300
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Female and male users must have depressed targeted share relative
	// to undisclosed (planted ORs 0.255 and 0.174).
	var fSum, mSum, uSum float64
	var fN, mN, uN int
	for _, u := range s.Users() {
		switch u.Demo.Gender {
		case GenderFemale:
			fSum += u.targetedShare
			fN++
		case GenderMale:
			mSum += u.targetedShare
			mN++
		default:
			uSum += u.targetedShare
			uN++
		}
	}
	if fN == 0 || mN == 0 || uN == 0 {
		t.Fatal("gender groups empty")
	}
	if !(mSum/float64(mN) < fSum/float64(fN) && fSum/float64(fN) < uSum/float64(uN)) {
		t.Fatalf("planted gender ordering broken: m=%.3f f=%.3f u=%.3f",
			mSum/float64(mN), fSum/float64(fN), uSum/float64(uN))
	}
}

func TestDemographicStrings(t *testing.T) {
	if GenderFemale.String() != "female" || GenderMale.String() != "male" || GenderUndisclosed.String() != "undisclosed" {
		t.Fatal("gender strings")
	}
	if Income30to60.String() != "30k-60k" || Income90plus.String() != "90k-..." || Income0to30.String() != "0-30k" || Income60to90.String() != "60k-90k" {
		t.Fatal("income strings")
	}
	if Age60to70.String() != "60-70" || Age1to20.String() != "1-20" {
		t.Fatal("age strings")
	}
	for _, k := range []Kind{KindStatic, KindContextual, KindTargeted, KindIndirect, KindRetargeted} {
		if k.String() == "" {
			t.Fatal("kind string empty")
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}

func TestCampaignURLs(t *testing.T) {
	c := &Campaign{ID: 42, Category: taxonomy.Seafood}
	if c.AdURL() == "" || c.LandingURL() == "" {
		t.Fatal("empty URLs")
	}
	// Landing URL must embed the category for the CB baseline.
	want := taxonomy.Seafood.String()
	if !contains(c.LandingURL(), want) {
		t.Fatalf("landing URL %q lacks category %q", c.LandingURL(), want)
	}
	d := &Campaign{ID: 43, Category: taxonomy.Seafood}
	if c.AdURL() == d.AdURL() {
		t.Fatal("distinct campaigns share ad URL")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMultiWeekRun(t *testing.T) {
	cfg := smallConfig()
	cfg.Weeks = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	weeks := map[int]bool{}
	for _, imp := range res.Impressions {
		weeks[imp.Week] = true
		if imp.Week < 0 || imp.Week > 2 {
			t.Fatalf("impression week %d out of range", imp.Week)
		}
		wallWeek := int(imp.Time.Sub(SimStart) / (7 * 24 * 3600 * 1e9))
		if wallWeek != imp.Week {
			t.Fatalf("timestamp week %d != label %d", wallWeek, imp.Week)
		}
	}
	if len(weeks) != 3 {
		t.Fatalf("saw weeks %v, want 3 distinct", weeks)
	}
}
