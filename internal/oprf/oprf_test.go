package oprf

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"math/big"
	"sync"
	"testing"
)

// testServer caches one RSA key across tests — keygen dominates runtime.
var (
	serverOnce sync.Once
	testSrv    *Server
)

func server(t testing.TB) *Server {
	serverOnce.Do(func() {
		key, err := rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			panic(err)
		}
		s, err := NewServerFromKey(key)
		if err != nil {
			panic(err)
		}
		testSrv = s
	})
	return testSrv
}

func evaluate(t *testing.T, s *Server, c *Client, x []byte) []byte {
	t.Helper()
	req, err := c.Blind(x)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Evaluate(req.Blinded)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Finalize(req, resp)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBlindEvaluateMatchesDirect(t *testing.T) {
	s := server(t)
	c := NewClient(s.PublicKey(), nil)
	for _, url := range []string{
		"https://ads.example.com/creative/1",
		"https://cdn.adnet.io/banner?id=42",
		"",
		"a",
	} {
		got := evaluate(t, s, c, []byte(url))
		want := s.Direct([]byte(url))
		if !bytes.Equal(got, want) {
			t.Fatalf("blind evaluation of %q differs from direct", url)
		}
		if len(got) != OutputSize {
			t.Fatalf("output size %d", len(got))
		}
	}
}

func TestDeterministicPerInput(t *testing.T) {
	s := server(t)
	c := NewClient(s.PublicKey(), nil)
	a := evaluate(t, s, c, []byte("x"))
	b := evaluate(t, s, c, []byte("x"))
	if !bytes.Equal(a, b) {
		t.Fatal("same input produced different ad IDs")
	}
	d := evaluate(t, s, c, []byte("y"))
	if bytes.Equal(a, d) {
		t.Fatal("distinct inputs collided")
	}
}

func TestBlindedRequestsDiffer(t *testing.T) {
	// Fresh randomness per request: the same URL must produce different
	// wire values, otherwise the server could link repeated lookups.
	s := server(t)
	c := NewClient(s.PublicKey(), nil)
	r1, err := c.Blind([]byte("same-url"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Blind([]byte("same-url"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Blinded.Cmp(r2.Blinded) == 0 {
		t.Fatal("blinded requests are linkable")
	}
}

func TestFinalizeDetectsCorruptResponse(t *testing.T) {
	s := server(t)
	c := NewClient(s.PublicKey(), nil)
	req, err := c.Blind([]byte("url"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Evaluate(req.Blinded)
	if err != nil {
		t.Fatal(err)
	}
	bad := new(big.Int).Add(resp, big.NewInt(1))
	if _, err := c.Finalize(req, bad); err != ErrVerifyFailed {
		t.Fatalf("corrupt response err = %v, want ErrVerifyFailed", err)
	}
}

func TestEvaluateRejectsOutOfRange(t *testing.T) {
	s := server(t)
	if _, err := s.Evaluate(big.NewInt(0)); err != ErrBadElement {
		t.Fatalf("zero err = %v", err)
	}
	if _, err := s.Evaluate(new(big.Int).Set(s.PublicKey().N)); err != ErrBadElement {
		t.Fatalf("N err = %v", err)
	}
	c := NewClient(s.PublicKey(), nil)
	req, _ := c.Blind([]byte("x"))
	if _, err := c.Finalize(req, big.NewInt(0)); err != ErrBadElement {
		t.Fatalf("finalize zero err = %v", err)
	}
}

func TestEvaluateBatch(t *testing.T) {
	s := server(t)
	c := NewClient(s.PublicKey(), nil)
	inputs := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	reqs := make([]*Request, len(inputs))
	blinded := make([]*big.Int, len(inputs))
	for i, x := range inputs {
		r, err := c.Blind(x)
		if err != nil {
			t.Fatal(err)
		}
		reqs[i] = r
		blinded[i] = r.Blinded
	}
	resps, err := s.EvaluateBatch(blinded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inputs {
		out, err := c.Finalize(reqs[i], resps[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, s.Direct(inputs[i])) {
			t.Fatalf("batch output %d mismatch", i)
		}
	}
	// A bad element anywhere fails the whole batch.
	blinded[1] = big.NewInt(0)
	if _, err := s.EvaluateBatch(blinded); err == nil {
		t.Fatal("batch with bad element accepted")
	}
}

func TestNewServerRejectsSmallKey(t *testing.T) {
	if _, err := NewServer(512); err != ErrKeyTooSmall {
		t.Fatalf("err = %v", err)
	}
	key, _ := rsa.GenerateKey(rand.Reader, 512)
	if _, err := NewServerFromKey(key); err != ErrKeyTooSmall {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiEval(t *testing.T) {
	a := []byte{0xF0, 0x0F}
	b := []byte{0x0F, 0xF0}
	out, err := MultiEval(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{0xFF, 0xFF}) {
		t.Fatalf("xor = %x", out)
	}
	// Single input passes through unchanged (copy, not alias).
	single, err := MultiEval(a)
	if err != nil || !bytes.Equal(single, a) {
		t.Fatalf("single = %x, %v", single, err)
	}
	single[0] = 0
	if a[0] != 0xF0 {
		t.Fatal("MultiEval aliased its input")
	}
	if _, err := MultiEval(); err == nil {
		t.Fatal("empty MultiEval accepted")
	}
	if _, err := MultiEval(a, []byte{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestMultiServerComposition(t *testing.T) {
	// Two independent servers; composed ad ID differs from either alone
	// and is stable across evaluations.
	s1 := server(t)
	key2, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewServerFromKey(key2)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewClient(s1.PublicKey(), nil)
	c2 := NewClient(s2.PublicKey(), nil)
	x := []byte("https://ads.example.com/1")
	o1 := evaluate(t, s1, c1, x)
	o2 := evaluate(t, s2, c2, x)
	combined, err := MultiEval(o1, o2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(combined, o1) || bytes.Equal(combined, o2) {
		t.Fatal("composition degenerate")
	}
	again, _ := MultiEval(evaluate(t, s1, c1, x), evaluate(t, s2, c2, x))
	if !bytes.Equal(combined, again) {
		t.Fatal("composition not deterministic")
	}
}

func BenchmarkOPRFRoundTrip(b *testing.B) {
	s := server(b)
	c := NewClient(s.PublicKey(), nil)
	x := []byte("https://ads.example.com/creative/123456")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := c.Blind(x)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := s.Evaluate(req.Blinded)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Finalize(req, resp); err != nil {
			b.Fatal(err)
		}
	}
}
