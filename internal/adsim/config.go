// Package adsim simulates users, websites, and ad campaigns — the
// controlled environment of the paper's Section 7.2 simulation study. The
// browsing model follows the User-Centric-Walk approach of Bürklen et
// al. [14] that the paper's simulator is based on: site popularity is
// Zipf-distributed, users visit interest-matched sites preferentially,
// and browsing intensity differs between weekdays and weekends.
//
// The simulator produces an impression stream (user, site, campaign,
// time) with full ground truth (every campaign knows whether it is
// targeted), which feeds the detector experiments (Figures 2 and 3, the
// false-positive study of Section 7.2.2), the privacy-protocol overhead
// study, and the live-validation analogue (Figure 4).
package adsim

import (
	"errors"
	"fmt"
)

// Config parametrizes a simulation. The zero value is not useful; start
// from DefaultConfig (the paper's Table 1) and override.
type Config struct {
	// Seed makes runs reproducible.
	Seed int64

	// Users is the population size (Table 1: 500).
	Users int
	// Sites is the number of ad-serving websites (Table 1: 1000).
	Sites int
	// AvgVisitsPerWeek is the mean number of page visits per user per
	// week (Table 1: 138).
	AvgVisitsPerWeek float64
	// AdsPerSite is each site's non-targeted ad inventory size
	// (Table 1: 20).
	AdsPerSite int
	// TargetedFraction is the fraction of campaigns that are targeted
	// (Table 1: 0.1).
	TargetedFraction float64
	// Campaigns is the total number of ad campaigns in flight.
	Campaigns int
	// FrequencyCap bounds how many impressions of one targeted campaign
	// a single user receives per week — the x-axis of Figure 3.
	FrequencyCap int
	// Weeks is the simulated duration in 7-day rounds.
	Weeks int

	// SlotsPerVisit is how many display ads a page view renders.
	SlotsPerVisit int
	// BaseTargetedShare is the baseline probability that a slot is filled
	// by the targeted-ad exchange rather than site inventory.
	BaseTargetedShare float64
	// InterestAffinity is the probability that a visit goes to a site
	// matching one of the user's interests (vs. a popularity draw).
	InterestAffinity float64
	// WeekendFactor scales browsing intensity on Saturday/Sunday.
	WeekendFactor float64
	// ZipfS is the site-popularity Zipf exponent.
	ZipfS float64
	// MinInterests and MaxInterests bound the per-user interest count.
	MinInterests, MaxInterests int

	// RetargetedShare is the fraction of targeted campaigns that are
	// retargeting campaigns (triggered by a product-site visit).
	RetargetedShare float64
	// IndirectShare is the fraction of targeted campaigns whose ad
	// category has no semantic overlap with the targeted interest —
	// the indirect targeting of Section 2.1.
	IndirectShare float64

	// StaticSitesMin/Max bound how many sites carry one static
	// ("brand awareness") campaign.
	StaticSitesMin, StaticSitesMax int

	// DemographicBias plants the gender/income/age targeting-rate
	// differences recovered by the Table 2 regression.
	DemographicBias bool
}

// DefaultConfig returns the paper's Table 1 configuration.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		Users:             500,
		Sites:             1000,
		AvgVisitsPerWeek:  138,
		AdsPerSite:        20,
		TargetedFraction:  0.1,
		Campaigns:         300,
		FrequencyCap:      8,
		Weeks:             1,
		SlotsPerVisit:     3,
		BaseTargetedShare: 0.35,
		InterestAffinity:  0.7,
		WeekendFactor:     0.6,
		ZipfS:             1.1,
		MinInterests:      2,
		MaxInterests:      4,
		RetargetedShare:   0.25,
		IndirectShare:     0.25,
		StaticSitesMin:    20,
		StaticSitesMax:    120,
		DemographicBias:   false,
	}
}

// Validate reports configuration errors before a run.
func (c Config) Validate() error {
	switch {
	case c.Users < 1:
		return errors.New("adsim: Users must be >= 1")
	case c.Sites < 1:
		return errors.New("adsim: Sites must be >= 1")
	case c.AvgVisitsPerWeek <= 0:
		return errors.New("adsim: AvgVisitsPerWeek must be > 0")
	case c.AdsPerSite < 1:
		return errors.New("adsim: AdsPerSite must be >= 1")
	case c.TargetedFraction < 0 || c.TargetedFraction > 1:
		return errors.New("adsim: TargetedFraction must be in [0,1]")
	case c.Campaigns < 1:
		return errors.New("adsim: Campaigns must be >= 1")
	case c.FrequencyCap < 1:
		return errors.New("adsim: FrequencyCap must be >= 1")
	case c.Weeks < 1:
		return errors.New("adsim: Weeks must be >= 1")
	case c.SlotsPerVisit < 1:
		return errors.New("adsim: SlotsPerVisit must be >= 1")
	case c.BaseTargetedShare < 0 || c.BaseTargetedShare > 1:
		return errors.New("adsim: BaseTargetedShare must be in [0,1]")
	case c.InterestAffinity < 0 || c.InterestAffinity > 1:
		return errors.New("adsim: InterestAffinity must be in [0,1]")
	case c.WeekendFactor <= 0:
		return errors.New("adsim: WeekendFactor must be > 0")
	case c.ZipfS <= 1:
		return errors.New("adsim: ZipfS must be > 1")
	case c.MinInterests < 1 || c.MaxInterests < c.MinInterests:
		return fmt.Errorf("adsim: bad interest bounds [%d,%d]", c.MinInterests, c.MaxInterests)
	case c.RetargetedShare < 0 || c.RetargetedShare > 1:
		return errors.New("adsim: RetargetedShare must be in [0,1]")
	case c.IndirectShare < 0 || c.IndirectShare > 1:
		return errors.New("adsim: IndirectShare must be in [0,1]")
	case c.RetargetedShare+c.IndirectShare > 1:
		return errors.New("adsim: RetargetedShare+IndirectShare must be <= 1")
	case c.StaticSitesMin < 1 || c.StaticSitesMax < c.StaticSitesMin:
		return fmt.Errorf("adsim: bad static site bounds [%d,%d]", c.StaticSitesMin, c.StaticSitesMax)
	}
	return nil
}
