package churn

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"eyewnder/internal/backend"
	"eyewnder/internal/campaign"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
	"eyewnder/internal/store"
	"eyewnder/internal/wire"
)

// RoundResult is one replayed round's outcome.
type RoundResult struct {
	Round     uint64  `json:"round"`
	Joins     int     `json:"joins"`
	Reregs    int     `json:"reregs"`
	Drops     int     `json:"drops"`
	Darks     int     `json:"darks"`
	Reporters int     `json:"reporters"`
	Missing   int     `json:"missing"`
	Shares    int     `json:"shares"`
	Adjusted  bool    `json:"adjusted"` // round closed through the adjustment path
	Skipped   bool    `json:"skipped"`  // no reporters: nothing to open or close
	UsersTh   float64 `json:"users_th"`
	Ads       int     `json:"distinct_ads"`
}

// Result is a whole run's outcome. Digest chains every round's oracle
// counts (sorted, with the round number) through SHA-256: two runs of
// the same seed must produce identical digests — the bit-determinism
// assertion CI double-runs.
type Result struct {
	Trace   *Trace        `json:"-"`
	Rounds  []RoundResult `json:"rounds"`
	Reports int           `json:"reports"`
	Shares  int           `json:"shares"`
	Digest  string        `json:"digest"`
}

// Run generates the seeded trace for cfg and replays it. logf (nil ok)
// receives one progress line per round.
func Run(cfg Config, logf func(format string, args ...interface{})) (*Result, error) {
	return Replay(Generate(cfg), logf)
}

// Replay drives a real back-end through the trace: per round it
// registers the joiners and re-registrants (re-pinning the negotiated
// config version the bumps produce), streams every reporter's blinded
// report over the batched frame connection (tearing the connection
// down and re-handshaking mid-round when the trace says so), asserts
// the server's round status matches the trace exactly, streams the
// reporters' adjustment shares, closes the round under an adjustment
// deadline, and byte-compares the finalized per-ad counts against the
// oracle computed from the trace alone. The first divergence fails the
// run (dumping trace and diff artifacts when Cfg.ArtifactDir is set).
func Replay(tr *Trace, logf func(format string, args ...interface{})) (*Result, error) {
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	cfg := tr.Cfg.withDefaults()
	params := privacy.Params{Epsilon: cfg.Epsilon, Delta: cfg.Delta, IDSpace: cfg.IDSpace, Suite: group.P256()}

	var st store.Store
	if cfg.DataDir != "" {
		disk, err := store.Open(cfg.DataDir, store.Options{Metrics: cfg.Metrics})
		if err != nil {
			return nil, err
		}
		defer disk.Close()
		st = disk
	}
	be, err := backend.New(backend.Config{
		Params:         params,
		Users:          cfg.Users,
		UsersEstimator: detector.EstimatorMean,
		Store:          st,
		Metrics:        cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	defer be.Close()
	if cfg.Campaign != 0 {
		// Same geometry as the deployment base: the harness's ring
		// blinding is campaign-agnostic, so what the campaign run
		// proves is the keying — every record, status answer, and
		// finalized count lives under (campaign, round).
		if err := be.AddCampaign(campaign.Campaign{
			ID: cfg.Campaign, Name: "churn",
			Epsilon: cfg.Epsilon, Delta: cfg.Delta, IDSpace: cfg.IDSpace,
		}); err != nil {
			return nil, fmt.Errorf("provisioning campaign %d: %w", cfg.Campaign, err)
		}
	}
	srv, err := be.Serve("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	// Two connections, like a real aggregating proxy: ctrl carries the
	// JSON control plane (registrations, status, close, counts), stream
	// carries the batched binary frames (reports and adjustment
	// shares). Only stream is ever torn down by a reconnect event.
	ctrl, err := wire.Dial(srv.Addr())
	if err != nil {
		return nil, err
	}
	defer ctrl.Close()
	stream, err := wire.Dial(srv.Addr())
	if err != nil {
		return nil, err
	}
	defer func() { stream.Close() }()
	cf, err := stream.Handshake()
	if err != nil {
		return nil, fmt.Errorf("handshake: %w", err)
	}
	cv := cf.ConfigVersion

	d, w, err := sketch.Dimensions(cfg.Epsilon, cfg.Delta)
	if err != nil {
		return nil, err
	}
	cells := d * w
	scratch, err := sketch.New(cfg.Epsilon, cfg.Delta)
	if err != nil {
		return nil, err
	}

	pop := newPopulation(cfg.Users)
	blindBuf := make([]uint64, cells)
	shareBuf := make([]uint64, cells)
	oracleCells := make([]uint64, cells)
	activeBuf := make([]int, 0, cfg.Users)
	isDark := make([]bool, cfg.Users)
	isMissing := make([]bool, cfg.Users)
	var key [8]byte
	var digest [32]byte
	res := &Result{Trace: tr}

	for _, ev := range tr.Rounds {
		round := ev.Round

		// Population lifecycle: joins and re-registrations hit the real
		// bulletin board (each board change bumps the deployment's
		// config/roster versions); drops and darks are client-side
		// silence, so the server learns of them only as missing users.
		for _, u := range ev.Joins {
			var resp wire.RegisterResp
			if err := ctrl.Do(wire.TypeRegister, wire.RegisterReq{
				User: u, PublicKey: keyBytes(cfg.Seed, u, 1),
			}, &resp); err != nil {
				return res, fmt.Errorf("round %d: register user %d: %w", round, u, err)
			}
		}
		for _, u := range ev.Reregs {
			var resp wire.RegisterResp
			if err := ctrl.Do(wire.TypeRegister, wire.RegisterReq{
				User: u, PublicKey: keyBytes(cfg.Seed, u, pop.gen[u]+1),
			}, &resp); err != nil {
				return res, fmt.Errorf("round %d: re-register user %d: %w", round, u, err)
			}
		}
		pop.apply(ev)
		if len(ev.Joins)+len(ev.Reregs) > 0 {
			// The board changed: re-handshake so this round's frames
			// carry the version the round will pin at its open.
			if cf, err = stream.Handshake(); err != nil {
				return res, fmt.Errorf("round %d: re-handshake: %w", round, err)
			}
			cv = cf.ConfigVersion
		}

		active := pop.activeInto(activeBuf)
		activeBuf = active[:0]
		for _, u := range ev.Darks {
			isDark[u] = true
		}
		for i := range isMissing {
			isMissing[i] = true
		}
		reporters := 0
		for _, u := range active {
			if !isDark[u] {
				isMissing[u] = false
				reporters++
			}
		}
		rr := RoundResult{
			Round: round,
			Joins: len(ev.Joins), Reregs: len(ev.Reregs),
			Drops: len(ev.Drops), Darks: len(ev.Darks),
			Reporters: reporters, Missing: cfg.Users - reporters,
		}
		if reporters == 0 {
			// Nothing reports, so the round never opens server-side and
			// there is nothing to close (a close would be ErrNoReports).
			rr.Skipped = true
			res.Rounds = append(res.Rounds, rr)
			digest = chainDigest(digest, round, nil)
			for _, u := range ev.Darks {
				isDark[u] = false
			}
			logf("churn: round %d skipped (no reporters; %d active, %d dark)", round, len(active), len(ev.Darks))
			continue
		}

		// Report phase: build each reporter's sketch from its trace ad
		// set, fold the unblinded cells into the oracle, blind over the
		// ring, and stream the frame. A reconnect event splits the
		// reporters across two connections with a full redial +
		// re-handshake between them.
		for i := range oracleCells {
			oracleCells[i] = 0
		}
		var oracleN uint64
		rs, err := stream.OpenReportStream(cfg.Window)
		if err != nil {
			return res, fmt.Errorf("round %d: open stream: %w", round, err)
		}
		splitAt := -1
		if ev.Reconnect && reporters >= 2 {
			splitAt = reporters / 2
		}
		ri := 0
		var nb [2]int
		for i, u := range active {
			if isDark[u] {
				continue
			}
			if ri == splitAt {
				if err := rs.Close(); err != nil {
					return res, fmt.Errorf("round %d: flush before reconnect: %w", round, err)
				}
				stream.Close()
				if stream, err = wire.Dial(srv.Addr()); err != nil {
					return res, fmt.Errorf("round %d: redial: %w", round, err)
				}
				if cf, err = stream.Handshake(); err != nil {
					return res, fmt.Errorf("round %d: reconnect handshake: %w", round, err)
				}
				if cf.ConfigVersion != cv {
					return res, fmt.Errorf("round %d: config version changed across reconnect: %d != %d", round, cf.ConfigVersion, cv)
				}
				if rs, err = stream.OpenReportStream(cfg.Window); err != nil {
					return res, fmt.Errorf("round %d: reopen stream: %w", round, err)
				}
			}
			ri++
			scratch.Reset()
			for _, id := range adIDs(cfg, u, round) {
				binary.LittleEndian.PutUint64(key[:], id)
				scratch.Update(key[:])
			}
			cs := scratch.FlatCells()
			for c := range cs {
				oracleCells[c] += cs[c]
			}
			oracleN += scratch.N()
			copy(blindBuf, cs)
			a, b, n := ringNeighbors(active, i)
			nb[0], nb[1] = a, b
			blindCells(blindBuf, cfg.Seed, round, u, nb[:n], pop.gen)
			if err := rs.Submit(&wire.ReportFrame{
				User: u, Campaign: cfg.Campaign, Round: round, D: d, W: w,
				N: scratch.N(), Seed: scratch.Seed(),
				Keystream:     byte(params.Keystream),
				ConfigVersion: cv,
				Cells:         blindBuf,
			}); err != nil {
				return res, fmt.Errorf("round %d: report from user %d: %w", round, u, err)
			}
			res.Reports++
		}
		if err := rs.Close(); err != nil {
			return res, fmt.Errorf("round %d: flush reports: %w", round, err)
		}

		// Status assertion: the server's view of the round — reported
		// count and the exact missing set — must match the trace.
		var status wire.RoundStatusResp
		if err := ctrl.Do(wire.TypeRoundStatus, wire.CloseRoundReq{Campaign: cfg.Campaign, Round: round}, &status); err != nil {
			return res, fmt.Errorf("round %d: status: %w", round, err)
		}
		if status.Reported != reporters {
			return res, fmt.Errorf("round %d: server reports %d reporters, trace says %d", round, status.Reported, reporters)
		}
		if err := assertMissing(isMissing, status.Missing); err != nil {
			return res, fmt.Errorf("round %d: %w", round, err)
		}

		// Adjustment phase: whenever anyone is missing, every reporter
		// owes a share — the sum of its ring terms toward its missing
		// (dark) neighbors, the zero vector when all its neighbors
		// reported. Shares ride the same batched stream as reports.
		if len(status.Missing) > 0 {
			if rs, err = stream.OpenReportStream(cfg.Window); err != nil {
				return res, fmt.Errorf("round %d: open adjust stream: %w", round, err)
			}
			for i, u := range active {
				if isDark[u] {
					continue
				}
				a, b, n := ringNeighbors(active, i)
				nb[0], nb[1] = a, b
				adjustShare(shareBuf, cfg.Seed, round, u, nb[:n], pop.gen, isMissing)
				af := wire.AdjustFrame(u, round, d, w, byte(params.Keystream), cv, shareBuf)
				af.Campaign = cfg.Campaign
				if err := rs.Submit(af); err != nil {
					return res, fmt.Errorf("round %d: share from user %d: %w", round, u, err)
				}
				rr.Shares++
			}
			if err := rs.Close(); err != nil {
				return res, fmt.Errorf("round %d: flush shares: %w", round, err)
			}
			res.Shares += rr.Shares
			rr.Adjusted = true
		}

		// Deadline close: seals the round, waits for outstanding shares
		// (all already flushed above, so the wait never bites on a
		// healthy run), finalizes.
		var closed wire.CloseRoundResp
		if err := ctrl.Do(wire.TypeCloseRound, wire.CloseRoundReq{
			Campaign: cfg.Campaign, Round: round, AdjustWaitMS: cfg.AdjustWait.Milliseconds(),
		}, &closed); err != nil {
			return res, fmt.Errorf("round %d: close: %w", round, err)
		}
		rr.UsersTh, rr.Ads = closed.UsersTh, closed.DistinctAds

		// Oracle comparison: the finalized counts must byte-match the
		// counts of the merged *unblinded* reporter sketches — the
		// ground truth the trace implies, computed with zero knowledge
		// of blinding or adjustments.
		oracleCMS, err := sketch.Restore(d, w, scratch.Seed(), oracleN, append([]uint64(nil), oracleCells...))
		if err != nil {
			return res, err
		}
		oracle := privacy.UserCounts(oracleCMS, params)
		var counts wire.RoundCountsResp
		if err := ctrl.Do(wire.TypeRoundCounts, wire.RoundCountsReq{Campaign: cfg.Campaign, Round: round}, &counts); err != nil {
			return res, fmt.Errorf("round %d: counts: %w", round, err)
		}
		if diff := countsDiff(counts.Counts, oracle); len(diff) > 0 {
			paths := dumpArtifacts(cfg.ArtifactDir, tr, round, diff)
			return res, fmt.Errorf("round %d: finalized counts diverge from trace oracle at %d ad IDs (first: ad %d server=%d oracle=%d)%s",
				round, len(diff), diff[0].AdID, diff[0].Server, diff[0].Oracle, paths)
		}
		if closed.DistinctAds != len(oracle) {
			return res, fmt.Errorf("round %d: close reported %d distinct ads, oracle has %d", round, closed.DistinctAds, len(oracle))
		}
		digest = chainDigest(digest, round, oracle)
		res.Rounds = append(res.Rounds, rr)
		for _, u := range ev.Darks {
			isDark[u] = false
		}
		logf("churn: round %d ok (%d reporters, %d missing, %d dark, %d shares, %d ads, Users_th=%.2f)",
			round, reporters, rr.Missing, rr.Darks, rr.Shares, rr.Ads, rr.UsersTh)
	}
	res.Digest = hex.EncodeToString(digest[:])
	return res, nil
}

// assertMissing checks the server's missing list against the trace's
// expected set (isMissing indexed by user), element by element — the
// lists must be identical, including order (ascending).
func assertMissing(isMissing []bool, got []int) error {
	gi := 0
	for u := range isMissing {
		if !isMissing[u] {
			continue
		}
		if gi >= len(got) || got[gi] != u {
			at := "nothing"
			if gi < len(got) {
				at = fmt.Sprintf("user %d", got[gi])
			}
			return fmt.Errorf("missing set diverges: trace expects user %d at position %d, server has %s", u, gi, at)
		}
		gi++
	}
	if gi != len(got) {
		return fmt.Errorf("missing set diverges: server lists %d users, trace expects %d", len(got), gi)
	}
	return nil
}

// countDiff is one diverging ad ID in a failed oracle comparison.
type countDiff struct {
	AdID   uint64 `json:"ad_id"`
	Server uint64 `json:"server"`
	Oracle uint64 `json:"oracle"`
}

// countsDiff returns the ad IDs whose counts differ, sorted by ID.
func countsDiff(server, oracle map[uint64]uint64) []countDiff {
	var out []countDiff
	for id, v := range server {
		if oracle[id] != v {
			out = append(out, countDiff{AdID: id, Server: v, Oracle: oracle[id]})
		}
	}
	for id, v := range oracle {
		if _, ok := server[id]; !ok {
			out = append(out, countDiff{AdID: id, Server: 0, Oracle: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AdID < out[j].AdID })
	return out
}

// dumpArtifacts writes the full trace and the failing round's count
// diff into dir (no-op when dir is empty), returning a note naming the
// files for the error message. Failures to write are folded into the
// note — the oracle mismatch is the error that matters.
func dumpArtifacts(dir string, tr *Trace, round uint64, diff []countDiff) string {
	if dir == "" {
		return ""
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Sprintf(" (artifacts unavailable: %v)", err)
	}
	tracePath := filepath.Join(dir, "trace.json")
	diffPath := filepath.Join(dir, fmt.Sprintf("round-%d-diff.json", round))
	if data, err := json.MarshalIndent(tr, "", "  "); err == nil {
		if err := os.WriteFile(tracePath, data, 0o644); err != nil {
			return fmt.Sprintf(" (artifacts unavailable: %v)", err)
		}
	}
	if data, err := json.MarshalIndent(diff, "", "  "); err == nil {
		if err := os.WriteFile(diffPath, data, 0o644); err != nil {
			return fmt.Sprintf(" (artifacts unavailable: %v)", err)
		}
	}
	return fmt.Sprintf(" (trace: %s, diff: %s)", tracePath, diffPath)
}

// chainDigest folds one round's oracle counts (sorted by ad ID) into
// the running determinism digest.
func chainDigest(prev [32]byte, round uint64, counts map[uint64]uint64) [32]byte {
	ids := make([]uint64, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := sha256.New()
	h.Write(prev[:])
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], round)
	h.Write(b[:])
	for _, id := range ids {
		binary.LittleEndian.PutUint64(b[:], id)
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], counts[id])
		h.Write(b[:])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
