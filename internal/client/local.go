package client

import (
	"eyewnder/internal/backend"
	"eyewnder/internal/blind"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
)

// LocalBackend adapts an in-process *backend.Backend to BackendAPI, so
// simulations and tests can run the full protocol without TCP.
type LocalBackend struct{ B *backend.Backend }

// Register implements BackendAPI.
func (l *LocalBackend) Register(user int, publicKey []byte) (int, error) {
	return l.B.Register(user, publicKey)
}

// Roster implements BackendAPI.
func (l *LocalBackend) Roster() ([][]byte, error) { return l.B.Roster(), nil }

// SubmitReport implements BackendAPI.
func (l *LocalBackend) SubmitReport(user int, round uint64, ks blind.Keystream, raw []byte) error {
	var cms sketch.CMS
	if err := cms.UnmarshalBinary(raw); err != nil {
		return err
	}
	return l.B.SubmitReport(&privacy.Report{User: user, Round: round, Sketch: &cms, Keystream: ks})
}

// SubmitReportCMS implements StreamingBackend: in-process, the sketch is
// handed to the back-end as-is — no marshal/unmarshal round-trip at all.
func (l *LocalBackend) SubmitReportCMS(user int, round uint64, ks blind.Keystream, cms *sketch.CMS) error {
	return l.B.SubmitReport(&privacy.Report{User: user, Round: round, Sketch: cms, Keystream: ks})
}

// RoundStatus implements BackendAPI.
func (l *LocalBackend) RoundStatus(round uint64) (int, []int, bool, error) {
	return l.B.RoundStatus(round)
}

// SubmitAdjustment implements BackendAPI.
func (l *LocalBackend) SubmitAdjustment(user int, round uint64, cells []uint64) error {
	return l.B.SubmitAdjustment(user, round, cells)
}

// Threshold implements BackendAPI.
func (l *LocalBackend) Threshold(round uint64) (float64, error) {
	return l.B.Threshold(round)
}

// AuditAd implements BackendAPI.
func (l *LocalBackend) AuditAd(round uint64, adID uint64) (uint64, error) {
	return l.B.AuditAd(round, adID)
}
