package experiments

import (
	"fmt"

	"eyewnder/internal/adsim"
	"eyewnder/internal/detector"
)

// Fig3Point is one x-position of Figure 3: the false-negative percentage
// at a given frequency cap, under the Mean and Mean+Median threshold
// estimators.
type Fig3Point struct {
	FrequencyCap    int
	FNMeanPct       float64
	FNMeanMedianPct float64
	// MeanConf and MeanMedianConf carry the full confusion matrices.
	MeanConf, MeanMedianConf Confusion
}

// Fig3Config parametrizes the sweep.
type Fig3Config struct {
	// Base is the simulation configuration (Table 1 by default).
	Base adsim.Config
	// Caps are the frequency-cap values to sweep (paper: 1..12).
	Caps []int
	// Repetitions averages each point over several seeds.
	Repetitions int
}

// DefaultFig3Config mirrors the paper: Table 1 base, caps 1..12.
func DefaultFig3Config() Fig3Config {
	caps := make([]int, 12)
	for i := range caps {
		caps[i] = i + 1
	}
	return Fig3Config{Base: adsim.DefaultConfig(), Caps: caps, Repetitions: 1}
}

// Fig3 runs the false-negatives-vs-frequency-cap sweep. Both estimators
// are applied to BOTH thresholds (#Users and #Domains), as in the figure.
func Fig3(cfg Fig3Config) ([]Fig3Point, error) {
	if cfg.Repetitions < 1 {
		cfg.Repetitions = 1
	}
	out := make([]Fig3Point, 0, len(cfg.Caps))
	for _, cap := range cfg.Caps {
		pt := Fig3Point{FrequencyCap: cap}
		for rep := 0; rep < cfg.Repetitions; rep++ {
			simCfg := cfg.Base
			simCfg.FrequencyCap = cap
			simCfg.Seed = cfg.Base.Seed + int64(rep)*1000 + int64(cap)
			sim, err := adsim.New(simCfg)
			if err != nil {
				return nil, err
			}
			res := sim.Run()
			mean := EvaluateWeek(sim, res, 0,
				detector.EstimatorMean, detector.EstimatorMean, 4)
			mm := EvaluateWeek(sim, res, 0,
				detector.EstimatorMeanPlusMedian, detector.EstimatorMeanPlusMedian, 4)
			pt.MeanConf.TP += mean.TP
			pt.MeanConf.FP += mean.FP
			pt.MeanConf.TN += mean.TN
			pt.MeanConf.FN += mean.FN
			pt.MeanConf.Unknown += mean.Unknown
			pt.MeanMedianConf.TP += mm.TP
			pt.MeanMedianConf.FP += mm.FP
			pt.MeanMedianConf.TN += mm.TN
			pt.MeanMedianConf.FN += mm.FN
			pt.MeanMedianConf.Unknown += mm.Unknown
		}
		pt.FNMeanPct = 100 * pt.MeanConf.FNRate()
		pt.FNMeanMedianPct = 100 * pt.MeanMedianConf.FNRate()
		out = append(out, pt)
	}
	return out, nil
}

// FPStudyResult is one configuration of the Section 7.2.2 false-positive
// study.
type FPStudyResult struct {
	// Label describes the configuration.
	Label string
	Conf  Confusion
	FPPct float64
}

// FPStudy runs the overlapping-static-campaign scenarios of Section
// 7.2.2: cohorts of users share interests (and therefore sites) that
// carry large static campaigns, so the same non-targeted ad follows them
// across domains. The paper reports FP below 2% over 30+ configurations;
// the sweep here varies cohort tightness, static reach, and inventory mix.
func FPStudy(base adsim.Config, configs int) ([]FPStudyResult, error) {
	if configs < 1 {
		configs = 30
	}
	out := make([]FPStudyResult, 0, configs)
	for i := 0; i < configs; i++ {
		cfg := base
		cfg.Seed = base.Seed + int64(i)*17
		// Vary the pressure: tighter interest cohorts, broader static
		// campaigns, thinner slots.
		cfg.InterestAffinity = 0.6 + 0.04*float64(i%10) // 0.6 .. 0.96
		cfg.StaticSitesMin = 20 + 10*(i%5)              // up to 60
		cfg.StaticSitesMax = cfg.StaticSitesMin + 100
		cfg.MinInterests = 1 + i%2
		cfg.MaxInterests = cfg.MinInterests + 1
		if cfg.StaticSitesMax > cfg.Sites {
			cfg.StaticSitesMax = cfg.Sites
		}
		sim, err := adsim.New(cfg)
		if err != nil {
			return nil, err
		}
		res := sim.Run()
		conf := EvaluateWeek(sim, res, 0, detector.EstimatorMean, detector.EstimatorMean, 4)
		out = append(out, FPStudyResult{
			Label: fmtLabel(cfg),
			Conf:  conf,
			FPPct: 100 * conf.FPRate(),
		})
	}
	return out, nil
}

func fmtLabel(cfg adsim.Config) string {
	return fmt.Sprintf("affinity=%.2f static=%d..%d interests=%d..%d",
		cfg.InterestAffinity, cfg.StaticSitesMin, cfg.StaticSitesMax,
		cfg.MinInterests, cfg.MaxInterests)
}
