// Package privacy composes the three cryptographic building blocks of
// Section 6 — the RSA OPRF (package oprf), the count-min sketch (package
// sketch), and additive shares of zero (package blind) — into eyeWnder's
// complete privacy-preserving distributed-counting protocol:
//
//  1. For each newly seen ad URL the client engages in an OPRF exchange
//     with the oprf-server and obtains an ad ID in [0, IDSpace). Without
//     the oprf key nobody can map an ID back to a URL.
//  2. The client encodes the *set* of ad IDs seen during the reporting
//     round into a CMS, blinds every cell with its share of zero, and
//     sends the blinded sketch to the back-end.
//  3. The back-end sums all blinded sketches cell-wise; the blindings
//     cancel and the aggregate CMS encodes the multiset union. Because
//     each client inserted each distinct ad at most once, querying the
//     aggregate for ad ID y estimates #Users(y) — the global counter the
//     count-based detector needs.
//  4. If some clients fail to report, the back-end publishes the missing
//     list and reporters answer with adjustment shares that restore
//     cancellation (two extra messages, as in the paper).
//
// The package also accounts for protocol overhead (report bytes, bulletin
// traffic) so the Section 7.1 experiments can be regenerated.
package privacy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"eyewnder/internal/blind"
	"eyewnder/internal/group"
	"eyewnder/internal/oprf"
	"eyewnder/internal/sketch"
	"eyewnder/internal/vec"
)

// Errors returned by the package.
var (
	ErrRoundMismatch     = errors.New("privacy: report for a different round")
	ErrDuplicate         = errors.New("privacy: duplicate report from user")
	ErrNoReports         = errors.New("privacy: no reports to aggregate")
	ErrNotFinalizable    = errors.New("privacy: missing adjustments not yet supplied")
	ErrKeystreamMismatch = errors.New("privacy: report blinded under a different keystream suite")
	// ErrIncompatibleConfig rejects a report (or a negotiated handshake)
	// whose round-config version differs from the round's. A stale
	// version means the reporter derived its blinding from an outdated
	// roster or protocol state; folding it in would silently break
	// blinding cancellation, so it is refused the way suite mismatches
	// are.
	ErrIncompatibleConfig = errors.New("privacy: report under an incompatible round-config version")
)

// Params fixes the protocol geometry shared by all participants.
type Params struct {
	// Epsilon and Delta size the CMS (w = ⌈e/ε⌉, d = ⌈ln(1/δ)⌉).
	Epsilon, Delta float64
	// IDSpace is the (over)estimated size of the global ad set |A|. Ad
	// IDs are OPRF outputs reduced into [0, IDSpace).
	IDSpace uint64
	// Suite is the DH group for blinding-key agreement.
	Suite group.Suite
	// Keystream selects how pairwise keys expand into blinding factors
	// (blind.KeystreamHMACSHA256 or blind.KeystreamAESCTR). It is
	// protocol state like the sketch geometry: every participant must
	// use the same suite, reports carry the byte, and the aggregator
	// rejects mismatches. The zero value is the original HMAC expansion.
	Keystream blind.Keystream
}

// DefaultParams mirrors the paper's configuration: ε = δ = 0.001 and a
// 100k ad-ID space, P-256 blinding keys.
func DefaultParams() Params {
	return Params{Epsilon: 0.001, Delta: 0.001, IDSpace: 100000, Suite: group.P256()}
}

// RoundConfig is the negotiated, versioned protocol state every roster
// member must agree on for aggregation to stay correct: the sketch
// geometry and blinding suite (Params), the roster the blindings cancel
// over (RosterVersion, RosterSize), and the config Version that names
// this exact combination. The server is the single source of truth — it
// advertises the current config in the wire-layer Welcome handshake and
// bumps Version whenever any component changes (in particular whenever a
// registration changes the roster) — and every report carries the
// version it was built under, so the aggregator can reject a stale
// reporter (ErrIncompatibleConfig) instead of silently corrupting the
// round.
//
// A RoundConfig is an immutable value: rounds pin the config they were
// opened under and never observe later bumps.
type RoundConfig struct {
	// Version is the config version. 0 means "unversioned": the legacy
	// flag-agreement deployment style, where reports carry no version and
	// only the geometry/suite checks apply.
	Version uint32
	// RosterVersion counts bulletin-board changes. Two reporters whose
	// roster versions differ derived different pairwise blinding sets;
	// their reports must never fold into the same round.
	RosterVersion uint32
	// RosterSize is the enrolled-user count (0 = unknown, client side
	// only — aggregators require it).
	RosterSize int
	// Params is the protocol geometry the config freezes.
	Params Params
}

// UnversionedConfig wraps legacy flag-derived Params in a version-0
// config: every report version is accepted (subject to the usual
// geometry and suite checks), which is exactly the old behavior.
func UnversionedConfig(params Params, rosterSize int) RoundConfig {
	return RoundConfig{RosterSize: rosterSize, Params: params}
}

// CompatibleReportVersion reports whether a report built under config
// version v may fold into a round pinned to this config. Version 0 on
// either side means "unversioned" (a legacy report, or a legacy round)
// and defers to the geometry/suite checks; otherwise the versions must
// match exactly.
func (c RoundConfig) CompatibleReportVersion(v uint32) bool {
	return v == 0 || c.Version == 0 || v == c.Version
}

// NewSketch allocates a CMS with the params' geometry.
func (p Params) NewSketch() (*sketch.CMS, error) {
	return sketch.New(p.Epsilon, p.Delta)
}

// AdID reduces a raw OPRF output into the ad-ID space.
func (p Params) AdID(oprfOutput []byte) uint64 {
	if len(oprfOutput) < 8 {
		panic("privacy: OPRF output too short")
	}
	return binary.LittleEndian.Uint64(oprfOutput[:8]) % p.IDSpace
}

// idBytes is the canonical CMS key encoding of an ad ID.
func idBytes(id uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], id)
	return b[:]
}

// Evaluator is the client's view of the oprf-server: it answers blinded
// requests. *oprf.Server satisfies it directly for in-process use; the
// wire layer provides a TCP-backed implementation.
type Evaluator interface {
	Evaluate(blinded *big.Int) (*big.Int, error)
}

// Client is one user's protocol endpoint.
type Client struct {
	cfg     RoundConfig
	party   *blind.Party
	oprfCli *oprf.Client
	eval    Evaluator
	// campaign scopes the client's reports to one counting campaign; 0
	// (the zero value) is the deployment's implicit legacy campaign.
	campaign uint32

	idCache map[string]uint64 // ad URL -> ad ID, computed once per unique ad
	seen    map[uint64]bool   // distinct ad IDs observed in the open round
	// OPRFExchanges counts round trips to the oprf-server, for overhead
	// accounting (the mapping is done once per unique ad, Section 7.1).
	OPRFExchanges int
}

// NewClient builds a protocol client for the user at the given roster
// position, under the given (typically server-negotiated) round config.
// Reports it produces carry cfg.Version, so a stale client is rejected
// by the aggregator instead of corrupting the round. oprfPub is the
// oprf-server's public key; eval performs the blinded evaluations.
func NewClient(cfg RoundConfig, party *blind.Party, oprfPub oprf.PublicKey, eval Evaluator) *Client {
	return &Client{
		cfg:     cfg,
		party:   party,
		oprfCli: oprf.NewClient(oprfPub, nil),
		eval:    eval,
		idCache: make(map[string]uint64),
		seen:    make(map[uint64]bool),
	}
}

// UserIndex returns the client's roster position.
func (c *Client) UserIndex() int { return c.party.Index() }

// ForCampaign returns a client view scoped to one counting campaign:
// its reports carry the campaign ID, its sketches use the campaign's
// geometry and ID space, and its blinding expands the campaign-derived
// pairwise keys under the campaign's keystream suite — so concurrent
// campaigns blind with independent pads over the same roster. params
// must be the campaign's resolved params (campaign.Params over the
// deployment base). The view keeps its own observation state (ad IDs
// depend on the campaign's ID space) but shares the roster-derived
// party material, so N campaigns cost one DH exchange, not N.
func (c *Client) ForCampaign(id uint32, params Params) *Client {
	cfg := c.cfg
	cfg.Params = params
	return &Client{
		cfg:      cfg,
		campaign: id,
		party:    c.party.ForCampaignKeystream(id, params.Keystream),
		oprfCli:  c.oprfCli,
		eval:     c.eval,
		idCache:  make(map[string]uint64),
		seen:     make(map[uint64]bool),
	}
}

// ObserveAd records that the user saw the ad with the given URL during the
// current round, resolving the ad ID through the OPRF on first encounter.
// Repeat observations of the same ad are deduplicated: the protocol counts
// users per ad, not impressions.
func (c *Client) ObserveAd(url string) (adID uint64, err error) {
	id, ok := c.idCache[url]
	if !ok {
		req, err := c.oprfCli.Blind([]byte(url))
		if err != nil {
			return 0, fmt.Errorf("privacy: blinding %q: %w", url, err)
		}
		resp, err := c.eval.Evaluate(req.Blinded)
		if err != nil {
			return 0, fmt.Errorf("privacy: oprf evaluation: %w", err)
		}
		out, err := c.oprfCli.Finalize(req, resp)
		if err != nil {
			return 0, fmt.Errorf("privacy: oprf finalize: %w", err)
		}
		c.OPRFExchanges++
		id = c.cfg.Params.AdID(out)
		c.idCache[url] = id
	}
	c.seen[id] = true
	return id, nil
}

// SeenCount reports how many distinct ads the client has recorded in the
// open round.
func (c *Client) SeenCount() int { return len(c.seen) }

// Report encodes the round's distinct ad IDs in a CMS, blinds it, and
// returns the report. The per-round observation set is then cleared, ready
// for the next weekly round.
func (c *Client) Report(round uint64) (*Report, error) {
	cms, err := c.cfg.Params.NewSketch()
	if err != nil {
		return nil, err
	}
	var key [8]byte
	for id := range c.seen {
		binary.LittleEndian.PutUint64(key[:], id)
		cms.Update(key[:])
	}
	cells := cms.FlatCells()
	if err := blind.ApplyBlinding(cells, c.party.Blinding(round, len(cells))); err != nil {
		return nil, err
	}
	c.seen = make(map[uint64]bool)
	return &Report{
		User:          c.party.Index(),
		Campaign:      c.campaign,
		Round:         round,
		Sketch:        cms,
		Keystream:     c.party.Keystream(),
		ConfigVersion: c.cfg.Version,
	}, nil
}

// Adjust produces the client's second-round adjustment share for the given
// missing users.
func (c *Client) Adjust(round uint64, cells int, missing []int) ([]uint64, error) {
	return c.party.Adjustment(round, cells, blind.MissingSet(missing))
}

// Report is one user's blinded sketch for a round. Keystream names the
// blinding suite the cells were expanded under (zero = HMAC-SHA256, the
// original): the aggregator rejects reports whose suite differs from the
// round's, because their pairwise terms would not cancel and would
// silently corrupt the aggregate for everyone. ConfigVersion names the
// negotiated round config the report was built under (0 = legacy,
// unversioned); the aggregator rejects stale versions the same way.
type Report struct {
	User          int
	Round         uint64
	Sketch        *sketch.CMS
	Keystream     blind.Keystream
	ConfigVersion uint32
	// Campaign is the counting campaign the report folds into. 0 — the
	// zero value — is the deployment's implicit legacy campaign, so
	// pre-campaign callers need not set it.
	Campaign uint32
}

// SizeBytes returns the wire size of the report payload assuming the given
// cell width in bytes (the paper assumes 4).
func (r *Report) SizeBytes(cellBytes int) int { return r.Sketch.SizeBytes(cellBytes) }

// Aggregator is the back-end's side of the protocol for a single round.
//
// Add and AddCells are safe for any number of concurrent callers: the
// duplicate/bookkeeping state lives under a short mutex, while the cell
// merge itself goes through a striped adder (vec.Striped) so reporters
// into the same round fold disjoint row ranges in parallel instead of
// convoying on one round lock. Finalize, ApplyAdjustments and the
// FlatCells reads they imply are NOT synchronized against in-flight
// Adds; the caller excludes them (the back-end holds a per-round RWMutex
// write lock across close, reporters hold the read side).
type Aggregator struct {
	cfg    RoundConfig
	round  uint64
	agg    *sketch.CMS
	merger *vec.Striped // striped view over agg's flat cells

	mu       sync.Mutex // guards reported, adjusted, and agg's weight total
	reported map[int]bool
	adjusted bool
}

// NewAggregator opens an aggregation round under the given round config
// (which fixes the geometry, the blinding suite, the roster size, and
// the config version every report must match), with the default merge
// striping (2×GOMAXPROCS).
func NewAggregator(cfg RoundConfig, round uint64) (*Aggregator, error) {
	return NewAggregatorStripes(cfg, round, 0)
}

// NewAggregatorStripes is NewAggregator with an explicit merge stripe
// count: 1 degenerates to a single merge lock (the baseline the
// contention benchmark compares against), 0 picks the default.
func NewAggregatorStripes(cfg RoundConfig, round uint64, stripes int) (*Aggregator, error) {
	cms, err := cfg.Params.NewSketch()
	if err != nil {
		return nil, err
	}
	return &Aggregator{
		cfg:      cfg,
		round:    round,
		agg:      cms,
		merger:   vec.NewStriped(cms.FlatCells(), stripes),
		reported: make(map[int]bool),
	}, nil
}

// Config returns the round config the aggregator was opened under.
func (a *Aggregator) Config() RoundConfig { return a.cfg }

// Add folds one blinded report into the aggregate. Safe for concurrent
// use with other Add/AddCells calls.
func (a *Aggregator) Add(r *Report) error {
	if err := a.Reserve(r); err != nil {
		return err
	}
	a.FoldReserved(r.Sketch.FlatCells())
	return nil
}

// AddCells folds a report that arrived as raw header fields plus a flat
// cell vector — the wire layer's streaming ingestion path, which decodes
// payloads into pooled slices instead of materializing a CMS. ks is the
// report's blinding-suite byte and cv its round-config version, both
// from the frame preamble; like the sketch geometry they must match the
// round's, or the report's pairwise terms would not cancel. The cells
// are consumed during the call and may be recycled by the caller as
// soon as it returns. Safe for concurrent use with other Add/AddCells
// calls.
func (a *Aggregator) AddCells(user int, d, w int, n, seed uint64, ks blind.Keystream, cv uint32, cells []uint64) error {
	if err := a.ReserveCells(user, d, w, n, seed, ks, cv, len(cells)); err != nil {
		return err
	}
	a.FoldReserved(cells)
	return nil
}

// Reserve is the validation-and-bookkeeping half of Add, split out so a
// caller can interpose a side effect — the back-end's write-ahead log
// append — between acceptance and the cell fold. On success the user's
// roster slot is taken and the report's weight counted; the caller MUST
// then either FoldReserved the cells or Unreserve the slot. Because the
// reservation is what serializes duplicate detection, anything logged
// after a successful Reserve is a report the aggregate will definitely
// absorb — which is exactly the invariant crash recovery replays on.
func (a *Aggregator) Reserve(r *Report) error {
	if r.Round != a.round {
		return ErrRoundMismatch
	}
	if !a.cfg.CompatibleReportVersion(r.ConfigVersion) {
		return ErrIncompatibleConfig
	}
	if r.Keystream != a.cfg.Params.Keystream {
		return ErrKeystreamMismatch
	}
	if r.Sketch == nil || !a.agg.SameLayout(r.Sketch) {
		return sketch.ErrDimensionMismatch
	}
	return a.reserve(r.User, r.Sketch.N())
}

// ReserveCells is Reserve for the streaming ingestion path's raw header
// fields (see AddCells). cellsLen is the report's flat cell count.
func (a *Aggregator) ReserveCells(user int, d, w int, n, seed uint64, ks blind.Keystream, cv uint32, cellsLen int) error {
	if !a.cfg.CompatibleReportVersion(cv) {
		return ErrIncompatibleConfig
	}
	if ks != a.cfg.Params.Keystream {
		return ErrKeystreamMismatch
	}
	if !a.agg.LayoutMatches(d, w, seed) || cellsLen != a.agg.Cells() {
		return sketch.ErrDimensionMismatch
	}
	return a.reserve(user, n)
}

// reserve runs the bookkeeping under the short lock: duplicate
// rejection, the reported-bitmap mark, and the weight total.
func (a *Aggregator) reserve(user int, n uint64) error {
	if user < 0 || user >= a.cfg.RosterSize {
		return fmt.Errorf("privacy: user %d outside roster of %d", user, a.cfg.RosterSize)
	}
	a.mu.Lock()
	if a.reported[user] {
		a.mu.Unlock()
		return ErrDuplicate
	}
	a.reported[user] = true
	a.agg.AddWeight(n)
	a.mu.Unlock()
	return nil
}

// FoldReserved merges a successfully reserved report's cells through
// the striped merger. The cells may be recycled as soon as it returns.
func (a *Aggregator) FoldReserved(cells []uint64) {
	a.merger.Add(cells)
}

// Unreserve rolls back a successful Reserve whose fold will not happen
// (the back-end uses it when the WAL append fails): the user's slot
// reopens and the report's weight is subtracted again.
func (a *Aggregator) Unreserve(user int, n uint64) {
	a.mu.Lock()
	delete(a.reported, user)
	a.agg.AddWeight(-n) // uint64 wrap-around: exact inverse of the reserve
	a.mu.Unlock()
}

// RestoreAggregatorStripes rebuilds an aggregation round from durably
// persisted state: the aggregate's flat cells (adopted, not copied),
// its update weight, the hash-seed base, and the reported bitmap. cfg
// is the round config the round was opened under — persisted alongside
// the cells, so a recovered round keeps rejecting stale config versions
// exactly as it did before the crash. The cell count must match the
// config's geometry — a mismatch means the persisted state was written
// under a different configuration, which can never be folded into
// safely. The restored aggregator enforces the same
// duplicate/suite/layout invariants as the original: a user who
// reported before the crash is still a duplicate after it.
func RestoreAggregatorStripes(cfg RoundConfig, round uint64, stripes int, cells []uint64, n, seed uint64, reported []bool) (*Aggregator, error) {
	d, w, err := sketch.Dimensions(cfg.Params.Epsilon, cfg.Params.Delta)
	if err != nil {
		return nil, err
	}
	if len(cells) != d*w {
		return nil, fmt.Errorf("privacy: restoring %d cells into a %dx%d geometry", len(cells), d, w)
	}
	cms, err := sketch.Restore(d, w, seed, n, cells)
	if err != nil {
		return nil, err
	}
	rep := make(map[int]bool, len(reported))
	for u, r := range reported {
		if u >= cfg.RosterSize {
			return nil, fmt.Errorf("privacy: restored bitmap covers %d users, roster is %d", len(reported), cfg.RosterSize)
		}
		if r {
			rep[u] = true
		}
	}
	return &Aggregator{
		cfg:      cfg,
		round:    round,
		agg:      cms,
		merger:   vec.NewStriped(cms.FlatCells(), stripes),
		reported: rep,
	}, nil
}

// Layout returns the aggregate's cell geometry and hash-seed base —
// the scalar header fields a durable store logs in a round-open record.
// Unlike SnapshotState it copies nothing.
func (a *Aggregator) Layout() (d, w int, seed uint64) {
	return a.agg.Depth(), a.agg.Width(), a.agg.Seed()
}

// SnapshotState copies the aggregator's durable state — geometry, hash
// seed, weight total, cell vector, and reported bitmap sized to the
// roster — for persistence. The caller must exclude concurrent
// Add/Fold calls (the back-end holds the round's write lock).
func (a *Aggregator) SnapshotState() (d, w int, seed, n uint64, ks blind.Keystream, cells []uint64, reported []bool) {
	cells = append([]uint64(nil), a.agg.FlatCells()...)
	reported = make([]bool, a.cfg.RosterSize)
	a.mu.Lock()
	for u := range a.reported {
		reported[u] = true
	}
	a.mu.Unlock()
	return a.agg.Depth(), a.agg.Width(), a.agg.Seed(), a.agg.N(), a.cfg.Params.Keystream, cells, reported
}

// Reported returns how many reports have been folded in.
func (a *Aggregator) Reported() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.reported)
}

// Missing lists the roster indices that have not reported — the list the
// back-end publishes to trigger the adjustment round.
func (a *Aggregator) Missing() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.missingLocked()
}

// missingLocked is Missing under a.mu.
func (a *Aggregator) missingLocked() []int {
	var out []int
	for i := 0; i < a.cfg.RosterSize; i++ {
		if !a.reported[i] {
			out = append(out, i)
		}
	}
	return out
}

// Progress returns the reported count and the missing list as ONE
// consistent observation: both come from the same critical section, so
// reported + len(missing) == RosterSize always holds. Separate
// Reported() and Missing() calls can each be correct yet disagree when
// a report folds in between them — a status poll racing submissions
// would then publish a torn view (say, reported=3 alongside a missing
// list of the other 2 in a 4-user roster).
func (a *Aggregator) Progress() (reported int, missing []int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.reported), a.missingLocked()
}

// HasReported reports whether the user's report has been folded into
// this round. The back-end uses it to validate adjustment uploads: a
// second-round share is the sum of the submitter's pairwise terms
// toward the missing users, so only a user whose (blinded) report is in
// the aggregate has anything meaningful to cancel.
func (a *Aggregator) HasReported(user int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reported[user]
}

// ApplyAdjustments subtracts the reporters' second-round shares, restoring
// blinding cancellation when some users are missing. Must not race with
// in-flight Adds (the back-end's round write lock guarantees this).
func (a *Aggregator) ApplyAdjustments(adjustments ...[]uint64) error {
	if err := blind.SubtractAdjustments(a.agg.FlatCells(), adjustments...); err != nil {
		return err
	}
	a.mu.Lock()
	a.adjusted = true
	a.mu.Unlock()
	return nil
}

// Finalize returns the unblinded aggregate CMS. It fails if reports are
// missing and no adjustment pass was applied — aggregating in that state
// would return uniform noise. Must not race with in-flight Adds.
func (a *Aggregator) Finalize() (*sketch.CMS, error) {
	a.mu.Lock()
	reported, adjusted := len(a.reported), a.adjusted
	a.mu.Unlock()
	if reported == 0 {
		return nil, ErrNoReports
	}
	if reported < a.cfg.RosterSize && !adjusted {
		return nil, ErrNotFinalizable
	}
	return a.agg.Clone(), nil
}

// FinalizeWithAdjustments returns the unblinded aggregate with the given
// second-round shares subtracted. The shares are applied to a clone, never
// to the live aggregate, so a failed close (bad share length, reports
// still missing) leaves the round untouched and safely retryable —
// ApplyAdjustments+Finalize by contrast mutates in place and would
// double-subtract on retry.
func (a *Aggregator) FinalizeWithAdjustments(adjustments ...[]uint64) (*sketch.CMS, error) {
	a.mu.Lock()
	reported, adjusted := len(a.reported), a.adjusted
	a.mu.Unlock()
	if reported == 0 {
		return nil, ErrNoReports
	}
	if reported < a.cfg.RosterSize && !adjusted && len(adjustments) == 0 {
		return nil, ErrNotFinalizable
	}
	out := a.agg.Clone()
	if err := blind.SubtractAdjustments(out.FlatCells(), adjustments...); err != nil {
		return nil, err
	}
	return out, nil
}

// UserCounts queries the aggregate sketch for every ad ID in [0, IDSpace)
// and returns the per-ID estimated user counts for IDs with a nonzero
// estimate. This is the enumeration step that the OPRF makes possible:
// the server can walk the whole ID space without learning any URL.
//
// The walk is the dominant cost of closing a round (IDSpace × d hashed
// queries), so the ID space is sharded across CPU cores; each worker
// queries its range allocation-free into a private map that is then folded
// into the result.
func UserCounts(agg *sketch.CMS, params Params) map[uint64]uint64 {
	out := make(map[uint64]uint64)
	var mu sync.Mutex
	vec.Parallel(int(params.IDSpace), 4096, func(lo, hi int) {
		local := make(map[uint64]uint64)
		var key [8]byte
		for id := lo; id < hi; id++ {
			binary.LittleEndian.PutUint64(key[:], uint64(id))
			if v := agg.Query(key[:]); v > 0 {
				local[uint64(id)] = v
			}
		}
		if len(local) == 0 {
			return
		}
		mu.Lock()
		for k, v := range local {
			out[k] = v
		}
		mu.Unlock()
	})
	return out
}

// QueryUsers estimates #Users for one ad ID.
func QueryUsers(agg *sketch.CMS, id uint64) uint64 {
	return agg.Query(idBytes(id))
}

// CleartextReportBytes estimates the cleartext alternative the paper
// compares against in Section 7.1: a vector of ad URLs, ~100 characters
// each, so a user who saw k unique ads uploads about 100·k bytes.
func CleartextReportBytes(uniqueAds int, avgURLLen int) int {
	return uniqueAds * avgURLLen
}
