#!/usr/bin/env bash
# Cross-version compatibility e2e for the wire protocol.
#
# Usage: compat_e2e.sh <mode> <old-bin-dir> <new-bin-dir>
#   mode old-client-new-server : the previous release's clients must
#        complete a full streamed-report round against the current
#        server. A pre-handshake client's reports decode as config
#        version 0 ("unversioned"); a handshake-era client lands in
#        campaign 0, the implicit legacy campaign.
#   mode new-client-old-server : the current zero-flag client against
#        the previous release's server. If the old server serves the
#        config handshake, the client must complete a full round — its
#        campaign-0 traffic is byte-identical to a single-campaign
#        release's. If the old server predates the handshake (drops
#        the Hello), the client must fail FAST and CLEANLY, naming
#        the handshake — never hang, never join, never submit.
#
# The previous release's era is detected from its client's own flag
# set: the pre-negotiation client took protocol flags (-total); the
# handshake-era client takes none.
#
# Both directions bind to fixed localhost ports; the script owns the
# processes it starts and kills them on exit.
set -euo pipefail

mode="$1"
old="$2"
new="$3"

BE=127.0.0.1:7861
OPRF=127.0.0.1:7862
log="$(mktemp -d)"
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
}
trap cleanup EXIT

wait_port() { # host:port
    local hp="$1" i
    for i in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/${hp%:*}/${hp#*:}") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.2
    done
    echo "server on $hp never came up" >&2
    return 1
}

# The pre-negotiation client mirrored the server geometry through
# protocol flags; its successors negotiate everything and define none
# of them. tflag carries the era difference, old_era remembers it.
old_era=0
tflag=""
if "$old/eyewnder-client" -h 2>&1 | grep -q -- '-total'; then
    old_era=1
    tflag="-total 3"
fi

case "$mode" in
old-client-new-server)
    # Current server, 3-user roster; the old clients either mirror its
    # default geometry through their own default flags (pre-handshake
    # era) or negotiate it (handshake era, reporting into campaign 0).
    "$new/eyewnder-server" -backend "$BE" -oprf "$OPRF" -users 3 >"$log/server.log" 2>&1 &
    pids+=($!)
    wait_port "$BE"
    # shellcheck disable=SC2086 # tflag is deliberately word-split
    "$old/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 0 $tflag -visits 10 >"$log/c0.log" 2>&1 &
    c0=$!
    "$old/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 1 $tflag -visits 10 >"$log/c1.log" 2>&1 &
    c1=$!
    if ! "$old/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 2 $tflag -visits 10 -close >"$log/c2.log" 2>&1; then
        echo "old client failed against new server:" >&2
        tail -n 20 "$log"/c2.log "$log"/server.log >&2
        exit 1
    fi
    wait "$c0" "$c1"
    grep -q "closed: Users_th" "$log/c2.log"
    echo "OK: previous release's clients completed a round against the current server"
    ;;

new-client-old-server)
    "$old/eyewnder-server" -backend "$BE" -oprf "$OPRF" -users 3 >"$log/server.log" 2>&1 &
    pids+=($!)
    wait_port "$BE"
    if [ "$old_era" = 1 ]; then
        # Pre-handshake old server: the new client must exit nonzero
        # quickly with the handshake error, not hang waiting for a
        # roster it can never negotiate.
        set +e
        timeout 30 "$new/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 0 >"$log/c.log" 2>&1
        rc=$?
        set -e
        if [ "$rc" -eq 0 ]; then
            echo "new client unexpectedly succeeded against the old server" >&2
            exit 1
        fi
        if [ "$rc" -eq 124 ]; then
            echo "new client HUNG against the old server (timeout)" >&2
            tail -n 20 "$log/c.log" >&2
            exit 1
        fi
        if ! grep -qi "handshake" "$log/c.log"; then
            echo "new client failed without naming the handshake:" >&2
            tail -n 20 "$log/c.log" >&2
            exit 1
        fi
        echo "OK: current client failed cleanly against the previous release's server"
    else
        # Handshake-era old server: the new client's campaign-0 traffic
        # is byte-identical to a single-campaign release's, so a full
        # roster round must complete against the old binary.
        "$new/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 0 -visits 10 >"$log/c0.log" 2>&1 &
        c0=$!
        "$new/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 1 -visits 10 >"$log/c1.log" 2>&1 &
        c1=$!
        if ! "$new/eyewnder-client" -backend "$BE" -oprf "$OPRF" -user 2 -visits 10 -close >"$log/c2.log" 2>&1; then
            echo "new client failed against the previous release's server:" >&2
            tail -n 20 "$log"/c2.log "$log"/server.log >&2
            exit 1
        fi
        wait "$c0" "$c1"
        grep -q "closed: Users_th" "$log/c2.log"
        echo "OK: current clients completed a round against the previous release's server"
    fi
    ;;

*)
    echo "unknown mode $mode" >&2
    exit 2
    ;;
esac
