package adsim

import (
	"fmt"
	"math/rand"
	"strings"
)

// RenderStyle selects how an ad slot embeds its landing URL — one per
// landing-page-detection heuristic of Section 5.
type RenderStyle uint8

// Render styles.
const (
	// RenderHref wraps the creative in <a href="landing">.
	RenderHref RenderStyle = iota
	// RenderOnclick attaches the landing URL to an onclick handler that
	// redirects through a JS helper (footnote 3).
	RenderOnclick
	// RenderScript leaves the URL inside an accompanying <script> body.
	RenderScript
)

// RenderPage produces the HTML a user's browser would receive for one
// visit: editorial filler plus one ad slot per shown campaign, each
// rendered with a rotating embedding style. It exists to exercise the
// full extension pipeline (htmlscan → addetect → reporting) against
// simulator ground truth.
func RenderPage(site *Site, shown []*Campaign, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n", site.Domain)
	fmt.Fprintf(&b, "<h1>%s news</h1>\n", site.Topic)
	for i := 0; i < 3+rng.Intn(5); i++ {
		fmt.Fprintf(&b, "<p>Editorial paragraph %d about %s.</p>\n", i, site.Topic)
	}
	for i, c := range shown {
		style := RenderStyle(i % 3)
		b.WriteString(RenderAdSlot(c, style, rng.Int63()))
		b.WriteString("\n")
	}
	b.WriteString("</body></html>")
	return b.String()
}

// RenderAdSlot renders one campaign's ad markup in the given style.
func RenderAdSlot(c *Campaign, style RenderStyle, nonce int64) string {
	creative := c.AdURL()
	landing := c.LandingURL()
	switch style {
	case RenderOnclick:
		return fmt.Sprintf(
			`<div class="adbox" onclick="adClick('%s', %d)"><img src="%s" alt="ad %d"></div>`,
			landing, nonce, creative, c.ID)
	case RenderScript:
		return fmt.Sprintf(
			`<div id="gpt-ad-%d"><img src="%s" alt="ad %d"><script>var lp=%q;bind(lp);</script></div>`,
			c.ID, creative, c.ID, landing)
	default:
		return fmt.Sprintf(
			`<div class="ad-slot"><a href="%s"><img src="%s" alt="ad %d"></a></div>`,
			landing, creative, c.ID)
	}
}
