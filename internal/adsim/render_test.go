package adsim

import (
	"testing"

	"eyewnder/internal/addetect"
	"eyewnder/internal/taxonomy"
)

func TestRenderedPagesRoundTripThroughDetector(t *testing.T) {
	// The extension pipeline must recover every campaign's landing URL
	// from rendered pages, whichever embedding style the page uses.
	site := &Site{ID: 3, Domain: "www.sports-3.example", Topic: taxonomy.Sports}
	campaigns := []*Campaign{
		{ID: 10, Kind: KindTargeted, Category: taxonomy.Sports},
		{ID: 11, Kind: KindStatic, Category: taxonomy.Cars},
		{ID: 12, Kind: KindContextual, Category: taxonomy.Sports},
	}
	page := RenderPage(site, campaigns, 42)
	ads := addetect.New(nil).Scan(page)
	if len(ads) != len(campaigns) {
		t.Fatalf("detected %d ads, want %d\npage:\n%s", len(ads), len(campaigns), page)
	}
	found := map[string]bool{}
	for _, ad := range ads {
		found[ad.LandingURL] = true
	}
	for _, c := range campaigns {
		if !found[c.LandingURL()] {
			t.Fatalf("landing %q not recovered (methods: %v)", c.LandingURL(), found)
		}
	}
}

func TestRenderAdSlotStyles(t *testing.T) {
	c := &Campaign{ID: 7, Kind: KindTargeted, Category: taxonomy.Travel}
	d := addetect.New(nil)
	for style, wantMethod := range map[RenderStyle]string{
		RenderHref:    "href",
		RenderOnclick: "onclick",
		RenderScript:  "script",
	} {
		html := "<html><body>" + RenderAdSlot(c, style, 1) + "</body></html>"
		ads := d.Scan(html)
		if len(ads) != 1 {
			t.Fatalf("style %d: %d ads\n%s", style, len(ads), html)
		}
		if ads[0].Method != wantMethod {
			t.Fatalf("style %d: method %q, want %q", style, ads[0].Method, wantMethod)
		}
		if ads[0].LandingURL != c.LandingURL() {
			t.Fatalf("style %d: landing %q", style, ads[0].LandingURL)
		}
	}
}

func TestRenderDeterministicForSeed(t *testing.T) {
	site := &Site{ID: 1, Domain: "www.food-1.example", Topic: taxonomy.Food}
	cs := []*Campaign{{ID: 1, Category: taxonomy.Food}}
	if RenderPage(site, cs, 9) != RenderPage(site, cs, 9) {
		t.Fatal("rendering not deterministic")
	}
}
