// Indirect-targeting example: the paper's headline capability. A dating
// ad is targeted at computer enthusiasts — zero semantic overlap between
// audience and offering, so the content-based baseline cannot see it.
// The count-based detector flags it anyway, because counting is blind to
// semantics: the ad follows few users across many domains.
package main

import (
	"fmt"
	"log"
	"time"

	"eyewnder"
	"eyewnder/internal/contentbased"
	"eyewnder/internal/taxonomy"
)

func main() {
	params := eyewnder.Params{Epsilon: 0.01, Delta: 0.01, IDSpace: 10000,
		Suite: eyewnder.DefaultParams().Suite}
	sys, err := eyewnder.NewSystem(eyewnder.SystemConfig{
		Users: 5, Params: &params, RSABits: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}

	// User 0 is the computer enthusiast. The indirect campaign: a DATING
	// offer, targeted at the computers segment (the paper's example (1)).
	const datingAd = "https://lonely-hearts.example/dating/meet-someone"
	const techAd = "https://gadget-shop.example/computers/deal"
	adSlot := func(landing, creative string) string {
		return `<div class="ad-slot"><a href="` + landing + `"><img src="` + creative + `"></a></div>`
	}

	t0 := time.Date(2019, 3, 4, 9, 0, 0, 0, time.UTC)
	profile := contentbased.NewProfile()
	for site := 0; site < 6; site++ {
		domain := fmt.Sprintf("www.computers-%d.example", site)
		profile.VisitSite(domain, taxonomy.Computers)
		at := t0.Add(time.Duration(site) * 10 * time.Hour)
		// The dating ad chases user 0 across every tech site; a broad
		// contextual tech ad shows to all users.
		page0 := "<html><body>" +
			adSlot(datingAd, "https://ads.adx1.example/creative/1") +
			adSlot(techAd, "https://ads.adx2.example/creative/2") + "</body></html>"
		pageRest := "<html><body>" +
			adSlot(techAd, "https://ads.adx2.example/creative/2") + "</body></html>"
		for i, ext := range sys.Extensions {
			html := pageRest
			if i == 0 {
				html = page0
			}
			if _, err := ext.VisitPage(domain, html, at); err != nil {
				log.Fatal(err)
			}
		}
	}

	const round = 1
	if err := sys.SubmitAllReports(round); err != nil {
		log.Fatal(err)
	}
	if _, _, err := sys.CloseRound(round); err != nil {
		log.Fatal(err)
	}

	// The content-based baseline: the user profiles as "computers"; the
	// dating ad shares no semantic overlap, so CB says non-targeted.
	cb := contentbased.New(3)
	datingCat, _ := contentbased.LandingCategory(datingAd)
	fmt.Printf("content-based baseline on the dating ad:  targeted=%v (overlap=%v)\n",
		cb.IsTargeted(profile, datingCat),
		cb.HasSemanticOverlap(profile, datingCat))

	// eyeWnder's count-based audit flags it regardless.
	now := t0.Add(5 * 24 * time.Hour)
	v, err := sys.Extensions[0].AuditAd(datingAd, round, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eyeWnder count-based audit:                %s (#domains=%d ≥ %.1f, #users=%d ≤ %.1f)\n",
		v.Class, v.DomainCount, v.DomainsThreshold, v.UserCount, v.UsersThreshold)
	v, err = sys.Extensions[0].AuditAd(techAd, round, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(control) broad tech ad:                   %s\n", v.Class)
}
