package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"syscall"
)

// The config handshake: a typed Hello/Welcome exchange at connection
// open that makes the server the single source of truth for protocol
// state. Before it existed, every roster member had to be launched with
// flags matching every other binary (-epsilon/-delta/-id-space,
// -keystream, the roster size); one operator typo meant a report whose
// geometry or blinding suite silently disagreed with the round's. Now a
// client sends a Hello frame as its first exchange and the server
// answers with a Welcome carrying the full negotiated round config —
// sketch geometry, ad-ID space, blinding-keystream suite, roster
// version + size, Users_th estimator policy, and ack-batch policy —
// stamped with a config version. The client adopts the advertised
// config wholesale and stamps the version into every report preamble;
// the aggregator rejects stale versions (privacy.ErrIncompatibleConfig)
// instead of corrupting the round.
//
// Framing: both directions reuse the top-bit binary frame convention of
// stream.go (header word, top bit set, low 31 bits = payload length).
// The payloads are magic-tagged and fixed-size, and their lengths are
// deliberately distinguishable from every other top-bit frame: a report
// frame's payload is ≥ reportPreamble (56) bytes, a flush marker's is
// 0, a Hello's is exactly helloPayload (16), and a Welcome only ever
// travels server→client in direct response to a Hello.
//
//	Hello   (client → server):  magic "EYWHELO1" (8) ‖ minRev(4, LE) ‖ maxRev(4, LE)
//	Welcome (server → client):  magic "EYWWELC1" (8) ‖ status(1) ‖ rev(4)
//	                            ‖ configVersion(4) ‖ rosterVersion(4)
//	                            ‖ rosterSize(4) ‖ epsilon(8, IEEE 754 bits)
//	                            ‖ delta(8) ‖ idSpace(8) ‖ keystream(1)
//	                            ‖ group(1) ‖ estimator(1) ‖ ackBatch(4)
//	                            ‖ reserved(8)
//
// [minRev, maxRev] is the handshake-revision range the client speaks;
// the server answers within it or rejects with WelcomeIncompatible. An
// old server predating the handshake treats the Hello as a malformed
// report frame and drops the connection — the client surfaces that as
// ErrNoHandshake rather than hanging. An old client simply never sends
// a Hello and keeps using the flag-agreement deployment style (its
// reports carry config version 0, which rounds accept subject to the
// geometry/suite checks).

// HandshakeRevision is the Hello/Welcome revision this build speaks.
const HandshakeRevision = 1

// Handshake frame magics.
const (
	helloMagic   = "EYWHELO1"
	welcomeMagic = "EYWWELC1"
)

// Payload sizes. helloPayload is load-bearing: it is how serveConn
// tells a Hello apart from a report frame (whose payload is ≥
// reportPreamble) and a flush marker (0).
const (
	helloPayload   = 16
	welcomePayload = 64
)

// Welcome status codes.
const (
	// WelcomeOK: the frame carries the advertised round config.
	WelcomeOK = 0
	// WelcomeNoConfig: the server speaks the handshake but has no round
	// config to advertise (e.g. a bare wire.Server with no backend).
	WelcomeNoConfig = 1
	// WelcomeIncompatible: no common handshake revision.
	WelcomeIncompatible = 2
)

// Group suite identifiers advertised in the Welcome.
const (
	// GroupP256 is NIST P-256 Diffie–Hellman blinding keys (the only
	// suite currently deployed).
	GroupP256 = 0
)

// Errors of the handshake.
var (
	// ErrBadHelloFrame marks a malformed Hello payload.
	ErrBadHelloFrame = errors.New("wire: malformed hello frame")
	// ErrBadWelcomeFrame marks a malformed Welcome frame.
	ErrBadWelcomeFrame = errors.New("wire: malformed welcome frame")
	// ErrNoHandshake is returned by Client.Handshake when the server
	// dropped the connection on the Hello — the signature of a release
	// that predates the config handshake.
	ErrNoHandshake = errors.New("wire: server does not speak the config handshake (older release?)")
	// ErrNoConfig is returned by Client.Handshake when the server
	// answered WelcomeNoConfig.
	ErrNoConfig = errors.New("wire: server has no round config to advertise")
	// ErrIncompatibleHandshake is returned by Client.Handshake when the
	// server answered WelcomeIncompatible.
	ErrIncompatibleHandshake = errors.New("wire: no common handshake revision with server")
)

// ConfigFrame is the negotiated round config as it travels in a Welcome
// frame: everything a client needs to participate in aggregation
// without any operator-supplied protocol flag.
type ConfigFrame struct {
	// ConfigVersion names this exact config; reports carry it and the
	// aggregator rejects stale versions.
	ConfigVersion uint32
	// RosterVersion counts bulletin-board changes; RosterSize is the
	// enrolled-user count.
	RosterVersion uint32
	RosterSize    uint32
	// Epsilon and Delta fix the CMS geometry; IDSpace the ad-ID space.
	Epsilon, Delta float64
	IDSpace        uint64
	// Keystream is the blinding-suite byte (blind.Keystream) and Group
	// the DH group identifier (GroupP256).
	Keystream byte
	Group     byte
	// Estimator is the Users_th estimator policy byte
	// (detector.Estimator) the server applies at round close —
	// advertised so clients know how the published threshold is derived.
	Estimator byte
	// AckBatch is the server's streamed-report ack-batch policy: 0 =
	// adaptive per connection, k ≥ 1 = fixed.
	AckBatch uint32
	// Campaigns is the number of provisioned campaigns beyond the
	// implicit campaign 0, riding in two formerly reserved Welcome
	// bytes. A nonzero count invites the client to fetch the campaign
	// directory (CampaignDirectory); single-campaign servers wrote
	// zeros there, so old peers read "no extra campaigns" — exactly
	// their world — and old clients ignore the bytes entirely.
	Campaigns uint16
}

// WriteHelloFrame writes a Hello advertising the revision range
// [HandshakeRevision, HandshakeRevision].
func WriteHelloFrame(w io.Writer) error {
	var buf [4 + helloPayload]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(helloPayload)|reportFlag)
	copy(buf[4:], helloMagic)
	binary.LittleEndian.PutUint32(buf[12:], HandshakeRevision)
	binary.LittleEndian.PutUint32(buf[16:], HandshakeRevision)
	_, err := w.Write(buf[:])
	return err
}

// ReadHelloFrame reads a Hello payload (header word already consumed)
// and returns the client's supported revision range. Exported so the
// fuzz harness exercises exactly the decoder the server runs.
func ReadHelloFrame(r io.Reader) (minRev, maxRev uint32, err error) {
	var buf [helloPayload]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: short payload: %v", ErrBadHelloFrame, err)
	}
	if string(buf[:8]) != helloMagic {
		return 0, 0, fmt.Errorf("%w: bad magic", ErrBadHelloFrame)
	}
	minRev = binary.LittleEndian.Uint32(buf[8:])
	maxRev = binary.LittleEndian.Uint32(buf[12:])
	if minRev == 0 || maxRev < minRev {
		return 0, 0, fmt.Errorf("%w: revision range [%d, %d]", ErrBadHelloFrame, minRev, maxRev)
	}
	return minRev, maxRev, nil
}

// WriteWelcomeFrame writes a Welcome with the given status and (for
// WelcomeOK) config.
func WriteWelcomeFrame(w io.Writer, status byte, cfg ConfigFrame) error {
	var buf [4 + welcomePayload]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(welcomePayload)|reportFlag)
	p := buf[4:]
	copy(p, welcomeMagic)
	p[8] = status
	binary.LittleEndian.PutUint32(p[9:], HandshakeRevision)
	binary.LittleEndian.PutUint32(p[13:], cfg.ConfigVersion)
	binary.LittleEndian.PutUint32(p[17:], cfg.RosterVersion)
	binary.LittleEndian.PutUint32(p[21:], cfg.RosterSize)
	binary.LittleEndian.PutUint64(p[25:], math.Float64bits(cfg.Epsilon))
	binary.LittleEndian.PutUint64(p[33:], math.Float64bits(cfg.Delta))
	binary.LittleEndian.PutUint64(p[41:], cfg.IDSpace)
	p[49] = cfg.Keystream
	p[50] = cfg.Group
	p[51] = cfg.Estimator
	binary.LittleEndian.PutUint32(p[52:], cfg.AckBatch)
	binary.LittleEndian.PutUint16(p[56:], cfg.Campaigns)
	// p[58:64] reserved, zero.
	_, err := w.Write(buf[:])
	return err
}

// ReadWelcomeFrame reads one Welcome frame (header word included) and
// returns its status and config.
func ReadWelcomeFrame(r io.Reader) (status byte, cfg ConfigFrame, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, cfg, err
	}
	word := binary.BigEndian.Uint32(hdr[:])
	if word&reportFlag == 0 || word&^reportFlag != welcomePayload {
		return 0, cfg, fmt.Errorf("%w: header %#08x", ErrBadWelcomeFrame, word)
	}
	var p [welcomePayload]byte
	if _, err := io.ReadFull(r, p[:]); err != nil {
		return 0, cfg, fmt.Errorf("%w: short payload: %v", ErrBadWelcomeFrame, err)
	}
	if string(p[:8]) != welcomeMagic {
		return 0, cfg, fmt.Errorf("%w: bad magic", ErrBadWelcomeFrame)
	}
	status = p[8]
	cfg = ConfigFrame{
		ConfigVersion: binary.LittleEndian.Uint32(p[13:]),
		RosterVersion: binary.LittleEndian.Uint32(p[17:]),
		RosterSize:    binary.LittleEndian.Uint32(p[21:]),
		Epsilon:       math.Float64frombits(binary.LittleEndian.Uint64(p[25:])),
		Delta:         math.Float64frombits(binary.LittleEndian.Uint64(p[33:])),
		IDSpace:       binary.LittleEndian.Uint64(p[41:]),
		Keystream:     p[49],
		Group:         p[50],
		Estimator:     p[51],
		AckBatch:      binary.LittleEndian.Uint32(p[52:]),
		Campaigns:     binary.LittleEndian.Uint16(p[56:]),
	}
	return status, cfg, nil
}

// answerHello consumes a Hello payload (header word already read by
// serveConn) and responds with the advertised config — or
// WelcomeNoConfig when the server has none, or WelcomeIncompatible when
// the revision ranges do not overlap. A malformed Hello is a framing
// error: the stream position is unknown, so the connection drops.
func (s *Server) answerHello(conn net.Conn, wmu *sync.Mutex) error {
	minRev, maxRev, err := ReadHelloFrame(conn)
	if err != nil {
		return err
	}
	m := s.metrics()
	status, cfg := byte(WelcomeOK), ConfigFrame{}
	switch {
	case minRev > HandshakeRevision || maxRev < HandshakeRevision:
		status = WelcomeIncompatible
		m.handshakeRejected.Inc()
	case s.opts.Config == nil:
		status = WelcomeNoConfig
	default:
		cfg = s.opts.Config()
	}
	m.handshakes.Inc()
	wmu.Lock()
	defer wmu.Unlock()
	return WriteWelcomeFrame(conn, status, cfg)
}

// Handshake performs the Hello/Welcome exchange and returns the round
// config the server advertises. It shares the connection's
// request/response discipline with Do (ErrStreaming while a
// ReportStream is open). Against a server predating the handshake the
// connection is dropped; that surfaces as ErrNoHandshake — callers
// should treat the connection as dead afterwards.
func (c *Client) Handshake() (ConfigFrame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return ConfigFrame{}, ErrClosed
	}
	if c.streaming {
		return ConfigFrame{}, ErrStreaming
	}
	if err := WriteHelloFrame(c.conn); err != nil {
		return ConfigFrame{}, err
	}
	status, cfg, err := c.readWelcome()
	if err != nil {
		return ConfigFrame{}, err
	}
	switch status {
	case WelcomeOK:
		return cfg, nil
	case WelcomeNoConfig:
		return ConfigFrame{}, ErrNoConfig
	case WelcomeIncompatible:
		return ConfigFrame{}, ErrIncompatibleHandshake
	}
	return ConfigFrame{}, fmt.Errorf("%w: status %d", ErrBadWelcomeFrame, status)
}

// readWelcome reads the Welcome, mapping a dropped connection — EOF or
// a connection reset right after the Hello — to ErrNoHandshake: an old
// server treats the Hello as a malformed report frame and hangs up.
// Other failures (timeouts, transient network errors against a
// perfectly handshake-capable server) pass through unchanged, so the
// operator is not sent down a wrong-version debugging path by a blip.
func (c *Client) readWelcome() (byte, ConfigFrame, error) {
	status, cfg, err := ReadWelcomeFrame(c.conn)
	if err != nil && !errors.Is(err, ErrBadWelcomeFrame) && isConnDropped(err) {
		return 0, cfg, fmt.Errorf("%w: %v", ErrNoHandshake, err)
	}
	return status, cfg, err
}

// isConnDropped reports whether err is the signature of the peer
// closing the connection on us: EOF (clean close), an unexpected EOF
// mid-frame, or a connection reset.
func isConnDropped(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE)
}
