package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestReplHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReplHello(&buf); err != nil {
		t.Fatalf("WriteReplHello: %v", err)
	}
	rev, err := ReadReplHello(&buf)
	if err != nil {
		t.Fatalf("ReadReplHello: %v", err)
	}
	if rev != ReplRevision {
		t.Fatalf("revision = %d, want %d", rev, ReplRevision)
	}
}

func TestReplHelloRejects(t *testing.T) {
	cases := map[string][]byte{
		"short":        []byte("EYWNREPL"),
		"bad magic":    append([]byte("NOTMAGIC"), 0, 0, 0, 1),
		"bad revision": append([]byte(ReplMagic), 0, 0, 0, 99),
	}
	for name, raw := range cases {
		if _, err := ReadReplHello(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReplFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, body := range bodies {
		if err := WriteReplFrame(&buf, byte(i+1), body); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	var scratch []byte
	for i, want := range bodies {
		kind, body, nbuf, err := ReadReplFrame(&buf, scratch)
		scratch = nbuf
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if kind != byte(i+1) || !bytes.Equal(body, want) {
			t.Fatalf("frame %d: kind %d body %d bytes", i, kind, len(body))
		}
	}
	if _, _, _, err := ReadReplFrame(&buf, scratch); err != io.EOF {
		t.Fatalf("tail read err = %v, want EOF", err)
	}
}

func TestReplFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReplFrame(&buf, ReplChunk, []byte("some chunk data")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for bit := 0; bit < len(raw); bit++ {
		mut := append([]byte(nil), raw...)
		mut[bit] ^= 0x40
		_, body, _, err := ReadReplFrame(bytes.NewReader(mut), nil)
		if err == nil && bytes.Equal(body, []byte("some chunk data")) {
			continue // flipped a bit that round-trips (kind byte covered by CRC, so it can't)
		}
		if err == nil {
			t.Fatalf("bit %d: corruption accepted", bit)
		}
	}
}

func TestReplManifestRoundTrip(t *testing.T) {
	files := []ReplFileInfo{
		{FileKind: 2, Gen: 3, Size: 1234, Sealed: true},
		{FileKind: 1, Gen: 3, Size: 99, Sealed: true},
		{FileKind: 1, Gen: 4, Size: 8, Sealed: false},
	}
	got, err := DecodeReplManifest(EncodeReplManifest(files))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(files) {
		t.Fatalf("%d entries, want %d", len(got), len(files))
	}
	for i := range files {
		if got[i] != files[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], files[i])
		}
	}
	if empty, err := DecodeReplManifest(EncodeReplManifest(nil)); err != nil || len(empty) != 0 {
		t.Fatalf("empty manifest: %v %v", empty, err)
	}
}

func TestReplManifestRejectsMalformed(t *testing.T) {
	if _, err := DecodeReplManifest([]byte{0, 0}); err == nil {
		t.Error("short manifest accepted")
	}
	body := EncodeReplManifest([]ReplFileInfo{{FileKind: 1, Gen: 1, Size: 10, Sealed: true}})
	if _, err := DecodeReplManifest(body[:len(body)-1]); err == nil {
		t.Error("truncated manifest accepted")
	}
}

func TestReplFetchRoundTrip(t *testing.T) {
	req := ReplFetchReq{FileKind: 1, Gen: 7, Off: 4096, MaxLen: 1 << 20}
	got, err := DecodeReplFetch(EncodeReplFetch(req))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != req {
		t.Fatalf("%+v != %+v", got, req)
	}
	if _, err := DecodeReplFetch([]byte{1, 2, 3}); err == nil {
		t.Error("short fetch accepted")
	}
}

// FuzzReadReplFrame throws arbitrary bytes at the repl frame decoder:
// it must never panic, and whatever it accepts must re-encode to the
// bytes it consumed (the frame codec is bijective on valid frames).
func FuzzReadReplFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteReplFrame(&seed, ReplManifestReq, nil)
	WriteReplFrame(&seed, ReplManifest, EncodeReplManifest([]ReplFileInfo{{FileKind: 1, Gen: 1, Size: 8}}))
	WriteReplFrame(&seed, ReplFetch, EncodeReplFetch(ReplFetchReq{FileKind: 1, Gen: 1, MaxLen: 64}))
	WriteReplFrame(&seed, ReplChunk, append([]byte{ReplChunkEOF}, []byte("data")...))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for {
			kind, body, nbuf, err := ReadReplFrame(r, buf)
			buf = nbuf
			if err != nil {
				if errors.Is(err, ErrReplProto) || err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				return
			}
			var re bytes.Buffer
			if err := WriteReplFrame(&re, kind, body); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			// The re-encoded frame must be parseable back to the same kind/body.
			k2, b2, _, err := ReadReplFrame(&re, nil)
			if err != nil || k2 != kind || !bytes.Equal(b2, body) {
				t.Fatalf("round trip diverged: %v", err)
			}
		}
	})
}
