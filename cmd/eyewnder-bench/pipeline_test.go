package main

import (
	"strings"
	"testing"
)

// A baseline row with no counterpart in the fresh report must fail the
// gate: renaming a benchmark must not silently dodge its regression
// check.
func TestCheckRegressionsMissingBaselineRow(t *testing.T) {
	rep := &pipelineReport{
		Benchmarks: map[string]pipelineResult{
			"kept": {NsPerOp: 1, AllocsPerOp: 1, BytesPerOp: 1},
		},
		Baseline: map[string]pipelineResult{
			"kept":    {NsPerOp: 1, AllocsPerOp: 1, BytesPerOp: 1},
			"renamed": {NsPerOp: 1, AllocsPerOp: 1, BytesPerOp: 1},
		},
	}
	err := checkRegressions(rep, 30, 300)
	if err == nil {
		t.Fatal("missing baseline row passed the gate")
	}
	delete(rep.Baseline, "renamed")
	if err := checkRegressions(rep, 30, 300); err != nil {
		t.Fatalf("clean report failed the gate: %v", err)
	}
}

func TestCheckRegressionsThresholds(t *testing.T) {
	rep := &pipelineReport{
		Benchmarks: map[string]pipelineResult{
			"hot": {NsPerOp: 100, AllocsPerOp: 20, BytesPerOp: 1000},
		},
		Baseline: map[string]pipelineResult{
			"hot": {NsPerOp: 100, AllocsPerOp: 10, BytesPerOp: 1000},
		},
	}
	// Allocs doubled: beyond a 30% threshold.
	err := checkRegressions(rep, 30, 300)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("alloc regression passed the gate: %v", err)
	}
	// Within a 150% threshold it is tolerated.
	if err := checkRegressions(rep, 150, 300); err != nil {
		t.Fatalf("tolerated regression failed the gate: %v", err)
	}
	// New benchmarks (no baseline row) never fail the gate.
	rep.Benchmarks["fresh"] = pipelineResult{NsPerOp: 1, AllocsPerOp: 99, BytesPerOp: 99}
	if err := checkRegressions(rep, 150, 300); err != nil {
		t.Fatalf("new benchmark failed the gate: %v", err)
	}
}
