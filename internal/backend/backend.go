// Package backend implements eyeWnder's back-end server (Figure 1): it
// hosts the bulletin board of blinding public keys, collects blinded CMS
// reports, runs the missing-client adjustment round, unblinds the weekly
// aggregate, computes the global Users_th threshold, and answers
// real-time ad audits. It also exposes the oprf-server as a separate
// network endpoint with its own key, preserving the paper's trust split:
// the back-end never holds the OPRF secret.
package backend

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"
	"time"

	"eyewnder/internal/blind"
	"eyewnder/internal/campaign"
	"eyewnder/internal/detector"
	"eyewnder/internal/obs"
	"eyewnder/internal/oprf"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
	"eyewnder/internal/store"
	"eyewnder/internal/vec"
	"eyewnder/internal/wire"
)

// Errors returned by the package.
var (
	ErrRoundClosed    = errors.New("backend: round already closed")
	ErrRoundNotClosed = errors.New("backend: round not closed yet")
	ErrUnknownRound   = errors.New("backend: unknown round")
	ErrBadUser        = errors.New("backend: user index out of range")
	// ErrRoundSealed rejects a report into a round that a deadline close
	// (CloseRoundWait) has sealed: the missing set is frozen so reporters
	// can compute adjustment shares against it, and a late report would
	// invalidate every share already computed.
	ErrRoundSealed = errors.New("backend: round sealed for closing")
	// ErrAdjustIncomplete is a deadline close giving up: the wait expired
	// with reporters' second-round shares still outstanding. The round
	// stays open (and sealed) — stragglers can still upload shares and
	// the close can be retried.
	ErrAdjustIncomplete = errors.New("backend: adjustment shares still outstanding")
	// ErrAdjustConflict rejects a second adjustment share from a user
	// whose stored share differs: an identical re-upload is an idempotent
	// retry, but two different shares for the same round mean the client
	// computed against two different missing sets, and silently keeping
	// either would be a coin flip on correctness.
	ErrAdjustConflict = errors.New("backend: conflicting adjustment share already stored")
	// ErrAdjustNotReporter rejects an adjustment share from a user whose
	// report is not in the aggregate: a share is the sum of the
	// submitter's pairwise blinding terms toward the missing users, so
	// without the submitter's blinded report there is nothing for it to
	// cancel — subtracting it would corrupt the round.
	ErrAdjustNotReporter = errors.New("backend: adjustment share from a user who has not reported")
	// ErrUnknownCampaign rejects traffic tagged with a campaign ID the
	// deployment has not provisioned: reports, adjustments, and round
	// queries for an unprovisioned campaign can never be meaningful, and
	// silently opening rounds for one would let a typo'd ID accumulate
	// state forever.
	ErrUnknownCampaign = errors.New("backend: unknown campaign")
	// ErrReadOnlyReplica rejects every mutating operation on a replica
	// back-end (Config.Replica): a follower's state is defined entirely
	// by the primary's WAL stream, and a local write would fork it. The
	// follower answers reads (thresholds, audits, round status) and
	// turns writable only through promotion — which builds a fresh,
	// non-replica back-end over the same data directory.
	ErrReadOnlyReplica = errors.New("backend: read-only replica")
)

// Config fixes the back-end's parameters.
type Config struct {
	// Params is the shared protocol geometry.
	Params privacy.Params
	// Users is the roster size.
	Users int
	// UsersEstimator derives Users_th from the per-ad user counts.
	UsersEstimator detector.Estimator
	// MergeStripes sets the intra-round merge striping: 0 picks the
	// default (2×GOMAXPROCS), 1 degenerates to a single merge lock.
	MergeStripes int
	// AckBatch sets the streamed-report ack batch k for connections that
	// negotiate batched acknowledgements: one binary ack per k frames.
	// 0 (the default) lets the server adapt k per connection from the
	// observed in-flight depth; 1 acknowledges every frame.
	AckBatch int
	// Store is the durable round store. nil (or store.Null{}) keeps all
	// round state in memory — the original behavior. A store.Disk makes
	// every round event — open, report, adjustment, close, registration
	// — crash-recoverable: New replays the store's recovered state into
	// live rounds, and the wire layer's acknowledgements double as
	// group-committed fsync barriers (SyncReports), so a report is
	// durable before its ack and the batched-ack window amortizes the
	// fsyncs.
	Store store.Store
	// RetainRounds bounds closed-round retention: once a round's
	// Users_th has been served for RetainRounds newer closed rounds, the
	// round ages out of memory (and out of subsequent snapshots) — its
	// threshold and audits answer ErrUnknownRound afterwards. 0 keeps
	// every closed round forever (the original behavior). Retention also
	// applies at recovery, so a restart does not resurrect aged-out
	// rounds.
	RetainRounds int
	// Replica puts the back-end in hot-standby mode: every mutating
	// operation (registrations, reports, adjustments, closes) is refused
	// with ErrReadOnlyReplica, rounds are never created on lookup, and
	// state changes arrive exclusively through ApplyEvent — the
	// replication follower feeding it the primary's decoded WAL stream.
	// Reads (thresholds, audits, round status, roster) serve normally,
	// so a follower answers queries from its warm copy. See
	// internal/repl.
	Replica bool
	// Metrics is the observability registry the back-end's instruments
	// (reports accepted/rejected by reason, round lifecycle counters,
	// adjustment shares and failures, config/roster version gauges)
	// register in. nil means a private registry: the instrumented paths
	// run identically, nothing is exported. Instrument registration is
	// idempotent by name, so a promoted back-end constructed over the
	// same registry as the replica it replaces continues the same
	// counters and repoints the gauges at itself.
	Metrics *obs.Registry
}

// Backend is the server state. All methods are safe for concurrent use.
//
// Locking is three-level: Backend.mu guards only the roster and the round
// map; each round carries an RWMutex whose read side admits any number of
// concurrent reporters while the write side (close, adjustments, status)
// excludes them; and within a round the aggregator's merge is striped
// across row ranges (vec.Striped), so reporters into the *same* round
// fold disjoint stripes in parallel. Folding a report merges a full cell
// vector (tens of KB) — under the earlier single round lock one hot
// round's ingestion serialized even on many-core hosts.
type Backend struct {
	cfg   Config
	cells int             // sketch cell count implied by Params, for share validation
	m     *backendMetrics // pre-registered instrument handles, always non-nil

	// store is the durability sink (store.Null when Config.Store is
	// nil); durable is false for the null store, gating the snapshot
	// machinery.
	store   store.Store
	durable bool
	// snapC wakes the snapshot goroutine; snapQuit (closed by Close)
	// tells it to exit — snapC itself is never closed, because reporters
	// send on it concurrently and a send racing a close would panic;
	// snapDone closes when the goroutine exits; snapErr holds the last
	// snapshot failure (surfaced by Close). All nil/unused when not
	// durable.
	snapC     chan struct{}
	snapQuit  chan struct{}
	snapDone  chan struct{}
	snapErrMu sync.Mutex
	snapErr   error
	closing   sync.Once

	mu     sync.Mutex
	roster [][]byte // bulletin board; nil slot = unregistered
	rounds map[roundKey]*round
	// campaigns is the provisioned-campaign registry (guarded by mu):
	// campaign ID → resolved state. Campaign 0 — the deployment's
	// implicit legacy campaign, defined by Config.Params — is never in
	// the map. Re-provisioning an existing ID replaces its definition
	// (last write wins, like the WAL record); rounds already open keep
	// the config they pinned at their open.
	campaigns map[uint32]*campaignState
	// retiredBelow is the per-campaign retention cutoff (guarded by mu):
	// rounds of campaign c with ID below retiredBelow[c] have had their
	// Users_th served for the full horizon and were dropped. getRound
	// refuses to re-create them — a retired round must answer
	// ErrUnknownRound, not silently reopen with a fresh reported bitmap.
	// Absent key = nothing retired for that campaign.
	retiredBelow map[uint32]uint64
	// configVersion and rosterVersion are the deployment-wide negotiated
	// round-config counters (guarded by mu). The back-end is the single
	// source of truth for them: the wire handshake advertises the
	// current pair, every registration that changes the bulletin board
	// bumps both, rounds pin the pair current at their open, and with a
	// durable store the counters survive restarts (recConfig records +
	// snapshot headers).
	configVersion uint32
	rosterVersion uint32
}

// roundKey identifies one round of one counting campaign — the unit
// every piece of round state keys on. Campaign 0 is the implicit
// legacy campaign, so single-campaign deployments see exactly the old
// behavior.
type roundKey struct {
	campaign uint32
	round    uint64
}

// campaignState is one provisioned campaign's resolved runtime state.
type campaignState struct {
	// def is the provisioned definition and enc its canonical encoding —
	// the bytes the WAL carries, the snapshot stores, and the wire
	// directory serves.
	def campaign.Campaign
	enc []byte
	// params is the campaign's round geometry: def's overrides resolved
	// over the deployment base (campaign.Params).
	params privacy.Params
	// cells is the sketch cell count params implies.
	cells int
	// retain is the campaign's closed-round retention horizon:
	// def.RetainRounds, falling back to Config.RetainRounds when unset.
	retain int
	// accepted is the campaign's pre-registered accepted-report counter
	// (eyewnder_campaign_reports_accepted_total{campaign="<id>"}).
	accepted *obs.Counter
}

type round struct {
	mu      sync.RWMutex
	agg     *privacy.Aggregator
	adjusts map[int][]uint64 // second-round shares by reporter
	// sealed stops report admission without closing: a deadline close
	// (CloseRoundWait) seals first so the missing set is frozen while
	// reporters compute and upload their adjustment shares. Sealing is
	// in-memory only — after a crash the round recovers open, and the
	// retried deadline close simply seals it again.
	sealed bool
	// adjCond (lazily created under mu's write side) wakes deadline
	// closes whenever an adjustment share lands.
	adjCond *sync.Cond
	closed  bool
	final   *sketch.CMS
	usersTh float64
	// counts is the per-ad-ID user-count map extracted at close.
	counts map[uint64]uint64
}

// New constructs a back-end. With a durable Config.Store, the store's
// recovered state — bulletin-board registrations and full round states
// (aggregate cells, reported bitmaps, adjustment shares, closed flags)
// — is replayed into live rounds before the back-end accepts traffic,
// so a restart resumes every round exactly where the crash left it.
func New(cfg Config) (*Backend, error) {
	if cfg.Users < 1 {
		return nil, errors.New("backend: Users must be >= 1")
	}
	d, w, err := sketch.Dimensions(cfg.Params.Epsilon, cfg.Params.Delta)
	if err != nil {
		return nil, err
	}
	st := cfg.Store
	if st == nil {
		st = store.Null{}
	}
	_, isNull := st.(store.Null)
	b := &Backend{
		cfg:   cfg,
		cells: d * w,
		store: st,
		// A replica is never durable from its own point of view: its
		// store is a read-only recovered view, the primary owns the WAL,
		// and the snapshot machinery must stay off.
		durable:      !isNull && !cfg.Replica,
		roster:       make([][]byte, cfg.Users),
		rounds:       make(map[roundKey]*round),
		campaigns:    make(map[uint32]*campaignState),
		retiredBelow: make(map[uint32]uint64),
	}
	b.m = newBackendMetrics(cfg.Metrics)
	if err := b.restore(); err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		// Gauges read live state through the closure; re-registering
		// (promotion builds a fresh back-end over the same registry)
		// replaces the callback, so the gauges follow the active
		// back-end.
		cfg.Metrics.GaugeFunc("eyewnder_config_version",
			"Deployment-wide negotiated config version.",
			func() float64 {
				b.mu.Lock()
				defer b.mu.Unlock()
				return float64(b.configVersion)
			})
		cfg.Metrics.GaugeFunc("eyewnder_roster_version",
			"Deployment-wide negotiated roster version.",
			func() float64 {
				b.mu.Lock()
				defer b.mu.Unlock()
				return float64(b.rosterVersion)
			})
		cfg.Metrics.GaugeFunc("eyewnder_rounds_live",
			"Rounds currently in memory (open plus retained closed).",
			func() float64 {
				b.mu.Lock()
				defer b.mu.Unlock()
				return float64(len(b.rounds))
			})
		cfg.Metrics.GaugeFunc("eyewnder_campaigns",
			"Campaigns provisioned beyond the implicit campaign 0.",
			func() float64 {
				b.mu.Lock()
				defer b.mu.Unlock()
				return float64(len(b.campaigns))
			})
		cfg.Metrics.GaugeFunc("eyewnder_replica",
			"1 when this back-end is a read-only hot-standby replica.",
			func() float64 {
				if b.cfg.Replica {
					return 1
				}
				return 0
			})
	}
	if b.durable {
		b.snapC = make(chan struct{}, 1)
		b.snapQuit = make(chan struct{})
		b.snapDone = make(chan struct{})
		go b.snapshotLoop()
	}
	return b, nil
}

// restore replays the store's recovered state into live rounds. The
// recovered geometry, roster size, and blinding suite must match this
// back-end's configuration: persisted rounds from a different protocol
// configuration could never aggregate correctly, so a mismatch refuses
// to start rather than corrupt rounds silently. The deployment-wide
// config/roster version counters are adopted from the store (floored at
// 1 — version 0 is reserved for the unversioned legacy style — and at
// the highest version any recovered round was opened under), so the
// negotiated state a restart advertises is exactly the one the crash
// interrupted. Closed rounds past the retention horizon are not
// resurrected.
func (b *Backend) restore() error {
	for u, key := range b.store.Roster() {
		if u < 0 || u >= b.cfg.Users {
			return fmt.Errorf("backend: recovered roster entry for user %d, roster size %d — data dir from a different deployment?", u, b.cfg.Users)
		}
		b.roster[u] = append([]byte(nil), key...)
	}
	cv, rv := b.store.ConfigVersions()
	b.configVersion, b.rosterVersion = max32(cv, 1), max32(rv, 1)
	// The campaign directory recovers before the rounds: a recovered
	// round of campaign c needs c's resolved geometry to validate
	// against, exactly as a replayed report needs its round open first.
	for id, def := range b.store.Campaigns() {
		c, _, err := campaign.DecodeBinary(def)
		if err != nil {
			return fmt.Errorf("backend: recovered campaign %d does not decode: %w", id, err)
		}
		if c.ID != id {
			return fmt.Errorf("backend: recovered campaign body claims ID %d under directory key %d", c.ID, id)
		}
		cs, err := b.newCampaignState(c)
		if err != nil {
			return fmt.Errorf("backend: recovered campaign %d (%s): %w", id, c.Name, err)
		}
		b.campaigns[id] = cs
	}
	recovered := b.store.Rounds()
	closedBy := make(map[uint32][]uint64)
	for _, rs := range recovered {
		if rs.Closed {
			closedBy[rs.Campaign] = append(closedBy[rs.Campaign], rs.Round)
		}
	}
	for c, closed := range closedBy {
		if cut := retentionCutoff(closed, b.retainFor(c)); cut > 0 {
			b.retiredBelow[c] = cut
		}
	}
	for _, rs := range recovered {
		params, cells := b.cfg.Params, b.cells
		if rs.Campaign != 0 {
			cs, ok := b.campaigns[rs.Campaign]
			if !ok {
				return fmt.Errorf("backend: recovered round %d belongs to unprovisioned campaign %d — data dir from a different deployment?", rs.Round, rs.Campaign)
			}
			params, cells = cs.params, cs.cells
		}
		if rs.D*rs.W != cells {
			return fmt.Errorf("backend: recovered round %d (campaign %d) has %dx%d cells, config wants %d — data dir from a different geometry?", rs.Round, rs.Campaign, rs.D, rs.W, cells)
		}
		if rs.RosterSize != b.cfg.Users {
			return fmt.Errorf("backend: recovered round %d expects %d users, config says %d", rs.Round, rs.RosterSize, b.cfg.Users)
		}
		if rs.Keystream != byte(params.Keystream) {
			return fmt.Errorf("backend: recovered round %d (campaign %d) used keystream suite %#02x, config says %#02x", rs.Round, rs.Campaign, rs.Keystream, byte(params.Keystream))
		}
		b.configVersion = max32(b.configVersion, rs.ConfigVersion)
		b.rosterVersion = max32(b.rosterVersion, rs.RosterVersion)
		if rs.Closed && rs.Round < b.retiredBelow[rs.Campaign] {
			continue // aged out: its Users_th has been served long enough
		}
		rcfg := privacy.RoundConfig{
			Version:       rs.ConfigVersion,
			RosterVersion: rs.RosterVersion,
			RosterSize:    b.cfg.Users,
			Params:        params,
		}
		agg, err := privacy.RestoreAggregatorStripes(rcfg, rs.Round, b.cfg.MergeStripes,
			rs.Cells, rs.N, rs.Seed, rs.Reported)
		if err != nil {
			return err
		}
		adjusts := rs.Adjusts
		if adjusts == nil {
			adjusts = make(map[int][]uint64)
		}
		r := &round{agg: agg, adjusts: adjusts}
		if rs.Closed {
			// Re-derive the close-time results (final sketch, per-ad
			// counts, Users_th) from the recovered aggregate: the inputs
			// are byte-identical, so the counts are too.
			if err := b.finalizeLocked(r); err != nil {
				return fmt.Errorf("backend: re-closing recovered round %d: %w", rs.Round, err)
			}
			r.closed = true
		}
		b.rounds[roundKey{rs.Campaign, rs.Round}] = r
	}
	return nil
}

// newCampaignState resolves one campaign definition into runtime state:
// validate, resolve the geometry over the deployment base, check the
// geometry actually yields a sketch, pre-register the campaign's
// metric handle.
func (b *Backend) newCampaignState(c campaign.Campaign) (*campaignState, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	params := c.Params(b.cfg.Params)
	d, w, err := sketch.Dimensions(params.Epsilon, params.Delta)
	if err != nil {
		return nil, err
	}
	retain := c.RetainRounds
	if retain == 0 {
		retain = b.cfg.RetainRounds
	}
	return &campaignState{
		def:      c,
		enc:      c.AppendBinary(nil),
		params:   params,
		cells:    d * w,
		retain:   retain,
		accepted: b.m.campaignAccepted(c.ID),
	}, nil
}

// retainFor resolves the retention horizon for a campaign: the
// campaign's own RetainRounds when provisioned and set, else the
// deployment default.
func (b *Backend) retainFor(c uint32) int {
	if c != 0 {
		if cs, ok := b.campaigns[c]; ok && cs.retain != 0 {
			return cs.retain
		}
	}
	return b.cfg.RetainRounds
}

// campaignCells resolves the flat cell count a campaign's reports and
// adjustment shares must carry: the campaign's own geometry when
// provisioned, the deployment default for campaign 0 or (conservatively)
// an unknown ID — the round lookup right behind every caller rejects the
// unknown campaign anyway.
func (b *Backend) campaignCells(c uint32) int {
	if c != 0 {
		b.mu.Lock()
		defer b.mu.Unlock()
		if cs, ok := b.campaigns[c]; ok {
			return cs.cells
		}
	}
	return b.cells
}

// retentionCutoff returns the exclusive round-ID bound below which
// closed rounds age out: with retain > 0 and more than retain closed
// rounds, it is the retain-th newest closed round's ID — every closed
// round older than that has had its Users_th served while retain newer
// closed rounds were published. Counting closed rounds (rather than
// subtracting retain from an ID) keeps the promise independent of the
// round numbering scheme: sparse or date-keyed round IDs retire on the
// same schedule as consecutive ones. 0 means nothing retires. The
// slice is sorted in place.
func retentionCutoff(closed []uint64, retain int) uint64 {
	if retain <= 0 || len(closed) <= retain {
		return 0
	}
	sort.Slice(closed, func(i, j int) bool { return closed[i] > closed[j] })
	return closed[retain-1]
}

// max32 returns the larger of two uint32s.
func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// snapshotLoop runs store snapshots off the hot path: report ingestion
// only pokes snapC (non-blocking) when the store says enough has been
// logged, and this goroutine captures the round states and compacts the
// WAL. Snapshot failures are remembered and surfaced by Close — the WAL
// keeps growing but stays correct.
func (b *Backend) snapshotLoop() {
	defer close(b.snapDone)
	for {
		select {
		case <-b.snapQuit:
			return
		case <-b.snapC:
			if err := b.store.Snapshot(b.captureRoundStates); err != nil {
				b.snapErrMu.Lock()
				b.snapErr = err
				b.snapErrMu.Unlock()
			}
		}
	}
}

// maybeSnapshot pokes the snapshot goroutine when the store wants one.
func (b *Backend) maybeSnapshot() {
	if b.durable && b.store.ShouldSnapshot() {
		select {
		case b.snapC <- struct{}{}:
		default:
		}
	}
}

// captureRoundStates snapshots every round's durable state. Each round
// is captured under its write lock (excluding in-flight reporters), so
// the state is internally consistent; rounds are captured one at a
// time, which is fine because the WAL has already rotated — anything
// folded between two captures is replayed idempotently on top.
func (b *Backend) captureRoundStates() ([]*store.RoundState, error) {
	b.mu.Lock()
	keys := make([]roundKey, 0, len(b.rounds))
	rounds := make([]*round, 0, len(b.rounds))
	for k, r := range b.rounds {
		keys = append(keys, k)
		rounds = append(rounds, r)
	}
	b.mu.Unlock()
	out := make([]*store.RoundState, 0, len(rounds))
	for i, r := range rounds {
		r.mu.Lock()
		d, w, seed, n, ks, cells, reported := r.agg.SnapshotState()
		rcfg := r.agg.Config()
		adjusts := make(map[int][]uint64, len(r.adjusts))
		for u, s := range r.adjusts {
			adjusts[u] = append([]uint64(nil), s...)
		}
		closed := r.closed
		r.mu.Unlock()
		out = append(out, &store.RoundState{
			Campaign: keys[i].campaign,
			Round:    keys[i].round, RosterSize: b.cfg.Users,
			ConfigVersion: rcfg.Version, RosterVersion: rcfg.RosterVersion,
			D: d, W: w, Seed: seed, N: n, Keystream: byte(ks),
			Closed: closed, Cells: cells, Reported: reported, Adjusts: adjusts,
		})
	}
	return out, nil
}

// SyncReports implements wire.ReportDurability: the wire layer calls it
// immediately before acknowledging streamed reports, making the ack a
// durability barrier. The store's group commit coalesces concurrent
// barriers, so one fsync covers a whole batched-ack window.
func (b *Backend) SyncReports() error { return b.store.Sync() }

// Close stops the snapshot goroutine and reports the last snapshot
// failure, if any. It does not close the store — the store's owner
// (whoever called store.Open) does that, after the back-end is done.
func (b *Backend) Close() error {
	if b.durable {
		b.closing.Do(func() { close(b.snapQuit) })
		<-b.snapDone
	}
	b.snapErrMu.Lock()
	defer b.snapErrMu.Unlock()
	return b.snapErr
}

// MergeStripes returns the per-round merge stripe count actually in
// effect for this back-end's sketch geometry (the configured value is a
// request; tiny sketches clamp it).
func (b *Backend) MergeStripes() int {
	return vec.EffectiveStripes(b.cells, b.cfg.MergeStripes)
}

// CurrentConfig returns the negotiated round config the back-end
// currently advertises: the flag-derived protocol geometry stamped with
// the live config/roster versions. This — not any client-side flag set
// — is the deployment's source of truth; the wire handshake serves it
// to every connecting client.
func (b *Backend) CurrentConfig() privacy.RoundConfig {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.currentConfigLocked()
}

// currentConfigLocked is CurrentConfig under b.mu.
func (b *Backend) currentConfigLocked() privacy.RoundConfig {
	return privacy.RoundConfig{
		Version:       b.configVersion,
		RosterVersion: b.rosterVersion,
		RosterSize:    b.cfg.Users,
		Params:        b.cfg.Params,
	}
}

// WireConfig renders the current config as a Welcome-frame payload.
// Serve uses it directly; a follower front-end serving a switchable
// replica/promoted back-end passes its own wire.StreamOpts.Config
// callback that delegates here per request.
func (b *Backend) WireConfig() wire.ConfigFrame { return b.wireConfig() }

// wireConfig renders the current config as a Welcome-frame payload
// (wire.StreamOpts.Config).
func (b *Backend) wireConfig() wire.ConfigFrame {
	cfg := b.CurrentConfig()
	b.mu.Lock()
	campaigns := uint16(len(b.campaigns))
	b.mu.Unlock()
	return wire.ConfigFrame{
		Campaigns:     campaigns,
		ConfigVersion: cfg.Version,
		RosterVersion: cfg.RosterVersion,
		RosterSize:    uint32(cfg.RosterSize),
		Epsilon:       cfg.Params.Epsilon,
		Delta:         cfg.Params.Delta,
		IDSpace:       cfg.Params.IDSpace,
		Keystream:     byte(cfg.Params.Keystream),
		Group:         wire.GroupP256,
		Estimator:     byte(b.cfg.UsersEstimator),
		AckBatch:      uint32(b.cfg.AckBatch),
	}
}

// Register stores a user's blinding public key on the bulletin board
// (durably, when a store is configured: the board must survive restarts
// or recovered rounds would face an empty roster). A registration that
// changes the board — a fresh slot, or a new key over an old one —
// bumps the roster and config versions: the pairwise blinding sets
// every other member derived are now stale, so rounds opened before the
// bump stop admitting new-config reporters and rounds opened after it
// reject old-config ones (privacy.ErrIncompatibleConfig), instead of
// silently breaking blinding cancellation. Re-registering an identical
// key (a client retry) bumps nothing.
//
// The fsync barrier runs after b.mu is released — report ingestion
// (which needs b.mu for round lookup) never stalls behind a
// registration's disk flush, and concurrent registrations group-commit
// onto one fsync. A Sync failure surfaces as the registration's error;
// the client retries and the overwrite is idempotent.
func (b *Backend) Register(user int, publicKey []byte) (rosterSize int, err error) {
	if b.cfg.Replica {
		return 0, ErrReadOnlyReplica
	}
	b.mu.Lock()
	if user < 0 || user >= b.cfg.Users {
		b.mu.Unlock()
		return 0, ErrBadUser
	}
	if len(publicKey) == 0 {
		// An empty key can never be a blinding public key, and accepting
		// one would let a buggy client bump the deployment versions on
		// every retry (empty never compares equal to an absent slot).
		b.mu.Unlock()
		return 0, errors.New("backend: empty public key")
	}
	if err := b.store.AppendRegister(user, publicKey); err != nil {
		b.mu.Unlock()
		return 0, err
	}
	if !bytesEqual(b.roster[user], publicKey) {
		// The version bump is logged in the same critical section as the
		// register record, so recovery can never observe one without the
		// other; the live counters advance only once the record is
		// appended, so a failed append never leaves the backend
		// advertising a version no durable record backs.
		cv, rv := b.configVersion+1, b.rosterVersion+1
		if err := b.store.AppendConfig(cv, rv); err != nil {
			b.mu.Unlock()
			return 0, err
		}
		b.configVersion, b.rosterVersion = cv, rv
	}
	b.roster[user] = append([]byte(nil), publicKey...)
	b.mu.Unlock()
	if err := b.store.Sync(); err != nil {
		return 0, err
	}
	return b.cfg.Users, nil
}

// bytesEqual reports whether a and b hold the same bytes.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Roster returns the bulletin board together with the config/roster
// versions it is current at, so a caller deriving pairwise blinding
// secrets can pin the exact negotiated state its reports belong to.
func (b *Backend) Roster() (keys [][]byte, configVersion, rosterVersion uint32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([][]byte, len(b.roster))
	for i, k := range b.roster {
		if k != nil {
			out[i] = append([]byte(nil), k...)
		}
	}
	return out, b.configVersion, b.rosterVersion
}

// getRound returns (creating on first touch) the round's state. Only the
// map access happens under the global lock; callers lock the returned
// round for any state access. Round creation is logged before the round
// becomes visible, so the WAL always carries a round's open record
// ahead of its reports; the record is not fsynced here — every
// acknowledgement barrier that matters (report ack, adjustment upload,
// close) group-commits everything appended before it, open record
// included, and an open that was never followed by an acked event is
// trivially recreated on demand after a crash.
// AddCampaign provisions (or re-provisions) a counting campaign: the
// definition is validated, resolved against the deployment's base
// params, logged durably, and published to the wire directory. Last
// write wins — a re-provision replaces the stored definition — but only
// *future* rounds see the change: every live round pinned its config at
// open. Re-provisioning with a different geometry or keystream is legal
// only once the campaign's old rounds are closed and retired; recovery
// hard-checks recovered rounds against the current definition and
// refuses to start otherwise, so operators change cadence/retention
// freely and change geometry only at a round boundary.
func (b *Backend) AddCampaign(c campaign.Campaign) error {
	if b.cfg.Replica {
		return ErrReadOnlyReplica
	}
	cs, err := b.newCampaignState(c)
	if err != nil {
		return err
	}
	b.mu.Lock()
	if err := b.store.AppendCampaign(cs.enc); err != nil {
		b.mu.Unlock()
		return err
	}
	b.campaigns[c.ID] = cs
	b.mu.Unlock()
	return b.store.Sync()
}

// Campaigns lists the provisioned campaigns in ID order — the wire
// directory's source of truth.
func (b *Backend) Campaigns() []campaign.Campaign {
	b.mu.Lock()
	out := make([]campaign.Campaign, 0, len(b.campaigns))
	for _, cs := range b.campaigns {
		out = append(out, cs.def)
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (b *Backend) getRound(c uint32, id uint64) (*round, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.rounds[roundKey{c, id}]
	if !ok {
		if b.cfg.Replica {
			// A replica's rounds exist exactly when the primary's WAL
			// opened them (ApplyEvent); creating one here would log an
			// open record the primary never wrote.
			return nil, ErrUnknownRound
		}
		if id < b.retiredBelow[c] {
			// The round was retired: its Users_th has already been
			// published and served. Re-creating it here would hand out a
			// fresh reported bitmap (breaking the duplicate invariant
			// for late or replayed reports) and eventually publish a
			// second, different threshold for the same round ID.
			return nil, ErrUnknownRound
		}
		params := b.cfg.Params
		if c != 0 {
			cs, ok := b.campaigns[c]
			if !ok {
				return nil, ErrUnknownCampaign
			}
			params = cs.params
		}
		// The round pins the config current at its open: later version
		// bumps (roster changes, campaign re-provisioning) open *future*
		// rounds under the new config, while this one keeps accepting
		// exactly the cohort that negotiated it.
		rcfg := b.currentConfigLocked()
		rcfg.Params = params
		agg, err := privacy.NewAggregatorStripes(rcfg, id, b.cfg.MergeStripes)
		if err != nil {
			return nil, err
		}
		d, w, seed := agg.Layout()
		if err := b.store.AppendOpen(c, id, b.cfg.Users, d, w, seed, byte(params.Keystream),
			rcfg.Version, rcfg.RosterVersion); err != nil {
			return nil, err
		}
		r = &round{agg: agg, adjusts: make(map[int][]uint64)}
		b.rounds[roundKey{c, id}] = r
		b.m.roundsOpened.Inc()
	}
	return r, nil
}

// lookupRound returns an existing round without creating one.
func (b *Backend) lookupRound(c uint32, id uint64) (*round, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.rounds[roundKey{c, id}]
	return r, ok
}

// SubmitReport folds one blinded report into the round aggregate.
// Reporters hold only the round's read lock: the aggregator's own
// bookkeeping lock and striped cell merge admit concurrent submissions
// into the same round, while the write lock (CloseRound) excludes them.
//
// The sequence is reserve → log → fold: the aggregator first validates
// and reserves the user's slot (so the WAL only ever records reports
// the aggregate will absorb, and records them in acceptance order),
// then the report is logged, then the cells merge. This path also syncs
// before returning — its callers (JSON wire handler, in-process
// clients) treat the return as the acknowledgement.
func (b *Backend) SubmitReport(rep *privacy.Report) error {
	err := b.submitReport(rep)
	if err != nil {
		b.m.reportReason(err).Inc()
	} else {
		b.m.accepted.Inc()
		if ctr := b.campaignAcceptedCounter(rep.Campaign); ctr != nil {
			ctr.Inc()
		}
	}
	return err
}

// campaignAcceptedCounter resolves a campaign's pre-registered
// accepted-report counter (nil for an unprovisioned nonzero ID, which
// can only happen on paths that already rejected the report).
func (b *Backend) campaignAcceptedCounter(c uint32) *obs.Counter {
	if c == 0 {
		return b.m.acceptedC0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if cs, ok := b.campaigns[c]; ok {
		return cs.accepted
	}
	return nil
}

// submitReport is SubmitReport's body; the wrapper owns the
// accept/reject accounting so every return path is counted exactly
// once.
func (b *Backend) submitReport(rep *privacy.Report) error {
	if b.cfg.Replica {
		return ErrReadOnlyReplica
	}
	r, err := b.getRound(rep.Campaign, rep.Round)
	if err != nil {
		return err
	}
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return ErrRoundClosed
	}
	if r.sealed {
		r.mu.RUnlock()
		return ErrRoundSealed
	}
	if err := r.agg.Reserve(rep); err != nil {
		r.mu.RUnlock()
		return err
	}
	sk := rep.Sketch
	if err := b.store.AppendReport(rep.Campaign, rep.Round, rep.User, sk.Depth(), sk.Width(), sk.N(), sk.Seed(),
		byte(rep.Keystream), rep.ConfigVersion, sk.FlatCells()); err != nil {
		r.agg.Unreserve(rep.User, sk.N())
		r.mu.RUnlock()
		return err
	}
	r.agg.FoldReserved(sk.FlatCells())
	// The fsync barrier runs outside the round lock: a close or snapshot
	// queued on the write side would otherwise block every reporter
	// behind this submission's disk flush.
	r.mu.RUnlock()
	if err := b.store.Sync(); err != nil {
		return err
	}
	b.maybeSnapshot()
	return nil
}

// ConsumeReport implements wire.ReportSink: a streamed report's pooled
// cell vector folds straight into the round aggregate, with no
// intermediate []byte or CMS ever materialized. The frame's keystream
// suite byte is enforced against the round's: a report blinded under a
// different suite would not cancel and would silently corrupt the
// aggregate.
//
// Durability: the frame is logged (reserve → log → fold, like
// SubmitReport) while its cells are still the pooled wire buffer, but
// NOT synced here — the wire layer calls SyncReports immediately before
// each acknowledgement, so one group-committed fsync covers a whole
// batched-ack window instead of every report paying its own.
func (b *Backend) ConsumeReport(f *wire.ReportFrame) error {
	if f.Kind == wire.FrameKindAdjust {
		// A streamed second-round share: same batched connection, same
		// ack slots and durability barrier as reports (the ack's
		// SyncReports covers the share's WAL append), different store.
		// submitAdjustment owns the share/failure accounting (and the
		// replica refusal).
		return b.submitAdjustment(f.Campaign, f.User, f.Round, f.ConfigVersion,
			blind.Keystream(f.Keystream), true, f.Cells, false)
	}
	err := b.consumeReport(f)
	if err != nil {
		b.m.reportReason(err).Inc()
	} else {
		b.m.accepted.Inc()
		if ctr := b.campaignAcceptedCounter(f.Campaign); ctr != nil {
			ctr.Inc()
		}
	}
	return err
}

// consumeReport is ConsumeReport's report-frame body; the wrapper owns
// the accept/reject accounting.
func (b *Backend) consumeReport(f *wire.ReportFrame) error {
	if b.cfg.Replica {
		return ErrReadOnlyReplica
	}
	r, err := b.getRound(f.Campaign, f.Round)
	if err != nil {
		return err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return ErrRoundClosed
	}
	if r.sealed {
		return ErrRoundSealed
	}
	ks := blind.Keystream(f.Keystream)
	if err := r.agg.ReserveCells(f.User, f.D, f.W, f.N, f.Seed, ks, f.ConfigVersion, len(f.Cells)); err != nil {
		return err
	}
	if err := b.store.AppendReport(f.Campaign, f.Round, f.User, f.D, f.W, f.N, f.Seed, f.Keystream, f.ConfigVersion, f.Cells); err != nil {
		r.agg.Unreserve(f.User, f.N)
		return err
	}
	r.agg.FoldReserved(f.Cells)
	b.maybeSnapshot()
	return nil
}

// RoundProgress is one consistent observation of a round's state:
// Reported and Missing come from the same aggregator critical section
// (Reported + len(Missing) equals the roster size, always), and the
// adjusted count, sealed and closed flags are read under the same round
// lock. Separate Reported()/Missing() reads can each be individually
// correct yet disagree when a report folds in between them — the torn
// view a status poll racing submissions used to publish.
type RoundProgress struct {
	Reported int
	Missing  []int
	// Adjusted counts the reporters whose second-round shares are
	// stored.
	Adjusted int
	Sealed   bool
	Closed   bool
}

// RoundProgressOf reports a round's progress as one consistent
// snapshot. It is a campaign-0 shorthand for CampaignRoundProgress.
func (b *Backend) RoundProgressOf(id uint64) (RoundProgress, error) {
	return b.CampaignRoundProgress(0, id)
}

// CampaignRoundProgress reports a (campaign, round)'s progress as one
// consistent snapshot. A status query is observation only: asking about
// a round no reports have touched returns ErrUnknownRound instead of
// opening (and logging) fresh round state.
func (b *Backend) CampaignRoundProgress(c uint32, id uint64) (RoundProgress, error) {
	r, ok := b.lookupRound(c, id)
	if !ok {
		return RoundProgress{}, ErrUnknownRound
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	reported, missing := r.agg.Progress()
	return RoundProgress{
		Reported: reported, Missing: missing,
		Adjusted: len(r.adjusts), Sealed: r.sealed, Closed: r.closed,
	}, nil
}

// RoundSnapshot is one round's progress as /statusz reports it: the
// same consistent observation as RoundProgressOf, with the missing set
// reduced to its size (a status page wants counts, not a roster-sized
// list).
type RoundSnapshot struct {
	Campaign uint32 `json:"campaign"`
	Round    uint64 `json:"round"`
	Reported int    `json:"reported"`
	Missing  int    `json:"missing"`
	Adjusted int    `json:"adjusted"`
	Sealed   bool   `json:"sealed"`
	Closed   bool   `json:"closed"`
}

// RoundsProgress snapshots every live round's progress, sorted by
// round ID. Unlike RoundProgressOf it never creates a round: it
// enumerates the existing map under the global lock and then reads
// each round under its own read lock, so a status poll is observation
// only — on a primary, a follower, and everything in between.
func (b *Backend) RoundsProgress() []RoundSnapshot {
	b.mu.Lock()
	keys := make([]roundKey, 0, len(b.rounds))
	rounds := make([]*round, 0, len(b.rounds))
	for k, r := range b.rounds {
		keys = append(keys, k)
		rounds = append(rounds, r)
	}
	b.mu.Unlock()
	out := make([]RoundSnapshot, 0, len(rounds))
	for i, r := range rounds {
		r.mu.RLock()
		reported, missing := r.agg.Progress()
		out = append(out, RoundSnapshot{
			Campaign: keys[i].campaign, Round: keys[i].round,
			Reported: reported, Missing: len(missing),
			Adjusted: len(r.adjusts), Sealed: r.sealed, Closed: r.closed,
		})
		r.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Campaign != out[j].Campaign {
			return out[i].Campaign < out[j].Campaign
		}
		return out[i].Round < out[j].Round
	})
	return out
}

// RoundStatus reports progress of a round.
func (b *Backend) RoundStatus(id uint64) (reported int, missing []int, closed bool, err error) {
	p, err := b.RoundProgressOf(id)
	if err != nil {
		return 0, nil, false, err
	}
	return p.Reported, p.Missing, p.Closed, nil
}

// SubmitAdjustment records a reporter's second-round share. Invalid
// shares are rejected here, at upload time, rather than poisoning every
// later CloseRound attempt: the cell count must match the geometry, the
// round must exist and be open, and the submitter must be one of the
// round's reporters — a share is the sum of the submitter's pairwise
// blinding terms toward the missing users, meaningless without the
// submitter's own report in the aggregate. Re-uploading an identical
// share is an idempotent retry; a *different* share for the same round
// is refused (ErrAdjustConflict) — the client computed against two
// different missing sets and the server cannot tell which one is right.
func (b *Backend) SubmitAdjustment(user int, id uint64, cells []uint64) error {
	return b.submitAdjustment(0, user, id, 0, 0, false, cells, true)
}

// SubmitAdjustmentVersion is SubmitAdjustment for a share derived under
// a specific negotiated config version: a stale nonzero version is
// rejected (the share's pairwise terms come from a superseded roster
// and could not cancel), exactly as stale reports are.
func (b *Backend) SubmitAdjustmentVersion(user int, id uint64, cv uint32, cells []uint64) error {
	return b.submitAdjustment(0, user, id, cv, 0, false, cells, true)
}

// SubmitCampaignAdjustment is SubmitAdjustmentVersion for a specific
// campaign's round.
func (b *Backend) SubmitCampaignAdjustment(c uint32, user int, id uint64, cv uint32, cells []uint64) error {
	return b.submitAdjustment(c, user, id, cv, 0, false, cells, true)
}

// submitAdjustment is the shared adjustment-upload path. checkKS
// enforces ks against the round's blinding suite (the streamed-frame
// path carries the byte; the JSON path never did). syncNow runs the
// fsync barrier before returning — the streamed path passes false and
// lets the wire layer's ack barrier (SyncReports) cover the append, so
// batched adjustment uploads amortize fsyncs exactly like reports.
func (b *Backend) submitAdjustment(c uint32, user int, id uint64, cv uint32, ks blind.Keystream, checkKS bool, cells []uint64, syncNow bool) error {
	err := b.applyAdjustment(c, user, id, cv, ks, checkKS, cells, syncNow)
	if err != nil {
		b.m.adjustReason(err).Inc()
	} else {
		b.m.adjShares.Inc()
	}
	return err
}

// applyAdjustment is submitAdjustment's body; the wrapper owns the
// share/failure accounting so every return path is counted exactly
// once.
func (b *Backend) applyAdjustment(c uint32, user int, id uint64, cv uint32, ks blind.Keystream, checkKS bool, cells []uint64, syncNow bool) error {
	if b.cfg.Replica {
		return ErrReadOnlyReplica
	}
	if user < 0 || user >= b.cfg.Users {
		return ErrBadUser
	}
	if len(cells) != b.campaignCells(c) {
		return fmt.Errorf("%w: adjustment share has %d cells, want %d",
			sketch.ErrDimensionMismatch, len(cells), b.campaignCells(c))
	}
	// Unlike reports, an adjustment never opens a round: a share can
	// only repair a round that reports have already touched.
	r, ok := b.lookupRound(c, id)
	if !ok {
		return ErrUnknownRound
	}
	// The write lock covers only the validation, the append (which must
	// order against a concurrent close), and the map update; the fsync
	// barrier runs after it is released, so the round's reporters
	// (read-lock holders) never stall behind an adjustment's disk flush
	// and concurrent adjustment uploads group-commit onto one fsync. A
	// Sync failure surfaces as this upload's error; a retry overwrites
	// the share idempotently.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRoundClosed
	}
	if !r.agg.Config().CompatibleReportVersion(cv) {
		r.mu.Unlock()
		return privacy.ErrIncompatibleConfig
	}
	if checkKS && ks != r.agg.Config().Params.Keystream {
		r.mu.Unlock()
		return privacy.ErrKeystreamMismatch
	}
	if !r.agg.HasReported(user) {
		r.mu.Unlock()
		return ErrAdjustNotReporter
	}
	if prev, dup := r.adjusts[user]; dup && !cellsEqual(prev, cells) {
		r.mu.Unlock()
		return ErrAdjustConflict
	}
	// An identical duplicate still appends and (re-)syncs: the retry may
	// be recovering from a Sync failure, and replay is last-wins.
	if err := b.store.AppendAdjust(c, id, user, cells); err != nil {
		r.mu.Unlock()
		return err
	}
	if len(r.adjusts) == 0 {
		// First share into this round: it has entered the adjustment
		// round.
		b.m.roundsAdjusted.Inc()
	}
	r.adjusts[user] = append([]uint64(nil), cells...)
	if r.adjCond != nil {
		r.adjCond.Broadcast() // wake deadline closes waiting on shares
	}
	r.mu.Unlock()
	if syncNow {
		if err := b.store.Sync(); err != nil {
			return err
		}
	}
	b.maybeSnapshot()
	return nil
}

// cellsEqual reports whether two cell vectors hold the same values.
func cellsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CloseRound unblinds the aggregate (applying any adjustment shares),
// extracts the per-ad user counts, and computes Users_th. The close is
// logged and synced before the round flips to closed, so a crash
// straddling the close either replays it (record durable) or leaves
// the round open and retryable (record lost) — never half-closed. With
// Config.RetainRounds set, a successful close also ages out closed
// rounds whose Users_th has now been served for the retention horizon.
func (b *Backend) CloseRound(id uint64) (usersTh float64, distinctAds int, err error) {
	return b.CloseCampaignRound(0, id)
}

// CloseCampaignRound is CloseRound for a specific campaign's round. A
// close is a query about accumulated state: closing a round no reports
// have touched returns ErrUnknownRound instead of opening (and logging)
// an empty round that could only ever fail with ErrNoReports.
func (b *Backend) CloseCampaignRound(c uint32, id uint64) (usersTh float64, distinctAds int, err error) {
	if b.cfg.Replica {
		return 0, 0, ErrReadOnlyReplica
	}
	r, ok := b.lookupRound(c, id)
	if !ok {
		return 0, 0, ErrUnknownRound
	}
	r.mu.Lock()
	if r.closed {
		defer r.mu.Unlock()
		return r.usersTh, len(r.counts), nil
	}
	if err := b.closeLocked(c, id, r); err != nil {
		r.mu.Unlock()
		return 0, 0, err
	}
	usersTh, distinctAds = r.usersTh, len(r.counts)
	r.mu.Unlock()
	b.retireRounds()
	return usersTh, distinctAds, nil
}

// CloseRoundWait is the deadline close: it *seals* the round (reports
// are refused from here on, so the missing set is frozen and every
// reporter can compute its adjustment share against the same list),
// then waits up to `wait` for every reporter's share to land before
// finalizing. If the deadline expires with shares still outstanding it
// returns ErrAdjustIncomplete and leaves the round open (and sealed):
// stragglers can still upload and the close can be retried. This is how
// a round with permanently-lost users closes — the lost users simply
// stay in the missing set, and once the reporters that ARE alive have
// all adjusted for them, the round finalizes without them. A reporter
// that vanishes *between* its report and its share, by contrast, holds
// the round at ErrAdjustIncomplete: its pairwise terms are in the
// aggregate and nobody else can cancel them.
//
// With a full roster (nothing missing) no shares are owed and the close
// proceeds immediately. Sealing is in-memory: a crash recovers the
// round unsealed, and the retried deadline close re-seals it.
func (b *Backend) CloseRoundWait(id uint64, wait time.Duration) (usersTh float64, distinctAds int, err error) {
	return b.CloseCampaignRoundWait(0, id, wait)
}

// CloseCampaignRoundWait is CloseRoundWait for a specific campaign's
// round; like CloseCampaignRound it never creates round state.
func (b *Backend) CloseCampaignRoundWait(c uint32, id uint64, wait time.Duration) (usersTh float64, distinctAds int, err error) {
	if b.cfg.Replica {
		return 0, 0, ErrReadOnlyReplica
	}
	r, ok := b.lookupRound(c, id)
	if !ok {
		return 0, 0, ErrUnknownRound
	}
	r.mu.Lock()
	if r.closed {
		defer r.mu.Unlock()
		return r.usersTh, len(r.counts), nil
	}
	if !r.sealed {
		r.sealed = true
		b.m.roundsSealed.Inc()
	}
	deadline := time.Now().Add(wait)
	var timer *time.Timer
	for {
		owed := owedLocked(r)
		if len(owed) == 0 {
			break
		}
		if !time.Now().Before(deadline) {
			reported, _ := r.agg.Progress()
			r.mu.Unlock()
			if timer != nil {
				timer.Stop()
			}
			return 0, 0, fmt.Errorf("%w: %d of %d reporters after %v (first: user %d)",
				ErrAdjustIncomplete, len(owed), reported, wait, owed[0])
		}
		if r.adjCond == nil {
			r.adjCond = sync.NewCond(&r.mu)
		}
		if timer == nil {
			// One timer per close call: it grabs the round lock and
			// broadcasts, so a wait with no more shares arriving still
			// wakes up to observe its expired deadline.
			cond := r.adjCond
			timer = time.AfterFunc(time.Until(deadline), func() {
				r.mu.Lock()
				cond.Broadcast()
				r.mu.Unlock()
			})
		}
		r.adjCond.Wait()
		if r.closed { // a concurrent close won the race
			defer r.mu.Unlock()
			timer.Stop()
			return r.usersTh, len(r.counts), nil
		}
	}
	if timer != nil {
		timer.Stop()
	}
	closeErr := b.closeLocked(c, id, r)
	usersTh, distinctAds = r.usersTh, len(r.counts)
	r.mu.Unlock()
	if closeErr != nil {
		return 0, 0, closeErr
	}
	b.retireRounds()
	return usersTh, distinctAds, nil
}

// owedLocked lists the reporters whose second-round shares are still
// outstanding — empty when nothing is missing (no adjustment round is
// needed) or when no reports have landed at all (nothing to repair;
// the close will fail on ErrNoReports instead). Caller holds r.mu.
func owedLocked(r *round) []int {
	reported, missing := r.agg.Progress()
	if reported == 0 || len(missing) == 0 {
		return nil
	}
	miss := make(map[int]bool, len(missing))
	for _, m := range missing {
		miss[m] = true
	}
	var owed []int
	for u := 0; u < r.agg.Config().RosterSize; u++ {
		if miss[u] {
			continue
		}
		if _, ok := r.adjusts[u]; !ok {
			owed = append(owed, u)
		}
	}
	return owed
}

// closeLocked runs the close body under r.mu (write): finalize, log,
// sync, flip closed. The close record is durable before the flag flips,
// so a crash straddling the close either replays it or leaves the round
// open and retryable — never half-closed.
//
// A close with users missing requires EVERY reporter's adjustment share
// first: a partial share set subtracts a partial set of pairwise terms
// and would publish corrupted counts that look plausible. CloseRoundWait
// waits for the stragglers; the plain close refuses immediately.
func (b *Backend) closeLocked(c uint32, id uint64, r *round) error {
	if owed := owedLocked(r); len(owed) > 0 {
		reported, _ := r.agg.Progress()
		return fmt.Errorf("%w: %d of %d reporters (first: user %d)",
			ErrAdjustIncomplete, len(owed), reported, owed[0])
	}
	if err := b.finalizeLocked(r); err != nil {
		return err
	}
	if err := b.store.AppendClose(c, id); err != nil {
		return err
	}
	if err := b.store.Sync(); err != nil {
		return err
	}
	r.closed = true
	b.m.roundsClosed.Inc()
	return nil
}

// retireRounds drops every closed round older than the RetainRounds-th
// newest closed round: its Users_th has been served for the configured
// horizon, so its memory (cells, counts, final sketch) and its slot in
// future snapshots are released, and getRound refuses to resurrect it.
// Open stragglers are never retired — they have not served anything
// yet. Retention is not logged — the WAL may still carry the rounds
// until compaction — because the same cutoff is re-derived at recovery
// (restore), so an aged-out round stays gone across restarts.
func (b *Backend) retireRounds() {
	// Pass 1: snapshot the round map under b.mu only. Checking a
	// round's closed flag takes its lock, and a round mid-close holds
	// its write lock across an fsync — blocking on that while holding
	// b.mu would stall every reporter's round lookup behind a disk
	// flush.
	b.mu.Lock()
	keys := make([]roundKey, 0, len(b.rounds))
	rounds := make([]*round, 0, len(b.rounds))
	for k, r := range b.rounds {
		keys = append(keys, k)
		rounds = append(rounds, r)
	}
	b.mu.Unlock()
	// Retention is per campaign: each campaign ages out its own closed
	// rounds against its own horizon (falling back to the deployment
	// default), so a slow-cadence campaign never loses rounds because a
	// fast one churned through its window.
	closedBy := make(map[uint32][]uint64)
	closedSet := make(map[roundKey]bool)
	for i, r := range rounds {
		r.mu.RLock()
		c := r.closed
		r.mu.RUnlock()
		if c {
			closedBy[keys[i].campaign] = append(closedBy[keys[i].campaign], keys[i].round)
			closedSet[keys[i]] = true
		}
	}
	cutoffs := make(map[uint32]uint64)
	b.mu.Lock()
	for c, rounds := range closedBy {
		if cut := retentionCutoff(rounds, b.retainFor(c)); cut > 0 {
			cutoffs[c] = cut
		}
	}
	if len(cutoffs) == 0 {
		b.mu.Unlock()
		return
	}
	// Pass 2: delete under the same b.mu hold. Rounds are only ever
	// created or deleted, never replaced, and closed is sticky — a
	// round observed closed in pass 1 is still the same closed round
	// now.
	for k := range b.rounds {
		if k.round < cutoffs[k.campaign] && closedSet[k] {
			delete(b.rounds, k)
		}
	}
	for c, cut := range cutoffs {
		if cut > b.retiredBelow[c] {
			b.retiredBelow[c] = cut
		}
	}
	b.mu.Unlock()
}

// finalizeLocked computes a round's close-time results — the unblinded
// final sketch, the per-ad user counts, and Users_th — without marking
// it closed. Shared by CloseRound and the recovery path, which re-runs
// it on a restored aggregate: the inputs are byte-identical to the
// original close, so the counts are too. Caller holds r.mu (write).
func (b *Backend) finalizeLocked(r *round) error {
	// Adjustments are applied to a clone of the aggregate
	// (FinalizeWithAdjustments), never to the live one: if the close
	// fails (reports still missing, say), a retry must not subtract the
	// same shares twice. With a full roster the shares are skipped
	// entirely — any stored ones were computed against a transient
	// missing view that later reports emptied, and subtracting terms
	// that already cancel pairwise would corrupt the aggregate.
	var shares [][]uint64
	if _, missing := r.agg.Progress(); len(missing) > 0 {
		shares = make([][]uint64, 0, len(r.adjusts))
		for _, s := range r.adjusts {
			shares = append(shares, s)
		}
	}
	final, err := r.agg.FinalizeWithAdjustments(shares...)
	if err != nil {
		return err
	}
	r.final = final
	// The round's pinned params — not the deployment defaults — scope
	// the count extraction: each campaign queries its own ID space.
	r.counts = privacy.UserCounts(final, r.agg.Config().Params)
	sample := make([]float64, 0, len(r.counts))
	for _, c := range r.counts {
		sample = append(sample, float64(c))
	}
	r.usersTh = detector.UsersThreshold(sample, b.cfg.UsersEstimator)
	return nil
}

// Threshold returns a closed round's Users_th (Figure 1, arrow 5).
func (b *Backend) Threshold(id uint64) (float64, error) {
	return b.CampaignThreshold(0, id)
}

// CampaignThreshold is Threshold for a specific campaign's round.
func (b *Backend) CampaignThreshold(c uint32, id uint64) (float64, error) {
	r, ok := b.lookupRound(c, id)
	if !ok {
		return 0, ErrUnknownRound
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.closed {
		return 0, ErrRoundNotClosed
	}
	return r.usersTh, nil
}

// AuditAd answers a real-time audit: the estimated #Users for an ad ID in
// a closed round.
func (b *Backend) AuditAd(id uint64, adID uint64) (uint64, error) {
	return b.AuditCampaignAd(0, id, adID)
}

// AuditCampaignAd is AuditAd scoped to a campaign's round.
func (b *Backend) AuditCampaignAd(c uint32, id uint64, adID uint64) (uint64, error) {
	r, ok := b.lookupRound(c, id)
	if !ok {
		return 0, ErrUnknownRound
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.closed {
		return 0, ErrRoundNotClosed
	}
	return privacy.QueryUsers(r.final, adID), nil
}

// UserCountsOfRound exposes a closed round's per-ad-ID counts (used by the
// evaluation harness and the Figure 2 experiment).
func (b *Backend) UserCountsOfRound(id uint64) (map[uint64]uint64, error) {
	return b.CampaignUserCounts(0, id)
}

// CampaignUserCounts is UserCountsOfRound scoped to a campaign.
func (b *Backend) CampaignUserCounts(c uint32, id uint64) (map[uint64]uint64, error) {
	r, ok := b.lookupRound(c, id)
	if !ok {
		return nil, ErrUnknownRound
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.closed {
		return nil, ErrRoundNotClosed
	}
	out := make(map[uint64]uint64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out, nil
}

// Handler adapts the back-end to the wire protocol.
func (b *Backend) Handler() wire.Handler {
	return func(m *wire.Msg) (string, interface{}, error) {
		switch m.Type {
		case wire.TypeRegister:
			var req wire.RegisterReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			n, err := b.Register(req.User, req.PublicKey)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeRegisterOK, wire.RegisterResp{RosterSize: n}, nil

		case wire.TypeRoster:
			keys, cv, rv := b.Roster()
			return wire.TypeRosterOK, wire.RosterResp{
				PublicKeys: keys, ConfigVersion: cv, RosterVersion: rv,
			}, nil

		case wire.TypeSubmitReport:
			var req wire.SubmitReportReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			var cms sketch.CMS
			if err := cms.UnmarshalBinary(req.Sketch); err != nil {
				return "", nil, err
			}
			rep := &privacy.Report{
				User: req.User, Campaign: req.Campaign, Round: req.Round, Sketch: &cms,
				Keystream:     blind.Keystream(req.Keystream),
				ConfigVersion: req.ConfigVersion,
			}
			if err := b.SubmitReport(rep); err != nil {
				return "", nil, err
			}
			return wire.TypeSubmitReportOK, struct{}{}, nil

		case wire.TypeRoundStatus:
			var req wire.CloseRoundReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			p, err := b.CampaignRoundProgress(req.Campaign, req.Round)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeRoundStatusOK, wire.RoundStatusResp{
				Campaign: req.Campaign, Round: req.Round,
				Reported: p.Reported, Missing: p.Missing,
				Closed: p.Closed, Sealed: p.Sealed, Adjusted: p.Adjusted,
			}, nil

		case wire.TypeSubmitAdjust:
			var req wire.SubmitAdjustReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			if err := b.SubmitCampaignAdjustment(req.Campaign, req.User, req.Round, req.ConfigVersion, req.Cells); err != nil {
				return "", nil, err
			}
			return wire.TypeSubmitAdjustOK, struct{}{}, nil

		case wire.TypeCloseRound:
			var req wire.CloseRoundReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			var th float64
			var ads int
			var err error
			if req.AdjustWaitMS > 0 {
				th, ads, err = b.CloseCampaignRoundWait(req.Campaign, req.Round, time.Duration(req.AdjustWaitMS)*time.Millisecond)
			} else {
				th, ads, err = b.CloseCampaignRound(req.Campaign, req.Round)
			}
			if err != nil {
				return "", nil, err
			}
			return wire.TypeCloseRoundOK, wire.CloseRoundResp{
				Campaign: req.Campaign, Round: req.Round, UsersTh: th, DistinctAds: ads,
			}, nil

		case wire.TypeRoundCounts:
			var req wire.RoundCountsReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			counts, err := b.CampaignUserCounts(req.Campaign, req.Round)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeRoundCountsOK, wire.RoundCountsResp{
				Campaign: req.Campaign, Round: req.Round, Counts: counts,
			}, nil

		case wire.TypeThreshold:
			var req wire.ThresholdReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			th, err := b.CampaignThreshold(req.Campaign, req.Round)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeThresholdOK, wire.ThresholdResp{Campaign: req.Campaign, Round: req.Round, UsersTh: th}, nil

		case wire.TypeAuditAd:
			var req wire.AuditAdReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			users, err := b.AuditCampaignAd(req.Campaign, req.Round, req.AdID)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeAuditAdOK, wire.AuditAdResp{Users: users}, nil

		case wire.TypeCampaignAdd:
			var req wire.CampaignAddReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			c := campaign.Campaign{
				ID: req.ID, Name: req.Name,
				Epsilon: req.Epsilon, Delta: req.Delta, IDSpace: req.IDSpace,
				Keystream:    blind.Keystream(req.Keystream),
				KeystreamSet: req.KeystreamSet,
				RetainRounds: req.RetainRounds, CadenceSec: req.CadenceSec,
			}
			if err := b.AddCampaign(c); err != nil {
				return "", nil, err
			}
			return wire.TypeCampaignAddOK, wire.CampaignAddResp{
				ID: req.ID, Campaigns: len(b.Campaigns()),
			}, nil

		case wire.TypeCampaigns:
			list := b.Campaigns()
			out := make([]wire.CampaignInfo, len(list))
			for i, c := range list {
				out[i] = wire.CampaignInfo{
					ID: c.ID, Name: c.Name,
					Epsilon: c.Epsilon, Delta: c.Delta, IDSpace: c.IDSpace,
					Keystream:    byte(c.Keystream),
					KeystreamSet: c.KeystreamSet,
					RetainRounds: c.RetainRounds, CadenceSec: c.CadenceSec,
				}
			}
			return wire.TypeCampaignsOK, wire.CampaignsResp{Campaigns: out}, nil
		}
		return "", nil, fmt.Errorf("backend: unknown message %q", m.Type)
	}
}

// Serve starts the back-end on a TCP address, accepting both JSON
// messages and streamed report frames (the back-end is its own
// wire.ReportSink). Connections that negotiate batched acknowledgements
// get one binary ack per Config.AckBatch frames and pipelined
// decode-while-fold ingestion; Hello frames are answered with the
// back-end's current negotiated config, making the server — not any
// operator flag set — the source of truth for protocol state.
func (b *Backend) Serve(addr string) (*wire.Server, error) {
	return wire.ServeWithSinkOpts(addr, b.Handler(), b, wire.StreamOpts{
		AckBatch:  b.cfg.AckBatch,
		Config:    b.wireConfig,
		Campaigns: b.Campaigns,
		Metrics:   b.cfg.Metrics,
	})
}

// OPRFHandler adapts an oprf.Server to the wire protocol.
func OPRFHandler(srv *oprf.Server) wire.Handler {
	return func(m *wire.Msg) (string, interface{}, error) {
		switch m.Type {
		case wire.TypeOPRFPublicKey:
			pub := srv.PublicKey()
			return wire.TypeOPRFPublicKeyOK, wire.OPRFPublicKeyResp{N: pub.N.Bytes(), E: pub.E}, nil
		case wire.TypeOPRFEvaluate:
			var req wire.OPRFEvaluateReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			y, err := srv.Evaluate(new(big.Int).SetBytes(req.Blinded))
			if err != nil {
				return "", nil, err
			}
			return wire.TypeOPRFEvaluateOK, wire.OPRFEvaluateResp{Signed: y.Bytes()}, nil
		}
		return "", nil, fmt.Errorf("oprf-server: unknown message %q", m.Type)
	}
}

// ServeOPRF starts the oprf-server on a TCP address.
func ServeOPRF(addr string, srv *oprf.Server) (*wire.Server, error) {
	return wire.Serve(addr, OPRFHandler(srv))
}
