package experiments

import (
	"crypto/rand"
	"fmt"
	"time"

	"eyewnder/internal/adsim"
	"eyewnder/internal/blind"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/oprf"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
	"eyewnder/internal/stats"
)

// Fig2Week is one week's series of Figure 2: the #Users distribution
// computed from cleartext reports ("Actual") versus the distribution
// recovered from the privacy-preserving protocol ("CMS"), with the
// threshold each yields.
type Fig2Week struct {
	Week int
	// ActualCounts and CMSCounts are the per-ad user counts.
	ActualCounts, CMSCounts []float64
	// ActualTh and CMSTh are the Mean-estimator thresholds (the figure's
	// Act_Th / CMS_Th annotations). CMS_Th is expected to sit slightly
	// above Act_Th because sketch and ID-space collisions only inflate.
	ActualTh, CMSTh float64
	// ActualDensity and CMSDensity sample the KDE curves of the figure
	// over DensityX.
	DensityX                  []float64
	ActualDensity, CMSDensity []float64
}

// Fig2Config parametrizes the experiment.
type Fig2Config struct {
	// Sim is the workload (Weeks should be 3 to match the figure).
	Sim adsim.Config
	// Params is the protocol geometry. Keep the sketch moderate: the
	// experiment runs the real OPRF and real blinding for every user.
	Params privacy.Params
	// RSABits sizes the oprf key (the paper uses 1024-bit elements).
	RSABits int
}

// DefaultFig2Config uses a 3-week live-style workload of 40 users (the
// full pairwise blinding is quadratic in users; 40 keeps the experiment
// honest yet fast) and a small-but-real sketch.
func DefaultFig2Config() Fig2Config {
	sim := adsim.DefaultConfig()
	sim.Users = 40
	sim.Sites = 150
	sim.Campaigns = 80
	sim.AvgVisitsPerWeek = 60
	sim.Weeks = 3
	sim.StaticSitesMin, sim.StaticSitesMax = 10, 40
	// The sketch uses the paper's ε = δ = 0.001: a looser geometry lets
	// phantom ad IDs (IDs whose every row-cell collides with real
	// traffic) leak into the enumerated distribution and bias the
	// threshold downward.
	return Fig2Config{
		Sim:     sim,
		Params:  privacy.Params{Epsilon: 0.001, Delta: 0.001, IDSpace: 20000, Suite: group.P256()},
		RSABits: 1024,
	}
}

// Fig2 runs the full privacy pipeline — OPRF ad-ID mapping, per-user CMS,
// pairwise blinding, aggregation, unblinding, enumeration — for each
// simulated week, and compares the recovered #Users distribution and
// threshold against the cleartext ground truth.
func Fig2(cfg Fig2Config) ([]Fig2Week, error) {
	sim, err := adsim.New(cfg.Sim)
	if err != nil {
		return nil, err
	}
	res := sim.Run()

	osrv, err := oprf.NewServer(cfg.RSABits)
	if err != nil {
		return nil, err
	}
	roster, err := blind.NewRoster(cfg.Params.Suite, cfg.Sim.Users, rand.Reader)
	if err != nil {
		return nil, err
	}
	rcfg := privacy.UnversionedConfig(cfg.Params, cfg.Sim.Users)
	clients := make([]*privacy.Client, cfg.Sim.Users)
	for i, p := range roster.Parties {
		clients[i] = privacy.NewClient(rcfg, p, osrv.PublicKey(), osrv)
	}

	weeks := make([]Fig2Week, 0, cfg.Sim.Weeks)
	for w := 0; w < cfg.Sim.Weeks; w++ {
		counters := adsim.Count(res.Impressions, map[int]bool{w: true})
		actual := counters.UserCountsDistribution()

		// Feed each user's week of impressions through the protocol.
		agg, err := privacy.NewAggregator(rcfg, uint64(w))
		if err != nil {
			return nil, err
		}
		for user := 0; user < cfg.Sim.Users; user++ {
			for _, ad := range counters.AdsSeenBy(user) {
				url := sim.Campaign(ad).AdURL()
				if _, err := clients[user].ObserveAd(url); err != nil {
					return nil, err
				}
			}
			rep, err := clients[user].Report(uint64(w))
			if err != nil {
				return nil, err
			}
			if err := agg.Add(rep); err != nil {
				return nil, err
			}
		}
		final, err := agg.Finalize()
		if err != nil {
			return nil, err
		}
		counts := privacy.UserCounts(final, cfg.Params)
		cms := make([]float64, 0, len(counts))
		for _, c := range counts {
			cms = append(cms, float64(c))
		}

		week := Fig2Week{
			Week:         w,
			ActualCounts: actual,
			CMSCounts:    cms,
			ActualTh:     detector.UsersThreshold(actual, detector.EstimatorMean),
			CMSTh:        detector.UsersThreshold(cms, detector.EstimatorMean),
		}
		// Density curves over the 2..10-users x-range of the figure.
		if len(actual) > 0 && len(cms) > 0 {
			kdeA, err := stats.NewKDE(actual, 0)
			if err != nil {
				return nil, err
			}
			kdeC, err := stats.NewKDE(cms, 0)
			if err != nil {
				return nil, err
			}
			xs, ya, err := kdeA.Curve(1, 10, 50)
			if err != nil {
				return nil, err
			}
			_, yc, err := kdeC.Curve(1, 10, 50)
			if err != nil {
				return nil, err
			}
			week.DensityX, week.ActualDensity, week.CMSDensity = xs, ya, yc
		}
		weeks = append(weeks, week)
	}
	return weeks, nil
}

// OverheadReport reproduces the Section 7.1 numbers.
type OverheadReport struct {
	// CMSKB maps input size T → sketch size in decimal KB with 4-byte
	// cells (paper: 10k→185, 50k→196, 100k→207).
	CMSKB map[int]float64
	// CleartextAvgKB is the average user's cleartext alternative
	// (35 ads × 100-char URLs ≈ 3.5 KB).
	CleartextAvgKB float64
	// BlindingTrafficMB maps user count → bulletin-board exchange volume
	// (paper: 10k→0.38 MB with 1024-bit DH shares ~ here scaled by the
	// suite's key size).
	BlindingTrafficMB map[int]float64
	// BlindingComputeFor1kUsers5kCells is the measured client-side time
	// to derive blinding factors for a 5000-cell sketch against a
	// 1000-user roster (paper: ~30 s; ours is faster — HMAC vs their
	// hash-exponentiation — but same linear shape).
	BlindingComputeFor1kUsers5kCells time.Duration
	// OPRFRoundTrip is the measured time to map one ad URL (paper:
	// < 500 ms).
	OPRFRoundTrip time.Duration
	// OPRFExchangeBits is the wire size of the two exchanged group
	// elements (paper: 2 × 1024 bits).
	OPRFExchangeBits int
}

// Overhead measures the protocol overheads of Section 7.1.
func Overhead(rsaBits int, suite group.Suite) (*OverheadReport, error) {
	rep := &OverheadReport{
		CMSKB:             make(map[int]float64),
		BlindingTrafficMB: make(map[int]float64),
	}
	for _, t := range []int{10000, 50000, 100000} {
		cms, err := sketch.NewForElements(t, 0.001, 0.001)
		if err != nil {
			return nil, err
		}
		rep.CMSKB[t] = float64(cms.SizeBytes(4)) / 1000
	}
	rep.CleartextAvgKB = float64(privacy.CleartextReportBytes(35, 100)) / 1000
	for _, n := range []int{10000, 50000} {
		rep.BlindingTrafficMB[n] = float64(blind.TrafficBytes(suite, n)) / 1e6
	}

	// Blinding compute: derive one user's factors for 5k cells against a
	// 1k roster. Deriving the 999 pairwise keys dominates; reuse a small
	// roster's party and scale the PRF loop honestly by calling it with a
	// 1000-user roster constructed once.
	roster, err := blind.NewRoster(suite, 64, rand.Reader)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	roster.Parties[0].Blinding(1, 5000)
	perPeer := time.Since(start) / 63 // 63 peers in the 64-user roster
	rep.BlindingComputeFor1kUsers5kCells = perPeer * 999

	osrv, err := oprf.NewServer(rsaBits)
	if err != nil {
		return nil, err
	}
	cli := oprf.NewClient(osrv.PublicKey(), nil)
	start = time.Now()
	const rounds = 5
	for i := 0; i < rounds; i++ {
		req, err := cli.Blind([]byte(fmt.Sprintf("https://ads.example/creative/%d", i)))
		if err != nil {
			return nil, err
		}
		resp, err := osrv.Evaluate(req.Blinded)
		if err != nil {
			return nil, err
		}
		if _, err := cli.Finalize(req, resp); err != nil {
			return nil, err
		}
	}
	rep.OPRFRoundTrip = time.Since(start) / rounds
	rep.OPRFExchangeBits = 2 * rsaBits
	return rep, nil
}
