package experiments

import (
	"math/rand"

	"eyewnder/internal/adsim"
	"eyewnder/internal/contentbased"
	"eyewnder/internal/detector"
	"eyewnder/internal/eval"
	"eyewnder/internal/taxonomy"
)

// Fig4Config parametrizes the live-validation analogue (Section 7.3).
type Fig4Config struct {
	// Sim is the workload: the paper's live deployment had 100 users over
	// 3 consecutive weeks.
	Sim adsim.Config
	// CBThreshold is the content-based baseline's T (paper: 20).
	CBThreshold int
	// F8Coverage is the fraction of (user, ad) observations the
	// FigureEight labellers tagged (the paper's labellers covered only a
	// few percent); F8Accuracy is how often their tag matches ground
	// truth ("more right than wrong").
	F8Coverage, F8Accuracy float64
	// CrawlerVisitsPerSite and CrawlerSlots control CR collection.
	CrawlerVisitsPerSite, CrawlerSlots int
	// InspectionSample bounds the manual review of non-targeted UNKNOWNs
	// (paper: 200); InspectionAccuracy models the reviewer.
	InspectionSample   int
	InspectionAccuracy float64
	// LabelSeed drives the synthetic labellers.
	LabelSeed int64
}

// DefaultFig4Config mirrors the live deployment: 100 users, 3 weeks.
func DefaultFig4Config() Fig4Config {
	sim := adsim.DefaultConfig()
	sim.Users = 100
	sim.Sites = 1500
	sim.Campaigns = 6000
	sim.Weeks = 3
	// Heavy-tailed static reach over a web much larger than any one
	// user's weekly footprint, so per-ad audiences are long-tailed as on
	// the real web.
	sim.StaticSitesMin, sim.StaticSitesMax = 2, 300
	// The CB threshold must scale with the simulated web's per-topic site
	// supply: at 1500 sites (~50 per topic) the paper's own T = 20 cleanly
	// separates dominant interests from incidental browsing; smaller test
	// webs need a proportionally smaller T.
	return Fig4Config{
		Sim:                  sim,
		CBThreshold:          20,
		F8Coverage:           0.05,
		F8Accuracy:           0.85,
		CrawlerVisitsPerSite: 2,
		CrawlerSlots:         3,
		InspectionSample:     200,
		InspectionAccuracy:   0.95,
		LabelSeed:            99,
	}
}

// Fig4Result bundles the evaluation-tree outputs.
type Fig4Result struct {
	// TotalAds / TargetedAds / StaticAds are the dataset header counts of
	// the figure (6743 / 183 / 6560 in the paper).
	TotalAds, TargetedAds, StaticAds int
	Tree                             *eval.Tree
	Rates                            eval.Rates
	Resolution                       eval.Resolution
	Summary                          eval.Summary
}

// Fig4 reproduces the evaluation tree: classify every (user, ad) pair
// with the count-based algorithm, then push each classification down the
// CR / semantic-overlap / CB / F8 flow-chart, resolve the UNKNOWN groups
// with the retargeting and indirect-OBA analyses, and summarize precision.
func Fig4(cfg Fig4Config) (*Fig4Result, error) {
	sim, err := adsim.New(cfg.Sim)
	if err != nil {
		return nil, err
	}
	res := sim.Run()
	rng := rand.New(rand.NewSource(cfg.LabelSeed))

	// CR dataset: clean-profile visits to every site (Section 7.3.1: the
	// crawler visits every site where eyeWnder classified an ad).
	crSeen := make(map[int]bool) // campaign IDs the crawler encountered
	for site := 0; site < cfg.Sim.Sites; site++ {
		for v := 0; v < cfg.CrawlerVisitsPerSite; v++ {
			for _, cid := range sim.CrawlerVisit(site, cfg.CrawlerSlots) {
				crSeen[cid] = true
			}
		}
	}

	// CB profiles from the visit log.
	cb := contentbased.New(cfg.CBThreshold)
	profiles := make(map[int]*contentbased.Profile, cfg.Sim.Users)
	for _, u := range sim.Users() {
		profiles[u.ID] = contentbased.NewProfile()
	}
	for _, v := range res.VisitLog {
		site := sim.Sites()[v.Site]
		profiles[v.User].VisitSite(site.Domain, site.Topic)
	}

	// Interests map and per-ad receiver sets for the indirect-OBA test.
	interests := make(map[int][]taxonomy.Topic, cfg.Sim.Users)
	for _, u := range sim.Users() {
		interests[u.ID] = u.Interests
	}
	allCounters := adsim.Count(res.Impressions, nil)

	// Classify each (user, ad) pair per week; latest week wins.
	type pairKey struct{ user, ad int }
	verdicts := make(map[pairKey]detector.Class)
	for w := 0; w < cfg.Sim.Weeks; w++ {
		counters := adsim.Count(res.Impressions, map[int]bool{w: true})
		usersTh := detector.UsersThreshold(counters.UserCountsDistribution(), detector.EstimatorMean)
		for user := range counters.DomainsPerUserAd {
			hasMin := counters.ActiveDomains(user) >= 4
			domTh := detector.EstimatorMean.Threshold(counters.DomainCountsDistribution(user))
			for _, ad := range counters.AdsSeenBy(user) {
				k := pairKey{user, ad}
				if !hasMin {
					if _, ok := verdicts[k]; !ok {
						verdicts[k] = detector.Unknown
					}
					continue
				}
				if float64(counters.DomainCount(user, ad)) >= domTh &&
					float64(counters.UserCount(ad)) <= usersTh {
					verdicts[k] = detector.Targeted
				} else {
					verdicts[k] = detector.NonTargeted
				}
			}
		}
	}

	// Build observations.
	out := &Fig4Result{}
	var obs []eval.Observation
	for k, class := range verdicts {
		camp := sim.Campaign(k.ad)
		out.TotalAds++
		if camp.Kind.IsTargeted() {
			out.TargetedAds++
		} else {
			out.StaticAds++
		}
		truth := camp.Kind.IsTargeted()
		labeled := rng.Float64() < cfg.F8Coverage
		label := truth
		if labeled && rng.Float64() > cfg.F8Accuracy {
			label = !truth
		}
		obs = append(obs, eval.Observation{
			User:            k.user,
			AdKey:           camp.LandingURL(),
			Class:           class,
			SeenByCrawler:   crSeen[k.ad],
			SemanticOverlap: cb.HasSemanticOverlap(profiles[k.user], camp.Category),
			F8Labeled:       labeled,
			F8Targeted:      label,
		})
	}

	out.Tree = eval.BuildTree(obs)
	out.Rates = out.Tree.Rates()

	resolver := &simResolver{
		sim:       sim,
		counters:  allCounters,
		interests: interests,
		users:     cfg.Sim.Users,
		accuracy:  cfg.InspectionAccuracy,
		rng:       rng,
	}
	out.Resolution = eval.ResolveUnknowns(obs, resolver, cfg.InspectionSample)
	out.Summary = eval.Summarize(out.Tree, out.Resolution)
	return out, nil
}

// simResolver backs the Section 7.3.3 analyses with their simulation
// analogues: the retargeting repeatability test reduces to checking
// whether the campaign is genuinely a retargeting campaign (the re-visit
// experiment reproduces exactly for those); the indirect-OBA test is the
// real correlation analysis over the ad's audience; manual inspection is
// a noisy ground-truth oracle.
type simResolver struct {
	sim       *adsim.Simulator
	counters  *adsim.Counters
	interests map[int][]taxonomy.Topic
	users     int
	accuracy  float64
	rng       *rand.Rand
}

func (r *simResolver) campaignByLanding(adKey string) *adsim.Campaign {
	for _, c := range r.sim.Campaigns() {
		if c.LandingURL() == adKey {
			return c
		}
	}
	return nil
}

func (r *simResolver) IsRetargeted(adKey string) bool {
	c := r.campaignByLanding(adKey)
	return c != nil && c.Kind == adsim.KindRetargeted
}

func (r *simResolver) IsIndirectOBA(adKey string, user int) bool {
	c := r.campaignByLanding(adKey)
	if c == nil {
		return false
	}
	var receivers []int
	for u := range r.counters.UsersPerAd[c.ID] {
		receivers = append(receivers, u)
	}
	return eval.TopicEnrichment(receivers, r.interests, r.users, c.Category, 0.01)
}

func (r *simResolver) InspectNonTargeted(adKey string, user int) bool {
	c := r.campaignByLanding(adKey)
	if c == nil {
		return false
	}
	correct := !c.Kind.IsTargeted()
	if r.rng.Float64() > r.accuracy {
		return !correct
	}
	return correct
}
