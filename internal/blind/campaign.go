package blind

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// Per-campaign key derivation. Two concurrent campaigns must never
// expand the same pairwise secret over the same round: identical pads
// would cancel across the campaigns' sketches, so an observer who can
// subtract one campaign's blinded report from another's would recover
// the difference of the two clear sketches. Campaign c ≠ 0 therefore
// derives an independent pairwise secret per pair,
//
//	k'_ij = SHA-256("eyewnder/blind/campaign/v1" ‖ c_BE ‖ k_ij)
//
// The derivation is symmetric in (i, j) — both sides hash the same
// k_ij — so the cancellation property of the additive shares is
// preserved within each campaign, and distinct campaigns see
// independent streams. Campaign 0 keeps the raw pairwise secrets,
// byte-identical to the single-campaign deployment style.

// campaignKDFLabel is the domain-separation label of the derivation.
const campaignKDFLabel = "eyewnder/blind/campaign/v1"

// ForCampaign returns the party view for the campaign: campaign 0 is
// the receiver itself; any other campaign gets derived pairwise keys
// (and optionally its own keystream suite via ForCampaignKeystream).
// Derived parties are cached, so per-round blinding across many
// campaigns pays the hashing once.
func (p *Party) ForCampaign(campaign uint32) *Party {
	return p.ForCampaignKeystream(campaign, p.ks)
}

// ForCampaignKeystream is ForCampaign with an explicit factor-expansion
// suite for the derived party — campaigns may pin a different suite
// than the deployment default. For campaign 0 the suite must equal the
// party's own (campaign 0 is the deployment itself).
func (p *Party) ForCampaignKeystream(campaign uint32, ks Keystream) *Party {
	if campaign == 0 && ks == p.ks {
		return p
	}
	key := campaignKey{campaign: campaign, ks: ks}
	p.mu.Lock()
	defer p.mu.Unlock()
	if d, ok := p.derived[key]; ok {
		return d
	}
	d := &Party{
		index:    p.index,
		pairKeys: p.pairKeys,
		peers:    p.peers,
		n:        p.n,
		ks:       ks,
	}
	if campaign != 0 {
		d.pairKeys = make([][]byte, len(p.pairKeys))
		var prefix [len(campaignKDFLabel) + 4]byte
		copy(prefix[:], campaignKDFLabel)
		binary.BigEndian.PutUint32(prefix[len(campaignKDFLabel):], campaign)
		for j, k := range p.pairKeys {
			if k == nil {
				continue
			}
			h := sha256.New()
			h.Write(prefix[:])
			h.Write(k)
			d.pairKeys[j] = h.Sum(nil)
		}
	}
	if p.derived == nil {
		p.derived = make(map[campaignKey]*Party)
	}
	p.derived[key] = d
	return d
}

// campaignKey keys the derived-party cache.
type campaignKey struct {
	campaign uint32
	ks       Keystream
}

// derivedCache is embedded in Party (see blind.go) — declared here so
// the campaign derivation reads as one unit.
type derivedCache struct {
	mu      sync.Mutex
	derived map[campaignKey]*Party
}
