// Prometheus-text-format and JSON snapshot encoders over a Registry.
// Encoding allocates freely — it runs on the admin endpoint, never on
// a report path.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteProm encodes every registered instrument in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE header per
// metric name, label variants grouped under it, histograms expanded to
// cumulative _bucket{le=…} series plus _sum and _count.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastName string
	for _, m := range r.snapshotMetrics() {
		if m.name != lastName {
			lastName = m.name
			typ := "counter"
			switch m.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, typ)
		}
		switch m.kind {
		case kindCounter:
			writeSample(bw, m.name, m.labels, "", formatUint(m.counter.Value()))
		case kindGauge:
			writeSample(bw, m.name, m.labels, "", strconv.FormatInt(m.gauge.Value(), 10))
		case kindGaugeFunc:
			v := 0.0
			if m.gaugeFn != nil {
				v = m.gaugeFn()
			}
			writeSample(bw, m.name, m.labels, "", formatFloat(v))
		case kindHistogram:
			writeHistogram(bw, m)
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels,extra} value` line; labels and
// extra may each be empty.
func writeSample(w io.Writer, name, labels, extra, value string) {
	io.WriteString(w, name)
	if labels != "" || extra != "" {
		io.WriteString(w, "{")
		io.WriteString(w, labels)
		if labels != "" && extra != "" {
			io.WriteString(w, ",")
		}
		io.WriteString(w, extra)
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, value)
	io.WriteString(w, "\n")
}

// writeHistogram expands one histogram into its cumulative bucket
// series. Bounds are stored in nanoseconds and exposed in seconds.
func writeHistogram(w io.Writer, m *metric) {
	h := m.hist
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := `le="` + formatFloat(float64(b)/1e9) + `"`
		writeSample(w, m.name+"_bucket", m.labels, le, formatUint(cum))
	}
	// +Inf must equal _count even when observations raced the bucket
	// loads above; re-load count last so the invariant cum ≤ count holds
	// and +Inf is authoritative.
	count := h.count.Load()
	if count < cum {
		count = cum
	}
	writeSample(w, m.name+"_bucket", m.labels, `le="+Inf"`, formatUint(count))
	writeSample(w, m.name+"_sum", m.labels, "", formatFloat(h.Sum().Seconds()))
	writeSample(w, m.name+"_count", m.labels, "", formatUint(count))
}

func formatUint(v uint64) string   { return strconv.FormatUint(v, 10) }
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Snapshot flattens the registry into sample-name → value pairs using
// the same sample names the Prometheus encoding produces (histograms
// contribute their _count and _sum; buckets are omitted). It is the
// machine-readable form /statusz embeds and the harness scrape diffs.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range r.snapshotMetrics() {
		key := m.name
		if m.labels != "" {
			key += "{" + m.labels + "}"
		}
		switch m.kind {
		case kindCounter:
			out[key] = float64(m.counter.Value())
		case kindGauge:
			out[key] = float64(m.gauge.Value())
		case kindGaugeFunc:
			if m.gaugeFn != nil {
				out[key] = m.gaugeFn()
			} else {
				out[key] = 0
			}
		case kindHistogram:
			countKey, sumKey := m.name+"_count", m.name+"_sum"
			if m.labels != "" {
				countKey += "{" + m.labels + "}"
				sumKey += "{" + m.labels + "}"
			}
			out[countKey] = float64(m.hist.Count())
			out[sumKey] = m.hist.Sum().Seconds()
		}
	}
	return out
}

// WriteJSON encodes Snapshot as one JSON object with sorted keys
// (encoding/json sorts map keys), terminated by a newline.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
