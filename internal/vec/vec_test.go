package vec

import (
	"math/rand"
	"testing"
)

func TestAddSubRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 1024, parallelThreshold + 17} {
		rng := rand.New(rand.NewSource(int64(n)))
		dst := make([]uint64, n)
		src := make([]uint64, n)
		orig := make([]uint64, n)
		for i := range dst {
			dst[i] = rng.Uint64()
			src[i] = rng.Uint64()
		}
		copy(orig, dst)
		Add(dst, src)
		for i := range dst {
			if dst[i] != orig[i]+src[i] {
				t.Fatalf("n=%d: Add mismatch at %d", n, i)
			}
		}
		Sub(dst, src)
		for i := range dst {
			if dst[i] != orig[i] {
				t.Fatalf("n=%d: Sub did not invert Add at %d", n, i)
			}
		}
	}
}

func TestAddWrapsAround(t *testing.T) {
	dst := []uint64{^uint64(0)}
	Add(dst, []uint64{1})
	if dst[0] != 0 {
		t.Fatalf("wrap-around add = %d, want 0", dst[0])
	}
	Sub(dst, []uint64{1})
	if dst[0] != ^uint64(0) {
		t.Fatalf("wrap-around sub = %d", dst[0])
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched lengths did not panic")
		}
	}()
	Add(make([]uint64, 2), make([]uint64, 3))
}

func TestParallelCoversRange(t *testing.T) {
	const n = 100000
	seen := make([]uint64, n)
	Parallel(n, 1024, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	Parallel(0, 1024, func(lo, hi int) { t.Error("fn called for empty range") })
}

func BenchmarkAdd16k(b *testing.B)  { benchAdd(b, 1<<14) }
func BenchmarkAdd256k(b *testing.B) { benchAdd(b, 1<<18) }

func benchAdd(b *testing.B, n int) {
	dst := make([]uint64, n)
	src := make([]uint64, n)
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add(dst, src)
	}
}
