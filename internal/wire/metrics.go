package wire

import (
	"sync"

	"eyewnder/internal/obs"
)

// wireMetrics holds the server's pre-registered instrument handles.
// The decode counter is sharded: every streamed report bumps it, and
// many connections decode concurrently, so each connection takes its
// own padded shard at accept time. All updates are plain atomics — the
// streamed-report path stays 0 allocs/op (see backend's alloc
// regression test).
type wireMetrics struct {
	framesDecoded     *obs.ShardedCounter
	ackBatches        *obs.Counter
	handshakes        *obs.Counter
	handshakeRejected *obs.Counter
}

// metrics returns the server's instrument handles, falling back to a
// process-wide private set for Server values constructed without the
// Serve entry points (tests drive foldLoop on bare literals).
func (s *Server) metrics() *wireMetrics {
	if s.m != nil {
		return s.m
	}
	fallbackWireMetricsOnce.Do(func() {
		fallbackWireMetrics = newWireMetrics(nil)
	})
	return fallbackWireMetrics
}

var (
	fallbackWireMetricsOnce sync.Once
	fallbackWireMetrics     *wireMetrics
)

// newWireMetrics registers the wire instruments in reg (or a private
// registry when reg is nil).
func newWireMetrics(reg *obs.Registry) *wireMetrics {
	reg = obs.Ensure(reg)
	return &wireMetrics{
		framesDecoded: reg.ShardedCounter("eyewnder_wire_report_frames_total",
			"Streamed report frames decoded off connections (batched and legacy paths)."),
		ackBatches: reg.Counter("eyewnder_wire_ack_batches_total",
			"Binary batched-ack frames emitted by fold goroutines."),
		handshakes: reg.Counter("eyewnder_wire_handshakes_total",
			"Hello/Welcome config handshakes answered."),
		handshakeRejected: reg.Counter("eyewnder_wire_handshake_rejected_total",
			"Handshakes refused for revision incompatibility."),
	}
}
