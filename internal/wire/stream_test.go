package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

func testFrame(cells int) *ReportFrame {
	f := &ReportFrame{User: 3, Round: 7, D: 2, W: cells / 2, N: 42, Seed: 9, Cells: make([]uint64, cells)}
	for i := range f.Cells {
		f.Cells[i] = uint64(i)*0x9e3779b9 + 1
	}
	return f
}

// readBack consumes the header word and payload WriteReportFrame produced.
func readBack(t *testing.T, data []byte) (*ReportFrame, error) {
	t.Helper()
	if len(data) < 4 {
		t.Fatalf("frame too short to hold a header: %d bytes", len(data))
	}
	word := binary.BigEndian.Uint32(data)
	if word&reportFlag == 0 {
		t.Fatal("report frame header does not set the report flag")
	}
	buf := reportBufPool.Get().(*reportBuf)
	defer reportBufPool.Put(buf)
	return readReportFrame(bytes.NewReader(data[4:]), word&^reportFlag, buf)
}

func TestReportFrameRoundTrip(t *testing.T) {
	want := testFrame(64)
	var wire bytes.Buffer
	if err := WriteReportFrame(&wire, want); err != nil {
		t.Fatal(err)
	}
	got, err := readBack(t, wire.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.User != want.User || got.Round != want.Round || got.D != want.D ||
		got.W != want.W || got.N != want.N || got.Seed != want.Seed {
		t.Fatalf("header round trip: got %+v want %+v", got, want)
	}
	for i := range want.Cells {
		if got.Cells[i] != want.Cells[i] {
			t.Fatalf("cell %d = %d, want %d", i, got.Cells[i], want.Cells[i])
		}
	}
}

func TestReportFrameWriteValidation(t *testing.T) {
	f := testFrame(64)
	f.Cells = f.Cells[:10] // length no longer d·w
	if err := WriteReportFrame(io.Discard, f); !errors.Is(err, ErrBadReportFrame) {
		t.Fatalf("short cells err = %v", err)
	}
	f = testFrame(64)
	f.D = 0
	if err := WriteReportFrame(io.Discard, f); !errors.Is(err, ErrBadReportFrame) {
		t.Fatalf("zero depth err = %v", err)
	}
}

func TestReportFrameShortPayload(t *testing.T) {
	want := testFrame(64)
	var wire bytes.Buffer
	if err := WriteReportFrame(&wire, want); err != nil {
		t.Fatal(err)
	}
	full := wire.Bytes()
	// Truncate at every structurally interesting point: inside the
	// preamble and inside the cell block.
	for _, cut := range []int{4, 4 + 10, 4 + reportPreamble - 1, 4 + reportPreamble + 9, len(full) - 1} {
		word := binary.BigEndian.Uint32(full)
		buf := reportBufPool.Get().(*reportBuf)
		_, err := readReportFrame(bytes.NewReader(full[4:cut]), word&^reportFlag, buf)
		reportBufPool.Put(buf)
		if err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestReportFrameCorruptHeader(t *testing.T) {
	corrupt := func(mutate func(pre []byte), wantErr string) {
		t.Helper()
		want := testFrame(64)
		var wire bytes.Buffer
		if err := WriteReportFrame(&wire, want); err != nil {
			t.Fatal(err)
		}
		data := wire.Bytes()
		mutate(data[4:])
		_, err := readBack(t, data)
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("err = %v, want %q", err, wantErr)
		}
	}
	// d = 0 rows.
	corrupt(func(pre []byte) { binary.LittleEndian.PutUint64(pre[16:], 0) }, "malformed")
	// d over the geometry cap.
	corrupt(func(pre []byte) { binary.LittleEndian.PutUint64(pre[16:], 1<<21) }, "malformed")
	// d·w no longer matching the payload length.
	corrupt(func(pre []byte) { binary.LittleEndian.PutUint64(pre[24:], 99) }, "malformed")
	// user index beyond any roster.
	corrupt(func(pre []byte) { binary.LittleEndian.PutUint64(pre[0:], 1<<40) }, "malformed")
}

func TestReportFramePayloadLengthBounds(t *testing.T) {
	buf := reportBufPool.Get().(*reportBuf)
	defer reportBufPool.Put(buf)
	if _, err := readReportFrame(bytes.NewReader(nil), reportPreamble-1, buf); !errors.Is(err, ErrBadReportFrame) {
		t.Fatalf("undersized payload err = %v", err)
	}
	if _, err := readReportFrame(bytes.NewReader(nil), MaxFrame+1, buf); !errors.Is(err, ErrBadReportFrame) {
		t.Fatalf("oversized payload err = %v", err)
	}
}

// The pooled reader must not allocate per frame once warm (beyond the
// returned frame header itself): the cell slice and, where used, the
// byte scratch are recycled.
func TestReportFrameReaderPooledAllocs(t *testing.T) {
	want := testFrame(4096)
	var wire bytes.Buffer
	if err := WriteReportFrame(&wire, want); err != nil {
		t.Fatal(err)
	}
	data := wire.Bytes()
	word := binary.BigEndian.Uint32(data)
	buf := reportBufPool.Get().(*reportBuf)
	defer reportBufPool.Put(buf)
	rd := bytes.NewReader(nil)
	allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(data[4:])
		if _, err := readReportFrame(rd, word&^reportFlag, buf); err != nil {
			t.Fatal(err)
		}
	})
	// One small alloc for the ReportFrame header; the 32 KiB cell block
	// must come from the warm buffer, not the heap.
	if allocs > 2 {
		t.Fatalf("pooled reader allocates %v times per frame, want <= 2", allocs)
	}
}

// recordingSink keeps copies of consumed frames (Cells are pooled, so a
// sink that retains must copy — as documented).
type recordingSink struct {
	mu     sync.Mutex
	frames []ReportFrame
	err    error
}

func (s *recordingSink) ConsumeReport(f *ReportFrame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	cp := *f
	cp.Cells = append([]uint64(nil), f.Cells...)
	s.frames = append(s.frames, cp)
	return nil
}

// A connection must be able to interleave streamed report frames with
// ordinary JSON messages, and the sink must see exactly the cells sent.
func TestServerStreamedReports(t *testing.T) {
	sink := &recordingSink{}
	echo := func(m *Msg) (string, interface{}, error) { return "echo", struct{}{}, nil }
	srv, err := ServeWithSink("127.0.0.1:0", echo, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 3; i++ {
		f := testFrame(128)
		f.User = i
		if err := cli.SubmitReportFrame(f); err != nil {
			t.Fatal(err)
		}
		if err := cli.Do("ping", nil, nil); err != nil { // JSON interleave
			t.Fatal(err)
		}
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.frames) != 3 {
		t.Fatalf("sink saw %d frames, want 3", len(sink.frames))
	}
	for i, f := range sink.frames {
		if f.User != i || f.Round != 7 || len(f.Cells) != 128 {
			t.Fatalf("frame %d = %+v", i, f)
		}
		want := testFrame(128)
		for j := range want.Cells {
			if f.Cells[j] != want.Cells[j] {
				t.Fatalf("frame %d cell %d = %d, want %d", i, j, f.Cells[j], want.Cells[j])
			}
		}
	}
}

// A sink error must surface to the submitting client as a remote error,
// and the connection must survive it.
func TestServerStreamedReportSinkError(t *testing.T) {
	sink := &recordingSink{err: fmt.Errorf("round closed")}
	srv, err := ServeWithSink("127.0.0.1:0", func(m *Msg) (string, interface{}, error) {
		return "echo", struct{}{}, nil
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.SubmitReportFrame(testFrame(64)); err == nil || !strings.Contains(err.Error(), "round closed") {
		t.Fatalf("err = %v", err)
	}
	if err := cli.Do("ping", nil, nil); err != nil {
		t.Fatalf("connection did not survive sink error: %v", err)
	}
}

// A server without a sink rejects streamed reports gracefully.
func TestServerStreamedReportNoSink(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(m *Msg) (string, interface{}, error) {
		return "echo", struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.SubmitReportFrame(testFrame(64)); err == nil || !strings.Contains(err.Error(), "does not accept") {
		t.Fatalf("err = %v", err)
	}
}
