// Package sketch implements the count-min sketch (CMS) of Cormode and
// Muthukrishnan, the synopsis data structure at the heart of eyeWnder's
// privacy-preserving distributed counting protocol (Section 6.1 of the
// paper).
//
// A CMS is a d×w array of counters with d pairwise-independent hash
// functions. Encoding an element increments one counter per row; the
// estimated frequency is the minimum over the element's d counters, which
// guarantees
//
//	count(x) <= Query(x) <= count(x) + ε·N   with probability 1−δ
//
// where N is the total number of updates, d = ⌈ln(1/δ)⌉ and w = ⌈e/ε⌉.
//
// Two properties make the CMS the right structure for eyeWnder:
//
//  1. It is a linear sketch: the cell-wise sum of per-user sketches equals
//     the sketch of the multiset union, so the back-end can aggregate
//     blinded reports and unblind only the total (Section 6 "Aggregation
//     and unblinding").
//  2. Its size depends only on (ε, δ), not on the number of distinct ads,
//     so users who cannot enumerate the global ad set A can still report.
//
// Cells are uint64 so that the additive-share blinding of package blind
// cancels exactly under wrap-around arithmetic.
package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// Errors returned by the package.
var (
	ErrDimensionMismatch = errors.New("sketch: dimension mismatch")
	ErrBadParams         = errors.New("sketch: epsilon and delta must be in (0,1)")
	ErrCorrupt           = errors.New("sketch: corrupt serialized data")
)

// CMS is a count-min sketch. The zero value is not usable; construct with
// New or NewWithDimensions.
type CMS struct {
	d, w  int
	cells []uint64 // row-major d×w
	n     uint64   // total updates (weight), for error-bound reporting
	seed  uint64   // row-hash seed base so independent sketches agree
}

// New returns a CMS sized for the requested error ε and failure
// probability δ: d = ⌈ln(1/δ)⌉ rows and w = ⌈e/ε⌉ columns.
func New(epsilon, delta float64) (*CMS, error) {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return nil, ErrBadParams
	}
	d := int(math.Ceil(math.Log(1 / delta)))
	w := int(math.Ceil(math.E / epsilon))
	return NewWithDimensions(d, w)
}

// NewForElements returns a CMS sized the way the paper sizes it
// (Section 6.1): d = ⌈ln(T/δ)⌉ rows and w = ⌈e/ε⌉ columns, where T is the
// number of elements to be counted. The extra ln T depth union-bounds the
// failure probability across all T estimates, and reproduces the paper's
// reported sketch sizes exactly: with ε = δ = 0.001 and 4-byte cells,
// 185 KB, 196 KB and 207 KB for T = 10k, 50k and 100k.
func NewForElements(t int, epsilon, delta float64) (*CMS, error) {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return nil, ErrBadParams
	}
	if t < 1 {
		return nil, fmt.Errorf("sketch: invalid element count %d", t)
	}
	d := int(math.Ceil(math.Log(float64(t) / delta)))
	w := int(math.Ceil(math.E / epsilon))
	return NewWithDimensions(d, w)
}

// NewWithDimensions returns a CMS with exactly d rows and w columns.
func NewWithDimensions(d, w int) (*CMS, error) {
	if d < 1 || w < 1 {
		return nil, fmt.Errorf("sketch: invalid dimensions d=%d w=%d", d, w)
	}
	return &CMS{d: d, w: w, cells: make([]uint64, d*w)}, nil
}

// Depth returns the number of rows d.
func (c *CMS) Depth() int { return c.d }

// Width returns the number of columns w.
func (c *CMS) Width() int { return c.w }

// Cells returns the total number of counters d·w.
func (c *CMS) Cells() int { return len(c.cells) }

// N returns the total weight of all updates applied to the sketch.
// After Merge it is the sum of the merged totals.
func (c *CMS) N() uint64 { return c.n }

// SizeBytes returns the serialized payload size assuming cellBytes bytes
// per counter (the paper assumes 4-byte cells in its Section 7.1 overhead
// analysis).
func (c *CMS) SizeBytes(cellBytes int) int { return len(c.cells) * cellBytes }

// EpsilonDelta reports the (ε, δ) guarantee implied by the dimensions.
func (c *CMS) EpsilonDelta() (epsilon, delta float64) {
	return math.E / float64(c.w), math.Exp(-float64(c.d))
}

// rowIndex hashes x into a column for row j. Each row uses an independent
// 64-bit FNV-1a stream keyed by the row number, giving the pairwise
// independence the analysis requires in practice.
func (c *CMS) rowIndex(j int, x []byte) int {
	h := fnv.New64a()
	var key [16]byte
	binary.LittleEndian.PutUint64(key[:8], uint64(j)*0x9e3779b97f4a7c15+1)
	binary.LittleEndian.PutUint64(key[8:], c.seed)
	h.Write(key[:])
	h.Write(x)
	return int(h.Sum64() % uint64(c.w))
}

// Update encodes one occurrence of x.
func (c *CMS) Update(x []byte) { c.UpdateWeighted(x, 1) }

// UpdateString encodes one occurrence of the string s.
func (c *CMS) UpdateString(s string) { c.UpdateWeighted([]byte(s), 1) }

// UpdateWeighted adds weight w to every row-counter of x.
func (c *CMS) UpdateWeighted(x []byte, w uint64) {
	for j := 0; j < c.d; j++ {
		c.cells[j*c.w+c.rowIndex(j, x)] += w
	}
	c.n += w
}

// ConservativeUpdate adds weight w using the conservative-update rule:
// only counters that would otherwise fall below the new estimate are
// raised. It strictly reduces over-estimation for skewed streams and is
// provided for the sketch-geometry ablation; the paper's protocol uses the
// plain Update because conservative update is NOT linear and therefore
// incompatible with blinded aggregation.
func (c *CMS) ConservativeUpdate(x []byte, w uint64) {
	est := c.Query(x) + w
	for j := 0; j < c.d; j++ {
		idx := j*c.w + c.rowIndex(j, x)
		if c.cells[idx] < est {
			c.cells[idx] = est
		}
	}
	c.n += w
}

// Query returns the estimated frequency of x: min over rows.
func (c *CMS) Query(x []byte) uint64 {
	min := uint64(math.MaxUint64)
	for j := 0; j < c.d; j++ {
		v := c.cells[j*c.w+c.rowIndex(j, x)]
		if v < min {
			min = v
		}
	}
	return min
}

// QueryString returns the estimated frequency of the string s.
func (c *CMS) QueryString(s string) uint64 { return c.Query([]byte(s)) }

// ErrorBound returns the additive error ε·N that Query may exceed the true
// count by, with probability at least 1−δ.
func (c *CMS) ErrorBound() float64 {
	eps, _ := c.EpsilonDelta()
	return eps * float64(c.n)
}

// Merge adds other into c cell-wise. Both sketches must share dimensions
// (and therefore hash layout). Merge is the linear-aggregation primitive
// used by the back-end server.
func (c *CMS) Merge(other *CMS) error {
	if other == nil || c.d != other.d || c.w != other.w || c.seed != other.seed {
		return ErrDimensionMismatch
	}
	for i, v := range other.cells {
		c.cells[i] += v
	}
	c.n += other.n
	return nil
}

// Clone returns a deep copy of c.
func (c *CMS) Clone() *CMS {
	cp := &CMS{d: c.d, w: c.w, n: c.n, seed: c.seed, cells: make([]uint64, len(c.cells))}
	copy(cp.cells, c.cells)
	return cp
}

// Reset zeroes all counters and the update total, keeping dimensions.
func (c *CMS) Reset() {
	for i := range c.cells {
		c.cells[i] = 0
	}
	c.n = 0
}

// Cell returns the raw counter at row j, column k. It is exported so that
// the blinding layer can blind each cell, per Section 6 of the paper.
func (c *CMS) Cell(j, k int) uint64 { return c.cells[j*c.w+k] }

// SetCell overwrites the raw counter at row j, column k.
func (c *CMS) SetCell(j, k int, v uint64) { c.cells[j*c.w+k] = v }

// AddToCell adds delta (mod 2^64) to the raw counter at flat index i.
// Wrap-around is intentional: blinding factors are additive shares of zero
// modulo 2^64.
func (c *CMS) AddToCell(i int, delta uint64) { c.cells[i] += delta }

// FlatCells returns the backing counter slice (row-major). Callers must
// not grow it; mutating entries is allowed and is how the privacy protocol
// applies blinding in place.
func (c *CMS) FlatCells() []uint64 { return c.cells }

// MarshalBinary serializes the sketch: header (d, w, n, seed) followed by
// the cells in little-endian order.
func (c *CMS) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 32+8*len(c.cells))
	binary.LittleEndian.PutUint64(buf[0:], uint64(c.d))
	binary.LittleEndian.PutUint64(buf[8:], uint64(c.w))
	binary.LittleEndian.PutUint64(buf[16:], c.n)
	binary.LittleEndian.PutUint64(buf[24:], c.seed)
	for i, v := range c.cells {
		binary.LittleEndian.PutUint64(buf[32+8*i:], v)
	}
	return buf, nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (c *CMS) UnmarshalBinary(data []byte) error {
	if len(data) < 32 {
		return ErrCorrupt
	}
	d := int(binary.LittleEndian.Uint64(data[0:]))
	w := int(binary.LittleEndian.Uint64(data[8:]))
	if d < 1 || w < 1 || d > 1<<20 || w > 1<<32 {
		return ErrCorrupt
	}
	if len(data) != 32+8*d*w {
		return ErrCorrupt
	}
	c.d, c.w = d, w
	c.n = binary.LittleEndian.Uint64(data[16:])
	c.seed = binary.LittleEndian.Uint64(data[24:])
	c.cells = make([]uint64, d*w)
	for i := range c.cells {
		c.cells[i] = binary.LittleEndian.Uint64(data[32+8*i:])
	}
	return nil
}

// String implements fmt.Stringer with a compact summary.
func (c *CMS) String() string {
	eps, delta := c.EpsilonDelta()
	return fmt.Sprintf("CMS(d=%d, w=%d, n=%d, ε=%.4g, δ=%.4g)", c.d, c.w, c.n, eps, delta)
}
