package experiments

import (
	"eyewnder/internal/adsim"
	"eyewnder/internal/logit"
)

// Table2Config parametrizes the socio-economic bias analysis (Section 8).
type Table2Config struct {
	// Sim must have DemographicBias enabled so the planted gender /
	// income / age effects exist to be recovered.
	Sim adsim.Config
}

// DefaultTable2Config plants the paper's biases into a moderately sized
// population.
func DefaultTable2Config() Table2Config {
	sim := adsim.DefaultConfig()
	sim.Users = 400
	sim.Sites = 500
	// Targeted-campaign supply must exceed any demographic group's demand
	// (eligible campaigns × frequency cap > targeted slots per week);
	// otherwise every group exhausts the same caps and the planted odds
	// compress toward 1.
	sim.Campaigns = 2000
	sim.AvgVisitsPerWeek = 60
	sim.Weeks = 2
	sim.DemographicBias = true
	sim.Seed = 7
	return Table2Config{Sim: sim}
}

// Table2Result carries the regression outputs.
type Table2Result struct {
	// Model is the final D ~ G + A + L fit.
	Model *logit.Model
	// Rows are the Table 2 rows (gender, income, age levels; the
	// intercept row is first).
	Rows []logit.CoefSummary
	// EmploymentLRT is the anova-style test that justified dropping the
	// employment factor (statistic, df, p).
	EmploymentLRTStat float64
	EmploymentLRTDF   int
	EmploymentLRTP    float64
	// Fig5 holds the predicted targeting probability per factor level
	// (other factors at their base levels) — the Figure 5 series.
	Fig5 map[string]map[string]float64
	// Observations is the number of delivered ads analysed.
	Observations int
}

// factor level name tables, base level first (matching the paper's model).
var (
	genderLevels = []string{"undisclosed", "female", "male"}
	incomeLevels = []string{"0-30k", "30k-60k", "60k-90k", "90k-..."}
	ageLevels    = []string{"1-20", "20-30", "30-40", "40-50", "50-60", "60-70"}
	emplLevels   = []string{"unemployed", "employed"}
)

// Table2 runs the Section 8 analysis: simulate delivery with planted
// demographic biases, regress ad type on gender + age + income, test
// whether employment adds signal (it should not), and compute the
// Figure 5 predicted probabilities.
func Table2(cfg Table2Config) (*Table2Result, error) {
	sim, err := adsim.New(cfg.Sim)
	if err != nil {
		return nil, err
	}
	res := sim.Run()

	full := logit.NewBuilder().
		Factor("gender", genderLevels...).
		Factor("income", incomeLevels...).
		Factor("age", ageLevels...)
	withEmpl := logit.NewBuilder().
		Factor("gender", genderLevels...).
		Factor("income", incomeLevels...).
		Factor("age", ageLevels...).
		Factor("employed", emplLevels...)

	users := sim.Users()
	for _, imp := range res.Impressions {
		u := users[imp.User]
		levels := map[string]string{
			"gender": u.Demo.Gender.String(),
			"income": u.Demo.Income.String(),
			"age":    u.Demo.Age.String(),
		}
		targeted := sim.Campaign(imp.Campaign).Kind.IsTargeted()
		if err := full.Add(levels, targeted); err != nil {
			return nil, err
		}
		levels["employed"] = emplLevels[0]
		if u.Demo.Employed {
			levels["employed"] = emplLevels[1]
		}
		if err := withEmpl.Add(levels, targeted); err != nil {
			return nil, err
		}
	}

	model, err := full.Fit()
	if err != nil {
		return nil, err
	}
	emplModel, err := withEmpl.Fit()
	if err != nil {
		return nil, err
	}
	lrtStat, lrtDF, lrtP, err := logit.LikelihoodRatioTest(model, emplModel)
	if err != nil {
		return nil, err
	}

	out := &Table2Result{
		Model:             model,
		Rows:              model.Summary(),
		EmploymentLRTStat: lrtStat,
		EmploymentLRTDF:   lrtDF,
		EmploymentLRTP:    lrtP,
		Fig5:              make(map[string]map[string]float64),
		Observations:      full.N(),
	}

	// Figure 5: predicted probability per level, other factors at base.
	base := map[string]string{
		"gender": genderLevels[0],
		"income": incomeLevels[0],
		"age":    ageLevels[0],
	}
	for factorName, levels := range map[string][]string{
		"gender": genderLevels, "income": incomeLevels, "age": ageLevels,
	} {
		out.Fig5[factorName] = make(map[string]float64, len(levels))
		for _, lv := range levels {
			at := map[string]string{}
			for k, v := range base {
				at[k] = v
			}
			at[factorName] = lv
			row, err := full.Row(at)
			if err != nil {
				return nil, err
			}
			out.Fig5[factorName][lv] = model.Predict(row)
		}
	}
	return out, nil
}
