package stats

import "math"

// NormCDF returns Φ(x), the standard normal cumulative distribution
// function, via the complementary error function.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormQuantile returns Φ⁻¹(p) for p in (0,1) using the Acklam rational
// approximation refined with one Halley step. It panics outside (0,1).
func NormQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormQuantile requires p in (0,1)")
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// WaldTest reports the z statistic and two-sided p-value for a coefficient
// estimate with the given standard error — the "Z-val" and "P>|z|" columns
// of Table 2 in the paper.
func WaldTest(coef, se float64) (z, p float64) {
	if se == 0 {
		if coef == 0 {
			return 0, 1
		}
		return math.Inf(sign(coef)), 0
	}
	z = coef / se
	p = 2 * (1 - NormCDF(math.Abs(z)))
	return z, p
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with k
// degrees of freedom, via the regularized lower incomplete gamma function.
// It is used by the ANOVA-style likelihood-ratio test of Section 8.
func ChiSquareCDF(x float64, k int) float64 {
	if x <= 0 || k <= 0 {
		return 0
	}
	return regIncGammaLower(float64(k)/2, x/2)
}

// ChiSquareSF returns the survival function 1 - CDF (the LRT p-value).
func ChiSquareSF(x float64, k int) float64 {
	return 1 - ChiSquareCDF(x, k)
}

// regIncGammaLower computes P(a, x), the regularized lower incomplete gamma
// function, by series expansion for x < a+1 and continued fraction
// otherwise (Numerical Recipes style, stdlib math only).
func regIncGammaLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a,x), then P = 1-Q.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}
