package blind

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"testing"
)

// refFactor recomputes factor m the slow way, straight from the spec:
// block = HMAC-SHA256(key, round ‖ m/4), factor = block word m%4.
func refFactor(key []byte, round uint64, m int) uint64 {
	mac := hmac.New(sha256.New, key)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], round)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m)/factorsPerBlock)
	mac.Write(hdr[:])
	block := mac.Sum(nil)
	return binary.LittleEndian.Uint64(block[8*(m%factorsPerBlock):])
}

func TestKeystreamMatchesReference(t *testing.T) {
	key := []byte("pairwise-secret-0123456789abcdef")
	const round = 42
	var ks keystream
	ks.init(key, round, 0)
	for m := 0; m < 40; m++ {
		if got, want := ks.next(), refFactor(key, round, m); got != want {
			t.Fatalf("factor %d = %#x, want %#x", m, got, want)
		}
	}
}

// Counter-mode random access: starting mid-stream must agree with the
// sequential walk, cell by cell — this is what lets workers shard one
// pair's cells.
func TestKeystreamSeek(t *testing.T) {
	key := []byte("another-pairwise-secret")
	const round = 7
	for _, start := range []int{1, 3, 4, 5, 17, 100} {
		var ks keystream
		ks.init(key, round, start)
		for m := start; m < start+10; m++ {
			if got, want := ks.next(), refFactor(key, round, m); got != want {
				t.Fatalf("start %d: factor %d = %#x, want %#x", start, m, got, want)
			}
		}
	}
}

func TestKeystreamRoundsDiffer(t *testing.T) {
	key := []byte("same-key-different-round")
	var a, b keystream
	a.init(key, 1, 0)
	b.init(key, 2, 0)
	same := 0
	for i := 0; i < 16; i++ {
		if a.next() == b.next() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("keystreams identical across rounds")
	}
}

// Factor generation must be allocation-free once the stream is keyed:
// blinding touches every sketch cell for every peer, so per-cell garbage
// would dominate the client's report cost.
func TestKeystreamZeroAllocs(t *testing.T) {
	var ks keystream
	ks.init([]byte("zero-alloc-pair-key"), 3, 0)
	var sink uint64
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1024; i++ {
			sink += ks.next()
		}
	})
	if allocs != 0 {
		t.Fatalf("keystream allocates %v times per 1024 factors, want 0", allocs)
	}
	_ = sink
}
