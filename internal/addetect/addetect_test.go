package addetect

import (
	"fmt"
	"strings"
	"testing"
)

func TestHrefHeuristic(t *testing.T) {
	page := `
<html><body>
<div class="content"><p>article text</p></div>
<div class="ad-slot">
  <a href="https://shop3.example/fishing/offer-12">
    <img src="https://ads.adx1.example/creative/12">
  </a>
</div>
</body></html>`
	ads := New(nil).Scan(page)
	if len(ads) != 1 {
		t.Fatalf("found %d ads, want 1", len(ads))
	}
	ad := ads[0]
	if ad.LandingURL != "https://shop3.example/fishing/offer-12" {
		t.Fatalf("landing = %q", ad.LandingURL)
	}
	if ad.Method != "href" {
		t.Fatalf("method = %q", ad.Method)
	}
	if ad.CreativeURL != "https://ads.adx1.example/creative/12" {
		t.Fatalf("creative = %q", ad.CreativeURL)
	}
	if ad.Key() != ad.LandingURL {
		t.Fatalf("key = %q", ad.Key())
	}
}

func TestOnclickHeuristic(t *testing.T) {
	page := `
<div class="adbox" onclick="window.location='https://shop1.example/cars/offer-9'">
  <img src="https://ads.adx2.example/creative/9">
</div>`
	ads := New(nil).Scan(page)
	if len(ads) != 1 {
		t.Fatalf("found %d ads", len(ads))
	}
	if ads[0].Method != "onclick" {
		t.Fatalf("method = %q (landing %q)", ads[0].Method, ads[0].LandingURL)
	}
	if ads[0].LandingURL != "https://shop1.example/cars/offer-9" {
		t.Fatalf("landing = %q", ads[0].LandingURL)
	}
}

func TestOnclickViaJSFunction(t *testing.T) {
	// Footnote 3: onclick often redirects through a JS helper.
	page := `<div class="sponsored" onclick="trackAndGo('https://shop2.example/travel/offer-3', 42)"><img src="https://ads.adx0.example/creative/3"></div>`
	ads := New(nil).Scan(page)
	if len(ads) != 1 || ads[0].LandingURL != "https://shop2.example/travel/offer-3" {
		t.Fatalf("ads = %+v", ads)
	}
}

func TestScriptURLHeuristic(t *testing.T) {
	page := `
<div id="gpt-ad-1">
  <img src="https://ads.adx3.example/creative/77">
  <script>
    var dest = "https://shop5.example/beauty/offer-77";
    bindClick(dest);
  </script>
</div>`
	ads := New(nil).Scan(page)
	if len(ads) != 1 {
		t.Fatalf("found %d ads", len(ads))
	}
	if ads[0].Method != "script" || ads[0].LandingURL != "https://shop5.example/beauty/offer-77" {
		t.Fatalf("ad = %+v", ads[0])
	}
}

func TestAdNetworkURLNotResolved(t *testing.T) {
	// A landing candidate living on ad-network infrastructure must be
	// skipped; the ad falls back to content identification.
	page := `
<div class="ad-banner">
  <a href="https://adx9.doubleclick.net/click?r=xyz123">
    <img src="https://ads.adx4.example/creative/55">
  </a>
</div>`
	ads := New(nil).Scan(page)
	if len(ads) != 1 {
		t.Fatalf("found %d ads", len(ads))
	}
	if ads[0].LandingURL != "" {
		t.Fatalf("ad-network URL was resolved: %q", ads[0].LandingURL)
	}
	if !strings.HasPrefix(ads[0].Key(), "content:") {
		t.Fatalf("key = %q, want content fingerprint", ads[0].Key())
	}
}

func TestRandomizedLandingPagesShareContentID(t *testing.T) {
	// Same creative, randomized delivery URLs: the fingerprint must
	// identify the two impressions as one advertisement.
	mk := func(nonce string) string {
		return fmt.Sprintf(`<div class="ad-slot"><a href="https://ads.adnxs.com/r/%s"><img src="https://ads.adx5.example/creative/88">Buy now!</a></div>`, nonce)
	}
	d := New(nil)
	a1 := d.Scan(mk("abc"))
	a2 := d.Scan(mk("def"))
	if len(a1) != 1 || len(a2) != 1 {
		t.Fatalf("detection failed: %d/%d", len(a1), len(a2))
	}
	if a1[0].ContentID != a2[0].ContentID {
		t.Fatal("randomized impressions got different content IDs")
	}
	if a1[0].Key() != a2[0].Key() {
		t.Fatal("keys differ across randomized impressions")
	}
}

func TestDifferentCreativesDifferentContentIDs(t *testing.T) {
	d := New(nil)
	a1 := d.Scan(`<div class="ad-slot"><img src="https://ads.x.example/creative/1">text A</div>`)
	a2 := d.Scan(`<div class="ad-slot"><img src="https://ads.x.example/creative/2">text B</div>`)
	if len(a1) != 1 || len(a2) != 1 {
		t.Fatalf("detection failed")
	}
	if a1[0].ContentID == a2[0].ContentID {
		t.Fatal("distinct creatives share a content ID")
	}
}

func TestMultipleAdsOnOnePage(t *testing.T) {
	page := `
<html><body>
<div class="ad-slot"><a href="https://shop1.example/a/1"><img src="https://ads.adx1.example/creative/1"></a></div>
<p>editorial content</p>
<div class="ad-slot"><a href="https://shop2.example/b/2"><img src="https://ads.adx2.example/creative/2"></a></div>
<div class="adbox"><a href="https://shop3.example/c/3"><img src="https://ads.adx3.example/creative/3"></a></div>
</body></html>`
	ads := New(nil).Scan(page)
	if len(ads) != 3 {
		t.Fatalf("found %d ads, want 3", len(ads))
	}
	seen := map[string]bool{}
	for _, ad := range ads {
		seen[ad.LandingURL] = true
	}
	for _, want := range []string{
		"https://shop1.example/a/1", "https://shop2.example/b/2", "https://shop3.example/c/3",
	} {
		if !seen[want] {
			t.Fatalf("missing landing %q (got %v)", want, seen)
		}
	}
}

func TestNoAdsOnCleanPage(t *testing.T) {
	page := `
<html><body>
<h1>Article</h1>
<p>Just text with a <a href="https://news.example/story">link</a>.</p>
<img src="https://static.news.example/images/photo.jpg">
</body></html>`
	if ads := New(nil).Scan(page); len(ads) != 0 {
		t.Fatalf("false positives on clean page: %+v", ads)
	}
}

func TestEmptyAndGarbageInput(t *testing.T) {
	d := New(nil)
	if ads := d.Scan(""); len(ads) != 0 {
		t.Fatal("ads in empty page")
	}
	if ads := d.Scan("<<<>>> not html at all & certainly no ads"); len(ads) != 0 {
		t.Fatal("ads in garbage")
	}
	// Unclosed ad region must still flush.
	ads := d.Scan(`<div class="ad-slot"><a href="https://shop.example/x/1"><img src="https://ads.a.example/creative/1">`)
	if len(ads) != 1 {
		t.Fatalf("unclosed region: %d ads", len(ads))
	}
}

func TestIsAdNetworkURL(t *testing.T) {
	d := New(nil)
	cases := map[string]bool{
		"https://ads.adx1.example/creative/1": true,
		"https://x.doubleclick.net/c?x=1":     true,
		"https://shop1.example/product":       false,
		"https://news.example/article":        false,
		"https://sub.googlesyndication.com/x": true,
	}
	for url, want := range cases {
		if got := d.IsAdNetworkURL(url); got != want {
			t.Errorf("IsAdNetworkURL(%q) = %v, want %v", url, got, want)
		}
	}
}

func TestCustomRuleset(t *testing.T) {
	rules := &Ruleset{
		URLSubstrings:  []string{"/promos/"},
		ClassMarkers:   []string{"promo-box"},
		AdNetworkHosts: []string{"promonet."},
	}
	d := New(rules)
	ads := d.Scan(`<div class="promo-box"><a href="https://shop.example/z"><img src="https://cdn.example/promos/1.png"></a></div>`)
	if len(ads) != 1 || ads[0].LandingURL != "https://shop.example/z" {
		t.Fatalf("custom rules: %+v", ads)
	}
	// Default markers must not fire under custom rules.
	if ads := d.Scan(`<div class="ad-slot"><img src="https://ads.x.example/creative/9"></div>`); len(ads) != 0 {
		t.Fatal("default markers fired under custom ruleset")
	}
}

func BenchmarkScanTypicalPage(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<html><body>")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&sb, "<p>paragraph %d with some text</p>", i)
	}
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&sb,
			`<div class="ad-slot"><a href="https://shop%d.example/t/%d"><img src="https://ads.adx%d.example/creative/%d"></a></div>`,
			i, i, i, i)
	}
	sb.WriteString("</body></html>")
	page := sb.String()
	d := New(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(d.Scan(page)); got != 4 {
			b.Fatalf("found %d ads", got)
		}
	}
}
