//go:build !purego && (amd64 || arm64 || 386 || arm || riscv64 || loong64 || mipsle || mips64le || ppc64le || wasm)

package vec

import "unsafe"

// On little-endian architectures the in-memory layout of a []uint64 is
// exactly its little-endian wire serialization, so wire payloads can be
// read from (or written to) the slice's backing memory directly — the
// zero-copy fast path of the streaming report reader. Under the
// `purego` tag (no unsafe) the portable per-word kernels stand in and
// AsBytes reports no view.

// AsBytes returns the little-endian byte view over v's backing array and
// true. Reading wire bytes into the view (or writing the view out) IS
// the (de)serialization; no intermediate buffer exists. The view aliases
// v: it is valid only while v is, and must not be resliced beyond its
// length.
//
// AsBytes is layout, not a kernel: it stays available even under
// EYEWNDER_NOSIMD (which disables the SIMD/bulk kernels at runtime),
// because disabling it would silently change the wire path's pooling
// behaviour, not just its speed.
func AsBytes(v []uint64) ([]byte, bool) {
	if len(v) == 0 {
		return nil, true
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v)), true
}

// putLEBulk encodes src into dst in one memmove: the byte view over src
// already is the little-endian serialization.
func putLEBulk(dst []byte, src []uint64) {
	if len(src) == 0 {
		return
	}
	copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), 8*len(src)))
}

// getLEBulk decodes 8*len(dst) bytes from src in one memmove.
func getLEBulk(dst []uint64, src []byte) {
	if len(dst) == 0 {
		return
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 8*len(dst)), src)
}

// pickEncode selects the single-memmove encode kernels.
func pickEncode() {
	selPutLE, selGetLE = putLEBulk, getLEBulk
}
