package blind

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"hash"
)

// factorsPerBlock is how many 64-bit blinding factors one PRF invocation
// yields: a SHA-256 block is 32 bytes = 4 little-endian uint64 words.
const factorsPerBlock = sha256.Size / 8

// keystream expands a pairwise key into the per-cell blinding factors for
// one round in counter mode:
//
//	block_t = HMAC-SHA256(k_ij, round ‖ t),   factor_m = block_{m/4}[m%4]
//
// One HMAC invocation therefore covers four cells — a 4× cut in PRF
// invocations versus the one-HMAC-per-cell layout — and any cell position
// is randomly accessible by seeking the block counter (the `cell`
// parameter of init). Production currently shards work per peer and
// always starts at cell 0; the seek is what would let a future layout
// stripe a single pair's cells across workers (ROADMAP open item).
//
// The HMAC state and output buffer are allocated once at construction and
// reused for every block, so factor generation is allocation-free after
// the constructor (asserted by TestKeystreamZeroAllocs).
//
// COMPATIBILITY: this expansion defines the suite-0x00 blinding values
// (see the Keystream type; aesKeystream is suite 0x01). All parties must
// run the same keystream suite or their pairwise terms would not cancel;
// change an expansion only in lockstep across the deployment.
type keystream struct {
	mac   hash.Hash
	hdr   [16]byte          // round ‖ block counter
	block [sha256.Size]byte // current expanded block
	word  int               // next word within block; factorsPerBlock = refill
	ctr   uint64            // next block counter value
}

// init keys the stream for (key, round) and positions it at cell `cell`.
func (k *keystream) init(key []byte, round uint64, cell int) {
	k.mac = hmac.New(sha256.New, key)
	binary.LittleEndian.PutUint64(k.hdr[:8], round)
	k.ctr = uint64(cell) / factorsPerBlock
	k.word = int(uint64(cell) % factorsPerBlock)
	k.fill()
}

// fill expands the next counter block into k.block.
func (k *keystream) fill() {
	binary.LittleEndian.PutUint64(k.hdr[8:], k.ctr)
	k.ctr++
	k.mac.Reset()
	k.mac.Write(k.hdr[:])
	k.mac.Sum(k.block[:0])
}

// next returns the following 64-bit blinding factor.
func (k *keystream) next() uint64 {
	if k.word == factorsPerBlock {
		k.fill()
		k.word = 0
	}
	v := binary.LittleEndian.Uint64(k.block[8*k.word:])
	k.word++
	return v
}

// accumulate folds the remainder of the stream into out, adding when add
// is true and subtracting otherwise (two's-complement == mod-2⁶⁴).
func (k *keystream) accumulate(out []uint64, add bool) {
	if add {
		for m := range out {
			out[m] += k.next()
		}
	} else {
		for m := range out {
			out[m] -= k.next()
		}
	}
}
