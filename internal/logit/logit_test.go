package logit

import (
	"math"
	"math/rand"
	"testing"
)

// synth generates logistic data with known coefficients.
func synth(rng *rand.Rand, n int, beta []float64) (X [][]float64, y []float64) {
	p := len(beta)
	X = make([][]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, p)
		row[0] = 1
		for j := 1; j < p; j++ {
			row[j] = rng.NormFloat64()
		}
		eta := 0.0
		for j := range row {
			eta += row[j] * beta[j]
		}
		if rng.Float64() < 1/(1+math.Exp(-eta)) {
			y[i] = 1
		}
		X[i] = row
	}
	return X, y
}

func TestFitRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trueBeta := []float64{-0.5, 1.2, -0.8}
	X, y := synth(rng, 20000, trueBeta)
	m, err := Fit(X, y, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Converged {
		t.Fatal("IRLS did not converge")
	}
	for j, want := range trueBeta {
		if math.Abs(m.Coef[j]-want) > 0.1 {
			t.Errorf("coef[%d] = %.3f, want %.3f", j, m.Coef[j], want)
		}
	}
	if m.LogLik <= m.NullLogLik {
		t.Fatalf("LogLik %v <= NullLogLik %v", m.LogLik, m.NullLogLik)
	}
}

func TestPredictionsInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := synth(rng, 2000, []float64{0.3, 2.5})
	m, err := Fit(X, y, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range X {
		p := m.Predict(row)
		if p <= 0 || p >= 1 {
			t.Fatalf("prediction %v outside (0,1)", p)
		}
	}
}

func TestSummaryWaldSignificance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Strong effect on x1, none on x2.
	X, y := synth(rng, 8000, []float64{0, 1.5, 0})
	m, err := Fit(X, y, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	if len(s) != 3 {
		t.Fatalf("summary rows = %d", len(s))
	}
	if s[1].P > 0.001 {
		t.Fatalf("strong effect p = %v, want < 0.001", s[1].P)
	}
	if s[2].P < 0.01 {
		t.Fatalf("null effect p = %v, want large", s[2].P)
	}
	if s[1].OR <= 1 || s[1].CILo >= s[1].OR || s[1].CIHi <= s[1].OR {
		t.Fatalf("OR/CI inconsistent: %+v", s[1])
	}
	if s[1].CILo <= math.Exp(1.5-5) || s[1].CIHi >= math.Exp(1.5+5) {
		t.Fatalf("CI implausibly wide: %+v", s[1])
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, 0, 0); err != ErrNoData {
		t.Fatalf("err = %v", err)
	}
	if _, err := Fit([][]float64{{1}}, []float64{0, 1}, 0, 0); err != ErrDimension {
		t.Fatalf("err = %v", err)
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, []float64{0, 1}, 0, 0); err != ErrDimension {
		t.Fatalf("err = %v", err)
	}
	// Perfectly collinear columns → singular information matrix.
	X := [][]float64{{1, 2, 4}, {1, 3, 6}, {1, 1, 2}, {1, 5, 10}}
	y := []float64{0, 1, 0, 1}
	if _, err := Fit(X, y, 0, 0); err != ErrSingular {
		t.Fatalf("collinear err = %v", err)
	}
}

func TestDevianceNonIncreasing(t *testing.T) {
	// The log-likelihood of the fitted model must beat the null model on
	// informative data, and refitting with more iterations cannot do
	// worse.
	rng := rand.New(rand.NewSource(17))
	X, y := synth(rng, 3000, []float64{0.2, 0.9})
	m5, err := Fit(X, y, 5, 1e-300) // force exactly 5 iterations
	if err != nil {
		t.Fatal(err)
	}
	m50, err := Fit(X, y, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m50.LogLik+1e-9 < m5.LogLik {
		t.Fatalf("more iterations decreased log-lik: %v vs %v", m50.LogLik, m5.LogLik)
	}
}

func TestLikelihoodRatioTest(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	X, y := synth(rng, 6000, []float64{0.1, 1.0, 0})
	// Null: intercept + x1. Full: + x2 (useless).
	Xnull := make([][]float64, len(X))
	for i, r := range X {
		Xnull[i] = r[:2]
	}
	null, err := Fit(Xnull, y, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Fit(X, y, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	stat, df, p, err := LikelihoodRatioTest(null, full)
	if err != nil {
		t.Fatal(err)
	}
	if df != 1 {
		t.Fatalf("df = %d", df)
	}
	if stat < 0 {
		t.Fatalf("stat = %v", stat)
	}
	// x2 is noise: the LRT should not be significant.
	if p < 0.01 {
		t.Fatalf("noise variable LRT p = %v", p)
	}
	if _, _, _, err := LikelihoodRatioTest(full, null); err != ErrNotNested {
		t.Fatalf("reversed nesting err = %v", err)
	}
}

func TestBuilderDummyCoding(t *testing.T) {
	b := NewBuilder().
		Factor("gender", "undisclosed", "female", "male").
		Factor("income", "low", "high")
	if err := b.Add(map[string]string{"gender": "female", "income": "high"}, true); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(map[string]string{"gender": "undisclosed", "income": "low"}, false); err != nil {
		t.Fatal(err)
	}
	X, y, names := b.Matrix()
	wantNames := []string{"(intercept)", "gender:female", "gender:male", "income:high"}
	if len(names) != len(wantNames) {
		t.Fatalf("names = %v", names)
	}
	for i := range wantNames {
		if names[i] != wantNames[i] {
			t.Fatalf("names = %v", names)
		}
	}
	if X[0][0] != 1 || X[0][1] != 1 || X[0][2] != 0 || X[0][3] != 1 {
		t.Fatalf("row0 = %v", X[0])
	}
	if X[1][1] != 0 || X[1][2] != 0 || X[1][3] != 0 {
		t.Fatalf("row1 = %v", X[1])
	}
	if y[0] != 1 || y[1] != 0 {
		t.Fatalf("y = %v", y)
	}
	if b.N() != 2 {
		t.Fatalf("N = %d", b.N())
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder().Factor("g", "a", "b")
	if err := b.Add(map[string]string{}, true); err == nil {
		t.Fatal("missing factor accepted")
	}
	if err := b.Add(map[string]string{"g": "zzz"}, true); err == nil {
		t.Fatal("unknown level accepted")
	}
	if _, err := b.Fit(); err != ErrNoData {
		t.Fatalf("empty fit err = %v", err)
	}
	if _, err := b.Row(map[string]string{}); err == nil {
		t.Fatal("Row with missing factor accepted")
	}
	if _, err := b.Row(map[string]string{"g": "zzz"}); err == nil {
		t.Fatal("Row with unknown level accepted")
	}
}

func TestBuilderEndToEndRecoversPlantedOR(t *testing.T) {
	// Plant OR = 3 for level "x" of one factor; recover it.
	rng := rand.New(rand.NewSource(31))
	b := NewBuilder().Factor("f", "base", "x")
	beta0 := -1.0
	betaX := math.Log(3)
	for i := 0; i < 20000; i++ {
		isX := rng.Float64() < 0.5
		eta := beta0
		lv := "base"
		if isX {
			eta += betaX
			lv = "x"
		}
		outcome := rng.Float64() < 1/(1+math.Exp(-eta))
		if err := b.Add(map[string]string{"f": lv}, outcome); err != nil {
			t.Fatal(err)
		}
	}
	m, err := b.Fit()
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	if s[1].Name != "f:x" {
		t.Fatalf("names = %v", m.Names)
	}
	if math.Abs(s[1].OR-3) > 0.45 {
		t.Fatalf("recovered OR = %.3f, want ~3", s[1].OR)
	}
	// Figure 5 machinery: predicted probability at each level.
	rowBase, err := b.Row(map[string]string{"f": "base"})
	if err != nil {
		t.Fatal(err)
	}
	rowX, err := b.Row(map[string]string{"f": "x"})
	if err != nil {
		t.Fatal(err)
	}
	pBase, pX := m.Predict(rowBase), m.Predict(rowX)
	if pX <= pBase {
		t.Fatalf("predicted probs: base %.3f, x %.3f — planted ordering lost", pBase, pX)
	}
}

func BenchmarkFit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	X, y := synth(rng, 5000, []float64{-0.5, 1.2, -0.8, 0.3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(X, y, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
