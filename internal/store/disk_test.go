package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// testGeometry is a small, fast cell layout for store tests.
const (
	testD = 3
	testW = 16
)

func testCells(seed uint64) []uint64 {
	cells := make([]uint64, testD*testW)
	for i := range cells {
		cells[i] = seed*1_000_003 + uint64(i)*2_654_435_761
	}
	return cells
}

func openTestStore(t *testing.T, dir string, opts Options) *Disk {
	t.Helper()
	d, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d
}

// logRound writes a round open plus reports from the given users.
func logRound(t *testing.T, d *Disk, round uint64, roster int, users ...int) {
	t.Helper()
	if err := d.AppendOpen(0, round, roster, testD, testW, 0, 1, 0, 0); err != nil {
		t.Fatalf("AppendOpen: %v", err)
	}
	for _, u := range users {
		if err := d.AppendReport(0, round, u, testD, testW, 5, 0, 1, 0, testCells(uint64(u))); err != nil {
			t.Fatalf("AppendReport(%d): %v", u, err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

// wantRoundCells is the cell-wise sum of the given users' test vectors.
func wantRoundCells(users ...int) []uint64 {
	out := make([]uint64, testD*testW)
	for _, u := range users {
		for i, v := range testCells(uint64(u)) {
			out[i] += v
		}
	}
	return out
}

// A WAL-only store (no snapshot yet) must recover the full round state:
// cells, weight, reported bitmap, suite byte.
func TestRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{})
	logRound(t, d, 7, 8, 0, 2, 5)
	if err := d.AppendAdjust(0, 7, 2, testCells(99)); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendRegister(3, []byte("pubkey-3")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTestStore(t, dir, Options{})
	defer d2.Close()
	rounds := d2.Rounds()
	if len(rounds) != 1 {
		t.Fatalf("recovered %d rounds, want 1", len(rounds))
	}
	rs := rounds[0]
	if rs.Round != 7 || rs.RosterSize != 8 || rs.D != testD || rs.W != testW {
		t.Fatalf("round header = %+v", rs)
	}
	if rs.Keystream != 1 {
		t.Fatalf("suite byte = %d, want 1", rs.Keystream)
	}
	if rs.N != 15 {
		t.Fatalf("N = %d, want 15", rs.N)
	}
	wantRep := []bool{true, false, true, false, false, true, false, false}
	if !reflect.DeepEqual(rs.Reported, wantRep) {
		t.Fatalf("reported bitmap = %v", rs.Reported)
	}
	if !reflect.DeepEqual(rs.Cells, wantRoundCells(0, 2, 5)) {
		t.Fatal("recovered cells differ from the live fold")
	}
	if !reflect.DeepEqual(rs.Adjusts[2], testCells(99)) {
		t.Fatalf("adjust share not recovered: %v", rs.Adjusts)
	}
	roster := d2.Roster()
	if string(roster[3]) != "pubkey-3" {
		t.Fatalf("roster = %v", roster)
	}
}

// Replay must mirror the aggregator's acceptance rules: duplicates,
// out-of-roster users, layout mismatches, and suite mismatches are all
// skipped, and a closed round accepts nothing.
func TestReplayMirrorsAggregatorInvariants(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{})
	logRound(t, d, 1, 4, 0)
	// Duplicate of user 0: skipped on replay (the live path would never
	// log it, but replay must reject it anyway for snapshot overlap).
	if err := d.AppendReport(0, 1, 0, testD, testW, 5, 0, 1, 0, testCells(42)); err != nil {
		t.Fatal(err)
	}
	// Out-of-roster user.
	if err := d.AppendReport(0, 1, 9, testD, testW, 5, 0, 1, 0, testCells(9)); err != nil {
		t.Fatal(err)
	}
	// Wrong suite byte.
	if err := d.AppendReport(0, 1, 1, testD, testW, 5, 0, 0, 0, testCells(1)); err != nil {
		t.Fatal(err)
	}
	// Wrong geometry (fresh round so the record itself is valid).
	if err := d.AppendOpen(0, 2, 4, testD, testW, 0, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendReport(0, 2, 0, testD+1, testW, 5, 0, 1, 0, make([]uint64, (testD+1)*testW)); err != nil {
		t.Fatal(err)
	}
	// Close round 2, then try to sneak in a report and an adjustment.
	if err := d.AppendClose(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendReport(0, 2, 1, testD, testW, 5, 0, 1, 0, testCells(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendAdjust(0, 2, 1, testCells(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTestStore(t, dir, Options{})
	defer d2.Close()
	rounds := d2.Rounds()
	if len(rounds) != 2 {
		t.Fatalf("recovered %d rounds, want 2", len(rounds))
	}
	r1, r2 := rounds[0], rounds[1]
	if !reflect.DeepEqual(r1.Cells, wantRoundCells(0)) || r1.N != 5 {
		t.Fatal("round 1 absorbed a rejected report")
	}
	if r1.Reported[1] {
		t.Fatal("wrong-suite report marked user 1 reported")
	}
	if !r2.Closed {
		t.Fatal("round 2 not closed")
	}
	if r2.N != 0 || len(r2.Adjusts) != 0 {
		t.Fatal("closed round absorbed post-close records")
	}
}

// Recovery must stop cleanly at a truncated tail: every record before
// the cut survives, the torn one disappears, and the store stays
// appendable (new appends go to a fresh segment).
func TestRecoveryTruncatedTail(t *testing.T) {
	for _, cut := range []int{1, 4, 5, 30, 100} {
		dir := t.TempDir()
		d := openTestStore(t, dir, Options{})
		logRound(t, d, 1, 4, 0, 1)
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		seg := filepath.Join(dir, walName(1))
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if cut >= len(raw) {
			t.Fatalf("cut %d beyond segment (%d bytes)", cut, len(raw))
		}
		// Chop `cut` bytes off the tail: the last record is torn.
		if err := os.WriteFile(seg, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}

		d2 := openTestStore(t, dir, Options{})
		rounds := d2.Rounds()
		if len(rounds) != 1 {
			t.Fatalf("cut %d: recovered %d rounds, want 1", cut, len(rounds))
		}
		rs := rounds[0]
		// The tail record was user 1's report; user 0's must survive.
		if !rs.Reported[0] || rs.Reported[1] {
			t.Fatalf("cut %d: reported bitmap = %v", cut, rs.Reported)
		}
		if !reflect.DeepEqual(rs.Cells, wantRoundCells(0)) {
			t.Fatalf("cut %d: cells do not match the pre-tear state", cut)
		}
		// The store must keep working: append the lost report again and
		// recover once more.
		if err := d2.AppendReport(0, 1, 1, testD, testW, 5, 0, 1, 0, testCells(1)); err != nil {
			t.Fatal(err)
		}
		if err := d2.Close(); err != nil {
			t.Fatal(err)
		}
		d3 := openTestStore(t, dir, Options{})
		if rs := d3.Rounds()[0]; !reflect.DeepEqual(rs.Cells, wantRoundCells(0, 1)) {
			t.Fatalf("cut %d: resubmitted report lost", cut)
		}
		d3.Close()
	}
}

// A torn write *inside* the tail record (bit flip, not truncation) must
// fail the CRC and stop replay at the last valid record.
func TestRecoveryTornWrite(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{})
	logRound(t, d, 1, 4, 0, 1, 2)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, walName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the last record's cell block (well past its header).
	raw[len(raw)-20] ^= 0xFF
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openTestStore(t, dir, Options{})
	defer d2.Close()
	rs := d2.Rounds()[0]
	if rs.Reported[2] {
		t.Fatal("torn record was applied")
	}
	if !reflect.DeepEqual(rs.Cells, wantRoundCells(0, 1)) {
		t.Fatal("recovery did not stop at the last valid record")
	}
}

// A CRC-valid record with an unknown kind (version skew, encoder bug)
// must refuse recovery loudly: stopping silently there would discard
// acknowledged-durable records behind it.
func TestRecoveryRefusesUnparseableValidRecord(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{})
	logRound(t, d, 1, 4, 0)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, walName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A perfectly framed record of a kind this binary does not know.
	var enc RecordEncoder
	if err := enc.record(f, 0x7F, []byte("future record"), nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("recovery accepted a segment with an unparseable checksummed record")
	}
}

// A snapshot whose whole-file CRC validates but whose interior section
// lengths are inconsistent must return an error (falling back to an
// older generation), never panic.
func TestLoadSnapshotInconsistentInterior(t *testing.T) {
	// magic ‖ version ‖ rosterCount=0 ‖ roundCount=1 ‖ a round header
	// claiming 8 roster users — then nothing (no bitmap, no cells).
	body := []byte(snapMagic)
	body = append(body, 1, 0, 0, 0) // version
	body = append(body, make([]byte, 8)...)
	count := make([]byte, 8)
	count[0] = 1
	body = append(body, count...) // roundCount = 1
	hdr := make([]byte, 8*6)      // round, roster, d, w, seed, n
	hdr[8] = 8                    // roster = 8
	hdr[16] = 2                   // d = 2
	hdr[24] = 4                   // w = 4
	body = append(body, hdr...)
	body = append(body, 0, 0) // keystream, closed — and then: truncated
	crc := crc32.Checksum(body, castagnoli)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	body = append(body, tail[:]...)

	dir := t.TempDir()
	path := filepath.Join(dir, snapName(3))
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot(path); err == nil {
		t.Fatal("inconsistent snapshot accepted")
	}
	// And the store as a whole must fall back (empty recovery), not die.
	d := openTestStore(t, dir, Options{})
	defer d.Close()
	if len(d.Rounds()) != 0 {
		t.Fatal("corrupt snapshot produced rounds")
	}
}

// The snapshot cycle: after Snapshot, old segments are pruned, and
// recovery from snapshot + fresh segment equals recovery from the full
// log. Records appended after the snapshot replay on top of it.
func TestSnapshotCycleAndPrune(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{})
	logRound(t, d, 1, 4, 0, 1)
	if err := d.AppendRegister(0, []byte("k0")); err != nil {
		t.Fatal(err)
	}

	// Capture the state the back-end would: one round, users 0 and 1 in.
	state := &RoundState{
		Round: 1, RosterSize: 4, D: testD, W: testW, N: 10, Keystream: 1,
		Cells:    wantRoundCells(0, 1),
		Reported: []bool{true, true, false, false},
		Adjusts:  map[int][]uint64{},
	}
	if err := d.Snapshot(func() ([]*RoundState, error) {
		return []*RoundState{state}, nil
	}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, walName(1))); !os.IsNotExist(err) {
		t.Fatal("old WAL segment not pruned after snapshot")
	}
	// Post-snapshot traffic, including a replay-overlap record (user 1
	// again — already in the snapshot, must be rejected on replay).
	if err := d.AppendReport(0, 1, 1, testD, testW, 5, 0, 1, 0, testCells(77)); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendReport(0, 1, 2, testD, testW, 5, 0, 1, 0, testCells(2)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTestStore(t, dir, Options{})
	defer d2.Close()
	rs := d2.Rounds()[0]
	if !reflect.DeepEqual(rs.Reported, []bool{true, true, true, false}) {
		t.Fatalf("reported after snapshot+replay = %v", rs.Reported)
	}
	if !reflect.DeepEqual(rs.Cells, wantRoundCells(0, 1, 2)) {
		t.Fatal("snapshot + overlapping replay double-applied a report")
	}
	if rs.N != 15 {
		t.Fatalf("N = %d, want 15", rs.N)
	}
	if string(d2.Roster()[0]) != "k0" {
		t.Fatal("roster lost across snapshot")
	}
}

// A corrupt (half-written) snapshot must be ignored: recovery falls
// back to the previous snapshot and the WAL segments after it.
func TestRecoverySkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{})
	logRound(t, d, 1, 4, 0, 1)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Fake a crash mid-snapshot: a snap file at a plausible generation
	// whose content is garbage.
	if err := os.WriteFile(filepath.Join(dir, snapName(2)), []byte("EYWSNAP1 not really"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := openTestStore(t, dir, Options{})
	defer d2.Close()
	rounds := d2.Rounds()
	if len(rounds) != 1 || !reflect.DeepEqual(rounds[0].Cells, wantRoundCells(0, 1)) {
		t.Fatal("corrupt snapshot shadowed the WAL recovery")
	}
}

// ShouldSnapshot turns on at the configured cadence and resets after a
// snapshot.
func TestShouldSnapshotCadence(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{SnapshotEvery: 3})
	defer d.Close()
	if err := d.AppendOpen(0, 1, 4, testD, testW, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		if d.ShouldSnapshot() {
			t.Fatalf("ShouldSnapshot true after %d reports", u)
		}
		if err := d.AppendReport(0, 1, u, testD, testW, 1, 0, 0, 0, testCells(uint64(u))); err != nil {
			t.Fatal(err)
		}
	}
	if !d.ShouldSnapshot() {
		t.Fatal("ShouldSnapshot false at cadence")
	}
	if err := d.Snapshot(func() ([]*RoundState, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if d.ShouldSnapshot() {
		t.Fatal("ShouldSnapshot did not reset")
	}
}

// Concurrent appends + group-committed Syncs must all land durably and
// replay to the same state as a serial run.
func TestConcurrentAppendsGroupCommit(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, Options{})
	const users = 32
	if err := d.AppendOpen(0, 1, users, testD, testW, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, users)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if err := d.AppendReport(0, 1, u, testD, testW, 1, 0, 0, 0, testCells(uint64(u))); err != nil {
				errs <- err
				return
			}
			errs <- d.Sync() // every reporter demands durability: group commit coalesces
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openTestStore(t, dir, Options{})
	defer d2.Close()
	rs := d2.Rounds()[0]
	all := make([]int, users)
	for i := range all {
		all[i] = i
		if !rs.Reported[i] {
			t.Fatalf("user %d lost", i)
		}
	}
	if !reflect.DeepEqual(rs.Cells, wantRoundCells(all...)) {
		t.Fatal("concurrent appends diverged from serial fold")
	}
}

// Operations on a closed store fail with ErrStoreClosed.
func TestClosedStoreFails(t *testing.T) {
	d := openTestStore(t, t.TempDir(), Options{})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendClose(0, 1); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("append after close = %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

// The report append path must be allocation-free: the encoder's scratch
// replaces the stack arrays that used to escape through the io.Writer
// interface (the ~3 allocs/report the ROADMAP flagged). wal_append in
// BENCH_pipeline.json tracks the same property under the -check gate.
func TestRecordEncoderReportZeroAllocs(t *testing.T) {
	var enc RecordEncoder
	cells := testCells(1)
	allocs := testing.AllocsPerRun(200, func() {
		if err := enc.Report(io.Discard, 0, 1, 1, testD, testW, 5, 0, 1, 3, cells); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("encoder report append allocates %.1f objects/op, want 0", allocs)
	}
}

// The record codec round-trips every kind through an in-memory buffer.
func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var enc RecordEncoder
	cells := testCells(5)
	if err := enc.register(&buf, 3, []byte("key")); err != nil {
		t.Fatal(err)
	}
	if err := enc.open(&buf, 0, 9, 16, testD, testW, 77, 1, 6, 2); err != nil {
		t.Fatal(err)
	}
	if err := enc.Report(&buf, 0, 9, 3, testD, testW, 11, 77, 1, 6, cells); err != nil {
		t.Fatal(err)
	}
	if err := enc.adjust(&buf, 0, 9, 3, cells); err != nil {
		t.Fatal(err)
	}
	if err := enc.config(&buf, 7, 3); err != nil {
		t.Fatal(err)
	}
	if err := enc.close(&buf, 0, 9); err != nil {
		t.Fatal(err)
	}

	r := bytes.NewReader(buf.Bytes())
	var scratch []byte
	kind, body, scratch, err := ReadWALRecord(r, scratch)
	if err != nil || kind != recRegister {
		t.Fatalf("register: %d %v", kind, err)
	}
	reg, err := decodeRegisterBody(body)
	if err != nil || reg.User != 3 || string(reg.Key) != "key" {
		t.Fatalf("register body: %+v %v", reg, err)
	}
	kind, body, scratch, err = ReadWALRecord(r, scratch)
	if err != nil || kind != recOpen {
		t.Fatalf("open: %d %v", kind, err)
	}
	op, err := decodeOpenBody(body)
	if err != nil || op.Round != 9 || op.Roster != 16 || op.D != testD || op.W != testW || op.Seed != 77 || op.Keystream != 1 ||
		op.ConfigVersion != 6 || op.RosterVersion != 2 {
		t.Fatalf("open body: %+v %v", op, err)
	}
	kind, body, scratch, err = ReadWALRecord(r, scratch)
	if err != nil || kind != recReport {
		t.Fatalf("report: %d %v", kind, err)
	}
	rep, err := decodeReportBody(body)
	if err != nil || rep.Round != 9 || rep.User != 3 || rep.N != 11 || rep.Keystream != 1 || rep.ConfigVersion != 6 {
		t.Fatalf("report body: %+v %v", rep, err)
	}
	if len(rep.Cells) != 8*len(cells) {
		t.Fatalf("report cells = %d bytes", len(rep.Cells))
	}
	kind, body, scratch, err = ReadWALRecord(r, scratch)
	if err != nil || kind != recAdjust {
		t.Fatalf("adjust: %d %v", kind, err)
	}
	adj, err := decodeAdjustBody(body)
	if err != nil || adj.Round != 9 || adj.User != 3 || len(adj.Cells) != 8*len(cells) {
		t.Fatalf("adjust body: %+v %v", adj, err)
	}
	kind, body, scratch, err = ReadWALRecord(r, scratch)
	if err != nil || kind != recConfig {
		t.Fatalf("config: %d %v", kind, err)
	}
	if cv, rv, err := decodeConfigBody(body); err != nil || cv != 7 || rv != 3 {
		t.Fatalf("config body: %d %d %v", cv, rv, err)
	}
	kind, _, scratch, err = ReadWALRecord(r, scratch)
	if err != nil || kind != recClose {
		t.Fatalf("close: %d %v", kind, err)
	}
	if _, _, _, err = ReadWALRecord(r, scratch); err != io.EOF {
		t.Fatalf("tail = %v, want EOF", err)
	}
}
