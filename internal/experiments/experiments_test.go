package experiments

import (
	"testing"

	"eyewnder/internal/adsim"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
)

// fastSim is a scaled-down Table 1 config for test speed.
func fastSim() adsim.Config {
	cfg := adsim.DefaultConfig()
	cfg.Users = 120
	cfg.Sites = 250
	cfg.Campaigns = 120
	cfg.AvgVisitsPerWeek = 70
	cfg.StaticSitesMin, cfg.StaticSitesMax = 10, 60
	return cfg
}

func TestFig3Shape(t *testing.T) {
	cfg := Fig3Config{
		Base:        fastSim(),
		Caps:        []int{1, 4, 8, 12},
		Repetitions: 1,
	}
	pts, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Shape check 1: FN falls as the frequency cap rises (more
	// repetitions → easier detection), for both estimators.
	if !(pts[0].FNMeanPct > pts[3].FNMeanPct) {
		t.Fatalf("Mean FN did not fall: cap1=%.1f cap12=%.1f",
			pts[0].FNMeanPct, pts[3].FNMeanPct)
	}
	if !(pts[0].FNMeanMedianPct > pts[3].FNMeanMedianPct) {
		t.Fatalf("Mean+Median FN did not fall: cap1=%.1f cap12=%.1f",
			pts[0].FNMeanMedianPct, pts[3].FNMeanMedianPct)
	}
	// Shape check 2: at cap 1 a single appearance is indistinguishable
	// from non-targeted ads — both estimators miss essentially everything
	// (the figure starts near 100%).
	if pts[0].FNMeanPct < 60 {
		t.Fatalf("cap-1 FN = %.1f%%, expected near-total misses", pts[0].FNMeanPct)
	}
	// At moderate caps Mean detects at least as early as Mean+Median
	// (the figure's curves: Mean is below Mean+Median until both floor).
	if pts[1].FNMeanPct > pts[1].FNMeanMedianPct+1e-9 {
		t.Fatalf("at cap 4 Mean %.1f%% should not trail Mean+Median %.1f%%",
			pts[1].FNMeanPct, pts[1].FNMeanMedianPct)
	}
	// Shape check 3: with generous caps the Mean estimator reaches a
	// usable FN level (paper: <30% at cap 6-7).
	if pts[2].FNMeanPct > 40 {
		t.Fatalf("Mean FN at cap 8 = %.1f%%, want reasonably low", pts[2].FNMeanPct)
	}
}

func TestFPStudyBelowPaperBound(t *testing.T) {
	// The 2% bound assumes the paper's regime: far more distinct ads than
	// panel users (their live dataset had 6743 ads for 100 users), which
	// keeps Users_th low.
	cfg := fastSim()
	cfg.Sites = 500
	cfg.Campaigns = 1200
	results, err := FPStudy(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("configs = %d", len(results))
	}
	// Paper: FP < 2% over 30+ configurations. Allow modest slack for the
	// scaled-down population.
	for _, r := range results {
		if r.FPPct > 4 {
			t.Errorf("config %q FP = %.2f%%, exceeds bound", r.Label, r.FPPct)
		}
		if r.Label == "" {
			t.Error("empty config label")
		}
	}
}

func TestFig2CMSTrackActual(t *testing.T) {
	cfg := DefaultFig2Config()
	cfg.Sim.Users = 24
	cfg.Sim.Sites = 80
	cfg.Sim.Campaigns = 40
	cfg.Sim.AvgVisitsPerWeek = 40
	cfg.Sim.Weeks = 2
	weeks, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(weeks) != 2 {
		t.Fatalf("weeks = %d", len(weeks))
	}
	for _, w := range weeks {
		if len(w.ActualCounts) == 0 || len(w.CMSCounts) == 0 {
			t.Fatalf("week %d: empty distributions", w.Week)
		}
		// The CMS threshold sits at or slightly above the actual one
		// (collisions only inflate), and close to it.
		if w.CMSTh < w.ActualTh-1e-9 {
			t.Fatalf("week %d: CMS_Th %.3f below Act_Th %.3f", w.Week, w.CMSTh, w.ActualTh)
		}
		if w.CMSTh > w.ActualTh*1.5+1 {
			t.Fatalf("week %d: CMS_Th %.3f far above Act_Th %.3f", w.Week, w.CMSTh, w.ActualTh)
		}
		if len(w.DensityX) != 50 || len(w.ActualDensity) != 50 || len(w.CMSDensity) != 50 {
			t.Fatalf("week %d: density curves missing", w.Week)
		}
	}
}

func TestOverheadMatchesPaperNumbers(t *testing.T) {
	rep, err := Overhead(1024, group.P256())
	if err != nil {
		t.Fatal(err)
	}
	// Exact CMS sizes from Section 7.1.
	for tSize, want := range map[int]float64{10000: 185, 50000: 196, 100000: 207} {
		got := rep.CMSKB[tSize]
		if got < want-1 || got > want+1 {
			t.Errorf("CMS KB for T=%d: %.1f, paper reports %.0f", tSize, got, want)
		}
	}
	if rep.CleartextAvgKB != 3.5 {
		t.Errorf("cleartext = %.1f KB", rep.CleartextAvgKB)
	}
	// Blinding traffic is linear in users.
	if rep.BlindingTrafficMB[50000] <= rep.BlindingTrafficMB[10000] {
		t.Error("blinding traffic not increasing")
	}
	// OPRF mapping under the paper's 500 ms budget, exchanging 2 × 1024
	// bits.
	if rep.OPRFRoundTrip.Milliseconds() > 500 {
		t.Errorf("OPRF round trip = %v, paper bound 500ms", rep.OPRFRoundTrip)
	}
	if rep.OPRFExchangeBits != 2048 {
		t.Errorf("exchange bits = %d", rep.OPRFExchangeBits)
	}
	if rep.BlindingComputeFor1kUsers5kCells <= 0 {
		t.Error("blinding compute not measured")
	}
}

func TestFig4TreePopulatedAndPrecise(t *testing.T) {
	cfg := DefaultFig4Config()
	cfg.Sim.Users = 60
	cfg.Sim.Sites = 800
	cfg.Sim.Campaigns = 3000
	cfg.Sim.Weeks = 2
	cfg.CBThreshold = 3
	res, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAds == 0 || res.TargetedAds == 0 || res.StaticAds == 0 {
		t.Fatalf("dataset header empty: %+v", res)
	}
	if res.Tree.Targeted.N == 0 || res.Tree.NonTargeted.N == 0 {
		t.Fatalf("tree branches empty: %+v", res.Tree)
	}
	// The static mass dominates, as in the paper (6560 vs 183).
	if res.Tree.NonTargeted.N < res.Tree.Targeted.N {
		t.Fatalf("non-targeted branch (%d) smaller than targeted (%d)",
			res.Tree.NonTargeted.N, res.Tree.Targeted.N)
	}
	// Precision shape (paper: TP 78%, TN 87%): allow generous slack but
	// require the system to be clearly better than coin-flipping.
	if res.Summary.LikelyTPRate < 0.5 {
		t.Fatalf("likely-TP rate = %.2f, want > 0.5", res.Summary.LikelyTPRate)
	}
	if res.Summary.LikelyTNRate < 0.6 {
		t.Fatalf("likely-TN rate = %.2f, want > 0.6", res.Summary.LikelyTNRate)
	}
	if res.Summary.HighConfidenceTNRate <= 0 {
		t.Fatal("no crawler-corroborated TNs")
	}
}

func TestTable2RecoversPlantedBiases(t *testing.T) {
	cfg := DefaultTable2Config()
	cfg.Sim.Users = 300
	cfg.Sim.AvgVisitsPerWeek = 80
	res, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Observations < 1000 {
		t.Fatalf("observations = %d", res.Observations)
	}
	rows := map[string]float64{}
	for _, r := range res.Rows {
		rows[r.Name] = r.OR
	}
	// Gender bias: female and male both below 1 (base: undisclosed),
	// with male below female — the paper's strongest effects.
	if !(rows["gender:female"] < 1 && rows["gender:male"] < 1) {
		t.Fatalf("gender ORs not < 1: f=%.3f m=%.3f", rows["gender:female"], rows["gender:male"])
	}
	if rows["gender:male"] >= rows["gender:female"] {
		t.Fatalf("male OR %.3f should be below female %.3f", rows["gender:male"], rows["gender:female"])
	}
	// Income: mid brackets above 1, top bracket below 1.
	if !(rows["income:30k-60k"] > 1 && rows["income:60k-90k"] > 1) {
		t.Fatalf("mid-income ORs: %.3f / %.3f", rows["income:30k-60k"], rows["income:60k-90k"])
	}
	if rows["income:90k-..."] >= 1 {
		t.Fatalf("top income OR = %.3f, want < 1", rows["income:90k-..."])
	}
	// Age 60-70 strongest positive age effect.
	if rows["age:60-70"] <= 1 {
		t.Fatalf("age 60-70 OR = %.3f, want > 1", rows["age:60-70"])
	}
	// Employment carries no planted signal: the LRT must not be strongly
	// significant.
	if res.EmploymentLRTP < 0.001 {
		t.Fatalf("employment LRT p = %v — phantom signal", res.EmploymentLRTP)
	}
	// Figure 5 probabilities exist for every level and live in (0,1).
	for f, levels := range res.Fig5 {
		for lv, p := range levels {
			if p <= 0 || p >= 1 {
				t.Fatalf("Fig5[%s][%s] = %v", f, lv, p)
			}
		}
	}
	if res.Fig5["gender"]["male"] >= res.Fig5["gender"]["undisclosed"] {
		t.Fatal("Fig5 gender ordering lost")
	}
}

func TestAblateEstimators(t *testing.T) {
	res, err := AblateEstimators(fastSim())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("ablations = %d", len(res))
	}
	for _, a := range res {
		if a.Conf.Classified() == 0 {
			t.Fatalf("estimator %v classified nothing", a.Estimator)
		}
	}
}

func TestAblateWindow(t *testing.T) {
	res, err := AblateWindow(fastSim(), []int{1, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("windows = %d", len(res))
	}
	// More days → more data → more pairs classified.
	if res[2].Conf.Classified() <= res[0].Conf.Classified() {
		t.Fatalf("7-day window classified %d <= 1-day %d",
			res[2].Conf.Classified(), res[0].Conf.Classified())
	}
}

func TestAblateMinDomains(t *testing.T) {
	res, err := AblateMinDomains(fastSim(), []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Stricter minimum-data rule → at least as many Unknowns.
	if res[2].Conf.Unknown < res[0].Conf.Unknown {
		t.Fatalf("min=8 unknowns %d < min=2 unknowns %d",
			res[2].Conf.Unknown, res[0].Conf.Unknown)
	}
}

func TestAblateSketchGeometry(t *testing.T) {
	res, err := AblateSketchGeometry(fastSim(), [][2]float64{
		{0.1, 0.1}, {0.01, 0.01}, {0.001, 0.001},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("geometries = %d", len(res))
	}
	// Tighter epsilon → bigger sketch, less overestimation.
	if res[2].SizeKB <= res[0].SizeKB {
		t.Fatal("size not increasing with tighter epsilon")
	}
	if res[2].MeanOverestimate > res[0].MeanOverestimate {
		t.Fatal("overestimation not shrinking with tighter epsilon")
	}
	if res[2].MeanOverestimate < 0 {
		t.Fatal("negative overestimation: CMS underestimated")
	}
}

func TestConfusionAccessors(t *testing.T) {
	c := Confusion{TP: 3, FP: 1, TN: 5, FN: 1, Unknown: 2}
	if c.Classified() != 10 {
		t.Fatalf("Classified = %d", c.Classified())
	}
	if c.FNRate() != 0.25 {
		t.Fatalf("FNRate = %v", c.FNRate())
	}
	if c.FPRate() != float64(1)/6 {
		t.Fatalf("FPRate = %v", c.FPRate())
	}
	if (Confusion{}).FNRate() != 0 || (Confusion{}).FPRate() != 0 {
		t.Fatal("empty confusion rates")
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}

func TestEvaluateWeekDeterministic(t *testing.T) {
	cfg := fastSim()
	sim1, _ := adsim.New(cfg)
	res1 := sim1.Run()
	sim2, _ := adsim.New(cfg)
	res2 := sim2.Run()
	a := EvaluateWeek(sim1, res1, 0, detector.EstimatorMean, detector.EstimatorMean, 4)
	b := EvaluateWeek(sim2, res2, 0, detector.EstimatorMean, detector.EstimatorMean, 4)
	if a != b {
		t.Fatalf("non-deterministic evaluation: %+v vs %+v", a, b)
	}
}
