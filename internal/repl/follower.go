package repl

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"eyewnder/internal/backend"
	"eyewnder/internal/obs"
	"eyewnder/internal/store"
	"eyewnder/internal/wire"
)

// Follower-side defaults.
const (
	// DefaultPoll is the manifest poll interval when Options does not
	// set one.
	DefaultPoll = 50 * time.Millisecond
	// DefaultChunk is the fetch chunk size when Options does not set
	// one.
	DefaultChunk = 256 << 10
	// opTimeout bounds every request/response exchange with the
	// primary, so a half-dead primary surfaces as a transient error
	// instead of wedging the tail loop.
	opTimeout = 15 * time.Second
)

// errFellBehind marks a fetch that hit the primary's pruning: the
// bytes the follower wanted are gone, covered by a newer snapshot. The
// run loop answers it by resyncing from that snapshot.
var errFellBehind = errors.New("repl: segment pruned on primary, resyncing from newer snapshot")

// fatalError wraps an error replication must not continue past:
// version skew in the stream (store.ErrBadRecord), a deployment
// mismatch from ApplyEvent, or a local filesystem failure. The run
// loop stops tailing and surfaces it in Status; the warm replica keeps
// serving reads.
type fatalError struct{ err error }

func (e fatalError) Error() string { return e.err.Error() }
func (e fatalError) Unwrap() error { return e.err }

// Options configures a Follower.
type Options struct {
	// Dir is the local mirror directory (the follower's data dir — the
	// one promotion re-opens as a writable store).
	Dir string
	// Addr is the primary's replication listen address.
	Addr string
	// Poll is the manifest poll interval; 0 picks DefaultPoll.
	Poll time.Duration
	// Chunk caps each fetch request; 0 picks DefaultChunk, and the
	// primary clamps to MaxChunk regardless.
	Chunk int
	// StoreOpts are the store options promotion opens the mirror with
	// (fsync mode, snapshot cadence, segment retention).
	StoreOpts store.Options
	// Logf, when set, receives replication progress and warnings.
	Logf func(format string, args ...any)
	// Metrics is the observability registry the follower's instruments
	// (events applied, resyncs, chunk fetch latency, connection and lag
	// gauges) register in. nil means a private registry: the
	// instrumented paths run identically, nothing is exported. The
	// counters are written at the same sites as the Status fields, so
	// the /metrics view and the status line always agree.
	Metrics *obs.Registry
}

// Status is a snapshot of a follower's replication state.
type Status struct {
	// Connected reports whether the last exchange with the primary
	// succeeded. A dead primary flips this false while the warm
	// replica keeps serving.
	Connected bool
	// CaughtUp reports whether the last poll ended with every byte of
	// the primary's manifest fetched and applied.
	CaughtUp bool
	// TailGen and TailOff locate the live tail: the WAL segment being
	// tailed and the local bytes fetched of it.
	TailGen uint64
	// TailOff is the fetched byte count of the tail segment.
	TailOff int64
	// Events counts WAL events applied to the replica since the
	// follower started (resyncs rebuild the replica and reset nothing;
	// the counter only grows).
	Events uint64
	// Resyncs counts snapshot resyncs (startup's initial sync is the
	// first).
	Resyncs uint64
	// RemoteGen and RemoteOff locate the primary's newest WAL segment
	// as of the last manifest poll — the tip the follower is chasing.
	RemoteGen uint64
	// RemoteOff is the flushed byte size of the primary's newest WAL
	// segment as of the last manifest poll.
	RemoteOff int64
	// Err is the fatal error that stopped tailing, if any. The replica
	// still serves its last state; promotion is refused until the
	// operator intervenes.
	Err error
}

// Follower mirrors a primary's store directory and keeps a warm
// read-only replica back-end fed from the shipped WAL. Start it with
// StartFollower; stop the tail loop with Stop; turn the mirror into
// the writable deployment store with Promote.
type Follower struct {
	opts Options
	cfg  backend.Config
	m    *replMetrics // pre-registered instrument handles, always non-nil

	mu      sync.Mutex
	replica *backend.Backend
	status  Status

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// Tail-loop state (run goroutine only).
	c          *conn
	needResync bool
	curGen     uint64 // segment being tailed (0 = uninitialized)
	curOff     int64  // local bytes of the tail segment
	curFile    *os.File
	parser     *store.SegmentParser
	torn       bool   // tail segment stopped at a torn/corrupt record
	snapGen    uint64 // newest remote snapshot being mirrored
	snapOff    int64
}

// StartFollower connects to the primary at opts.Addr, performs the
// initial sync (newest snapshot plus every WAL segment it does not
// hold), builds the warm replica, and starts the tail loop. cfg is the
// deployment configuration the promoted back-end will run with;
// Replica and Store are overridden. The primary must be reachable at
// start — a follower that cannot complete its initial sync has nothing
// to serve.
func StartFollower(opts Options, cfg backend.Config) (*Follower, error) {
	if opts.Poll <= 0 {
		opts.Poll = DefaultPoll
	}
	if opts.Chunk <= 0 {
		opts.Chunk = DefaultChunk
	}
	if opts.Chunk > MaxChunk {
		opts.Chunk = MaxChunk
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	cfg.Replica = true
	cfg.Store = nil
	f := &Follower{
		opts: opts,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	f.m = newReplMetrics(opts.Metrics)
	if opts.Metrics != nil {
		registerFollowerGauges(opts.Metrics, f)
	}
	c, err := dialPrimary(opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("repl: dial primary: %w", err)
	}
	f.c = c
	if err := f.resync(); err != nil {
		c.close()
		return nil, fmt.Errorf("repl: initial sync: %w", err)
	}
	go f.run()
	return f, nil
}

// Replica returns the current warm replica back-end. Resyncs swap it;
// callers serving reads should fetch it per request rather than cache
// it.
func (f *Follower) Replica() *backend.Backend {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.replica
}

// Status returns the follower's current replication status.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.status
}

// Stop ends the tail loop and closes the primary connection. The warm
// replica keeps serving reads. Stop is idempotent.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
}

// Promote stops the tail loop and re-opens the mirror as the writable
// deployment store: the mirror directory goes through the ordinary
// crash-recovery path (store.Open), exactly as if the primary itself
// had restarted on this data dir — which is what makes the promoted
// state byte-identical to the primary's acknowledged state. The caller
// owns both returned handles and closes the store after the back-end.
//
// Promotion is refused while replication has a recorded fatal error:
// a mirror that stopped applying mid-stream is not known to hold every
// acknowledged record.
func (f *Follower) Promote() (*backend.Backend, *store.Disk, error) {
	f.Stop()
	f.mu.Lock()
	rep := f.replica
	f.replica = nil
	err := f.status.Err
	f.mu.Unlock()
	if err != nil {
		return nil, nil, fmt.Errorf("repl: refusing promotion, replication stopped on: %w", err)
	}
	if rep != nil {
		rep.Close()
	}
	disk, err := store.Open(f.opts.Dir, f.opts.StoreOpts)
	if err != nil {
		return nil, nil, err
	}
	cfg := f.cfg
	cfg.Replica = false
	cfg.Store = disk
	b, err := backend.New(cfg)
	if err != nil {
		disk.Close()
		return nil, nil, err
	}
	return b, disk, nil
}

// run is the tail loop: poll the manifest, fetch new bytes, apply
// events; reconnect on transient failures, resync on pruning, stop on
// fatal damage.
func (f *Follower) run() {
	defer close(f.done)
	defer func() {
		if f.c != nil {
			f.c.close()
			f.c = nil
		}
		if f.curFile != nil {
			f.curFile.Close()
			f.curFile = nil
		}
	}()
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		err := f.step()
		switch {
		case err == nil:
		case errors.Is(err, errFellBehind):
			f.needResync = true
			continue // resync immediately, no poll delay
		default:
			var fe fatalError
			if errors.As(err, &fe) {
				f.opts.Logf("repl: replication stopped: %v", err)
				f.mu.Lock()
				f.status.Err = err
				f.status.Connected = false
				f.mu.Unlock()
				return
			}
			// Transient (network, primary down): drop the connection,
			// keep serving the warm replica, retry next poll.
			if f.c != nil {
				f.c.close()
				f.c = nil
			}
			f.mu.Lock()
			f.status.Connected = false
			f.status.CaughtUp = false
			f.mu.Unlock()
		}
		select {
		case <-f.stop:
			return
		case <-time.After(f.opts.Poll):
		}
	}
}

// step performs one unit of loop work: connect if needed, resync if
// flagged, otherwise poll once.
func (f *Follower) step() error {
	if f.c == nil {
		c, err := dialPrimary(f.opts.Addr)
		if err != nil {
			return err
		}
		f.c = c
	}
	if f.needResync {
		if err := f.resync(); err != nil {
			return err
		}
		f.needResync = false
		return nil
	}
	return f.pollOnce()
}

// resync brings the mirror to a consistent base and rebuilds the warm
// replica from it: fetch the primary's newest snapshot and every WAL
// segment at or above it, run read-only recovery over the mirror
// (store.Recover), truncate the local tail to the last valid record,
// and build a fresh replica back-end whose state loads through the
// same restore path a restarted primary uses. It is both the startup
// path and the fell-behind path; mid-follow it replaces the replica
// atomically, so readers only ever see a complete state.
func (f *Follower) resync() error {
	if f.curFile != nil {
		f.curFile.Close()
		f.curFile = nil
	}
	// Fetching can race the primary's pruning: a segment listed in the
	// manifest may be gone by the time its bytes are requested. Retry
	// with a fresh manifest until a full pass lands.
	for {
		select {
		case <-f.stop:
			return errors.New("repl: stopped during resync")
		default:
		}
		files, err := f.c.manifest()
		if err != nil {
			return err
		}
		again, err := f.fetchBase(files)
		if err != nil {
			return err
		}
		if !again {
			break
		}
		f.opts.Logf("repl: resync raced pruning, retrying with fresh manifest")
	}
	rec, err := store.Recover(f.opts.Dir)
	if err != nil {
		return fatalError{err}
	}
	// Drop torn bytes past the last valid record: they re-fetch from
	// the primary, which holds the same bytes (or their completion).
	if rec.TailGen() != 0 {
		tail := filepath.Join(f.opts.Dir, store.FileInfo{Kind: store.FileWAL, Gen: rec.TailGen()}.Name())
		if st, err := os.Stat(tail); err == nil && st.Size() > rec.TailOff() {
			if err := os.Truncate(tail, rec.TailOff()); err != nil {
				return fatalError{err}
			}
		}
	}
	cfg := f.cfg
	cfg.Replica = true
	cfg.Store = rec
	replica, err := backend.New(cfg)
	if err != nil {
		return fatalError{err}
	}
	f.curGen = rec.TailGen()
	f.curOff = rec.TailOff()
	f.torn = false
	f.parser = store.NewSegmentParser()
	f.parser.SkipTo(rec.TailOff())

	f.m.resyncs.Inc()
	f.mu.Lock()
	old := f.replica
	f.replica = replica
	f.status.Connected = true
	f.status.Resyncs++
	f.status.TailGen = f.curGen
	f.status.TailOff = f.curOff
	f.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// fetchBase fetches the resync base: the newest snapshot in the
// manifest (in full) and every WAL segment at or above its generation,
// each up to its manifest size. It returns again=true when a fetch hit
// pruning and the caller should retry with a fresh manifest.
func (f *Follower) fetchBase(files []wire.ReplFileInfo) (again bool, err error) {
	var base uint64
	for _, fi := range files {
		if store.FileKind(fi.FileKind) == store.FileSnapshot && fi.Gen > base {
			base = fi.Gen
		}
	}
	for _, fi := range files {
		kind := store.FileKind(fi.FileKind)
		if fi.Gen < base && kind == store.FileWAL {
			continue // covered by the base snapshot
		}
		if kind == store.FileSnapshot && fi.Gen != base {
			continue // only the newest snapshot matters
		}
		gone, err := f.fetchInto(fi, fi.Size)
		if err != nil {
			return false, err
		}
		if gone {
			return true, nil
		}
	}
	if base > 0 {
		f.snapGen = base
		f.snapOff = f.localSize(store.FileInfo{Kind: store.FileSnapshot, Gen: base})
		f.pruneBelow(base)
	}
	return false, nil
}

// fetchInto appends the byte range [localSize, size) of one remote
// file to its local mirror. gone=true reports the file was pruned on
// the primary mid-fetch.
func (f *Follower) fetchInto(fi wire.ReplFileInfo, size int64) (gone bool, err error) {
	info := store.FileInfo{Kind: store.FileKind(fi.FileKind), Gen: fi.Gen}
	off := f.localSize(info)
	if off >= size {
		return false, nil
	}
	w, err := os.OpenFile(filepath.Join(f.opts.Dir, info.Name()), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return false, fatalError{err}
	}
	defer w.Close()
	for off < size {
		want := size - off
		if want > int64(f.opts.Chunk) {
			want = int64(f.opts.Chunk)
		}
		data, flags, err := f.fetch(byte(info.Kind), info.Gen, off, uint32(want))
		if err != nil {
			return false, err
		}
		if flags&wire.ReplChunkGone != 0 {
			return true, nil
		}
		if len(data) == 0 {
			return false, nil // flushed size moved below the manifest's claim; next poll settles it
		}
		if _, err := w.Write(data); err != nil {
			return false, fatalError{err}
		}
		off += int64(len(data))
	}
	return false, nil
}

// fetch is conn.fetch with the exchange latency recorded (failures
// included — a slow refusal is still a slow exchange).
func (f *Follower) fetch(fileKind byte, gen uint64, off int64, maxLen uint32) (data []byte, flags byte, err error) {
	start := time.Now()
	data, flags, err = f.c.fetch(fileKind, gen, off, maxLen)
	observeSince(f.m.fetchLat, start)
	return data, flags, err
}

// localSize returns the local mirror size of a store file (0 when
// absent).
func (f *Follower) localSize(info store.FileInfo) int64 {
	st, err := os.Stat(filepath.Join(f.opts.Dir, info.Name()))
	if err != nil {
		return 0
	}
	return st.Size()
}

// pruneBelow mirrors the primary's snapshot compaction locally:
// segments and snapshots below gen are covered by the snapshot at gen
// and can go. Same downward gap-stop idiom as the primary's prune.
func (f *Follower) pruneBelow(gen uint64) {
	for g := gen - 1; g > 0; g-- {
		w := os.Remove(filepath.Join(f.opts.Dir, store.FileInfo{Kind: store.FileWAL, Gen: g}.Name()))
		s := os.Remove(filepath.Join(f.opts.Dir, store.FileInfo{Kind: store.FileSnapshot, Gen: g}.Name()))
		if w != nil && s != nil {
			return
		}
	}
}

// pollOnce runs one tail iteration: fetch the manifest, extend the
// tail segment (applying events as records complete), advance across
// sealed segments, and mirror any new snapshot.
func (f *Follower) pollOnce() error {
	files, err := f.c.manifest()
	if err != nil {
		return err
	}
	wals := make(map[uint64]wire.ReplFileInfo)
	var minWal uint64
	var remote wire.ReplFileInfo // newest WAL segment (the primary's tip)
	var newest wire.ReplFileInfo // newest snapshot
	for _, fi := range files {
		switch store.FileKind(fi.FileKind) {
		case store.FileWAL:
			wals[fi.Gen] = fi
			if minWal == 0 || fi.Gen < minWal {
				minWal = fi.Gen
			}
			if fi.Gen > remote.Gen {
				remote = fi
			}
		case store.FileSnapshot:
			if fi.Gen > newest.Gen {
				newest = fi
			}
		}
	}
	if remote.Gen > 0 {
		f.mu.Lock()
		f.status.RemoteGen = remote.Gen
		f.status.RemoteOff = remote.Size
		f.mu.Unlock()
	}
	if f.curGen == 0 {
		// Nothing mirrored yet (a fake-source test primary with no WAL
		// at startup): initialize from scratch via the resync path.
		if minWal == 0 {
			f.setStatus(true, len(files) == 0)
			return nil
		}
		return errFellBehind
	}

	caughtUp := false
	for {
		info, ok := wals[f.curGen]
		if !ok {
			if minWal > f.curGen {
				return errFellBehind // tail segment pruned under us
			}
			caughtUp = true // manifest raced a rotation; next poll has it
			break
		}
		if err := f.tailSegment(info); err != nil {
			return err
		}
		if !info.Sealed || f.curOff < info.Size {
			caughtUp = f.curOff >= info.Size
			break
		}
		// Sealed and fully fetched: this segment is done. Leftover
		// unparsed bytes are a torn tail the primary abandoned (it
		// crashed mid-append and rotated on restart) — recovery stops
		// there too, so skipping them keeps the replica aligned.
		if rem := f.curOff - f.parser.Offset(); rem > 0 && !f.torn {
			f.opts.Logf("repl: segment %d sealed with %d-byte torn tail, skipping", f.curGen, rem)
		}
		if f.curFile != nil {
			f.curFile.Close()
			f.curFile = nil
		}
		f.curGen++
		f.curOff = 0
		f.torn = false
		f.parser = store.NewSegmentParser()
	}

	// Mirror the newest snapshot and prune what it covers, once the
	// tail has moved past it (segments below the snapshot may still be
	// mid-apply until then).
	if newest.Gen > 0 {
		if f.snapGen != newest.Gen {
			f.snapGen = newest.Gen
			f.snapOff = f.localSize(store.FileInfo{Kind: store.FileSnapshot, Gen: newest.Gen})
		}
		if f.snapOff < newest.Size {
			if _, err := f.fetchInto(newest, newest.Size); err != nil {
				return err
			}
			f.snapOff = f.localSize(store.FileInfo{Kind: store.FileSnapshot, Gen: newest.Gen})
		}
		if f.snapOff >= newest.Size && f.curGen >= newest.Gen {
			f.pruneBelow(newest.Gen)
		}
	}
	f.setStatus(true, caughtUp)
	return nil
}

// tailSegment extends the current tail segment to the manifest size,
// feeding fetched bytes through the parser and applying completed
// records to the replica.
func (f *Follower) tailSegment(info wire.ReplFileInfo) error {
	if f.curOff >= info.Size {
		return nil
	}
	if f.curFile == nil {
		name := store.FileInfo{Kind: store.FileWAL, Gen: f.curGen}.Name()
		w, err := os.OpenFile(filepath.Join(f.opts.Dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fatalError{err}
		}
		f.curFile = w
	}
	for f.curOff < info.Size {
		want := info.Size - f.curOff
		if want > int64(f.opts.Chunk) {
			want = int64(f.opts.Chunk)
		}
		data, flags, err := f.fetch(byte(store.FileWAL), f.curGen, f.curOff, uint32(want))
		if err != nil {
			return err
		}
		if flags&wire.ReplChunkGone != 0 {
			return errFellBehind
		}
		if len(data) == 0 {
			break
		}
		if _, err := f.curFile.Write(data); err != nil {
			return fatalError{err}
		}
		f.curOff += int64(len(data))
		if err := f.applyChunk(data); err != nil {
			return err
		}
		f.mu.Lock()
		f.status.TailGen = f.curGen
		f.status.TailOff = f.curOff
		f.mu.Unlock()
	}
	return nil
}

// applyChunk feeds one fetched chunk through the parser and applies
// every completed record. A corrupt record marks the segment torn —
// replay stops there cleanly, matching recovery; version skew
// (ErrBadRecord) and replica refusals are fatal.
func (f *Follower) applyChunk(data []byte) error {
	if f.torn {
		return nil // keep mirroring bytes, stop applying: recovery will stop at the same spot
	}
	f.parser.Feed(data)
	replica := f.Replica()
	for {
		ev, err := f.parser.Next()
		if err != nil {
			if errors.Is(err, store.ErrCorruptRecord) {
				f.torn = true
				f.opts.Logf("repl: segment %d torn at %d: %v", f.curGen, f.parser.Offset(), err)
				return nil
			}
			return fatalError{fmt.Errorf("segment %d at %d: %w", f.curGen, f.parser.Offset(), err)}
		}
		if ev == nil {
			return nil
		}
		if err := replica.ApplyEvent(ev); err != nil {
			return fatalError{err}
		}
		f.m.events.Inc()
		f.mu.Lock()
		f.status.Events++
		f.mu.Unlock()
	}
}

// setStatus records the outcome of a successful poll.
func (f *Follower) setStatus(connected, caughtUp bool) {
	f.mu.Lock()
	f.status.Connected = connected
	f.status.CaughtUp = caughtUp
	f.status.TailGen = f.curGen
	f.status.TailOff = f.curOff
	f.mu.Unlock()
}

// conn is one replication connection to the primary: a request/response
// pair per operation, with deadlines so a wedged primary turns into a
// transient error.
type conn struct {
	nc  net.Conn
	buf []byte
}

// dialPrimary connects and exchanges hellos.
func dialPrimary(addr string) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, opTimeout)
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(opTimeout))
	if err := wire.WriteReplHello(nc); err != nil {
		nc.Close()
		return nil, err
	}
	if _, err := wire.ReadReplHello(nc); err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	return &conn{nc: nc}, nil
}

func (c *conn) close() { c.nc.Close() }

// manifest requests and decodes the primary's shipping manifest.
func (c *conn) manifest() ([]wire.ReplFileInfo, error) {
	c.nc.SetDeadline(time.Now().Add(opTimeout))
	defer c.nc.SetDeadline(time.Time{})
	if err := wire.WriteReplFrame(c.nc, wire.ReplManifestReq, nil); err != nil {
		return nil, err
	}
	kind, body, buf, err := wire.ReadReplFrame(c.nc, c.buf)
	c.buf = buf
	if err != nil {
		return nil, err
	}
	switch kind {
	case wire.ReplManifest:
		return wire.DecodeReplManifest(body)
	case wire.ReplError:
		return nil, fmt.Errorf("repl: primary refused manifest: %s", body)
	default:
		return nil, fmt.Errorf("%w: unexpected frame %#02x", wire.ErrReplProto, kind)
	}
}

// fetch requests one byte range. The returned data aliases the
// connection's buffer and is valid until the next call.
func (c *conn) fetch(fileKind byte, gen uint64, off int64, maxLen uint32) (data []byte, flags byte, err error) {
	c.nc.SetDeadline(time.Now().Add(opTimeout))
	defer c.nc.SetDeadline(time.Time{})
	req := wire.EncodeReplFetch(wire.ReplFetchReq{FileKind: fileKind, Gen: gen, Off: off, MaxLen: maxLen})
	if err := wire.WriteReplFrame(c.nc, wire.ReplFetch, req); err != nil {
		return nil, 0, err
	}
	kind, body, buf, err := wire.ReadReplFrame(c.nc, c.buf)
	c.buf = buf
	if err != nil {
		return nil, 0, err
	}
	switch kind {
	case wire.ReplChunk:
		if len(body) < 1 {
			return nil, 0, fmt.Errorf("%w: empty chunk frame", wire.ErrReplProto)
		}
		return body[1:], body[0], nil
	case wire.ReplError:
		return nil, 0, fmt.Errorf("repl: primary refused fetch: %s", body)
	default:
		return nil, 0, fmt.Errorf("%w: unexpected frame %#02x", wire.ErrReplProto, kind)
	}
}
