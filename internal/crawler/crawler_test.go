package crawler

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"eyewnder/internal/wire"
)

func pageFor(site int) string {
	return fmt.Sprintf(`<html><body>
<div class="ad-slot"><a href="https://shop.example/cat/offer-%d"><img src="https://ads.adx0.example/creative/%d"></a></div>
</body></html>`, site%3, site%3)
}

func TestVisitCollectsAds(t *testing.T) {
	c := New(FetcherFunc(func(site int) (string, error) {
		return pageFor(site), nil
	}), nil)
	keys, err := c.Visit(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "https://shop.example/cat/offer-0" {
		t.Fatalf("keys = %v", keys)
	}
	if !c.Seen(keys[0]) {
		t.Fatal("Seen = false after visit")
	}
	if c.Seen("https://never.example/x") {
		t.Fatal("phantom ad seen")
	}
	if c.Visits() != 1 {
		t.Fatalf("Visits = %d", c.Visits())
	}
}

func TestDatasetTracksSites(t *testing.T) {
	c := New(FetcherFunc(func(site int) (string, error) {
		return pageFor(site), nil
	}), nil)
	// Sites 0 and 3 both serve offer-0.
	for _, site := range []int{0, 3, 1} {
		if _, err := c.Visit(site); err != nil {
			t.Fatal(err)
		}
	}
	ds := c.Dataset()
	if len(ds["https://shop.example/cat/offer-0"]) != 2 {
		t.Fatalf("dataset = %v", ds)
	}
	if len(ds["https://shop.example/cat/offer-1"]) != 1 {
		t.Fatalf("dataset = %v", ds)
	}
}

func TestFetcherErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	c := New(FetcherFunc(func(site int) (string, error) {
		return "", sentinel
	}), nil)
	if _, err := c.Visit(7); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if c.Visits() != 0 {
		t.Fatal("failed fetch counted as visit")
	}
}

func TestConcurrentVisits(t *testing.T) {
	c := New(FetcherFunc(func(site int) (string, error) {
		return pageFor(site), nil
	}), nil)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			if _, err := c.Visit(site); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if c.Visits() != 20 {
		t.Fatalf("Visits = %d", c.Visits())
	}
	if len(c.Dataset()) != 3 {
		t.Fatalf("dataset size = %d", len(c.Dataset()))
	}
}

func TestHandlerRejectsUnknownMessage(t *testing.T) {
	c := New(FetcherFunc(func(int) (string, error) { return "", nil }), nil)
	h := c.Handler()
	if _, _, err := h(&wire.Msg{Type: "nope"}); err == nil {
		t.Fatal("unknown message accepted")
	}
}
