package main

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"eyewnder/internal/blind"
	"eyewnder/internal/group"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
)

// pipelineResult is one stage's measurement.
type pipelineResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// pipelineReport is the BENCH_pipeline.json schema. Baseline is carried
// forward from a previous report (see -baseline) so the perf trajectory
// of the hot path is tracked across PRs in one committed artifact.
type pipelineReport struct {
	Schema     string                    `json:"schema"`
	Go         string                    `json:"go"`
	MaxProcs   int                       `json:"maxprocs"`
	Benchmarks map[string]pipelineResult `json:"benchmarks"`
	Baseline   map[string]pipelineResult `json:"baseline,omitempty"`
}

func measure(fn func(b *testing.B)) pipelineResult {
	r := testing.Benchmark(fn)
	return pipelineResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runPipeline benchmarks every stage of the privacy hot path — sketch
// update/query, report (de)serialization, blinding-vector computation,
// aggregate merge, and the back-end close-round enumeration — and writes
// the results to outPath.
func runPipeline(outPath, baselinePath string) error {
	rep := &pipelineReport{
		Schema:     "eyewnder/bench-pipeline/v1",
		Go:         runtime.Version(),
		MaxProcs:   runtime.GOMAXPROCS(0),
		Benchmarks: map[string]pipelineResult{},
	}
	if baselinePath != "" {
		var prev pipelineReport
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
		if err := json.Unmarshal(raw, &prev); err != nil {
			return fmt.Errorf("parsing baseline: %w", err)
		}
		rep.Baseline = prev.Benchmarks
	}

	// Paper geometry: ε = δ = 0.001 (d=7, w=2719 ≈ 19k cells).
	newCMS := func() *sketch.CMS {
		c, err := sketch.New(0.001, 0.001)
		if err != nil {
			panic(err)
		}
		return c
	}
	key := []byte("https://ads.example.com/creative/123456")

	fmt.Fprintln(os.Stderr, "pipeline: cms update/query ...")
	rep.Benchmarks["cms_update"] = measure(func(b *testing.B) {
		c := newCMS()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Update(key)
		}
	})
	rep.Benchmarks["cms_query"] = measure(func(b *testing.B) {
		c := newCMS()
		c.Update(key)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Query(key)
		}
	})

	fmt.Fprintln(os.Stderr, "pipeline: report marshal/unmarshal ...")
	rep.Benchmarks["cms_marshal"] = measure(func(b *testing.B) {
		c := newCMS()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.MarshalBinary(); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Benchmarks["cms_unmarshal"] = measure(func(b *testing.B) {
		c := newCMS()
		data, err := c.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var d sketch.CMS
			if err := d.UnmarshalBinary(data); err != nil {
				b.Fatal(err)
			}
		}
	})

	fmt.Fprintln(os.Stderr, "pipeline: blinding vector (16-user roster, 5k cells) ...")
	roster, err := blind.NewRoster(group.P256(), 16, rand.Reader)
	if err != nil {
		return err
	}
	rep.Benchmarks["blind_vector_5k"] = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			roster.Parties[0].Blinding(uint64(i), 5000)
		}
	})

	fmt.Fprintln(os.Stderr, "pipeline: aggregate merge ...")
	rep.Benchmarks["cms_merge"] = measure(func(b *testing.B) {
		dst, src := newCMS(), newCMS()
		src.Update(key)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dst.Merge(src); err != nil {
				b.Fatal(err)
			}
		}
	})

	fmt.Fprintln(os.Stderr, "pipeline: close round (8 reports, 20k-ID enumeration) ...")
	params := privacy.Params{Epsilon: 0.001, Delta: 0.001, IDSpace: 20000, Suite: group.P256()}
	reports := make([]*privacy.Report, len(roster.Parties[:8]))
	for u := 0; u < len(reports); u++ {
		cms, err := params.NewSketch()
		if err != nil {
			return err
		}
		var k [8]byte
		for a := 0; a < 50; a++ {
			binary.LittleEndian.PutUint64(k[:], uint64((u*37+a*101)%int(params.IDSpace)))
			cms.Update(k[:])
		}
		cells := cms.FlatCells()
		if err := blind.ApplyBlinding(cells, roster.Parties[u].Blinding(1, len(cells))); err != nil {
			return err
		}
		reports[u] = &privacy.Report{User: u, Round: 1, Sketch: cms}
	}
	// A full 16-party cancellation needs all parties; use the adjustment
	// round for the 8 absentees, exactly as the back-end would.
	missing := []int{8, 9, 10, 11, 12, 13, 14, 15}
	rep.Benchmarks["close_round"] = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			agg, err := privacy.NewAggregator(params, 1, 16)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range reports {
				if err := agg.Add(r); err != nil {
					b.Fatal(err)
				}
			}
			cells := reports[0].Sketch.Cells()
			for u := 0; u < 8; u++ {
				adj, err := roster.Parties[u].Adjustment(1, cells, missing)
				if err != nil {
					b.Fatal(err)
				}
				if err := agg.ApplyAdjustments(adj); err != nil {
					b.Fatal(err)
				}
			}
			final, err := agg.Finalize()
			if err != nil {
				b.Fatal(err)
			}
			if counts := privacy.UserCounts(final, params); len(counts) == 0 {
				b.Fatal("close round recovered no counts")
			}
		}
	})

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("pipeline benchmarks written to %s\n", outPath)
	for name, r := range rep.Benchmarks {
		line := fmt.Sprintf("  %-16s %12.1f ns/op %8d allocs/op", name, r.NsPerOp, r.AllocsPerOp)
		if base, ok := rep.Baseline[name]; ok && r.NsPerOp > 0 {
			line += fmt.Sprintf("   (%.2fx vs baseline)", base.NsPerOp/r.NsPerOp)
		}
		fmt.Println(line)
	}
	return nil
}
