package store

import "encoding/binary"

// Decoded WAL events: the exported, typed view of the record layer.
//
// Three consumers replay WAL records and must agree byte-for-byte on
// what each one means: crash recovery (replay.go), the replication
// follower's live tail replay (internal/repl feeding
// backend.ApplyEvent), and any offline WAL tooling. DecodeEvent is the
// single decode path all of them share — the record layouts themselves
// are documented in record.go, and the acceptance rules (what a decoded
// event *does* to round state) are documented on recovered.apply.

// Event is one decoded WAL record. The concrete types are
// RegisterEvent, ConfigEvent, OpenEvent, ReportEvent, AdjustEvent,
// CloseEvent, and CampaignEvent. Byte-slice fields alias the record buffer handed to
// DecodeEvent and are valid only until that buffer's next reuse — copy
// to retain.
type Event interface {
	// recordKind names the WAL record kind the event decodes, tying the
	// implementations to this package's record set.
	recordKind() byte
}

// RegisterEvent is a bulletin-board registration: user u's blinding
// public key was stored (last write wins).
type RegisterEvent struct {
	// User is the registering user's roster index.
	User int
	// PublicKey is the blinding public key; it aliases the record
	// buffer.
	PublicKey []byte
}

func (*RegisterEvent) recordKind() byte { return recRegister }

// ConfigEvent is a bump of the deployment-wide config/roster version
// counters (a registration changed the bulletin board). Counters only
// ever grow; replaying an older bump on top of a newer state is a
// no-op.
type ConfigEvent struct {
	// ConfigVersion is the deployment-wide round-config version after
	// the bump.
	ConfigVersion uint32
	// RosterVersion is the deployment-wide roster version after the
	// bump.
	RosterVersion uint32
}

func (*ConfigEvent) recordKind() byte { return recConfig }

// OpenEvent is a round creation: the geometry, roster size, blinding
// suite, and negotiated config the round is pinned to for its whole
// life.
type OpenEvent struct {
	// Round is the round identifier.
	Round uint64
	// RosterSize is the enrolled-user count the round expects reports
	// from.
	RosterSize int
	// D and W fix the CMS cell layout of the round aggregate.
	D, W int
	// Seed is the sketch hash seed the round's reporters agreed on.
	Seed uint64
	// Keystream is the round's blinding-suite byte.
	Keystream byte
	// Campaign is the counting campaign the round belongs to (0 = the
	// deployment's implicit legacy campaign).
	Campaign uint32
	// ConfigVersion and RosterVersion pin the negotiated config current
	// at the open (0/0 = the unversioned pre-handshake style).
	ConfigVersion uint32
	RosterVersion uint32
}

func (*OpenEvent) recordKind() byte { return recOpen }

// ReportEvent is one accepted report: the streamed wire frame's payload
// — header fields plus the raw little-endian cell block — logged before
// the cells folded into the aggregate.
type ReportEvent struct {
	// Round is the round the report folds into.
	Round uint64
	// User is the reporter's roster index.
	User int
	// D and W are the report sketch's cell layout; they must match the
	// round's.
	D, W int
	// N is the report's total update weight.
	N uint64
	// Seed is the report sketch's hash seed; it must match the round's.
	Seed uint64
	// Keystream is the report's blinding-suite byte.
	Keystream byte
	// Campaign is the counting campaign the report folds into (0 = the
	// legacy campaign).
	Campaign uint32
	// ConfigVersion is the negotiated config version the report was
	// built under (0 = unversioned).
	ConfigVersion uint32
	// Cells is the raw little-endian cell block (8·d·w bytes); it
	// aliases the record buffer.
	Cells []byte
}

func (*ReportEvent) recordKind() byte { return recReport }

// AdjustEvent is an accepted second-round adjustment share (last write
// wins, like the live share map).
type AdjustEvent struct {
	// Round is the round the share repairs.
	Round uint64
	// Campaign is the counting campaign the round belongs to.
	Campaign uint32
	// User is the submitting reporter's roster index.
	User int
	// Cells is the share's raw little-endian cell block; it aliases the
	// record buffer.
	Cells []byte
}

func (*AdjustEvent) recordKind() byte { return recAdjust }

// CloseEvent is a round finalization.
type CloseEvent struct {
	// Round is the round that closed.
	Round uint64
	// Campaign is the counting campaign the round belongs to.
	Campaign uint32
}

func (*CloseEvent) recordKind() byte { return recClose }

// CampaignEvent is a campaign provisioning: the campaign registry's
// canonical encoding, carried opaquely (last write wins per ID). The
// store does not interpret the geometry inside — the backend decodes
// it through the campaign registry on recovery.
type CampaignEvent struct {
	// ID is the campaign identifier, read from the encoding prefix.
	ID uint32
	// Def is the opaque canonical campaign encoding; it aliases the
	// record buffer.
	Def []byte
}

func (*CampaignEvent) recordKind() byte { return recCampaign }

// DecodeEvent parses one WAL record body (as returned by ReadWALRecord)
// into its typed event. A body that does not parse for its kind — or an
// unknown kind under a valid checksum — returns ErrBadRecord: that is
// version skew or an encoder bug, not a torn tail, and the caller must
// not silently skip it. Byte-slice fields of the returned event alias
// body.
func DecodeEvent(kind byte, body []byte) (Event, error) {
	switch kind {
	case recRegister:
		r, err := decodeRegisterBody(body)
		if err != nil {
			return nil, err
		}
		return &RegisterEvent{User: int(r.User), PublicKey: r.Key}, nil

	case recConfig:
		cv, rv, err := decodeConfigBody(body)
		if err != nil {
			return nil, err
		}
		return &ConfigEvent{ConfigVersion: cv, RosterVersion: rv}, nil

	case recOpen:
		r, err := decodeOpenBody(body)
		if err != nil {
			return nil, err
		}
		return &OpenEvent{
			Round: r.Round, RosterSize: int(r.Roster),
			D: int(r.D), W: int(r.W), Seed: r.Seed, Keystream: r.Keystream,
			Campaign:      r.Campaign,
			ConfigVersion: r.ConfigVersion, RosterVersion: r.RosterVersion,
		}, nil

	case recReport:
		r, err := decodeReportBody(body)
		if err != nil {
			return nil, err
		}
		return &ReportEvent{
			Round: r.Round, User: int(r.User),
			D: int(r.D), W: int(r.W), N: r.N, Seed: r.Seed,
			Keystream: r.Keystream, Campaign: r.Campaign,
			ConfigVersion: r.ConfigVersion,
			Cells:         r.Cells,
		}, nil

	case recAdjust:
		r, err := decodeAdjustBody(body)
		if err != nil {
			return nil, err
		}
		return &AdjustEvent{Round: r.Round, User: int(r.User), Campaign: r.Campaign, Cells: r.Cells}, nil

	case recClose:
		switch len(body) {
		case 8:
			return &CloseEvent{Round: binary.LittleEndian.Uint64(body)}, nil
		case 12:
			c := binary.LittleEndian.Uint32(body[8:])
			if c == 0 || c > maxRecordCampaign {
				return nil, ErrBadRecord
			}
			return &CloseEvent{Round: binary.LittleEndian.Uint64(body), Campaign: c}, nil
		}
		return nil, ErrBadRecord

	case recCampaign:
		id, def, err := decodeCampaignBody(body)
		if err != nil {
			return nil, err
		}
		return &CampaignEvent{ID: id, Def: def}, nil
	}
	return nil, ErrBadRecord
}
