// Command eyewnder-bench runs the privacy-protocol overhead study of
// Section 7.1 and the Figure 2 distribution comparison:
//
//	eyewnder-bench -overhead   # CMS sizes, blinding traffic/compute, OPRF latency
//	eyewnder-bench -fig2       # actual vs CMS #Users distributions, 3 weeks
//	eyewnder-bench -pipeline   # hot-path ns/op + allocs/op -> BENCH_pipeline.json
//	eyewnder-bench -promote f  # merge a re-recorded report into the baseline
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"eyewnder/internal/experiments"
	"eyewnder/internal/group"
)

func main() {
	var (
		overhead = flag.Bool("overhead", false, "run the §7.1 overhead study")
		fig2     = flag.Bool("fig2", false, "run the Figure 2 comparison")
		pipeline = flag.Bool("pipeline", false, "benchmark the privacy hot path and write a JSON report")
		pipeOut  = flag.String("pipeline-out", "BENCH_pipeline.json", "pipeline report output path")
		baseline = flag.String("baseline", "", "previous pipeline report to embed as the baseline")
		check    = flag.Float64("check", 0, "fail if allocs/op or bytes/op regress more than this percent vs the baseline (0 = off)")
		checkNs  = flag.Float64("check-ns", 0, "fail if ns/op regresses more than this percent vs the baseline (0 = off; keep loose on shared runners)")
		promote  = flag.String("promote", "", "merge this re-recorded pipeline report into the file named by -pipeline-out (e.g. the CI contention artifact)")
		promRows = flag.String("promote-rows", "", "comma-separated benchmark rows to promote (empty = every row the baseline already tracks)")
		rsaBits  = flag.Int("rsa-bits", 1024, "oprf RSA modulus (paper: 1024-bit elements)")
		users    = flag.Int("users", 0, "override Figure 2 user count")
	)
	flag.Parse()

	switch {
	case *promote != "":
		var only []string
		if *promRows != "" {
			only = strings.Split(*promRows, ",")
		}
		if err := promoteReport(*promote, *pipeOut, only); err != nil {
			log.Fatal(err)
		}

	case *pipeline:
		if err := runPipeline(*pipeOut, *baseline, *check, *checkNs); err != nil {
			log.Fatal(err)
		}
	case *overhead:
		rep, err := experiments.Overhead(*rsaBits, group.P256())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Section 7.1: protocol overhead")
		sizes := make([]int, 0, len(rep.CMSKB))
		for t := range rep.CMSKB {
			sizes = append(sizes, t)
		}
		sort.Ints(sizes)
		for _, t := range sizes {
			fmt.Printf("  CMS size (T=%6d, ε=δ=0.001, 4B cells): %6.0f KB\n", t, rep.CMSKB[t])
		}
		fmt.Printf("  (paper: 185 / 196 / 207 KB)\n")
		fmt.Printf("  cleartext alternative, average user:      %6.1f KB (paper: ~3.5 KB)\n", rep.CleartextAvgKB)
		ns := make([]int, 0, len(rep.BlindingTrafficMB))
		for n := range rep.BlindingTrafficMB {
			ns = append(ns, n)
		}
		sort.Ints(ns)
		for _, n := range ns {
			fmt.Printf("  blinding key exchange, %6d users:      %6.2f MB\n", n, rep.BlindingTrafficMB[n])
		}
		fmt.Printf("  (paper: 0.38 / 1.9 MB with 1024-bit shares)\n")
		fmt.Printf("  blinding compute, 1k users × 5k cells:    %v (paper: ~30 s)\n",
			rep.BlindingComputeFor1kUsers5kCells)
		fmt.Printf("  OPRF mapping round trip:                  %v (paper bound: 500 ms)\n", rep.OPRFRoundTrip)
		fmt.Printf("  OPRF exchange: %d bits (2 group elements)\n", rep.OPRFExchangeBits)

	case *fig2:
		cfg := experiments.DefaultFig2Config()
		cfg.RSABits = *rsaBits
		if *users > 0 {
			cfg.Sim.Users = *users
		}
		weeks, err := experiments.Fig2(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Figure 2: #Users distribution, actual vs privacy-preserving CMS")
		for _, w := range weeks {
			fmt.Printf("  week %d: ads(actual)=%d ads(CMS)=%d  Act_Th=%.2f  CMS_Th=%.2f\n",
				w.Week+1, len(w.ActualCounts), len(w.CMSCounts), w.ActualTh, w.CMSTh)
		}
		fmt.Println("  density series (x, actual, cms) for week 1:")
		if len(weeks) > 0 && len(weeks[0].DensityX) > 0 {
			w := weeks[0]
			for i := 0; i < len(w.DensityX); i += 7 {
				fmt.Printf("    %5.2f  %.4f  %.4f\n", w.DensityX[i], w.ActualDensity[i], w.CMSDensity[i])
			}
		}

	default:
		flag.Usage()
	}
}
